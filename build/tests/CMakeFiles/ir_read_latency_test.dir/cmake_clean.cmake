file(REMOVE_RECURSE
  "CMakeFiles/ir_read_latency_test.dir/ir_read_latency_test.cc.o"
  "CMakeFiles/ir_read_latency_test.dir/ir_read_latency_test.cc.o.d"
  "ir_read_latency_test"
  "ir_read_latency_test.pdb"
  "ir_read_latency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_read_latency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ir_read_latency_test.
# This may be replaced when dependencies are built.

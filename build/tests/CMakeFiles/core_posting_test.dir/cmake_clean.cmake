file(REMOVE_RECURSE
  "CMakeFiles/core_posting_test.dir/core_posting_test.cc.o"
  "CMakeFiles/core_posting_test.dir/core_posting_test.cc.o.d"
  "core_posting_test"
  "core_posting_test.pdb"
  "core_posting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_posting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

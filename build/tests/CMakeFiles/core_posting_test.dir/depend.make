# Empty dependencies file for core_posting_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for storage_io_trace_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for core_inverted_index_test.
# This may be replaced when dependencies are built.

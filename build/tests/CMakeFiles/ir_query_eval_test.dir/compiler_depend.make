# Empty compiler generated dependencies file for ir_query_eval_test.
# This may be replaced when dependencies are built.

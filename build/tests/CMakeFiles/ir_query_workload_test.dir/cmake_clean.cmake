file(REMOVE_RECURSE
  "CMakeFiles/ir_query_workload_test.dir/ir_query_workload_test.cc.o"
  "CMakeFiles/ir_query_workload_test.dir/ir_query_workload_test.cc.o.d"
  "ir_query_workload_test"
  "ir_query_workload_test.pdb"
  "ir_query_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_query_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

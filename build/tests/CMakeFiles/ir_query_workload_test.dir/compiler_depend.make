# Empty compiler generated dependencies file for ir_query_workload_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for storage_executor_property_test.
# This may be replaced when dependencies are built.

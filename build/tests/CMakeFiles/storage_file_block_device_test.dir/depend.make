# Empty dependencies file for storage_file_block_device_test.
# This may be replaced when dependencies are built.

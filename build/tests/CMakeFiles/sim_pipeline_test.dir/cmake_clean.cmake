file(REMOVE_RECURSE
  "CMakeFiles/sim_pipeline_test.dir/sim_pipeline_test.cc.o"
  "CMakeFiles/sim_pipeline_test.dir/sim_pipeline_test.cc.o.d"
  "sim_pipeline_test"
  "sim_pipeline_test.pdb"
  "sim_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/duplexctl_cli_test.dir/duplexctl_cli_test.cc.o"
  "CMakeFiles/duplexctl_cli_test.dir/duplexctl_cli_test.cc.o.d"
  "duplexctl_cli_test"
  "duplexctl_cli_test.pdb"
  "duplexctl_cli_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duplexctl_cli_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for duplexctl_cli_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/text_corpus_generator_test.dir/text_corpus_generator_test.cc.o"
  "CMakeFiles/text_corpus_generator_test.dir/text_corpus_generator_test.cc.o.d"
  "text_corpus_generator_test"
  "text_corpus_generator_test.pdb"
  "text_corpus_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_corpus_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

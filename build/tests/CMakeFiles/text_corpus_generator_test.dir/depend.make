# Empty dependencies file for text_corpus_generator_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for core_batch_log_test.
# This may be replaced when dependencies are built.

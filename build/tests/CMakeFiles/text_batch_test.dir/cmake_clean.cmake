file(REMOVE_RECURSE
  "CMakeFiles/text_batch_test.dir/text_batch_test.cc.o"
  "CMakeFiles/text_batch_test.dir/text_batch_test.cc.o.d"
  "text_batch_test"
  "text_batch_test.pdb"
  "text_batch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

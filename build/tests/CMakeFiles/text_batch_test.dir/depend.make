# Empty dependencies file for text_batch_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for core_memory_index_test.
# This may be replaced when dependencies are built.

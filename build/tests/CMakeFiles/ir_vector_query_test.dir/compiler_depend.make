# Empty compiler generated dependencies file for ir_vector_query_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/core_codec_family_test.dir/core_codec_family_test.cc.o"
  "CMakeFiles/core_codec_family_test.dir/core_codec_family_test.cc.o.d"
  "core_codec_family_test"
  "core_codec_family_test.pdb"
  "core_codec_family_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_codec_family_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for core_codec_family_test.
# This may be replaced when dependencies are built.

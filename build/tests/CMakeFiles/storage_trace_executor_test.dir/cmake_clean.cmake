file(REMOVE_RECURSE
  "CMakeFiles/storage_trace_executor_test.dir/storage_trace_executor_test.cc.o"
  "CMakeFiles/storage_trace_executor_test.dir/storage_trace_executor_test.cc.o.d"
  "storage_trace_executor_test"
  "storage_trace_executor_test.pdb"
  "storage_trace_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_trace_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storage_trace_executor_test.cc" "tests/CMakeFiles/storage_trace_executor_test.dir/storage_trace_executor_test.cc.o" "gcc" "tests/CMakeFiles/storage_trace_executor_test.dir/storage_trace_executor_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/duplex_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/duplex_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/duplex_core.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/duplex_text.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/duplex_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/duplex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

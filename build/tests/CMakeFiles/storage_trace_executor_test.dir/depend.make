# Empty dependencies file for storage_trace_executor_test.
# This may be replaced when dependencies are built.

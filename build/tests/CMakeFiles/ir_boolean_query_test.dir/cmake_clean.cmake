file(REMOVE_RECURSE
  "CMakeFiles/ir_boolean_query_test.dir/ir_boolean_query_test.cc.o"
  "CMakeFiles/ir_boolean_query_test.dir/ir_boolean_query_test.cc.o.d"
  "ir_boolean_query_test"
  "ir_boolean_query_test.pdb"
  "ir_boolean_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_boolean_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ir_boolean_query_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for core_long_list_store_test.
# This may be replaced when dependencies are built.

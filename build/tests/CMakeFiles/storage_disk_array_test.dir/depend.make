# Empty dependencies file for storage_disk_array_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/storage_disk_array_test.dir/storage_disk_array_test.cc.o"
  "CMakeFiles/storage_disk_array_test.dir/storage_disk_array_test.cc.o.d"
  "storage_disk_array_test"
  "storage_disk_array_test.pdb"
  "storage_disk_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_disk_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tools_pipeline_test.dir/tools_pipeline_test.cc.o"
  "CMakeFiles/tools_pipeline_test.dir/tools_pipeline_test.cc.o.d"
  "tools_pipeline_test"
  "tools_pipeline_test.pdb"
  "tools_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tools_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

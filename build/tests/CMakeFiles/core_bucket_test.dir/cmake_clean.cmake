file(REMOVE_RECURSE
  "CMakeFiles/core_bucket_test.dir/core_bucket_test.cc.o"
  "CMakeFiles/core_bucket_test.dir/core_bucket_test.cc.o.d"
  "core_bucket_test"
  "core_bucket_test.pdb"
  "core_bucket_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_bucket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/text_vocabulary_test.dir/text_vocabulary_test.cc.o"
  "CMakeFiles/text_vocabulary_test.dir/text_vocabulary_test.cc.o.d"
  "text_vocabulary_test"
  "text_vocabulary_test.pdb"
  "text_vocabulary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_vocabulary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

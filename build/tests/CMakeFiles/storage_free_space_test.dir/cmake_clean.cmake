file(REMOVE_RECURSE
  "CMakeFiles/storage_free_space_test.dir/storage_free_space_test.cc.o"
  "CMakeFiles/storage_free_space_test.dir/storage_free_space_test.cc.o.d"
  "storage_free_space_test"
  "storage_free_space_test.pdb"
  "storage_free_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_free_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for storage_free_space_test.
# This may be replaced when dependencies are built.

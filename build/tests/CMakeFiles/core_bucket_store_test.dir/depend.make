# Empty dependencies file for core_bucket_store_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for core_long_list_property_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for news_indexing.
# This may be replaced when dependencies are built.

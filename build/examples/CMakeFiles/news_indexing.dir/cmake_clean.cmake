file(REMOVE_RECURSE
  "CMakeFiles/news_indexing.dir/news_indexing.cpp.o"
  "CMakeFiles/news_indexing.dir/news_indexing.cpp.o.d"
  "news_indexing"
  "news_indexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for duplexctl.
# This may be replaced when dependencies are built.

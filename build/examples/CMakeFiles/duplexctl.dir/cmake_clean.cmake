file(REMOVE_RECURSE
  "CMakeFiles/duplexctl.dir/duplexctl.cpp.o"
  "CMakeFiles/duplexctl.dir/duplexctl.cpp.o.d"
  "duplexctl"
  "duplexctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duplexctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libduplex_util.a"
)

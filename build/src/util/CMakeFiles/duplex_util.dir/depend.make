# Empty dependencies file for duplex_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/duplex_util.dir/histogram.cc.o"
  "CMakeFiles/duplex_util.dir/histogram.cc.o.d"
  "CMakeFiles/duplex_util.dir/random.cc.o"
  "CMakeFiles/duplex_util.dir/random.cc.o.d"
  "CMakeFiles/duplex_util.dir/status.cc.o"
  "CMakeFiles/duplex_util.dir/status.cc.o.d"
  "CMakeFiles/duplex_util.dir/table_writer.cc.o"
  "CMakeFiles/duplex_util.dir/table_writer.cc.o.d"
  "libduplex_util.a"
  "libduplex_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duplex_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

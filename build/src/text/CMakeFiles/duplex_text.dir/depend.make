# Empty dependencies file for duplex_text.
# This may be replaced when dependencies are built.

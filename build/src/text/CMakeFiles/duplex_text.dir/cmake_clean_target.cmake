file(REMOVE_RECURSE
  "libduplex_text.a"
)

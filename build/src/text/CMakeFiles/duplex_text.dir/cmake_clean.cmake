file(REMOVE_RECURSE
  "CMakeFiles/duplex_text.dir/batch.cc.o"
  "CMakeFiles/duplex_text.dir/batch.cc.o.d"
  "CMakeFiles/duplex_text.dir/corpus_generator.cc.o"
  "CMakeFiles/duplex_text.dir/corpus_generator.cc.o.d"
  "CMakeFiles/duplex_text.dir/tokenizer.cc.o"
  "CMakeFiles/duplex_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/duplex_text.dir/vocabulary.cc.o"
  "CMakeFiles/duplex_text.dir/vocabulary.cc.o.d"
  "libduplex_text.a"
  "libduplex_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duplex_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for duplex_storage.
# This may be replaced when dependencies are built.

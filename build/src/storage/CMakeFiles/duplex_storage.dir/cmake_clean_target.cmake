file(REMOVE_RECURSE
  "libduplex_storage.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/duplex_storage.dir/block_device.cc.o"
  "CMakeFiles/duplex_storage.dir/block_device.cc.o.d"
  "CMakeFiles/duplex_storage.dir/btree.cc.o"
  "CMakeFiles/duplex_storage.dir/btree.cc.o.d"
  "CMakeFiles/duplex_storage.dir/disk_array.cc.o"
  "CMakeFiles/duplex_storage.dir/disk_array.cc.o.d"
  "CMakeFiles/duplex_storage.dir/disk_model.cc.o"
  "CMakeFiles/duplex_storage.dir/disk_model.cc.o.d"
  "CMakeFiles/duplex_storage.dir/file_block_device.cc.o"
  "CMakeFiles/duplex_storage.dir/file_block_device.cc.o.d"
  "CMakeFiles/duplex_storage.dir/free_space.cc.o"
  "CMakeFiles/duplex_storage.dir/free_space.cc.o.d"
  "CMakeFiles/duplex_storage.dir/io_trace.cc.o"
  "CMakeFiles/duplex_storage.dir/io_trace.cc.o.d"
  "CMakeFiles/duplex_storage.dir/trace_executor.cc.o"
  "CMakeFiles/duplex_storage.dir/trace_executor.cc.o.d"
  "libduplex_storage.a"
  "libduplex_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duplex_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/block_device.cc" "src/storage/CMakeFiles/duplex_storage.dir/block_device.cc.o" "gcc" "src/storage/CMakeFiles/duplex_storage.dir/block_device.cc.o.d"
  "/root/repo/src/storage/btree.cc" "src/storage/CMakeFiles/duplex_storage.dir/btree.cc.o" "gcc" "src/storage/CMakeFiles/duplex_storage.dir/btree.cc.o.d"
  "/root/repo/src/storage/disk_array.cc" "src/storage/CMakeFiles/duplex_storage.dir/disk_array.cc.o" "gcc" "src/storage/CMakeFiles/duplex_storage.dir/disk_array.cc.o.d"
  "/root/repo/src/storage/disk_model.cc" "src/storage/CMakeFiles/duplex_storage.dir/disk_model.cc.o" "gcc" "src/storage/CMakeFiles/duplex_storage.dir/disk_model.cc.o.d"
  "/root/repo/src/storage/file_block_device.cc" "src/storage/CMakeFiles/duplex_storage.dir/file_block_device.cc.o" "gcc" "src/storage/CMakeFiles/duplex_storage.dir/file_block_device.cc.o.d"
  "/root/repo/src/storage/free_space.cc" "src/storage/CMakeFiles/duplex_storage.dir/free_space.cc.o" "gcc" "src/storage/CMakeFiles/duplex_storage.dir/free_space.cc.o.d"
  "/root/repo/src/storage/io_trace.cc" "src/storage/CMakeFiles/duplex_storage.dir/io_trace.cc.o" "gcc" "src/storage/CMakeFiles/duplex_storage.dir/io_trace.cc.o.d"
  "/root/repo/src/storage/trace_executor.cc" "src/storage/CMakeFiles/duplex_storage.dir/trace_executor.cc.o" "gcc" "src/storage/CMakeFiles/duplex_storage.dir/trace_executor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/duplex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

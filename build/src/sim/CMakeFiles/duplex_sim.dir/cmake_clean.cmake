file(REMOVE_RECURSE
  "CMakeFiles/duplex_sim.dir/pipeline.cc.o"
  "CMakeFiles/duplex_sim.dir/pipeline.cc.o.d"
  "libduplex_sim.a"
  "libduplex_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duplex_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

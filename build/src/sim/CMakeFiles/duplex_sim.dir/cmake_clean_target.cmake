file(REMOVE_RECURSE
  "libduplex_sim.a"
)

# Empty compiler generated dependencies file for duplex_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libduplex_core.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/batch_log.cc" "src/core/CMakeFiles/duplex_core.dir/batch_log.cc.o" "gcc" "src/core/CMakeFiles/duplex_core.dir/batch_log.cc.o.d"
  "/root/repo/src/core/bucket.cc" "src/core/CMakeFiles/duplex_core.dir/bucket.cc.o" "gcc" "src/core/CMakeFiles/duplex_core.dir/bucket.cc.o.d"
  "/root/repo/src/core/bucket_store.cc" "src/core/CMakeFiles/duplex_core.dir/bucket_store.cc.o" "gcc" "src/core/CMakeFiles/duplex_core.dir/bucket_store.cc.o.d"
  "/root/repo/src/core/codec_family.cc" "src/core/CMakeFiles/duplex_core.dir/codec_family.cc.o" "gcc" "src/core/CMakeFiles/duplex_core.dir/codec_family.cc.o.d"
  "/root/repo/src/core/directory.cc" "src/core/CMakeFiles/duplex_core.dir/directory.cc.o" "gcc" "src/core/CMakeFiles/duplex_core.dir/directory.cc.o.d"
  "/root/repo/src/core/inverted_index.cc" "src/core/CMakeFiles/duplex_core.dir/inverted_index.cc.o" "gcc" "src/core/CMakeFiles/duplex_core.dir/inverted_index.cc.o.d"
  "/root/repo/src/core/long_list_store.cc" "src/core/CMakeFiles/duplex_core.dir/long_list_store.cc.o" "gcc" "src/core/CMakeFiles/duplex_core.dir/long_list_store.cc.o.d"
  "/root/repo/src/core/memory_index.cc" "src/core/CMakeFiles/duplex_core.dir/memory_index.cc.o" "gcc" "src/core/CMakeFiles/duplex_core.dir/memory_index.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/core/CMakeFiles/duplex_core.dir/policy.cc.o" "gcc" "src/core/CMakeFiles/duplex_core.dir/policy.cc.o.d"
  "/root/repo/src/core/posting.cc" "src/core/CMakeFiles/duplex_core.dir/posting.cc.o" "gcc" "src/core/CMakeFiles/duplex_core.dir/posting.cc.o.d"
  "/root/repo/src/core/posting_codec.cc" "src/core/CMakeFiles/duplex_core.dir/posting_codec.cc.o" "gcc" "src/core/CMakeFiles/duplex_core.dir/posting_codec.cc.o.d"
  "/root/repo/src/core/snapshot.cc" "src/core/CMakeFiles/duplex_core.dir/snapshot.cc.o" "gcc" "src/core/CMakeFiles/duplex_core.dir/snapshot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/duplex_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/duplex_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/duplex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for duplex_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/duplex_core.dir/batch_log.cc.o"
  "CMakeFiles/duplex_core.dir/batch_log.cc.o.d"
  "CMakeFiles/duplex_core.dir/bucket.cc.o"
  "CMakeFiles/duplex_core.dir/bucket.cc.o.d"
  "CMakeFiles/duplex_core.dir/bucket_store.cc.o"
  "CMakeFiles/duplex_core.dir/bucket_store.cc.o.d"
  "CMakeFiles/duplex_core.dir/codec_family.cc.o"
  "CMakeFiles/duplex_core.dir/codec_family.cc.o.d"
  "CMakeFiles/duplex_core.dir/directory.cc.o"
  "CMakeFiles/duplex_core.dir/directory.cc.o.d"
  "CMakeFiles/duplex_core.dir/inverted_index.cc.o"
  "CMakeFiles/duplex_core.dir/inverted_index.cc.o.d"
  "CMakeFiles/duplex_core.dir/long_list_store.cc.o"
  "CMakeFiles/duplex_core.dir/long_list_store.cc.o.d"
  "CMakeFiles/duplex_core.dir/memory_index.cc.o"
  "CMakeFiles/duplex_core.dir/memory_index.cc.o.d"
  "CMakeFiles/duplex_core.dir/policy.cc.o"
  "CMakeFiles/duplex_core.dir/policy.cc.o.d"
  "CMakeFiles/duplex_core.dir/posting.cc.o"
  "CMakeFiles/duplex_core.dir/posting.cc.o.d"
  "CMakeFiles/duplex_core.dir/posting_codec.cc.o"
  "CMakeFiles/duplex_core.dir/posting_codec.cc.o.d"
  "CMakeFiles/duplex_core.dir/snapshot.cc.o"
  "CMakeFiles/duplex_core.dir/snapshot.cc.o.d"
  "libduplex_core.a"
  "libduplex_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duplex_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/duplex_ir.dir/boolean_query.cc.o"
  "CMakeFiles/duplex_ir.dir/boolean_query.cc.o.d"
  "CMakeFiles/duplex_ir.dir/query_eval.cc.o"
  "CMakeFiles/duplex_ir.dir/query_eval.cc.o.d"
  "CMakeFiles/duplex_ir.dir/query_workload.cc.o"
  "CMakeFiles/duplex_ir.dir/query_workload.cc.o.d"
  "CMakeFiles/duplex_ir.dir/read_latency.cc.o"
  "CMakeFiles/duplex_ir.dir/read_latency.cc.o.d"
  "CMakeFiles/duplex_ir.dir/vector_query.cc.o"
  "CMakeFiles/duplex_ir.dir/vector_query.cc.o.d"
  "libduplex_ir.a"
  "libduplex_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duplex_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for duplex_ir.
# This may be replaced when dependencies are built.

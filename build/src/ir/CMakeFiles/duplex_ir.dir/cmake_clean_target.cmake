file(REMOVE_RECURSE
  "libduplex_ir.a"
)

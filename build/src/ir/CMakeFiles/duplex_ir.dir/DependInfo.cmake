
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/boolean_query.cc" "src/ir/CMakeFiles/duplex_ir.dir/boolean_query.cc.o" "gcc" "src/ir/CMakeFiles/duplex_ir.dir/boolean_query.cc.o.d"
  "/root/repo/src/ir/query_eval.cc" "src/ir/CMakeFiles/duplex_ir.dir/query_eval.cc.o" "gcc" "src/ir/CMakeFiles/duplex_ir.dir/query_eval.cc.o.d"
  "/root/repo/src/ir/query_workload.cc" "src/ir/CMakeFiles/duplex_ir.dir/query_workload.cc.o" "gcc" "src/ir/CMakeFiles/duplex_ir.dir/query_workload.cc.o.d"
  "/root/repo/src/ir/read_latency.cc" "src/ir/CMakeFiles/duplex_ir.dir/read_latency.cc.o" "gcc" "src/ir/CMakeFiles/duplex_ir.dir/read_latency.cc.o.d"
  "/root/repo/src/ir/vector_query.cc" "src/ir/CMakeFiles/duplex_ir.dir/vector_query.cc.o" "gcc" "src/ir/CMakeFiles/duplex_ir.dir/vector_query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/duplex_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/duplex_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/duplex_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/duplex_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

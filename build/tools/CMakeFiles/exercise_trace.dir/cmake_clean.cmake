file(REMOVE_RECURSE
  "CMakeFiles/exercise_trace.dir/exercise_trace.cpp.o"
  "CMakeFiles/exercise_trace.dir/exercise_trace.cpp.o.d"
  "exercise_trace"
  "exercise_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exercise_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

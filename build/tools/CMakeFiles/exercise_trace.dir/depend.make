# Empty dependencies file for exercise_trace.
# This may be replaced when dependencies are built.

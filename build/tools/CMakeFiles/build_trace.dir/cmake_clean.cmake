file(REMOVE_RECURSE
  "CMakeFiles/build_trace.dir/build_trace.cpp.o"
  "CMakeFiles/build_trace.dir/build_trace.cpp.o.d"
  "build_trace"
  "build_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

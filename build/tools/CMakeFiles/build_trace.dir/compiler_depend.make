# Empty compiler generated dependencies file for build_trace.
# This may be replaced when dependencies are built.

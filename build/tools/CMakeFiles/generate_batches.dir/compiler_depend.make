# Empty compiler generated dependencies file for generate_batches.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/generate_batches.dir/generate_batches.cpp.o"
  "CMakeFiles/generate_batches.dir/generate_batches.cpp.o.d"
  "generate_batches"
  "generate_batches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate_batches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig14_time_per_update.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_policy_recommendation.dir/bench_policy_recommendation.cc.o"
  "CMakeFiles/bench_policy_recommendation.dir/bench_policy_recommendation.cc.o.d"
  "bench_policy_recommendation"
  "bench_policy_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_policy_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

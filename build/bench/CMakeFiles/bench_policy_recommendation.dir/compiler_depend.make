# Empty compiler generated dependencies file for bench_policy_recommendation.
# This may be replaced when dependencies are built.

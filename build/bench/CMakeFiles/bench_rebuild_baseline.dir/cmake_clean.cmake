file(REMOVE_RECURSE
  "CMakeFiles/bench_rebuild_baseline.dir/bench_rebuild_baseline.cc.o"
  "CMakeFiles/bench_rebuild_baseline.dir/bench_rebuild_baseline.cc.o.d"
  "bench_rebuild_baseline"
  "bench_rebuild_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rebuild_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

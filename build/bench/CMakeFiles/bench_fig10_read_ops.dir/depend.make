# Empty dependencies file for bench_fig10_read_ops.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_micro_query.
# This may be replaced when dependencies are built.

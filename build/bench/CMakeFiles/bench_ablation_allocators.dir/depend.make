# Empty dependencies file for bench_ablation_allocators.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig7_word_categories.
# This may be replaced when dependencies are built.

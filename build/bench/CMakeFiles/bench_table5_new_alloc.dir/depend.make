# Empty dependencies file for bench_table5_new_alloc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_new_alloc.dir/bench_table5_new_alloc.cc.o"
  "CMakeFiles/bench_table5_new_alloc.dir/bench_table5_new_alloc.cc.o.d"
  "bench_table5_new_alloc"
  "bench_table5_new_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_new_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

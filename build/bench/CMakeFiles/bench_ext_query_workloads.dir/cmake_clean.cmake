file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_query_workloads.dir/bench_ext_query_workloads.cc.o"
  "CMakeFiles/bench_ext_query_workloads.dir/bench_ext_query_workloads.cc.o.d"
  "bench_ext_query_workloads"
  "bench_ext_query_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_query_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

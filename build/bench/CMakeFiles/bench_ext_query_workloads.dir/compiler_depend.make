# Empty compiler generated dependencies file for bench_ext_query_workloads.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_bucket_tuning.dir/bench_ext_bucket_tuning.cc.o"
  "CMakeFiles/bench_ext_bucket_tuning.dir/bench_ext_bucket_tuning.cc.o.d"
  "bench_ext_bucket_tuning"
  "bench_ext_bucket_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_bucket_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

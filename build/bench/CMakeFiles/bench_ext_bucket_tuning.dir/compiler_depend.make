# Empty compiler generated dependencies file for bench_ext_bucket_tuning.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_12_proportional_k.dir/bench_fig11_12_proportional_k.cc.o"
  "CMakeFiles/bench_fig11_12_proportional_k.dir/bench_fig11_12_proportional_k.cc.o.d"
  "bench_fig11_12_proportional_k"
  "bench_fig11_12_proportional_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_12_proportional_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig11_12_proportional_k.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig9_utilization.
# This may be replaced when dependencies are built.

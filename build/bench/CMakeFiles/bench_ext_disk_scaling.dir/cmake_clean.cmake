file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_disk_scaling.dir/bench_ext_disk_scaling.cc.o"
  "CMakeFiles/bench_ext_disk_scaling.dir/bench_ext_disk_scaling.cc.o.d"
  "bench_ext_disk_scaling"
  "bench_ext_disk_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_disk_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig13_cumulative_time.
# This may be replaced when dependencies are built.

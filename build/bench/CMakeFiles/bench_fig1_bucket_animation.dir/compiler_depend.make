# Empty compiler generated dependencies file for bench_fig1_bucket_animation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_bucket_animation.dir/bench_fig1_bucket_animation.cc.o"
  "CMakeFiles/bench_fig1_bucket_animation.dir/bench_fig1_bucket_animation.cc.o.d"
  "bench_fig1_bucket_animation"
  "bench_fig1_bucket_animation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_bucket_animation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

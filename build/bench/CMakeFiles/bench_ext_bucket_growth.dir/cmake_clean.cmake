file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_bucket_growth.dir/bench_ext_bucket_growth.cc.o"
  "CMakeFiles/bench_ext_bucket_growth.dir/bench_ext_bucket_growth.cc.o.d"
  "bench_ext_bucket_growth"
  "bench_ext_bucket_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_bucket_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ext_bucket_growth.
# This may be replaced when dependencies are built.

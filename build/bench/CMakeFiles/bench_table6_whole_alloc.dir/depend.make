# Empty dependencies file for bench_table6_whole_alloc.
# This may be replaced when dependencies are built.

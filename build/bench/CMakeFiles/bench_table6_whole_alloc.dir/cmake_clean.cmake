file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_whole_alloc.dir/bench_table6_whole_alloc.cc.o"
  "CMakeFiles/bench_table6_whole_alloc.dir/bench_table6_whole_alloc.cc.o.d"
  "bench_table6_whole_alloc"
  "bench_table6_whole_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_whole_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

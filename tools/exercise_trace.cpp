// Stage 5 of the paper's Figure 3 pipeline as a standalone process: read
// an I/O trace (Figure 6 format) from stdin and replay it through the
// disk service-time model, printing per-update and cumulative times.
//
//   generate_batches | build_trace --style whole | exercise_trace --disks 4
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>

#include "storage/io_trace.h"
#include "storage/trace_executor.h"

int main(int argc, char** argv) {
  using namespace duplex;
  storage::ExecutorOptions options;
  std::string model = "seagate1993";
  for (int i = 1; i + 1 < argc; i += 2) {
    const char* flag = argv[i];
    const char* value = argv[i + 1];
    if (std::strcmp(flag, "--disks") == 0) {
      options.num_disks = static_cast<uint32_t>(atoi(value));
    } else if (std::strcmp(flag, "--buffer-blocks") == 0) {
      options.buffer_blocks = static_cast<uint64_t>(atoll(value));
    } else if (std::strcmp(flag, "--model") == 0) {
      model = value;
    } else if (std::strcmp(flag, "--coalesce") == 0) {
      options.coalesce = std::strcmp(value, "off") != 0;
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      return 2;
    }
  }
  if (model == "fast") {
    options.disk = storage::DiskModelParams::FastDisk();
  } else if (model == "optical") {
    options.disk = storage::DiskModelParams::OpticalDisk();
  } else if (model != "seagate1993") {
    std::cerr << "unknown disk model " << model
              << " (seagate1993|fast|optical)\n";
    return 2;
  }

  std::stringstream buffer;
  buffer << std::cin.rdbuf();
  Result<storage::IoTrace> trace = storage::IoTrace::Parse(buffer.str());
  if (!trace.ok()) {
    std::cerr << "bad trace: " << trace.status() << "\n";
    return 1;
  }
  storage::TraceExecutor executor(options);
  const storage::ExecutionResult result = executor.Execute(*trace);
  std::cout << "update\tseconds\tcumulative\n";
  for (size_t u = 0; u < result.update_seconds.size(); ++u) {
    std::cout << u << "\t" << result.update_seconds[u] << "\t"
              << result.cumulative_seconds[u] << "\n";
  }
  std::cerr << "total " << result.total_seconds() << " s; "
            << result.trace_events << " events -> "
            << result.issued_requests << " requests, " << result.seeks
            << " seeks, " << result.blocks_transferred
            << " blocks transferred\n";
  return 0;
}

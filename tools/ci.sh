#!/usr/bin/env bash
# CI entry point: build + test in Release, then rebuild with
# ThreadSanitizer (-DDUPLEX_SANITIZE=thread) and re-run the concurrency
# surface (thread pool, concurrent facade, sharded index) so every PR is
# race-checked. Usage: tools/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"
GEN=()
command -v ninja >/dev/null 2>&1 && GEN=(-G Ninja)

echo "=== Release build + full test suite ==="
cmake -B build-ci-release -S . "${GEN[@]}" \
  -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-ci-release -j "$JOBS"
ctest --test-dir build-ci-release --output-on-failure -j "$JOBS"

echo "=== ThreadSanitizer build + concurrency tests ==="
cmake -B build-ci-tsan -S . "${GEN[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDUPLEX_SANITIZE=thread >/dev/null
cmake --build build-ci-tsan -j "$JOBS" --target \
  util_thread_pool_test core_concurrent_index_test core_sharded_index_test
ctest --test-dir build-ci-tsan --output-on-failure -j "$JOBS" \
  -R 'ThreadPool|ConcurrentIndex|ShardedIndex'

echo "CI OK"

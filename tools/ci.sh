#!/usr/bin/env bash
# CI entry point: build + test in Release (with explicit buffer-pool,
# fault-injection, and observability passes), rebuild with ThreadSanitizer
# (-DDUPLEX_SANITIZE=thread) and re-run the concurrency surface (thread
# pool, concurrent facade, sharded index, cache stress) so every PR is
# race-checked, then rebuild the recovery surface with ASan+UBSan
# (-DDUPLEX_SANITIZE=address,undefined) — crash-path code runs rarely in
# production, so memory errors there hide longest. Finishes with smoke
# runs of the cache-sweep and compaction benches so BENCH_cache.json and
# BENCH_compaction.json stay fresh, plus the read-path bench gate that
# fails if the QueryExecutor seam regresses query throughput by >2%.
# Usage: tools/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"
GEN=()
command -v ninja >/dev/null 2>&1 && GEN=(-G Ninja)

echo "=== Release build + full test suite ==="
cmake -B build-ci-release -S . "${GEN[@]}" \
  -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-ci-release -j "$JOBS"
ctest --test-dir build-ci-release --output-on-failure -j "$JOBS"

echo "=== Buffer-pool pass (unit + equivalence + crash recovery) ==="
ctest --test-dir build-ci-release --output-on-failure -j "$JOBS" \
  -R 'BufferPool|CachingBlockDevice|CacheEquivalence|CacheCrashRecovery'

echo "=== Fault-injection + recovery pass ==="
ctest --test-dir build-ci-release --output-on-failure -j "$JOBS" \
  -R 'FaultSchedule|FaultInjecting|ChecksumBlockDevice|CrashSweep|ShardedRecovery|BatchLog|Scrub'

echo "=== Compaction pass (property + options + crash sweep + codec fuzz) ==="
ctest --test-dir build-ci-release --output-on-failure -j "$JOBS" \
  -R 'Compaction|CodecRoundTrip|CodecFuzz|DiskArray'

echo "=== Read-path pass (executor equivalence + chunk format + merging reader) ==="
ctest --test-dir build-ci-release --output-on-failure -j "$JOBS" \
  -R 'QueryExecutor|ChunkHeader|ChunkFormat|MergingReader|MergeDocLists'

echo "=== Observability pass (metrics + tracing + CLI exposition) ==="
ctest --test-dir build-ci-release --output-on-failure -j "$JOBS" \
  -R 'Counter|Gauge|LatencyHistogram|MetricsRegistry|GlobalMetrics|ScopedLatency|Tracer|ObservabilityScope|ObservedPipeline|ObservedComponents'
# The embedded Prometheus-text validator runs against a live `duplexctl
# metrics` invocation inside these two tests.
ctest --test-dir build-ci-release --output-on-failure \
  -R 'MetricsEmitsValidPrometheusAcrossLayers|TraceEmitsChromeTraceJson'

echo "=== ThreadSanitizer build + concurrency tests ==="
cmake -B build-ci-tsan -S . "${GEN[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDUPLEX_SANITIZE=thread >/dev/null
cmake --build build-ci-tsan -j "$JOBS" --target \
  util_thread_pool_test core_concurrent_index_test \
  core_sharded_index_test core_cache_stress_test \
  core_compaction_stress_test observability_stress_test \
  core_merging_reader_test
ctest --test-dir build-ci-tsan --output-on-failure -j "$JOBS" \
  -R 'ThreadPool|ConcurrentIndex|ShardedIndex|CacheStress|CompactionStress|ObservabilityStress|MergingReaderStress'

echo "=== ASan+UBSan build + recovery tests ==="
cmake -B build-ci-asan -S . "${GEN[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDUPLEX_SANITIZE=address,undefined >/dev/null
cmake --build build-ci-asan -j "$JOBS" --target \
  storage_fault_injection_test integration_crash_sweep_test \
  core_sharded_recovery_test core_batch_log_test \
  core_compaction_property_test core_codec_family_test \
  core_chunk_format_test
ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS" \
  -R 'FaultSchedule|FaultInjecting|ChecksumBlockDevice|CrashSweep|ShardedRecovery|BatchLog|CompactionProperty|CodecRoundTrip|CodecFuzz|ChunkHeader|ChunkFormat'

echo "=== Cache-sweep bench smoke (writes BENCH_cache.json) ==="
DUPLEX_BENCH_UPDATES="${DUPLEX_BENCH_UPDATES:-6}" \
DUPLEX_BENCH_DOCS="${DUPLEX_BENCH_DOCS:-150}" \
  ./build-ci-release/bench/bench_ext_cache_hit >/dev/null

echo "=== Compaction bench smoke (writes BENCH_compaction.json) ==="
DUPLEX_BENCH_UPDATES="${DUPLEX_BENCH_UPDATES:-6}" \
DUPLEX_BENCH_DOCS="${DUPLEX_BENCH_DOCS:-150}" \
  ./build-ci-release/bench/bench_ext_compaction >/dev/null

echo "=== Read-path bench smoke (executor vs direct-overload, <2% budget) ==="
./build-ci-release/bench/bench_ext_read_path

echo "CI OK"

#!/usr/bin/env bash
# CI entry point: build + test in Release (with explicit buffer-pool,
# fault-injection, and observability passes), rebuild with ThreadSanitizer
# (-DDUPLEX_SANITIZE=thread) and re-run the concurrency surface (thread
# pool, concurrent facade, sharded index, cache stress) so every PR is
# race-checked, then rebuild the recovery surface with ASan+UBSan
# (-DDUPLEX_SANITIZE=address,undefined) — crash-path code runs rarely in
# production, so memory errors there hide longest. Finishes with smoke
# runs of the cache-sweep and compaction benches so BENCH_cache.json and
# BENCH_compaction.json stay fresh, plus the read-path bench gate that
# fails if the QueryExecutor seam regresses query throughput by >2%.
# The network layer gets its own gates: a net pass in Release, the frame
# fuzz suite under ASan+UBSan, the ServerStress suite under TSan, a
# loopback smoke (duplexd on an ephemeral port, duplexctl against it,
# clean SIGTERM shutdown), and a saturation bench smoke that refreshes
# BENCH_server.json. The checkpoint subsystem gets a Release pass
# (superblock + checkpoint/recover + crash sweep), rides the ASan+UBSan
# recovery build, runs its reader-concurrency stress under TSan, extends
# the loopback smoke with a shutdown checkpoint + recover-demo, and
# refreshes BENCH_recovery.json. The admin plane rides the loopback
# smoke too: duplexd starts with --admin-port 0 and /healthz, /readyz,
# /metrics (exposition format checked), and /statusz are all hit over
# real HTTP; the async logger + admin/scrape-race tests run under TSan;
# and the observability bench smoke refreshes BENCH_observability.json.
# The live-ingest tier gets its own gates: a Release pass (unit +
# property differential + crash sweep + submit-live codec fuzz), the
# visibility-invariant stress under TSan, the delta crash sweep under
# ASan+UBSan, a loopback submit-live-then-immediately-query against the
# real duplexd (with the /statusz delta block checked), and a bench
# smoke that refreshes BENCH_live_ingest.json.
# Usage: tools/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"
GEN=()
command -v ninja >/dev/null 2>&1 && GEN=(-G Ninja)

echo "=== Release build + full test suite ==="
cmake -B build-ci-release -S . "${GEN[@]}" \
  -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-ci-release -j "$JOBS"
ctest --test-dir build-ci-release --output-on-failure -j "$JOBS"

echo "=== Buffer-pool pass (unit + equivalence + crash recovery) ==="
ctest --test-dir build-ci-release --output-on-failure -j "$JOBS" \
  -R 'BufferPool|CachingBlockDevice|CacheEquivalence|CacheCrashRecovery'

echo "=== Fault-injection + recovery pass ==="
ctest --test-dir build-ci-release --output-on-failure -j "$JOBS" \
  -R 'FaultSchedule|FaultInjecting|ChecksumBlockDevice|CrashSweep|ShardedRecovery|BatchLog|Scrub'

echo "=== Checkpoint pass (superblock + checkpoint/recover + crash sweep) ==="
ctest --test-dir build-ci-release --output-on-failure -j "$JOBS" \
  -R 'Checkpoint|Superblock'

echo "=== Compaction pass (property + options + crash sweep + codec fuzz) ==="
ctest --test-dir build-ci-release --output-on-failure -j "$JOBS" \
  -R 'Compaction|CodecRoundTrip|CodecFuzz|DiskArray'

echo "=== Read-path pass (executor equivalence + chunk format + merging reader) ==="
ctest --test-dir build-ci-release --output-on-failure -j "$JOBS" \
  -R 'QueryExecutor|ChunkHeader|ChunkFormat|MergingReader|MergeDocLists'

echo "=== Observability pass (metrics + tracing + logging + admin plane) ==="
ctest --test-dir build-ci-release --output-on-failure -j "$JOBS" \
  -R 'Counter|Gauge|LatencyHistogram|MetricsRegistry|GlobalMetrics|ScopedLatency|Tracer|ObservabilityScope|ObservedPipeline|ObservedComponents|Logger|AdminServer|Readiness|SlowQueryLog|ServerInstrumentation|DuplexdAdmin|LabelEscaping'
# The embedded Prometheus-text validator runs against a live `duplexctl
# metrics` invocation inside these two tests.
ctest --test-dir build-ci-release --output-on-failure \
  -R 'MetricsEmitsValidPrometheusAcrossLayers|TraceEmitsChromeTraceJson'

echo "=== Network pass (frame codec + server protocol + bounded queue) ==="
ctest --test-dir build-ci-release --output-on-failure -j "$JOBS" \
  -R 'FrameHeader|FrameAssembler|PayloadCodec|NetServer|ServerStress|BoundedQueue'

echo "=== Live-ingest pass (delta tier + property diff + crash sweep) ==="
ctest --test-dir build-ci-release --output-on-failure -j "$JOBS" \
  -R 'LiveIndex|LiveProperty|DeltaCrashSweep|SubmitLive'

echo "=== ThreadSanitizer build + concurrency tests ==="
cmake -B build-ci-tsan -S . "${GEN[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDUPLEX_SANITIZE=thread >/dev/null
cmake --build build-ci-tsan -j "$JOBS" --target \
  util_thread_pool_test core_concurrent_index_test \
  core_sharded_index_test core_cache_stress_test \
  core_compaction_stress_test observability_stress_test \
  core_merging_reader_test net_server_stress_test core_checkpoint_test \
  util_log_test net_admin_test core_live_index_stress_test
ctest --test-dir build-ci-tsan --output-on-failure -j "$JOBS" \
  -R 'ThreadPool|ConcurrentIndex|ShardedIndex|CacheStress|CompactionStress|ObservabilityStress|MergingReaderStress|ServerStress|CheckpointStress|Logger|ServerInstrumentation|AdminServer|Readiness|SlowQueryLog|LiveIndexStress'

echo "=== ASan+UBSan build + recovery tests ==="
cmake -B build-ci-asan -S . "${GEN[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDUPLEX_SANITIZE=address,undefined >/dev/null
cmake --build build-ci-asan -j "$JOBS" --target \
  storage_fault_injection_test integration_crash_sweep_test \
  core_sharded_recovery_test core_batch_log_test \
  core_compaction_property_test core_codec_family_test \
  core_chunk_format_test net_frame_test \
  storage_superblock_test core_checkpoint_test \
  integration_checkpoint_crash_sweep_test \
  integration_delta_crash_sweep_test
ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS" \
  -R 'FaultSchedule|FaultInjecting|ChecksumBlockDevice|CrashSweep|ShardedRecovery|BatchLog|CompactionProperty|CodecRoundTrip|CodecFuzz|ChunkHeader|ChunkFormat|FrameHeader|FrameAssembler|PayloadCodec|SubmitLiveCodec|Checkpoint|Superblock'

echo "=== Cache-sweep bench smoke (writes BENCH_cache.json) ==="
DUPLEX_BENCH_UPDATES="${DUPLEX_BENCH_UPDATES:-6}" \
DUPLEX_BENCH_DOCS="${DUPLEX_BENCH_DOCS:-150}" \
  ./build-ci-release/bench/bench_ext_cache_hit >/dev/null

echo "=== Compaction bench smoke (writes BENCH_compaction.json) ==="
DUPLEX_BENCH_UPDATES="${DUPLEX_BENCH_UPDATES:-6}" \
DUPLEX_BENCH_DOCS="${DUPLEX_BENCH_DOCS:-150}" \
  ./build-ci-release/bench/bench_ext_compaction >/dev/null

echo "=== Read-path bench smoke (executor vs direct-overload, <2% budget) ==="
./build-ci-release/bench/bench_ext_read_path

echo "=== Loopback smoke (duplexd + duplexctl + clean SIGTERM shutdown) ==="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
printf 'incremental updates of inverted lists\n' > "$SMOKE_DIR/a.txt"
printf 'text document retrieval systems\n' > "$SMOKE_DIR/b.txt"
./build-ci-release/tools/duplexd --port 0 --admin-port 0 \
  --slow-query-ms 50 --wal "$SMOKE_DIR/smoke.wal" \
  --checkpoint "$SMOKE_DIR/ckpt" \
  --live-ingest --drain-interval-ms 25 \
  "$SMOKE_DIR/a.txt" "$SMOKE_DIR/b.txt" \
  > "$SMOKE_DIR/duplexd.out" 2> "$SMOKE_DIR/duplexd.err" &
DUPLEXD_PID=$!
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^duplexd listening on port \([0-9]*\)$/\1/p' \
    "$SMOKE_DIR/duplexd.out" 2>/dev/null || true)"
  [ -n "$PORT" ] && break
  kill -0 "$DUPLEXD_PID" 2>/dev/null || {
    echo "duplexd died at startup"; cat "$SMOKE_DIR/duplexd.err"; exit 1; }
  sleep 0.1
done
[ -n "$PORT" ] || { echo "duplexd never printed its port"; exit 1; }
./build-ci-release/examples/duplexctl net-ping 127.0.0.1 "$PORT"
./build-ci-release/examples/duplexctl net-query 127.0.0.1 "$PORT" \
  'incremental AND updates' | grep -q '1 matching documents' \
  || { echo "net-query found nothing"; exit 1; }
printf 'a freshly submitted document about updates\n' > "$SMOKE_DIR/c.txt"
./build-ci-release/examples/duplexctl net-submit 127.0.0.1 "$PORT" \
  "$SMOKE_DIR/c.txt" | grep -q 'accepted 1' \
  || { echo "net-submit not accepted"; exit 1; }
# Live ingest: the submit-live ack IS visibility, so the query fired
# straight after it must find the document — whether it is still in the
# delta tier or the 25 ms drainer already moved it to the shards.
printf 'a live wire document about inverted deltas\n' > "$SMOKE_DIR/live.txt"
./build-ci-release/examples/duplexctl net-submit-live 127.0.0.1 "$PORT" \
  "$SMOKE_DIR/live.txt" | grep -q 'visible now' \
  || { echo "net-submit-live not acked"; exit 1; }
./build-ci-release/examples/duplexctl net-query 127.0.0.1 "$PORT" \
  'deltas' | grep -q '1 matching documents' \
  || { echo "live document not immediately visible"; exit 1; }
# Buffer to a file before grepping: `grep -q` exits at the first match,
# and with pipefail a SIGPIPE to duplexctl mid-write would read as
# failure (the stats JSON is now larger than one stdio buffer).
./build-ci-release/examples/duplexctl net-stats 127.0.0.1 "$PORT" \
  > "$SMOKE_DIR/stats.json"
grep -q '"index"' "$SMOKE_DIR/stats.json" \
  || { echo "net-stats missing index JSON"; exit 1; }

# Admin plane: liveness, readiness, Prometheus exposition, and /statusz
# over real HTTP (duplexctl's admin subcommands wrap HTTP GET).
ADMIN_PORT="$(sed -n 's/^duplexd admin listening on port \([0-9]*\)$/\1/p' \
  "$SMOKE_DIR/duplexd.out")"
[ -n "$ADMIN_PORT" ] || { echo "duplexd never printed its admin port"; exit 1; }
./build-ci-release/examples/duplexctl net-health 127.0.0.1 "$ADMIN_PORT" \
  | grep -q 'ok' || { echo "/healthz not ok"; exit 1; }
./build-ci-release/examples/duplexctl net-ready 127.0.0.1 "$ADMIN_PORT" \
  | grep -q 'ready' || { echo "/readyz not ready"; exit 1; }
./build-ci-release/examples/duplexctl net-metrics 127.0.0.1 "$ADMIN_PORT" \
  > "$SMOKE_DIR/metrics.prom"
grep -q '^# TYPE duplex_net_requests_total counter' "$SMOKE_DIR/metrics.prom" \
  || { echo "/metrics missing request counter TYPE line"; exit 1; }
grep -q '^# TYPE duplex_net_phase_ns histogram' "$SMOKE_DIR/metrics.prom" \
  || { echo "/metrics missing phase histogram TYPE line"; exit 1; }
grep -q '^duplex_net_phase_ns_bucket{phase="execute",le="' \
  "$SMOKE_DIR/metrics.prom" \
  || { echo "/metrics missing labeled histogram buckets"; exit 1; }
./build-ci-release/examples/duplexctl net-status 127.0.0.1 "$ADMIN_PORT" \
  > "$SMOKE_DIR/statusz.json"
grep -q '"ready": true' "$SMOKE_DIR/statusz.json" \
  || { echo "/statusz not ready"; exit 1; }
grep -q '"attached": true' "$SMOKE_DIR/statusz.json" \
  || { echo "/statusz missing WAL status"; exit 1; }
grep -q '"delta"' "$SMOKE_DIR/statusz.json" \
  || { echo "/statusz missing live delta block"; exit 1; }
kill -TERM "$DUPLEXD_PID"
wait "$DUPLEXD_PID" || { echo "duplexd exited non-zero"; \
  cat "$SMOKE_DIR/duplexd.err"; exit 1; }
[ -s "$SMOKE_DIR/smoke.wal" ] || { echo "WAL not written"; exit 1; }
# SIGTERM drain ends with a final checkpoint: the dual-slot superblock
# must exist and the offline CLI must recover through it.
[ -s "$SMOKE_DIR/ckpt.super" ] \
  || { echo "shutdown checkpoint superblock missing"; exit 1; }
./build-ci-release/examples/duplexctl recover-demo >/dev/null \
  || { echo "recover-demo failed"; exit 1; }

echo "=== Server saturation bench smoke (writes BENCH_server.json) ==="
DUPLEX_BENCH_NET_MS="${DUPLEX_BENCH_NET_MS:-500}" \
DUPLEX_BENCH_NET_DOCS="${DUPLEX_BENCH_NET_DOCS:-500}" \
  ./build-ci-release/bench/bench_ext_server_saturation >/dev/null

echo "=== Observability bench smoke (writes BENCH_observability.json) ==="
# Informational, not a hard gate: the micro phases measure tens of
# microseconds of instrumentation against tens of milliseconds of work,
# so shared-machine noise swings them past any fixed threshold.
./build-ci-release/bench/bench_ext_observability 2>/dev/null \
  | tail -n 8

echo "=== Recovery bench smoke (writes BENCH_recovery.json) ==="
DUPLEX_BENCH_RECOVERY_MAX="${DUPLEX_BENCH_RECOVERY_MAX:-16}" \
DUPLEX_BENCH_RECOVERY_DOCS="${DUPLEX_BENCH_RECOVERY_DOCS:-80}" \
  ./build-ci-release/bench/bench_ext_recovery >/dev/null

echo "=== Live-ingest bench smoke (writes BENCH_live_ingest.json) ==="
DUPLEX_BENCH_DOCS="${DUPLEX_BENCH_DOCS:-300}" \
DUPLEX_BENCH_LIVE_SUBMITS="${DUPLEX_BENCH_LIVE_SUBMITS:-300}" \
  ./build-ci-release/bench/bench_ext_live_ingest >/dev/null

echo "CI OK"

// duplexd — the duplex index as a network service: a word-partitioned
// ShardedIndex behind the length-prefixed TCP protocol in net/frame.h,
// served by a fixed worker pool with explicit backpressure (full queues
// answer BUSY, garbage frames answer GoAway). Queries fan out under
// per-shard shared locks, so submit-documents batches applying on one
// shard never block reads on another — the paper's 24x7 incremental-
// update story, carried over a socket.
//
//   duplexd [--port N] [--shards N] [--workers N] [--queue N]
//           [--wal PATH] [--compact-interval MS] [file-or-dir]...
//
// Input files are indexed before the listener opens. --port 0 (default)
// binds an ephemeral port; the chosen port is printed as
// "duplexd listening on port N" (stdout, flushed) for scripts to parse.
// SIGINT/SIGTERM shut down cleanly: stop accepting, drain admitted
// requests, stop background compaction, flush buffered documents through
// the WAL, exit 0.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_log.h"
#include "core/sharded_index.h"
#include "net/server.h"
#include "net/service.h"
#include "util/metrics.h"
#include "util/tracer.h"

namespace {

namespace fs = std::filesystem;
using namespace duplex;

std::atomic<bool> g_shutdown{false};

void HandleShutdownSignal(int) { g_shutdown.store(true); }

struct DaemonFlags {
  uint16_t port = 0;
  uint32_t shards = 4;
  uint32_t workers = 4;
  uint32_t queue = 1024;
  std::string wal;
  uint32_t compact_interval_ms = 0;  // 0 = no background compaction
  std::vector<std::string> inputs;
};

core::ShardedIndexOptions IndexOptionsFor(uint32_t shards) {
  core::IndexOptions total;
  total.buckets.num_buckets = 1024;
  total.buckets.bucket_capacity = 512;
  total.policy = core::Policy::RecommendedUpdateOptimized();
  total.block_postings = 128;
  total.disks.num_disks = 2;
  total.disks.blocks_per_disk = 1 << 20;
  total.disks.checksums = true;
  total.materialize = true;
  total.bucket_grow_threshold = 0.85;
  return core::ShardedIndexOptions::Partition(total, shards);
}

int IndexInputs(core::ShardedIndex& index, core::BatchLog* wal,
                const std::vector<std::string>& inputs) {
  std::vector<fs::path> files;
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(input)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else if (fs::is_regular_file(input, ec)) {
      files.emplace_back(input);
    } else {
      std::cerr << "skipping " << input << " (not a file or directory)\n";
    }
  }
  std::sort(files.begin(), files.end());
  size_t indexed = 0;
  for (const fs::path& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "cannot read " << file << ", skipping\n";
      continue;
    }
    std::ostringstream text;
    text << in.rdbuf();
    index.AddDocument(text.str());
    ++indexed;
    if (index.buffered_documents() >= 64) {
      if (Status s = index.FlushDocumentsLogged(wal); !s.ok()) {
        std::cerr << "flush failed: " << s << "\n";
        return 1;
      }
    }
  }
  if (Status s = index.FlushDocumentsLogged(wal); !s.ok()) {
    std::cerr << "flush failed: " << s << "\n";
    return 1;
  }
  if (indexed > 0) {
    std::cerr << "indexed " << indexed << " documents at startup\n";
  }
  return 0;
}

int Run(const DaemonFlags& flags) {
  // Registry and tracer outlive every component that fetches handles.
  MetricsRegistry registry;
  Tracer tracer;
  SetGlobalMetrics(&registry);
  SetGlobalTracer(&tracer);

  core::ShardedIndex index(IndexOptionsFor(flags.shards));

  std::unique_ptr<core::BatchLog> wal;
  if (!flags.wal.empty()) {
    Result<std::unique_ptr<core::BatchLog>> opened =
        core::BatchLog::Open(flags.wal);
    if (!opened.ok()) {
      std::cerr << "cannot open WAL " << flags.wal << ": "
                << opened.status() << "\n";
      return 1;
    }
    wal = std::move(*opened);
  }

  if (int rc = IndexInputs(index, wal.get(), flags.inputs); rc != 0) {
    return rc;
  }

  if (flags.compact_interval_ms > 0) {
    index.StartBackgroundCompaction(
        std::chrono::milliseconds(flags.compact_interval_ms));
  }

  net::ShardedIndexService service(&index, wal.get());
  net::ServerOptions options;
  options.port = flags.port;
  options.num_workers = flags.workers;
  options.global_queue = flags.queue;
  net::Server server(&service, options);
  if (Status s = server.Start(); !s.ok()) {
    std::cerr << "cannot start server: " << s << "\n";
    return 1;
  }
  // Scripts parse this line for the ephemeral port; keep the format
  // stable and flush before blocking.
  std::cout << "duplexd listening on port " << server.port() << std::endl;

  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGTERM, HandleShutdownSignal);
  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  std::cerr << "shutting down: draining requests\n";
  server.Stop();
  index.StopBackgroundCompaction();
  if (Status s = service.Flush(); !s.ok()) {
    std::cerr << "flush on shutdown failed: " << s << "\n";
    return 1;
  }
  std::cerr << "served " << server.requests_handled() << " requests ("
            << server.requests_rejected() << " rejected) over "
            << server.connections_accepted() << " connections\n";
  SetGlobalTracer(nullptr);
  SetGlobalMetrics(nullptr);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  DaemonFlags flags;
  std::vector<std::string> args(argv + 1, argv + argc);
  size_t i = 0;
  while (i < args.size()) {
    const std::string& arg = args[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= args.size()) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return args[++i].c_str();
    };
    if (arg == "--port") {
      flags.port = static_cast<uint16_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--shards") {
      flags.shards = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--workers") {
      flags.workers = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--queue") {
      flags.queue = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--wal") {
      flags.wal = next();
    } else if (arg == "--compact-interval") {
      flags.compact_interval_ms =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: duplexd [--port N] [--shards N] [--workers N] "
                   "[--queue N] [--wal PATH]\n"
                   "               [--compact-interval MS] [file-or-dir]...\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    } else {
      flags.inputs.push_back(arg);
    }
    ++i;
  }
  if (flags.shards == 0 || flags.workers == 0 || flags.queue == 0) {
    std::cerr << "--shards, --workers and --queue must be positive\n";
    return 2;
  }
  return Run(flags);
}

// duplexd — the duplex index as a network service: a word-partitioned
// ShardedIndex behind the length-prefixed TCP protocol in net/frame.h,
// served by a fixed worker pool with explicit backpressure (full queues
// answer BUSY, garbage frames answer GoAway). Queries fan out under
// per-shard shared locks, so submit-documents batches applying on one
// shard never block reads on another — the paper's 24x7 incremental-
// update story, carried over a socket.
//
//   duplexd [--port N] [--shards N] [--workers N] [--queue N]
//           [--wal PATH] [--checkpoint PREFIX] [--checkpoint-interval MS]
//           [--compact-interval MS] [--admin-port N] [--slow-query-ms N]
//           [--live-ingest] [--drain-interval-ms MS] [--delta-cap-docs N]
//           [--log-level LEVEL] [file-or-dir]...
//
// --live-ingest attaches the immediate-visibility tier (core::LiveIndex):
// kSubmitLive documents are durable + queryable at the ack, queries read
// the delta + disk overlay, and a background drainer batches deltas into
// the shards every --drain-interval-ms. --delta-cap-docs bounds the
// undrained memtable; past it, live submits answer typed BUSY
// (kResourceExhausted) that clients retry with backoff.
//
// Input files are indexed before the listener opens. --port 0 (default)
// binds an ephemeral port; the chosen port is printed as
// "duplexd listening on port N" (stdout, flushed) for scripts to parse.
// SIGINT/SIGTERM shut down cleanly: stop accepting, drain admitted
// requests, stop background compaction, flush buffered documents through
// the WAL, exit 0.
//
// With --wal the index is recovered at startup; with --checkpoint too,
// recovery goes through core::Checkpointer (last durable checkpoint +
// WAL tail instead of full history), checkpoints repeat every
// --checkpoint-interval, and the drain path ends with a final checkpoint
// so a clean shutdown restarts with zero WAL replay.
//
// --admin-port opens the telemetry plane (net::AdminServer) BEFORE
// recovery starts, so /readyz narrates the startup ladder (503 + stage)
// and flips to 200 only once the request listener serves; it prints
// "duplexd admin listening on port N" on stdout. --slow-query-ms feeds
// the /slowz ring; --log-level selects the JSON-lines stderr log.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_log.h"
#include "core/checkpoint.h"
#include "core/live_index.h"
#include "core/sharded_index.h"
#include "net/admin_server.h"
#include "net/server.h"
#include "net/service.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/tracer.h"

namespace {

namespace fs = std::filesystem;
using namespace duplex;

std::atomic<bool> g_shutdown{false};

void HandleShutdownSignal(int) { g_shutdown.store(true); }

struct DaemonFlags {
  uint16_t port = 0;
  uint32_t shards = 4;
  uint32_t workers = 4;
  uint32_t queue = 1024;
  std::string wal;
  std::string checkpoint;              // prefix; empty = no checkpoints
  uint32_t checkpoint_interval_ms = 0;  // 0 = only on shutdown
  uint32_t compact_interval_ms = 0;  // 0 = no background compaction
  int admin_port = -1;       // -1 = no admin plane; 0 = ephemeral
  uint32_t slow_query_ms = 0;  // 0 = slow-query log off
  bool live_ingest = false;
  uint32_t drain_interval_ms = 50;
  uint32_t delta_cap_docs = 100000;  // 0 = unbounded
  LogLevel log_level = LogLevel::kInfo;
  // Test hooks: artificially extend the recovery and drain windows so
  // integration tests can observe /readyz mid-transition.
  uint32_t test_recovery_delay_ms = 0;
  uint32_t test_drain_delay_ms = 0;
  std::vector<std::string> inputs;
};

const char* RecoveryModeName(core::RecoveryMode mode) {
  switch (mode) {
    case core::RecoveryMode::kEmpty:
      return "empty";
    case core::RecoveryMode::kCheckpointTail:
      return "checkpoint+tail";
    case core::RecoveryMode::kFullRebuild:
      return "full-rebuild";
  }
  return "unknown";
}

core::ShardedIndexOptions IndexOptionsFor(uint32_t shards) {
  core::IndexOptions total;
  total.buckets.num_buckets = 1024;
  total.buckets.bucket_capacity = 512;
  total.policy = core::Policy::RecommendedUpdateOptimized();
  total.block_postings = 128;
  total.disks.num_disks = 2;
  total.disks.blocks_per_disk = 1 << 20;
  total.disks.checksums = true;
  total.materialize = true;
  total.bucket_grow_threshold = 0.85;
  return core::ShardedIndexOptions::Partition(total, shards);
}

int IndexInputs(core::ShardedIndex& index, core::BatchLog* wal,
                const std::vector<std::string>& inputs) {
  std::vector<fs::path> files;
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(input)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else if (fs::is_regular_file(input, ec)) {
      files.emplace_back(input);
    } else {
      std::cerr << "skipping " << input << " (not a file or directory)\n";
    }
  }
  std::sort(files.begin(), files.end());
  size_t indexed = 0;
  for (const fs::path& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "cannot read " << file << ", skipping\n";
      continue;
    }
    std::ostringstream text;
    text << in.rdbuf();
    index.AddDocument(text.str());
    ++indexed;
    if (index.buffered_documents() >= 64) {
      if (Status s = index.FlushDocumentsLogged(wal); !s.ok()) {
        std::cerr << "flush failed: " << s << "\n";
        return 1;
      }
    }
  }
  if (Status s = index.FlushDocumentsLogged(wal); !s.ok()) {
    std::cerr << "flush failed: " << s << "\n";
    return 1;
  }
  if (indexed > 0) {
    std::cerr << "indexed " << indexed << " documents at startup\n";
  }
  return 0;
}

// /statusz assembly: everything the daemon can observe without racing the
// data plane. `serving` gates the index/WAL reads — before the request
// listener is up, recovery is still mutating both from the main thread,
// so the admin plane reports only lifecycle data until then. Once
// serving, WAL state is read under the submit mutex (GetWalStatus) and
// checkpoint state from the daemon's atomics.
struct StatusState {
  uint64_t start_ns = 0;
  uint32_t shards = 0;
  std::atomic<bool> serving{false};
  std::atomic<uint64_t> last_ckpt_seq{0};
  std::atomic<uint64_t> last_ckpt_epoch{0};
  std::atomic<uint64_t> last_ckpt_ns{0};  // MonotonicNanos; 0 = never
};

std::string BuildStatusz(const StatusState& state, net::Readiness& readiness,
                         core::ShardedIndex& index,
                         net::ShardedIndexService& service,
                         net::Server& server, core::LiveIndex* live) {
  const uint64_t now_ns = MonotonicNanos();
  std::ostringstream os;
  os << "{\n";
  os << "  \"uptime_s\": " << (now_ns - state.start_ns) / 1000000000 << ",\n";
  os << "  \"ready\": " << (readiness.ready() ? "true" : "false") << ",\n";
  os << "  \"stage\": \"" << JsonEscapeString(readiness.stage()) << "\",\n";
  os << "  \"shards\": " << state.shards << ",\n";
  const bool serving = state.serving.load(std::memory_order_acquire);
  os << "  \"queue\": {\"depth\": " << (serving ? server.queue_depth() : 0)
     << ", \"capacity\": " << server.queue_capacity() << "},\n";
  os << "  \"connections\": " << (serving ? server.open_connections() : 0)
     << ",\n";
  os << "  \"requests\": {\"handled\": " << server.requests_handled()
     << ", \"rejected\": " << server.requests_rejected() << "},\n";
  os << "  \"slow_queries\": " << server.slow_queries().total_recorded()
     << ",\n";
  if (serving) {
    const net::ShardedIndexService::WalStatus wal = service.GetWalStatus();
    os << "  \"wal\": {\"attached\": " << (wal.attached ? "true" : "false")
       << ", \"tail_batches\": " << wal.tail_batches
       << ", \"base_epoch\": " << wal.base_epoch
       << ", \"next_id\": " << wal.next_id << "},\n";
    const core::CompactionStats compaction = index.compaction_totals();
    os << "  \"compaction\": {\"rounds\": " << compaction.rounds
       << ", \"lists_compacted\": " << compaction.lists_compacted
       << ", \"postings_rewritten\": " << compaction.postings_rewritten
       << "},\n";
    if (live != nullptr) {
      const core::LiveIndex::DeltaStatus delta = live->GetDeltaStatus();
      os << "  \"delta\": {\"epoch\": " << delta.epoch
         << ", \"active_docs\": " << delta.active_docs
         << ", \"draining_docs\": " << delta.draining_docs
         << ", \"postings\": " << delta.postings
         << ", \"drain_rounds\": " << delta.drain_rounds
         << ", \"last_drain_ns\": " << delta.last_drain_ns
         << ", \"busy_rejections\": " << delta.busy_rejections
         << ", \"oldest_age_ms\": " << delta.oldest_age_ms
         << ", \"drainer_running\": "
         << (delta.drainer_running ? "true" : "false")
         << ", \"drain_status\": \""
         << JsonEscapeString(delta.drain_status.ok()
                                 ? "ok"
                                 : delta.drain_status.message())
         << "\"},\n";
    } else {
      os << "  \"delta\": null,\n";
    }
  } else {
    os << "  \"wal\": null,\n  \"compaction\": null,\n  \"delta\": null,\n";
  }
  const uint64_t ckpt_ns = state.last_ckpt_ns.load(std::memory_order_relaxed);
  if (ckpt_ns != 0) {
    os << "  \"checkpoint\": {\"last_seq\": "
       << state.last_ckpt_seq.load(std::memory_order_relaxed)
       << ", \"last_epoch\": "
       << state.last_ckpt_epoch.load(std::memory_order_relaxed)
       << ", \"age_s\": " << (now_ns - ckpt_ns) / 1000000000 << "}\n";
  } else {
    os << "  \"checkpoint\": null\n";
  }
  os << "}\n";
  return os.str();
}

int Run(const DaemonFlags& flags) {
  // Logger first (everything below logs through it), then registry and
  // tracer; all three outlive every component that fetches handles.
  LogOptions log_options;
  log_options.min_level = flags.log_level;
  Logger logger(log_options);
  SetGlobalLog(&logger);
  MetricsRegistry registry;
  Tracer tracer;
  SetGlobalMetrics(&registry);
  SetGlobalTracer(&tracer);

  StatusState status_state;
  status_state.start_ns = MonotonicNanos();
  status_state.shards = flags.shards;

  core::ShardedIndex index(IndexOptionsFor(flags.shards));

  // The WAL opens before the admin plane so a bad --wal path fails fast;
  // the open itself is cheap — the slow part (recovery) comes after the
  // admin plane is up and can narrate it.
  std::unique_ptr<core::BatchLog> wal;
  if (!flags.wal.empty()) {
    Result<std::unique_ptr<core::BatchLog>> opened =
        core::BatchLog::Open(flags.wal);
    if (!opened.ok()) {
      std::cerr << "cannot open WAL " << flags.wal << ": "
                << opened.status() << "\n";
      return 1;
    }
    wal = std::move(*opened);
  }

  // The live tier is constructed up front (the doc-id counter lives in
  // the ShardedIndex, so an idle LiveIndex is inert during recovery);
  // its drainer starts only once the daemon serves.
  std::unique_ptr<core::LiveIndex> live;
  if (flags.live_ingest) {
    core::LiveIndex::Options live_options;
    live_options.delta_cap_docs = flags.delta_cap_docs;
    live_options.drain_interval =
        std::chrono::milliseconds(flags.drain_interval_ms);
    live = std::make_unique<core::LiveIndex>(&index, wal.get(),
                                             live_options);
  }

  net::ShardedIndexService service(&index, wal.get(), live.get());
  net::ServerOptions options;
  options.port = flags.port;
  options.num_workers = flags.workers;
  options.global_queue = flags.queue;
  options.slow_query_threshold =
      std::chrono::milliseconds(flags.slow_query_ms);
  net::Server server(&service, options);

  // Telemetry plane: starts BEFORE recovery so /readyz reports the
  // startup ladder while it runs, answers 503 until serving.
  net::Readiness readiness;
  net::AdminServerOptions admin_options;
  admin_options.port = static_cast<uint16_t>(
      flags.admin_port < 0 ? 0 : flags.admin_port);
  admin_options.readiness = &readiness;
  admin_options.slow_log = &server.slow_queries();
  admin_options.statusz = [&] {
    return BuildStatusz(status_state, readiness, index, service, server,
                        live.get());
  };
  net::AdminServer admin(admin_options);
  // Catch shutdown signals before anything is externally reachable: once
  // the admin port is announced, an orchestrator may SIGTERM at any
  // moment, and the default action would kill the process mid-startup
  // instead of letting it drain. A signal during startup is honored
  // right after the serving loop is entered.
  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGTERM, HandleShutdownSignal);
  if (flags.admin_port >= 0) {
    if (Status s = admin.Start(); !s.ok()) {
      std::cerr << "cannot start admin server: " << s << "\n";
      return 1;
    }
    std::cout << "duplexd admin listening on port " << admin.port()
              << std::endl;
  }

  // Recover whatever the WAL (and checkpoints, when configured) hold
  // before indexing new inputs or serving traffic.
  std::unique_ptr<core::Checkpointer> checkpointer;
  if (!flags.checkpoint.empty()) {
    core::CheckpointOptions ckpt_options;
    ckpt_options.prefix = flags.checkpoint;
    checkpointer = std::make_unique<core::Checkpointer>(ckpt_options);
  }
  readiness.SetStage("recovering");
  if (flags.test_recovery_delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(flags.test_recovery_delay_ms));
  }
  if (checkpointer != nullptr) {
    Result<core::RecoveryInfo> recovered =
        checkpointer->Recover(&index, wal.get());
    if (!recovered.ok()) {
      std::cerr << "recovery failed: " << recovered.status() << "\n";
      return 1;
    }
    LogInfo("duplexd.recovered")
        .Str("mode", RecoveryModeName(recovered->mode))
        .U64("batches_replayed", recovered->batches_replayed)
        .Str("detail", recovered->detail);
    std::cerr << "recovered (" << RecoveryModeName(recovered->mode)
              << "): " << recovered->batches_replayed
              << " WAL batches replayed; " << recovered->detail << "\n";
  } else if (wal != nullptr && wal->batches_logged() > 0) {
    // No checkpointing configured: the only recovery path is replaying
    // the full history into the fresh index.
    uint64_t replayed = 0;
    Status s = wal->ReplayFrom(0, [&](const core::BatchLog::LoggedBatch& b) {
      ++replayed;
      // Word strings first: the fresh index's vocabulary knows nothing,
      // and the postings below reference the ids these strings name.
      if (Status words = index.RestoreBatchWords(b.docs, b.words);
          !words.ok()) {
        return words;
      }
      Status applied = b.materialized ? index.ApplyInvertedBatch(b.docs)
                                      : index.ApplyBatchUpdate(b.counts);
      if (!applied.ok()) return applied;
      return index.FlushCaches();
    });
    if (!s.ok()) {
      std::cerr << "WAL replay failed: " << s << "\n";
      return 1;
    }
    LogInfo("duplexd.recovered")
        .Str("mode", "full-rebuild")
        .U64("batches_replayed", replayed);
    std::cerr << "recovered (full-rebuild): " << replayed
              << " WAL batches replayed\n";
  }

  readiness.SetStage("indexing startup inputs");
  if (int rc = IndexInputs(index, wal.get(), flags.inputs); rc != 0) {
    return rc;
  }

  if (flags.compact_interval_ms > 0) {
    index.StartBackgroundCompaction(
        std::chrono::milliseconds(flags.compact_interval_ms));
  }

  readiness.SetStage("starting listener");
  if (Status s = server.Start(); !s.ok()) {
    std::cerr << "cannot start server: " << s << "\n";
    return 1;
  }
  status_state.serving.store(true, std::memory_order_release);
  if (live != nullptr) {
    live->StartDrainer();
    LogInfo("duplexd.live_ingest")
        .U64("drain_interval_ms", flags.drain_interval_ms)
        .U64("delta_cap_docs", flags.delta_cap_docs);
    std::cerr << "live ingest enabled (drain every "
              << flags.drain_interval_ms << "ms, delta cap "
              << flags.delta_cap_docs << " docs)\n";
  }
  readiness.SetReady();
  // Scripts parse this line for the ephemeral port; keep the format
  // stable and flush before blocking.
  std::cout << "duplexd listening on port " << server.port() << std::endl;

  // Periodic background checkpointing: each round trims the WAL to the
  // tail, keeping restart cost flat no matter how long the daemon runs.
  // Checkpoints go through the service so they exclude concurrent
  // submits — the BatchLog itself is unsynchronized.
  std::atomic<bool> checkpoint_stop{false};
  std::thread checkpoint_thread;
  if (checkpointer != nullptr && flags.checkpoint_interval_ms > 0) {
    checkpoint_thread = std::thread([&] {
      const auto interval =
          std::chrono::milliseconds(flags.checkpoint_interval_ms);
      auto next_round = std::chrono::steady_clock::now() + interval;
      while (!checkpoint_stop.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        if (std::chrono::steady_clock::now() < next_round) continue;
        next_round = std::chrono::steady_clock::now() + interval;
        Result<core::CheckpointInfo> done =
            service.CheckpointNow(checkpointer.get());
        if (!done.ok()) {
          LogError("duplexd.checkpoint_failed")
              .Str("error", done.status().message());
          std::cerr << "background checkpoint failed: " << done.status()
                    << "\n";
        } else {
          status_state.last_ckpt_seq.store(done->install_seq,
                                           std::memory_order_relaxed);
          status_state.last_ckpt_epoch.store(done->wal_epoch,
                                             std::memory_order_relaxed);
          status_state.last_ckpt_ns.store(MonotonicNanos(),
                                          std::memory_order_relaxed);
          LogInfo("duplexd.checkpoint")
              .U64("install_seq", done->install_seq)
              .U64("wal_epoch", done->wal_epoch)
              .U64("payload_bytes", done->payload_bytes);
          std::cerr << "checkpoint " << done->install_seq << " installed "
                    << "(epoch " << done->wal_epoch << ", "
                    << done->payload_bytes << "B)\n";
        }
      }
    });
  }

  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  // Drain: flip /readyz to 503 FIRST so load balancers stop routing,
  // then take the listener down and finish admitted work. The admin
  // plane itself stops last — it narrates the whole drain.
  readiness.SetDraining();
  LogInfo("duplexd.draining");
  std::cerr << "shutting down: draining requests\n";
  if (flags.test_drain_delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(flags.test_drain_delay_ms));
  }
  server.Stop();
  index.StopBackgroundCompaction();
  if (live != nullptr) live->StopDrainer();
  checkpoint_stop.store(true);
  if (checkpoint_thread.joinable()) checkpoint_thread.join();
  if (Status s = service.Flush(); !s.ok()) {
    std::cerr << "flush on shutdown failed: " << s << "\n";
    return 1;
  }
  // Final checkpoint after the flush: a clean shutdown leaves the WAL
  // tail empty, so the next start restores the checkpoint and replays
  // nothing.
  if (checkpointer != nullptr) {
    Result<core::CheckpointInfo> done =
        service.CheckpointNow(checkpointer.get());
    if (!done.ok()) {
      std::cerr << "shutdown checkpoint failed: " << done.status() << "\n";
    } else {
      std::cerr << "shutdown checkpoint " << done->install_seq
                << " installed (epoch " << done->wal_epoch << ")\n";
    }
  }
  std::cerr << "served " << server.requests_handled() << " requests ("
            << server.requests_rejected() << " rejected) over "
            << server.connections_accepted() << " connections\n";
  admin.Stop();
  LogInfo("duplexd.exit")
      .U64("requests_handled", server.requests_handled())
      .U64("requests_rejected", server.requests_rejected());
  SetGlobalTracer(nullptr);
  SetGlobalMetrics(nullptr);
  SetGlobalLog(nullptr);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  DaemonFlags flags;
  std::vector<std::string> args(argv + 1, argv + argc);
  size_t i = 0;
  while (i < args.size()) {
    const std::string& arg = args[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= args.size()) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return args[++i].c_str();
    };
    if (arg == "--port") {
      flags.port = static_cast<uint16_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--shards") {
      flags.shards = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--workers") {
      flags.workers = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--queue") {
      flags.queue = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--wal") {
      flags.wal = next();
    } else if (arg == "--checkpoint") {
      flags.checkpoint = next();
    } else if (arg == "--checkpoint-interval") {
      flags.checkpoint_interval_ms =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--compact-interval") {
      flags.compact_interval_ms =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--admin-port") {
      flags.admin_port =
          static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--slow-query-ms") {
      flags.slow_query_ms =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--live-ingest") {
      flags.live_ingest = true;
    } else if (arg == "--drain-interval-ms") {
      flags.drain_interval_ms =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--delta-cap-docs") {
      flags.delta_cap_docs =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--log-level") {
      const char* level = next();
      if (!duplex::ParseLogLevel(level, &flags.log_level)) {
        std::cerr << "bad --log-level " << level
                  << " (want debug/info/warn/error)\n";
        return 2;
      }
    } else if (arg == "--test-recovery-delay-ms") {
      flags.test_recovery_delay_ms =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--test-drain-delay-ms") {
      flags.test_drain_delay_ms =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: duplexd [--port N] [--shards N] [--workers N] "
                   "[--queue N] [--wal PATH]\n"
                   "               [--checkpoint PREFIX] "
                   "[--checkpoint-interval MS]\n"
                   "               [--compact-interval MS] "
                   "[--admin-port N] [--slow-query-ms N]\n"
                   "               [--live-ingest] [--drain-interval-ms MS] "
                   "[--delta-cap-docs N]\n"
                   "               [--log-level LEVEL] [file-or-dir]...\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    } else {
      flags.inputs.push_back(arg);
    }
    ++i;
  }
  if (flags.shards == 0 || flags.workers == 0 || flags.queue == 0) {
    std::cerr << "--shards, --workers and --queue must be positive\n";
    return 2;
  }
  if (flags.live_ingest && flags.drain_interval_ms == 0) {
    std::cerr << "--drain-interval-ms must be positive with --live-ingest\n";
    return 2;
  }
  return Run(flags);
}

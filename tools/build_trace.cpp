// Stages 3+4 of the paper's Figure 3 pipeline as a standalone process:
// read batch updates (Figure 5 format) from stdin, run the dual-structure
// index under the given policy, and emit the I/O trace (Figure 6 format)
// on stdout. Pipe into exercise_trace.
//
//   generate_batches | build_trace --style new --limit z --alloc prop
//       --k 1.2 > trace.txt   (one line)
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>

#include "core/inverted_index.h"
#include "sim/pipeline.h"
#include "storage/buffer_pool.h"

int main(int argc, char** argv) {
  using namespace duplex;
  core::Policy policy = core::Policy::NewZ();
  sim::SimConfig config;
  std::string style = "new";
  std::string limit = "z";
  std::string alloc = "const";
  double k = 0.0;
  uint32_t extent = 4;
  for (int i = 1; i + 1 < argc; i += 2) {
    const char* flag = argv[i];
    const char* value = argv[i + 1];
    if (std::strcmp(flag, "--style") == 0) {
      style = value;
    } else if (std::strcmp(flag, "--limit") == 0) {
      limit = value;
    } else if (std::strcmp(flag, "--alloc") == 0) {
      alloc = value;
    } else if (std::strcmp(flag, "--k") == 0) {
      k = atof(value);
    } else if (std::strcmp(flag, "--extent") == 0) {
      extent = static_cast<uint32_t>(atoi(value));
    } else if (std::strcmp(flag, "--buckets") == 0) {
      config.num_buckets = static_cast<uint32_t>(atoi(value));
    } else if (std::strcmp(flag, "--bucket-size") == 0) {
      config.bucket_capacity = static_cast<uint64_t>(atoll(value));
    } else if (std::strcmp(flag, "--disks") == 0) {
      config.num_disks = static_cast<uint32_t>(atoi(value));
    } else if (std::strcmp(flag, "--block-postings") == 0) {
      config.block_postings = static_cast<uint64_t>(atoll(value));
    } else if (std::strcmp(flag, "--cache-blocks") == 0) {
      config.cache_blocks = static_cast<uint64_t>(atoll(value));
    } else if (std::strcmp(flag, "--cache-mode") == 0) {
      Result<storage::CacheMode> mode = storage::ParseCacheMode(value);
      if (!mode.ok()) {
        std::cerr << "unknown cache mode '" << value
                  << "' (write-through|write-back)\n";
        return 2;
      }
      config.cache_mode = *mode;
    } else if (std::strcmp(flag, "--cache-eviction") == 0) {
      Result<storage::CacheEviction> eviction =
          storage::ParseCacheEviction(value);
      if (!eviction.ok()) {
        std::cerr << "unknown cache eviction '" << value
                  << "' (clock|lru)\n";
        return 2;
      }
      config.cache_eviction = *eviction;
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      return 2;
    }
  }
  if (style == "fill") {
    policy.style = core::Style::kFill;
  } else if (style == "whole") {
    policy.style = core::Style::kWhole;
  } else if (style == "new") {
    policy.style = core::Style::kNew;
  } else {
    std::cerr << "unknown style '" << style << "' (new|fill|whole)\n";
    return 2;
  }
  if (limit != "0" && limit != "z") {
    std::cerr << "unknown limit '" << limit << "' (0|z)\n";
    return 2;
  }
  policy.in_place = limit == "z";
  policy.extent_blocks = extent;
  if (policy.in_place && k > 0.0) {
    policy.alloc = alloc == std::string("block") ? core::AllocStrategy::kBlock
                   : alloc == std::string("prop")
                       ? core::AllocStrategy::kProportional
                   : alloc == std::string("exp")
                       ? core::AllocStrategy::kExponential
                       : core::AllocStrategy::kConstant;
    policy.k = k;
  }
  if (Status s = policy.Validate(); !s.ok()) {
    std::cerr << "bad policy: " << s << "\n";
    return 2;
  }
  std::cerr << "policy: " << policy.Name() << "\n";

  core::InvertedIndex index(config.ToIndexOptions(policy));
  // Read "word count" lines; "0 0" terminates a batch.
  std::string line;
  text::BatchUpdate batch;
  uint64_t batches = 0;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    uint64_t word = 0;
    uint64_t count = 0;
    if (!(ls >> word >> count)) {
      std::cerr << "malformed line: " << line << "\n";
      return 1;
    }
    if (word == 0 && count == 0) {
      if (Status s = index.ApplyBatchUpdate(batch); !s.ok()) {
        std::cerr << "apply failed: " << s << "\n";
        return 1;
      }
      batch.pairs.clear();
      ++batches;
      continue;
    }
    batch.pairs.push_back(
        {static_cast<WordId>(word), static_cast<uint32_t>(count)});
  }
  index.trace().Print(std::cout);
  const core::IndexStats stats = index.Stats();
  std::cerr << "applied " << batches << " updates: "
            << stats.total_postings << " postings, " << stats.long_words
            << " long words, " << stats.io_ops
            << " I/O events, utilization " << stats.long_utilization
            << ", reads/list " << stats.avg_reads_per_list << "\n";
  if (config.cache_blocks > 0) {
    std::cerr << "cache: " << index.trace().CountCachedOps()
              << " cached events, " << stats.cache_hits << " hits, "
              << stats.cache_misses << " misses\n";
  }
  return 0;
}

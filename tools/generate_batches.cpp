// Stage 1+2 of the paper's Figure 3 pipeline as a standalone process:
// generate the synthetic News stream and emit its batch updates in the
// paper's Figure 5 text format (word-count pairs, each batch terminated
// by "0 0") on stdout. Pipe into build_trace.
//
//   generate_batches --updates 20 --docs 800 --seed 42 > batches.txt
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "text/corpus_generator.h"

int main(int argc, char** argv) {
  using namespace duplex;
  text::CorpusOptions corpus;
  corpus.num_updates = 20;
  corpus.docs_per_update = 800;
  for (int i = 1; i + 1 < argc; i += 2) {
    const char* flag = argv[i];
    const char* value = argv[i + 1];
    if (std::strcmp(flag, "--updates") == 0) {
      corpus.num_updates = static_cast<uint32_t>(atoi(value));
    } else if (std::strcmp(flag, "--docs") == 0) {
      corpus.docs_per_update = static_cast<uint32_t>(atoi(value));
    } else if (std::strcmp(flag, "--seed") == 0) {
      corpus.seed = static_cast<uint64_t>(atoll(value));
    } else if (std::strcmp(flag, "--zipf") == 0) {
      corpus.zipf_s = atof(value);
    } else {
      std::cerr << "unknown flag " << flag << "\n";
      return 2;
    }
  }
  if (corpus.interrupted_update >=
      static_cast<int32_t>(corpus.num_updates)) {
    corpus.interrupted_update = -1;
  }
  text::CorpusGenerator generator(corpus);
  text::KeyVocabulary vocabulary;
  uint64_t postings = 0;
  for (uint32_t u = 0; u < corpus.num_updates; ++u) {
    const text::BatchUpdate batch = text::CorpusGenerator::ToBatchUpdate(
        generator.GenerateUpdate(u), &vocabulary);
    batch.Print(std::cout);
    postings += batch.TotalPostings();
  }
  std::cerr << "generated " << corpus.num_updates << " batch updates, "
            << postings << " postings, " << vocabulary.size()
            << " distinct words\n";
  return 0;
}

#ifndef DUPLEX_STORAGE_BLOCK_H_
#define DUPLEX_STORAGE_BLOCK_H_

#include <cstdint>
#include <ostream>

namespace duplex::storage {

// Disk block index within one disk (block number, not a byte offset).
using BlockId = uint64_t;

// Identifies one disk in a DiskArray.
using DiskId = uint32_t;

inline constexpr BlockId kInvalidBlock = ~static_cast<BlockId>(0);

// A contiguous run of blocks on one disk. This is the unit the paper calls
// a "chunk" (variable-sized) or an "extent" (fixed-sized).
struct BlockRange {
  DiskId disk = 0;
  BlockId start = 0;
  uint64_t length = 0;  // in blocks

  BlockId end() const { return start + length; }

  friend bool operator==(const BlockRange& a, const BlockRange& b) {
    return a.disk == b.disk && a.start == b.start && a.length == b.length;
  }
};

inline std::ostream& operator<<(std::ostream& os, const BlockRange& r) {
  return os << "disk " << r.disk << " [" << r.start << ", " << r.end() << ")";
}

}  // namespace duplex::storage

#endif  // DUPLEX_STORAGE_BLOCK_H_

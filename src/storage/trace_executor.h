#ifndef DUPLEX_STORAGE_TRACE_EXECUTOR_H_
#define DUPLEX_STORAGE_TRACE_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "storage/disk_model.h"
#include "storage/io_trace.h"

namespace duplex::storage {

// Configuration for the exercise-disks stage (paper Section 4.5).
struct ExecutorOptions {
  DiskModelParams disk = DiskModelParams::Seagate1993();
  uint32_t num_disks = 4;
  // The executor coalesces adjacent requests without reordering, up to this
  // many blocks per request — the paper's BufferBlock parameter modeling a
  // finite I/O buffer.
  uint64_t buffer_blocks = 128;
  bool coalesce = true;
};

// Result of replaying one trace.
struct ExecutionResult {
  // Simulated seconds per batch update (elapsed = max over disks, since
  // the paper issues requests to each disk from independent processes).
  std::vector<double> update_seconds;
  // Running total of update_seconds.
  std::vector<double> cumulative_seconds;

  uint64_t issued_requests = 0;     // after coalescing
  uint64_t trace_events = 0;        // before coalescing
  uint64_t cached_events = 0;       // served by the buffer pool, no disk work
  uint64_t seeks = 0;
  uint64_t blocks_transferred = 0;

  double total_seconds() const {
    return cumulative_seconds.empty() ? 0.0 : cumulative_seconds.back();
  }
};

// Replays an I/O trace against the disk service-time model. This stands in
// for the paper's raw-partition replay on real hardware; see DESIGN.md for
// the substitution argument.
class TraceExecutor {
 public:
  explicit TraceExecutor(const ExecutorOptions& options);

  ExecutionResult Execute(const IoTrace& trace);

 private:
  ExecutorOptions options_;
};

}  // namespace duplex::storage

#endif  // DUPLEX_STORAGE_TRACE_EXECUTOR_H_

#include "storage/io_trace.h"

#include <ostream>
#include <sstream>

#include "util/logging.h"

namespace duplex::storage {

const char* IoOpName(IoOp op) {
  return op == IoOp::kRead ? "read" : "write";
}

const char* IoTagName(IoTag tag) {
  switch (tag) {
    case IoTag::kLongList:
      return "long";
    case IoTag::kBucket:
      return "bucket";
    case IoTag::kDirectory:
      return "directory";
  }
  return "unknown";
}

std::pair<size_t, size_t> IoTrace::UpdateRange(size_t u) const {
  DUPLEX_CHECK_LT(u, boundaries_.size());
  const size_t first = u == 0 ? 0 : boundaries_[u - 1];
  return {first, boundaries_[u]};
}

uint64_t IoTrace::CountOps(IoOp op) const {
  uint64_t n = 0;
  for (const auto& e : events_) n += e.op == op ? 1 : 0;
  return n;
}

uint64_t IoTrace::CountBlocks(IoOp op) const {
  uint64_t n = 0;
  for (const auto& e : events_) n += e.op == op ? e.nblocks : 0;
  return n;
}

uint64_t IoTrace::CountPhysicalOps() const {
  uint64_t n = 0;
  for (const auto& e : events_) n += e.cached ? 0 : 1;
  return n;
}

uint64_t IoTrace::CountPhysicalOps(IoOp op) const {
  uint64_t n = 0;
  for (const auto& e : events_) n += (e.op == op && !e.cached) ? 1 : 0;
  return n;
}

uint64_t IoTrace::CountCachedOps() const {
  uint64_t n = 0;
  for (const auto& e : events_) n += e.cached ? 1 : 0;
  return n;
}

void IoTrace::Print(std::ostream& os) const {
  size_t update = 0;
  for (size_t i = 0; i < events_.size(); ++i) {
    while (update < boundaries_.size() && boundaries_[update] == i) {
      os << "end-update\n";
      ++update;
    }
    const IoEvent& e = events_[i];
    os << IoOpName(e.op) << " " << IoTagName(e.tag);
    if (e.tag == IoTag::kLongList) {
      os << " word " << e.word << " postings " << e.postings;
    }
    os << " disk " << e.disk << " block " << e.block << " blocks "
       << e.nblocks;
    if (e.cached) os << " cached";
    os << "\n";
  }
  while (update < boundaries_.size()) {
    os << "end-update\n";
    ++update;
  }
}

std::string IoTrace::ToText() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

Result<IoTrace> IoTrace::Parse(const std::string& text) {
  IoTrace trace;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line == "end-update") {
      trace.EndUpdate();
      continue;
    }
    std::istringstream ls(line);
    std::string op_s, tag_s;
    ls >> op_s >> tag_s;
    IoEvent e;
    if (op_s == "read") {
      e.op = IoOp::kRead;
    } else if (op_s == "write") {
      e.op = IoOp::kWrite;
    } else {
      return Status::Corruption("trace line " + std::to_string(lineno) +
                                ": bad op '" + op_s + "'");
    }
    if (tag_s == "long") {
      e.tag = IoTag::kLongList;
      std::string kw1, kw2;
      ls >> kw1 >> e.word >> kw2 >> e.postings;
      if (kw1 != "word" || kw2 != "postings") {
        return Status::Corruption("trace line " + std::to_string(lineno) +
                                  ": malformed long-list event");
      }
    } else if (tag_s == "bucket") {
      e.tag = IoTag::kBucket;
    } else if (tag_s == "directory") {
      e.tag = IoTag::kDirectory;
    } else {
      return Status::Corruption("trace line " + std::to_string(lineno) +
                                ": bad tag '" + tag_s + "'");
    }
    std::string kw3, kw4, kw5;
    ls >> kw3 >> e.disk >> kw4 >> e.block >> kw5 >> e.nblocks;
    if (kw3 != "disk" || kw4 != "block" || kw5 != "blocks" || ls.fail()) {
      return Status::Corruption("trace line " + std::to_string(lineno) +
                                ": malformed location fields");
    }
    std::string tail;
    if (ls >> tail) {
      if (tail != "cached") {
        return Status::Corruption("trace line " + std::to_string(lineno) +
                                  ": unexpected trailing token '" + tail +
                                  "'");
      }
      e.cached = true;
    }
    trace.Add(e);
  }
  return trace;
}

}  // namespace duplex::storage

#ifndef DUPLEX_STORAGE_BLOCK_DEVICE_H_
#define DUPLEX_STORAGE_BLOCK_DEVICE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/block.h"
#include "util/metrics.h"
#include "util/status.h"

namespace duplex::storage {

// Byte-addressed storage for one disk, at block granularity underneath.
// The core library stores encoded posting payloads through this interface;
// the simulation pipeline runs without a device (counts only).
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual uint64_t capacity_blocks() const = 0;
  virtual uint64_t block_size() const = 0;

  // Writes `len` bytes starting `byte_offset` bytes into block `start`.
  // The write must stay within the device.
  virtual Status Write(BlockId start, uint64_t byte_offset,
                       const uint8_t* data, size_t len) = 0;

  // Reads `len` bytes starting `byte_offset` bytes into block `start`.
  // Unwritten bytes read as zero.
  virtual Status Read(BlockId start, uint64_t byte_offset, uint8_t* out,
                      size_t len) const = 0;
};

// In-memory sparse block device: only blocks ever written consume memory.
class MemBlockDevice : public BlockDevice {
 public:
  MemBlockDevice(uint64_t capacity_blocks, uint64_t block_size);

  uint64_t capacity_blocks() const override { return capacity_blocks_; }
  uint64_t block_size() const override { return block_size_; }

  Status Write(BlockId start, uint64_t byte_offset, const uint8_t* data,
               size_t len) override;
  Status Read(BlockId start, uint64_t byte_offset, uint8_t* out,
              size_t len) const override;

  // Number of distinct blocks that have ever been written.
  uint64_t resident_blocks() const { return blocks_.size(); }

 private:
  uint64_t capacity_blocks_;
  uint64_t block_size_;
  std::unordered_map<BlockId, std::vector<uint8_t>> blocks_;
  // Op counters only — a memory copy is too cheap to pay two clock reads.
  Counter* m_reads_ = nullptr;
  Counter* m_writes_ = nullptr;
};

}  // namespace duplex::storage

#endif  // DUPLEX_STORAGE_BLOCK_DEVICE_H_

#include "storage/disk_array.h"

#include <string>

#include "util/logging.h"

namespace duplex::storage {

const char* DiskChoiceName(DiskChoice c) {
  switch (c) {
    case DiskChoice::kRoundRobin:
      return "round-robin";
    case DiskChoice::kMostFree:
      return "most-free";
  }
  return "unknown";
}

DiskArray::DiskArray(const DiskArrayOptions& options) : options_(options) {
  DUPLEX_CHECK_GT(options.num_disks, 0u);
  if (options.cache.enabled()) {
    pool_ = std::make_unique<BufferPool>(options.cache,
                                         options.block_size_bytes,
                                         options.materialize_payloads);
  }
  if (options.fault_schedule != nullptr) {
    fault_schedule_ = options.fault_schedule;
  } else if (options.fault.enabled()) {
    fault_schedule_ = std::make_shared<FaultSchedule>(options.fault);
  }
  disks_.reserve(options.num_disks);
  for (uint32_t i = 0; i < options.num_disks; ++i) {
    Disk d;
    d.space = MakeFreeSpaceMap(options.free_space, options.blocks_per_disk);
    if (options.materialize_payloads) {
      d.device = std::make_unique<MemBlockDevice>(options.blocks_per_disk,
                                                  options.block_size_bytes);
      // Stack, bottom up: Mem -> Fault -> Checksum -> Caching. Each layer
      // is optional; `top` is whatever ended up outermost.
      d.top = d.device.get();
      if (fault_schedule_ != nullptr) {
        d.faulty = std::make_unique<FaultInjectingBlockDevice>(
            d.top, fault_schedule_);
        d.top = d.faulty.get();
      }
      if (options.checksums) {
        d.checksum = std::make_unique<ChecksumBlockDevice>(d.top);
        d.top = d.checksum.get();
      }
      if (pool_ != nullptr) {
        d.cached = std::make_unique<CachingBlockDevice>(d.top, pool_.get());
        d.cache_client = d.cached->client_id();
        d.top = d.cached.get();
      }
    } else if (pool_ != nullptr) {
      d.cache_client = pool_->RegisterClient(nullptr);
    }
    disks_.push_back(std::move(d));
  }
}

DiskId DiskArray::NextDisk() {
  if (options_.disk_choice == DiskChoice::kMostFree) {
    DiskId best = 0;
    uint64_t best_free = 0;
    for (DiskId i = 0; i < num_disks(); ++i) {
      const uint64_t f = disks_[i].space->free_blocks();
      if (f > best_free) {
        best_free = f;
        best = i;
      }
    }
    return best;
  }
  // Paper: "the strategy considered here is to choose disk i+1 mod n".
  cursor_ = (cursor_ + 1) % num_disks();
  return cursor_;
}

Result<BlockRange> DiskArray::AllocateOn(DiskId disk, uint64_t length) {
  DUPLEX_CHECK_LT(disk, num_disks());
  Result<BlockId> start = disks_[disk].space->Allocate(length);
  if (!start.ok()) return start.status();
  return BlockRange{disk, *start, length};
}

Result<BlockRange> DiskArray::Allocate(uint64_t length) {
  const DiskId chosen = NextDisk();
  Result<BlockRange> r = AllocateOn(chosen, length);
  if (r.ok()) return r;
  for (DiskId offset = 1; offset < num_disks(); ++offset) {
    const DiskId d = (chosen + offset) % num_disks();
    r = AllocateOn(d, length);
    if (r.ok()) return r;
  }
  return Status::ResourceExhausted("all disks full for run of " +
                                   std::to_string(length) + " blocks");
}

Status DiskArray::Free(const BlockRange& range) {
  // Typed, not a CHECK: the compactor frees chunks on the hot path, and a
  // corrupted directory entry must surface as a recoverable error, not an
  // abort. Double frees and frees of unallocated space are likewise typed
  // by the FreeSpaceMap below (kCorruption / kInvalidArgument).
  if (range.disk >= num_disks()) {
    return Status::InvalidArgument(
        "free of range on unknown disk " + std::to_string(range.disk) +
        " (array has " + std::to_string(num_disks()) + ")");
  }
  if (range.length == 0) {
    return Status::InvalidArgument("free of empty block range");
  }
  if (pool_ != nullptr) {
    // The blocks are dead; cached copies must not be served (or written
    // back) if the range is later reallocated.
    pool_->Invalidate(disks_[range.disk].cache_client, range.start,
                      range.length);
  }
  if (disks_[range.disk].checksum != nullptr) {
    // Likewise drop the integrity claim: a reallocated block starts fresh,
    // not "corrupt because it no longer matches its previous life".
    disks_[range.disk].checksum->Forget(range.start, range.length);
  }
  return disks_[range.disk].space->Free(range.start, range.length);
}

uint64_t DiskArray::free_blocks(DiskId disk) const {
  DUPLEX_CHECK_LT(disk, num_disks());
  return disks_[disk].space->free_blocks();
}

uint64_t DiskArray::used_blocks(DiskId disk) const {
  DUPLEX_CHECK_LT(disk, num_disks());
  return disks_[disk].space->used_blocks();
}

uint64_t DiskArray::total_free_blocks() const {
  uint64_t sum = 0;
  for (const auto& d : disks_) sum += d.space->free_blocks();
  return sum;
}

uint64_t DiskArray::total_used_blocks() const {
  uint64_t sum = 0;
  for (const auto& d : disks_) sum += d.space->used_blocks();
  return sum;
}

uint64_t DiskArray::fragment_count(DiskId disk) const {
  DUPLEX_CHECK_LT(disk, num_disks());
  return disks_[disk].space->fragment_count();
}

BlockDevice* DiskArray::device(DiskId disk) {
  DUPLEX_CHECK_LT(disk, num_disks());
  return disks_[disk].top;
}

const BlockDevice* DiskArray::device(DiskId disk) const {
  DUPLEX_CHECK_LT(disk, num_disks());
  return disks_[disk].top;
}

ChecksumBlockDevice* DiskArray::checksum_device(DiskId disk) {
  DUPLEX_CHECK_LT(disk, num_disks());
  return disks_[disk].checksum.get();
}

BlockDevice* DiskArray::scrub_device(DiskId disk) {
  DUPLEX_CHECK_LT(disk, num_disks());
  Disk& d = disks_[disk];
  if (d.checksum != nullptr) return d.checksum.get();
  if (d.faulty != nullptr) return d.faulty.get();
  return d.device.get();
}

MemBlockDevice* DiskArray::base_device(DiskId disk) {
  DUPLEX_CHECK_LT(disk, num_disks());
  return disks_[disk].device.get();
}

uint64_t DiskArray::CacheTouchRead(const BlockRange& range, uint64_t nblocks) {
  if (pool_ == nullptr || nblocks == 0) return 0;
  DUPLEX_CHECK_LT(range.disk, num_disks());
  const uint32_t client = disks_[range.disk].cache_client;
  if (options_.materialize_payloads) {
    return pool_->PeekResident(client, range.start, nblocks);
  }
  return pool_->TouchRead(client, range.start, nblocks);
}

void DiskArray::CacheNoteWrite(const BlockRange& range, uint64_t nblocks) {
  if (pool_ == nullptr || nblocks == 0 || options_.materialize_payloads) {
    return;
  }
  DUPLEX_CHECK_LT(range.disk, num_disks());
  pool_->TouchWrite(disks_[range.disk].cache_client, range.start, nblocks);
}

uint64_t DiskArray::CachePeek(DiskId disk, BlockId start,
                              uint64_t nblocks) const {
  if (pool_ == nullptr || nblocks == 0) return 0;
  DUPLEX_CHECK_LT(disk, num_disks());
  return pool_->PeekResident(disks_[disk].cache_client, start, nblocks);
}

Status DiskArray::FlushCache() {
  if (pool_ == nullptr) return Status::OK();
  return pool_->Flush();
}

CacheStats DiskArray::cache_stats() const {
  return pool_ != nullptr ? pool_->stats() : CacheStats{};
}

}  // namespace duplex::storage

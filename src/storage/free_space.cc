#include "storage/free_space.h"

#include <algorithm>

#include "util/logging.h"

namespace duplex::storage {

const char* FreeSpaceStrategyName(FreeSpaceStrategy s) {
  switch (s) {
    case FreeSpaceStrategy::kFirstFit:
      return "first-fit";
    case FreeSpaceStrategy::kBestFit:
      return "best-fit";
    case FreeSpaceStrategy::kBuddy:
      return "buddy";
  }
  return "unknown";
}

FreeListMap::FreeListMap(uint64_t capacity_blocks, bool best_fit)
    : capacity_(capacity_blocks), free_(capacity_blocks), best_fit_(best_fit) {
  if (capacity_blocks > 0) runs_[0] = capacity_blocks;
}

Result<BlockId> FreeListMap::Allocate(uint64_t length) {
  if (length == 0) return Status::InvalidArgument("zero-length allocation");
  auto chosen = runs_.end();
  if (best_fit_) {
    uint64_t best_len = ~0ULL;
    for (auto it = runs_.begin(); it != runs_.end(); ++it) {
      if (it->second >= length && it->second < best_len) {
        best_len = it->second;
        chosen = it;
        if (best_len == length) break;
      }
    }
  } else {
    // First-fit: the map is ordered by start block, i.e. we scan from the
    // beginning of the disk exactly as the paper specifies.
    for (auto it = runs_.begin(); it != runs_.end(); ++it) {
      if (it->second >= length) {
        chosen = it;
        break;
      }
    }
  }
  if (chosen == runs_.end()) {
    return Status::ResourceExhausted("no contiguous run of " +
                                     std::to_string(length) + " blocks");
  }
  const BlockId start = chosen->first;
  const uint64_t run_len = chosen->second;
  runs_.erase(chosen);
  if (run_len > length) runs_[start + length] = run_len - length;
  free_ -= length;
  return start;
}

Status FreeListMap::Free(BlockId start, uint64_t length) {
  if (length == 0) return Status::InvalidArgument("zero-length free");
  if (start + length > capacity_) {
    return Status::InvalidArgument("free beyond end of disk");
  }
  // Find the first run at or after `start` and its predecessor to check
  // overlap and coalesce.
  auto next = runs_.lower_bound(start);
  if (next != runs_.end() && next->first < start + length) {
    return Status::Corruption("double free: overlaps following free run");
  }
  bool merge_prev = false;
  auto prev = next;
  if (prev != runs_.begin()) {
    --prev;
    if (prev->first + prev->second > start) {
      return Status::Corruption("double free: overlaps preceding free run");
    }
    merge_prev = prev->first + prev->second == start;
  }
  BlockId new_start = start;
  uint64_t new_len = length;
  if (merge_prev) {
    new_start = prev->first;
    new_len += prev->second;
    runs_.erase(prev);
  }
  if (next != runs_.end() && start + length == next->first) {
    new_len += next->second;
    runs_.erase(next);
  }
  runs_[new_start] = new_len;
  free_ += length;
  return Status::OK();
}

uint64_t FreeListMap::largest_free_run() const {
  uint64_t best = 0;
  for (const auto& [start, len] : runs_) best = std::max(best, len);
  return best;
}

int BuddyAllocator::OrderFor(uint64_t length) {
  int order = 0;
  while ((1ULL << order) < length) ++order;
  return order;
}

BuddyAllocator::BuddyAllocator(uint64_t capacity_blocks) {
  max_order_ = 0;
  while ((2ULL << max_order_) <= capacity_blocks) ++max_order_;
  capacity_ = 1ULL << max_order_;
  free_ = capacity_;
  free_lists_.resize(static_cast<size_t>(max_order_) + 1);
  free_lists_[static_cast<size_t>(max_order_)][0] = true;
}

Result<BlockId> BuddyAllocator::Allocate(uint64_t length) {
  if (length == 0) return Status::InvalidArgument("zero-length allocation");
  if (length > capacity_) {
    return Status::ResourceExhausted("request exceeds disk capacity");
  }
  const int order = OrderFor(length);
  int avail = order;
  while (avail <= max_order_ &&
         free_lists_[static_cast<size_t>(avail)].empty()) {
    ++avail;
  }
  if (avail > max_order_) {
    return Status::ResourceExhausted("buddy: no free block of order " +
                                     std::to_string(order));
  }
  // Split down to the requested order.
  BlockId start = free_lists_[static_cast<size_t>(avail)].begin()->first;
  free_lists_[static_cast<size_t>(avail)].erase(start);
  while (avail > order) {
    --avail;
    const BlockId buddy = start + (1ULL << avail);
    free_lists_[static_cast<size_t>(avail)][buddy] = true;
  }
  // The buddy allocator hands out the full 2^order run; callers that track
  // `length` for Free() still work because Free() recomputes the order.
  free_ -= 1ULL << order;
  return start;
}

Status BuddyAllocator::Free(BlockId start, uint64_t length) {
  if (length == 0) return Status::InvalidArgument("zero-length free");
  int order = OrderFor(length);
  if (start % (1ULL << order) != 0) {
    return Status::InvalidArgument("buddy: misaligned free");
  }
  BlockId cur = start;
  while (order < max_order_) {
    const BlockId buddy = cur ^ (1ULL << order);
    auto& list = free_lists_[static_cast<size_t>(order)];
    auto it = list.find(buddy);
    if (it == list.end()) break;
    list.erase(it);
    cur = std::min(cur, buddy);
    ++order;
  }
  auto& list = free_lists_[static_cast<size_t>(order)];
  if (list.count(cur) != 0) return Status::Corruption("buddy: double free");
  list[cur] = true;
  free_ += 1ULL << OrderFor(length);
  return Status::OK();
}

uint64_t BuddyAllocator::fragment_count() const {
  uint64_t n = 0;
  for (const auto& list : free_lists_) n += list.size();
  return n;
}

uint64_t BuddyAllocator::largest_free_run() const {
  for (int order = max_order_; order >= 0; --order) {
    if (!free_lists_[static_cast<size_t>(order)].empty()) {
      return 1ULL << order;
    }
  }
  return 0;
}

std::unique_ptr<FreeSpaceMap> MakeFreeSpaceMap(FreeSpaceStrategy strategy,
                                               uint64_t capacity_blocks) {
  switch (strategy) {
    case FreeSpaceStrategy::kFirstFit:
      return std::make_unique<FreeListMap>(capacity_blocks, false);
    case FreeSpaceStrategy::kBestFit:
      return std::make_unique<FreeListMap>(capacity_blocks, true);
    case FreeSpaceStrategy::kBuddy:
      return std::make_unique<BuddyAllocator>(capacity_blocks);
  }
  return nullptr;
}

}  // namespace duplex::storage

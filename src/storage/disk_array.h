#ifndef DUPLEX_STORAGE_DISK_ARRAY_H_
#define DUPLEX_STORAGE_DISK_ARRAY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/block.h"
#include "storage/block_device.h"
#include "storage/buffer_pool.h"
#include "storage/checksum_device.h"
#include "storage/fault_injection.h"
#include "storage/free_space.h"
#include "util/status.h"

namespace duplex::storage {

// How to pick the disk for a new word or chunk. The paper (Section 3,
// second issue) uses round-robin (i+1 mod n) and names most-empty as an
// unstudied alternative; both are implemented for the ablation bench.
enum class DiskChoice {
  kRoundRobin,
  kMostFree,
};

const char* DiskChoiceName(DiskChoice c);

struct DiskArrayOptions {
  uint32_t num_disks = 4;
  uint64_t blocks_per_disk = 1 << 20;  // 4 GiB at 4 KiB blocks
  uint64_t block_size_bytes = 4096;
  FreeSpaceStrategy free_space = FreeSpaceStrategy::kFirstFit;
  DiskChoice disk_choice = DiskChoice::kRoundRobin;
  // When true, each disk carries a MemBlockDevice so posting payloads are
  // actually stored (required for query evaluation; the simulation pipeline
  // leaves it off).
  bool materialize_payloads = false;
  // Block cache shared by all disks of the array. Disabled (capacity 0)
  // by default. With materialized payloads the devices handed out by
  // device() are CachingBlockDevice decorators; without, the pool runs in
  // accounting-only mode so the count-only pipeline still models hit/miss
  // behaviour of the same block access stream.
  BufferPoolOptions cache;
  // Fault injection under everything else (materialized arrays only). If
  // `fault_schedule` is set it is shared as-is (so a sweep harness can keep
  // one op counter across index rebuilds); otherwise a schedule is built
  // from `fault` when fault.enabled(). The device stack per disk is then
  //   Mem -> FaultInjecting -> [Checksum] -> [Caching].
  FaultScheduleOptions fault;
  std::shared_ptr<FaultSchedule> fault_schedule;
  // Per-block FNV-1a checksums verified on every physical read, so silent
  // corruption surfaces as Status kCorruption instead of garbage postings.
  bool checksums = false;
};

// A bank of simulated disks: per-disk free-space management plus optional
// payload storage, with the chunk-placement strategy on top.
class DiskArray {
 public:
  explicit DiskArray(const DiskArrayOptions& options);

  DiskArray(const DiskArray&) = delete;
  DiskArray& operator=(const DiskArray&) = delete;

  uint32_t num_disks() const { return static_cast<uint32_t>(disks_.size()); }
  uint64_t block_size() const { return options_.block_size_bytes; }

  // Picks the disk for the next new word/chunk per the configured strategy
  // and advances the round-robin cursor.
  DiskId NextDisk();

  // Allocates `length` contiguous blocks on `disk`.
  Result<BlockRange> AllocateOn(DiskId disk, uint64_t length);

  // Allocates on the strategy-chosen disk; falls back to scanning all other
  // disks if the chosen one is full.
  Result<BlockRange> Allocate(uint64_t length);

  // Returns a range to free space, invalidating cached frames and
  // forgetting checksums first. Errors are typed, never fatal: an unknown
  // disk or empty range is kInvalidArgument, a double free (overlap with
  // an existing free run) is kCorruption — callers on the compaction hot
  // path recover instead of aborting.
  Status Free(const BlockRange& range);

  uint64_t free_blocks(DiskId disk) const;
  uint64_t used_blocks(DiskId disk) const;
  uint64_t total_free_blocks() const;
  uint64_t total_used_blocks() const;
  uint64_t fragment_count(DiskId disk) const;

  // Payload access; null when materialize_payloads is off. With a cache
  // configured this is the CachingBlockDevice decorator, so all callers
  // go through the pool without knowing it exists.
  BlockDevice* device(DiskId disk);
  const BlockDevice* device(DiskId disk) const;

  // --- Cache integration --------------------------------------------------
  // All of these are safe no-ops when no cache is configured.

  bool cache_enabled() const { return pool_ != nullptr; }
  BufferPool* buffer_pool() { return pool_.get(); }
  const BufferPool* buffer_pool() const { return pool_.get(); }

  // Accounts a logical read of `nblocks` starting at range.start and
  // returns how many of them were cache-resident. Count-only arrays run
  // the full TouchRead simulation; materialized arrays only peek — there
  // the device path through the pool is the accounting authority, and a
  // second touch here would double-count.
  uint64_t CacheTouchRead(const BlockRange& range, uint64_t nblocks);

  // Accounts a logical write. Count-only arrays simulate write-allocate;
  // materialized arrays no-op (the device path already saw the write).
  void CacheNoteWrite(const BlockRange& range, uint64_t nblocks);

  // Residency probe without stats or recency side effects.
  uint64_t CachePeek(DiskId disk, BlockId start, uint64_t nblocks) const;

  // Writes every dirty frame back to the base devices (write-back mode).
  Status FlushCache();

  CacheStats cache_stats() const;

  // --- Fault / integrity integration --------------------------------------

  // Shared schedule driving every disk's fault decorator; null when fault
  // injection is off.
  FaultSchedule* fault_schedule() { return fault_schedule_.get(); }
  std::shared_ptr<FaultSchedule> shared_fault_schedule() const {
    return fault_schedule_;
  }

  // Checksum layer for one disk; null when checksums are off.
  ChecksumBlockDevice* checksum_device(DiskId disk);

  // Device below the cache (checksum layer if on, else fault layer, else
  // raw). A scrub reads through this so cached-but-not-evicted copies
  // cannot mask on-device damage.
  BlockDevice* scrub_device(DiskId disk);

  // Raw in-memory device, below even the fault layer. Tests use it to
  // plant post-hoc corruption exactly where a real disk would rot.
  MemBlockDevice* base_device(DiskId disk);

 private:
  struct Disk {
    std::unique_ptr<FreeSpaceMap> space;
    std::unique_ptr<MemBlockDevice> device;
    // Optional decorators over `device`, innermost first.
    std::unique_ptr<FaultInjectingBlockDevice> faulty;
    std::unique_ptr<ChecksumBlockDevice> checksum;
    std::unique_ptr<CachingBlockDevice> cached;
    uint32_t cache_client = 0;
    // Topmost layer handed out by device().
    BlockDevice* top = nullptr;
  };

  DiskArrayOptions options_;
  std::vector<Disk> disks_;
  std::unique_ptr<BufferPool> pool_;
  std::shared_ptr<FaultSchedule> fault_schedule_;
  uint32_t cursor_ = 0;
};

}  // namespace duplex::storage

#endif  // DUPLEX_STORAGE_DISK_ARRAY_H_

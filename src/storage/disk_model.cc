#include "storage/disk_model.h"

namespace duplex::storage {

DiskModelParams DiskModelParams::Seagate1993() { return DiskModelParams{}; }

DiskModelParams DiskModelParams::FastDisk() {
  DiskModelParams p;
  p.avg_seek_ms = 4.0;
  p.rpm = 10000.0;
  p.transfer_mb_per_s = 40.0;
  return p;
}

DiskModelParams DiskModelParams::OpticalDisk() {
  DiskModelParams p;
  p.avg_seek_ms = 95.0;
  p.rpm = 2400.0;
  p.transfer_mb_per_s = 1.0;
  return p;
}

double DiskClock::Service(BlockId start, uint64_t length) {
  double ms = 0.0;
  const bool sequential = has_position_ && start == next_sequential_;
  if (!sequential) {
    ms += params_.avg_seek_ms + params_.HalfRotationMs();
    ++seeks_;
  }
  ms += static_cast<double>(length) * params_.BlockTransferMs();
  has_position_ = true;
  next_sequential_ = start + length;
  busy_ms_ += ms;
  ++requests_;
  blocks_ += length;
  return ms;
}

void DiskClock::ResetAccumulation() {
  busy_ms_ = 0.0;
  requests_ = 0;
  seeks_ = 0;
  blocks_ = 0;
}

}  // namespace duplex::storage

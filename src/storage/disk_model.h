#ifndef DUPLEX_STORAGE_DISK_MODEL_H_
#define DUPLEX_STORAGE_DISK_MODEL_H_

#include <cstdint>
#include <string>

#include "storage/block.h"

namespace duplex::storage {

// Service-time model for one disk. This replaces the paper's "exercise
// disks" step (real Seagate ST31200N drives on an IBM RS/6000): the trace
// replay needs seek cost, rotational latency, transfer rate, and
// sequential-access detection — all modeled here. Defaults approximate the
// paper's 1993-era hardware; alternative presets support the technical-note
// extensions (faster disks, optical disk).
struct DiskModelParams {
  double avg_seek_ms = 10.5;       // average seek time
  double rpm = 5400.0;             // spindle speed (half rotation = latency)
  double transfer_mb_per_s = 2.0;  // sustained media transfer rate
  uint64_t block_size_bytes = 4096;

  // Paper-era magnetic disk (Seagate ST31200N, 1 GB, 3.5", SCSI-2).
  static DiskModelParams Seagate1993();
  // A contemporary-for-2000s fast magnetic disk (TN extension: "speeding up
  // the disk").
  static DiskModelParams FastDisk();
  // Write-once optical disk: slow seek and rotation, moderate transfer
  // (TN extension: "performance of updates on an optical disk").
  static DiskModelParams OpticalDisk();

  double HalfRotationMs() const { return 0.5 * 60000.0 / rpm; }
  double BlockTransferMs() const {
    return static_cast<double>(block_size_bytes) /
           (transfer_mb_per_s * 1e6) * 1e3;
  }
};

// Tracks one disk arm and charges service time per request. Requests are
// charged a seek plus half a rotation unless they start exactly where the
// previous request on this disk ended (sequential access), in which case
// only transfer time is charged — this is what makes append-only policies
// coalesce into near-linear build times (paper Section 5.3).
class DiskClock {
 public:
  explicit DiskClock(const DiskModelParams& params) : params_(params) {}

  // Charges a request of `length` blocks starting at `start`; returns the
  // service time in milliseconds and advances the arm position.
  double Service(BlockId start, uint64_t length);

  // Elapsed busy time accumulated on this disk, in milliseconds.
  double busy_ms() const { return busy_ms_; }

  uint64_t requests() const { return requests_; }
  uint64_t seeks() const { return seeks_; }
  uint64_t blocks_transferred() const { return blocks_; }

  // Clears accumulated time but keeps the arm position (a new batch does
  // not teleport the arm).
  void ResetAccumulation();

 private:
  DiskModelParams params_;
  bool has_position_ = false;
  BlockId next_sequential_ = 0;
  double busy_ms_ = 0.0;
  uint64_t requests_ = 0;
  uint64_t seeks_ = 0;
  uint64_t blocks_ = 0;
};

}  // namespace duplex::storage

#endif  // DUPLEX_STORAGE_DISK_MODEL_H_

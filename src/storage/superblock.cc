#include "storage/superblock.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/hash.h"
#include "util/logging.h"

namespace duplex::storage {
namespace {

constexpr char kMagic[8] = {'D', 'P', 'L', 'X', 'S', 'U', 'P', 'R'};
constexpr size_t kChecksumOffset = Superblock::kSlotBytes - 8;

void PutU32(uint32_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}

void PutU64(uint64_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}

uint32_t GetU32(const std::string& bytes, size_t pos) {
  uint32_t v = 0;
  std::memcpy(&v, bytes.data() + pos, 4);
  return v;
}

uint64_t GetU64(const std::string& bytes, size_t pos) {
  uint64_t v = 0;
  std::memcpy(&v, bytes.data() + pos, 8);
  return v;
}

Status PWriteAll(int fd, const std::string& path, uint64_t offset,
                 const uint8_t* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pwrite(fd, data + done, len - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return Status::IoError("pwrite(" + path +
                             "): " + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status FaultyPWrite(int fd, const std::string& path, uint64_t offset,
                    const uint8_t* data, size_t len, FaultSchedule* fault) {
  if (fault == nullptr) return PWriteAll(fd, path, offset, data, len);
  const FaultSchedule::Decision d = fault->NextOp(/*is_write=*/true, len);
  switch (d.fault) {
    case FaultSchedule::Fault::kNone:
      return PWriteAll(fd, path, offset, data, len);
    case FaultSchedule::Fault::kCrash:
      return Status::IoError("injected crash: file I/O frozen at op " +
                             std::to_string(d.op) + " (" + path + ")");
    case FaultSchedule::Fault::kTransientError:
      return Status::IoError("injected transient write error at op " +
                             std::to_string(d.op) + " (" + path + ")");
    case FaultSchedule::Fault::kTornWrite: {
      if (d.torn_bytes > 0) {
        DUPLEX_RETURN_IF_ERROR(
            PWriteAll(fd, path, offset, data, d.torn_bytes));
      }
      return Status::IoError(
          "injected torn write (" + std::to_string(d.torn_bytes) + "/" +
          std::to_string(len) + "B persisted) at op " +
          std::to_string(d.op) + " (" + path + ")");
    }
    case FaultSchedule::Fault::kBitFlip: {
      std::vector<uint8_t> flipped(data, data + len);
      if (len > 0) flipped[d.flip_bit / 8] ^= uint8_t{1} << (d.flip_bit % 8);
      return PWriteAll(fd, path, offset, flipped.data(), len);
    }
  }
  return Status::Internal("unreachable fault decision");
}

Status FaultySync(int fd, const std::string& path, FaultSchedule* fault) {
  if (fault != nullptr) {
    const FaultSchedule::Decision d = fault->NextOp(/*is_write=*/true, 0);
    if (d.fault == FaultSchedule::Fault::kCrash) {
      return Status::IoError("injected crash: sync frozen at op " +
                             std::to_string(d.op) + " (" + path + ")");
    }
    if (d.fault == FaultSchedule::Fault::kTransientError) {
      return Status::IoError("injected sync failure at op " +
                             std::to_string(d.op) + " (" + path + ")");
    }
    // Torn/bit-flip decisions are meaningless for a sync; treat as clean.
  }
  if (::fdatasync(fd) != 0) {
    return Status::IoError("fdatasync(" + path +
                           "): " + std::strerror(errno));
  }
  return Status::OK();
}

std::string EncodeSuperblockSlot(const SuperblockRecord& record) {
  DUPLEX_CHECK(record.payload_path.size() <= Superblock::kMaxPayloadPath);
  std::string bytes;
  bytes.reserve(Superblock::kSlotBytes);
  bytes.append(kMagic, sizeof(kMagic));
  PutU32(Superblock::kVersion, &bytes);
  PutU32(static_cast<uint32_t>(record.payload_path.size()), &bytes);
  PutU64(record.install_seq, &bytes);
  PutU64(record.wal_epoch, &bytes);
  PutU64(record.payload_bytes, &bytes);
  PutU64(record.payload_checksum, &bytes);
  bytes.append(record.payload_path);
  bytes.resize(kChecksumOffset, '\0');
  PutU64(Fnv1a64(bytes.data(), kChecksumOffset), &bytes);
  return bytes;
}

Result<SuperblockRecord> DecodeSuperblockSlot(const std::string& bytes) {
  if (bytes.size() != Superblock::kSlotBytes) {
    return Status::Corruption("superblock slot has wrong size");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("superblock slot has bad magic");
  }
  const uint64_t stored = GetU64(bytes, kChecksumOffset);
  const uint64_t computed = Fnv1a64(bytes.data(), kChecksumOffset);
  if (stored != computed) {
    return Status::Corruption("superblock slot checksum mismatch");
  }
  const uint32_t version = GetU32(bytes, 8);
  if (version != Superblock::kVersion) {
    return Status::Corruption("superblock slot has unknown version " +
                              std::to_string(version));
  }
  const uint32_t path_len = GetU32(bytes, 12);
  if (path_len > Superblock::kMaxPayloadPath) {
    return Status::Corruption("superblock slot path length out of range");
  }
  SuperblockRecord record;
  record.install_seq = GetU64(bytes, 16);
  record.wal_epoch = GetU64(bytes, 24);
  record.payload_bytes = GetU64(bytes, 32);
  record.payload_checksum = GetU64(bytes, 40);
  record.payload_path = bytes.substr(48, path_len);
  return record;
}

Result<std::unique_ptr<Superblock>> Superblock::Open(
    const std::string& path) {
  std::unique_ptr<Superblock> sb(new Superblock(path));
  DUPLEX_RETURN_IF_ERROR(sb->Scan());
  return sb;
}

Status Superblock::Scan() {
  const int fd = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("open(" + path_ +
                           "): " + std::strerror(errno));
  }
  for (uint32_t slot = 0; slot < 2; ++slot) {
    std::string bytes(kSlotBytes, '\0');
    size_t done = 0;
    while (done < kSlotBytes) {
      const ssize_t n =
          ::pread(fd, bytes.data() + done, kSlotBytes - done,
                  static_cast<off_t>(slot * kSlotBytes + done));
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        ::close(fd);
        return Status::IoError("pread(" + path_ +
                               "): " + std::strerror(errno));
      }
      if (n == 0) break;  // short file: rest reads as zeros
      done += static_cast<size_t>(n);
    }
    // All-zero bytes = never written (fresh file or the inactive slot of
    // a first install); anything else must decode cleanly or the slot is
    // damaged.
    const bool empty = bytes.find_first_not_of('\0') == std::string::npos;
    if (empty) continue;
    Result<SuperblockRecord> record = DecodeSuperblockSlot(bytes);
    if (record.ok()) {
      slots_[slot] = std::move(*record);
      valid_[slot] = true;
    } else {
      ++damaged_slots_;
    }
  }
  ::close(fd);
  return Status::OK();
}

Result<SuperblockRecord> Superblock::Current() const {
  const std::vector<SuperblockRecord> records = ValidRecords();
  if (!records.empty()) return records.front();
  if (damaged_slots_ > 0) {
    return Status::Corruption("superblock " + path_ + ": " +
                              std::to_string(damaged_slots_) +
                              " damaged slot(s), none valid");
  }
  return Status::NotFound("superblock " + path_ + ": no record installed");
}

std::vector<SuperblockRecord> Superblock::ValidRecords() const {
  std::vector<SuperblockRecord> records;
  for (uint32_t slot = 0; slot < 2; ++slot) {
    if (valid_[slot]) records.push_back(slots_[slot]);
  }
  std::sort(records.begin(), records.end(),
            [](const SuperblockRecord& a, const SuperblockRecord& b) {
              return a.install_seq > b.install_seq;
            });
  return records;
}

Status Superblock::WriteSlot(uint32_t slot, const std::string& bytes) {
  DUPLEX_CHECK(bytes.size() == kSlotBytes);
  const int fd = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("open(" + path_ +
                           "): " + std::strerror(errno));
  }
  // Two half-slot ops + one sync op: a crash between the halves leaves a
  // torn slot whose checksum cannot validate, which is exactly the
  // degradation the dual-slot design absorbs.
  const uint64_t base = static_cast<uint64_t>(slot) * kSlotBytes;
  const auto* data = reinterpret_cast<const uint8_t*>(bytes.data());
  const size_t half = kSlotBytes / 2;
  Status s = FaultyPWrite(fd, path_, base, data, half, fault_.get());
  if (s.ok()) {
    s = FaultyPWrite(fd, path_, base + half, data + half,
                     kSlotBytes - half, fault_.get());
  }
  if (s.ok()) s = FaultySync(fd, path_, fault_.get());
  ::close(fd);
  return s;
}

Result<SuperblockRecord> Superblock::Install(SuperblockRecord record) {
  if (record.payload_path.size() > kMaxPayloadPath) {
    return Status::InvalidArgument("superblock payload path too long");
  }
  if (record.payload_path.find('/') != std::string::npos) {
    return Status::InvalidArgument(
        "superblock payload path must be a bare file name");
  }
  // Pick the inactive slot: the one NOT holding the newest valid record,
  // so a crash mid-write can only damage the superseded slot.
  uint64_t newest_seq = 0;
  uint32_t newest_slot = 0;
  bool any_valid = false;
  for (uint32_t slot = 0; slot < 2; ++slot) {
    if (valid_[slot] && slots_[slot].install_seq >= newest_seq) {
      newest_seq = slots_[slot].install_seq;
      newest_slot = slot;
      any_valid = true;
    }
  }
  const uint32_t target = any_valid ? (1 - newest_slot) : 0;
  record.install_seq = newest_seq + 1;
  DUPLEX_RETURN_IF_ERROR(WriteSlot(target, EncodeSuperblockSlot(record)));
  slots_[target] = record;
  valid_[target] = true;
  return record;
}

}  // namespace duplex::storage

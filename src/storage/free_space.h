#ifndef DUPLEX_STORAGE_FREE_SPACE_H_
#define DUPLEX_STORAGE_FREE_SPACE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/block.h"
#include "util/status.h"

namespace duplex::storage {

// Free-space manager for a single disk. The paper (Section 3, fourth issue)
// uses first-fit over the free list scanned from the beginning of the disk;
// best-fit and a buddy system are mentioned as unexplored alternatives, so
// all three are implemented here for the ablation benches.
class FreeSpaceMap {
 public:
  virtual ~FreeSpaceMap() = default;

  // Finds a contiguous run of `length` blocks; returns its start block.
  // Fails with ResourceExhausted when no sufficient run exists.
  virtual Result<BlockId> Allocate(uint64_t length) = 0;

  // Returns [start, start+length) to free space. Freeing blocks that are
  // already free is a Corruption error.
  virtual Status Free(BlockId start, uint64_t length) = 0;

  virtual uint64_t capacity_blocks() const = 0;
  virtual uint64_t free_blocks() const = 0;
  uint64_t used_blocks() const { return capacity_blocks() - free_blocks(); }

  // Number of maximal free runs (external fragmentation indicator).
  virtual uint64_t fragment_count() const = 0;

  // Length of the largest free run.
  virtual uint64_t largest_free_run() const = 0;
};

enum class FreeSpaceStrategy {
  kFirstFit,  // paper's strategy: scan from the beginning of the disk
  kBestFit,   // smallest sufficient run
  kBuddy,     // power-of-two buddy system (Cutting & Pedersen)
};

const char* FreeSpaceStrategyName(FreeSpaceStrategy s);

// First-fit / best-fit over an ordered map of free runs with coalescing on
// free. Allocate is O(#runs) for first-fit, O(#runs) for best-fit; Free is
// O(log #runs).
class FreeListMap : public FreeSpaceMap {
 public:
  FreeListMap(uint64_t capacity_blocks, bool best_fit);

  Result<BlockId> Allocate(uint64_t length) override;
  Status Free(BlockId start, uint64_t length) override;

  uint64_t capacity_blocks() const override { return capacity_; }
  uint64_t free_blocks() const override { return free_; }
  uint64_t fragment_count() const override { return runs_.size(); }
  uint64_t largest_free_run() const override;

 private:
  uint64_t capacity_;
  uint64_t free_;
  bool best_fit_;
  // start -> length of each maximal free run; invariant: no two runs touch.
  std::map<BlockId, uint64_t> runs_;
};

// Classic binary buddy allocator. Requests are rounded up to a power of
// two, which trades internal fragmentation for O(log capacity) operations
// and cheap coalescing.
class BuddyAllocator : public FreeSpaceMap {
 public:
  // capacity_blocks is rounded down to a power of two.
  explicit BuddyAllocator(uint64_t capacity_blocks);

  Result<BlockId> Allocate(uint64_t length) override;
  Status Free(BlockId start, uint64_t length) override;

  uint64_t capacity_blocks() const override { return capacity_; }
  uint64_t free_blocks() const override { return free_; }
  uint64_t fragment_count() const override;
  uint64_t largest_free_run() const override;

 private:
  static int OrderFor(uint64_t length);

  uint64_t capacity_;
  uint64_t free_;
  int max_order_;
  // free_lists_[k] holds start blocks of free runs of size 2^k, as a sorted
  // set for deterministic behaviour.
  std::vector<std::map<BlockId, bool>> free_lists_;
};

// Factory for the configured strategy.
std::unique_ptr<FreeSpaceMap> MakeFreeSpaceMap(FreeSpaceStrategy strategy,
                                               uint64_t capacity_blocks);

}  // namespace duplex::storage

#endif  // DUPLEX_STORAGE_FREE_SPACE_H_

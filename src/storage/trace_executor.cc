#include "storage/trace_executor.h"

#include <algorithm>

#include "util/logging.h"

namespace duplex::storage {

TraceExecutor::TraceExecutor(const ExecutorOptions& options)
    : options_(options) {
  DUPLEX_CHECK_GT(options.num_disks, 0u);
  DUPLEX_CHECK_GT(options.buffer_blocks, 0u);
}

ExecutionResult TraceExecutor::Execute(const IoTrace& trace) {
  ExecutionResult result;
  result.trace_events = trace.event_count();

  std::vector<DiskClock> clocks(options_.num_disks,
                                DiskClock(options_.disk));

  // Pending (not yet issued) coalesced request per disk.
  struct Pending {
    bool active = false;
    IoOp op = IoOp::kWrite;
    BlockId start = 0;
    uint64_t nblocks = 0;
  };
  std::vector<Pending> pending(options_.num_disks);
  std::vector<double> disk_busy(options_.num_disks, 0.0);

  auto issue = [&](DiskId d) {
    Pending& p = pending[d];
    if (!p.active) return;
    disk_busy[d] += clocks[d].Service(p.start, p.nblocks) / 1e3;
    ++result.issued_requests;
    p.active = false;
  };

  auto submit = [&](const IoEvent& e) {
    DUPLEX_CHECK_LT(e.disk, options_.num_disks);
    if (e.cached) {
      // Logical-only event: the buffer pool served it, no arm moved.
      ++result.cached_events;
      return;
    }
    Pending& p = pending[e.disk];
    if (options_.coalesce && p.active && p.op == e.op &&
        p.start + p.nblocks == e.block &&
        p.nblocks + e.nblocks <= options_.buffer_blocks) {
      p.nblocks += e.nblocks;
      return;
    }
    issue(e.disk);
    p.active = true;
    p.op = e.op;
    p.start = e.block;
    p.nblocks = e.nblocks;
    if (!options_.coalesce || p.nblocks >= options_.buffer_blocks) {
      issue(e.disk);
    }
  };

  double cumulative = 0.0;
  for (size_t u = 0; u < trace.update_count(); ++u) {
    auto [first, last] = trace.UpdateRange(u);
    std::fill(disk_busy.begin(), disk_busy.end(), 0.0);
    for (size_t i = first; i < last; ++i) submit(trace.events()[i]);
    // Batch boundary: all buffers flushed to disk (the paper flushes all
    // system buffers after each batch update).
    for (DiskId d = 0; d < options_.num_disks; ++d) issue(d);
    const double elapsed =
        *std::max_element(disk_busy.begin(), disk_busy.end());
    result.update_seconds.push_back(elapsed);
    cumulative += elapsed;
    result.cumulative_seconds.push_back(cumulative);
  }

  for (const auto& c : clocks) {
    result.seeks += c.seeks();
    result.blocks_transferred += c.blocks_transferred();
  }
  return result;
}

}  // namespace duplex::storage

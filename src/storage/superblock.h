#ifndef DUPLEX_STORAGE_SUPERBLOCK_H_
#define DUPLEX_STORAGE_SUPERBLOCK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/fault_injection.h"
#include "util/status.h"

namespace duplex::storage {

// What one superblock slot points at: the newest durable checkpoint (or
// manifest) file, the WAL epoch it covers, and enough integrity metadata
// to prove the payload file intact before trusting it.
struct SuperblockRecord {
  // Monotonic install counter; the valid slot with the larger sequence
  // wins. Starts at 1 for the first install.
  uint64_t install_seq = 0;
  // First WAL batch id NOT covered by the checkpoint: recovery loads the
  // payload, then replays batches with id >= wal_epoch.
  uint64_t wal_epoch = 0;
  // Exact length and FNV-1a-64 checksum of the payload file, verified
  // before any byte of it is deserialized — a torn checkpoint write reads
  // as typed kCorruption, never as a half-restored index.
  uint64_t payload_bytes = 0;
  uint64_t payload_checksum = 0;
  // Payload file name (no directory component; resolved relative to the
  // superblock's own directory). Bounded by kMaxPayloadPath.
  std::string payload_path;
};

// Dual-slot atomic installation root for the checkpoint subsystem — the
// one piece of mutable state recovery trusts first. The file holds two
// fixed-size slots, each independently checksummed; Install() always
// writes the slot the current record does NOT occupy and only an intact,
// newest-sequence slot is ever returned. A crash at any byte of an
// install therefore damages at most the slot being written, and the
// previous record keeps winning — the single "slot flip" is the checksum
// becoming valid, which is atomic at the granularity recovery cares
// about (a torn slot fails its checksum and is ignored with a typed
// status, never parsed).
//
// The slot write path can be armed with a FaultSchedule: each slot half
// and the final sync count as one physical op, so a crash-point sweep
// can tear the install at every boundary (first half only = torn slot;
// between sync and return = both slots intact, new one wins).
//
// Single-writer by contract (one checkpointer per index); concurrent
// readers of an already-opened Superblock are fine, concurrent Install
// is not.
class Superblock {
 public:
  static constexpr uint64_t kSlotBytes = 512;
  static constexpr uint64_t kMaxPayloadPath = 400;
  static constexpr uint32_t kVersion = 1;

  // Opens (creating if necessary) the dual-slot file at `path` and scans
  // both slots. Damaged slots are tolerated here — they surface through
  // Current()/ValidRecords() as absence, plus slot_damage() for callers
  // that want to warn.
  static Result<std::unique_ptr<Superblock>> Open(const std::string& path);

  Superblock(const Superblock&) = delete;
  Superblock& operator=(const Superblock&) = delete;

  // Durably installs `record` (install_seq is assigned internally:
  // newest + 1) into the inactive slot. On success the record becomes
  // the one Current() returns. On failure (including an injected crash)
  // the previous record is untouched.
  Result<SuperblockRecord> Install(SuperblockRecord record);

  // The newest intact record. Typed statuses, never garbage:
  //   kNotFound    — no record was ever installed (both slots empty)
  //   kCorruption  — slots were written but every one is damaged
  Result<SuperblockRecord> Current() const;

  // Every intact record, newest first (at most 2). Recovery walks this
  // list so a damaged newest checkpoint file can fall back to the
  // previous install.
  std::vector<SuperblockRecord> ValidRecords() const;

  // Slots that held data but failed validation on Open (torn install or
  // in-place rot). Informational; Install() overwrites the inactive slot
  // regardless.
  uint32_t slot_damage() const { return damaged_slots_; }

  const std::string& path() const { return path_; }

  // Arms fault injection on the install path's physical writes. Shared
  // with the checkpoint pipeline so one op counter numbers the whole
  // protocol.
  void set_fault_schedule(std::shared_ptr<FaultSchedule> schedule) {
    fault_ = std::move(schedule);
  }

 private:
  explicit Superblock(std::string path) : path_(std::move(path)) {}

  Status Scan();
  // Writes `bytes` (kSlotBytes) into slot `slot` as two half-slot ops
  // plus one sync op, each consulting the fault schedule.
  Status WriteSlot(uint32_t slot, const std::string& bytes);

  std::string path_;
  std::shared_ptr<FaultSchedule> fault_;
  // Decoded slot contents; valid_[i] false = empty or damaged.
  SuperblockRecord slots_[2];
  bool valid_[2] = {false, false};
  uint32_t damaged_slots_ = 0;
};

// Slot codec, exposed for tests that build torn/bit-flipped slots by
// hand: encodes to exactly kSlotBytes (magic, version, record fields,
// zero padding, trailing FNV-1a-64 over everything before it).
std::string EncodeSuperblockSlot(const SuperblockRecord& record);
Result<SuperblockRecord> DecodeSuperblockSlot(const std::string& bytes);

// Fault-aware plain-file primitives shared by the checkpoint pipeline
// (superblock install, checkpoint file writer, WAL tail truncation):
// each call is one physical op under `fault` (null = no injection), with
// the same fault semantics as FaultInjectingBlockDevice — crash and
// transient errors write nothing, a torn write persists a prefix then
// fails, a bit flip persists silently damaged bytes and "succeeds".
Status FaultyPWrite(int fd, const std::string& path, uint64_t offset,
                    const uint8_t* data, size_t len, FaultSchedule* fault);
Status FaultySync(int fd, const std::string& path, FaultSchedule* fault);

}  // namespace duplex::storage

#endif  // DUPLEX_STORAGE_SUPERBLOCK_H_

#ifndef DUPLEX_STORAGE_FILE_BLOCK_DEVICE_H_
#define DUPLEX_STORAGE_FILE_BLOCK_DEVICE_H_

#include <memory>
#include <string>

#include "storage/block_device.h"
#include "util/metrics.h"
#include "util/status.h"

namespace duplex::storage {

// File-backed block device: blocks live in a regular file accessed with
// positioned reads/writes, the library's equivalent of the paper's raw
// disk partitions. The file is grown lazily (sparse where the filesystem
// supports it); unwritten regions read as zero, matching MemBlockDevice
// semantics.
class FileBlockDevice : public BlockDevice {
 public:
  // Creates (or opens, when the file exists) a device of
  // `capacity_blocks` x `block_size` bytes at `path`.
  static Result<std::unique_ptr<FileBlockDevice>> Open(
      const std::string& path, uint64_t capacity_blocks,
      uint64_t block_size);

  ~FileBlockDevice() override;

  FileBlockDevice(const FileBlockDevice&) = delete;
  FileBlockDevice& operator=(const FileBlockDevice&) = delete;

  uint64_t capacity_blocks() const override { return capacity_blocks_; }
  uint64_t block_size() const override { return block_size_; }

  Status Write(BlockId start, uint64_t byte_offset, const uint8_t* data,
               size_t len) override;
  Status Read(BlockId start, uint64_t byte_offset, uint8_t* out,
              size_t len) const override;

  // Flushes dirty pages to stable storage (fdatasync).
  Status Sync();

  const std::string& path() const { return path_; }

 private:
  FileBlockDevice(std::string path, int fd, uint64_t capacity_blocks,
                  uint64_t block_size);

  std::string path_;
  int fd_;
  uint64_t capacity_blocks_;
  uint64_t block_size_;
  // Registry handles (null when no registry was installed at Open time).
  LatencyHistogram* m_read_ns_ = nullptr;
  LatencyHistogram* m_write_ns_ = nullptr;
  Counter* m_retries_ = nullptr;
};

}  // namespace duplex::storage

#endif  // DUPLEX_STORAGE_FILE_BLOCK_DEVICE_H_

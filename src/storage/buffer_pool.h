#ifndef DUPLEX_STORAGE_BUFFER_POOL_H_
#define DUPLEX_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/block.h"
#include "storage/block_device.h"
#include "util/metrics.h"
#include "util/status.h"

namespace duplex::storage {

// When the base device learns about a write: immediately (write-through)
// or at eviction / Flush() time (write-back). Write-back batches the
// physical writes of hot blocks but requires dirty frames to be flushed
// before a batch commits (see core::BatchLog — dirty frames are written
// back before MarkApplied so the WAL protocol stays crash-safe).
enum class CacheMode : uint8_t { kWriteThrough, kWriteBack };

// Victim selection among unpinned frames.
enum class CacheEviction : uint8_t { kClock, kLru };

const char* CacheModeName(CacheMode mode);
const char* CacheEvictionName(CacheEviction eviction);
Result<CacheMode> ParseCacheMode(std::string_view name);
Result<CacheEviction> ParseCacheEviction(std::string_view name);

struct BufferPoolOptions {
  // Total frames across all lock shards; 0 disables caching entirely
  // (no pool is created anywhere in the stack).
  uint64_t capacity_blocks = 0;
  // Lock shards: frames are hash-partitioned by block key, each partition
  // behind its own mutex so concurrent queries on disjoint blocks do not
  // serialize. Clamped to [1, capacity_blocks].
  uint32_t lock_shards = 8;
  CacheMode mode = CacheMode::kWriteThrough;
  CacheEviction eviction = CacheEviction::kClock;

  bool enabled() const { return capacity_blocks > 0; }
};

// End-to-end cache accounting. Every counter is a plain sum over the
// pool's lock shards, so merging pools (e.g. per index shard) is a plain
// field-wise sum too — MergeStats relies on that.
struct CacheStats {
  uint64_t hits = 0;              // read probes served from a frame
  uint64_t misses = 0;            // read probes that went to the base
  uint64_t evictions = 0;         // frames reclaimed (clean or dirty)
  uint64_t dirty_writebacks = 0;  // dirty frames written back (evict/flush)
  uint64_t pinned_peak = 0;       // max frames pinned at once
  uint64_t physical_reads = 0;    // block reads issued to the base
  uint64_t physical_writes = 0;   // block writes issued to the base
  uint64_t writeback_failures = 0;  // evictions aborted: device refused
                                    // the dirty write-back (frame kept)

  CacheStats& Add(const CacheStats& other);
  double hit_rate() const {
    const uint64_t probes = hits + misses;
    return probes == 0 ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(probes);
  }

  friend bool operator==(const CacheStats& a, const CacheStats& b) = default;
};

// A sharded block cache with pinning and write-back. Frames are whole
// blocks keyed by (client, block); clients are the devices sharing the
// pool (one per disk of a DiskArray), so one pool manages a global
// capacity across all disks of an index.
//
// Two operating modes, chosen at construction:
//  - materialized: frames carry block payloads; the payload path
//    (Read/Write/Pin/Flush) is what CachingBlockDevice drives.
//  - accounting-only: frames carry residency metadata but no bytes; the
//    Touch* path lets the count-only simulation pipeline model hit/miss
//    behaviour of the identical block access stream without storing data.
//
// Frame lifecycle:
//
//   empty --miss--> resident(clean) --write--> resident(dirty)
//     ^                  |   ^                      |
//     |               evict  +---- write-back ------+  (StoreBlock,
//     +---- Invalidate ---+            on evict/Flush    dirty_writebacks)
//
// Pinned frames are never evicted; Pin() returns a guard whose data
// pointer stays valid without holding any pool lock until the guard is
// destroyed. Callers must not race a Write against a pinned read of the
// same block — the same single-writer contract BlockDevice already has.
//
// Concurrency: each lock shard owns its frames exclusively; base-device
// I/O (loads, write-backs) runs under the owning shard's lock plus a
// per-client I/O mutex, so a non-thread-safe base device (MemBlockDevice)
// is never accessed concurrently through one client.
class BufferPool {
 public:
  // The base a client's frames load from and write back to. Null for
  // accounting-only clients.
  class BlockSource {
   public:
    virtual ~BlockSource() = default;
    // Fills `out` (exactly block_size bytes) from `block`.
    virtual Status LoadBlock(BlockId block, uint8_t* out) = 0;
    // Writes a full block back to the base.
    virtual Status StoreBlock(BlockId block, const uint8_t* data) = 0;
  };

  // RAII pin. While alive, the frame cannot be evicted; data() (payload
  // pools only) may be read without holding pool locks.
  class PinnedBlock {
   public:
    PinnedBlock() = default;
    PinnedBlock(PinnedBlock&& other) noexcept { *this = std::move(other); }
    PinnedBlock& operator=(PinnedBlock&& other) noexcept;
    PinnedBlock(const PinnedBlock&) = delete;
    PinnedBlock& operator=(const PinnedBlock&) = delete;
    ~PinnedBlock() { Release(); }

    bool valid() const { return pool_ != nullptr; }
    // Null for accounting-only pools.
    const uint8_t* data() const { return data_; }
    BlockId block() const { return block_; }
    void Release();

   private:
    friend class BufferPool;
    PinnedBlock(BufferPool* pool, uint32_t shard, uint32_t slot,
                BlockId block, const uint8_t* data)
        : pool_(pool), shard_(shard), slot_(slot), block_(block),
          data_(data) {}

    BufferPool* pool_ = nullptr;
    uint32_t shard_ = 0;
    uint32_t slot_ = 0;
    BlockId block_ = 0;
    const uint8_t* data_ = nullptr;
  };

  // `materialized` selects payload frames; `block_size` is the frame size
  // in bytes (payload pools only, but recorded for both).
  BufferPool(const BufferPoolOptions& options, uint64_t block_size,
             bool materialized);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Registers a device with the pool and returns its client id. All
  // clients must be registered before concurrent use begins. `source`
  // may be null (accounting-only client).
  uint32_t RegisterClient(BlockSource* source);

  // --- Payload path (materialized pools) ---------------------------------

  // Reads `len` bytes at `offset` within `block` through the cache,
  // loading the frame from the client's base on a miss.
  Status Read(uint32_t client, BlockId block, uint64_t offset, uint8_t* out,
              size_t len);

  // Writes through the cache. The frame is always populated
  // (write-allocate); a partial-block miss first loads the block so
  // unwritten bytes survive. Write-through stores the frame to the base
  // before returning; write-back only marks it dirty.
  Status Write(uint32_t client, BlockId block, uint64_t offset,
               const uint8_t* data, size_t len);

  // Pins the frame for `block`, loading it on a miss.
  Result<PinnedBlock> Pin(uint32_t client, BlockId block);

  // Writes every dirty frame back to its base (all clients / one client).
  Status Flush();
  Status FlushClient(uint32_t client);

  // --- Accounting path (count-only pools; also valid on payload pools
  // for residency probes) ------------------------------------------------

  // Simulates reading `nblocks` starting at `start`: returns how many
  // were already resident (hits); misses are faulted in with full
  // eviction and stats effects, but no payload I/O.
  uint64_t TouchRead(uint32_t client, BlockId start, uint64_t nblocks);

  // Simulates writing: frames are populated (write-allocate); physical
  // writes are charged now (write-through) or deferred to eviction/flush
  // (write-back).
  void TouchWrite(uint32_t client, BlockId start, uint64_t nblocks);

  // How many of the blocks are currently resident. Const: no stats, no
  // recency update.
  uint64_t PeekResident(uint32_t client, BlockId start,
                        uint64_t nblocks) const;

  // Drops frames without write-back — the blocks were freed, their
  // contents are dead (shadow-paged regions, released chunks).
  void Invalidate(uint32_t client, BlockId start, uint64_t nblocks);

  // --- Introspection -----------------------------------------------------

  CacheStats stats() const;
  uint64_t resident_blocks() const;
  uint64_t capacity_blocks() const { return capacity_; }
  uint64_t block_size() const { return block_size_; }
  bool materialized() const { return materialized_; }
  const BufferPoolOptions& options() const { return options_; }

 private:
  static constexpr uint32_t kNoSlot = ~0u;

  struct Frame {
    uint64_t key = ~0ull;
    uint32_t client = 0;
    BlockId block = 0;
    std::vector<uint8_t> data;  // empty in accounting-only pools
    uint32_t pins = 0;
    bool dirty = false;
    bool referenced = false;  // CLOCK second-chance bit
    bool in_use = false;
    // Intrusive LRU list (slot indices).
    uint32_t lru_prev = kNoSlot;
    uint32_t lru_next = kNoSlot;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, uint32_t> map;  // key -> slot
    std::vector<Frame> slots;
    std::vector<uint32_t> free_slots;
    uint32_t clock_hand = 0;
    uint32_t lru_head = kNoSlot;  // most recent
    uint32_t lru_tail = kNoSlot;  // least recent
    uint64_t pinned_now = 0;
    CacheStats stats;
  };

  struct Client {
    BlockSource* source = nullptr;
    std::unique_ptr<std::mutex> io_mu;
  };

  static uint64_t Key(uint32_t client, BlockId block) {
    return (static_cast<uint64_t>(client) << 48) | block;
  }
  Shard& ShardFor(uint64_t key) {
    return shards_[key % shards_.size()];
  }
  const Shard& ShardFor(uint64_t key) const {
    return shards_[key % shards_.size()];
  }

  // All helpers below run under the shard's mutex.
  Frame* FindFrame(Shard& shard, uint64_t key);
  void TouchRecency(Shard& shard, uint32_t slot);
  void LruUnlink(Shard& shard, uint32_t slot);
  void LruPushFront(Shard& shard, uint32_t slot);
  Result<uint32_t> AcquireSlot(Shard& shard);          // may evict
  Result<uint32_t> EvictVictim(Shard& shard);          // returns freed slot
  Status WriteBackFrame(Shard& shard, Frame& frame);   // StoreBlock + stats
  void ReleaseFrame(Shard& shard, uint32_t slot);      // to the free list
  // Faults (client, block) into a frame; `load` fills the payload from the
  // base when true (payload pools).
  Result<uint32_t> FaultIn(Shard& shard, uint32_t client, BlockId block,
                           bool load);
  void Unpin(uint32_t shard_index, uint32_t slot);

  BufferPoolOptions options_;
  uint64_t capacity_ = 0;
  uint64_t block_size_ = 0;
  bool materialized_ = false;
  std::vector<Shard> shards_;
  std::vector<Client> clients_;

  // Registry handles, fetched once at construction against the registry
  // installed at that moment (null when none — recording then costs one
  // branch). The registry must outlive the pool.
  Counter* m_hits_ = nullptr;
  Counter* m_misses_ = nullptr;
  Counter* m_evictions_ = nullptr;
  Counter* m_writebacks_ = nullptr;
  Counter* m_writeback_failures_ = nullptr;
  LatencyHistogram* m_load_ns_ = nullptr;
  LatencyHistogram* m_writeback_ns_ = nullptr;
};

// Decorator that gives any BlockDevice a buffer-pool front: reads are
// served from pool frames (loading on miss), writes go through the pool
// in the pool's cache mode. MemBlockDevice and FileBlockDevice both
// benefit without any caller change — callers keep speaking BlockDevice.
//
//   auto pool = std::make_unique<BufferPool>(opts, 4096, true);
//   CachingBlockDevice cached(&base, pool.get());
//   cached.Write(...);   // hot blocks stay in the pool
//   cached.Flush();      // write-back mode: push dirty frames to `base`
class CachingBlockDevice : public BlockDevice,
                           private BufferPool::BlockSource {
 public:
  // Registers itself as a client of `pool`. `base` and `pool` must
  // outlive this device; `pool` must be materialized with the base's
  // block size.
  CachingBlockDevice(BlockDevice* base, BufferPool* pool);

  uint64_t capacity_blocks() const override {
    return base_->capacity_blocks();
  }
  uint64_t block_size() const override { return base_->block_size(); }

  Status Write(BlockId start, uint64_t byte_offset, const uint8_t* data,
               size_t len) override;
  Status Read(BlockId start, uint64_t byte_offset, uint8_t* out,
              size_t len) const override;

  // Writes this device's dirty frames back to the base.
  Status Flush();

  // Pins one block of this device (see BufferPool::Pin).
  Result<BufferPool::PinnedBlock> PinBlock(BlockId block) {
    return pool_->Pin(client_, block);
  }

  BlockDevice* base() { return base_; }
  const BlockDevice* base() const { return base_; }
  BufferPool* pool() { return pool_; }
  uint32_t client_id() const { return client_; }

 private:
  Status LoadBlock(BlockId block, uint8_t* out) override;
  Status StoreBlock(BlockId block, const uint8_t* data) override;

  BlockDevice* base_;
  BufferPool* pool_;
  uint32_t client_;
};

}  // namespace duplex::storage

#endif  // DUPLEX_STORAGE_BUFFER_POOL_H_

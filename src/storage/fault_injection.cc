#include "storage/fault_injection.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

namespace duplex::storage {

FaultSchedule::FaultSchedule(FaultScheduleOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  m_faults_ = GlobalCounter("duplex_storage_faults_injected_total",
                            "Faults delivered by the injection schedule");
}

FaultSchedule::Decision FaultSchedule::NextOp(bool is_write, size_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  Decision d;
  d.op = ++ops_;
  if (crashed_ || (options_.crash_at_op != 0 && d.op >= options_.crash_at_op)) {
    crashed_ = true;
    d.fault = Fault::kCrash;
    NoteFault();
    return d;
  }
  const auto exact = [&](const std::set<uint64_t>& ops) {
    return ops.count(d.op) != 0;
  };
  if (is_write) {
    if (d.op == options_.torn_write_at_op) {
      d.fault = Fault::kTornWrite;
      d.torn_bytes = static_cast<size_t>(
          std::ceil(static_cast<double>(len) * options_.torn_write_fraction));
      d.torn_bytes = std::min(d.torn_bytes, len);
      NoteFault();
      return d;
    }
    if (exact(options_.bit_flip_ops) ||
        (options_.bit_flip_probability > 0 &&
         rng_.Bernoulli(options_.bit_flip_probability))) {
      d.fault = Fault::kBitFlip;
      d.flip_bit = len == 0 ? 0 : rng_.Uniform(len * 8);
      NoteFault();
      ++flips_;
      return d;
    }
    if (exact(options_.write_error_ops) ||
        (options_.write_error_probability > 0 &&
         rng_.Bernoulli(options_.write_error_probability))) {
      d.fault = Fault::kTransientError;
      NoteFault();
      return d;
    }
  } else {
    if (exact(options_.read_error_ops) ||
        (options_.read_error_probability > 0 &&
         rng_.Bernoulli(options_.read_error_probability))) {
      d.fault = Fault::kTransientError;
      NoteFault();
      return d;
    }
  }
  return d;
}

void FaultSchedule::CrashAtOp(uint64_t op) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.crash_at_op = op;
  crashed_ = false;
}

void FaultSchedule::CrashNow() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = true;
}

void FaultSchedule::Heal() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = false;
  const uint64_t seed = options_.seed;
  options_ = FaultScheduleOptions{};
  options_.seed = seed;
}

bool FaultSchedule::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

uint64_t FaultSchedule::ops_issued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

uint64_t FaultSchedule::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_;
}

uint64_t FaultSchedule::bits_flipped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flips_;
}

namespace {

std::string OpLabel(bool is_write, BlockId start, uint64_t byte_offset,
                    size_t len, uint64_t op) {
  return std::string(is_write ? "write" : "read") + " op " +
         std::to_string(op) + " (block " + std::to_string(start) + "+" +
         std::to_string(byte_offset) + ", " + std::to_string(len) + "B)";
}

}  // namespace

Status FaultInjectingBlockDevice::Write(BlockId start, uint64_t byte_offset,
                                        const uint8_t* data, size_t len) {
  const FaultSchedule::Decision d = schedule_->NextOp(/*is_write=*/true, len);
  switch (d.fault) {
    case FaultSchedule::Fault::kNone:
      return base_->Write(start, byte_offset, data, len);
    case FaultSchedule::Fault::kCrash:
      return Status::IoError("injected crash: device frozen at " +
                             OpLabel(true, start, byte_offset, len, d.op));
    case FaultSchedule::Fault::kTransientError:
      return Status::IoError("injected transient write error at " +
                             OpLabel(true, start, byte_offset, len, d.op));
    case FaultSchedule::Fault::kTornWrite: {
      if (d.torn_bytes > 0) {
        // Persist the prefix a power cut would have left behind, then fail.
        DUPLEX_RETURN_IF_ERROR(
            base_->Write(start, byte_offset, data, d.torn_bytes));
      }
      return Status::IoError(
          "injected torn write (" + std::to_string(d.torn_bytes) + "/" +
          std::to_string(len) + "B persisted) at " +
          OpLabel(true, start, byte_offset, len, d.op));
    }
    case FaultSchedule::Fault::kBitFlip: {
      std::vector<uint8_t> flipped(data, data + len);
      if (len > 0) flipped[d.flip_bit / 8] ^= uint8_t{1} << (d.flip_bit % 8);
      // Silent corruption: the write "succeeds".
      return base_->Write(start, byte_offset, flipped.data(), len);
    }
  }
  return Status::Internal("unreachable fault decision");
}

Status FaultInjectingBlockDevice::Read(BlockId start, uint64_t byte_offset,
                                       uint8_t* out, size_t len) const {
  const FaultSchedule::Decision d = schedule_->NextOp(/*is_write=*/false, len);
  switch (d.fault) {
    case FaultSchedule::Fault::kCrash:
      return Status::IoError("injected crash: device frozen at " +
                             OpLabel(false, start, byte_offset, len, d.op));
    case FaultSchedule::Fault::kTransientError:
      return Status::IoError("injected transient read error at " +
                             OpLabel(false, start, byte_offset, len, d.op));
    default:
      return base_->Read(start, byte_offset, out, len);
  }
}

}  // namespace duplex::storage

#include "storage/block_device.h"

#include <algorithm>
#include <cstring>

namespace duplex::storage {

MemBlockDevice::MemBlockDevice(uint64_t capacity_blocks, uint64_t block_size)
    : capacity_blocks_(capacity_blocks), block_size_(block_size) {
  m_reads_ = GlobalCounter("duplex_storage_device_reads_total",
                           "Block-device read ops", "device=\"mem\"");
  m_writes_ = GlobalCounter("duplex_storage_device_writes_total",
                            "Block-device write ops", "device=\"mem\"");
}

Status MemBlockDevice::Write(BlockId start, uint64_t byte_offset,
                             const uint8_t* data, size_t len) {
  const uint64_t abs = start * block_size_ + byte_offset;
  if (abs + len > capacity_blocks_ * block_size_) {
    return Status::OutOfRange("write beyond device end");
  }
  if (m_writes_ != nullptr) m_writes_->Inc();
  uint64_t pos = abs;
  size_t written = 0;
  while (written < len) {
    const BlockId blk = pos / block_size_;
    const uint64_t in_blk = pos % block_size_;
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(block_size_ - in_blk, len - written));
    auto& bytes = blocks_[blk];
    if (bytes.empty()) bytes.assign(block_size_, 0);
    std::memcpy(bytes.data() + in_blk, data + written, n);
    pos += n;
    written += n;
  }
  return Status::OK();
}

Status MemBlockDevice::Read(BlockId start, uint64_t byte_offset, uint8_t* out,
                            size_t len) const {
  const uint64_t abs = start * block_size_ + byte_offset;
  if (abs + len > capacity_blocks_ * block_size_) {
    return Status::OutOfRange("read beyond device end");
  }
  if (m_reads_ != nullptr) m_reads_->Inc();
  uint64_t pos = abs;
  size_t done = 0;
  while (done < len) {
    const BlockId blk = pos / block_size_;
    const uint64_t in_blk = pos % block_size_;
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(block_size_ - in_blk, len - done));
    auto it = blocks_.find(blk);
    if (it == blocks_.end()) {
      std::memset(out + done, 0, n);
    } else {
      std::memcpy(out + done, it->second.data() + in_blk, n);
    }
    pos += n;
    done += n;
  }
  return Status::OK();
}

}  // namespace duplex::storage

#include "storage/checksum_device.h"

#include <cstring>
#include <string>

#include "util/hash.h"

namespace duplex::storage {

ChecksumBlockDevice::ChecksumBlockDevice(BlockDevice* base) : base_(base) {
  m_corruptions_ =
      GlobalCounter("duplex_storage_checksum_failures_total",
                    "Block reads that failed checksum verification");
}

Status ChecksumBlockDevice::CheckBlockLocked(
    BlockId block, std::vector<uint8_t>* scratch) const {
  scratch->assign(block_size(), 0);
  DUPLEX_RETURN_IF_ERROR(base_->Read(block, 0, scratch->data(), scratch->size()));
  const auto it = checksums_.find(block);
  if (it == checksums_.end()) return Status::OK();  // no claim on this block
  const uint64_t got = Fnv1a64(scratch->data(), scratch->size());
  if (got != it->second) {
    ++corruptions_;
    if (m_corruptions_ != nullptr) m_corruptions_->Inc();
    return Status::Corruption("checksum mismatch on block " +
                              std::to_string(block) + " (stored " +
                              std::to_string(it->second) + ", computed " +
                              std::to_string(got) + ")");
  }
  return Status::OK();
}

Status ChecksumBlockDevice::Write(BlockId start, uint64_t byte_offset,
                                  const uint8_t* data, size_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t bs = block_size();
  if (len == 0) return base_->Write(start, byte_offset, data, len);
  const uint64_t first = start + byte_offset / bs;
  const uint64_t begin = byte_offset % bs;
  const uint64_t last = start + (byte_offset + len - 1) / bs;

  // Build the full post-write image of every touched block so the stored
  // checksum always covers a whole block.
  std::vector<uint8_t> scratch;
  std::unordered_map<BlockId, uint64_t> intent;
  uint64_t consumed = 0;
  for (BlockId b = first; b <= last; ++b) {
    const uint64_t off = (b == first) ? begin : 0;
    const uint64_t take = std::min<uint64_t>(bs - off, len - consumed);
    if (off == 0 && take == bs) {
      intent[b] = Fnv1a64(data + consumed, bs);
    } else {
      // Read-modify: verify the resident image first so a write on top of
      // silent damage surfaces it instead of blessing it.
      DUPLEX_RETURN_IF_ERROR(CheckBlockLocked(b, &scratch));
      std::memcpy(scratch.data() + off, data + consumed, take);
      intent[b] = Fnv1a64(scratch.data(), scratch.size());
    }
    consumed += take;
  }

  // Install the intent checksums before attempting the write: if the base
  // device fails or tears it, the block's content is unknown and must read
  // as suspect, never as silently fine.
  for (const auto& [b, sum] : intent) checksums_[b] = sum;
  return base_->Write(start, byte_offset, data, len);
}

Status ChecksumBlockDevice::Read(BlockId start, uint64_t byte_offset,
                                 uint8_t* out, size_t len) const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t bs = block_size();
  if (len == 0) return base_->Read(start, byte_offset, out, len);
  const uint64_t first = start + byte_offset / bs;
  const uint64_t begin = byte_offset % bs;
  const uint64_t last = start + (byte_offset + len - 1) / bs;

  std::vector<uint8_t> scratch;
  uint64_t produced = 0;
  for (BlockId b = first; b <= last; ++b) {
    DUPLEX_RETURN_IF_ERROR(CheckBlockLocked(b, &scratch));
    const uint64_t off = (b == first) ? begin : 0;
    const uint64_t take = std::min<uint64_t>(bs - off, len - produced);
    std::memcpy(out + produced, scratch.data() + off, take);
    produced += take;
  }
  return Status::OK();
}

void ChecksumBlockDevice::Forget(BlockId start, uint64_t nblocks) {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint64_t i = 0; i < nblocks; ++i) checksums_.erase(start + i);
}

Status ChecksumBlockDevice::VerifyBlocks(BlockId start, uint64_t nblocks,
                                         std::vector<BlockId>* bad) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint8_t> scratch;
  Status first_io_error = Status::OK();
  for (uint64_t i = 0; i < nblocks; ++i) {
    const BlockId b = start + i;
    const Status s = CheckBlockLocked(b, &scratch);
    if (s.ok()) continue;
    if (s.IsCorruption()) {
      if (bad != nullptr) bad->push_back(b);
    } else if (first_io_error.ok()) {
      first_io_error = s;  // keep scanning; report the read failure last
    }
  }
  return first_io_error;
}

uint64_t ChecksumBlockDevice::blocks_tracked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checksums_.size();
}

uint64_t ChecksumBlockDevice::corruptions_detected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return corruptions_;
}

}  // namespace duplex::storage

#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace duplex::storage {

const char* CacheModeName(CacheMode mode) {
  switch (mode) {
    case CacheMode::kWriteThrough:
      return "write-through";
    case CacheMode::kWriteBack:
      return "write-back";
  }
  return "unknown";
}

const char* CacheEvictionName(CacheEviction eviction) {
  switch (eviction) {
    case CacheEviction::kClock:
      return "clock";
    case CacheEviction::kLru:
      return "lru";
  }
  return "unknown";
}

Result<CacheMode> ParseCacheMode(std::string_view name) {
  if (name == "write-through") return CacheMode::kWriteThrough;
  if (name == "write-back") return CacheMode::kWriteBack;
  return Status::InvalidArgument("unknown cache mode '" + std::string(name) +
                                 "' (write-through|write-back)");
}

Result<CacheEviction> ParseCacheEviction(std::string_view name) {
  if (name == "clock") return CacheEviction::kClock;
  if (name == "lru") return CacheEviction::kLru;
  return Status::InvalidArgument("unknown cache eviction '" +
                                 std::string(name) + "' (clock|lru)");
}

CacheStats& CacheStats::Add(const CacheStats& other) {
  hits += other.hits;
  misses += other.misses;
  evictions += other.evictions;
  dirty_writebacks += other.dirty_writebacks;
  pinned_peak += other.pinned_peak;
  physical_reads += other.physical_reads;
  physical_writes += other.physical_writes;
  writeback_failures += other.writeback_failures;
  return *this;
}

BufferPool::PinnedBlock& BufferPool::PinnedBlock::operator=(
    PinnedBlock&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    shard_ = other.shard_;
    slot_ = other.slot_;
    block_ = other.block_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

void BufferPool::PinnedBlock::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(shard_, slot_);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(const BufferPoolOptions& options, uint64_t block_size,
                       bool materialized)
    : options_(options),
      capacity_(options.capacity_blocks),
      block_size_(block_size),
      materialized_(materialized) {
  DUPLEX_CHECK_GT(capacity_, 0u) << "a BufferPool needs capacity";
  DUPLEX_CHECK_GT(block_size_, 0u);
  const uint32_t nshards = static_cast<uint32_t>(std::clamp<uint64_t>(
      options.lock_shards == 0 ? 1 : options.lock_shards, 1, capacity_));
  shards_ = std::vector<Shard>(nshards);
  for (uint32_t s = 0; s < nshards; ++s) {
    const uint64_t cap =
        capacity_ / nshards + (s < capacity_ % nshards ? 1 : 0);
    Shard& shard = shards_[s];
    shard.slots.resize(cap);
    shard.free_slots.reserve(cap);
    // Pop order matches slot order so cold fills walk slots 0, 1, ...
    for (uint32_t i = 0; i < cap; ++i) {
      shard.free_slots.push_back(static_cast<uint32_t>(cap - 1 - i));
    }
    shard.map.reserve(cap);
  }
  m_hits_ = GlobalCounter("duplex_storage_cache_hits_total",
                          "Buffer-pool read probes served from a frame");
  m_misses_ = GlobalCounter("duplex_storage_cache_misses_total",
                            "Buffer-pool read probes that went to the base");
  m_evictions_ = GlobalCounter("duplex_storage_cache_evictions_total",
                               "Buffer-pool frames reclaimed");
  m_writebacks_ =
      GlobalCounter("duplex_storage_cache_writebacks_total",
                    "Dirty frames written back on eviction or flush");
  m_writeback_failures_ =
      GlobalCounter("duplex_storage_cache_writeback_failures_total",
                    "Evictions aborted because the base refused the write");
  m_load_ns_ = GlobalLatency("duplex_storage_cache_load_ns",
                             "Latency of faulting a block in from the base");
  m_writeback_ns_ =
      GlobalLatency("duplex_storage_cache_writeback_ns",
                    "Latency of writing a dirty frame back to the base");
}

uint32_t BufferPool::RegisterClient(BlockSource* source) {
  Client client;
  client.source = source;
  client.io_mu = std::make_unique<std::mutex>();
  clients_.push_back(std::move(client));
  return static_cast<uint32_t>(clients_.size() - 1);
}

BufferPool::Frame* BufferPool::FindFrame(Shard& shard, uint64_t key) {
  auto it = shard.map.find(key);
  return it == shard.map.end() ? nullptr : &shard.slots[it->second];
}

void BufferPool::LruUnlink(Shard& shard, uint32_t slot) {
  Frame& f = shard.slots[slot];
  if (f.lru_prev != kNoSlot) {
    shard.slots[f.lru_prev].lru_next = f.lru_next;
  } else if (shard.lru_head == slot) {
    shard.lru_head = f.lru_next;
  }
  if (f.lru_next != kNoSlot) {
    shard.slots[f.lru_next].lru_prev = f.lru_prev;
  } else if (shard.lru_tail == slot) {
    shard.lru_tail = f.lru_prev;
  }
  f.lru_prev = kNoSlot;
  f.lru_next = kNoSlot;
}

void BufferPool::LruPushFront(Shard& shard, uint32_t slot) {
  Frame& f = shard.slots[slot];
  f.lru_prev = kNoSlot;
  f.lru_next = shard.lru_head;
  if (shard.lru_head != kNoSlot) shard.slots[shard.lru_head].lru_prev = slot;
  shard.lru_head = slot;
  if (shard.lru_tail == kNoSlot) shard.lru_tail = slot;
}

void BufferPool::TouchRecency(Shard& shard, uint32_t slot) {
  shard.slots[slot].referenced = true;
  if (options_.eviction == CacheEviction::kLru && shard.lru_head != slot) {
    LruUnlink(shard, slot);
    LruPushFront(shard, slot);
  }
}

Status BufferPool::WriteBackFrame(Shard& shard, Frame& frame) {
  (void)shard;
  DUPLEX_CHECK(frame.dirty);
  BlockSource* source = clients_[frame.client].source;
  if (source != nullptr && materialized_) {
    ScopedLatency timer(m_writeback_ns_);
    std::lock_guard io_lock(*clients_[frame.client].io_mu);
    DUPLEX_RETURN_IF_ERROR(source->StoreBlock(frame.block,
                                              frame.data.data()));
  }
  frame.dirty = false;
  ++shard.stats.dirty_writebacks;
  ++shard.stats.physical_writes;
  if (m_writebacks_ != nullptr) m_writebacks_->Inc();
  return Status::OK();
}

Result<uint32_t> BufferPool::EvictVictim(Shard& shard) {
  const size_t n = shard.slots.size();
  uint32_t victim = kNoSlot;
  if (options_.eviction == CacheEviction::kClock) {
    // Second-chance sweep: referenced frames get one reprieve; two full
    // revolutions with no victim means every frame is pinned.
    for (size_t step = 0; step < 2 * n && victim == kNoSlot; ++step) {
      Frame& f = shard.slots[shard.clock_hand];
      const uint32_t slot = shard.clock_hand;
      shard.clock_hand = static_cast<uint32_t>((shard.clock_hand + 1) % n);
      if (!f.in_use || f.pins > 0) continue;
      if (f.referenced) {
        f.referenced = false;
        continue;
      }
      victim = slot;
    }
  } else {
    for (uint32_t slot = shard.lru_tail; slot != kNoSlot;
         slot = shard.slots[slot].lru_prev) {
      if (shard.slots[slot].pins == 0) {
        victim = slot;
        break;
      }
    }
  }
  if (victim == kNoSlot) {
    return Status::ResourceExhausted(
        "buffer pool shard exhausted: every frame is pinned");
  }
  Frame& f = shard.slots[victim];
  if (f.dirty) {
    if (Status s = WriteBackFrame(shard, f); !s.ok()) {
      // The device refused the write-back. The frame is the only copy of
      // that data now, so it must NOT leave the pool: keep it dirty and
      // mapped, give it a fresh reprieve so the next eviction pass tries a
      // different victim first, and surface the failure to the caller.
      f.referenced = true;
      if (options_.eviction == CacheEviction::kLru &&
          shard.lru_head != victim) {
        LruUnlink(shard, victim);
        LruPushFront(shard, victim);
      }
      ++shard.stats.writeback_failures;
      if (m_writeback_failures_ != nullptr) m_writeback_failures_->Inc();
      return s;
    }
  }
  ++shard.stats.evictions;
  if (m_evictions_ != nullptr) m_evictions_->Inc();
  shard.map.erase(f.key);
  LruUnlink(shard, victim);
  f.in_use = false;
  return victim;
}

Result<uint32_t> BufferPool::AcquireSlot(Shard& shard) {
  if (!shard.free_slots.empty()) {
    const uint32_t slot = shard.free_slots.back();
    shard.free_slots.pop_back();
    return slot;
  }
  return EvictVictim(shard);
}

void BufferPool::ReleaseFrame(Shard& shard, uint32_t slot) {
  Frame& f = shard.slots[slot];
  shard.map.erase(f.key);
  LruUnlink(shard, slot);
  f.in_use = false;
  f.dirty = false;
  f.referenced = false;
  shard.free_slots.push_back(slot);
}

Result<uint32_t> BufferPool::FaultIn(Shard& shard, uint32_t client,
                                     BlockId block, bool load) {
  Result<uint32_t> slot = AcquireSlot(shard);
  if (!slot.ok()) return slot.status();
  Frame& f = shard.slots[*slot];
  f.key = Key(client, block);
  f.client = client;
  f.block = block;
  f.pins = 0;
  f.dirty = false;
  f.referenced = true;
  f.in_use = true;
  if (materialized_) {
    f.data.assign(block_size_, 0);
    if (load) {
      BlockSource* source = clients_[client].source;
      DUPLEX_CHECK(source != nullptr)
          << "payload fault-in needs a block source";
      ScopedLatency timer(m_load_ns_);
      std::lock_guard io_lock(*clients_[client].io_mu);
      Status s = source->LoadBlock(block, f.data.data());
      if (!s.ok()) {
        f.in_use = false;
        shard.free_slots.push_back(*slot);
        return s;
      }
    }
  }
  shard.map.emplace(f.key, *slot);
  LruPushFront(shard, *slot);
  return *slot;
}

Result<BufferPool::PinnedBlock> BufferPool::Pin(uint32_t client,
                                                BlockId block) {
  DUPLEX_CHECK_LT(client, clients_.size());
  const uint64_t key = Key(client, block);
  const uint32_t shard_index =
      static_cast<uint32_t>(key % shards_.size());
  Shard& shard = shards_[shard_index];
  std::lock_guard lock(shard.mu);
  uint32_t slot;
  if (Frame* f = FindFrame(shard, key); f != nullptr) {
    ++shard.stats.hits;
    if (m_hits_ != nullptr) m_hits_->Inc();
    slot = static_cast<uint32_t>(f - shard.slots.data());
    TouchRecency(shard, slot);
  } else {
    ++shard.stats.misses;
    if (m_misses_ != nullptr) m_misses_->Inc();
    if (materialized_) ++shard.stats.physical_reads;
    Result<uint32_t> faulted =
        FaultIn(shard, client, block, /*load=*/materialized_);
    if (!faulted.ok()) return faulted.status();
    slot = *faulted;
  }
  Frame& frame = shard.slots[slot];
  if (frame.pins++ == 0) {
    ++shard.pinned_now;
    shard.stats.pinned_peak =
        std::max(shard.stats.pinned_peak, shard.pinned_now);
  }
  return PinnedBlock(this, shard_index, slot, block,
                     materialized_ ? frame.data.data() : nullptr);
}

void BufferPool::Unpin(uint32_t shard_index, uint32_t slot) {
  Shard& shard = shards_[shard_index];
  std::lock_guard lock(shard.mu);
  Frame& frame = shard.slots[slot];
  DUPLEX_CHECK_GT(frame.pins, 0u);
  if (--frame.pins == 0) --shard.pinned_now;
}

Status BufferPool::Read(uint32_t client, BlockId block, uint64_t offset,
                        uint8_t* out, size_t len) {
  DUPLEX_CHECK(materialized_) << "payload reads need a materialized pool";
  DUPLEX_CHECK_LE(offset + len, block_size_);
  Result<PinnedBlock> pin = Pin(client, block);
  if (!pin.ok()) return pin.status();
  // The copy runs unpinned-lock-free: the pin guard keeps the frame (and
  // its bytes) alive until it releases.
  std::memcpy(out, pin->data() + offset, len);
  return Status::OK();
}

Status BufferPool::Write(uint32_t client, BlockId block, uint64_t offset,
                         const uint8_t* data, size_t len) {
  DUPLEX_CHECK(materialized_) << "payload writes need a materialized pool";
  DUPLEX_CHECK_LT(client, clients_.size());
  DUPLEX_CHECK_LE(offset + len, block_size_);
  const uint64_t key = Key(client, block);
  Shard& shard = ShardFor(key);
  std::lock_guard lock(shard.mu);
  uint32_t slot;
  if (Frame* f = FindFrame(shard, key); f != nullptr) {
    slot = static_cast<uint32_t>(f - shard.slots.data());
    TouchRecency(shard, slot);
  } else {
    // Write-allocate. A partial write must first load the block so the
    // bytes around the write survive; a full-block write overwrites all
    // of it, no base read needed.
    const bool full = offset == 0 && len == block_size_;
    if (!full) ++shard.stats.physical_reads;
    Result<uint32_t> faulted = FaultIn(shard, client, block, !full);
    if (!faulted.ok()) return faulted.status();
    slot = *faulted;
  }
  Frame& frame = shard.slots[slot];
  std::memcpy(frame.data.data() + offset, data, len);
  if (options_.mode == CacheMode::kWriteThrough) {
    BlockSource* source = clients_[client].source;
    DUPLEX_CHECK(source != nullptr);
    std::lock_guard io_lock(*clients_[client].io_mu);
    DUPLEX_RETURN_IF_ERROR(source->StoreBlock(block, frame.data.data()));
    ++shard.stats.physical_writes;
    frame.dirty = false;
  } else {
    frame.dirty = true;
  }
  return Status::OK();
}

Status BufferPool::Flush() {
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    for (Frame& f : shard.slots) {
      if (f.in_use && f.dirty) {
        DUPLEX_RETURN_IF_ERROR(WriteBackFrame(shard, f));
      }
    }
  }
  return Status::OK();
}

Status BufferPool::FlushClient(uint32_t client) {
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    for (Frame& f : shard.slots) {
      if (f.in_use && f.dirty && f.client == client) {
        DUPLEX_RETURN_IF_ERROR(WriteBackFrame(shard, f));
      }
    }
  }
  return Status::OK();
}

uint64_t BufferPool::TouchRead(uint32_t client, BlockId start,
                               uint64_t nblocks) {
  DUPLEX_CHECK(!materialized_)
      << "materialized pools account reads on the payload path";
  uint64_t resident = 0;
  for (uint64_t i = 0; i < nblocks; ++i) {
    const uint64_t key = Key(client, start + i);
    Shard& shard = ShardFor(key);
    std::lock_guard lock(shard.mu);
    if (Frame* f = FindFrame(shard, key); f != nullptr) {
      ++resident;
      ++shard.stats.hits;
      if (m_hits_ != nullptr) m_hits_->Inc();
      TouchRecency(shard,
                   static_cast<uint32_t>(f - shard.slots.data()));
    } else {
      ++shard.stats.misses;
      if (m_misses_ != nullptr) m_misses_->Inc();
      ++shard.stats.physical_reads;
      // An eviction failure is impossible here: accounting frames are
      // never pinned.
      DUPLEX_CHECK_OK(
          FaultIn(shard, client, start + i, /*load=*/false).status());
    }
  }
  return resident;
}

void BufferPool::TouchWrite(uint32_t client, BlockId start,
                            uint64_t nblocks) {
  DUPLEX_CHECK(!materialized_)
      << "materialized pools account writes on the payload path";
  for (uint64_t i = 0; i < nblocks; ++i) {
    const uint64_t key = Key(client, start + i);
    Shard& shard = ShardFor(key);
    std::lock_guard lock(shard.mu);
    Frame* f = FindFrame(shard, key);
    if (f == nullptr) {
      Result<uint32_t> faulted =
          FaultIn(shard, client, start + i, /*load=*/false);
      DUPLEX_CHECK_OK(faulted.status());
      f = &shard.slots[*faulted];
    } else {
      TouchRecency(shard, static_cast<uint32_t>(f - shard.slots.data()));
    }
    if (options_.mode == CacheMode::kWriteThrough) {
      ++shard.stats.physical_writes;
      f->dirty = false;
    } else {
      f->dirty = true;
    }
  }
}

uint64_t BufferPool::PeekResident(uint32_t client, BlockId start,
                                  uint64_t nblocks) const {
  uint64_t resident = 0;
  for (uint64_t i = 0; i < nblocks; ++i) {
    const uint64_t key = Key(client, start + i);
    const Shard& shard = ShardFor(key);
    std::lock_guard lock(shard.mu);
    resident += shard.map.contains(key) ? 1 : 0;
  }
  return resident;
}

void BufferPool::Invalidate(uint32_t client, BlockId start,
                            uint64_t nblocks) {
  for (uint64_t i = 0; i < nblocks; ++i) {
    const uint64_t key = Key(client, start + i);
    Shard& shard = ShardFor(key);
    std::lock_guard lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) continue;
    DUPLEX_CHECK_EQ(shard.slots[it->second].pins, 0u)
        << "invalidating a pinned frame (freed block still in use?)";
    ReleaseFrame(shard, it->second);
  }
}

CacheStats BufferPool::stats() const {
  CacheStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    total.Add(shard.stats);
  }
  return total;
}

uint64_t BufferPool::resident_blocks() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

CachingBlockDevice::CachingBlockDevice(BlockDevice* base, BufferPool* pool)
    : base_(base), pool_(pool) {
  DUPLEX_CHECK(base != nullptr);
  DUPLEX_CHECK(pool != nullptr);
  DUPLEX_CHECK(pool->materialized())
      << "CachingBlockDevice needs a materialized pool";
  DUPLEX_CHECK_EQ(pool->block_size(), base->block_size());
  client_ = pool_->RegisterClient(this);
}

Status CachingBlockDevice::Read(BlockId start, uint64_t byte_offset,
                                uint8_t* out, size_t len) const {
  const uint64_t bs = block_size();
  const uint64_t abs = start * bs + byte_offset;
  if (abs + len > capacity_blocks() * bs) {
    return Status::OutOfRange("read beyond device end");
  }
  uint64_t pos = abs;
  size_t done = 0;
  while (done < len) {
    const BlockId blk = pos / bs;
    const uint64_t in_blk = pos % bs;
    const size_t n =
        static_cast<size_t>(std::min<uint64_t>(bs - in_blk, len - done));
    DUPLEX_RETURN_IF_ERROR(
        pool_->Read(client_, blk, in_blk, out + done, n));
    pos += n;
    done += n;
  }
  return Status::OK();
}

Status CachingBlockDevice::Write(BlockId start, uint64_t byte_offset,
                                 const uint8_t* data, size_t len) {
  const uint64_t bs = block_size();
  const uint64_t abs = start * bs + byte_offset;
  if (abs + len > capacity_blocks() * bs) {
    return Status::OutOfRange("write beyond device end");
  }
  uint64_t pos = abs;
  size_t written = 0;
  while (written < len) {
    const BlockId blk = pos / bs;
    const uint64_t in_blk = pos % bs;
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(bs - in_blk, len - written));
    DUPLEX_RETURN_IF_ERROR(
        pool_->Write(client_, blk, in_blk, data + written, n));
    pos += n;
    written += n;
  }
  return Status::OK();
}

Status CachingBlockDevice::Flush() { return pool_->FlushClient(client_); }

Status CachingBlockDevice::LoadBlock(BlockId block, uint8_t* out) {
  return base_->Read(block, 0, out, block_size());
}

Status CachingBlockDevice::StoreBlock(BlockId block, const uint8_t* data) {
  return base_->Write(block, 0, data, block_size());
}

}  // namespace duplex::storage

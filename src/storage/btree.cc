#include "storage/btree.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace duplex::storage {
namespace {

constexpr uint64_t kMagic = 0x78656c7075647462ULL;  // "btdupex" + version
constexpr size_t kPageHeaderBytes = 16;

void Put64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, 8); }
uint64_t Get64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}
void Put32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
uint32_t Get32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
void Put16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, 2); }
uint16_t Get16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}

}  // namespace

size_t BPlusTree::LeafCapacity() const {
  return (meta_.block_size - kPageHeaderBytes) / (8 + meta_.value_size);
}

size_t BPlusTree::InternalCapacity() const {
  // n keys + (n+1) children of 8 bytes each.
  return (meta_.block_size - kPageHeaderBytes - 8) / 16;
}

Result<std::unique_ptr<BPlusTree>> BPlusTree::Create(BlockDevice* device,
                                                     uint32_t value_size) {
  DUPLEX_CHECK(device != nullptr);
  auto tree = std::unique_ptr<BPlusTree>(new BPlusTree(device));
  tree->meta_.magic = kMagic;
  tree->meta_.value_size = value_size;
  tree->meta_.block_size = static_cast<uint32_t>(device->block_size());
  tree->meta_.count = 0;
  tree->meta_.free_head = 0;
  tree->meta_.high_water = 1;  // page 0 is the meta page
  if (tree->LeafCapacity() < 4 || tree->InternalCapacity() < 4) {
    return Status::InvalidArgument(
        "value_size too large for block size: fewer than 4 entries/page");
  }
  Result<BlockId> root = tree->AllocatePage();
  if (!root.ok()) return root.status();
  tree->meta_.root = *root;
  Page root_page;
  root_page.id = *root;
  root_page.leaf = true;
  DUPLEX_RETURN_IF_ERROR(tree->StorePage(root_page));
  DUPLEX_RETURN_IF_ERROR(tree->StoreMeta());
  return tree;
}

Result<std::unique_ptr<BPlusTree>> BPlusTree::Open(BlockDevice* device) {
  DUPLEX_CHECK(device != nullptr);
  auto tree = std::unique_ptr<BPlusTree>(new BPlusTree(device));
  DUPLEX_RETURN_IF_ERROR(tree->LoadMeta());
  if (tree->meta_.magic != kMagic) {
    return Status::Corruption("btree: bad magic");
  }
  if (tree->meta_.block_size != device->block_size()) {
    return Status::Corruption("btree: block size mismatch");
  }
  return tree;
}

Status BPlusTree::LoadMeta() {
  std::vector<uint8_t> buf(device_->block_size());
  DUPLEX_RETURN_IF_ERROR(device_->Read(0, 0, buf.data(), buf.size()));
  meta_.magic = Get64(buf.data());
  meta_.value_size = Get32(buf.data() + 8);
  meta_.block_size = Get32(buf.data() + 12);
  meta_.root = Get64(buf.data() + 16);
  meta_.count = Get64(buf.data() + 24);
  meta_.free_head = Get64(buf.data() + 32);
  meta_.high_water = Get64(buf.data() + 40);
  return Status::OK();
}

Status BPlusTree::StoreMeta() {
  std::vector<uint8_t> buf(device_->block_size(), 0);
  Put64(buf.data(), meta_.magic);
  Put32(buf.data() + 8, meta_.value_size);
  Put32(buf.data() + 12, meta_.block_size);
  Put64(buf.data() + 16, meta_.root);
  Put64(buf.data() + 24, meta_.count);
  Put64(buf.data() + 32, meta_.free_head);
  Put64(buf.data() + 40, meta_.high_water);
  return device_->Write(0, 0, buf.data(), buf.size());
}

Result<BPlusTree::Page> BPlusTree::LoadPage(BlockId id) const {
  std::vector<uint8_t> buf(meta_.block_size);
  DUPLEX_RETURN_IF_ERROR(device_->Read(id, 0, buf.data(), buf.size()));
  Page page;
  page.id = id;
  page.leaf = buf[0] != 0;
  const uint16_t count = Get16(buf.data() + 2);
  page.next = Get64(buf.data() + 8);
  const uint8_t* p = buf.data() + kPageHeaderBytes;
  if (page.leaf) {
    if (count > LeafCapacity() + 1) {
      return Status::Corruption("btree: leaf count out of range");
    }
    for (uint16_t i = 0; i < count; ++i) {
      page.keys.push_back(Get64(p));
      p += 8;
      page.values.emplace_back(reinterpret_cast<const char*>(p),
                               meta_.value_size);
      p += meta_.value_size;
    }
  } else {
    if (count > InternalCapacity() + 1) {
      return Status::Corruption("btree: internal count out of range");
    }
    for (uint16_t i = 0; i < count; ++i) {
      page.keys.push_back(Get64(p));
      p += 8;
    }
    for (uint16_t i = 0; i <= count; ++i) {
      page.children.push_back(Get64(p));
      p += 8;
    }
  }
  return page;
}

Status BPlusTree::StorePage(const Page& page) {
  std::vector<uint8_t> buf(meta_.block_size, 0);
  buf[0] = page.leaf ? 1 : 0;
  Put16(buf.data() + 2, static_cast<uint16_t>(page.keys.size()));
  Put64(buf.data() + 8, page.next);
  uint8_t* p = buf.data() + kPageHeaderBytes;
  if (page.leaf) {
    DUPLEX_CHECK_EQ(page.keys.size(), page.values.size());
    for (size_t i = 0; i < page.keys.size(); ++i) {
      Put64(p, page.keys[i]);
      p += 8;
      DUPLEX_CHECK_EQ(page.values[i].size(), meta_.value_size);
      std::memcpy(p, page.values[i].data(), meta_.value_size);
      p += meta_.value_size;
    }
  } else {
    DUPLEX_CHECK_EQ(page.children.size(), page.keys.size() + 1);
    for (const uint64_t k : page.keys) {
      Put64(p, k);
      p += 8;
    }
    for (const uint64_t c : page.children) {
      Put64(p, c);
      p += 8;
    }
  }
  DUPLEX_CHECK_LE(static_cast<size_t>(p - buf.data()), buf.size());
  return device_->Write(page.id, 0, buf.data(), buf.size());
}

Result<BlockId> BPlusTree::AllocatePage() {
  if (meta_.free_head != 0) {
    const BlockId id = meta_.free_head;
    uint8_t next_buf[8];
    DUPLEX_RETURN_IF_ERROR(device_->Read(id, 8, next_buf, 8));
    meta_.free_head = Get64(next_buf);
    return id;
  }
  if (meta_.high_water >= device_->capacity_blocks()) {
    return Status::ResourceExhausted("btree: device full");
  }
  return meta_.high_water++;
}

Status BPlusTree::FreePage(BlockId id) {
  uint8_t buf[16] = {0};
  Put64(buf + 8, meta_.free_head);
  DUPLEX_RETURN_IF_ERROR(device_->Write(id, 0, buf, sizeof(buf)));
  meta_.free_head = id;
  return Status::OK();
}

Status BPlusTree::DescendTo(uint64_t key, std::vector<PathEntry>* path,
                            Page* leaf) const {
  Result<Page> page = LoadPage(meta_.root);
  if (!page.ok()) return page.status();
  while (!page->leaf) {
    const size_t idx = static_cast<size_t>(
        std::upper_bound(page->keys.begin(), page->keys.end(), key) -
        page->keys.begin());
    const BlockId child = page->children[idx];
    if (path != nullptr) path->push_back({std::move(*page), idx});
    page = LoadPage(child);
    if (!page.ok()) return page.status();
  }
  *leaf = std::move(*page);
  return Status::OK();
}

Result<std::pair<uint64_t, BPlusTree::Page>> BPlusTree::SplitPage(
    Page* page) {
  Result<BlockId> right_id = AllocatePage();
  if (!right_id.ok()) return right_id.status();
  Page right;
  right.id = *right_id;
  right.leaf = page->leaf;
  uint64_t separator = 0;
  const size_t mid = page->keys.size() / 2;
  if (page->leaf) {
    right.keys.assign(page->keys.begin() + static_cast<ptrdiff_t>(mid),
                      page->keys.end());
    right.values.assign(page->values.begin() + static_cast<ptrdiff_t>(mid),
                        page->values.end());
    page->keys.resize(mid);
    page->values.resize(mid);
    right.next = page->next;
    page->next = right.id;
    separator = right.keys.front();
  } else {
    // The middle key moves up; it does not stay in either child.
    separator = page->keys[mid];
    right.keys.assign(page->keys.begin() + static_cast<ptrdiff_t>(mid) + 1,
                      page->keys.end());
    right.children.assign(
        page->children.begin() + static_cast<ptrdiff_t>(mid) + 1,
        page->children.end());
    page->keys.resize(mid);
    page->children.resize(mid + 1);
  }
  DUPLEX_RETURN_IF_ERROR(StorePage(*page));
  DUPLEX_RETURN_IF_ERROR(StorePage(right));
  return std::make_pair(separator, std::move(right));
}

Status BPlusTree::InsertIntoParents(std::vector<PathEntry>* path,
                                    uint64_t separator,
                                    BlockId right_child) {
  while (!path->empty()) {
    Page parent = std::move(path->back().page);
    const size_t idx = path->back().child_index;
    path->pop_back();
    parent.keys.insert(parent.keys.begin() + static_cast<ptrdiff_t>(idx),
                       separator);
    parent.children.insert(
        parent.children.begin() + static_cast<ptrdiff_t>(idx) + 1,
        right_child);
    if (parent.keys.size() <= InternalCapacity()) {
      return StorePage(parent);
    }
    Result<std::pair<uint64_t, Page>> split = SplitPage(&parent);
    if (!split.ok()) return split.status();
    separator = split->first;
    right_child = split->second.id;
  }
  // The root itself split: grow the tree by one level.
  Result<BlockId> new_root_id = AllocatePage();
  if (!new_root_id.ok()) return new_root_id.status();
  Page new_root;
  new_root.id = *new_root_id;
  new_root.leaf = false;
  new_root.keys = {separator};
  new_root.children = {meta_.root, right_child};
  DUPLEX_RETURN_IF_ERROR(StorePage(new_root));
  meta_.root = new_root.id;
  return Status::OK();
}

Status BPlusTree::Insert(uint64_t key, const std::string& value) {
  if (value.size() != meta_.value_size) {
    return Status::InvalidArgument("value size mismatch");
  }
  std::vector<PathEntry> path;
  Page leaf;
  DUPLEX_RETURN_IF_ERROR(DescendTo(key, &path, &leaf));
  const auto it = std::lower_bound(leaf.keys.begin(), leaf.keys.end(), key);
  const size_t pos = static_cast<size_t>(it - leaf.keys.begin());
  if (it != leaf.keys.end() && *it == key) {
    leaf.values[pos] = value;
    return StorePage(leaf);
  }
  leaf.keys.insert(it, key);
  leaf.values.insert(leaf.values.begin() + static_cast<ptrdiff_t>(pos),
                     value);
  ++meta_.count;
  if (leaf.keys.size() <= LeafCapacity()) {
    DUPLEX_RETURN_IF_ERROR(StorePage(leaf));
  } else {
    Result<std::pair<uint64_t, Page>> split = SplitPage(&leaf);
    if (!split.ok()) return split.status();
    DUPLEX_RETURN_IF_ERROR(
        InsertIntoParents(&path, split->first, split->second.id));
  }
  return StoreMeta();
}

Result<std::string> BPlusTree::Get(uint64_t key) const {
  Page leaf;
  DUPLEX_RETURN_IF_ERROR(DescendTo(key, nullptr, &leaf));
  const auto it = std::lower_bound(leaf.keys.begin(), leaf.keys.end(), key);
  if (it == leaf.keys.end() || *it != key) {
    return Status::NotFound("key not in btree");
  }
  return leaf.values[static_cast<size_t>(it - leaf.keys.begin())];
}

Status BPlusTree::Delete(uint64_t key) {
  std::vector<PathEntry> path;
  Page leaf;
  DUPLEX_RETURN_IF_ERROR(DescendTo(key, &path, &leaf));
  const auto it = std::lower_bound(leaf.keys.begin(), leaf.keys.end(), key);
  if (it == leaf.keys.end() || *it != key) {
    return Status::NotFound("key not in btree");
  }
  const size_t pos = static_cast<size_t>(it - leaf.keys.begin());
  leaf.keys.erase(it);
  leaf.values.erase(leaf.values.begin() + static_cast<ptrdiff_t>(pos));
  --meta_.count;
  DUPLEX_RETURN_IF_ERROR(StorePage(leaf));

  // Lazy rebalancing: reclaim a now-empty leaf when its immediate left
  // sibling shares the parent (so the sibling link can be patched);
  // otherwise the empty page stays and scans skip it.
  if (leaf.keys.empty() && !path.empty() && path.back().child_index > 0) {
    Page parent = std::move(path.back().page);
    const size_t idx = path.back().child_index;
    Result<Page> left = LoadPage(parent.children[idx - 1]);
    if (!left.ok()) return left.status();
    left->next = leaf.next;
    DUPLEX_RETURN_IF_ERROR(StorePage(*left));
    parent.keys.erase(parent.keys.begin() + static_cast<ptrdiff_t>(idx) -
                      1);
    parent.children.erase(parent.children.begin() +
                          static_cast<ptrdiff_t>(idx));
    DUPLEX_RETURN_IF_ERROR(StorePage(parent));
    DUPLEX_RETURN_IF_ERROR(FreePage(leaf.id));
  }

  // Collapse a root that has become a single-child internal node.
  for (;;) {
    Result<Page> root = LoadPage(meta_.root);
    if (!root.ok()) return root.status();
    if (root->leaf || root->children.size() > 1) break;
    const BlockId old_root = meta_.root;
    meta_.root = root->children[0];
    DUPLEX_RETURN_IF_ERROR(FreePage(old_root));
  }
  return StoreMeta();
}

Status BPlusTree::Scan(
    uint64_t first_key,
    const std::function<bool(uint64_t, const std::string&)>& fn) const {
  Page leaf;
  DUPLEX_RETURN_IF_ERROR(DescendTo(first_key, nullptr, &leaf));
  for (;;) {
    const auto start =
        std::lower_bound(leaf.keys.begin(), leaf.keys.end(), first_key);
    for (size_t i = static_cast<size_t>(start - leaf.keys.begin());
         i < leaf.keys.size(); ++i) {
      if (!fn(leaf.keys[i], leaf.values[i])) return Status::OK();
    }
    if (leaf.next == 0) return Status::OK();
    Result<Page> next = LoadPage(leaf.next);
    if (!next.ok()) return next.status();
    leaf = std::move(*next);
  }
}

uint32_t BPlusTree::height() const {
  uint32_t h = 1;
  Result<Page> page = LoadPage(meta_.root);
  while (page.ok() && !page->leaf) {
    ++h;
    page = LoadPage(page->children[0]);
  }
  return h;
}

Status BPlusTree::CheckInvariants() const {
  uint64_t counted = 0;
  uint64_t prev_key = 0;
  bool have_prev = false;
  // Structural walk with key-range bounds.
  std::function<Status(BlockId, bool, uint64_t, bool, uint64_t)> walk =
      [&](BlockId id, bool has_lo, uint64_t lo, bool has_hi,
          uint64_t hi) -> Status {
    Result<Page> page = LoadPage(id);
    if (!page.ok()) return page.status();
    for (size_t i = 0; i < page->keys.size(); ++i) {
      if (i > 0 && page->keys[i - 1] >= page->keys[i]) {
        return Status::Corruption("keys not strictly ascending in page");
      }
      if (has_lo && page->keys[i] < lo) {
        return Status::Corruption("key below subtree lower bound");
      }
      if (has_hi && page->keys[i] >= hi) {
        return Status::Corruption("key above subtree upper bound");
      }
    }
    if (page->leaf) {
      counted += page->keys.size();
      return Status::OK();
    }
    if (page->children.size() != page->keys.size() + 1) {
      return Status::Corruption("internal fanout mismatch");
    }
    for (size_t i = 0; i < page->children.size(); ++i) {
      const bool child_has_lo = i > 0 || has_lo;
      const uint64_t child_lo = i > 0 ? page->keys[i - 1] : lo;
      const bool child_has_hi = i < page->keys.size() || has_hi;
      const uint64_t child_hi =
          i < page->keys.size() ? page->keys[i] : hi;
      DUPLEX_RETURN_IF_ERROR(walk(page->children[i], child_has_lo,
                                  child_lo, child_has_hi, child_hi));
    }
    return Status::OK();
  };
  DUPLEX_RETURN_IF_ERROR(walk(meta_.root, false, 0, false, 0));
  if (counted != meta_.count) {
    return Status::Corruption("entry count mismatch: tree has " +
                              std::to_string(counted) + ", meta says " +
                              std::to_string(meta_.count));
  }
  // Leaf chain must be globally sorted and cover all entries.
  Page leaf;
  DUPLEX_RETURN_IF_ERROR(DescendTo(0, nullptr, &leaf));
  uint64_t chain_count = 0;
  for (;;) {
    for (const uint64_t k : leaf.keys) {
      if (have_prev && k <= prev_key) {
        return Status::Corruption("leaf chain out of order");
      }
      prev_key = k;
      have_prev = true;
      ++chain_count;
    }
    if (leaf.next == 0) break;
    Result<Page> next = LoadPage(leaf.next);
    if (!next.ok()) return next.status();
    leaf = std::move(*next);
  }
  if (chain_count != meta_.count) {
    return Status::Corruption("leaf chain count mismatch");
  }
  return Status::OK();
}

}  // namespace duplex::storage

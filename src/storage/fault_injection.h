#ifndef DUPLEX_STORAGE_FAULT_INJECTION_H_
#define DUPLEX_STORAGE_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "storage/block_device.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/status.h"

namespace duplex::storage {

// Deterministic fault plan for a stack of FaultInjectingBlockDevice
// decorators. One schedule is shared by every disk of a DiskArray so the
// op counter numbers physical I/O globally, in issue order — exactly the
// sequence a crash-point sweep needs to replay.
//
// Ops are numbered from 1. For every op the schedule decides, in priority
// order: crash (device is frozen forever), exact-index fault, probabilistic
// fault. Probabilistic draws come from a seeded Rng, so two schedules built
// from equal options issue identical fault sequences.
struct FaultScheduleOptions {
  uint64_t seed = 1;

  // Probabilistic faults, evaluated per op.
  double read_error_probability = 0.0;   // transient read error
  double write_error_probability = 0.0;  // transient write error, no data
  double bit_flip_probability = 0.0;     // write lands with one bit flipped

  // Exact 1-based op indices (global across the sharing devices).
  std::set<uint64_t> read_error_ops;
  std::set<uint64_t> write_error_ops;
  std::set<uint64_t> bit_flip_ops;

  // Hard power-cut: op `crash_at_op` and everything after it fail, and no
  // data reaches the underlying device. 0 disables.
  uint64_t crash_at_op = 0;

  // Torn write: op `torn_write_at_op` persists only the first
  // ceil(len * torn_write_fraction) bytes, then reports an error.
  uint64_t torn_write_at_op = 0;
  double torn_write_fraction = 0.5;

  bool enabled() const {
    return read_error_probability > 0 || write_error_probability > 0 ||
           bit_flip_probability > 0 || !read_error_ops.empty() ||
           !write_error_ops.empty() || !bit_flip_ops.empty() ||
           crash_at_op != 0 || torn_write_at_op != 0;
  }
};

class FaultSchedule {
 public:
  enum class Fault {
    kNone,
    kTransientError,  // fail the op, nothing written
    kTornWrite,       // persist a prefix, then fail
    kBitFlip,         // persist with one flipped bit, report success
    kCrash,           // device frozen: fail this and every later op
  };

  struct Decision {
    Fault fault = Fault::kNone;
    uint64_t op = 0;          // 1-based index of this op
    size_t torn_bytes = 0;    // kTornWrite: bytes that reach the device
    uint64_t flip_bit = 0;    // kBitFlip: bit index within the buffer
  };

  explicit FaultSchedule(FaultScheduleOptions options);

  // Claims the next op index and decides its fate. Thread-safe.
  Decision NextOp(bool is_write, size_t len);

  // Re-arms the hard crash at absolute op index `op` (1-based, 0 disables)
  // and un-freezes the device. Used by crash-point sweeps between runs.
  void CrashAtOp(uint64_t op);

  // Freezes the device as of the next op, regardless of schedule.
  void CrashNow();

  // Clears the frozen state and all probabilistic/exact faults so a test
  // can prove data survived an injection episode. Counters are kept.
  void Heal();

  bool crashed() const;
  uint64_t ops_issued() const;
  uint64_t faults_injected() const;
  uint64_t bits_flipped() const;

 private:
  // Requires mu_ held.
  void NoteFault() {
    ++faults_;
    if (m_faults_ != nullptr) m_faults_->Inc();
  }

  mutable std::mutex mu_;
  FaultScheduleOptions options_;
  Rng rng_;
  uint64_t ops_ = 0;
  bool crashed_ = false;
  uint64_t faults_ = 0;
  uint64_t flips_ = 0;
  Counter* m_faults_ = nullptr;
};

// BlockDevice decorator that consults a FaultSchedule before every
// physical op. Stacks below ChecksumBlockDevice/CachingBlockDevice so an
// injected torn write or bit flip is exactly what a real disk would
// deliver: the layers above only find out when they read.
class FaultInjectingBlockDevice : public BlockDevice {
 public:
  FaultInjectingBlockDevice(BlockDevice* base,
                            std::shared_ptr<FaultSchedule> schedule)
      : base_(base), schedule_(std::move(schedule)) {}

  uint64_t capacity_blocks() const override {
    return base_->capacity_blocks();
  }
  uint64_t block_size() const override { return base_->block_size(); }

  Status Write(BlockId start, uint64_t byte_offset, const uint8_t* data,
               size_t len) override;
  Status Read(BlockId start, uint64_t byte_offset, uint8_t* out,
              size_t len) const override;

  FaultSchedule* schedule() const { return schedule_.get(); }

 private:
  BlockDevice* base_;
  std::shared_ptr<FaultSchedule> schedule_;
};

}  // namespace duplex::storage

#endif  // DUPLEX_STORAGE_FAULT_INJECTION_H_

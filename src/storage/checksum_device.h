#ifndef DUPLEX_STORAGE_CHECKSUM_DEVICE_H_
#define DUPLEX_STORAGE_CHECKSUM_DEVICE_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/block_device.h"
#include "util/metrics.h"
#include "util/status.h"

namespace duplex::storage {

// BlockDevice decorator that keeps an FNV-1a-64 checksum per block and
// verifies every read against it, turning silent corruption (a bit flip or
// torn write injected below this layer) into a typed kCorruption Status
// instead of garbage postings.
//
// Checksums record *intent*: they are computed over the bytes the caller
// asked to persist, before the write is handed down. A write that the base
// device loses or mangles therefore fails verification on the next read.
// The conservative corollary: if the base device rejects a write outright,
// the intent checksum is still installed, so the stale-but-intact old
// block now reads as corrupt. That is deliberate — after a failed write
// the block's content is unknown, and "suspect" is the safe answer.
//
// Partial-block writes do read-modify-update on a shadow copy of the
// block, so the checksum always covers the full block image.
class ChecksumBlockDevice : public BlockDevice {
 public:
  explicit ChecksumBlockDevice(BlockDevice* base);

  uint64_t capacity_blocks() const override {
    return base_->capacity_blocks();
  }
  uint64_t block_size() const override { return base_->block_size(); }

  Status Write(BlockId start, uint64_t byte_offset, const uint8_t* data,
               size_t len) override;

  // Fails with kCorruption naming the first bad block if any covered block
  // fails verification. Blocks never written verify against the device's
  // all-zeros read semantics.
  Status Read(BlockId start, uint64_t byte_offset, uint8_t* out,
              size_t len) const override;

  // Drops checksums for [start, start + nblocks): the range was freed and
  // whatever the device returns for it next is no longer our claim.
  void Forget(BlockId start, uint64_t nblocks);

  // Verifies [start, start + nblocks) without going through a caller read
  // path; appends every failing block to *bad. Never returns early, so a
  // scrub sees all damage in one pass.
  Status VerifyBlocks(BlockId start, uint64_t nblocks,
                      std::vector<BlockId>* bad) const;

  uint64_t blocks_tracked() const;
  uint64_t corruptions_detected() const;

 private:
  // Requires mu_ held. Reads the full block from base and checks it.
  Status CheckBlockLocked(BlockId block, std::vector<uint8_t>* scratch) const;

  BlockDevice* base_;
  mutable std::mutex mu_;
  std::unordered_map<BlockId, uint64_t> checksums_;
  mutable uint64_t corruptions_ = 0;
  Counter* m_corruptions_ = nullptr;
};

}  // namespace duplex::storage

#endif  // DUPLEX_STORAGE_CHECKSUM_DEVICE_H_

#ifndef DUPLEX_STORAGE_BTREE_H_
#define DUPLEX_STORAGE_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "storage/block_device.h"
#include "util/status.h"

namespace duplex::storage {

// A paged B+-tree over a BlockDevice: 64-bit keys, fixed-size values,
// one page per block. This is the substrate traditional retrieval systems
// use as the on-disk word dictionary ("they also built a B-tree that maps
// each word to the locations of its list on disk", paper Section 1), and
// the structure Cutting & Pedersen build their dynamic index on.
//
// Layout:
//   page 0            meta page: magic, geometry, root page, entry count,
//                     free-list head, high-water mark
//   other pages       leaf pages (sorted key/value pairs + next-leaf link)
//                     or internal pages (sorted separator keys + children)
//
// Deletion is lazy: pages may underflow; empty pages are recycled through
// an on-device free list, and the root collapses when it has one child.
// Keys are unique (Insert overwrites).
class BPlusTree {
 public:
  // Creates a fresh tree on `device` (overwriting anything there).
  // `value_size` must leave room for at least 4 entries per page.
  static Result<std::unique_ptr<BPlusTree>> Create(BlockDevice* device,
                                                   uint32_t value_size);

  // Opens an existing tree, validating magic and geometry.
  static Result<std::unique_ptr<BPlusTree>> Open(BlockDevice* device);

  // Inserts or overwrites `key`. `value` must have exactly value_size
  // bytes.
  Status Insert(uint64_t key, const std::string& value);

  // Point lookup. NotFound when absent.
  Result<std::string> Get(uint64_t key) const;

  // Removes `key`. NotFound when absent.
  Status Delete(uint64_t key);

  // Visits entries with key >= first_key in ascending key order until the
  // callback returns false or the tree is exhausted.
  Status Scan(uint64_t first_key,
              const std::function<bool(uint64_t, const std::string&)>& fn)
      const;

  uint64_t size() const { return meta_.count; }
  uint32_t value_size() const { return meta_.value_size; }
  uint32_t height() const;

  // Consistency check: key ordering within and across pages, separator
  // invariants, reachability of all leaves via sibling links, and entry
  // count. Intended for tests.
  Status CheckInvariants() const;

 private:
  struct Meta {
    uint64_t magic = 0;
    uint32_t value_size = 0;
    uint32_t block_size = 0;
    uint64_t root = 0;
    uint64_t count = 0;
    uint64_t free_head = 0;   // head of recycled-page list (0 = none)
    uint64_t high_water = 0;  // first never-used page
  };

  // In-memory image of one page.
  struct Page {
    BlockId id = 0;
    bool leaf = true;
    uint64_t next = 0;  // leaf sibling link (0 = none)
    std::vector<uint64_t> keys;
    std::vector<std::string> values;   // leaf: one per key
    std::vector<uint64_t> children;    // internal: keys.size() + 1
  };

  explicit BPlusTree(BlockDevice* device) : device_(device) {}

  size_t LeafCapacity() const;
  size_t InternalCapacity() const;

  Status LoadMeta();
  Status StoreMeta();
  Result<Page> LoadPage(BlockId id) const;
  Status StorePage(const Page& page);
  Result<BlockId> AllocatePage();
  Status FreePage(BlockId id);

  // Descends to the leaf for `key`, recording the path of internal pages
  // and child indices taken.
  struct PathEntry {
    Page page;
    size_t child_index;
  };
  Status DescendTo(uint64_t key, std::vector<PathEntry>* path,
                   Page* leaf) const;

  // Splits `page` (leaf or internal), returning the new right sibling and
  // the separator key to push up.
  Result<std::pair<uint64_t, Page>> SplitPage(Page* page);

  Status InsertIntoParents(std::vector<PathEntry>* path, uint64_t separator,
                           BlockId right_child);

  BlockDevice* device_;
  Meta meta_;
};

}  // namespace duplex::storage

#endif  // DUPLEX_STORAGE_BTREE_H_

#ifndef DUPLEX_STORAGE_IO_TRACE_H_
#define DUPLEX_STORAGE_IO_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "storage/block.h"
#include "util/status.h"

namespace duplex::storage {

enum class IoOp : uint8_t { kRead, kWrite };

// What an I/O event is for; mirrors the line kinds of paper Figure 6
// ("update bucket", the directory line, and "write word ..." lines).
enum class IoTag : uint8_t { kLongList, kBucket, kDirectory };

const char* IoOpName(IoOp op);
const char* IoTagName(IoTag tag);

// One system-call-sized I/O request, as emitted by the compute-disks stage.
struct IoEvent {
  IoOp op = IoOp::kWrite;
  IoTag tag = IoTag::kLongList;
  uint32_t word = 0;      // word id for long-list events, 0 otherwise
  uint64_t postings = 0;  // postings touched (long-list events)
  DiskId disk = 0;
  BlockId block = 0;
  uint64_t nblocks = 0;
  // True when every block of a read was served by the buffer pool — the
  // event is logical (the index asked for the data) but not physical (no
  // disk arm moved). Only reads carry this; writes always reach the trace
  // as physical work (write-back batching shows up in CacheStats instead).
  bool cached = false;

  friend bool operator==(const IoEvent& a, const IoEvent& b) = default;
};

// A trace of I/O events partitioned into batch updates — the paper's trace
// file from the compute-disks process, kept in memory with a text
// round-trip for inspection and tooling.
class IoTrace {
 public:
  void Add(const IoEvent& e) { events_.push_back(e); }
  // Marks the end of the current batch update.
  void EndUpdate() { boundaries_.push_back(events_.size()); }

  size_t event_count() const { return events_.size(); }
  size_t update_count() const { return boundaries_.size(); }
  const std::vector<IoEvent>& events() const { return events_; }

  // Event index range [first, last) of update `u`.
  std::pair<size_t, size_t> UpdateRange(size_t u) const;

  uint64_t CountOps() const { return events_.size(); }
  uint64_t CountOps(IoOp op) const;
  uint64_t CountBlocks(IoOp op) const;
  // Events that actually reach a disk (cached reads excluded).
  uint64_t CountPhysicalOps() const;
  uint64_t CountPhysicalOps(IoOp op) const;
  uint64_t CountCachedOps() const;

  // Text serialization in the spirit of paper Figure 6, e.g.
  //   write long word 120990 postings 3094 disk 0 block 4878 blocks 7
  //   end-update
  void Print(std::ostream& os) const;
  std::string ToText() const;
  static Result<IoTrace> Parse(const std::string& text);

 private:
  std::vector<IoEvent> events_;
  std::vector<size_t> boundaries_;  // cumulative event counts per update
};

}  // namespace duplex::storage

#endif  // DUPLEX_STORAGE_IO_TRACE_H_

#include "storage/file_block_device.h"

#include <fcntl.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace duplex::storage {
namespace {

// Transient-failure policy for pread/pwrite: EINTR and EAGAIN get up to
// kMaxRetries attempts with exponential backoff (1 << attempt times the
// base, so ~25 ms total at 8 tries) instead of either spinning forever or
// failing on the first signal delivery. A write that makes zero progress
// without errno (possible on some special files) is retried on the same
// budget rather than looping indefinitely.
constexpr int kMaxRetries = 8;
constexpr long kBackoffBaseNanos = 100 * 1000;  // 100 us

bool RetryableErrno(int err) { return err == EINTR || err == EAGAIN; }

void BackoffSleep(int attempt) {
  struct timespec ts;
  ts.tv_sec = 0;
  ts.tv_nsec = kBackoffBaseNanos << attempt;
  ::nanosleep(&ts, nullptr);
}

std::string ErrnoMessage(const char* op, const std::string& path,
                         uint64_t offset, int err) {
  return std::string(op) + "(" + path + " @" + std::to_string(offset) +
         ") failed: " + std::strerror(err) + " (errno " +
         std::to_string(err) + ")";
}

}  // namespace

Result<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Open(
    const std::string& path, uint64_t capacity_blocks,
    uint64_t block_size) {
  if (capacity_blocks == 0 || block_size == 0) {
    return Status::InvalidArgument("device geometry must be non-zero");
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("open", path, 0, errno));
  }
  return std::unique_ptr<FileBlockDevice>(
      new FileBlockDevice(path, fd, capacity_blocks, block_size));
}

FileBlockDevice::FileBlockDevice(std::string path, int fd,
                                 uint64_t capacity_blocks,
                                 uint64_t block_size)
    : path_(std::move(path)),
      fd_(fd),
      capacity_blocks_(capacity_blocks),
      block_size_(block_size) {
  m_read_ns_ = GlobalLatency("duplex_storage_device_read_ns",
                             "Per-op block-device read latency",
                             "device=\"file\"");
  m_write_ns_ = GlobalLatency("duplex_storage_device_write_ns",
                              "Per-op block-device write latency",
                              "device=\"file\"");
  m_retries_ = GlobalCounter("duplex_storage_device_retries_total",
                             "Transient I/O errors retried with backoff",
                             "device=\"file\"");
}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileBlockDevice::Write(BlockId start, uint64_t byte_offset,
                              const uint8_t* data, size_t len) {
  const uint64_t abs = start * block_size_ + byte_offset;
  if (abs + len > capacity_blocks_ * block_size_) {
    return Status::OutOfRange("write beyond device end");
  }
  ScopedLatency timer(m_write_ns_);
  size_t written = 0;
  int retries = 0;
  while (written < len) {
    const ssize_t n =
        ::pwrite(fd_, data + written, len - written,
                 static_cast<off_t>(abs + written));
    if (n < 0) {
      if (RetryableErrno(errno) && retries < kMaxRetries) {
        if (m_retries_ != nullptr) m_retries_->Inc();
        BackoffSleep(retries++);
        continue;
      }
      return Status::IoError(
          ErrnoMessage("pwrite", path_, abs + written, errno));
    }
    if (n == 0) {
      // No error, no progress: back off and retry on the same budget so a
      // pathological device cannot spin us forever.
      if (retries >= kMaxRetries) {
        return Status::IoError("pwrite(" + path_ + " @" +
                               std::to_string(abs + written) +
                               ") made no progress after " +
                               std::to_string(kMaxRetries) + " retries");
      }
      if (m_retries_ != nullptr) m_retries_->Inc();
      BackoffSleep(retries++);
      continue;
    }
    written += static_cast<size_t>(n);
    retries = 0;  // progress resets the budget
  }
  return Status::OK();
}

Status FileBlockDevice::Read(BlockId start, uint64_t byte_offset,
                             uint8_t* out, size_t len) const {
  const uint64_t abs = start * block_size_ + byte_offset;
  if (abs + len > capacity_blocks_ * block_size_) {
    return Status::OutOfRange("read beyond device end");
  }
  ScopedLatency timer(m_read_ns_);
  size_t done = 0;
  int retries = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd_, out + done, len - done,
                              static_cast<off_t>(abs + done));
    if (n < 0) {
      if (RetryableErrno(errno) && retries < kMaxRetries) {
        if (m_retries_ != nullptr) m_retries_->Inc();
        BackoffSleep(retries++);
        continue;
      }
      return Status::IoError(ErrnoMessage("pread", path_, abs + done, errno));
    }
    if (n == 0) {
      // Past EOF of a sparse/short file: unwritten bytes read as zero.
      std::memset(out + done, 0, len - done);
      return Status::OK();
    }
    done += static_cast<size_t>(n);
    retries = 0;
  }
  return Status::OK();
}

Status FileBlockDevice::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::IoError(ErrnoMessage("fdatasync", path_, 0, errno));
  }
  return Status::OK();
}

}  // namespace duplex::storage

#include "storage/file_block_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace duplex::storage {

Result<std::unique_ptr<FileBlockDevice>> FileBlockDevice::Open(
    const std::string& path, uint64_t capacity_blocks,
    uint64_t block_size) {
  if (capacity_blocks == 0 || block_size == 0) {
    return Status::InvalidArgument("device geometry must be non-zero");
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::Internal("open(" + path +
                            ") failed: " + std::strerror(errno));
  }
  return std::unique_ptr<FileBlockDevice>(
      new FileBlockDevice(path, fd, capacity_blocks, block_size));
}

FileBlockDevice::FileBlockDevice(std::string path, int fd,
                                 uint64_t capacity_blocks,
                                 uint64_t block_size)
    : path_(std::move(path)),
      fd_(fd),
      capacity_blocks_(capacity_blocks),
      block_size_(block_size) {}

FileBlockDevice::~FileBlockDevice() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileBlockDevice::Write(BlockId start, uint64_t byte_offset,
                              const uint8_t* data, size_t len) {
  const uint64_t abs = start * block_size_ + byte_offset;
  if (abs + len > capacity_blocks_ * block_size_) {
    return Status::OutOfRange("write beyond device end");
  }
  size_t written = 0;
  while (written < len) {
    const ssize_t n =
        ::pwrite(fd_, data + written, len - written,
                 static_cast<off_t>(abs + written));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("pwrite failed: ") +
                              std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FileBlockDevice::Read(BlockId start, uint64_t byte_offset,
                             uint8_t* out, size_t len) const {
  const uint64_t abs = start * block_size_ + byte_offset;
  if (abs + len > capacity_blocks_ * block_size_) {
    return Status::OutOfRange("read beyond device end");
  }
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd_, out + done, len - done,
                              static_cast<off_t>(abs + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("pread failed: ") +
                              std::strerror(errno));
    }
    if (n == 0) {
      // Past EOF of a sparse/short file: unwritten bytes read as zero.
      std::memset(out + done, 0, len - done);
      return Status::OK();
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FileBlockDevice::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::Internal(std::string("fdatasync failed: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace duplex::storage

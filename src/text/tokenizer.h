#ifndef DUPLEX_TEXT_TOKENIZER_H_
#define DUPLEX_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace duplex::text {

// Lexical analysis rules from paper Section 4.2:
//  - a token is a maximal run of letters or a maximal run of digits;
//  - every other character is ignored;
//  - lines whose header prefix matches an ignored header (e.g. "Date:")
//    are skipped entirely;
//  - tokens are lowercased to form words;
//  - duplicate words within one document are dropped (abstracts-style
//    indexing: one posting per (word, document) pair).
struct TokenizerOptions {
  std::vector<std::string> ignored_headers = {"Date:", "Message-ID:",
                                              "Path:", "References:"};
  bool lowercase = true;
  bool dedupe = true;
  size_t min_token_length = 1;
};

class Tokenizer {
 public:
  Tokenizer() : Tokenizer(TokenizerOptions{}) {}
  explicit Tokenizer(TokenizerOptions options);

  // Returns the document's words. With options.dedupe the result is sorted
  // and unique (paper Figure 4b shows tokens in sorted order); otherwise
  // tokens appear in document order.
  std::vector<std::string> Tokenize(std::string_view document) const;

 private:
  bool LineIsIgnored(std::string_view line) const;

  TokenizerOptions options_;
};

}  // namespace duplex::text

#endif  // DUPLEX_TEXT_TOKENIZER_H_

#include "text/tokenizer.h"

#include <algorithm>
#include <cctype>

namespace duplex::text {

Tokenizer::Tokenizer(TokenizerOptions options) : options_(std::move(options)) {}

bool Tokenizer::LineIsIgnored(std::string_view line) const {
  for (const std::string& header : options_.ignored_headers) {
    if (line.size() >= header.size() &&
        line.compare(0, header.size(), header) == 0) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view document) const {
  std::vector<std::string> words;
  size_t line_start = 0;
  while (line_start <= document.size()) {
    size_t line_end = document.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = document.size();
    const std::string_view line =
        document.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    if (LineIsIgnored(line)) continue;

    size_t i = 0;
    while (i < line.size()) {
      const unsigned char c = static_cast<unsigned char>(line[i]);
      const bool alpha = std::isalpha(c) != 0;
      const bool digit = std::isdigit(c) != 0;
      if (!alpha && !digit) {
        ++i;
        continue;
      }
      // A token is a maximal run of the same character class.
      size_t j = i + 1;
      while (j < line.size()) {
        const unsigned char cj = static_cast<unsigned char>(line[j]);
        const bool same_class =
            alpha ? std::isalpha(cj) != 0 : std::isdigit(cj) != 0;
        if (!same_class) break;
        ++j;
      }
      if (j - i >= options_.min_token_length) {
        std::string token(line.substr(i, j - i));
        if (options_.lowercase) {
          std::transform(token.begin(), token.end(), token.begin(),
                         [](unsigned char ch) {
                           return static_cast<char>(std::tolower(ch));
                         });
        }
        words.push_back(std::move(token));
      }
      i = j;
    }
    if (line_end == document.size()) break;
  }

  if (options_.dedupe) {
    std::sort(words.begin(), words.end());
    words.erase(std::unique(words.begin(), words.end()), words.end());
  }
  return words;
}

}  // namespace duplex::text

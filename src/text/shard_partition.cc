#include "text/shard_partition.h"

#include "util/hash.h"
#include "util/logging.h"

namespace duplex::text {

uint32_t ShardForWord(WordId word, uint32_t num_shards) {
  DUPLEX_CHECK(num_shards > 0);
  if (num_shards == 1) return 0;
  // Hash rather than mod directly: dense first-seen word ids would map
  // consecutive vocabulary onto shards round-robin, which is balanced but
  // correlates shard load with batch composition; FNV decorrelates it.
  const uint64_t h = Fnv1a64(&word, sizeof(word));
  return static_cast<uint32_t>(h % num_shards);
}

std::vector<BatchUpdate> PartitionBatch(const BatchUpdate& batch,
                                        uint32_t num_shards) {
  std::vector<BatchUpdate> parts(num_shards);
  for (const WordCount& pair : batch.pairs) {
    parts[ShardForWord(pair.word, num_shards)].pairs.push_back(pair);
  }
  return parts;
}

std::vector<InvertedBatch> PartitionBatch(const InvertedBatch& batch,
                                          uint32_t num_shards) {
  std::vector<InvertedBatch> parts(num_shards);
  for (const InvertedBatch::Entry& entry : batch.entries) {
    parts[ShardForWord(entry.word, num_shards)].entries.push_back(entry);
  }
  return parts;
}

}  // namespace duplex::text

#ifndef DUPLEX_TEXT_SHARD_PARTITION_H_
#define DUPLEX_TEXT_SHARD_PARTITION_H_

#include <cstdint>
#include <vector>

#include "text/batch.h"
#include "util/types.h"

namespace duplex::text {

// Word-space partitioning for the sharded index: every word is owned by
// exactly one shard, chosen by hashing the word id. The mapping depends
// only on (word, num_shards), never on arrival order or thread schedule,
// so shard assignment — and therefore every per-shard I/O trace — is
// reproducible across runs.
uint32_t ShardForWord(WordId word, uint32_t num_shards);

// Splits one batch update into `num_shards` per-shard sub-batches by word
// hash. Sub-batch i contains exactly the pairs with ShardForWord(word) ==
// i, in the original (sorted-by-word) order; empty sub-batches are
// returned for shards owning none of the batch's words so every shard
// still observes every batch boundary.
std::vector<BatchUpdate> PartitionBatch(const BatchUpdate& batch,
                                        uint32_t num_shards);

// The materialized counterpart: splits an inverted batch by word hash.
std::vector<InvertedBatch> PartitionBatch(const InvertedBatch& batch,
                                          uint32_t num_shards);

}  // namespace duplex::text

#endif  // DUPLEX_TEXT_SHARD_PARTITION_H_

#ifndef DUPLEX_TEXT_BATCH_H_
#define DUPLEX_TEXT_BATCH_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "text/tokenizer.h"
#include "text/vocabulary.h"
#include "util/status.h"
#include "util/types.h"

namespace duplex::text {

// One word-occurrence pair of a batch update (paper Table 3 / Figure 5):
// the word and the number of documents of the batch containing it.
struct WordCount {
  WordId word = 0;
  uint32_t count = 0;

  friend bool operator==(const WordCount& a, const WordCount& b) = default;
};

// A batch update: all words appearing in one batch of documents with their
// in-memory inverted-list lengths, sorted by word id. This is the paper's
// representation of the in-memory index for the count-only pipeline.
struct BatchUpdate {
  std::vector<WordCount> pairs;  // sorted by word

  uint64_t TotalPostings() const;
  size_t DistinctWords() const { return pairs.size(); }

  // Renders "word count" lines terminated by "0 0" (paper Figure 5).
  void Print(std::ostream& os) const;
  static Result<BatchUpdate> Parse(const std::string& text);
};

// The materialized counterpart: per word, the sorted doc ids of the batch.
// Used by the real index path (queries need actual postings).
struct InvertedBatch {
  struct Entry {
    WordId word = 0;
    std::vector<DocId> docs;  // ascending
  };
  std::vector<Entry> entries;  // sorted by word

  BatchUpdate ToBatchUpdate() const;
  uint64_t TotalPostings() const;
};

// Builds batches from raw document text: tokenize each document, assign
// word ids through the shared vocabulary, and invert. Documents are
// assigned increasing doc ids from `next_doc_id`.
class BatchInverter {
 public:
  BatchInverter(Tokenizer tokenizer, Vocabulary* vocabulary)
      : tokenizer_(std::move(tokenizer)), vocabulary_(vocabulary) {}

  // `documents` is the text of each document of the batch. Advances
  // *next_doc_id by documents.size().
  InvertedBatch Invert(const std::vector<std::string>& documents,
                       DocId* next_doc_id) const;

 private:
  Tokenizer tokenizer_;
  Vocabulary* vocabulary_;
};

}  // namespace duplex::text

#endif  // DUPLEX_TEXT_BATCH_H_

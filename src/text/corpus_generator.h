#ifndef DUPLEX_TEXT_CORPUS_GENERATOR_H_
#define DUPLEX_TEXT_CORPUS_GENERATOR_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "text/batch.h"
#include "text/vocabulary.h"
#include "util/random.h"
#include "util/types.h"

namespace duplex::text {

// Parameters of the synthetic NetNews stream that substitutes for the
// paper's 66 days of collected News articles (see DESIGN.md). Every result
// in the paper depends only on the word-occurrence statistics of the daily
// batches; this generator reproduces them:
//  - word frequencies follow a Zipf law over a large latent word universe
//    (the paper cites Zipf explicitly for inverted-list lengths);
//  - vocabulary grows over time as new ranks are first sampled (Heaps'
//    law), giving the paper's stabilizing new-word fraction (Figure 7);
//  - documents contain a log-normally distributed number of distinct words
//    (one posting per word per document, abstracts-style);
//  - batches follow a weekly cycle with small Saturday batches, plus one
//    tiny batch modeling the paper's data-collection interruption at
//    update 31.
struct CorpusOptions {
  uint32_t num_updates = 66;
  uint32_t docs_per_update = 2000;
  double weekend_factor = 0.4;      // Saturday batch size multiplier
  uint32_t first_saturday = 2;      // collection started on a Thursday
  int32_t interrupted_update = 30;  // 0-based index; negative disables
  double interrupted_factor = 0.05;

  uint64_t word_universe = 2'000'000;  // latent ranks
  double zipf_s = 1.2;
  double doc_words_mu = std::log(80.0);  // log-normal distinct words/doc
  double doc_words_sigma = 0.6;
  uint32_t min_doc_words = 8;
  uint32_t max_doc_words = 2000;
  uint64_t seed = 42;
};

// A generated document: the set of latent word keys it contains (already
// de-duplicated, as the paper's tokenizer drops duplicate tokens).
using SyntheticDoc = std::vector<uint64_t>;

class CorpusGenerator {
 public:
  explicit CorpusGenerator(const CorpusOptions& options);

  const CorpusOptions& options() const { return options_; }

  // Documents in update `u` after the weekly cycle and interruption.
  uint32_t DocsInUpdate(uint32_t u) const;

  // Generates update u's documents. Deterministic in (seed, u): updates can
  // be generated in any order or re-generated identically.
  std::vector<SyntheticDoc> GenerateUpdate(uint32_t u) const;

  // Collapses documents to the count-only batch update through the shared
  // key vocabulary (pairs sorted by word id).
  static BatchUpdate ToBatchUpdate(const std::vector<SyntheticDoc>& docs,
                                   KeyVocabulary* vocabulary);

  // Materialized form: per word the ascending doc ids, consuming doc ids
  // from *next_doc_id.
  static InvertedBatch ToInvertedBatch(const std::vector<SyntheticDoc>& docs,
                                       KeyVocabulary* vocabulary,
                                       DocId* next_doc_id);

  // Renders a document as text ("w184a3 w99f2 ...") so the tokenizer path
  // can be exercised on generated data.
  static std::string RenderDocumentText(const SyntheticDoc& doc);

  // Estimated raw text bytes of a document (words reappear ~1.8x in real
  // text and average ~7 bytes incl. separator). Used for the Table 1
  // "total raw text" line.
  static uint64_t EstimatedRawBytes(const SyntheticDoc& doc) {
    return 60 + static_cast<uint64_t>(
                    static_cast<double>(doc.size()) * 1.8 * 7.0);
  }

 private:
  CorpusOptions options_;
  ZipfDistribution zipf_;
};

}  // namespace duplex::text

#endif  // DUPLEX_TEXT_CORPUS_GENERATOR_H_

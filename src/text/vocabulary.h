#ifndef DUPLEX_TEXT_VOCABULARY_H_
#define DUPLEX_TEXT_VOCABULARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"
#include "util/types.h"

namespace duplex::text {

// Bidirectional word <-> dense WordId map. Ids are assigned in first-seen
// order; the paper likewise converts all words in batch updates to unique
// integers before the bucket stage (Section 4.2).
class Vocabulary {
 public:
  Vocabulary() = default;

  // Returns the id for `word`, inserting it if new.
  WordId GetOrAdd(std::string_view word);

  // Returns the id for `word` or kInvalidWord if absent.
  WordId Lookup(std::string_view word) const;

  // Reinstates `word` at a specific id — the WAL-replay path, where
  // materialized batch records carry the strings of the ids they
  // reference so string-keyed lookups survive a rebuild from the log.
  // Idempotent for a matching (word, id) pair; Corruption when either
  // side is already bound differently. Ids may arrive out of order;
  // unseen slots below `id` stay empty until their own record restores
  // them.
  Status Restore(std::string_view word, WordId id);

  // Requires id < size().
  const std::string& WordFor(WordId id) const;

  size_t size() const { return words_.size(); }
  bool Contains(std::string_view word) const {
    return Lookup(word) != kInvalidWord;
  }

 private:
  std::unordered_map<std::string, WordId> ids_;
  std::vector<std::string> words_;
};

// 64-bit word keys from the synthetic corpus generator get dense ids here.
// Same contract as Vocabulary but without string storage, so the
// count-only experiment pipeline never pays for string materialization.
class KeyVocabulary {
 public:
  WordId GetOrAdd(uint64_t key);
  WordId Lookup(uint64_t key) const;
  size_t size() const { return next_; }

 private:
  std::unordered_map<uint64_t, WordId> ids_;
  WordId next_ = 0;
};

}  // namespace duplex::text

#endif  // DUPLEX_TEXT_VOCABULARY_H_

#include "text/vocabulary.h"

#include "util/logging.h"

namespace duplex::text {

WordId Vocabulary::GetOrAdd(std::string_view word) {
  auto it = ids_.find(std::string(word));
  if (it != ids_.end()) return it->second;
  const WordId id = static_cast<WordId>(words_.size());
  words_.emplace_back(word);
  ids_.emplace(words_.back(), id);
  return id;
}

WordId Vocabulary::Lookup(std::string_view word) const {
  auto it = ids_.find(std::string(word));
  return it == ids_.end() ? kInvalidWord : it->second;
}

Status Vocabulary::Restore(std::string_view word, WordId id) {
  if (word.empty()) {
    return Status::InvalidArgument("cannot restore an empty word");
  }
  if (id < words_.size() && !words_[id].empty()) {
    if (words_[id] != word) {
      return Status::Corruption(
          "vocabulary restore: id " + std::to_string(id) +
          " is already bound to a different word");
    }
    return Status::OK();
  }
  const WordId existing = Lookup(word);
  if (existing != kInvalidWord && existing != id) {
    return Status::Corruption(
        "vocabulary restore: word is already bound to id " +
        std::to_string(existing));
  }
  if (id >= words_.size()) words_.resize(id + 1);
  words_[id] = std::string(word);
  ids_.emplace(words_[id], id);
  return Status::OK();
}

const std::string& Vocabulary::WordFor(WordId id) const {
  DUPLEX_CHECK_LT(id, words_.size());
  return words_[id];
}

WordId KeyVocabulary::GetOrAdd(uint64_t key) {
  auto [it, inserted] = ids_.emplace(key, next_);
  if (inserted) ++next_;
  return it->second;
}

WordId KeyVocabulary::Lookup(uint64_t key) const {
  auto it = ids_.find(key);
  return it == ids_.end() ? kInvalidWord : it->second;
}

}  // namespace duplex::text

#include "text/batch.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>

#include "util/logging.h"

namespace duplex::text {

uint64_t BatchUpdate::TotalPostings() const {
  uint64_t sum = 0;
  for (const auto& p : pairs) sum += p.count;
  return sum;
}

void BatchUpdate::Print(std::ostream& os) const {
  for (const auto& p : pairs) os << p.word << " " << p.count << "\n";
  os << "0 0\n";  // end-of-batch marker, as in paper Figure 5
}

Result<BatchUpdate> BatchUpdate::Parse(const std::string& text) {
  BatchUpdate update;
  std::istringstream is(text);
  uint64_t word = 0;
  uint64_t count = 0;
  while (is >> word >> count) {
    if (word == 0 && count == 0) return update;
    update.pairs.push_back(
        {static_cast<WordId>(word), static_cast<uint32_t>(count)});
  }
  return Status::Corruption("batch update missing '0 0' terminator");
}

BatchUpdate InvertedBatch::ToBatchUpdate() const {
  BatchUpdate update;
  update.pairs.reserve(entries.size());
  for (const auto& e : entries) {
    update.pairs.push_back({e.word, static_cast<uint32_t>(e.docs.size())});
  }
  return update;
}

uint64_t InvertedBatch::TotalPostings() const {
  uint64_t sum = 0;
  for (const auto& e : entries) sum += e.docs.size();
  return sum;
}

InvertedBatch BatchInverter::Invert(const std::vector<std::string>& documents,
                                    DocId* next_doc_id) const {
  DUPLEX_CHECK(vocabulary_ != nullptr);
  DUPLEX_CHECK(next_doc_id != nullptr);
  std::map<WordId, std::vector<DocId>> lists;
  for (const std::string& doc : documents) {
    const DocId doc_id = (*next_doc_id)++;
    for (const std::string& word : tokenizer_.Tokenize(doc)) {
      lists[vocabulary_->GetOrAdd(word)].push_back(doc_id);
    }
  }
  InvertedBatch batch;
  batch.entries.reserve(lists.size());
  for (auto& [word, docs] : lists) {
    batch.entries.push_back({word, std::move(docs)});
  }
  return batch;
}

}  // namespace duplex::text

#include "text/corpus_generator.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "util/logging.h"

namespace duplex::text {
namespace {

// Bijective 64-bit mix (SplitMix64 finalizer): turns a Zipf rank into a
// latent word key so that word-id order carries no frequency information,
// like alphabetic numbering in the paper.
uint64_t MixRank(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

CorpusGenerator::CorpusGenerator(const CorpusOptions& options)
    : options_(options), zipf_(options.word_universe, options.zipf_s) {
  DUPLEX_CHECK_GT(options.num_updates, 0u);
  DUPLEX_CHECK_GT(options.docs_per_update, 0u);
  DUPLEX_CHECK_GE(options.max_doc_words, options.min_doc_words);
}

uint32_t CorpusGenerator::DocsInUpdate(uint32_t u) const {
  double docs = static_cast<double>(options_.docs_per_update);
  if ((u + 7 - options_.first_saturday % 7) % 7 == 0) {
    docs *= options_.weekend_factor;
  }
  if (static_cast<int32_t>(u) == options_.interrupted_update) {
    docs *= options_.interrupted_factor;
  }
  return std::max<uint32_t>(1, static_cast<uint32_t>(docs));
}

std::vector<SyntheticDoc> CorpusGenerator::GenerateUpdate(uint32_t u) const {
  // Per-update deterministic stream, independent of generation order.
  Rng rng(options_.seed * 0x9e3779b97f4a7c15ULL + 0xda942042e4dd58b5ULL * u);
  const uint32_t n_docs = DocsInUpdate(u);
  std::vector<SyntheticDoc> docs;
  docs.reserve(n_docs);
  std::unordered_set<uint64_t> seen;
  for (uint32_t d = 0; d < n_docs; ++d) {
    const double len_d =
        rng.NextLogNormal(options_.doc_words_mu, options_.doc_words_sigma);
    uint32_t len = static_cast<uint32_t>(len_d);
    len = std::clamp(len, options_.min_doc_words, options_.max_doc_words);
    SyntheticDoc doc;
    doc.reserve(len);
    seen.clear();
    // Sample distinct ranks; duplicates model repeated words within a
    // document and are dropped (the paper's tokenizer dedupes too). Cap
    // attempts so a pathological configuration cannot loop forever.
    uint32_t attempts = 0;
    const uint32_t max_attempts = len * 8 + 64;
    while (doc.size() < len && attempts < max_attempts) {
      ++attempts;
      const uint64_t rank = zipf_.Sample(rng);
      if (seen.insert(rank).second) doc.push_back(MixRank(rank));
    }
    std::sort(doc.begin(), doc.end());
    docs.push_back(std::move(doc));
  }
  return docs;
}

BatchUpdate CorpusGenerator::ToBatchUpdate(
    const std::vector<SyntheticDoc>& docs, KeyVocabulary* vocabulary) {
  DUPLEX_CHECK(vocabulary != nullptr);
  std::map<WordId, uint32_t> counts;
  for (const SyntheticDoc& doc : docs) {
    for (const uint64_t key : doc) ++counts[vocabulary->GetOrAdd(key)];
  }
  BatchUpdate update;
  update.pairs.reserve(counts.size());
  for (const auto& [word, count] : counts) update.pairs.push_back({word, count});
  return update;
}

InvertedBatch CorpusGenerator::ToInvertedBatch(
    const std::vector<SyntheticDoc>& docs, KeyVocabulary* vocabulary,
    DocId* next_doc_id) {
  DUPLEX_CHECK(vocabulary != nullptr);
  DUPLEX_CHECK(next_doc_id != nullptr);
  std::map<WordId, std::vector<DocId>> lists;
  for (const SyntheticDoc& doc : docs) {
    const DocId doc_id = (*next_doc_id)++;
    for (const uint64_t key : doc) {
      lists[vocabulary->GetOrAdd(key)].push_back(doc_id);
    }
  }
  InvertedBatch batch;
  batch.entries.reserve(lists.size());
  for (auto& [word, doc_ids] : lists) {
    batch.entries.push_back({word, std::move(doc_ids)});
  }
  return batch;
}

std::string CorpusGenerator::RenderDocumentText(const SyntheticDoc& doc) {
  // Keys render as all-letter tokens so the tokenizer (which splits letter
  // runs from digit runs) reads each back as exactly one word.
  std::string text;
  text.reserve(doc.size() * 16);
  for (const uint64_t key : doc) {
    uint64_t v = key;
    char buf[16];
    int n = 0;
    do {
      buf[n++] = static_cast<char>('a' + v % 26);
      v /= 26;
    } while (v != 0 && n < 15);
    text.push_back('w');
    while (n > 0) text.push_back(buf[--n]);
    text.push_back(' ');
  }
  if (!text.empty()) text.pop_back();
  return text;
}

}  // namespace duplex::text

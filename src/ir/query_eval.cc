#include "ir/query_eval.h"

#include <algorithm>

#include "ir/query_executor.h"

namespace duplex::ir {

std::vector<DocId> Intersect(const std::vector<DocId>& a,
                             const std::vector<DocId>& b) {
  std::vector<DocId> out;
  out.reserve(std::min(a.size(), b.size()));
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      out.push_back(*ia);
      ++ia;
      ++ib;
    }
  }
  return out;
}

std::vector<DocId> Union(const std::vector<DocId>& a,
                         const std::vector<DocId>& b) {
  std::vector<DocId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<DocId> Difference(const std::vector<DocId>& a,
                              const std::vector<DocId>& b) {
  std::vector<DocId> out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

// The per-index-type overloads survive as forwarding shims so existing
// call sites keep compiling; QueryExecutor is the single implementation.

Result<QueryResult> EvaluateBoolean(const core::InvertedIndex& index,
                                    const BooleanQuery& query) {
  return QueryExecutor(index).EvaluateBoolean(query);
}

Result<QueryResult> EvaluateBoolean(const core::InvertedIndex& index,
                                    std::string_view query_text) {
  return QueryExecutor(index).EvaluateBoolean(query_text);
}

Result<QueryResult> EvaluateBoolean(const core::ShardedIndex& index,
                                    const BooleanQuery& query) {
  return QueryExecutor(index).EvaluateBoolean(query);
}

Result<QueryResult> EvaluateBoolean(const core::ShardedIndex& index,
                                    std::string_view query_text) {
  return QueryExecutor(index).EvaluateBoolean(query_text);
}

}  // namespace duplex::ir

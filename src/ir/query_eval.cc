#include "ir/query_eval.h"

#include <algorithm>

namespace duplex::ir {

std::vector<DocId> Intersect(const std::vector<DocId>& a,
                             const std::vector<DocId>& b) {
  std::vector<DocId> out;
  out.reserve(std::min(a.size(), b.size()));
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      out.push_back(*ia);
      ++ia;
      ++ib;
    }
  }
  return out;
}

std::vector<DocId> Union(const std::vector<DocId>& a,
                         const std::vector<DocId>& b) {
  std::vector<DocId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<DocId> Difference(const std::vector<DocId>& a,
                              const std::vector<DocId>& b) {
  std::vector<DocId> out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

namespace {

// Templated over the index type: anything providing Locate(string_view)
// and GetPostings(string_view) — InvertedIndex evaluates in place,
// ShardedIndex fans each term out to its owning shard.
template <typename Index>
Status EvalNode(const Index& index, const BooleanQuery& node,
                QueryResult* result, std::vector<DocId>* out) {
  switch (node.kind) {
    case BooleanQuery::Kind::kTerm: {
      const core::ListLocation loc = index.Locate(node.term);
      if (!loc.exists) {
        ++result->missing_terms;
        out->clear();
        return Status::OK();
      }
      result->read_ops += loc.chunks;
      result->cached_read_ops += loc.cached_chunks;
      result->postings_read += loc.postings;
      Result<std::vector<DocId>> docs = index.GetPostings(node.term);
      if (!docs.ok()) return docs.status();
      *out = std::move(*docs);
      return Status::OK();
    }
    case BooleanQuery::Kind::kAnd:
    case BooleanQuery::Kind::kOr:
    case BooleanQuery::Kind::kAndNot: {
      std::vector<DocId> left;
      std::vector<DocId> right;
      DUPLEX_RETURN_IF_ERROR(EvalNode(index, *node.left, result, &left));
      DUPLEX_RETURN_IF_ERROR(EvalNode(index, *node.right, result, &right));
      if (node.kind == BooleanQuery::Kind::kAnd) {
        *out = Intersect(left, right);
      } else if (node.kind == BooleanQuery::Kind::kOr) {
        *out = Union(left, right);
      } else {
        *out = Difference(left, right);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

template <typename Index>
Result<QueryResult> EvaluateBooleanImpl(const Index& index,
                                        const BooleanQuery& query) {
  QueryResult result;
  DUPLEX_RETURN_IF_ERROR(EvalNode(index, query, &result, &result.docs));
  return result;
}

template <typename Index>
Result<QueryResult> EvaluateBooleanImpl(const Index& index,
                                        std::string_view query_text) {
  Result<std::unique_ptr<BooleanQuery>> query =
      ParseBooleanQuery(query_text);
  if (!query.ok()) return query.status();
  return EvaluateBooleanImpl(index, **query);
}

}  // namespace

Result<QueryResult> EvaluateBoolean(const core::InvertedIndex& index,
                                    const BooleanQuery& query) {
  return EvaluateBooleanImpl(index, query);
}

Result<QueryResult> EvaluateBoolean(const core::InvertedIndex& index,
                                    std::string_view query_text) {
  return EvaluateBooleanImpl(index, query_text);
}

Result<QueryResult> EvaluateBoolean(const core::ShardedIndex& index,
                                    const BooleanQuery& query) {
  return EvaluateBooleanImpl(index, query);
}

Result<QueryResult> EvaluateBoolean(const core::ShardedIndex& index,
                                    std::string_view query_text) {
  return EvaluateBooleanImpl(index, query_text);
}

}  // namespace duplex::ir

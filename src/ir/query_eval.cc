#include "ir/query_eval.h"

#include <algorithm>

#include "util/metrics.h"
#include "util/tracer.h"

namespace duplex::ir {

std::vector<DocId> Intersect(const std::vector<DocId>& a,
                             const std::vector<DocId>& b) {
  std::vector<DocId> out;
  out.reserve(std::min(a.size(), b.size()));
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      out.push_back(*ia);
      ++ia;
      ++ib;
    }
  }
  return out;
}

std::vector<DocId> Union(const std::vector<DocId>& a,
                         const std::vector<DocId>& b) {
  std::vector<DocId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<DocId> Difference(const std::vector<DocId>& a,
                              const std::vector<DocId>& b) {
  std::vector<DocId> out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

namespace {

// Templated over the index type: anything providing Locate(string_view)
// and GetPostings(string_view) — InvertedIndex evaluates in place,
// ShardedIndex fans each term out to its owning shard.
template <typename Index>
Status EvalNode(const Index& index, const BooleanQuery& node,
                QueryResult* result, std::vector<DocId>* out) {
  switch (node.kind) {
    case BooleanQuery::Kind::kTerm: {
      const core::ListLocation loc = index.Locate(node.term);
      if (!loc.exists) {
        ++result->missing_terms;
        out->clear();
        return Status::OK();
      }
      result->read_ops += loc.chunks;
      result->cached_read_ops += loc.cached_chunks;
      result->postings_read += loc.postings;
      Result<std::vector<DocId>> docs = index.GetPostings(node.term);
      if (!docs.ok()) return docs.status();
      *out = std::move(*docs);
      return Status::OK();
    }
    case BooleanQuery::Kind::kAnd:
    case BooleanQuery::Kind::kOr:
    case BooleanQuery::Kind::kAndNot: {
      std::vector<DocId> left;
      std::vector<DocId> right;
      DUPLEX_RETURN_IF_ERROR(EvalNode(index, *node.left, result, &left));
      DUPLEX_RETURN_IF_ERROR(EvalNode(index, *node.right, result, &right));
      if (node.kind == BooleanQuery::Kind::kAnd) {
        *out = Intersect(left, right);
      } else if (node.kind == BooleanQuery::Kind::kOr) {
        *out = Union(left, right);
      } else {
        *out = Difference(left, right);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

// Query evaluation has no owning object whose lifetime tracks the
// registry, so handles are cached per thread and re-fetched only when the
// installed registry changes. Identity is (pointer, uid): a new registry
// can reuse a dead one's address, and uid() never repeats.
struct QueryMetricHandles {
  const MetricsRegistry* registry = nullptr;
  uint64_t registry_uid = 0;
  LatencyHistogram* query_ns = nullptr;
  Counter* queries = nullptr;
  Counter* read_ops = nullptr;
  Counter* postings = nullptr;
};

QueryMetricHandles& QueryMetrics() {
  static thread_local QueryMetricHandles handles;
  MetricsRegistry* reg = GlobalMetrics();
  if (reg == handles.registry &&
      (reg == nullptr || reg->uid() == handles.registry_uid)) {
    return handles;
  }
  handles.registry = reg;
  if (reg == nullptr) {
    handles.registry_uid = 0;
    handles.query_ns = nullptr;
    handles.queries = nullptr;
    handles.read_ops = nullptr;
    handles.postings = nullptr;
    return handles;
  }
  handles.registry_uid = reg->uid();
  handles.query_ns =
      reg->GetHistogram("duplex_ir_query_ns", "Boolean query latency");
  handles.queries =
      reg->GetCounter("duplex_ir_queries_total", "Boolean queries evaluated");
  handles.read_ops =
      reg->GetCounter("duplex_ir_list_read_ops_total",
                      "Disk read ops needed by query term lists");
  handles.postings = reg->GetCounter("duplex_ir_postings_read_total",
                                     "Postings scanned by queries");
  return handles;
}

// Queries run in single-digit microseconds, so an unsampled span (string
// attrs plus a mutex-guarded ring push) would dominate them. Sample 1 in
// 64 per thread, first query included, so short runs still get a span.
constexpr uint32_t kQuerySpanSampleEvery = 64;

template <typename Index>
Result<QueryResult> EvaluateBooleanImpl(const Index& index,
                                        const BooleanQuery& query) {
  QueryMetricHandles& metrics = QueryMetrics();
  ScopedLatency timer(metrics.query_ns);
  static thread_local uint32_t span_tick = 0;
  Span span;
  if (span_tick++ % kQuerySpanSampleEvery == 0) span = TraceSpan("ir.query");
  QueryResult result;
  DUPLEX_RETURN_IF_ERROR(EvalNode(index, query, &result, &result.docs));
  if (metrics.queries != nullptr) {
    metrics.queries->Inc();
    metrics.read_ops->Inc(result.read_ops);
    metrics.postings->Inc(result.postings_read);
  }
  if (span.active()) {
    span.AddAttr("read_ops", result.read_ops);
    span.AddAttr("postings", result.postings_read);
    span.AddAttr("docs", static_cast<uint64_t>(result.docs.size()));
  }
  return result;
}

template <typename Index>
Result<QueryResult> EvaluateBooleanImpl(const Index& index,
                                        std::string_view query_text) {
  Result<std::unique_ptr<BooleanQuery>> query =
      ParseBooleanQuery(query_text);
  if (!query.ok()) return query.status();
  return EvaluateBooleanImpl(index, **query);
}

}  // namespace

Result<QueryResult> EvaluateBoolean(const core::InvertedIndex& index,
                                    const BooleanQuery& query) {
  return EvaluateBooleanImpl(index, query);
}

Result<QueryResult> EvaluateBoolean(const core::InvertedIndex& index,
                                    std::string_view query_text) {
  return EvaluateBooleanImpl(index, query_text);
}

Result<QueryResult> EvaluateBoolean(const core::ShardedIndex& index,
                                    const BooleanQuery& query) {
  return EvaluateBooleanImpl(index, query);
}

Result<QueryResult> EvaluateBoolean(const core::ShardedIndex& index,
                                    std::string_view query_text) {
  return EvaluateBooleanImpl(index, query_text);
}

}  // namespace duplex::ir

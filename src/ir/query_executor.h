#ifndef DUPLEX_IR_QUERY_EXECUTOR_H_
#define DUPLEX_IR_QUERY_EXECUTOR_H_

#include <string_view>
#include <vector>

#include "core/index_reader.h"
#include "ir/boolean_query.h"
#include "ir/query_eval.h"
#include "ir/vector_query.h"
#include "util/status.h"
#include "util/types.h"

namespace duplex::ir {

// Unified read-cost counters for one query evaluation. Every evaluator
// charges costs through this one type, so boolean and vector queries over
// the same terms report identical read_ops / cached_read_ops /
// postings_read — there is no second accounting path to drift.
struct CostAccumulator {
  uint64_t read_ops = 0;         // chunk/bucket reads to fetch all lists
  uint64_t cached_read_ops = 0;  // of those, buffer-pool resident
  uint64_t postings_read = 0;    // postings scanned
  uint64_t missing_terms = 0;    // terms with no inverted list

  // Charges one term lookup. Returns loc.exists so call sites can branch
  // on presence without re-testing.
  bool Observe(const core::ListLocation& loc) {
    if (!loc.exists) {
      ++missing_terms;
      return false;
    }
    read_ops += loc.chunks;
    cached_read_ops += loc.cached_chunks;
    postings_read += loc.postings;
    return true;
  }
};

// The one place queries are parsed, planned, and evaluated. An executor
// wraps any core::IndexReader — InvertedIndex, ShardedIndex, MemoryIndex,
// or a MergingReader overlay — and every public Evaluate* entry point in
// ir/ is a thin forwarder onto it. The executor borrows the reader (no
// ownership); it is cheap to construct per query or keep around.
//
// Instrumentation: boolean evaluations record the duplex_ir_* metric
// families and emit a sampled "ir.query" trace span exactly as the
// pre-executor evaluators did; vector evaluations stay unmetered apart
// from the per-result cost fields, preserving existing series.
class QueryExecutor {
 public:
  explicit QueryExecutor(const core::IndexReader& reader)
      : reader_(reader) {}

  const core::IndexReader& reader() const { return reader_; }

  // Boolean retrieval. Unknown terms evaluate to the empty list.
  Result<QueryResult> EvaluateBoolean(const BooleanQuery& query) const;
  // Convenience: parse + evaluate.
  Result<QueryResult> EvaluateBoolean(std::string_view query_text) const;

  // Vector-space retrieval: the k highest-scored documents, idf
  // calibrated by `total_docs` (pass reader().next_doc_id()).
  Result<VectorQueryResult> EvaluateVector(const VectorQuery& query,
                                           size_t k,
                                           uint64_t total_docs) const;

 private:
  Status EvalNode(const BooleanQuery& node, CostAccumulator* cost,
                  std::vector<DocId>* out) const;

  const core::IndexReader& reader_;
};

}  // namespace duplex::ir

#endif  // DUPLEX_IR_QUERY_EXECUTOR_H_

#include "ir/query_executor.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>

#include "util/metrics.h"
#include "util/tracer.h"

namespace duplex::ir {
namespace {

// Query evaluation has no owning object whose lifetime tracks the
// registry, so handles are cached per thread and re-fetched only when the
// installed registry changes. Identity is (pointer, uid): a new registry
// can reuse a dead one's address, and uid() never repeats.
struct QueryMetricHandles {
  const MetricsRegistry* registry = nullptr;
  uint64_t registry_uid = 0;
  LatencyHistogram* query_ns = nullptr;
  Counter* queries = nullptr;
  Counter* read_ops = nullptr;
  Counter* postings = nullptr;
};

QueryMetricHandles& QueryMetrics() {
  static thread_local QueryMetricHandles handles;
  MetricsRegistry* reg = GlobalMetrics();
  if (reg == handles.registry &&
      (reg == nullptr || reg->uid() == handles.registry_uid)) {
    return handles;
  }
  handles.registry = reg;
  if (reg == nullptr) {
    handles.registry_uid = 0;
    handles.query_ns = nullptr;
    handles.queries = nullptr;
    handles.read_ops = nullptr;
    handles.postings = nullptr;
    return handles;
  }
  handles.registry_uid = reg->uid();
  handles.query_ns =
      reg->GetHistogram("duplex_ir_query_ns", "Boolean query latency");
  handles.queries =
      reg->GetCounter("duplex_ir_queries_total", "Boolean queries evaluated");
  handles.read_ops =
      reg->GetCounter("duplex_ir_list_read_ops_total",
                      "Disk read ops needed by query term lists");
  handles.postings = reg->GetCounter("duplex_ir_postings_read_total",
                                     "Postings scanned by queries");
  return handles;
}

// Queries run in single-digit microseconds, so an unsampled span (string
// attrs plus a mutex-guarded ring push) would dominate them. Sample 1 in
// 64 per thread, first query included, so short runs still get a span.
constexpr uint32_t kQuerySpanSampleEvery = 64;

}  // namespace

Status QueryExecutor::EvalNode(const BooleanQuery& node,
                               CostAccumulator* cost,
                               std::vector<DocId>* out) const {
  switch (node.kind) {
    case BooleanQuery::Kind::kTerm: {
      if (!cost->Observe(reader_.Locate(node.term))) {
        out->clear();
        return Status::OK();
      }
      Result<std::vector<DocId>> docs = reader_.GetPostings(node.term);
      if (!docs.ok()) return docs.status();
      *out = std::move(*docs);
      return Status::OK();
    }
    case BooleanQuery::Kind::kAnd:
    case BooleanQuery::Kind::kOr:
    case BooleanQuery::Kind::kAndNot: {
      std::vector<DocId> left;
      std::vector<DocId> right;
      DUPLEX_RETURN_IF_ERROR(EvalNode(*node.left, cost, &left));
      DUPLEX_RETURN_IF_ERROR(EvalNode(*node.right, cost, &right));
      if (node.kind == BooleanQuery::Kind::kAnd) {
        *out = Intersect(left, right);
      } else if (node.kind == BooleanQuery::Kind::kOr) {
        *out = Union(left, right);
      } else {
        *out = Difference(left, right);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

Result<QueryResult> QueryExecutor::EvaluateBoolean(
    const BooleanQuery& query) const {
  QueryMetricHandles& metrics = QueryMetrics();
  ScopedLatency timer(metrics.query_ns);
  static thread_local uint32_t span_tick = 0;
  Span span;
  if (span_tick++ % kQuerySpanSampleEvery == 0) span = TraceSpan("ir.query");
  CostAccumulator cost;
  QueryResult result;
  DUPLEX_RETURN_IF_ERROR(EvalNode(query, &cost, &result.docs));
  result.read_ops = cost.read_ops;
  result.cached_read_ops = cost.cached_read_ops;
  result.postings_read = cost.postings_read;
  result.missing_terms = cost.missing_terms;
  if (metrics.queries != nullptr) {
    metrics.queries->Inc();
    metrics.read_ops->Inc(result.read_ops);
    metrics.postings->Inc(result.postings_read);
  }
  if (span.active()) {
    span.AddAttr("read_ops", result.read_ops);
    span.AddAttr("postings", result.postings_read);
    span.AddAttr("docs", static_cast<uint64_t>(result.docs.size()));
  }
  return result;
}

Result<QueryResult> QueryExecutor::EvaluateBoolean(
    std::string_view query_text) const {
  Result<std::unique_ptr<BooleanQuery>> query =
      ParseBooleanQuery(query_text);
  if (!query.ok()) return query.status();
  return EvaluateBoolean(**query);
}

Result<VectorQueryResult> QueryExecutor::EvaluateVector(
    const VectorQuery& query, size_t k, uint64_t total_docs) const {
  VectorQueryResult result;
  CostAccumulator cost;
  std::unordered_map<DocId, double> accumulators;
  for (const VectorQuery::TermWeight& tw : query.terms) {
    if (!cost.Observe(reader_.Locate(tw.term))) continue;
    Result<std::vector<DocId>> docs = reader_.GetPostings(tw.term);
    if (!docs.ok()) return docs.status();
    if (docs->empty()) continue;
    const double idf =
        std::log(1.0 + static_cast<double>(total_docs) /
                           static_cast<double>(docs->size()));
    const double contribution = tw.weight * idf;
    for (const DocId d : *docs) accumulators[d] += contribution;
  }
  result.read_ops = cost.read_ops;
  result.cached_read_ops = cost.cached_read_ops;
  result.postings_read = cost.postings_read;
  result.missing_terms = cost.missing_terms;
  result.top.reserve(accumulators.size());
  for (const auto& [doc, score] : accumulators) {
    result.top.push_back({doc, score});
  }
  std::sort(result.top.begin(), result.top.end(),
            [](const ScoredDoc& a, const ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (result.top.size() > k) result.top.resize(k);
  return result;
}

}  // namespace duplex::ir

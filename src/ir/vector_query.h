#ifndef DUPLEX_IR_VECTOR_QUERY_H_
#define DUPLEX_IR_VECTOR_QUERY_H_

#include <string>
#include <vector>

#include "core/inverted_index.h"
#include "core/sharded_index.h"
#include "util/status.h"
#include "util/types.h"

namespace duplex::ir {

// Vector-space retrieval (the paper's vector IRM, Section 5.2.1: queries
// derived from documents, typically >100 words biased toward frequent
// words). Scoring is tf-idf-lite: each query term contributes its weight x
// idf to every document containing it, accumulated over all terms.
struct VectorQuery {
  struct TermWeight {
    std::string term;
    double weight = 1.0;
  };
  std::vector<TermWeight> terms;
};

struct ScoredDoc {
  DocId doc = 0;
  double score = 0.0;
};

struct VectorQueryResult {
  std::vector<ScoredDoc> top;  // descending score, then ascending doc id
  uint64_t read_ops = 0;
  uint64_t postings_read = 0;
  uint64_t missing_terms = 0;
  // Of read_ops, how many were buffer-pool resident at evaluation time —
  // charged by the same CostAccumulator as boolean queries, so identical
  // term sequences report identical costs across both query kinds.
  uint64_t cached_read_ops = 0;
};

// Evaluates a vector query, returning the k highest-scored documents.
// `total_docs` calibrates idf = log(1 + N/df); pass index.next_doc_id().
Result<VectorQueryResult> EvaluateVector(const core::InvertedIndex& index,
                                         const VectorQuery& query,
                                         size_t k, uint64_t total_docs);

// Sharded fan-out: each term is fetched from its owning shard under that
// shard's shared lock only; scores accumulate identically to the
// unsharded path.
Result<VectorQueryResult> EvaluateVector(const core::ShardedIndex& index,
                                         const VectorQuery& query,
                                         size_t k, uint64_t total_docs);

}  // namespace duplex::ir

#endif  // DUPLEX_IR_VECTOR_QUERY_H_

#ifndef DUPLEX_IR_READ_LATENCY_H_
#define DUPLEX_IR_READ_LATENCY_H_

#include "core/directory.h"
#include "storage/disk_model.h"

namespace duplex::ir {

// Estimated latency to fetch one long list from disk, answering the
// paper's striping question ("If multiple disks are available, can we
// stripe large lists across multiple disks to improve performance?" —
// and its observation that the fill style "automatically divides lists
// into sections of disks which can be ... read in parallel").
struct ListReadEstimate {
  double ms = 0.0;          // parallel latency: max over disks
  double serial_ms = 0.0;   // single-spindle equivalent: sum over chunks
  uint64_t read_ops = 0;    // chunk reads issued
  uint64_t blocks = 0;      // blocks transferred
  uint32_t disks_used = 0;  // distinct disks touched
};

// Cost model: each chunk read pays a seek + half rotation + its transfer;
// chunks on distinct disks proceed in parallel (the paper issues requests
// per disk from independent processes), so latency is the max over disks
// of each disk's serial chunk-read time.
ListReadEstimate EstimateListRead(const core::LongList& list,
                                  const storage::DiskModelParams& disk);

}  // namespace duplex::ir

#endif  // DUPLEX_IR_READ_LATENCY_H_

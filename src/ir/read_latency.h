#ifndef DUPLEX_IR_READ_LATENCY_H_
#define DUPLEX_IR_READ_LATENCY_H_

#include <vector>

#include "core/directory.h"
#include "core/inverted_index.h"
#include "storage/disk_model.h"

namespace duplex::ir {

// Estimated latency to fetch one long list from disk, answering the
// paper's striping question ("If multiple disks are available, can we
// stripe large lists across multiple disks to improve performance?" —
// and its observation that the fill style "automatically divides lists
// into sections of disks which can be ... read in parallel").
struct ListReadEstimate {
  double ms = 0.0;          // parallel latency: max over disks
  double serial_ms = 0.0;   // single-spindle equivalent: sum over chunks
  uint64_t read_ops = 0;    // chunk reads issued
  uint64_t blocks = 0;      // blocks transferred
  uint32_t disks_used = 0;  // distinct disks touched
};

// Cost model: each chunk read pays a seek + half rotation + its transfer;
// chunks on distinct disks proceed in parallel (the paper issues requests
// per disk from independent processes), so latency is the max over disks
// of each disk's serial chunk-read time.
ListReadEstimate EstimateListRead(const core::LongList& list,
                                  const storage::DiskModelParams& disk);

// Index-level conveniences over the LongList primitive.

// Estimate for one word's long list; a zero estimate when the word has
// none (short and buffered lists cost no long-list reads).
ListReadEstimate EstimateListRead(const core::InvertedIndex& index,
                                  WordId word,
                                  const storage::DiskModelParams& disk);

// Estimates for the index's `n` longest lists by posting count — the
// lists vector queries actually fetch. Ordered longest first; ties break
// by ascending word id so the result is deterministic across runs.
std::vector<ListReadEstimate> EstimateLongestListReads(
    const core::InvertedIndex& index, size_t n,
    const storage::DiskModelParams& disk);

}  // namespace duplex::ir

#endif  // DUPLEX_IR_READ_LATENCY_H_

#include "ir/read_latency.h"

#include <algorithm>
#include <map>

namespace duplex::ir {

ListReadEstimate EstimateListRead(const core::LongList& list,
                                  const storage::DiskModelParams& disk) {
  ListReadEstimate estimate;
  std::map<storage::DiskId, double> per_disk_ms;
  const double request_overhead_ms =
      disk.avg_seek_ms + disk.HalfRotationMs();
  for (const core::ChunkRef& chunk : list.chunks) {
    const double ms =
        request_overhead_ms +
        static_cast<double>(chunk.range.length) * disk.BlockTransferMs();
    per_disk_ms[chunk.range.disk] += ms;
    estimate.serial_ms += ms;
    ++estimate.read_ops;
    estimate.blocks += chunk.range.length;
  }
  estimate.disks_used = static_cast<uint32_t>(per_disk_ms.size());
  for (const auto& [disk_id, ms] : per_disk_ms) {
    estimate.ms = std::max(estimate.ms, ms);
  }
  return estimate;
}

}  // namespace duplex::ir

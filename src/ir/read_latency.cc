#include "ir/read_latency.h"

#include <algorithm>
#include <map>

namespace duplex::ir {

ListReadEstimate EstimateListRead(const core::LongList& list,
                                  const storage::DiskModelParams& disk) {
  ListReadEstimate estimate;
  std::map<storage::DiskId, double> per_disk_ms;
  const double request_overhead_ms =
      disk.avg_seek_ms + disk.HalfRotationMs();
  for (const core::ChunkRef& chunk : list.chunks) {
    const double ms =
        request_overhead_ms +
        static_cast<double>(chunk.range.length) * disk.BlockTransferMs();
    per_disk_ms[chunk.range.disk] += ms;
    estimate.serial_ms += ms;
    ++estimate.read_ops;
    estimate.blocks += chunk.range.length;
  }
  estimate.disks_used = static_cast<uint32_t>(per_disk_ms.size());
  for (const auto& [disk_id, ms] : per_disk_ms) {
    estimate.ms = std::max(estimate.ms, ms);
  }
  return estimate;
}

ListReadEstimate EstimateListRead(const core::InvertedIndex& index,
                                  WordId word,
                                  const storage::DiskModelParams& disk) {
  const core::LongList* list =
      index.long_list_store().directory().Find(word);
  if (list == nullptr) return ListReadEstimate{};
  return EstimateListRead(*list, disk);
}

std::vector<ListReadEstimate> EstimateLongestListReads(
    const core::InvertedIndex& index, size_t n,
    const storage::DiskModelParams& disk) {
  std::vector<std::pair<WordId, const core::LongList*>> lists;
  for (const auto& [word, list] :
       index.long_list_store().directory().lists()) {
    lists.emplace_back(word, &list);
  }
  std::sort(lists.begin(), lists.end(),
            [](const auto& a, const auto& b) {
              if (a.second->total_postings != b.second->total_postings) {
                return a.second->total_postings > b.second->total_postings;
              }
              return a.first < b.first;
            });
  if (lists.size() > n) lists.resize(n);
  std::vector<ListReadEstimate> estimates;
  estimates.reserve(lists.size());
  for (const auto& [word, list] : lists) {
    estimates.push_back(EstimateListRead(*list, disk));
  }
  return estimates;
}

}  // namespace duplex::ir

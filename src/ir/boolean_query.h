#ifndef DUPLEX_IR_BOOLEAN_QUERY_H_
#define DUPLEX_IR_BOOLEAN_QUERY_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace duplex::ir {

// Boolean query AST over words, e.g. "(cat AND dog) OR mouse", the query
// form of the paper's boolean information-retrieval model. NOT is
// supported as a binary and-not ("cat AND NOT dog") since a bare NOT has
// no bounded result set.
struct BooleanQuery {
  enum class Kind { kTerm, kAnd, kOr, kAndNot };

  Kind kind = Kind::kTerm;
  std::string term;  // kTerm only
  std::unique_ptr<BooleanQuery> left;
  std::unique_ptr<BooleanQuery> right;

  static std::unique_ptr<BooleanQuery> Term(std::string word);
  static std::unique_ptr<BooleanQuery> And(std::unique_ptr<BooleanQuery> l,
                                           std::unique_ptr<BooleanQuery> r);
  static std::unique_ptr<BooleanQuery> Or(std::unique_ptr<BooleanQuery> l,
                                          std::unique_ptr<BooleanQuery> r);
  static std::unique_ptr<BooleanQuery> AndNot(
      std::unique_ptr<BooleanQuery> l, std::unique_ptr<BooleanQuery> r);

  // All distinct terms in the query, lowercased.
  std::vector<std::string> Terms() const;

  // Canonical text form with full parenthesization.
  std::string ToString() const;
};

// Parses "cat AND (dog OR mouse) AND NOT bird". Keywords AND/OR/NOT are
// case-insensitive; terms are letter/digit runs; precedence NOT > AND > OR;
// AND binds implicitly between adjacent terms ("cat dog" == "cat AND dog").
Result<std::unique_ptr<BooleanQuery>> ParseBooleanQuery(
    std::string_view text);

}  // namespace duplex::ir

#endif  // DUPLEX_IR_BOOLEAN_QUERY_H_

#include "ir/query_workload.h"

#include <algorithm>

#include "util/logging.h"

namespace duplex::ir {

QueryWorkloadGenerator::QueryWorkloadGenerator(
    const core::IndexReader& index, uint64_t seed)
    : index_(index), rng_(seed) {
  // Every word with a list right now, via the reader interface — long,
  // bucket, and buffered words alike, whatever the backend.
  index.ForEachWord([&](WordId word) { words_.push_back(word); });
  std::sort(words_.begin(), words_.end());
  cumulative_postings_.reserve(words_.size());
  uint64_t sum = 0;
  for (const WordId w : words_) {
    sum += index.Locate(w).postings;
    cumulative_postings_.push_back(sum);
  }
  m_cost_ns_ = GlobalLatency("duplex_ir_query_cost_ns",
                             "Query cost-estimate latency (directory and "
                             "bucket lookups per query)");
}

std::vector<WordId> QueryWorkloadGenerator::SampleBooleanTerms(
    size_t num_terms) {
  DUPLEX_CHECK(!words_.empty());
  std::vector<WordId> terms;
  terms.reserve(num_terms);
  for (size_t i = 0; i < num_terms; ++i) {
    terms.push_back(words_[rng_.Uniform(words_.size())]);
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  return terms;
}

std::vector<WordId> QueryWorkloadGenerator::SampleVectorTerms(
    size_t num_terms) {
  DUPLEX_CHECK(!words_.empty());
  const uint64_t total = cumulative_postings_.back();
  DUPLEX_CHECK_GT(total, 0u);
  std::vector<WordId> terms;
  terms.reserve(num_terms);
  for (size_t i = 0; i < num_terms; ++i) {
    const uint64_t target = rng_.Uniform(total) + 1;
    const auto it = std::lower_bound(cumulative_postings_.begin(),
                                     cumulative_postings_.end(), target);
    terms.push_back(
        words_[static_cast<size_t>(it - cumulative_postings_.begin())]);
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  return terms;
}

QueryWorkloadGenerator::Cost QueryWorkloadGenerator::EstimateCost(
    const std::vector<WordId>& words) const {
  const uint64_t start = MonotonicNanos();
  Cost cost;
  for (const WordId w : words) {
    const core::ListLocation loc = index_.Locate(w);
    if (!loc.exists) continue;
    cost.read_ops += loc.chunks;
    cost.postings += loc.postings;
    cost.cached_read_ops += loc.cached_chunks;
    if (loc.is_long) ++cost.long_lists;
  }
  cost.estimate_ns = MonotonicNanos() - start;
  if (m_cost_ns_ != nullptr) m_cost_ns_->Record(cost.estimate_ns);
  return cost;
}

}  // namespace duplex::ir

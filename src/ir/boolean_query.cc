#include "ir/boolean_query.h"

#include <algorithm>
#include <cctype>

namespace duplex::ir {
namespace {

// Recursive-descent parser:
//   or_expr  := and_expr ( OR and_expr )*
//   and_expr := not_expr ( [AND] not_expr )*   -- implicit AND
//   not_expr := primary | primary AND NOT primary (handled in and_expr)
//   primary  := term | '(' or_expr ')'
class Parser {
 public:
  explicit Parser(std::string_view text) { Lex(text); }

  Result<std::unique_ptr<BooleanQuery>> Parse() {
    if (tokens_.empty()) {
      return Status::InvalidArgument("empty query");
    }
    Result<std::unique_ptr<BooleanQuery>> q = ParseOr();
    if (!q.ok()) return q;
    if (pos_ != tokens_.size()) {
      return Status::InvalidArgument("unexpected token '" + tokens_[pos_] +
                                     "'");
    }
    return q;
  }

 private:
  void Lex(std::string_view text) {
    size_t i = 0;
    while (i < text.size()) {
      const unsigned char c = static_cast<unsigned char>(text[i]);
      if (c == '(' || c == ')') {
        tokens_.emplace_back(1, text[i]);
        ++i;
      } else if (std::isalnum(c) != 0) {
        size_t j = i + 1;
        while (j < text.size() &&
               std::isalnum(static_cast<unsigned char>(text[j])) != 0) {
          ++j;
        }
        tokens_.emplace_back(text.substr(i, j - i));
        i = j;
      } else {
        ++i;
      }
    }
  }

  bool AtKeyword(const char* kw) const {
    if (pos_ >= tokens_.size()) return false;
    const std::string& t = tokens_[pos_];
    if (t.size() != std::string_view(kw).size()) return false;
    for (size_t i = 0; i < t.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(t[i])) != kw[i]) {
        return false;
      }
    }
    return true;
  }

  Result<std::unique_ptr<BooleanQuery>> ParseOr() {
    Result<std::unique_ptr<BooleanQuery>> left = ParseAnd();
    if (!left.ok()) return left;
    std::unique_ptr<BooleanQuery> node = std::move(*left);
    while (AtKeyword("OR")) {
      ++pos_;
      Result<std::unique_ptr<BooleanQuery>> right = ParseAnd();
      if (!right.ok()) return right;
      node = BooleanQuery::Or(std::move(node), std::move(*right));
    }
    return node;
  }

  Result<std::unique_ptr<BooleanQuery>> ParseAnd() {
    Result<std::unique_ptr<BooleanQuery>> left = ParsePrimary();
    if (!left.ok()) return left;
    std::unique_ptr<BooleanQuery> node = std::move(*left);
    for (;;) {
      bool negated = false;
      if (AtKeyword("AND")) {
        ++pos_;
        if (AtKeyword("NOT")) {
          ++pos_;
          negated = true;
        }
      } else if (AtKeyword("NOT")) {
        ++pos_;
        negated = true;
      } else if (pos_ < tokens_.size() && tokens_[pos_] != ")" &&
                 !AtKeyword("OR")) {
        // implicit AND between adjacent primaries
      } else {
        break;
      }
      Result<std::unique_ptr<BooleanQuery>> right = ParsePrimary();
      if (!right.ok()) return right;
      node = negated
                 ? BooleanQuery::AndNot(std::move(node), std::move(*right))
                 : BooleanQuery::And(std::move(node), std::move(*right));
    }
    return node;
  }

  Result<std::unique_ptr<BooleanQuery>> ParsePrimary() {
    if (pos_ >= tokens_.size()) {
      return Status::InvalidArgument("query ends unexpectedly");
    }
    if (tokens_[pos_] == "(") {
      ++pos_;
      Result<std::unique_ptr<BooleanQuery>> inner = ParseOr();
      if (!inner.ok()) return inner;
      if (pos_ >= tokens_.size() || tokens_[pos_] != ")") {
        return Status::InvalidArgument("missing ')'");
      }
      ++pos_;
      return inner;
    }
    if (tokens_[pos_] == ")") {
      return Status::InvalidArgument("unexpected ')'");
    }
    if (AtKeyword("AND") || AtKeyword("OR") || AtKeyword("NOT")) {
      return Status::InvalidArgument("operator '" + tokens_[pos_] +
                                     "' needs operands");
    }
    std::string term = tokens_[pos_++];
    std::transform(term.begin(), term.end(), term.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return BooleanQuery::Term(std::move(term));
  }

  std::vector<std::string> tokens_;
  size_t pos_ = 0;
};

void CollectTerms(const BooleanQuery& q, std::vector<std::string>* out) {
  if (q.kind == BooleanQuery::Kind::kTerm) {
    out->push_back(q.term);
    return;
  }
  if (q.left) CollectTerms(*q.left, out);
  if (q.right) CollectTerms(*q.right, out);
}

}  // namespace

std::unique_ptr<BooleanQuery> BooleanQuery::Term(std::string word) {
  auto q = std::make_unique<BooleanQuery>();
  q->kind = Kind::kTerm;
  q->term = std::move(word);
  return q;
}

std::unique_ptr<BooleanQuery> BooleanQuery::And(
    std::unique_ptr<BooleanQuery> l, std::unique_ptr<BooleanQuery> r) {
  auto q = std::make_unique<BooleanQuery>();
  q->kind = Kind::kAnd;
  q->left = std::move(l);
  q->right = std::move(r);
  return q;
}

std::unique_ptr<BooleanQuery> BooleanQuery::Or(
    std::unique_ptr<BooleanQuery> l, std::unique_ptr<BooleanQuery> r) {
  auto q = std::make_unique<BooleanQuery>();
  q->kind = Kind::kOr;
  q->left = std::move(l);
  q->right = std::move(r);
  return q;
}

std::unique_ptr<BooleanQuery> BooleanQuery::AndNot(
    std::unique_ptr<BooleanQuery> l, std::unique_ptr<BooleanQuery> r) {
  auto q = std::make_unique<BooleanQuery>();
  q->kind = Kind::kAndNot;
  q->left = std::move(l);
  q->right = std::move(r);
  return q;
}

std::vector<std::string> BooleanQuery::Terms() const {
  std::vector<std::string> terms;
  CollectTerms(*this, &terms);
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  return terms;
}

std::string BooleanQuery::ToString() const {
  switch (kind) {
    case Kind::kTerm:
      return term;
    case Kind::kAnd:
      return "(" + left->ToString() + " AND " + right->ToString() + ")";
    case Kind::kOr:
      return "(" + left->ToString() + " OR " + right->ToString() + ")";
    case Kind::kAndNot:
      return "(" + left->ToString() + " AND NOT " + right->ToString() + ")";
  }
  return "";
}

Result<std::unique_ptr<BooleanQuery>> ParseBooleanQuery(
    std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace duplex::ir

#ifndef DUPLEX_IR_QUERY_EVAL_H_
#define DUPLEX_IR_QUERY_EVAL_H_

#include <vector>

#include "core/inverted_index.h"
#include "core/sharded_index.h"
#include "ir/boolean_query.h"
#include "util/status.h"
#include "util/types.h"

namespace duplex::ir {

// Sorted-list set operations — the merge primitives the paper relies on
// ("implementations of IR systems indexes merge inverted lists to compute
// the answer to a boolean query", Section 3). Inputs must be ascending.
std::vector<DocId> Intersect(const std::vector<DocId>& a,
                             const std::vector<DocId>& b);
std::vector<DocId> Union(const std::vector<DocId>& a,
                         const std::vector<DocId>& b);
std::vector<DocId> Difference(const std::vector<DocId>& a,
                              const std::vector<DocId>& b);

// Result of evaluating a query, with the disk cost it would incur.
struct QueryResult {
  std::vector<DocId> docs;
  uint64_t read_ops = 0;       // chunk/bucket reads to fetch all lists
  uint64_t postings_read = 0;  // postings scanned
  uint64_t missing_terms = 0;  // terms with no inverted list
  // Of read_ops, how many were buffer-pool resident at evaluation time
  // (logical reads that cost no disk arm movement). 0 without a cache.
  uint64_t cached_read_ops = 0;
};

// Evaluates a boolean query against a materialized index. Unknown terms
// evaluate to the empty list. These overloads forward to ir::QueryExecutor
// (see ir/query_executor.h), the single evaluator implementation; prefer
// constructing an executor directly for new code.
Result<QueryResult> EvaluateBoolean(const core::InvertedIndex& index,
                                    const BooleanQuery& query);

// Convenience: parse + evaluate.
Result<QueryResult> EvaluateBoolean(const core::InvertedIndex& index,
                                    std::string_view query_text);

// Sharded fan-out: each term's Locate/GetPostings goes to the owning
// shard (taking only that shard's shared lock), and the per-term lists
// merge exactly as in the unsharded evaluator — results are bit-identical
// to evaluating against an equivalent unsharded index.
Result<QueryResult> EvaluateBoolean(const core::ShardedIndex& index,
                                    const BooleanQuery& query);
Result<QueryResult> EvaluateBoolean(const core::ShardedIndex& index,
                                    std::string_view query_text);

}  // namespace duplex::ir

#endif  // DUPLEX_IR_QUERY_EVAL_H_

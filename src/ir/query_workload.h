#ifndef DUPLEX_IR_QUERY_WORKLOAD_H_
#define DUPLEX_IR_QUERY_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "core/index_reader.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/types.h"

namespace duplex::ir {

// Samples query term sets matching the paper's two workload models
// (Section 5.2.1):
//  - boolean queries contain few words (< 10) biased toward infrequent
//    words ("frequently appearing words do not discriminate strongly
//    between documents") — modeled as uniform sampling over the
//    vocabulary, which is dominated by rare words;
//  - vector queries are derived from documents, contain many words
//    (> 100), and follow the frequency of words in documents — modeled as
//    sampling proportional to posting counts.
class QueryWorkloadGenerator {
 public:
  // Snapshots the reader's current word -> posting-count distribution.
  // Works over any core::IndexReader — InvertedIndex, ShardedIndex, a
  // MergingReader overlay — via ForEachWord + Locate; the word walk is
  // sorted, so the sampled sequences are deterministic for a given seed
  // regardless of the backend's internal iteration order.
  QueryWorkloadGenerator(const core::IndexReader& index, uint64_t seed);

  // Words with any inverted list right now.
  size_t vocabulary_size() const { return words_.size(); }

  std::vector<WordId> SampleBooleanTerms(size_t num_terms);
  std::vector<WordId> SampleVectorTerms(size_t num_terms);

  // Disk cost of fetching the given words' lists under the current layout.
  struct Cost {
    uint64_t read_ops = 0;
    uint64_t postings = 0;
    uint64_t long_lists = 0;
    // Of read_ops, how many are buffer-pool resident right now (no arm
    // movement). 0 without a cache; bucket reads never count (the bucket
    // region bypasses the pool).
    uint64_t cached_read_ops = 0;
    // Wall-clock of this estimate (the directory/bucket lookups a real
    // query would do). Also recorded into the installed metrics registry
    // as duplex_ir_query_cost_ns, so workload benches can report
    // p50/p95/p99 alongside mean cost.
    uint64_t estimate_ns = 0;
  };
  Cost EstimateCost(const std::vector<WordId>& words) const;

 private:
  const core::IndexReader& index_;
  Rng rng_;
  std::vector<WordId> words_;
  std::vector<uint64_t> cumulative_postings_;  // prefix sums over words_
  LatencyHistogram* m_cost_ns_ = nullptr;  // fetched at construction
};

}  // namespace duplex::ir

#endif  // DUPLEX_IR_QUERY_WORKLOAD_H_

#include "ir/vector_query.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace duplex::ir {
namespace {

// Templated over the index type (see query_eval.cc): InvertedIndex reads
// in place, ShardedIndex fetches each term from its owning shard.
template <typename Index>
Result<VectorQueryResult> EvaluateVectorImpl(const Index& index,
                                             const VectorQuery& query,
                                             size_t k, uint64_t total_docs) {
  VectorQueryResult result;
  std::unordered_map<DocId, double> accumulators;
  for (const VectorQuery::TermWeight& tw : query.terms) {
    const core::ListLocation loc = index.Locate(tw.term);
    if (!loc.exists) {
      ++result.missing_terms;
      continue;
    }
    result.read_ops += loc.chunks;
    result.postings_read += loc.postings;
    Result<std::vector<DocId>> docs = index.GetPostings(tw.term);
    if (!docs.ok()) return docs.status();
    if (docs->empty()) continue;
    const double idf =
        std::log(1.0 + static_cast<double>(total_docs) /
                           static_cast<double>(docs->size()));
    const double contribution = tw.weight * idf;
    for (const DocId d : *docs) accumulators[d] += contribution;
  }
  result.top.reserve(accumulators.size());
  for (const auto& [doc, score] : accumulators) {
    result.top.push_back({doc, score});
  }
  std::sort(result.top.begin(), result.top.end(),
            [](const ScoredDoc& a, const ScoredDoc& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.doc < b.doc;
            });
  if (result.top.size() > k) result.top.resize(k);
  return result;
}

}  // namespace

Result<VectorQueryResult> EvaluateVector(const core::InvertedIndex& index,
                                         const VectorQuery& query, size_t k,
                                         uint64_t total_docs) {
  return EvaluateVectorImpl(index, query, k, total_docs);
}

Result<VectorQueryResult> EvaluateVector(const core::ShardedIndex& index,
                                         const VectorQuery& query, size_t k,
                                         uint64_t total_docs) {
  return EvaluateVectorImpl(index, query, k, total_docs);
}

}  // namespace duplex::ir

#include "ir/vector_query.h"

#include "ir/query_executor.h"

namespace duplex::ir {

// Forwarding shims; QueryExecutor::EvaluateVector is the implementation.

Result<VectorQueryResult> EvaluateVector(const core::InvertedIndex& index,
                                         const VectorQuery& query, size_t k,
                                         uint64_t total_docs) {
  return QueryExecutor(index).EvaluateVector(query, k, total_docs);
}

Result<VectorQueryResult> EvaluateVector(const core::ShardedIndex& index,
                                         const VectorQuery& query, size_t k,
                                         uint64_t total_docs) {
  return QueryExecutor(index).EvaluateVector(query, k, total_docs);
}

}  // namespace duplex::ir

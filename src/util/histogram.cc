#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace duplex {

void Histogram::Add(double value) {
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
  sum_sq_ += value * value;
  Retain(value);
}

void Histogram::Retain(double value) {
  if (sample_cap_ == 0 || values_.size() < sample_cap_) {
    values_.push_back(value);
    return;
  }
  // Reservoir sampling (Algorithm R): keep each of the count_ stream
  // values with equal probability cap/count_.
  uint64_t slot = reservoir_rng_.Uniform(count_);
  if (slot < sample_cap_) {
    values_[slot] = value;
    // The replacement may land inside the sorted prefix.
    if (slot < sorted_prefix_) sorted_prefix_ = 0;
  }
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  if (sample_cap_ == 0) {
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  } else {
    for (double v : other.values_) {
      if (values_.size() < sample_cap_) {
        values_.push_back(v);
      } else {
        uint64_t slot = reservoir_rng_.Uniform(values_.size() * 2);
        if (slot < sample_cap_) {
          values_[slot] = v;
          if (slot < sorted_prefix_) sorted_prefix_ = 0;
        }
      }
    }
  }
}

void Histogram::Clear() {
  values_.clear();
  sorted_prefix_ = 0;
  count_ = 0;
  sum_ = 0.0;
  sum_sq_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

void Histogram::Reserve(size_t n) {
  values_.reserve(sample_cap_ == 0 ? n : std::min(n, sample_cap_));
}

void Histogram::set_sample_cap(size_t cap) {
  sample_cap_ = cap;
  if (cap != 0 && values_.size() > cap) {
    // Downsample the existing retention uniformly to the new cap.
    for (size_t i = cap; i < values_.size(); ++i) {
      uint64_t slot = reservoir_rng_.Uniform(i + 1);
      if (slot < cap) values_[slot] = values_[i];
    }
    values_.resize(cap);
    sorted_prefix_ = 0;
  }
}

void Histogram::EnsureSorted() const {
  if (sorted_prefix_ == values_.size()) return;
  // Sort only the unsorted tail, then merge it into the sorted prefix:
  // O(k log k + n) for a k-element tail instead of O(n log n).
  auto mid = values_.begin() + static_cast<ptrdiff_t>(sorted_prefix_);
  std::sort(mid, values_.end());
  std::inplace_merge(values_.begin(), mid, values_.end());
  sorted_prefix_ = values_.size();
}

double Histogram::min() const { return count_ == 0 ? 0.0 : min_; }

double Histogram::max() const { return count_ == 0 ? 0.0 : max_; }

double Histogram::Mean() const {
  if (count_ == 0) return 0.0;
  return sum_ / static_cast<double>(count_);
}

double Histogram::StdDev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double mean = sum_ / n;
  const double var = std::max(0.0, sum_sq_ / n - mean * mean);
  return std::sqrt(var);
}

double Histogram::Percentile(double p) const {
  if (values_.empty()) return 0.0;
  EnsureSorted();
  if (p <= 0.0) return values_.front();
  if (p >= 100.0) return values_.back();
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) return values_.back();
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count() << " mean=" << Mean() << " p50=" << Median()
     << " p99=" << Percentile(99.0) << " max=" << max();
  return os.str();
}

}  // namespace duplex

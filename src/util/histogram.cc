#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace duplex {

void Histogram::Add(double value) {
  values_.push_back(value);
  sorted_ = false;
  sum_ += value;
  sum_sq_ += value * value;
}

void Histogram::Merge(const Histogram& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  sorted_ = false;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

void Histogram::Clear() {
  values_.clear();
  sorted_ = true;
  sum_ = 0.0;
  sum_sq_ = 0.0;
}

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Histogram::min() const {
  if (values_.empty()) return 0.0;
  EnsureSorted();
  return values_.front();
}

double Histogram::max() const {
  if (values_.empty()) return 0.0;
  EnsureSorted();
  return values_.back();
}

double Histogram::Mean() const {
  if (values_.empty()) return 0.0;
  return sum_ / static_cast<double>(values_.size());
}

double Histogram::StdDev() const {
  if (values_.size() < 2) return 0.0;
  const double n = static_cast<double>(values_.size());
  const double mean = sum_ / n;
  const double var = std::max(0.0, sum_sq_ / n - mean * mean);
  return std::sqrt(var);
}

double Histogram::Percentile(double p) const {
  if (values_.empty()) return 0.0;
  EnsureSorted();
  if (p <= 0.0) return values_.front();
  if (p >= 100.0) return values_.back();
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) return values_.back();
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count() << " mean=" << Mean() << " p50=" << Median()
     << " p99=" << Percentile(99.0) << " max=" << max();
  return os.str();
}

}  // namespace duplex

#include "util/metrics.h"

#include <atomic>
#include <bit>
#include <chrono>
#include <sstream>
#include <thread>

namespace duplex {
namespace {

std::atomic<MetricsRegistry*> g_metrics{nullptr};

uint64_t SteadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Compact double formatting for exports: integers print without a
// trailing ".0" (Prometheus accepts both; this keeps output stable).
std::string FormatDouble(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      v >= -9.0e15 && v <= 9.0e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  std::ostringstream os;
  os << v;
  return os.str();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Exposition-format sanitizer for a raw label body. Call sites SHOULD
// build bodies with LabelPair (which escapes values up front); this pass
// is the exporter's backstop for bodies assembled by hand: inside quoted
// values it escapes raw newlines and stray backslashes while leaving the
// valid escapes (\\, \", \n) untouched, so running it over an
// already-escaped body is the identity. An unescaped interior quote is
// not recoverable here (it reads as the value terminator) — that is
// exactly what LabelPair exists to prevent.
std::string SanitizeLabelBody(std::string_view body) {
  std::string out;
  out.reserve(body.size());
  bool in_quote = false;
  for (size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (!in_quote) {
      if (c == '"') in_quote = true;
      out += c;
      continue;
    }
    switch (c) {
      case '\\':
        if (i + 1 < body.size() && (body[i + 1] == '\\' ||
                                    body[i + 1] == '"' ||
                                    body[i + 1] == 'n')) {
          out += c;
          out += body[++i];  // keep the valid escape pair
        } else {
          out += "\\\\";
        }
        break;
      case '\n':
        out += "\\n";
        break;
      case '"':
        in_quote = false;
        out += c;
        break;
      default:
        out += c;
    }
  }
  return out;
}

// "name" or "name{labels}".
std::string ExpositionName(std::string_view name, std::string_view labels) {
  std::string key(name);
  if (!labels.empty()) {
    key += '{';
    key += labels;
    key += '}';
  }
  return key;
}

// Shared percentile interpolation over a bucket array. Finds the bucket
// containing the requested rank and interpolates linearly inside it,
// clamped to the observed [min, max].
double PercentileFromBuckets(
    const std::array<uint64_t, LatencyHistogram::kBuckets>& buckets,
    uint64_t count, uint64_t min_v, uint64_t max_v, double p) {
  if (count == 0) return 0.0;
  if (p <= 0.0) return static_cast<double>(min_v);
  if (p >= 100.0) return static_cast<double>(max_v);
  // 1-based rank of the requested percentile among `count` samples.
  double rank = p / 100.0 * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
    uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      double lo = static_cast<double>(LatencyHistogram::BucketLowerBound(b));
      double hi = static_cast<double>(LatencyHistogram::BucketUpperBound(b));
      double frac =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      double est = lo + frac * (hi - lo);
      if (est < static_cast<double>(min_v)) est = static_cast<double>(min_v);
      if (est > static_cast<double>(max_v)) est = static_cast<double>(max_v);
      return est;
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max_v);
}

}  // namespace

uint64_t MonotonicNanos() {
  static const uint64_t start = SteadyNowNanos();
  return SteadyNowNanos() - start;
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string LabelPair(std::string_view key, std::string_view value) {
  std::string out(key);
  out += "=\"";
  out += EscapeLabelValue(value);
  out += '"';
  return out;
}

size_t Counter::CellIndex() {
  // Thread-stable cell choice; hashing the thread id spreads contending
  // threads across cells without any registration step.
  static thread_local const size_t cell =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kCells;
  return cell;
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

size_t LatencyHistogram::BucketIndex(uint64_t value) {
  return static_cast<size_t>(std::bit_width(value));
}

uint64_t LatencyHistogram::BucketUpperBound(size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= 64) return ~0ull;
  return (1ull << bucket) - 1;
}

uint64_t LatencyHistogram::BucketLowerBound(size_t bucket) {
  if (bucket == 0) return 0;
  return 1ull << (bucket - 1);
}

void LatencyHistogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t b = 0; b < kBuckets; ++b) {
    uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
    if (n != 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  if (other.count() > 0) {
    uint64_t omin = other.min_.load(std::memory_order_relaxed);
    uint64_t cur = min_.load(std::memory_order_relaxed);
    while (omin < cur && !min_.compare_exchange_weak(cur, omin,
                                                     std::memory_order_relaxed)) {
    }
    uint64_t omax = other.max_.load(std::memory_order_relaxed);
    cur = max_.load(std::memory_order_relaxed);
    while (omax > cur && !max_.compare_exchange_weak(cur, omax,
                                                     std::memory_order_relaxed)) {
    }
  }
}

uint64_t LatencyHistogram::min() const {
  if (count() == 0) return 0;
  return min_.load(std::memory_order_relaxed);
}

uint64_t LatencyHistogram::max() const {
  if (count() == 0) return 0;
  return max_.load(std::memory_order_relaxed);
}

double LatencyHistogram::Percentile(double p) const {
  std::array<uint64_t, kBuckets> snap;
  uint64_t n = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    snap[b] = buckets_[b].load(std::memory_order_relaxed);
    n += snap[b];
  }
  return PercentileFromBuckets(snap, n, min(), max(), p);
}

double MetricsSnapshot::HistogramView::Percentile(double p) const {
  return PercentileFromBuckets(buckets, count, min, max, p);
}

MetricsRegistry::MetricsRegistry() : uid_([] {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}()) {}

MetricsRegistry::Entry* MetricsRegistry::GetEntry(Kind kind,
                                                  std::string_view name,
                                                  std::string_view help,
                                                  std::string_view labels) {
  std::string key = ExpositionName(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.kind != kind) return nullptr;
    return &it->second;
  }
  Entry& e = entries_[key];
  e.kind = kind;
  e.name = std::string(name);
  e.labels = std::string(labels);
  e.help = std::string(help);
  switch (kind) {
    case Kind::kCounter:
      e.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      e.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      e.histogram = std::make_unique<LatencyHistogram>();
      break;
  }
  return &e;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help,
                                     std::string_view labels) {
  Entry* e = GetEntry(Kind::kCounter, name, help, labels);
  return e == nullptr ? nullptr : e->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 std::string_view labels) {
  Entry* e = GetEntry(Kind::kGauge, name, help, labels);
  return e == nullptr ? nullptr : e->gauge.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(std::string_view name,
                                                std::string_view help,
                                                std::string_view labels) {
  Entry* e = GetEntry(Kind::kHistogram, name, help, labels);
  return e == nullptr ? nullptr : e->histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        snap.counters[key] = e.counter->Value();
        break;
      case Kind::kGauge:
        snap.gauges[key] = e.gauge->Value();
        break;
      case Kind::kHistogram: {
        MetricsSnapshot::HistogramView v;
        v.count = e.histogram->count();
        v.sum = e.histogram->sum();
        v.min = e.histogram->min();
        v.max = e.histogram->max();
        for (size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
          v.buckets[b] = e.histogram->bucket_count(b);
        }
        snap.histograms[key] = v;
        break;
      }
    }
  }
  return snap;
}

size_t MetricsRegistry::metric_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string MetricsRegistry::ExportPrometheus() const {
  std::ostringstream os;
  std::lock_guard<std::mutex> lock(mu_);
  // entries_ is ordered by exposition name, so labeled series of one
  // family are adjacent; emit HELP/TYPE once per family.
  std::string last_family;
  for (const auto& [key, e] : entries_) {
    if (e.name != last_family) {
      last_family = e.name;
      if (!e.help.empty()) os << "# HELP " << e.name << " " << e.help << "\n";
      const char* type = e.kind == Kind::kCounter  ? "counter"
                         : e.kind == Kind::kGauge ? "gauge"
                                                  : "histogram";
      os << "# TYPE " << e.name << " " << type << "\n";
    }
    // Emit from name + sanitized label body, never the raw map key: a
    // label value smuggling a newline or stray backslash must not be
    // able to corrupt the exposition stream.
    const std::string labels = SanitizeLabelBody(e.labels);
    const std::string series =
        labels.empty() ? e.name : e.name + "{" + labels + "}";
    switch (e.kind) {
      case Kind::kCounter:
        os << series << " " << e.counter->Value() << "\n";
        break;
      case Kind::kGauge:
        os << series << " " << FormatDouble(e.gauge->Value()) << "\n";
        break;
      case Kind::kHistogram: {
        // Cumulative buckets; only boundaries up to the populated range
        // plus one (and +Inf) are emitted to keep the output readable.
        uint64_t cumulative = 0;
        size_t highest = 0;
        for (size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
          if (e.histogram->bucket_count(b) > 0) highest = b;
        }
        std::string label_prefix =
            labels.empty() ? "" : labels + ",";
        for (size_t b = 0; b <= highest && b < 64; ++b) {
          cumulative += e.histogram->bucket_count(b);
          os << e.name << "_bucket{" << label_prefix << "le=\""
             << LatencyHistogram::BucketUpperBound(b) << "\"} " << cumulative
             << "\n";
        }
        os << e.name << "_bucket{" << label_prefix << "le=\"+Inf\"} "
           << e.histogram->count() << "\n";
        os << e.name << "_sum" << (labels.empty() ? "" : "{" + labels + "}")
           << " " << e.histogram->sum() << "\n";
        os << e.name << "_count"
           << (labels.empty() ? "" : "{" + labels + "}") << " "
           << e.histogram->count() << "\n";
        break;
      }
    }
  }
  return os.str();
}

std::string MetricsRegistry::ExportJson() const {
  MetricsSnapshot snap = Snapshot();
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [key, v] : snap.counters) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(key) << "\": " << v;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [key, v] : snap.gauges) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(key)
       << "\": " << FormatDouble(v);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [key, v] : snap.histograms) {
    os << (first ? "\n" : ",\n") << "    \"" << JsonEscape(key) << "\": {"
       << "\"count\": " << v.count << ", \"sum\": " << v.sum
       << ", \"min\": " << v.min << ", \"max\": " << v.max
       << ", \"p50\": " << FormatDouble(v.Percentile(50))
       << ", \"p95\": " << FormatDouble(v.Percentile(95))
       << ", \"p99\": " << FormatDouble(v.Percentile(99)) << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

MetricsRegistry* GlobalMetrics() {
  return g_metrics.load(std::memory_order_acquire);
}

MetricsRegistry* SetGlobalMetrics(MetricsRegistry* registry) {
  return g_metrics.exchange(registry, std::memory_order_acq_rel);
}

Counter* GlobalCounter(std::string_view name, std::string_view help,
                       std::string_view labels) {
  MetricsRegistry* r = GlobalMetrics();
  return r == nullptr ? nullptr : r->GetCounter(name, help, labels);
}

Gauge* GlobalGauge(std::string_view name, std::string_view help,
                   std::string_view labels) {
  MetricsRegistry* r = GlobalMetrics();
  return r == nullptr ? nullptr : r->GetGauge(name, help, labels);
}

LatencyHistogram* GlobalLatency(std::string_view name, std::string_view help,
                                std::string_view labels) {
  MetricsRegistry* r = GlobalMetrics();
  return r == nullptr ? nullptr : r->GetHistogram(name, help, labels);
}

}  // namespace duplex

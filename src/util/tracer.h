#ifndef DUPLEX_UTIL_TRACER_H_
#define DUPLEX_UTIL_TRACER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace duplex {

// One completed span. Timestamps come from MonotonicNanos(), so they
// share a zero point with every latency histogram in the process.
struct TraceEvent {
  std::string name;
  uint64_t id = 0;         // unique per tracer
  uint64_t parent_id = 0;  // 0 = root
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;  // small sequential per-thread id, not the OS tid
  std::vector<std::pair<std::string, std::string>> attrs;
};

class Tracer;

// Move-only RAII span. Completed (and recorded) on End() or destruction.
// A default-constructed / moved-from span is inert. Spans started on the
// same thread nest: the innermost live span is the parent of the next.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  void AddAttr(std::string key, std::string value);
  void AddAttr(std::string key, uint64_t value);
  // Ends the span now and pushes it into the tracer's ring. Idempotent.
  void End();

  bool active() const { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::string name);

  Tracer* tracer_ = nullptr;
  TraceEvent event_;
};

// Bounded ring of completed spans. StartSpan/record are cheap (the ring
// is guarded by one mutex held only to push a finished event; span
// nesting state is thread-local and touch-free). When the ring is full
// the oldest events are overwritten, so a long run keeps the most recent
// window — size it to the workload with `capacity`.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 65536);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Starts a span parented to the innermost live span on this thread.
  Span StartSpan(std::string name);

  // Records a span whose interval was measured externally — e.g. a queue
  // wait timed between the admitting and executing threads, where no
  // RAII scope exists. The event gets a fresh id and the calling thread's
  // tid; it is always a root (parent 0) — correlate via attrs such as the
  // request id.
  void RecordCompleted(
      std::string name, uint64_t start_ns, uint64_t dur_ns,
      std::vector<std::pair<std::string, std::string>> attrs = {});

  // Completed events, oldest first.
  std::vector<TraceEvent> Events() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t dropped() const;  // events overwritten because the ring filled

  // Chrome trace_event JSON (the "traceEvents" array form) — loads
  // directly in chrome://tracing and Perfetto. Durations use complete
  // events (ph "X"); timestamps are microseconds with fractional ns.
  std::string ExportChromeTrace() const;

 private:
  friend class Span;
  void Record(TraceEvent event);
  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed) + 1; }
  uint32_t ThreadId();

  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t next_slot_ = 0;
  uint64_t total_recorded_ = 0;
  std::atomic<uint64_t> next_id_{0};
  std::atomic<uint32_t> next_tid_{0};
};

// Process-global tracer, same ownership contract as GlobalMetrics():
// null by default, caller keeps the tracer alive while installed.
Tracer* GlobalTracer();
Tracer* SetGlobalTracer(Tracer* tracer);

// Starts a span on the global tracer; returns an inert span when no
// tracer is installed (cost: one atomic load).
Span TraceSpan(std::string name);

// RecordCompleted on the global tracer; a no-op when none is installed.
void TraceCompleted(
    std::string name, uint64_t start_ns, uint64_t dur_ns,
    std::vector<std::pair<std::string, std::string>> attrs = {});

}  // namespace duplex

#endif  // DUPLEX_UTIL_TRACER_H_

#ifndef DUPLEX_UTIL_STATUS_H_
#define DUPLEX_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace duplex {

// Canonical error space, modeled after the usual database-engine practice
// (absl::Status / rocksdb::Status). The library does not use exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kCorruption,
  kUnimplemented,
  kInternal,
  kIoError,
};

// Returns a stable human-readable name for `code` (e.g. "NotFound").
const char* StatusCodeToString(StatusCode code);

// A Status carries either success (`ok()`) or an error code plus message.
// Cheap to copy in the success case; error state is a small heap string.
class Status {
 public:
  // Builds an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }

  // "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Result<T> holds either a value or an error Status (a minimal StatusOr).
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work
  // at call sites, mirroring absl::StatusOr ergonomics.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    if (std::get<Status>(rep_).ok()) {
      rep_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  // Requires ok().
  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

// Propagates an error Status from an expression, absl-style.
#define DUPLEX_RETURN_IF_ERROR(expr)                 \
  do {                                               \
    ::duplex::Status _duplex_status = (expr);        \
    if (!_duplex_status.ok()) return _duplex_status; \
  } while (false)

}  // namespace duplex

#endif  // DUPLEX_UTIL_STATUS_H_

#ifndef DUPLEX_UTIL_TABLE_WRITER_H_
#define DUPLEX_UTIL_TABLE_WRITER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace duplex {

// Collects rows and renders them either as an aligned ASCII table (the
// format every bench binary prints, matching the paper's tables) or as CSV
// for downstream plotting.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> columns);

  // Starts a new row; subsequent Cell() calls fill it left to right.
  TableWriter& Row();
  TableWriter& Cell(const std::string& v);
  TableWriter& Cell(const char* v);
  TableWriter& Cell(double v, int precision = 3);
  TableWriter& Cell(uint64_t v);
  TableWriter& Cell(int64_t v);
  TableWriter& Cell(int v);

  size_t row_count() const { return rows_.size(); }

  void PrintAscii(std::ostream& os, const std::string& title = "") const;
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace duplex

#endif  // DUPLEX_UTIL_TABLE_WRITER_H_

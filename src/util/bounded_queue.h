#ifndef DUPLEX_UTIL_BOUNDED_QUEUE_H_
#define DUPLEX_UTIL_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace duplex {

// Bounded multi-producer / multi-consumer FIFO, the admission-control
// primitive of the network worker pool. Producers use TryPush — a full
// queue is a load-shedding signal (the caller answers BUSY), never a
// blocking wait, so a slow consumer can not wedge an accept loop.
// Consumers block in Pop until an item arrives or the queue is closed
// AND drained, which gives a worker pool clean shutdown semantics:
// Close() wakes everyone, already-queued work still completes.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Enqueues unless the queue is full or closed. Never blocks.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || queue_.size() >= capacity_) return false;
      queue_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  // Blocks until an item is available (returns true) or the queue is
  // closed and empty (returns false — the consumer should exit).
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return false;
    *out = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }

  // Rejects future pushes and wakes blocked consumers; queued items
  // remain poppable. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace duplex

#endif  // DUPLEX_UTIL_BOUNDED_QUEUE_H_

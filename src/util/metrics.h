#ifndef DUPLEX_UTIL_METRICS_H_
#define DUPLEX_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace duplex {

// Nanoseconds on the steady clock, relative to process start. The zero
// point is arbitrary but shared by every metric and span in the process,
// so durations and trace timestamps compose.
uint64_t MonotonicNanos();

// Monotonically increasing counter, sharded across cache lines so
// concurrent increments from different threads do not bounce one atomic.
// Inc() is wait-free (one relaxed fetch_add); Value() sums the cells.
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    cells_[CellIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const;

 private:
  static size_t CellIndex();

  static constexpr size_t kCells = 8;
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kCells> cells_;
};

// Last-writer-wins scalar (occupancy ratios, resident counts, ...).
class Gauge {
 public:
  void Set(double value) { v_.store(value, std::memory_order_relaxed); }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Fixed log-bucketed latency histogram, safe for hot paths — unlike the
// exact-values util::Histogram, Record() is one branch plus a handful of
// relaxed atomic adds, allocates nothing, and the memory footprint is
// constant. Values are non-negative integers (nanoseconds by convention).
//
// Bucket b holds values whose bit width is b: bucket 0 is exactly {0},
// bucket b >= 1 is [2^(b-1), 2^b - 1]. Boundaries are pure integer
// arithmetic, so they are identical on every platform. count/sum are
// exact under concurrency; percentiles interpolate within a bucket, so an
// estimate is always within one bucket of the true value.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 65;

  // 0 -> 0; otherwise bit_width(value) (1 -> 1, 2..3 -> 2, 4..7 -> 3, ...).
  static size_t BucketIndex(uint64_t value);
  // Largest value bucket b holds (UINT64_MAX for the final bucket).
  static uint64_t BucketUpperBound(size_t bucket);
  // Smallest value bucket b holds.
  static uint64_t BucketLowerBound(size_t bucket);

  void Record(uint64_t value);
  // Adds another histogram's buckets and totals into this one.
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t min() const;  // 0 when empty
  uint64_t max() const;  // 0 when empty
  uint64_t bucket_count(size_t bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }

  // p in [0, 100]. Linear interpolation within the bucket containing the
  // rank; exact min/max at the extremes. 0 for an empty histogram.
  double Percentile(double p) const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~0ull};
  std::atomic<uint64_t> max_{0};
};

// Escapes a label VALUE per the Prometheus exposition format: backslash,
// double-quote, and newline become \\, \", and \n. Apply to any dynamic
// string interpolated into a label body.
std::string EscapeLabelValue(std::string_view value);

// `key="value"` with the value escaped — the safe way to build the
// `labels` argument of the Get*/Global* calls from runtime strings:
//   GetCounter("duplex_net_rejected_total", help, LabelPair("reason", r));
// Join multiple pairs with ",".
std::string LabelPair(std::string_view key, std::string_view value);

// Point-in-time copy of every metric in a registry, keyed by exposition
// name (name plus {labels} when the metric is labeled).
struct MetricsSnapshot {
  struct HistogramView {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    std::array<uint64_t, LatencyHistogram::kBuckets> buckets{};
    double Percentile(double p) const;
  };
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramView> histograms;
};

// Named metrics, registered on first use and stable for the registry's
// lifetime. Get* is mutex-guarded (registration is cold); the returned
// handles record lock-free and must not outlive the registry — components
// fetch handles at construction, so a registry must be installed before
// and destroyed after the components it observes.
//
// Naming scheme (see DESIGN.md § 7): duplex_<layer>_<what>_<unit>, with
// counters ending in _total and durations in _ns. `labels` is a raw
// Prometheus label body, e.g. `shard="3"`.
class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Process-unique, never reused. Callers that cache handles keyed by
  // registry identity must key on (pointer, uid): a new registry can be
  // allocated at a dead one's address.
  uint64_t uid() const { return uid_; }

  Counter* GetCounter(std::string_view name, std::string_view help = "",
                      std::string_view labels = "");
  Gauge* GetGauge(std::string_view name, std::string_view help = "",
                  std::string_view labels = "");
  LatencyHistogram* GetHistogram(std::string_view name,
                                 std::string_view help = "",
                                 std::string_view labels = "");

  MetricsSnapshot Snapshot() const;

  // Prometheus text exposition format (promtool-parseable): # HELP/# TYPE
  // per metric family, histograms as cumulative _bucket{le=...}/_sum/
  // _count series.
  std::string ExportPrometheus() const;

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  // sum, min, max, p50, p95, p99}}}.
  std::string ExportJson() const;

  size_t metric_count() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind = Kind::kCounter;
    std::string name;    // base name, no labels
    std::string labels;  // raw label body, may be empty
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  Entry* GetEntry(Kind kind, std::string_view name, std::string_view help,
                  std::string_view labels);

  const uint64_t uid_;
  mutable std::mutex mu_;
  // Keyed by exposition name; std::map so exports are deterministically
  // ordered (labeled series of one family sort together).
  std::map<std::string, Entry> entries_;
};

// Process-global registry. Null (the default) means observability is off
// and every instrumentation site reduces to one pointer test. The caller
// owns the registry and must keep it alive while installed — and while
// any component that fetched handles from it is still running.
MetricsRegistry* GlobalMetrics();
// Returns the previously installed registry (so scopes can nest).
MetricsRegistry* SetGlobalMetrics(MetricsRegistry* registry);

// Handle fetch against the installed global registry; null when none is
// installed. Instrumentation sites null-check their handles, so a build
// with no registry installed pays only the branch.
Counter* GlobalCounter(std::string_view name, std::string_view help = "",
                       std::string_view labels = "");
Gauge* GlobalGauge(std::string_view name, std::string_view help = "",
                   std::string_view labels = "");
LatencyHistogram* GlobalLatency(std::string_view name,
                                std::string_view help = "",
                                std::string_view labels = "");

// RAII timer: records elapsed nanoseconds into `h` on destruction; inert
// when `h` is null (no clock read at all).
class ScopedLatency {
 public:
  explicit ScopedLatency(LatencyHistogram* h)
      : h_(h), start_(h == nullptr ? 0 : MonotonicNanos()) {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() {
    if (h_ != nullptr) h_->Record(MonotonicNanos() - start_);
  }

 private:
  LatencyHistogram* h_;
  uint64_t start_;
};

}  // namespace duplex

#endif  // DUPLEX_UTIL_METRICS_H_

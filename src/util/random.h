#ifndef DUPLEX_UTIL_RANDOM_H_
#define DUPLEX_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace duplex {

// Deterministic 64-bit PRNG (xoshiro256**). All experiments in this
// repository are seeded, so every figure and table is exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform over [0, 2^64).
  uint64_t NextUint64();

  // Uniform over [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  // Uniform over [0, 1).
  double NextDouble();

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Standard normal via Box-Muller.
  double NextGaussian();

  // Log-normal with the given parameters of the underlying normal.
  double NextLogNormal(double mu, double sigma);

 private:
  uint64_t s_[4];
};

// Zipf(s) sampler over ranks {1, ..., n}: P(k) proportional to 1/k^s.
// Uses rejection-inversion (Hormann & Derflinger 1996), O(1) per sample
// with no O(n) table, so it scales to multi-million-word vocabularies.
class ZipfDistribution {
 public:
  // n >= 1; s > 0, s != 1 handled, s == 1 handled via the limit forms.
  ZipfDistribution(uint64_t n, double s);

  // Returns a rank in [1, n].
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;  // s_threshold for the rejection test shortcut
};

}  // namespace duplex

#endif  // DUPLEX_UTIL_RANDOM_H_

#include "util/log.h"

#include <chrono>
#include <cstring>

#include "util/metrics.h"

namespace duplex {
namespace {

std::atomic<Logger*> g_log{nullptr};

uint64_t WallMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void AppendKey(std::string* line, std::string_view key) {
  *line += ",\"";
  *line += key;
  *line += "\":";
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  std::string lower(text);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *out = LogLevel::kWarn;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

std::string JsonEscapeString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

Logger::Logger(LogOptions options)
    : options_(options),
      out_(options.sink == nullptr ? stderr : options.sink) {
  sink_thread_ = std::thread([this] { SinkLoop(); });
}

Logger::~Logger() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  ready_.notify_all();
  if (sink_thread_.joinable()) sink_thread_.join();
}

bool Logger::Emit(std::string line) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || queue_.size() >= options_.queue_capacity) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    queue_.push_back(std::move(line));
    ++pushed_;
  }
  ready_.notify_one();
  emitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Logger::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t target = pushed_;
  drained_.wait(lock, [this, target] {
    return written_ >= target || stopping_;
  });
}

void Logger::SinkLoop() {
  for (;;) {
    std::string line;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ with an empty queue: everything is written.
        std::fflush(out_);
        drained_.notify_all();
        return;
      }
      line = std::move(queue_.front());
      queue_.pop_front();
    }
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), out_);
    bool empty_now;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++written_;
      empty_now = queue_.empty();
    }
    // Flush when the queue drains, not per line: a burst is written with
    // one syscall's worth of buffering, an idle logger is always flushed.
    if (empty_now) std::fflush(out_);
    drained_.notify_all();
  }
}

Logger* GlobalLog() { return g_log.load(std::memory_order_acquire); }

Logger* SetGlobalLog(Logger* logger) {
  return g_log.exchange(logger, std::memory_order_acq_rel);
}

LogEvent::LogEvent(Logger* logger, LogLevel level, std::string_view event) {
  if (logger == nullptr || !logger->Enabled(level)) return;
  logger_ = logger;
  line_.reserve(96);
  line_ += "{\"ts_ms\":";
  line_ += std::to_string(WallMillis());
  line_ += ",\"mono_ns\":";
  line_ += std::to_string(MonotonicNanos());
  line_ += ",\"lvl\":\"";
  line_ += LogLevelName(level);
  line_ += "\",\"ev\":\"";
  line_ += JsonEscapeString(event);
  line_ += '"';
}

LogEvent::~LogEvent() {
  if (logger_ == nullptr) return;
  line_ += '}';
  logger_->Emit(std::move(line_));
}

LogEvent& LogEvent::Str(std::string_view key, std::string_view value) {
  if (logger_ != nullptr) {
    AppendKey(&line_, key);
    line_ += '"';
    line_ += JsonEscapeString(value);
    line_ += '"';
  }
  return *this;
}

LogEvent& LogEvent::U64(std::string_view key, uint64_t value) {
  if (logger_ != nullptr) {
    AppendKey(&line_, key);
    line_ += std::to_string(value);
  }
  return *this;
}

LogEvent& LogEvent::I64(std::string_view key, int64_t value) {
  if (logger_ != nullptr) {
    AppendKey(&line_, key);
    line_ += std::to_string(value);
  }
  return *this;
}

LogEvent& LogEvent::F64(std::string_view key, double value) {
  if (logger_ != nullptr) {
    AppendKey(&line_, key);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    line_ += buf;
  }
  return *this;
}

LogEvent& LogEvent::Bool(std::string_view key, bool value) {
  if (logger_ != nullptr) {
    AppendKey(&line_, key);
    line_ += value ? "true" : "false";
  }
  return *this;
}

LogEvent LogDebug(std::string_view event) {
  return LogEvent(GlobalLog(), LogLevel::kDebug, event);
}
LogEvent LogInfo(std::string_view event) {
  return LogEvent(GlobalLog(), LogLevel::kInfo, event);
}
LogEvent LogWarn(std::string_view event) {
  return LogEvent(GlobalLog(), LogLevel::kWarn, event);
}
LogEvent LogError(std::string_view event) {
  return LogEvent(GlobalLog(), LogLevel::kError, event);
}

}  // namespace duplex

#include "util/table_writer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.h"

namespace duplex {

TableWriter::TableWriter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  DUPLEX_CHECK(!columns_.empty());
}

TableWriter& TableWriter::Row() {
  rows_.emplace_back();
  return *this;
}

TableWriter& TableWriter::Cell(const std::string& v) {
  DUPLEX_CHECK(!rows_.empty());
  DUPLEX_CHECK_LT(rows_.back().size(), columns_.size());
  rows_.back().push_back(v);
  return *this;
}

TableWriter& TableWriter::Cell(const char* v) { return Cell(std::string(v)); }

TableWriter& TableWriter::Cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return Cell(os.str());
}

TableWriter& TableWriter::Cell(uint64_t v) { return Cell(std::to_string(v)); }
TableWriter& TableWriter::Cell(int64_t v) { return Cell(std::to_string(v)); }
TableWriter& TableWriter::Cell(int v) { return Cell(std::to_string(v)); }

void TableWriter::PrintAscii(std::ostream& os, const std::string& title) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  if (!title.empty()) os << "== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
    }
    os << "\n";
  };
  print_row(columns_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TableWriter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) os << ",";
      os << row[i];
    }
    os << "\n";
  };
  print_row(columns_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace duplex

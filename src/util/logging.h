#ifndef DUPLEX_UTIL_LOGGING_H_
#define DUPLEX_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace duplex {
namespace internal_logging {

// Accumulates a fatal message and aborts the process when destroyed.
// Used only via the DUPLEX_CHECK macros below.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }
  [[noreturn]] ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Lower-precedence-than-<< adapter so DUPLEX_CHECK can be used inside a
// ternary while still supporting `DUPLEX_CHECK(x) << "context"`.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace duplex

// Invariant checks. These guard internal invariants (never user input — user
// input errors are reported via Status). Enabled in all build types: a
// storage engine that silently corrupts state is worse than one that stops.
#define DUPLEX_CHECK(condition)                                 \
  (condition) ? (void)0                                         \
              : ::duplex::internal_logging::Voidify() &         \
                    ::duplex::internal_logging::FatalMessage(   \
                        __FILE__, __LINE__, #condition)         \
                        .stream()

#define DUPLEX_CHECK_OP(op, a, b) DUPLEX_CHECK((a)op(b))
#define DUPLEX_CHECK_EQ(a, b) DUPLEX_CHECK_OP(==, a, b)
#define DUPLEX_CHECK_NE(a, b) DUPLEX_CHECK_OP(!=, a, b)
#define DUPLEX_CHECK_LT(a, b) DUPLEX_CHECK_OP(<, a, b)
#define DUPLEX_CHECK_LE(a, b) DUPLEX_CHECK_OP(<=, a, b)
#define DUPLEX_CHECK_GT(a, b) DUPLEX_CHECK_OP(>, a, b)
#define DUPLEX_CHECK_GE(a, b) DUPLEX_CHECK_OP(>=, a, b)

#define DUPLEX_CHECK_OK(status_expr)                                     \
  do {                                                                   \
    const ::duplex::Status _duplex_chk = (status_expr);                  \
    DUPLEX_CHECK(_duplex_chk.ok()) << _duplex_chk.ToString();            \
  } while (false)

#endif  // DUPLEX_UTIL_LOGGING_H_

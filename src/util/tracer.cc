#include "util/tracer.h"

#include <atomic>
#include <cstdio>
#include <sstream>

#include "util/metrics.h"

namespace duplex {
namespace {

std::atomic<Tracer*> g_tracer{nullptr};

// Innermost live span id for the current thread, per tracer generation.
// The tracer pointer is part of the state so a span stack from a
// previous (destroyed) tracer can never leak into a new one.
struct ThreadSpanStack {
  const Tracer* tracer = nullptr;
  std::vector<uint64_t> ids;
};
thread_local ThreadSpanStack t_span_stack;

thread_local uint32_t t_tid = 0;  // 0 = unassigned; assigned ids start at 1

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

Span::Span(Tracer* tracer, std::string name) : tracer_(tracer) {
  event_.name = std::move(name);
  event_.id = tracer_->NextId();
  event_.tid = tracer_->ThreadId();
  if (t_span_stack.tracer != tracer_) {
    t_span_stack.tracer = tracer_;
    t_span_stack.ids.clear();
  }
  event_.parent_id = t_span_stack.ids.empty() ? 0 : t_span_stack.ids.back();
  t_span_stack.ids.push_back(event_.id);
  event_.start_ns = MonotonicNanos();
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    event_ = std::move(other.event_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::AddAttr(std::string key, std::string value) {
  if (tracer_ == nullptr) return;
  event_.attrs.emplace_back(std::move(key), std::move(value));
}

void Span::AddAttr(std::string key, uint64_t value) {
  AddAttr(std::move(key), std::to_string(value));
}

void Span::End() {
  if (tracer_ == nullptr) return;
  event_.dur_ns = MonotonicNanos() - event_.start_ns;
  // Unwind this thread's span stack. Spans normally end LIFO; if one is
  // ended out of order (e.g. moved across scopes), drop it from wherever
  // it sits so descendants don't re-parent onto a dead id forever.
  if (t_span_stack.tracer == tracer_) {
    auto& ids = t_span_stack.ids;
    for (size_t i = ids.size(); i > 0; --i) {
      if (ids[i - 1] == event_.id) {
        ids.erase(ids.begin() + static_cast<ptrdiff_t>(i - 1));
        break;
      }
    }
  }
  tracer_->Record(std::move(event_));
  tracer_ = nullptr;
}

Tracer::Tracer(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_ < 1024 ? capacity_ : 1024);
}

Span Tracer::StartSpan(std::string name) {
  return Span(this, std::move(name));
}

void Tracer::RecordCompleted(
    std::string name, uint64_t start_ns, uint64_t dur_ns,
    std::vector<std::pair<std::string, std::string>> attrs) {
  TraceEvent event;
  event.name = std::move(name);
  event.id = NextId();
  event.tid = ThreadId();
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  event.attrs = std::move(attrs);
  Record(std::move(event));
}

uint32_t Tracer::ThreadId() {
  if (t_tid == 0) {
    t_tid = next_tid_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  return t_tid;
}

void Tracer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_slot_] = std::move(event);
    next_slot_ = (next_slot_ + 1) % capacity_;
  }
  ++total_recorded_;
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Ring is oldest-first starting at next_slot_ once it has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_slot_ + i) % ring_.size()]);
  }
  return out;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_recorded_ - ring_.size();
}

std::string Tracer::ExportChromeTrace() const {
  std::vector<TraceEvent> events = Events();
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << JsonEscape(e.name) << "\",\"ph\":\"X\",\"pid\":1"
       << ",\"tid\":" << e.tid;
    // trace_event timestamps are microseconds; emit the nanosecond
    // remainder as three zero-padded fractional digits.
    char frac[8];
    std::snprintf(frac, sizeof frac, "%03u",
                  static_cast<unsigned>(e.start_ns % 1000));
    os << ",\"ts\":" << e.start_ns / 1000 << "." << frac;
    std::snprintf(frac, sizeof frac, "%03u",
                  static_cast<unsigned>(e.dur_ns % 1000));
    os << ",\"dur\":" << e.dur_ns / 1000 << "." << frac;
    os << ",\"args\":{\"span_id\":" << e.id;
    if (e.parent_id != 0) os << ",\"parent_id\":" << e.parent_id;
    for (const auto& [k, v] : e.attrs) {
      os << ",\"" << JsonEscape(k) << "\":\"" << JsonEscape(v) << "\"";
    }
    os << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ns\"}\n";
  return os.str();
}

Tracer* GlobalTracer() { return g_tracer.load(std::memory_order_acquire); }

Tracer* SetGlobalTracer(Tracer* tracer) {
  return g_tracer.exchange(tracer, std::memory_order_acq_rel);
}

Span TraceSpan(std::string name) {
  Tracer* t = GlobalTracer();
  if (t == nullptr) return Span();
  return t->StartSpan(std::move(name));
}

void TraceCompleted(std::string name, uint64_t start_ns, uint64_t dur_ns,
                    std::vector<std::pair<std::string, std::string>> attrs) {
  Tracer* t = GlobalTracer();
  if (t == nullptr) return;
  t->RecordCompleted(std::move(name), start_ns, dur_ns, std::move(attrs));
}

}  // namespace duplex

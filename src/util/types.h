#ifndef DUPLEX_UTIL_TYPES_H_
#define DUPLEX_UTIL_TYPES_H_

#include <cstdint>

namespace duplex {

// Dense identifier of a word assigned by the Vocabulary in first-seen
// order. The paper converts all words to unique integers the same way
// (Section 4.2).
using WordId = uint32_t;

// Document identifier. The paper assumes documents are numbered in
// increasing arrival order, which is what makes append-only long lists
// stay sorted and merge-able (Section 3).
using DocId = uint32_t;

inline constexpr WordId kInvalidWord = ~static_cast<WordId>(0);

}  // namespace duplex

#endif  // DUPLEX_UTIL_TYPES_H_

#ifndef DUPLEX_UTIL_HISTOGRAM_H_
#define DUPLEX_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.h"

namespace duplex {

// Streaming summary of a scalar series: count / sum / min / max / mean /
// percentiles. Percentiles are exact (values retained); intended for
// experiment harnesses, not hot paths — use util::LatencyHistogram for
// those.
//
// Memory: every Add() retains its value, so an unbounded stream grows
// memory without bound. Call Reserve() when the sample count is known
// up front, or set_sample_cap() to bound retention: past the cap the
// retained values become a uniform reservoir sample (percentiles turn
// approximate) while count/sum/mean/stddev/min/max stay exact.
//
// Interleaving Add() and Percentile() does not re-sort the whole series
// each call: the sorted prefix is kept and only the unsorted tail is
// sorted and merged in, so k adds between queries cost
// O(k log k + n), not O(n log n).
class Histogram {
 public:
  Histogram() = default;

  void Add(double value);
  void Merge(const Histogram& other);
  void Clear();

  // Pre-allocates retention for n samples.
  void Reserve(size_t n);

  // Bounds retained samples to `cap` (0 = unbounded, the default). When
  // the cap is exceeded, retained values are a uniform reservoir sample
  // of the full stream; count()/sum()/Mean()/StdDev()/min()/max() remain
  // exact, percentiles become estimates over the sample.
  void set_sample_cap(size_t cap);
  size_t sample_cap() const { return sample_cap_; }
  // Number of values currently retained (== count() unless capped).
  size_t retained() const { return values_.size(); }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double Mean() const;
  double StdDev() const;

  // p in [0, 100]. Returns 0 for an empty histogram. Exact unless the
  // sample cap truncated retention.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  // One-line summary: "count=... mean=... p50=... p99=... max=...".
  std::string ToString() const;

 private:
  void EnsureSorted() const;
  void Retain(double value);

  mutable std::vector<double> values_;
  // values_[0, sorted_prefix_) is sorted; the tail is insertion order.
  mutable size_t sorted_prefix_ = 0;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  size_t sample_cap_ = 0;
  Rng reservoir_rng_{0x9e3779b97f4a7c15ull};
};

}  // namespace duplex

#endif  // DUPLEX_UTIL_HISTOGRAM_H_

#ifndef DUPLEX_UTIL_HISTOGRAM_H_
#define DUPLEX_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace duplex {

// Streaming summary of a scalar series: count / sum / min / max / mean /
// percentiles. Percentiles are exact (values retained); intended for
// experiment harnesses, not hot paths.
class Histogram {
 public:
  Histogram() = default;

  void Add(double value);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return values_.size(); }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double Mean() const;
  double StdDev() const;

  // p in [0, 100]. Returns 0 for an empty histogram.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  // One-line summary: "count=... mean=... p50=... p99=... max=...".
  std::string ToString() const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace duplex

#endif  // DUPLEX_UTIL_HISTOGRAM_H_

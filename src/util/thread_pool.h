#ifndef DUPLEX_UTIL_THREAD_POOL_H_
#define DUPLEX_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace duplex {

// A small fixed-size worker pool for per-shard parallel batch apply.
// Deliberately minimal: no futures, no work stealing — submitted tasks
// drain FIFO, and Wait() blocks until the pool is fully idle. With
// num_threads == 0 every task runs inline in the submitting thread, so
// single-threaded configurations stay deterministic and allocation-free.
class ThreadPool {
 public:
  explicit ThreadPool(uint32_t num_threads) {
    workers_.reserve(num_threads);
    for (uint32_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::unique_lock lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  uint32_t size() const { return static_cast<uint32_t>(workers_.size()); }

  // Enqueues one task. Inline execution when the pool has no workers.
  void Submit(std::function<void()> task) {
    if (workers_.empty()) {
      task();
      return;
    }
    {
      std::unique_lock lock(mutex_);
      queue_.push_back(std::move(task));
    }
    wake_.notify_one();
  }

  // Blocks until every submitted task has finished.
  void Wait() {
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
  }

  // Runs fn(0) ... fn(n-1) across the pool and blocks until all complete.
  // The calls may run in any order and concurrently; fn must be safe for
  // that. Inline (in submission order) when the pool has no workers.
  void ParallelFor(uint32_t n, const std::function<void(uint32_t)>& fn) {
    if (workers_.empty()) {
      for (uint32_t i = 0; i < n; ++i) fn(i);
      return;
    }
    std::mutex done_mutex;
    std::condition_variable done_cv;
    uint32_t remaining = n;
    for (uint32_t i = 0; i < n; ++i) {
      Submit([&, i] {
        fn(i);
        std::unique_lock lock(done_mutex);
        if (--remaining == 0) done_cv.notify_one();
      });
    }
    std::unique_lock lock(done_mutex);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock(mutex_);
        wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
        ++running_;
      }
      task();
      {
        std::unique_lock lock(mutex_);
        --running_;
        if (queue_.empty() && running_ == 0) idle_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  uint32_t running_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace duplex

#endif  // DUPLEX_UTIL_THREAD_POOL_H_

#ifndef DUPLEX_UTIL_HASH_H_
#define DUPLEX_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace duplex {

// FNV-1a 64-bit hash; used as the batch-log record checksum and for
// hash-based sharding. Not cryptographic.
inline uint64_t Fnv1a64(const void* data, size_t len,
                        uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t Fnv1a64(std::string_view s) {
  return Fnv1a64(s.data(), s.size());
}

}  // namespace duplex

#endif  // DUPLEX_UTIL_HASH_H_

#ifndef DUPLEX_UTIL_STOPWATCH_H_
#define DUPLEX_UTIL_STOPWATCH_H_

#include <chrono>

namespace duplex {

// Wall-clock stopwatch for harness instrumentation (not for the simulated
// disk clock — that lives in storage::DiskModel).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace duplex

#endif  // DUPLEX_UTIL_STOPWATCH_H_

#ifndef DUPLEX_UTIL_LOG_H_
#define DUPLEX_UTIL_LOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

namespace duplex {

// Severity order: a logger at level L emits events at L and above.
enum class LogLevel : uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

const char* LogLevelName(LogLevel level);
// "debug"/"info"/"warn"/"error" (case-insensitive); false on anything else.
bool ParseLogLevel(std::string_view text, LogLevel* out);

struct LogOptions {
  LogLevel min_level = LogLevel::kInfo;
  // Events buffered between the emitting thread and the sink thread. At
  // the bound new events are DROPPED (and counted), never blocked on —
  // a slow disk must not stall a request worker.
  size_t queue_capacity = 4096;
  // Destination stream; null = stderr. Borrowed, not owned; must stay
  // open while the logger lives.
  std::FILE* sink = nullptr;
};

// Leveled structured logger: each event is one JSON object per line
//
//   {"ts_ms":...,"mono_ns":...,"lvl":"info","ev":"net.server.start",
//    "port":4800,...}
//
// Emission is asynchronous: the builder formats the line on the calling
// thread (bounded work, no I/O), pushes it onto a bounded queue, and a
// single sink thread writes lines in order. A full queue drops the event
// and bumps dropped() — backpressure never reaches the caller.
//
// Global installation mirrors SetGlobalMetrics: null by default (every
// log site reduces to one pointer test), caller owns the logger and keeps
// it alive while installed.
class Logger {
 public:
  explicit Logger(LogOptions options = {});
  ~Logger();  // drains the queue, then joins the sink thread

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  bool Enabled(LogLevel level) const {
    return level >= options_.min_level;
  }
  LogLevel min_level() const { return options_.min_level; }

  // Enqueues one fully formatted line (no trailing newline). Returns
  // false when the line was dropped because the queue was full.
  bool Emit(std::string line);

  // Blocks until every line enqueued before the call has been written
  // and flushed to the sink.
  void Flush();

  uint64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  void SinkLoop();

  const LogOptions options_;
  std::FILE* out_;

  std::mutex mu_;
  std::condition_variable ready_;
  std::condition_variable drained_;
  std::deque<std::string> queue_;
  bool stopping_ = false;
  uint64_t pushed_ = 0;   // lines ever enqueued
  uint64_t written_ = 0;  // lines the sink thread has written

  std::atomic<uint64_t> emitted_{0};
  std::atomic<uint64_t> dropped_{0};
  std::thread sink_thread_;
};

// Process-global logger, same ownership contract as GlobalMetrics().
Logger* GlobalLog();
Logger* SetGlobalLog(Logger* logger);

// One event under construction. Inert (every method is a no-op beyond a
// null test) when no logger is installed or the level is filtered; emits
// on destruction otherwise. Attribute keys must be plain identifiers;
// string values are JSON-escaped.
class LogEvent {
 public:
  LogEvent(Logger* logger, LogLevel level, std::string_view event);
  ~LogEvent();

  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& Str(std::string_view key, std::string_view value);
  LogEvent& U64(std::string_view key, uint64_t value);
  LogEvent& I64(std::string_view key, int64_t value);
  LogEvent& F64(std::string_view key, double value);
  LogEvent& Bool(std::string_view key, bool value);

  bool active() const { return logger_ != nullptr; }

 private:
  Logger* logger_ = nullptr;
  std::string line_;
};

// Builders against the global logger; the usual call shape is
//   LogInfo("net.server.start").U64("port", port).U64("workers", n);
LogEvent LogDebug(std::string_view event);
LogEvent LogInfo(std::string_view event);
LogEvent LogWarn(std::string_view event);
LogEvent LogError(std::string_view event);

// JSON string escaping shared with the metrics exporter tests: escapes
// `"`, `\`, and control characters (\n, \t, ... as \uXXXX where needed).
std::string JsonEscapeString(std::string_view s);

}  // namespace duplex

#endif  // DUPLEX_UTIL_LOG_H_

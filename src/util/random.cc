#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace duplex {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// expm1(x)/x, stable near zero.
double Helper2(double x) {
  if (std::abs(x) > 1e-8) return std::expm1(x) / x;
  return 1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x));
}

// log1p(x)/x, stable near zero.
double Helper1(double x) {
  if (std::abs(x) > 1e-8) return std::log1p(x) / x;
  return 1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  DUPLEX_CHECK_GT(bound, 0u);
  // Rejection to remove modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

ZipfDistribution::ZipfDistribution(uint64_t n, double s) : n_(n), s_(s) {
  DUPLEX_CHECK_GE(n, 1u);
  DUPLEX_CHECK_GT(s, 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::exp(-s_ * std::log(2.0)));
}

double ZipfDistribution::H(double x) const {
  const double log_x = std::log(x);
  return Helper2((1.0 - s_) * log_x) * log_x;
}

double ZipfDistribution::HInverse(double x) const {
  const double t = std::max(-1.0, x * (1.0 - s_));
  return std::exp(Helper1(t) * x);
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  for (;;) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= threshold_ ||
        u >= H(kd + 0.5) - std::exp(-s_ * std::log(kd))) {
      return k;
    }
  }
}

}  // namespace duplex

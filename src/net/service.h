#ifndef DUPLEX_NET_SERVICE_H_
#define DUPLEX_NET_SERVICE_H_

#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/batch_log.h"
#include "core/checkpoint.h"
#include "core/concurrent_index.h"
#include "core/live_index.h"
#include "core/sharded_index.h"
#include "net/frame.h"
#include "util/status.h"

namespace duplex::net {

// Index-cost accounting for one executed request, reported back to the
// server so the slow-query log can say WHY a request was slow (how many
// chunk reads, how many buffer-pool resident, how many postings
// scanned) rather than just how long it took.
struct RequestCost {
  uint64_t read_ops = 0;
  uint64_t cached_read_ops = 0;
  uint64_t postings_read = 0;
  // StatusCode of the handler outcome (0 = OK), as encoded in the
  // response prelude.
  uint8_t status_code = 0;
};

// Request execution behind the server's worker pool: one virtual per
// opcode, with the wire decode/encode shared in HandleRequest so every
// backend speaks the identical protocol. Implementations must be safe
// for concurrent calls — the worker pool runs N requests at once, and
// readers must proceed while a submit applies (the paper's 24x7 story
// over a socket).
class IndexService {
 public:
  virtual ~IndexService() = default;

  // Executes one decoded request frame and returns the response payload
  // (status prelude + body). Never fails: handler errors are encoded as
  // typed non-OK response payloads. `cost` (optional) receives the
  // request's index-cost counters and outcome code.
  std::string HandleRequest(uint8_t opcode, std::string_view payload,
                            RequestCost* cost = nullptr);

  // Shutdown hook: make everything the service accepted durable (flush
  // buffered documents through the WAL, write back dirty cache frames).
  virtual Status Flush() { return Status::OK(); }

 protected:
  virtual Result<ir::QueryResult> Boolean(std::string_view query) = 0;
  virtual Result<ir::VectorQueryResult> Vector(const ir::VectorQuery& query,
                                               size_t k) = 0;
  virtual Result<SubmitDocumentsResponse> Submit(
      const std::vector<std::string>& documents) = 0;
  // Immediate-visibility ingest. Backends without a live tier keep the
  // typed default: the client sees exactly why the opcode is refused.
  virtual Result<SubmitLiveResponse> SubmitLive(
      const std::vector<std::string>& documents) {
    (void)documents;
    return Status::Unimplemented(
        "live ingest not enabled on this backend (--live-ingest)");
  }
  virtual std::string StatsJson() = 0;
};

// Service over the word-partitioned ShardedIndex: queries fan out under
// per-shard shared locks (concurrent with each other and with updates on
// other shards); submits serialize on one writer mutex and run the WAL
// commit protocol when a BatchLog is attached (append durable -> apply ->
// flush caches -> commit). This is the backend duplexd runs.
class ShardedIndexService : public IndexService {
 public:
  // `wal` may be null (no durability logging); `live` may be null (no
  // immediate-visibility tier — kSubmitLive answers Unimplemented). With
  // a LiveIndex attached, EVERY request routes through it: queries read
  // the delta + disk overlay, submits serialize on its locks (the WAL is
  // shared with live appends, so the service's own mutex is not enough),
  // and WAL/checkpoint accounting uses its quiesce protocol. All
  // borrowed, not owned.
  ShardedIndexService(core::ShardedIndex* index, core::BatchLog* wal,
                      core::LiveIndex* live = nullptr)
      : index_(index), wal_(wal), live_(live) {}

  Status Flush() override;

  // Point-in-time WAL accounting for /statusz, read under the same mutex
  // that serializes submits — BatchLog itself is not synchronized, so
  // this is the only safe way to observe it while the service is live.
  struct WalStatus {
    bool attached = false;      // false = no WAL configured
    uint64_t tail_batches = 0;  // records currently in the log
    uint64_t base_epoch = 0;    // oldest id still in the log
    uint64_t next_id = 0;       // id the next submit's batch will get
  };
  WalStatus GetWalStatus();

  // Runs a checkpoint with submits excluded: the WAL cannot grow (or be
  // truncated under a concurrent append) while the image is cut. This is
  // the ONLY safe way to checkpoint a live service — calling
  // Checkpointer::Checkpoint directly races the submit path on the
  // BatchLog.
  Result<core::CheckpointInfo> CheckpointNow(core::Checkpointer* checkpointer);

 protected:
  Result<ir::QueryResult> Boolean(std::string_view query) override;
  Result<ir::VectorQueryResult> Vector(const ir::VectorQuery& query,
                                       size_t k) override;
  Result<SubmitDocumentsResponse> Submit(
      const std::vector<std::string>& documents) override;
  Result<SubmitLiveResponse> SubmitLive(
      const std::vector<std::string>& documents) override;
  std::string StatsJson() override;

 private:
  core::ShardedIndex* index_;
  core::BatchLog* wal_;
  core::LiveIndex* live_;
  std::mutex submit_mutex_;
};

// Service over a snapshot-loaded single InvertedIndex behind the
// ConcurrentIndex reader-writer facade — the `duplexctl serve <prefix>`
// backend. Queries share the read lock; submits take the write lock.
// Durability is snapshot-based: Flush() drains buffered documents and, if
// a snapshot prefix is set, rewrites the snapshot on shutdown.
class ConcurrentIndexService : public IndexService {
 public:
  ConcurrentIndexService(core::ConcurrentIndex* index,
                         std::string snapshot_prefix)
      : index_(index), snapshot_prefix_(std::move(snapshot_prefix)) {}

  Status Flush() override;

 protected:
  Result<ir::QueryResult> Boolean(std::string_view query) override;
  Result<ir::VectorQueryResult> Vector(const ir::VectorQuery& query,
                                       size_t k) override;
  Result<SubmitDocumentsResponse> Submit(
      const std::vector<std::string>& documents) override;
  std::string StatsJson() override;

 private:
  core::ConcurrentIndex* index_;
  std::string snapshot_prefix_;
};

}  // namespace duplex::net

#endif  // DUPLEX_NET_SERVICE_H_

#ifndef DUPLEX_NET_SOCKET_H_
#define DUPLEX_NET_SOCKET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace duplex::net {

// RAII TCP socket with the same errno discipline as FileBlockDevice:
// EINTR/EAGAIN draw a bounded exponential-backoff retry budget instead of
// spinning or failing on the first signal delivery, peer resets
// (ECONNRESET/EPIPE) and mid-message EOFs map to typed kIoError, and a
// syscall that makes zero progress without an errno is retried on the
// same budget. Writes use MSG_NOSIGNAL so a dead peer produces a Status,
// never a SIGPIPE.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  // Connects to host:port (numeric IPv4 or a resolvable name).
  static Result<Socket> Connect(const std::string& host, uint16_t port);

  // Connects with a deadline: non-blocking connect + poll, so a black-hole
  // address surfaces as typed kIoError ("timed out") instead of riding
  // the kernel's minutes-long default. timeout <= 0 means the plain
  // blocking connect above.
  static Result<Socket> Connect(const std::string& host, uint16_t port,
                                std::chrono::milliseconds timeout);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Sends exactly `len` bytes or returns a typed error.
  Status SendAll(const void* data, size_t len);

  // Receives exactly `len` bytes. EOF before the first byte is typed
  // kIoError "connection closed"; EOF mid-buffer is kIoError "short
  // read" — a silent partial frame is never returned.
  Status RecvAll(void* data, size_t len);

  // Receives up to `len` bytes; 0 means orderly EOF.
  Result<size_t> RecvSome(void* data, size_t len);

  // Bounds every subsequent blocking recv (SO_RCVTIMEO); expiry surfaces
  // as typed kIoError after the retry budget drains.
  Status SetRecvTimeout(std::chrono::milliseconds timeout);
  Status SetNoDelay();

  // Half-close: stop reading (wakes a blocked reader thread with EOF).
  void ShutdownRead();
  void ShutdownBoth();
  void Close();

 private:
  int fd_ = -1;
};

// Listening socket bound to `port` on all interfaces (0 = ephemeral:
// query the bound port afterwards). The fd is atomic because Close() is
// the shutdown wake-up: Stop() closes the listener from another thread
// to kick the accept loop out of its blocking accept().
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  static Result<Listener> Bind(uint16_t port, int backlog = 128);

  bool valid() const { return fd_.load(std::memory_order_acquire) >= 0; }
  uint16_t port() const { return port_; }

  // Blocks for the next connection. Returns typed kIoError when the
  // listener was closed out from under it (the shutdown path).
  Result<Socket> Accept();

  // Safe to call from another thread while Accept() blocks.
  void Close();

 private:
  std::atomic<int> fd_{-1};
  uint16_t port_ = 0;
};

}  // namespace duplex::net

#endif  // DUPLEX_NET_SOCKET_H_

#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace duplex::net {
namespace {

// Same transient-failure policy as storage::FileBlockDevice: EINTR and
// EAGAIN get kMaxRetries attempts with exponential backoff before the
// call fails typed. EAGAIN on a socket with SO_RCVTIMEO set means the
// timeout elapsed — the backoff budget turns that into a bounded number
// of grace periods, after which the caller gets kIoError, not a hang.
constexpr int kMaxRetries = 8;
constexpr long kBackoffBaseNanos = 100 * 1000;  // 100 us

bool RetryableErrno(int err) {
  return err == EINTR || err == EAGAIN || err == EWOULDBLOCK;
}

void BackoffSleep(int attempt) {
  struct timespec ts;
  ts.tv_sec = 0;
  ts.tv_nsec = kBackoffBaseNanos << attempt;
  ::nanosleep(&ts, nullptr);
}

std::string ErrnoMessage(const char* op, int err) {
  return std::string(op) + " failed: " + std::strerror(err) + " (errno " +
         std::to_string(err) + ")";
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Socket> Socket::Connect(const std::string& host, uint16_t port) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
      rc != 0) {
    return Status::IoError("getaddrinfo(" + host + "): " +
                           ::gai_strerror(rc));
  }
  int fd = -1;
  int last_err = 0;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_err = errno;
      continue;
    }
    int rc;
    do {
      rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    } while (rc != 0 && errno == EINTR);
    if (rc == 0) break;
    last_err = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    return Status::IoError("connect(" + host + ":" + service +
                           "): " + std::strerror(last_err));
  }
  return Socket(fd);
}

Result<Socket> Socket::Connect(const std::string& host, uint16_t port,
                               std::chrono::milliseconds timeout) {
  if (timeout.count() <= 0) return Connect(host, port);
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
      rc != 0) {
    return Status::IoError("getaddrinfo(" + host + "): " +
                           ::gai_strerror(rc));
  }
  int fd = -1;
  int last_err = 0;
  bool timed_out = false;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_err = errno;
      continue;
    }
    // Non-blocking connect + poll: the kernel's own connect timeout is
    // minutes; a client with a deadline needs its own clock.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
      last_err = errno;
      ::close(fd);
      fd = -1;
      continue;
    }
    int rc;
    do {
      rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0 && errno == EINPROGRESS) {
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      do {
        rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) {
        timed_out = true;
        last_err = ETIMEDOUT;
        ::close(fd);
        fd = -1;
        continue;
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (rc < 0 ||
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0) {
        last_err = errno;
        ::close(fd);
        fd = -1;
        continue;
      }
      if (so_error != 0) {
        last_err = so_error;
        ::close(fd);
        fd = -1;
        continue;
      }
      rc = 0;
    }
    if (rc != 0) {
      last_err = errno;
      ::close(fd);
      fd = -1;
      continue;
    }
    // Connected: back to blocking mode for the Recv/Send discipline.
    if (::fcntl(fd, F_SETFL, flags) < 0) {
      last_err = errno;
      ::close(fd);
      fd = -1;
      continue;
    }
    break;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    return Status::IoError(
        "connect(" + host + ":" + service + "): " +
        (timed_out ? ("timed out after " + std::to_string(timeout.count()) +
                      "ms")
                   : std::strerror(last_err)));
  }
  return Socket(fd);
}

Status Socket::SendAll(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  int retries = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == ECONNRESET || errno == EPIPE) {
        return Status::IoError("send: peer reset connection");
      }
      if (RetryableErrno(errno) && retries < kMaxRetries) {
        BackoffSleep(retries++);
        continue;
      }
      return Status::IoError(ErrnoMessage("send", errno));
    }
    if (n == 0) {
      // No error, no progress: retry on the bounded budget rather than
      // spinning forever against a wedged peer.
      if (retries >= kMaxRetries) {
        return Status::IoError("send made no progress after " +
                               std::to_string(kMaxRetries) + " retries");
      }
      BackoffSleep(retries++);
      continue;
    }
    sent += static_cast<size_t>(n);
    retries = 0;  // progress resets the budget
  }
  return Status::OK();
}

Status Socket::RecvAll(void* data, size_t len) {
  uint8_t* p = static_cast<uint8_t*>(data);
  size_t done = 0;
  while (done < len) {
    Result<size_t> n = RecvSome(p + done, len - done);
    if (!n.ok()) return n.status();
    if (*n == 0) {
      if (done == 0) return Status::IoError("recv: connection closed");
      return Status::IoError("recv: peer closed mid-message (short read " +
                             std::to_string(done) + " of " +
                             std::to_string(len) + " bytes)");
    }
    done += *n;
  }
  return Status::OK();
}

Result<size_t> Socket::RecvSome(void* data, size_t len) {
  int retries = 0;
  for (;;) {
    const ssize_t n = ::recv(fd_, data, len, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == ECONNRESET) {
      return Status::IoError("recv: peer reset connection");
    }
    if (RetryableErrno(errno) && retries < kMaxRetries) {
      BackoffSleep(retries++);
      continue;
    }
    return Status::IoError(ErrnoMessage("recv", errno));
  }
}

Status Socket::SetRecvTimeout(std::chrono::milliseconds timeout) {
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IoError(ErrnoMessage("setsockopt(SO_RCVTIMEO)", errno));
  }
  return Status::OK();
}

Status Socket::SetNoDelay() {
  const int one = 1;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Status::IoError(ErrnoMessage("setsockopt(TCP_NODELAY)", errno));
  }
  return Status::OK();
}

void Socket::ShutdownRead() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_.exchange(-1)), port_(other.port_) {
  other.port_ = 0;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1));
    port_ = other.port_;
    other.port_ = 0;
  }
  return *this;
}

Result<Listener> Listener::Bind(uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(ErrnoMessage("socket", errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(ErrnoMessage("bind", err));
  }
  if (::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(ErrnoMessage("listen", err));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(ErrnoMessage("getsockname", err));
  }
  Listener listener;
  listener.fd_.store(fd, std::memory_order_release);
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<Socket> Listener::Accept() {
  for (;;) {
    const int listen_fd = fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) {
      return Status::IoError("accept: listener closed");
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    return Status::IoError(ErrnoMessage("accept", errno));
  }
}

void Listener::Close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // shutdown() wakes a thread blocked in accept(); close alone does
    // not on all platforms.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace duplex::net

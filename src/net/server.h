#ifndef DUPLEX_NET_SERVER_H_
#define DUPLEX_NET_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/service.h"
#include "net/slow_query_log.h"
#include "net/socket.h"
#include "util/bounded_queue.h"
#include "util/metrics.h"

namespace duplex::net {

struct ServerOptions {
  uint16_t port = 0;  // 0 = ephemeral; read the bound port from port()
  // Request-execution threads. Also the hard concurrency of index access,
  // independent of how many connections are open.
  uint32_t num_workers = 4;
  // Admission bound per connection: frames parsed but not yet answered.
  // At the bound, further requests on that connection draw an immediate
  // typed BUSY — the client's signal to back off.
  uint32_t per_connection_queue = 64;
  // Bound of the shared worker queue across all connections; overflow is
  // the same typed BUSY.
  uint32_t global_queue = 1024;
  // Frames declaring more payload than this are refused (typed error,
  // connection closed).
  uint32_t max_payload_bytes = kDefaultMaxPayload;
  // Budget from admission to execution start: a request that sat queued
  // longer is answered BUSY ("deadline exceeded") instead of executing —
  // under overload the server sheds stale work rather than serving
  // already-abandoned requests. Zero disables the check.
  std::chrono::milliseconds request_deadline{1000};
  // Test hook: every request handler sleeps this long before executing,
  // so saturation tests can force BUSY/deadline paths deterministically.
  std::chrono::milliseconds test_handler_delay{0};
  // Requests whose queue_wait + execute + respond exceeds this threshold
  // are recorded in the slow-query ring (served by /slowz). Zero
  // disables slow-query capture entirely.
  std::chrono::milliseconds slow_query_threshold{0};
  // Ring capacity of the slow-query log.
  uint32_t slow_log_capacity = 128;
};

// duplexd's front end: one accept loop, one reader thread per
// connection (frame I/O only), and a fixed worker pool executing
// requests from a bounded queue. Backpressure is explicit — a full queue
// answers BUSY instead of queueing unboundedly, a garbage frame answers
// a typed GoAway and closes the connection, and Stop() drains admitted
// requests before returning.
//
// Start/Stop may be called in any order and repeatedly: Stop without
// Start is a no-op, double Stop is a no-op, and Start after Stop serves
// again on a fresh socket. (Start/Stop serialize on an internal mutex.)
class Server {
 public:
  Server(IndexService* service, ServerOptions options);
  ~Server();  // implies Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  Status Start();
  // Drains: stops accepting, half-closes connections so readers wind
  // down, lets workers finish every admitted request, then joins all
  // threads. Idempotent; safe without a prior Start.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // Bound port (valid after Start; the ephemeral answer for port = 0).
  uint16_t port() const { return port_; }

  // Lifetime counters (survive Stop, reset on Start).
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  uint64_t requests_handled() const {
    return requests_handled_.load(std::memory_order_relaxed);
  }
  uint64_t requests_rejected() const {
    return requests_rejected_.load(std::memory_order_relaxed);
  }

  // Live worker-queue observation for /statusz (0 when not running).
  size_t queue_depth() const {
    return queue_ != nullptr ? queue_->size() : 0;
  }
  size_t queue_capacity() const { return options_.global_queue; }
  // Currently open client connections.
  int64_t open_connections() const {
    return open_conns_now_.load(std::memory_order_relaxed);
  }
  // Ring of recent slow queries (empty unless slow_query_threshold > 0).
  const SlowQueryLog& slow_queries() const { return slow_log_; }

 private:
  struct Connection {
    Socket sock;
    uint64_t id = 0;
    std::mutex write_mutex;
    // Admitted (queued or executing) requests on this connection.
    std::atomic<uint32_t> inflight{0};
    std::atomic<bool> open{true};
    std::thread reader;
    std::atomic<bool> reader_done{false};
  };

  struct WorkItem {
    std::shared_ptr<Connection> conn;
    FrameHeader header;
    std::string payload;
    uint64_t enqueue_ns = 0;
  };

  void AcceptLoop();
  void ReaderLoop(const std::shared_ptr<Connection>& conn);
  void WorkerLoop();
  void Execute(WorkItem item);
  // Serializes one response frame onto the connection; on write failure
  // the connection is shut down (the reader notices EOF).
  void WriteResponse(const std::shared_ptr<Connection>& conn,
                     uint8_t opcode, uint64_t request_id,
                     std::string_view payload);
  void RejectRequest(const std::shared_ptr<Connection>& conn,
                     const FrameHeader& header, const char* reason,
                     Counter* counter);
  // Joins and forgets connections whose reader has exited (called from
  // the accept loop and from Stop).
  void ReapConnections(bool all);

  IndexService* service_;
  const ServerOptions options_;

  std::mutex lifecycle_mutex_;  // serializes Start/Stop
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  uint16_t port_ = 0;

  Listener listener_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::unique_ptr<BoundedQueue<WorkItem>> queue_;

  std::mutex conns_mutex_;
  std::vector<std::shared_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 0;

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> requests_handled_{0};
  std::atomic<uint64_t> requests_rejected_{0};

  // Metrics handles (null when no registry is installed).
  Counter* m_requests_ = nullptr;
  Counter* m_rejected_queue_full_ = nullptr;
  Counter* m_rejected_deadline_ = nullptr;
  Counter* m_frame_errors_ = nullptr;
  Counter* m_connections_ = nullptr;
  Counter* m_bytes_in_ = nullptr;
  Counter* m_bytes_out_ = nullptr;
  Gauge* m_inflight_ = nullptr;
  Gauge* m_open_conns_ = nullptr;
  // Admin-plane gauges sampled on admission / connection close.
  Gauge* m_queue_depth_ = nullptr;
  Gauge* m_connections_gauge_ = nullptr;
  // Per-opcode execution latency, indexed by request opcode value.
  std::array<LatencyHistogram*, 8> m_request_ns_{};
  // Request-lifecycle phase latencies: admission -> dequeue (queue_wait),
  // handler run (execute), response write (respond).
  LatencyHistogram* m_phase_queue_wait_ = nullptr;
  LatencyHistogram* m_phase_execute_ = nullptr;
  LatencyHistogram* m_phase_respond_ = nullptr;
  std::atomic<int64_t> inflight_now_{0};
  std::atomic<int64_t> open_conns_now_{0};

  SlowQueryLog slow_log_;
};

}  // namespace duplex::net

#endif  // DUPLEX_NET_SERVER_H_

#include "net/admin_server.h"

#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "util/log.h"
#include "util/metrics.h"

namespace duplex::net {

namespace {

constexpr size_t kMaxRequestBytes = 8 * 1024;

std::string BuildResponse(int code, const char* reason,
                          const char* content_type, std::string_view body) {
  std::string out;
  out.reserve(128 + body.size());
  out += "HTTP/1.0 ";
  out += std::to_string(code);
  out += " ";
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

// "GET /metrics HTTP/1.0" -> "/metrics"; empty on anything else (only
// GET is served — this plane is read-only by construction).
std::string ParseRequestPath(std::string_view request) {
  if (request.substr(0, 4) != "GET ") return "";
  const size_t path_start = 4;
  const size_t path_end = request.find(' ', path_start);
  if (path_end == std::string_view::npos) return "";
  std::string path(request.substr(path_start, path_end - path_start));
  // Strip a query string; none of the endpoints take parameters.
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  return path;
}

}  // namespace

// --- Readiness --------------------------------------------------------------

void Readiness::SetStage(std::string stage) {
  std::lock_guard<std::mutex> lock(mu_);
  ready_ = false;
  stage_ = std::move(stage);
}

void Readiness::SetReady() {
  std::lock_guard<std::mutex> lock(mu_);
  ready_ = true;
  stage_ = "ready";
}

bool Readiness::ready() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ready_;
}

std::string Readiness::stage() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stage_;
}

// --- AdminServer ------------------------------------------------------------

AdminServer::AdminServer(AdminServerOptions options)
    : options_(std::move(options)) {}

AdminServer::~AdminServer() { Stop(); }

Status AdminServer::Start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("admin server already running");
  }
  Result<Listener> listener = Listener::Bind(options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  port_ = listener_.port();
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  running_.store(true, std::memory_order_release);
  LogInfo("net.admin.start").U64("port", port_);
  return Status::OK();
}

void AdminServer::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  running_.store(false, std::memory_order_release);
  LogInfo("net.admin.stop")
      .U64("port", port_)
      .U64("requests_served", requests_served());
}

void AdminServer::AcceptLoop() {
  for (;;) {
    Result<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_acquire)) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      if (!listener_.valid()) return;
      continue;
    }
    ServeConnection(std::move(*accepted));
  }
}

void AdminServer::ServeConnection(Socket sock) {
  // Bounded read: a scrape request fits in one small buffer, and a
  // stalled or hostile client runs into the recv timeout rather than
  // holding the (single) admin thread forever.
  (void)sock.SetRecvTimeout(std::chrono::milliseconds(2000));
  std::string request;
  char buffer[2048];
  while (request.size() < kMaxRequestBytes) {
    Result<size_t> n = sock.RecvSome(buffer, sizeof(buffer));
    if (!n.ok() || *n == 0) break;
    request.append(buffer, *n);
    if (request.find("\r\n\r\n") != std::string::npos ||
        request.find("\n\n") != std::string::npos) {
      break;  // headers complete; no endpoint reads a body
    }
  }
  if (request.empty()) return;
  const std::string response = HandlePath(ParseRequestPath(request));
  (void)sock.SendAll(response.data(), response.size());
  requests_served_.fetch_add(1, std::memory_order_relaxed);
}

std::string AdminServer::HandlePath(const std::string& path) const {
  if (path == "/metrics") {
    std::string body;
    if (MetricsRegistry* registry = GlobalMetrics()) {
      body = registry->ExportPrometheus();
    }
    return BuildResponse(200, "OK", "text/plain; version=0.0.4", body);
  }
  if (path == "/metrics.json") {
    std::string body = "null\n";
    if (MetricsRegistry* registry = GlobalMetrics()) {
      body = registry->ExportJson();
    }
    return BuildResponse(200, "OK", "application/json", body);
  }
  if (path == "/healthz") {
    // Liveness: answering at all is the signal.
    return BuildResponse(200, "OK", "text/plain", "ok\n");
  }
  if (path == "/readyz") {
    if (options_.readiness == nullptr || options_.readiness->ready()) {
      return BuildResponse(200, "OK", "text/plain", "ready\n");
    }
    return BuildResponse(503, "Service Unavailable", "text/plain",
                         "not ready: " + options_.readiness->stage() + "\n");
  }
  if (path == "/statusz") {
    std::string body = "{}\n";
    if (options_.statusz) body = options_.statusz();
    return BuildResponse(200, "OK", "application/json", body);
  }
  if (path == "/slowz") {
    std::string body = "{\"total\": 0, \"capacity\": 0, "
                       "\"slow_queries\": []}\n";
    if (options_.slow_log != nullptr) body = options_.slow_log->ToJson();
    return BuildResponse(200, "OK", "application/json", body);
  }
  if (path.empty()) {
    return BuildResponse(405, "Method Not Allowed", "text/plain",
                         "only GET is served\n");
  }
  return BuildResponse(
      404, "Not Found", "text/plain",
      "unknown path; try /metrics /metrics.json /healthz /readyz "
      "/statusz /slowz\n");
}

// --- HttpGet ----------------------------------------------------------------

Result<HttpResponse> HttpGet(const std::string& host, uint16_t port,
                             const std::string& path,
                             std::chrono::milliseconds timeout) {
  Result<Socket> sock = Socket::Connect(host, port, timeout);
  if (!sock.ok()) return sock.status();
  DUPLEX_RETURN_IF_ERROR(sock->SetRecvTimeout(timeout));
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  DUPLEX_RETURN_IF_ERROR(sock->SendAll(request.data(), request.size()));
  std::string raw;
  char buffer[4096];
  for (;;) {
    Result<size_t> n = sock->RecvSome(buffer, sizeof(buffer));
    if (!n.ok()) return n.status();
    if (*n == 0) break;  // server closed: response complete
    raw.append(buffer, *n);
  }
  // "HTTP/1.0 200 OK\r\n...\r\n\r\n<body>"
  HttpResponse resp;
  const size_t space = raw.find(' ');
  if (space == std::string::npos || raw.substr(0, 5) != "HTTP/") {
    return Status::IoError("http: malformed status line");
  }
  resp.status_code = std::atoi(raw.c_str() + space + 1);
  size_t body_start = raw.find("\r\n\r\n");
  if (body_start != std::string::npos) {
    resp.body = raw.substr(body_start + 4);
  }
  return resp;
}

}  // namespace duplex::net

#ifndef DUPLEX_NET_ADMIN_SERVER_H_
#define DUPLEX_NET_ADMIN_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "net/slow_query_log.h"
#include "net/socket.h"
#include "util/status.h"

namespace duplex::net {

// Shared readiness flag between the daemon lifecycle and the admin
// plane's /readyz. The daemon narrates its startup ladder through
// SetStage ("opening wal", "recovering: checkpoint_tail", ...) so an
// operator curling /readyz during a long recovery sees WHERE the
// process is, then flips Ready once serving, and back to "draining" on
// SIGTERM so load balancers stop routing before the listener closes.
class Readiness {
 public:
  // Not ready, with a human-readable stage ("recovering: full_rebuild").
  void SetStage(std::string stage);
  void SetReady();
  // Not ready again; /readyz answers 503 "draining".
  void SetDraining() { SetStage("draining"); }

  bool ready() const;
  std::string stage() const;

 private:
  mutable std::mutex mu_;
  bool ready_ = false;
  std::string stage_ = "starting";
};

struct AdminServerOptions {
  uint16_t port = 0;  // 0 = ephemeral; read back via port()
  // All borrowed, all optional. Null readiness means "always ready",
  // null slow_log means /slowz serves an empty ring, null statusz means
  // a minimal uptime-only document.
  Readiness* readiness = nullptr;
  const SlowQueryLog* slow_log = nullptr;
  // Builds the /statusz JSON body on each scrape — the daemon assembles
  // it from whatever it can observe safely (server gauges, WAL status
  // under the submit mutex, checkpoint epochs).
  std::function<std::string()> statusz;
};

// The telemetry plane: a deliberately minimal HTTP/1.0 endpoint on its
// own listener and single thread, so an operator's curl and a Prometheus
// scrape never contend with the request-serving worker pool. Serves:
//
//   /metrics       Prometheus text exposition from the global registry
//   /metrics.json  the same registry as JSON
//   /healthz       liveness — 200 whenever the process can answer at all
//   /readyz        readiness — 200 once serving, 503 + stage otherwise
//   /statusz       operational snapshot (uptime, shards, queue, WAL...)
//   /slowz         recent slow queries, newest first
//
// One request per connection, Connection: close — no keep-alive, no
// routing table, no deps. Requests are handled serially on the accept
// thread; a stalled client is bounded by a recv timeout so it cannot
// wedge the plane.
class AdminServer {
 public:
  explicit AdminServer(AdminServerOptions options);
  ~AdminServer();  // implies Stop()

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  Status Start();
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return port_; }
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  // Routing, exposed for in-process tests: returns the full HTTP
  // response (status line through body) for a request path.
  std::string HandlePath(const std::string& path) const;

 private:
  void AcceptLoop();
  void ServeConnection(Socket sock);

  const AdminServerOptions options_;
  std::mutex lifecycle_mutex_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};
  uint16_t port_ = 0;
  Listener listener_;
  std::thread accept_thread_;
};

// Minimal HTTP GET for tests and duplexctl: one request, reads to EOF
// (the admin server closes after responding). Returns the parsed status
// code and body.
struct HttpResponse {
  int status_code = 0;
  std::string body;
};
Result<HttpResponse> HttpGet(
    const std::string& host, uint16_t port, const std::string& path,
    std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

}  // namespace duplex::net

#endif  // DUPLEX_NET_ADMIN_SERVER_H_

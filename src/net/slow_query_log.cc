#include "net/slow_query_log.h"

#include <sstream>

#include "net/frame.h"

namespace duplex::net {

SlowQueryLog::SlowQueryLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_ < 1024 ? capacity_ : 1024);
}

void SlowQueryLog::Record(const SlowQueryRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(record);
  } else {
    ring_[next_slot_] = record;
    next_slot_ = (next_slot_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<SlowQueryRecord> SlowQueryLog::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SlowQueryRecord> out;
  out.reserve(ring_.size());
  // ring_ is oldest-first starting at next_slot_ once wrapped; walk it
  // backwards so the caller sees newest first.
  for (size_t i = ring_.size(); i > 0; --i) {
    out.push_back(ring_[(next_slot_ + i - 1) % ring_.size()]);
  }
  return out;
}

uint64_t SlowQueryLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_slot_ = 0;
}

std::string SlowQueryLog::ToJson() const {
  const std::vector<SlowQueryRecord> recent = Recent();
  std::ostringstream os;
  os << "{\n  \"total\": " << total_recorded()
     << ",\n  \"capacity\": " << capacity_
     << ",\n  \"slow_queries\": [";
  bool first = true;
  for (const SlowQueryRecord& r : recent) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"request_id\": " << r.request_id
       << ", \"conn\": " << r.conn_id
       << ", \"op\": \"" << OpcodeName(r.opcode) << "\""
       << ", \"status\": " << static_cast<uint32_t>(r.status_code)
       << ", \"admitted_ns\": " << r.admitted_ns
       << ", \"queue_wait_ns\": " << r.queue_wait_ns
       << ", \"execute_ns\": " << r.execute_ns
       << ", \"respond_ns\": " << r.respond_ns
       << ", \"total_ns\": " << r.total_ns()
       << ", \"read_ops\": " << r.read_ops
       << ", \"cached_read_ops\": " << r.cached_read_ops
       << ", \"postings_read\": " << r.postings_read
       << ", \"response_bytes\": " << r.response_bytes << "}";
  }
  os << (first ? "" : "\n  ") << "]\n}\n";
  return os.str();
}

}  // namespace duplex::net

#ifndef DUPLEX_NET_FRAME_H_
#define DUPLEX_NET_FRAME_H_

#include <cstdint>
#include <cstring>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "ir/query_eval.h"
#include "ir/vector_query.h"
#include "util/status.h"
#include "util/types.h"

namespace duplex::net {

// --- Wire protocol (version 1) ---------------------------------------------
//
// Every message on a duplexd connection is one length-prefixed frame:
// a fixed 24-byte header followed by `payload_len` payload bytes. All
// integers are little-endian. See DESIGN.md § 10 for the layout table.
//
//   offset  size  field
//        0     4  magic "DPLX"
//        4     1  version (1)
//        5     1  opcode
//        6     2  flags (must be 0 in v1)
//        8     8  request id (echoed verbatim in the response)
//       16     4  payload length
//       20     4  reserved (must be 0 in v1)
//
// Requests flow client -> server; the response to opcode K carries opcode
// K | 0x80 and the request's id, so clients may pipeline and match
// replies out of band. A frame the server cannot even parse (bad magic,
// unknown version, nonzero flags/reserved, oversized declared length)
// draws one kGoAway response with a typed status, then the connection is
// closed — a garbage stream never wedges a worker.

inline constexpr uint8_t kFrameMagic[4] = {'D', 'P', 'L', 'X'};
inline constexpr uint8_t kFrameVersion = 1;
inline constexpr size_t kFrameHeaderSize = 24;
// Hard ceiling a decoder ever accepts; servers usually configure less.
inline constexpr uint32_t kMaxPayloadCeiling = 64u << 20;
inline constexpr uint32_t kDefaultMaxPayload = 4u << 20;

enum class Opcode : uint8_t {
  kPing = 0x01,
  kBooleanQuery = 0x02,
  kVectorQuery = 0x03,
  kSubmitDocuments = 0x04,
  kStats = 0x05,
  // Immediate-visibility ingest: documents are durable AND queryable at
  // the ack (delta tier), applied to the disk index by the background
  // drain. A full delta answers with typed kResourceExhausted (BUSY).
  kSubmitLive = 0x06,
  // Server -> client only: typed refusal of an unparseable frame, sent
  // once before the connection closes. request id is echoed when the
  // header decoded, 0 otherwise.
  kGoAway = 0x7F,
};

inline constexpr uint8_t kResponseBit = 0x80;

// True for the request opcodes a server executes.
bool IsRequestOpcode(uint8_t op);
// True for any opcode that may legally appear in a frame header
// (requests, their responses, kGoAway and its response form).
bool IsKnownOpcode(uint8_t op);
const char* OpcodeName(uint8_t op);

struct FrameHeader {
  uint8_t version = kFrameVersion;
  uint8_t opcode = 0;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
};

struct Frame {
  FrameHeader header;
  std::string payload;
};

// Appends the 24 header bytes for `header` to `out`.
void EncodeFrameHeader(const FrameHeader& header, std::string* out);
// Appends a full frame (header + payload).
void EncodeFrame(uint8_t opcode, uint64_t request_id,
                 std::string_view payload, std::string* out);

// Decodes exactly one header from `bytes` (>= kFrameHeaderSize bytes are
// required — fewer is typed kCorruption, mirroring DecodeChunkHeader).
// Magic/version/flags/reserved violations are kCorruption; an unknown
// opcode or a declared payload above `max_payload` is kInvalidArgument.
Result<FrameHeader> DecodeFrameHeader(
    std::string_view bytes, uint32_t max_payload = kDefaultMaxPayload);

// Incremental frame decoder for a byte stream: feed arbitrary splits
// (down to one byte at a time), pop complete frames. Any header error is
// sticky — once the stream is corrupt there is no resynchronization
// point, so the connection must be torn down. Incomplete input is never
// an error.
class FrameAssembler {
 public:
  explicit FrameAssembler(uint32_t max_payload = kDefaultMaxPayload)
      : max_payload_(max_payload) {}

  // Appends bytes; decodes as many complete frames as they finish.
  Status Feed(std::string_view bytes);

  bool HasFrame() const { return !frames_.empty(); }
  // Requires HasFrame().
  Frame Next();

  // First error Feed hit (sticky; later Feeds return it unchanged).
  const Status& error() const { return error_; }
  // Bytes buffered toward the next, still-incomplete frame.
  size_t pending_bytes() const { return buffer_.size(); }

 private:
  uint32_t max_payload_;
  std::string buffer_;
  std::deque<Frame> frames_;
  Status error_;
};

// --- Little-endian payload primitives ---------------------------------------

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutF64(std::string* out, double v);
void PutString(std::string* out, std::string_view s);  // u32 length prefix

// Consuming readers: advance `*in` past the value; false = underrun.
bool GetU8(std::string_view* in, uint8_t* v);
bool GetU32(std::string_view* in, uint32_t* v);
bool GetU64(std::string_view* in, uint64_t* v);
bool GetF64(std::string_view* in, double* v);
bool GetString(std::string_view* in, std::string* s);

// --- Request payloads -------------------------------------------------------
//
// Every Decode* is total over arbitrary bytes: malformed input (underrun,
// bogus counts, trailing garbage) is typed kCorruption, never a crash —
// the frame fuzz test sweeps these directly.

struct BooleanQueryRequest {
  std::string query;
};

struct VectorQueryRequest {
  uint32_t k = 10;
  ir::VectorQuery query;
};

struct SubmitDocumentsRequest {
  std::vector<std::string> documents;
};

struct SubmitLiveRequest {
  std::vector<std::string> documents;
};

std::string EncodeBooleanQueryRequest(const BooleanQueryRequest& req);
Result<BooleanQueryRequest> DecodeBooleanQueryRequest(std::string_view in);

std::string EncodeVectorQueryRequest(const VectorQueryRequest& req);
Result<VectorQueryRequest> DecodeVectorQueryRequest(std::string_view in);

std::string EncodeSubmitDocumentsRequest(const SubmitDocumentsRequest& req);
Result<SubmitDocumentsRequest> DecodeSubmitDocumentsRequest(
    std::string_view in);

std::string EncodeSubmitLiveRequest(const SubmitLiveRequest& req);
Result<SubmitLiveRequest> DecodeSubmitLiveRequest(std::string_view in);

// --- Response payloads ------------------------------------------------------
//
// Every response payload starts with a status prelude (u8 code + message
// string). On a non-OK code the body is empty.

void EncodeResponseStatus(const Status& status, std::string* out);
// Decodes the prelude into `*decoded`, leaving `*in` at the body. The
// return value is the transport-level verdict (kCorruption on a
// malformed prelude); `*decoded` is the handler's status.
Status DecodeResponseStatus(std::string_view* in, Status* decoded);

struct BooleanQueryResponse {
  ir::QueryResult result;
};

struct VectorQueryResponse {
  ir::VectorQueryResult result;
};

struct SubmitDocumentsResponse {
  DocId first_doc = 0;
  uint32_t accepted = 0;
  // WAL batch id when the server logs updates, 0 otherwise.
  uint64_t wal_batch_id = 0;
};

struct SubmitLiveResponse {
  DocId first_doc = 0;
  uint32_t accepted = 0;
  // WAL batch id when the server logs updates, 0 otherwise.
  uint64_t wal_batch_id = 0;
  // Delta epoch the documents landed in and the tier depth after the
  // insert — the client-visible backpressure signal.
  uint64_t epoch = 0;
  uint64_t delta_docs = 0;
};

struct StatsResponse {
  std::string json;
};

std::string EncodeBooleanQueryResponse(const BooleanQueryResponse& resp);
Result<BooleanQueryResponse> DecodeBooleanQueryResponse(std::string_view in);

std::string EncodeVectorQueryResponse(const VectorQueryResponse& resp);
Result<VectorQueryResponse> DecodeVectorQueryResponse(std::string_view in);

std::string EncodeSubmitDocumentsResponse(const SubmitDocumentsResponse& r);
Result<SubmitDocumentsResponse> DecodeSubmitDocumentsResponse(
    std::string_view in);

std::string EncodeSubmitLiveResponse(const SubmitLiveResponse& resp);
Result<SubmitLiveResponse> DecodeSubmitLiveResponse(std::string_view in);

std::string EncodeStatsResponse(const StatsResponse& resp);
Result<StatsResponse> DecodeStatsResponse(std::string_view in);

}  // namespace duplex::net

#endif  // DUPLEX_NET_FRAME_H_

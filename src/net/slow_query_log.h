#ifndef DUPLEX_NET_SLOW_QUERY_LOG_H_
#define DUPLEX_NET_SLOW_QUERY_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace duplex::net {

// One request that crossed the slow-query threshold, stamped with the
// full lifecycle breakdown (admission -> dequeue -> execute -> respond)
// and the index-cost counters the handler reported. Timestamps are
// MonotonicNanos(), so they line up with trace spans and histograms.
struct SlowQueryRecord {
  uint64_t request_id = 0;
  uint64_t conn_id = 0;
  uint8_t opcode = 0;
  uint8_t status_code = 0;  // duplex::StatusCode of the handler outcome
  uint64_t admitted_ns = 0;  // MonotonicNanos at admission
  uint64_t queue_wait_ns = 0;
  uint64_t execute_ns = 0;
  uint64_t respond_ns = 0;
  // Index cost counters (queries only; zero for ping/submit/stats).
  uint64_t read_ops = 0;
  uint64_t cached_read_ops = 0;
  uint64_t postings_read = 0;
  uint32_t response_bytes = 0;

  uint64_t total_ns() const {
    return queue_wait_ns + execute_ns + respond_ns;
  }
};

// Bounded ring of the most recent slow queries, written by worker
// threads and read by the admin plane's /slowz. Recording is one mutexed
// struct copy — cheap, and only paid by requests already slow enough to
// qualify.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity = 128);

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  void Record(const SlowQueryRecord& record);

  // Newest first (the order an operator wants: what just got slow?).
  std::vector<SlowQueryRecord> Recent() const;
  // Slow queries ever recorded (>= Recent().size(); the ring overwrites).
  uint64_t total_recorded() const;
  size_t capacity() const { return capacity_; }
  void Clear();

  // {"total": N, "capacity": C, "slow_queries": [{...} newest first]}.
  std::string ToJson() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SlowQueryRecord> ring_;
  size_t next_slot_ = 0;
  uint64_t total_ = 0;
};

}  // namespace duplex::net

#endif  // DUPLEX_NET_SLOW_QUERY_LOG_H_

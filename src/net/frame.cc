#include "net/frame.h"

#include <bit>
#include <limits>

namespace duplex::net {

namespace {

Status Corrupt(std::string msg) { return Status::Corruption(std::move(msg)); }

// Status codes cross the wire as their enum value; anything outside the
// defined range is a protocol violation, not a silent kInternal.
constexpr uint8_t kMaxStatusCode = static_cast<uint8_t>(StatusCode::kIoError);

}  // namespace

bool IsRequestOpcode(uint8_t op) {
  switch (static_cast<Opcode>(op)) {
    case Opcode::kPing:
    case Opcode::kBooleanQuery:
    case Opcode::kVectorQuery:
    case Opcode::kSubmitDocuments:
    case Opcode::kStats:
    case Opcode::kSubmitLive:
      return true;
    default:
      return false;
  }
}

bool IsKnownOpcode(uint8_t op) {
  const uint8_t base = op & static_cast<uint8_t>(~kResponseBit);
  if (base == static_cast<uint8_t>(Opcode::kGoAway)) return true;
  return IsRequestOpcode(base);
}

const char* OpcodeName(uint8_t op) {
  switch (static_cast<Opcode>(op & ~kResponseBit)) {
    case Opcode::kPing:
      return "ping";
    case Opcode::kBooleanQuery:
      return "boolean";
    case Opcode::kVectorQuery:
      return "vector";
    case Opcode::kSubmitDocuments:
      return "submit";
    case Opcode::kStats:
      return "stats";
    case Opcode::kSubmitLive:
      return "submit_live";
    case Opcode::kGoAway:
      return "goaway";
  }
  return "unknown";
}

// --- Primitives -------------------------------------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutF64(std::string* out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool GetU8(std::string_view* in, uint8_t* v) {
  if (in->size() < 1) return false;
  *v = static_cast<uint8_t>((*in)[0]);
  in->remove_prefix(1);
  return true;
}

bool GetU32(std::string_view* in, uint32_t* v) {
  if (in->size() < 4) return false;
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<uint32_t>(static_cast<uint8_t>((*in)[i])) << (8 * i);
  }
  *v = r;
  in->remove_prefix(4);
  return true;
}

bool GetU64(std::string_view* in, uint64_t* v) {
  if (in->size() < 8) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<uint8_t>((*in)[i])) << (8 * i);
  }
  *v = r;
  in->remove_prefix(8);
  return true;
}

bool GetF64(std::string_view* in, double* v) {
  uint64_t bits = 0;
  if (!GetU64(in, &bits)) return false;
  *v = std::bit_cast<double>(bits);
  return true;
}

bool GetString(std::string_view* in, std::string* s) {
  uint32_t len = 0;
  if (!GetU32(in, &len)) return false;
  if (in->size() < len) return false;
  s->assign(in->data(), len);
  in->remove_prefix(len);
  return true;
}

// --- Frame header -----------------------------------------------------------

void EncodeFrameHeader(const FrameHeader& header, std::string* out) {
  out->append(reinterpret_cast<const char*>(kFrameMagic), 4);
  PutU8(out, header.version);
  PutU8(out, header.opcode);
  PutU8(out, 0);  // flags lo
  PutU8(out, 0);  // flags hi
  PutU64(out, header.request_id);
  PutU32(out, header.payload_len);
  PutU32(out, 0);  // reserved
}

void EncodeFrame(uint8_t opcode, uint64_t request_id,
                 std::string_view payload, std::string* out) {
  FrameHeader header;
  header.opcode = opcode;
  header.request_id = request_id;
  header.payload_len = static_cast<uint32_t>(payload.size());
  EncodeFrameHeader(header, out);
  out->append(payload);
}

Result<FrameHeader> DecodeFrameHeader(std::string_view bytes,
                                      uint32_t max_payload) {
  if (bytes.size() < kFrameHeaderSize) {
    return Corrupt("truncated frame header: " +
                   std::to_string(bytes.size()) + " of " +
                   std::to_string(kFrameHeaderSize) + " bytes");
  }
  if (std::memcmp(bytes.data(), kFrameMagic, 4) != 0) {
    return Corrupt("bad frame magic");
  }
  std::string_view rest = bytes.substr(4);
  FrameHeader header;
  uint8_t flags_lo = 0, flags_hi = 0;
  uint32_t reserved = 0;
  GetU8(&rest, &header.version);
  GetU8(&rest, &header.opcode);
  GetU8(&rest, &flags_lo);
  GetU8(&rest, &flags_hi);
  GetU64(&rest, &header.request_id);
  GetU32(&rest, &header.payload_len);
  GetU32(&rest, &reserved);
  if (header.version != kFrameVersion) {
    return Corrupt("unknown frame version " +
                   std::to_string(header.version));
  }
  if (flags_lo != 0 || flags_hi != 0 || reserved != 0) {
    return Corrupt("nonzero flags/reserved in v1 frame");
  }
  if (!IsKnownOpcode(header.opcode)) {
    return Status::InvalidArgument("unknown opcode " +
                                   std::to_string(header.opcode));
  }
  if (header.payload_len > max_payload ||
      header.payload_len > kMaxPayloadCeiling) {
    return Status::InvalidArgument(
        "oversized frame: declared " + std::to_string(header.payload_len) +
        " bytes, limit " + std::to_string(max_payload));
  }
  return header;
}

Status FrameAssembler::Feed(std::string_view bytes) {
  if (!error_.ok()) return error_;
  buffer_.append(bytes);
  while (buffer_.size() >= kFrameHeaderSize) {
    Result<FrameHeader> header =
        DecodeFrameHeader(buffer_, max_payload_);
    if (!header.ok()) {
      error_ = header.status();
      buffer_.clear();
      return error_;
    }
    const size_t total = kFrameHeaderSize + header->payload_len;
    if (buffer_.size() < total) break;  // payload still arriving
    Frame frame;
    frame.header = *header;
    frame.payload = buffer_.substr(kFrameHeaderSize, header->payload_len);
    buffer_.erase(0, total);
    frames_.push_back(std::move(frame));
  }
  return Status::OK();
}

Frame FrameAssembler::Next() {
  Frame frame = std::move(frames_.front());
  frames_.pop_front();
  return frame;
}

// --- Requests ---------------------------------------------------------------

std::string EncodeBooleanQueryRequest(const BooleanQueryRequest& req) {
  std::string out;
  PutString(&out, req.query);
  return out;
}

Result<BooleanQueryRequest> DecodeBooleanQueryRequest(std::string_view in) {
  BooleanQueryRequest req;
  if (!GetString(&in, &req.query)) {
    return Corrupt("boolean request underrun");
  }
  if (!in.empty()) return Corrupt("boolean request trailing bytes");
  return req;
}

std::string EncodeVectorQueryRequest(const VectorQueryRequest& req) {
  std::string out;
  PutU32(&out, req.k);
  PutU32(&out, static_cast<uint32_t>(req.query.terms.size()));
  for (const auto& term : req.query.terms) {
    PutString(&out, term.term);
    PutF64(&out, term.weight);
  }
  return out;
}

Result<VectorQueryRequest> DecodeVectorQueryRequest(std::string_view in) {
  VectorQueryRequest req;
  uint32_t n = 0;
  if (!GetU32(&in, &req.k) || !GetU32(&in, &n)) {
    return Corrupt("vector request underrun");
  }
  // Each term needs at least its length prefix plus the weight.
  if (n > in.size() / 12 + 1) return Corrupt("vector request bogus count");
  req.query.terms.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ir::VectorQuery::TermWeight term;
    if (!GetString(&in, &term.term) || !GetF64(&in, &term.weight)) {
      return Corrupt("vector request term underrun");
    }
    req.query.terms.push_back(std::move(term));
  }
  if (!in.empty()) return Corrupt("vector request trailing bytes");
  return req;
}

std::string EncodeSubmitDocumentsRequest(const SubmitDocumentsRequest& req) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(req.documents.size()));
  for (const std::string& doc : req.documents) PutString(&out, doc);
  return out;
}

Result<SubmitDocumentsRequest> DecodeSubmitDocumentsRequest(
    std::string_view in) {
  SubmitDocumentsRequest req;
  uint32_t n = 0;
  if (!GetU32(&in, &n)) return Corrupt("submit request underrun");
  if (n > in.size() / 4 + 1) return Corrupt("submit request bogus count");
  req.documents.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string doc;
    if (!GetString(&in, &doc)) return Corrupt("submit document underrun");
    req.documents.push_back(std::move(doc));
  }
  if (!in.empty()) return Corrupt("submit request trailing bytes");
  return req;
}

std::string EncodeSubmitLiveRequest(const SubmitLiveRequest& req) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(req.documents.size()));
  for (const std::string& doc : req.documents) PutString(&out, doc);
  return out;
}

Result<SubmitLiveRequest> DecodeSubmitLiveRequest(std::string_view in) {
  SubmitLiveRequest req;
  uint32_t n = 0;
  if (!GetU32(&in, &n)) return Corrupt("submit-live request underrun");
  if (n > in.size() / 4 + 1) {
    return Corrupt("submit-live request bogus count");
  }
  req.documents.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string doc;
    if (!GetString(&in, &doc)) {
      return Corrupt("submit-live document underrun");
    }
    req.documents.push_back(std::move(doc));
  }
  if (!in.empty()) return Corrupt("submit-live request trailing bytes");
  return req;
}

// --- Responses --------------------------------------------------------------

void EncodeResponseStatus(const Status& status, std::string* out) {
  PutU8(out, static_cast<uint8_t>(status.code()));
  PutString(out, status.message());
}

Status DecodeResponseStatus(std::string_view* in, Status* decoded) {
  uint8_t code = 0;
  std::string message;
  if (!GetU8(in, &code) || !GetString(in, &message)) {
    return Corrupt("response status underrun");
  }
  if (code > kMaxStatusCode) {
    return Corrupt("response carries unknown status code " +
                   std::to_string(code));
  }
  *decoded = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

namespace {

void PutQueryCost(std::string* out, uint64_t read_ops, uint64_t cached,
                  uint64_t postings, uint64_t missing) {
  PutU64(out, read_ops);
  PutU64(out, cached);
  PutU64(out, postings);
  PutU64(out, missing);
}

bool GetQueryCost(std::string_view* in, uint64_t* read_ops, uint64_t* cached,
                  uint64_t* postings, uint64_t* missing) {
  return GetU64(in, read_ops) && GetU64(in, cached) &&
         GetU64(in, postings) && GetU64(in, missing);
}

}  // namespace

std::string EncodeBooleanQueryResponse(const BooleanQueryResponse& resp) {
  std::string out;
  EncodeResponseStatus(Status::OK(), &out);
  const ir::QueryResult& r = resp.result;
  PutQueryCost(&out, r.read_ops, r.cached_read_ops, r.postings_read,
               r.missing_terms);
  PutU32(&out, static_cast<uint32_t>(r.docs.size()));
  for (const DocId doc : r.docs) PutU32(&out, doc);
  return out;
}

Result<BooleanQueryResponse> DecodeBooleanQueryResponse(
    std::string_view in) {
  Status handler_status;
  DUPLEX_RETURN_IF_ERROR(DecodeResponseStatus(&in, &handler_status));
  if (!handler_status.ok()) return handler_status;
  BooleanQueryResponse resp;
  ir::QueryResult& r = resp.result;
  uint32_t n = 0;
  if (!GetQueryCost(&in, &r.read_ops, &r.cached_read_ops, &r.postings_read,
                    &r.missing_terms) ||
      !GetU32(&in, &n)) {
    return Corrupt("boolean response underrun");
  }
  if (n > in.size() / 4) return Corrupt("boolean response bogus count");
  r.docs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t doc = 0;
    if (!GetU32(&in, &doc)) return Corrupt("boolean response doc underrun");
    r.docs.push_back(doc);
  }
  if (!in.empty()) return Corrupt("boolean response trailing bytes");
  return resp;
}

std::string EncodeVectorQueryResponse(const VectorQueryResponse& resp) {
  std::string out;
  EncodeResponseStatus(Status::OK(), &out);
  const ir::VectorQueryResult& r = resp.result;
  PutQueryCost(&out, r.read_ops, r.cached_read_ops, r.postings_read,
               r.missing_terms);
  PutU32(&out, static_cast<uint32_t>(r.top.size()));
  for (const ir::ScoredDoc& d : r.top) {
    PutU32(&out, d.doc);
    PutF64(&out, d.score);
  }
  return out;
}

Result<VectorQueryResponse> DecodeVectorQueryResponse(std::string_view in) {
  Status handler_status;
  DUPLEX_RETURN_IF_ERROR(DecodeResponseStatus(&in, &handler_status));
  if (!handler_status.ok()) return handler_status;
  VectorQueryResponse resp;
  ir::VectorQueryResult& r = resp.result;
  uint32_t n = 0;
  if (!GetQueryCost(&in, &r.read_ops, &r.cached_read_ops, &r.postings_read,
                    &r.missing_terms) ||
      !GetU32(&in, &n)) {
    return Corrupt("vector response underrun");
  }
  if (n > in.size() / 12) return Corrupt("vector response bogus count");
  r.top.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ir::ScoredDoc d;
    if (!GetU32(&in, &d.doc) || !GetF64(&in, &d.score)) {
      return Corrupt("vector response doc underrun");
    }
    r.top.push_back(d);
  }
  if (!in.empty()) return Corrupt("vector response trailing bytes");
  return resp;
}

std::string EncodeSubmitDocumentsResponse(
    const SubmitDocumentsResponse& resp) {
  std::string out;
  EncodeResponseStatus(Status::OK(), &out);
  PutU32(&out, resp.first_doc);
  PutU32(&out, resp.accepted);
  PutU64(&out, resp.wal_batch_id);
  return out;
}

Result<SubmitDocumentsResponse> DecodeSubmitDocumentsResponse(
    std::string_view in) {
  Status handler_status;
  DUPLEX_RETURN_IF_ERROR(DecodeResponseStatus(&in, &handler_status));
  if (!handler_status.ok()) return handler_status;
  SubmitDocumentsResponse resp;
  if (!GetU32(&in, &resp.first_doc) || !GetU32(&in, &resp.accepted) ||
      !GetU64(&in, &resp.wal_batch_id)) {
    return Corrupt("submit response underrun");
  }
  if (!in.empty()) return Corrupt("submit response trailing bytes");
  return resp;
}

std::string EncodeSubmitLiveResponse(const SubmitLiveResponse& resp) {
  std::string out;
  EncodeResponseStatus(Status::OK(), &out);
  PutU32(&out, resp.first_doc);
  PutU32(&out, resp.accepted);
  PutU64(&out, resp.wal_batch_id);
  PutU64(&out, resp.epoch);
  PutU64(&out, resp.delta_docs);
  return out;
}

Result<SubmitLiveResponse> DecodeSubmitLiveResponse(std::string_view in) {
  Status handler_status;
  DUPLEX_RETURN_IF_ERROR(DecodeResponseStatus(&in, &handler_status));
  if (!handler_status.ok()) return handler_status;
  SubmitLiveResponse resp;
  if (!GetU32(&in, &resp.first_doc) || !GetU32(&in, &resp.accepted) ||
      !GetU64(&in, &resp.wal_batch_id) || !GetU64(&in, &resp.epoch) ||
      !GetU64(&in, &resp.delta_docs)) {
    return Corrupt("submit-live response underrun");
  }
  if (!in.empty()) return Corrupt("submit-live response trailing bytes");
  return resp;
}

std::string EncodeStatsResponse(const StatsResponse& resp) {
  std::string out;
  EncodeResponseStatus(Status::OK(), &out);
  PutString(&out, resp.json);
  return out;
}

Result<StatsResponse> DecodeStatsResponse(std::string_view in) {
  Status handler_status;
  DUPLEX_RETURN_IF_ERROR(DecodeResponseStatus(&in, &handler_status));
  if (!handler_status.ok()) return handler_status;
  StatsResponse resp;
  if (!GetString(&in, &resp.json)) return Corrupt("stats response underrun");
  if (!in.empty()) return Corrupt("stats response trailing bytes");
  return resp;
}

}  // namespace duplex::net

#include "net/server.h"

#include <utility>

#include "util/log.h"
#include "util/tracer.h"

namespace duplex::net {

namespace {

constexpr size_t kRecvChunk = 64 * 1024;

// 1-in-N per-worker sampling for request lifecycle spans (first request
// on each worker included, so short runs still produce spans). Slow
// requests bypass the sampler and always trace.
constexpr uint32_t kRequestSpanSampleEvery = 64;

}  // namespace

Server::Server(IndexService* service, ServerOptions options)
    : service_(service),
      options_(options),
      slow_log_(options.slow_log_capacity) {
  m_requests_ = GlobalCounter("duplex_net_requests_total",
                              "Requests executed by the worker pool");
  m_rejected_queue_full_ =
      GlobalCounter("duplex_net_rejected_total",
                    "Requests shed by admission control",
                    "reason=\"queue_full\"");
  m_rejected_deadline_ =
      GlobalCounter("duplex_net_rejected_total",
                    "Requests shed by admission control",
                    "reason=\"deadline\"");
  m_frame_errors_ = GlobalCounter(
      "duplex_net_frame_errors_total",
      "Unparseable frames answered with GoAway + connection close");
  m_connections_ = GlobalCounter("duplex_net_connections_total",
                                 "Connections accepted");
  m_bytes_in_ =
      GlobalCounter("duplex_net_bytes_total", "Socket bytes", "dir=\"in\"");
  m_bytes_out_ =
      GlobalCounter("duplex_net_bytes_total", "Socket bytes", "dir=\"out\"");
  m_inflight_ = GlobalGauge("duplex_net_inflight",
                            "Requests admitted but not yet answered");
  m_open_conns_ = GlobalGauge("duplex_net_open_connections",
                              "Currently open client connections");
  m_queue_depth_ = GlobalGauge("duplex_net_queue_depth",
                               "Worker-queue depth sampled at admission");
  m_connections_gauge_ = GlobalGauge(
      "duplex_net_connections", "Currently open client connections");
  for (const Opcode op :
       {Opcode::kPing, Opcode::kBooleanQuery, Opcode::kVectorQuery,
        Opcode::kSubmitDocuments, Opcode::kStats, Opcode::kSubmitLive}) {
    const uint8_t code = static_cast<uint8_t>(op);
    m_request_ns_[code] = GlobalLatency(
        "duplex_net_request_ns", "Per-opcode request execution latency",
        std::string("op=\"") + OpcodeName(code) + "\"");
  }
  m_phase_queue_wait_ =
      GlobalLatency("duplex_net_phase_ns", "Request lifecycle phase latency",
                    LabelPair("phase", "queue_wait"));
  m_phase_execute_ =
      GlobalLatency("duplex_net_phase_ns", "Request lifecycle phase latency",
                    LabelPair("phase", "execute"));
  m_phase_respond_ =
      GlobalLatency("duplex_net_phase_ns", "Request lifecycle phase latency",
                    LabelPair("phase", "respond"));
}

Server::~Server() { Stop(); }

Status Server::Start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  Result<Listener> listener = Listener::Bind(options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  port_ = listener_.port();
  stopping_.store(false, std::memory_order_release);
  connections_accepted_.store(0, std::memory_order_relaxed);
  requests_handled_.store(0, std::memory_order_relaxed);
  requests_rejected_.store(0, std::memory_order_relaxed);
  queue_ = std::make_unique<BoundedQueue<WorkItem>>(options_.global_queue);
  workers_.reserve(options_.num_workers);
  for (uint32_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  running_.store(true, std::memory_order_release);
  LogInfo("net.server.start")
      .U64("port", port_)
      .U64("workers", options_.num_workers)
      .U64("global_queue", options_.global_queue)
      .I64("slow_query_ms",
           static_cast<int64_t>(options_.slow_query_threshold.count()));
  return Status::OK();
}

void Server::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  if (!running_.load(std::memory_order_acquire)) return;  // idempotent
  stopping_.store(true, std::memory_order_release);

  // 1. No new connections: close the listener, join the accept loop.
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. No new requests: half-close every connection's read side so the
  //    reader threads see EOF after the frames already in flight, then
  //    join them. Responses can still be written.
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const auto& conn : conns_) conn->sock.ShutdownRead();
  }
  ReapConnections(/*all=*/true);

  // 3. Drain: close the queue (admitted work still pops) and join the
  //    workers once every in-flight request has been answered.
  queue_->Close();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();

  running_.store(false, std::memory_order_release);
  if (m_inflight_ != nullptr) m_inflight_->Set(0);
  if (m_open_conns_ != nullptr) m_open_conns_->Set(0);
  if (m_queue_depth_ != nullptr) m_queue_depth_->Set(0);
  if (m_connections_gauge_ != nullptr) m_connections_gauge_->Set(0);
  LogInfo("net.server.stop")
      .U64("port", port_)
      .U64("requests_handled", requests_handled())
      .U64("requests_rejected", requests_rejected())
      .U64("connections_accepted", connections_accepted());
}

void Server::AcceptLoop() {
  for (;;) {
    Result<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (stopping_.load(std::memory_order_acquire)) return;
      // Transient accept failure (EMFILE and friends): brief pause, keep
      // serving existing connections.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      if (!listener_.valid()) return;
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->sock = std::move(*accepted);
    (void)conn->sock.SetNoDelay();
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      conn->id = ++next_conn_id_;
      conns_.push_back(conn);
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (m_connections_ != nullptr) m_connections_->Inc();
    const int64_t open =
        open_conns_now_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (m_open_conns_ != nullptr) {
      m_open_conns_->Set(static_cast<double>(open));
    }
    if (m_connections_gauge_ != nullptr) {
      m_connections_gauge_->Set(static_cast<double>(open));
    }
    conn->reader = std::thread([this, conn] {
      ReaderLoop(conn);
      conn->reader_done.store(true, std::memory_order_release);
      const int64_t now_open =
          open_conns_now_.fetch_sub(1, std::memory_order_relaxed) - 1;
      if (m_open_conns_ != nullptr) {
        m_open_conns_->Set(static_cast<double>(now_open));
      }
      if (m_connections_gauge_ != nullptr) {
        m_connections_gauge_->Set(static_cast<double>(now_open));
      }
    });
    ReapConnections(/*all=*/false);
  }
}

void Server::ReaderLoop(const std::shared_ptr<Connection>& conn) {
  FrameAssembler assembler(options_.max_payload_bytes);
  std::vector<uint8_t> buffer(kRecvChunk);
  uint64_t last_request_id = 0;
  while (conn->open.load(std::memory_order_acquire)) {
    Result<size_t> n = conn->sock.RecvSome(buffer.data(), buffer.size());
    if (!n.ok() || *n == 0) break;  // EOF, reset, or shutdown
    if (m_bytes_in_ != nullptr) m_bytes_in_->Inc(*n);
    const Status fed = assembler.Feed(std::string_view(
        reinterpret_cast<const char*>(buffer.data()), *n));
    while (assembler.HasFrame() &&
           conn->open.load(std::memory_order_acquire)) {
      Frame frame = assembler.Next();
      last_request_id = frame.header.request_id;
      if (!IsRequestOpcode(frame.header.opcode)) {
        if (m_frame_errors_ != nullptr) m_frame_errors_->Inc();
        LogWarn("net.goaway")
            .U64("conn", conn->id)
            .U64("opcode", frame.header.opcode)
            .Str("reason", "frame opcode is not a request");
        std::string payload;
        EncodeResponseStatus(
            Status::InvalidArgument("frame opcode is not a request"),
            &payload);
        WriteResponse(conn, static_cast<uint8_t>(Opcode::kGoAway),
                      frame.header.request_id, payload);
        conn->open.store(false, std::memory_order_release);
        // The stream is refused: full shutdown so the peer sees EOF now
        // rather than when the connection is reaped.
        conn->sock.ShutdownBoth();
        break;
      }
      if (stopping_.load(std::memory_order_acquire)) {
        RejectRequest(conn, frame.header, "server stopping",
                      m_rejected_queue_full_);
        continue;
      }
      // Admission control: per-connection bound first, then the shared
      // worker queue. Both full states answer typed BUSY immediately —
      // the queue never grows without bound and the reader never blocks.
      if (conn->inflight.load(std::memory_order_acquire) >=
          options_.per_connection_queue) {
        RejectRequest(conn, frame.header, "per-connection queue full",
                      m_rejected_queue_full_);
        continue;
      }
      WorkItem item;
      item.conn = conn;
      item.header = frame.header;
      item.payload = std::move(frame.payload);
      item.enqueue_ns = MonotonicNanos();
      conn->inflight.fetch_add(1, std::memory_order_acq_rel);
      const int64_t inflight =
          inflight_now_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (m_inflight_ != nullptr) {
        m_inflight_->Set(static_cast<double>(inflight));
      }
      if (!queue_->TryPush(std::move(item))) {
        conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
        inflight_now_.fetch_sub(1, std::memory_order_relaxed);
        RejectRequest(conn, frame.header, "server queue full",
                      m_rejected_queue_full_);
      } else if (m_queue_depth_ != nullptr) {
        m_queue_depth_->Set(static_cast<double>(queue_->size()));
      }
    }
    if (!fed.ok()) {
      // Garbage on the wire: answer once, typed, then hang up. There is
      // no resynchronization point in a corrupt length-prefixed stream.
      if (m_frame_errors_ != nullptr) m_frame_errors_->Inc();
      LogWarn("net.goaway")
          .U64("conn", conn->id)
          .Str("reason", fed.message());
      std::string payload;
      EncodeResponseStatus(fed, &payload);
      WriteResponse(conn, static_cast<uint8_t>(Opcode::kGoAway),
                    last_request_id, payload);
      conn->open.store(false, std::memory_order_release);
      conn->sock.ShutdownBoth();
      break;
    }
  }
  conn->open.store(false, std::memory_order_release);
  // Writers may still answer in-flight requests; only reading stops.
  conn->sock.ShutdownRead();
}

void Server::WorkerLoop() {
  WorkItem item;
  while (queue_->Pop(&item)) {
    Execute(std::move(item));
    item = WorkItem{};  // release the connection ref between requests
  }
}

void Server::Execute(WorkItem item) {
  const uint8_t opcode = item.header.opcode;
  const uint8_t response_opcode = opcode | kResponseBit;
  // Phase 1 boundary: the worker picked the request up — everything since
  // admission was queue wait.
  const uint64_t dequeue_ns = MonotonicNanos();
  const uint64_t queue_wait_ns = dequeue_ns - item.enqueue_ns;
  if (m_phase_queue_wait_ != nullptr) {
    m_phase_queue_wait_->Record(queue_wait_ns);
  }
  const auto deadline_ns = static_cast<uint64_t>(
      options_.request_deadline.count() * 1000 * 1000);
  if (deadline_ns > 0 && queue_wait_ns > deadline_ns) {
    requests_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (m_rejected_deadline_ != nullptr) m_rejected_deadline_->Inc();
    std::string payload;
    EncodeResponseStatus(
        Status::ResourceExhausted("deadline exceeded in queue"), &payload);
    WriteResponse(item.conn, response_opcode, item.header.request_id,
                  payload);
  } else {
    RequestCost cost;
    std::string payload;
    const uint64_t execute_start_ns = MonotonicNanos();
    {
      ScopedLatency timer(m_request_ns_[opcode < m_request_ns_.size()
                                            ? opcode
                                            : 0]);
      // The test delay models a slow handler, so it counts as execution.
      if (options_.test_handler_delay.count() > 0) {
        std::this_thread::sleep_for(options_.test_handler_delay);
      }
      payload = service_->HandleRequest(opcode, item.payload, &cost);
    }
    const uint64_t execute_ns = MonotonicNanos() - execute_start_ns;
    if (m_phase_execute_ != nullptr) m_phase_execute_->Record(execute_ns);
    requests_handled_.fetch_add(1, std::memory_order_relaxed);
    if (m_requests_ != nullptr) m_requests_->Inc();
    const uint64_t respond_start_ns = MonotonicNanos();
    WriteResponse(item.conn, response_opcode, item.header.request_id,
                  payload);
    const uint64_t respond_ns = MonotonicNanos() - respond_start_ns;
    if (m_phase_respond_ != nullptr) m_phase_respond_->Record(respond_ns);
    const auto threshold_ns = static_cast<uint64_t>(
        options_.slow_query_threshold.count() * 1000 * 1000);
    const bool slow = threshold_ns > 0 &&
                      queue_wait_ns + execute_ns + respond_ns > threshold_ns;
    // The phase histograms above see every request; span records are
    // sampled per worker — an unsampled ring push with string attrs
    // would rival the cheap requests it measures (same rationale as
    // ir.query). Slow requests always trace: every phase interval was
    // timed regardless, so their spans are recorded retroactively and
    // correlate via the wire request id.
    static thread_local uint32_t trace_tick = 0;
    const bool sampled = trace_tick++ % kRequestSpanSampleEvery == 0;
    if (GlobalTracer() != nullptr && (sampled || slow)) {
      const std::string request_id_str =
          std::to_string(item.header.request_id);
      const std::string op(OpcodeName(opcode));
      TraceCompleted("net.queue_wait", item.enqueue_ns, queue_wait_ns,
                     {{"request_id", request_id_str}, {"op", op}});
      TraceCompleted("net.execute", execute_start_ns, execute_ns,
                     {{"request_id", request_id_str}, {"op", op}});
      TraceCompleted("net.respond", respond_start_ns, respond_ns,
                     {{"request_id", request_id_str}, {"op", op}});
    }
    if (slow) {
      SlowQueryRecord record;
      record.request_id = item.header.request_id;
      record.conn_id = item.conn->id;
      record.opcode = opcode;
      record.status_code = cost.status_code;
      record.admitted_ns = item.enqueue_ns;
      record.queue_wait_ns = queue_wait_ns;
      record.execute_ns = execute_ns;
      record.respond_ns = respond_ns;
      record.read_ops = cost.read_ops;
      record.cached_read_ops = cost.cached_read_ops;
      record.postings_read = cost.postings_read;
      record.response_bytes = static_cast<uint32_t>(payload.size());
      slow_log_.Record(record);
      LogWarn("net.slow_query")
          .U64("request_id", item.header.request_id)
          .Str("op", OpcodeName(opcode))
          .U64("queue_wait_ns", queue_wait_ns)
          .U64("execute_ns", execute_ns)
          .U64("respond_ns", respond_ns)
          .U64("read_ops", cost.read_ops)
          .U64("postings_read", cost.postings_read);
    }
  }
  item.conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
  const int64_t inflight =
      inflight_now_.fetch_sub(1, std::memory_order_relaxed) - 1;
  if (m_inflight_ != nullptr) {
    m_inflight_->Set(static_cast<double>(inflight));
  }
}

void Server::WriteResponse(const std::shared_ptr<Connection>& conn,
                           uint8_t opcode, uint64_t request_id,
                           std::string_view payload) {
  if (!conn->open.load(std::memory_order_acquire) &&
      (opcode & kResponseBit) == 0 &&
      opcode != static_cast<uint8_t>(Opcode::kGoAway)) {
    return;
  }
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  EncodeFrame(opcode, request_id, payload, &frame);
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  const Status sent = conn->sock.SendAll(frame.data(), frame.size());
  if (!sent.ok()) {
    conn->open.store(false, std::memory_order_release);
    conn->sock.ShutdownBoth();
    return;
  }
  if (m_bytes_out_ != nullptr) m_bytes_out_->Inc(frame.size());
}

void Server::RejectRequest(const std::shared_ptr<Connection>& conn,
                           const FrameHeader& header, const char* reason,
                           Counter* counter) {
  requests_rejected_.fetch_add(1, std::memory_order_relaxed);
  if (counter != nullptr) counter->Inc();
  std::string payload;
  EncodeResponseStatus(Status::ResourceExhausted(reason), &payload);
  WriteResponse(conn, header.opcode | kResponseBit, header.request_id,
                payload);
}

void Server::ReapConnections(bool all) {
  std::vector<std::shared_ptr<Connection>> dead;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    auto it = conns_.begin();
    while (it != conns_.end()) {
      if (all || (*it)->reader_done.load(std::memory_order_acquire)) {
        dead.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& conn : dead) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  // Sockets close when the last WorkItem holding the connection drains.
}

}  // namespace duplex::net

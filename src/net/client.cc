#include "net/client.h"

namespace duplex::net {

Result<Client> Client::Connect(const std::string& host, uint16_t port) {
  Result<Socket> sock = Socket::Connect(host, port);
  if (!sock.ok()) return sock.status();
  (void)sock->SetNoDelay();
  return Client(std::move(*sock));
}

Result<uint64_t> Client::Send(Opcode opcode, std::string_view payload) {
  if (!sock_.valid()) return Status::FailedPrecondition("client not connected");
  const uint64_t id = ++next_request_id_;
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  EncodeFrame(static_cast<uint8_t>(opcode), id, payload, &frame);
  DUPLEX_RETURN_IF_ERROR(sock_.SendAll(frame.data(), frame.size()));
  return id;
}

Result<Frame> Client::ReceiveFrame() {
  if (!sock_.valid()) return Status::FailedPrecondition("client not connected");
  char header_bytes[kFrameHeaderSize];
  DUPLEX_RETURN_IF_ERROR(sock_.RecvAll(header_bytes, sizeof(header_bytes)));
  Result<FrameHeader> header = DecodeFrameHeader(
      std::string_view(header_bytes, sizeof(header_bytes)),
      kMaxPayloadCeiling);
  if (!header.ok()) return header.status();
  Frame frame;
  frame.header = *header;
  frame.payload.resize(header->payload_len);
  if (header->payload_len > 0) {
    DUPLEX_RETURN_IF_ERROR(
        sock_.RecvAll(frame.payload.data(), frame.payload.size()));
  }
  return frame;
}

Result<ClientResponse> Client::Receive() {
  Result<Frame> frame = ReceiveFrame();
  if (!frame.ok()) return frame.status();
  ClientResponse resp;
  resp.opcode = frame->header.opcode;
  resp.request_id = frame->header.request_id;
  std::string_view body(frame->payload);
  DUPLEX_RETURN_IF_ERROR(DecodeResponseStatus(&body, &resp.status));
  resp.body.assign(body);
  return resp;
}

Result<std::string> Client::Call(Opcode opcode, std::string_view payload) {
  Result<uint64_t> id = Send(opcode, payload);
  if (!id.ok()) return id.status();
  Result<Frame> frame = ReceiveFrame();
  if (!frame.ok()) return frame.status();
  if (frame->header.opcode == static_cast<uint8_t>(Opcode::kGoAway)) {
    // The server refused the stream and is hanging up.
    std::string_view body(frame->payload);
    Status refusal;
    const Status prelude = DecodeResponseStatus(&body, &refusal);
    sock_.Close();
    if (prelude.ok() && !refusal.ok()) return refusal;
    return Status::IoError("server sent GoAway");
  }
  const uint8_t expected = static_cast<uint8_t>(opcode) | kResponseBit;
  if (frame->header.opcode != expected || frame->header.request_id != *id) {
    return Status::Internal(
        "response does not match request (opcode " +
        std::to_string(frame->header.opcode) + ", id " +
        std::to_string(frame->header.request_id) + ")");
  }
  // Fail fast on an error prelude; on OK hand back the full payload —
  // the typed decoders consume the prelude themselves.
  std::string_view body(frame->payload);
  Status handler_status;
  DUPLEX_RETURN_IF_ERROR(DecodeResponseStatus(&body, &handler_status));
  if (!handler_status.ok()) return handler_status;
  return std::move(frame->payload);
}

Status Client::Ping() {
  return Call(Opcode::kPing, std::string_view()).status();
}

Result<ir::QueryResult> Client::Boolean(std::string_view query) {
  BooleanQueryRequest req;
  req.query.assign(query);
  Result<std::string> payload =
      Call(Opcode::kBooleanQuery, EncodeBooleanQueryRequest(req));
  if (!payload.ok()) return payload.status();
  Result<BooleanQueryResponse> resp = DecodeBooleanQueryResponse(*payload);
  if (!resp.ok()) return resp.status();
  return std::move(resp->result);
}

Result<ir::VectorQueryResult> Client::Vector(const ir::VectorQuery& query,
                                             size_t k) {
  VectorQueryRequest req;
  req.k = static_cast<uint32_t>(k);
  req.query = query;
  Result<std::string> payload =
      Call(Opcode::kVectorQuery, EncodeVectorQueryRequest(req));
  if (!payload.ok()) return payload.status();
  Result<VectorQueryResponse> resp = DecodeVectorQueryResponse(*payload);
  if (!resp.ok()) return resp.status();
  return std::move(resp->result);
}

Result<SubmitDocumentsResponse> Client::Submit(
    const std::vector<std::string>& documents) {
  SubmitDocumentsRequest req;
  req.documents = documents;
  Result<std::string> payload =
      Call(Opcode::kSubmitDocuments, EncodeSubmitDocumentsRequest(req));
  if (!payload.ok()) return payload.status();
  return DecodeSubmitDocumentsResponse(*payload);
}

Result<std::string> Client::StatsJson() {
  Result<std::string> payload = Call(Opcode::kStats, std::string_view());
  if (!payload.ok()) return payload.status();
  Result<StatsResponse> resp = DecodeStatsResponse(*payload);
  if (!resp.ok()) return resp.status();
  return std::move(resp->json);
}

}  // namespace duplex::net

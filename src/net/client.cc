#include "net/client.h"

#include <algorithm>
#include <thread>

namespace duplex::net {

Client::Client(Socket sock, ClientOptions options)
    : sock_(std::move(sock)),
      options_(options),
      rng_state_(options.retry_seed | 1) {
  m_retries_ = GlobalCounter("duplex_net_client_retries",
                             "Strict-call retries after a typed BUSY "
                             "(kResourceExhausted) response");
}

Result<Client> Client::Connect(const std::string& host, uint16_t port) {
  return Connect(host, port, ClientOptions{});
}

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               const ClientOptions& options) {
  Result<Socket> sock =
      options.connect_timeout.count() > 0
          ? Socket::Connect(host, port, options.connect_timeout)
          : Socket::Connect(host, port);
  if (!sock.ok()) return sock.status();
  (void)sock->SetNoDelay();
  if (options.recv_timeout.count() > 0) {
    DUPLEX_RETURN_IF_ERROR(sock->SetRecvTimeout(options.recv_timeout));
  }
  return Client(std::move(*sock), options);
}

Result<uint64_t> Client::Send(Opcode opcode, std::string_view payload) {
  if (!sock_.valid()) return Status::FailedPrecondition("client not connected");
  const uint64_t id = ++next_request_id_;
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  EncodeFrame(static_cast<uint8_t>(opcode), id, payload, &frame);
  DUPLEX_RETURN_IF_ERROR(sock_.SendAll(frame.data(), frame.size()));
  return id;
}

Result<Frame> Client::ReceiveFrame() {
  if (!sock_.valid()) return Status::FailedPrecondition("client not connected");
  char header_bytes[kFrameHeaderSize];
  DUPLEX_RETURN_IF_ERROR(sock_.RecvAll(header_bytes, sizeof(header_bytes)));
  Result<FrameHeader> header = DecodeFrameHeader(
      std::string_view(header_bytes, sizeof(header_bytes)),
      kMaxPayloadCeiling);
  if (!header.ok()) return header.status();
  Frame frame;
  frame.header = *header;
  frame.payload.resize(header->payload_len);
  if (header->payload_len > 0) {
    DUPLEX_RETURN_IF_ERROR(
        sock_.RecvAll(frame.payload.data(), frame.payload.size()));
  }
  return frame;
}

Result<ClientResponse> Client::Receive() {
  Result<Frame> frame = ReceiveFrame();
  if (!frame.ok()) return frame.status();
  ClientResponse resp;
  resp.opcode = frame->header.opcode;
  resp.request_id = frame->header.request_id;
  std::string_view body(frame->payload);
  DUPLEX_RETURN_IF_ERROR(DecodeResponseStatus(&body, &resp.status));
  resp.body.assign(body);
  return resp;
}

Result<std::string> Client::Call(Opcode opcode, std::string_view payload) {
  Result<uint64_t> id = Send(opcode, payload);
  if (!id.ok()) return id.status();
  Result<Frame> frame = ReceiveFrame();
  if (!frame.ok()) return frame.status();
  if (frame->header.opcode == static_cast<uint8_t>(Opcode::kGoAway)) {
    // The server refused the stream and is hanging up.
    std::string_view body(frame->payload);
    Status refusal;
    const Status prelude = DecodeResponseStatus(&body, &refusal);
    sock_.Close();
    if (prelude.ok() && !refusal.ok()) return refusal;
    return Status::IoError("server sent GoAway");
  }
  const uint8_t expected = static_cast<uint8_t>(opcode) | kResponseBit;
  if (frame->header.opcode != expected || frame->header.request_id != *id) {
    return Status::Internal(
        "response does not match request (opcode " +
        std::to_string(frame->header.opcode) + ", id " +
        std::to_string(frame->header.request_id) + ")");
  }
  // Fail fast on an error prelude; on OK hand back the full payload —
  // the typed decoders consume the prelude themselves.
  std::string_view body(frame->payload);
  Status handler_status;
  DUPLEX_RETURN_IF_ERROR(DecodeResponseStatus(&body, &handler_status));
  if (!handler_status.ok()) return handler_status;
  return std::move(frame->payload);
}

Result<std::string> Client::CallWithRetry(Opcode opcode,
                                          std::string_view payload) {
  Result<std::string> result = Call(opcode, payload);
  for (uint32_t attempt = 0; attempt < options_.max_retries; ++attempt) {
    if (result.ok() || !result.status().IsResourceExhausted() ||
        !sock_.valid()) {
      break;
    }
    // Jittered exponential backoff: the deterministic full-jitter scheme
    // (sleep uniform in [backoff/2, backoff]) so a burst of clients
    // bounced by the same overload does not re-arrive in lockstep.
    const int64_t cap = options_.max_backoff.count();
    int64_t backoff = options_.initial_backoff.count();
    for (uint32_t i = 0; i < attempt && backoff < cap; ++i) backoff *= 2;
    backoff = std::min(backoff, cap);
    if (backoff > 0) {
      rng_state_ ^= rng_state_ << 13;
      rng_state_ ^= rng_state_ >> 7;
      rng_state_ ^= rng_state_ << 17;
      const int64_t half = backoff / 2;
      const int64_t jittered =
          half + static_cast<int64_t>(rng_state_ % (backoff - half + 1));
      std::this_thread::sleep_for(std::chrono::milliseconds(jittered));
    }
    ++retries_;
    if (m_retries_ != nullptr) m_retries_->Inc();
    result = Call(opcode, payload);
  }
  return result;
}

Status Client::Ping() {
  return CallWithRetry(Opcode::kPing, std::string_view()).status();
}

Result<ir::QueryResult> Client::Boolean(std::string_view query) {
  BooleanQueryRequest req;
  req.query.assign(query);
  Result<std::string> payload =
      CallWithRetry(Opcode::kBooleanQuery, EncodeBooleanQueryRequest(req));
  if (!payload.ok()) return payload.status();
  Result<BooleanQueryResponse> resp = DecodeBooleanQueryResponse(*payload);
  if (!resp.ok()) return resp.status();
  return std::move(resp->result);
}

Result<ir::VectorQueryResult> Client::Vector(const ir::VectorQuery& query,
                                             size_t k) {
  VectorQueryRequest req;
  req.k = static_cast<uint32_t>(k);
  req.query = query;
  Result<std::string> payload =
      CallWithRetry(Opcode::kVectorQuery, EncodeVectorQueryRequest(req));
  if (!payload.ok()) return payload.status();
  Result<VectorQueryResponse> resp = DecodeVectorQueryResponse(*payload);
  if (!resp.ok()) return resp.status();
  return std::move(resp->result);
}

Result<SubmitDocumentsResponse> Client::Submit(
    const std::vector<std::string>& documents) {
  SubmitDocumentsRequest req;
  req.documents = documents;
  Result<std::string> payload =
      CallWithRetry(Opcode::kSubmitDocuments, EncodeSubmitDocumentsRequest(req));
  if (!payload.ok()) return payload.status();
  return DecodeSubmitDocumentsResponse(*payload);
}

Result<SubmitLiveResponse> Client::SubmitLive(
    const std::vector<std::string>& documents) {
  SubmitLiveRequest req;
  req.documents = documents;
  Result<std::string> payload =
      CallWithRetry(Opcode::kSubmitLive, EncodeSubmitLiveRequest(req));
  if (!payload.ok()) return payload.status();
  return DecodeSubmitLiveResponse(*payload);
}

Result<std::string> Client::StatsJson() {
  Result<std::string> payload =
      CallWithRetry(Opcode::kStats, std::string_view());
  if (!payload.ok()) return payload.status();
  Result<StatsResponse> resp = DecodeStatsResponse(*payload);
  if (!resp.ok()) return resp.status();
  return std::move(resp->json);
}

}  // namespace duplex::net

#include "net/service.h"

#include "core/snapshot.h"
#include "ir/query_executor.h"
#include "util/metrics.h"

namespace duplex::net {

namespace {

std::string StatusOnlyPayload(const Status& status) {
  std::string out;
  EncodeResponseStatus(status, &out);
  return out;
}

}  // namespace

std::string IndexService::HandleRequest(uint8_t opcode,
                                        std::string_view payload) {
  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kPing:
      return StatusOnlyPayload(Status::OK());
    case Opcode::kBooleanQuery: {
      Result<BooleanQueryRequest> req = DecodeBooleanQueryRequest(payload);
      if (!req.ok()) return StatusOnlyPayload(req.status());
      Result<ir::QueryResult> result = Boolean(req->query);
      if (!result.ok()) return StatusOnlyPayload(result.status());
      return EncodeBooleanQueryResponse({std::move(*result)});
    }
    case Opcode::kVectorQuery: {
      Result<VectorQueryRequest> req = DecodeVectorQueryRequest(payload);
      if (!req.ok()) return StatusOnlyPayload(req.status());
      Result<ir::VectorQueryResult> result = Vector(req->query, req->k);
      if (!result.ok()) return StatusOnlyPayload(result.status());
      return EncodeVectorQueryResponse({std::move(*result)});
    }
    case Opcode::kSubmitDocuments: {
      Result<SubmitDocumentsRequest> req =
          DecodeSubmitDocumentsRequest(payload);
      if (!req.ok()) return StatusOnlyPayload(req.status());
      if (req->documents.empty()) {
        return StatusOnlyPayload(
            Status::InvalidArgument("submit: empty document batch"));
      }
      Result<SubmitDocumentsResponse> result = Submit(req->documents);
      if (!result.ok()) return StatusOnlyPayload(result.status());
      return EncodeSubmitDocumentsResponse(*result);
    }
    case Opcode::kStats:
      return EncodeStatsResponse({StatsJson()});
    default:
      return StatusOnlyPayload(Status::InvalidArgument(
          "unhandled opcode " + std::to_string(opcode)));
  }
}

namespace {

// {"index": <stats json>, "metrics": <registry json or null>} — the same
// registry JSON `duplexctl metrics` exports, so one stats RPC feeds the
// promtool-style scrape in README.
std::string BuildStatsJson(const core::IndexStats& stats) {
  std::string json = "{\n\"index\": ";
  json += stats.ToJson();
  json += ",\n\"metrics\": ";
  if (MetricsRegistry* registry = GlobalMetrics()) {
    json += registry->ExportJson();
  } else {
    json += "null";
  }
  json += "\n}";
  return json;
}

}  // namespace

// --- ShardedIndexService ----------------------------------------------------

Result<ir::QueryResult> ShardedIndexService::Boolean(
    std::string_view query) {
  return ir::QueryExecutor(*index_).EvaluateBoolean(query);
}

Result<ir::VectorQueryResult> ShardedIndexService::Vector(
    const ir::VectorQuery& query, size_t k) {
  ir::QueryExecutor executor(*index_);
  return executor.EvaluateVector(query, k, index_->next_doc_id());
}

Result<SubmitDocumentsResponse> ShardedIndexService::Submit(
    const std::vector<std::string>& documents) {
  std::lock_guard<std::mutex> lock(submit_mutex_);
  SubmitDocumentsResponse resp;
  resp.first_doc = index_->AddDocument(documents.front());
  for (size_t i = 1; i < documents.size(); ++i) {
    index_->AddDocument(documents[i]);
  }
  resp.accepted = static_cast<uint32_t>(documents.size());
  uint64_t batch_id = 0;
  DUPLEX_RETURN_IF_ERROR(index_->FlushDocumentsLogged(wal_, &batch_id));
  resp.wal_batch_id = batch_id;
  return resp;
}

std::string ShardedIndexService::StatsJson() {
  return BuildStatsJson(index_->Stats());
}

Status ShardedIndexService::Flush() {
  std::lock_guard<std::mutex> lock(submit_mutex_);
  uint64_t batch_id = 0;
  DUPLEX_RETURN_IF_ERROR(index_->FlushDocumentsLogged(wal_, &batch_id));
  return index_->FlushCaches();
}

// --- ConcurrentIndexService -------------------------------------------------

Result<ir::QueryResult> ConcurrentIndexService::Boolean(
    std::string_view query) {
  return index_->WithReadLock([&](const core::InvertedIndex& index) {
    return ir::QueryExecutor(index).EvaluateBoolean(query);
  });
}

Result<ir::VectorQueryResult> ConcurrentIndexService::Vector(
    const ir::VectorQuery& query, size_t k) {
  return index_->WithReadLock([&](const core::InvertedIndex& index) {
    return ir::QueryExecutor(index).EvaluateVector(query, k,
                                                   index.next_doc_id());
  });
}

Result<SubmitDocumentsResponse> ConcurrentIndexService::Submit(
    const std::vector<std::string>& documents) {
  return index_->WithWriteLock(
      [&](core::InvertedIndex& index) -> Result<SubmitDocumentsResponse> {
        SubmitDocumentsResponse resp;
        resp.first_doc = index.AddDocument(documents.front());
        for (size_t i = 1; i < documents.size(); ++i) {
          index.AddDocument(documents[i]);
        }
        resp.accepted = static_cast<uint32_t>(documents.size());
        DUPLEX_RETURN_IF_ERROR(index.FlushDocuments());
        return resp;
      });
}

std::string ConcurrentIndexService::StatsJson() {
  return BuildStatsJson(index_->Stats());
}

Status ConcurrentIndexService::Flush() {
  DUPLEX_RETURN_IF_ERROR(index_->FlushDocuments());
  DUPLEX_RETURN_IF_ERROR(index_->FlushCaches());
  if (snapshot_prefix_.empty()) return Status::OK();
  return index_->WithWriteLock([&](core::InvertedIndex& index) {
    return core::Snapshot::Write(index, snapshot_prefix_);
  });
}

}  // namespace duplex::net

#include "net/service.h"

#include "core/snapshot.h"
#include "ir/query_executor.h"
#include "util/metrics.h"

namespace duplex::net {

namespace {

std::string StatusOnlyPayload(const Status& status) {
  std::string out;
  EncodeResponseStatus(status, &out);
  return out;
}

}  // namespace

std::string IndexService::HandleRequest(uint8_t opcode,
                                        std::string_view payload,
                                        RequestCost* cost) {
  RequestCost scratch;
  if (cost == nullptr) cost = &scratch;
  const auto fail = [cost](const Status& status) {
    cost->status_code = static_cast<uint8_t>(status.code());
    return StatusOnlyPayload(status);
  };
  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kPing:
      return StatusOnlyPayload(Status::OK());
    case Opcode::kBooleanQuery: {
      Result<BooleanQueryRequest> req = DecodeBooleanQueryRequest(payload);
      if (!req.ok()) return fail(req.status());
      Result<ir::QueryResult> result = Boolean(req->query);
      if (!result.ok()) return fail(result.status());
      cost->read_ops = result->read_ops;
      cost->cached_read_ops = result->cached_read_ops;
      cost->postings_read = result->postings_read;
      return EncodeBooleanQueryResponse({std::move(*result)});
    }
    case Opcode::kVectorQuery: {
      Result<VectorQueryRequest> req = DecodeVectorQueryRequest(payload);
      if (!req.ok()) return fail(req.status());
      Result<ir::VectorQueryResult> result = Vector(req->query, req->k);
      if (!result.ok()) return fail(result.status());
      cost->read_ops = result->read_ops;
      cost->cached_read_ops = result->cached_read_ops;
      cost->postings_read = result->postings_read;
      return EncodeVectorQueryResponse({std::move(*result)});
    }
    case Opcode::kSubmitDocuments: {
      Result<SubmitDocumentsRequest> req =
          DecodeSubmitDocumentsRequest(payload);
      if (!req.ok()) return fail(req.status());
      if (req->documents.empty()) {
        return fail(Status::InvalidArgument("submit: empty document batch"));
      }
      Result<SubmitDocumentsResponse> result = Submit(req->documents);
      if (!result.ok()) return fail(result.status());
      return EncodeSubmitDocumentsResponse(*result);
    }
    case Opcode::kSubmitLive: {
      Result<SubmitLiveRequest> req = DecodeSubmitLiveRequest(payload);
      if (!req.ok()) return fail(req.status());
      if (req->documents.empty()) {
        return fail(
            Status::InvalidArgument("submit-live: empty document batch"));
      }
      Result<SubmitLiveResponse> result = SubmitLive(req->documents);
      if (!result.ok()) return fail(result.status());
      return EncodeSubmitLiveResponse(*result);
    }
    case Opcode::kStats:
      return EncodeStatsResponse({StatsJson()});
    default:
      return fail(Status::InvalidArgument(
          "unhandled opcode " + std::to_string(opcode)));
  }
}

namespace {

// {"index": <stats json>, "metrics": <registry json or null>} — the same
// registry JSON `duplexctl metrics` exports, so one stats RPC feeds the
// promtool-style scrape in README.
std::string BuildStatsJson(const core::IndexStats& stats) {
  std::string json = "{\n\"index\": ";
  json += stats.ToJson();
  json += ",\n\"metrics\": ";
  if (MetricsRegistry* registry = GlobalMetrics()) {
    json += registry->ExportJson();
  } else {
    json += "null";
  }
  json += "\n}";
  return json;
}

}  // namespace

// --- ShardedIndexService ----------------------------------------------------

Result<ir::QueryResult> ShardedIndexService::Boolean(
    std::string_view query) {
  if (live_ != nullptr) {
    // The view pins the delta tiers for the query's lifetime, so a
    // racing drain can drop nothing this evaluation might read.
    core::LiveIndex::ReadView view = live_->AcquireView();
    return ir::QueryExecutor(view.reader()).EvaluateBoolean(query);
  }
  return ir::QueryExecutor(*index_).EvaluateBoolean(query);
}

Result<ir::VectorQueryResult> ShardedIndexService::Vector(
    const ir::VectorQuery& query, size_t k) {
  if (live_ != nullptr) {
    core::LiveIndex::ReadView view = live_->AcquireView();
    ir::QueryExecutor executor(view.reader());
    return executor.EvaluateVector(query, k, view.reader().next_doc_id());
  }
  ir::QueryExecutor executor(*index_);
  return executor.EvaluateVector(query, k, index_->next_doc_id());
}

Result<SubmitDocumentsResponse> ShardedIndexService::Submit(
    const std::vector<std::string>& documents) {
  if (live_ != nullptr) {
    // The LiveIndex serializes this against live submits and the drain's
    // epoch handoff — the service mutex alone cannot (the WAL is shared).
    Result<core::LiveIndex::SubmitReceipt> receipt =
        live_->SubmitBatch(documents);
    if (!receipt.ok()) return receipt.status();
    SubmitDocumentsResponse resp;
    resp.first_doc = receipt->first_doc;
    resp.accepted = receipt->accepted;
    resp.wal_batch_id = receipt->wal_batch_id;
    return resp;
  }
  std::lock_guard<std::mutex> lock(submit_mutex_);
  SubmitDocumentsResponse resp;
  resp.first_doc = index_->AddDocument(documents.front());
  for (size_t i = 1; i < documents.size(); ++i) {
    index_->AddDocument(documents[i]);
  }
  resp.accepted = static_cast<uint32_t>(documents.size());
  uint64_t batch_id = 0;
  DUPLEX_RETURN_IF_ERROR(index_->FlushDocumentsLogged(wal_, &batch_id));
  resp.wal_batch_id = batch_id;
  return resp;
}

Result<SubmitLiveResponse> ShardedIndexService::SubmitLive(
    const std::vector<std::string>& documents) {
  if (live_ == nullptr) {
    return Status::Unimplemented(
        "live ingest not enabled on this server (--live-ingest)");
  }
  Result<core::LiveIndex::SubmitReceipt> receipt =
      live_->SubmitLive(documents);
  if (!receipt.ok()) return receipt.status();
  SubmitLiveResponse resp;
  resp.first_doc = receipt->first_doc;
  resp.accepted = receipt->accepted;
  resp.wal_batch_id = receipt->wal_batch_id;
  resp.epoch = receipt->epoch;
  resp.delta_docs = receipt->delta_docs;
  return resp;
}

std::string ShardedIndexService::StatsJson() {
  return BuildStatsJson(index_->Stats());
}

ShardedIndexService::WalStatus ShardedIndexService::GetWalStatus() {
  if (live_ != nullptr) {
    const core::LiveIndex::WalStatus live = live_->GetWalStatus();
    WalStatus status;
    status.attached = live.attached;
    status.tail_batches = live.tail_batches;
    status.base_epoch = live.base_epoch;
    status.next_id = live.next_id;
    return status;
  }
  std::lock_guard<std::mutex> lock(submit_mutex_);
  WalStatus status;
  if (wal_ != nullptr) {
    status.attached = true;
    status.tail_batches = wal_->batches_logged();
    status.base_epoch = wal_->base_epoch();
    status.next_id = wal_->next_id();
  }
  return status;
}

Result<core::CheckpointInfo> ShardedIndexService::CheckpointNow(
    core::Checkpointer* checkpointer) {
  if (live_ != nullptr) return live_->CheckpointNow(checkpointer);
  std::lock_guard<std::mutex> lock(submit_mutex_);
  return checkpointer->Checkpoint(*index_, wal_);
}

Status ShardedIndexService::Flush() {
  if (live_ != nullptr) return live_->Flush();
  std::lock_guard<std::mutex> lock(submit_mutex_);
  uint64_t batch_id = 0;
  DUPLEX_RETURN_IF_ERROR(index_->FlushDocumentsLogged(wal_, &batch_id));
  return index_->FlushCaches();
}

// --- ConcurrentIndexService -------------------------------------------------

Result<ir::QueryResult> ConcurrentIndexService::Boolean(
    std::string_view query) {
  return index_->WithReadLock([&](const core::InvertedIndex& index) {
    return ir::QueryExecutor(index).EvaluateBoolean(query);
  });
}

Result<ir::VectorQueryResult> ConcurrentIndexService::Vector(
    const ir::VectorQuery& query, size_t k) {
  return index_->WithReadLock([&](const core::InvertedIndex& index) {
    return ir::QueryExecutor(index).EvaluateVector(query, k,
                                                   index.next_doc_id());
  });
}

Result<SubmitDocumentsResponse> ConcurrentIndexService::Submit(
    const std::vector<std::string>& documents) {
  return index_->WithWriteLock(
      [&](core::InvertedIndex& index) -> Result<SubmitDocumentsResponse> {
        SubmitDocumentsResponse resp;
        resp.first_doc = index.AddDocument(documents.front());
        for (size_t i = 1; i < documents.size(); ++i) {
          index.AddDocument(documents[i]);
        }
        resp.accepted = static_cast<uint32_t>(documents.size());
        DUPLEX_RETURN_IF_ERROR(index.FlushDocuments());
        return resp;
      });
}

std::string ConcurrentIndexService::StatsJson() {
  return BuildStatsJson(index_->Stats());
}

Status ConcurrentIndexService::Flush() {
  DUPLEX_RETURN_IF_ERROR(index_->FlushDocuments());
  DUPLEX_RETURN_IF_ERROR(index_->FlushCaches());
  if (snapshot_prefix_.empty()) return Status::OK();
  return index_->WithWriteLock([&](core::InvertedIndex& index) {
    return core::Snapshot::Write(index, snapshot_prefix_);
  });
}

}  // namespace duplex::net

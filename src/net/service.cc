#include "net/service.h"

#include "core/snapshot.h"
#include "ir/query_executor.h"
#include "util/metrics.h"

namespace duplex::net {

namespace {

std::string StatusOnlyPayload(const Status& status) {
  std::string out;
  EncodeResponseStatus(status, &out);
  return out;
}

}  // namespace

std::string IndexService::HandleRequest(uint8_t opcode,
                                        std::string_view payload,
                                        RequestCost* cost) {
  RequestCost scratch;
  if (cost == nullptr) cost = &scratch;
  const auto fail = [cost](const Status& status) {
    cost->status_code = static_cast<uint8_t>(status.code());
    return StatusOnlyPayload(status);
  };
  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kPing:
      return StatusOnlyPayload(Status::OK());
    case Opcode::kBooleanQuery: {
      Result<BooleanQueryRequest> req = DecodeBooleanQueryRequest(payload);
      if (!req.ok()) return fail(req.status());
      Result<ir::QueryResult> result = Boolean(req->query);
      if (!result.ok()) return fail(result.status());
      cost->read_ops = result->read_ops;
      cost->cached_read_ops = result->cached_read_ops;
      cost->postings_read = result->postings_read;
      return EncodeBooleanQueryResponse({std::move(*result)});
    }
    case Opcode::kVectorQuery: {
      Result<VectorQueryRequest> req = DecodeVectorQueryRequest(payload);
      if (!req.ok()) return fail(req.status());
      Result<ir::VectorQueryResult> result = Vector(req->query, req->k);
      if (!result.ok()) return fail(result.status());
      cost->read_ops = result->read_ops;
      cost->cached_read_ops = result->cached_read_ops;
      cost->postings_read = result->postings_read;
      return EncodeVectorQueryResponse({std::move(*result)});
    }
    case Opcode::kSubmitDocuments: {
      Result<SubmitDocumentsRequest> req =
          DecodeSubmitDocumentsRequest(payload);
      if (!req.ok()) return fail(req.status());
      if (req->documents.empty()) {
        return fail(Status::InvalidArgument("submit: empty document batch"));
      }
      Result<SubmitDocumentsResponse> result = Submit(req->documents);
      if (!result.ok()) return fail(result.status());
      return EncodeSubmitDocumentsResponse(*result);
    }
    case Opcode::kStats:
      return EncodeStatsResponse({StatsJson()});
    default:
      return fail(Status::InvalidArgument(
          "unhandled opcode " + std::to_string(opcode)));
  }
}

namespace {

// {"index": <stats json>, "metrics": <registry json or null>} — the same
// registry JSON `duplexctl metrics` exports, so one stats RPC feeds the
// promtool-style scrape in README.
std::string BuildStatsJson(const core::IndexStats& stats) {
  std::string json = "{\n\"index\": ";
  json += stats.ToJson();
  json += ",\n\"metrics\": ";
  if (MetricsRegistry* registry = GlobalMetrics()) {
    json += registry->ExportJson();
  } else {
    json += "null";
  }
  json += "\n}";
  return json;
}

}  // namespace

// --- ShardedIndexService ----------------------------------------------------

Result<ir::QueryResult> ShardedIndexService::Boolean(
    std::string_view query) {
  return ir::QueryExecutor(*index_).EvaluateBoolean(query);
}

Result<ir::VectorQueryResult> ShardedIndexService::Vector(
    const ir::VectorQuery& query, size_t k) {
  ir::QueryExecutor executor(*index_);
  return executor.EvaluateVector(query, k, index_->next_doc_id());
}

Result<SubmitDocumentsResponse> ShardedIndexService::Submit(
    const std::vector<std::string>& documents) {
  std::lock_guard<std::mutex> lock(submit_mutex_);
  SubmitDocumentsResponse resp;
  resp.first_doc = index_->AddDocument(documents.front());
  for (size_t i = 1; i < documents.size(); ++i) {
    index_->AddDocument(documents[i]);
  }
  resp.accepted = static_cast<uint32_t>(documents.size());
  uint64_t batch_id = 0;
  DUPLEX_RETURN_IF_ERROR(index_->FlushDocumentsLogged(wal_, &batch_id));
  resp.wal_batch_id = batch_id;
  return resp;
}

std::string ShardedIndexService::StatsJson() {
  return BuildStatsJson(index_->Stats());
}

ShardedIndexService::WalStatus ShardedIndexService::GetWalStatus() {
  std::lock_guard<std::mutex> lock(submit_mutex_);
  WalStatus status;
  if (wal_ != nullptr) {
    status.attached = true;
    status.tail_batches = wal_->batches_logged();
    status.base_epoch = wal_->base_epoch();
    status.next_id = wal_->next_id();
  }
  return status;
}

Result<core::CheckpointInfo> ShardedIndexService::CheckpointNow(
    core::Checkpointer* checkpointer) {
  std::lock_guard<std::mutex> lock(submit_mutex_);
  return checkpointer->Checkpoint(*index_, wal_);
}

Status ShardedIndexService::Flush() {
  std::lock_guard<std::mutex> lock(submit_mutex_);
  uint64_t batch_id = 0;
  DUPLEX_RETURN_IF_ERROR(index_->FlushDocumentsLogged(wal_, &batch_id));
  return index_->FlushCaches();
}

// --- ConcurrentIndexService -------------------------------------------------

Result<ir::QueryResult> ConcurrentIndexService::Boolean(
    std::string_view query) {
  return index_->WithReadLock([&](const core::InvertedIndex& index) {
    return ir::QueryExecutor(index).EvaluateBoolean(query);
  });
}

Result<ir::VectorQueryResult> ConcurrentIndexService::Vector(
    const ir::VectorQuery& query, size_t k) {
  return index_->WithReadLock([&](const core::InvertedIndex& index) {
    return ir::QueryExecutor(index).EvaluateVector(query, k,
                                                   index.next_doc_id());
  });
}

Result<SubmitDocumentsResponse> ConcurrentIndexService::Submit(
    const std::vector<std::string>& documents) {
  return index_->WithWriteLock(
      [&](core::InvertedIndex& index) -> Result<SubmitDocumentsResponse> {
        SubmitDocumentsResponse resp;
        resp.first_doc = index.AddDocument(documents.front());
        for (size_t i = 1; i < documents.size(); ++i) {
          index.AddDocument(documents[i]);
        }
        resp.accepted = static_cast<uint32_t>(documents.size());
        DUPLEX_RETURN_IF_ERROR(index.FlushDocuments());
        return resp;
      });
}

std::string ConcurrentIndexService::StatsJson() {
  return BuildStatsJson(index_->Stats());
}

Status ConcurrentIndexService::Flush() {
  DUPLEX_RETURN_IF_ERROR(index_->FlushDocuments());
  DUPLEX_RETURN_IF_ERROR(index_->FlushCaches());
  if (snapshot_prefix_.empty()) return Status::OK();
  return index_->WithWriteLock([&](core::InvertedIndex& index) {
    return core::Snapshot::Write(index, snapshot_prefix_);
  });
}

}  // namespace duplex::net

#ifndef DUPLEX_NET_CLIENT_H_
#define DUPLEX_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "util/metrics.h"
#include "util/status.h"

namespace duplex::net {

// Client-side robustness knobs. Defaults preserve the original behavior
// (blocking connect, no recv deadline) except for BUSY handling: strict
// calls retry a typed kResourceExhausted response a bounded number of
// times with jittered exponential backoff, since BUSY is the server
// explicitly saying "try again shortly".
struct ClientOptions {
  // Connect deadline; <= 0 uses the plain blocking connect.
  std::chrono::milliseconds connect_timeout{0};
  // Per-recv deadline (SO_RCVTIMEO) on the connected socket; <= 0 = none.
  std::chrono::milliseconds recv_timeout{0};
  // Retries of a strict call after a typed BUSY response (0 disables).
  // Only kResourceExhausted retries: it is the one status the server
  // hands out precisely to mean "back off and come back".
  uint32_t max_retries = 3;
  std::chrono::milliseconds initial_backoff{10};
  std::chrono::milliseconds max_backoff{500};
  // Seed for the deterministic backoff jitter (tests pin it).
  uint64_t retry_seed = 0x9e3779b97f4a7c15ULL;
};

// One decoded response frame: the echoed request id, the status prelude,
// and the body bytes that follow it (empty on non-OK status).
struct ClientResponse {
  uint8_t opcode = 0;
  uint64_t request_id = 0;
  Status status;
  std::string body;
};

// Blocking duplexd client over one TCP connection. The typed calls
// (Ping/Boolean/Vector/Submit/Stats) are strict request/response; the
// Send/Receive pair underneath is public so load generators can pipeline
// many requests before draining responses. A server BUSY answer surfaces
// as kResourceExhausted from any call — callers are expected to back off.
// Not thread-safe; use one Client per thread.
class Client {
 public:
  Client() = default;

  static Result<Client> Connect(const std::string& host, uint16_t port);
  static Result<Client> Connect(const std::string& host, uint16_t port,
                                const ClientOptions& options);

  bool connected() const { return sock_.valid(); }
  void Close() { sock_.Close(); }

  // --- Low-level (pipelining) ---
  // Writes one request frame; returns the request id assigned to it.
  Result<uint64_t> Send(Opcode opcode, std::string_view payload);
  // Reads one response frame (any opcode, including kGoAway) and decodes
  // its status prelude. I/O and framing errors are the returned status;
  // a handler-level error lives in ClientResponse::status.
  Result<ClientResponse> Receive();

  // --- Strict request/response ---
  Status Ping();
  Result<ir::QueryResult> Boolean(std::string_view query);
  Result<ir::VectorQueryResult> Vector(const ir::VectorQuery& query,
                                       size_t k);
  Result<SubmitDocumentsResponse> Submit(
      const std::vector<std::string>& documents);
  // Immediate-visibility ingest: the ack means durable + queryable. A
  // BUSY server (delta cap hit) retries under the same bounded-backoff
  // policy as every strict call.
  Result<SubmitLiveResponse> SubmitLive(
      const std::vector<std::string>& documents);
  Result<std::string> StatsJson();

  const ClientOptions& options() const { return options_; }
  // BUSY retries this client has performed (also exported globally as the
  // duplex_net_client_retries counter).
  uint64_t retries() const { return retries_; }

 private:
  explicit Client(Socket sock, ClientOptions options = {});

  // Reads one raw frame (header + payload) off the socket.
  Result<Frame> ReceiveFrame();
  // Send + receive + match id; fails fast on an error prelude and
  // returns the full response payload (prelude included) on OK, which
  // the typed Decode*Response helpers consume.
  Result<std::string> Call(Opcode opcode, std::string_view payload);
  // Call plus the bounded jittered-backoff retry loop on typed BUSY;
  // every other status (including I/O errors) propagates immediately.
  Result<std::string> CallWithRetry(Opcode opcode, std::string_view payload);

  Socket sock_;
  ClientOptions options_;
  uint64_t next_request_id_ = 0;
  uint64_t retries_ = 0;
  uint64_t rng_state_ = 0;
  Counter* m_retries_ = nullptr;
};

}  // namespace duplex::net

#endif  // DUPLEX_NET_CLIENT_H_

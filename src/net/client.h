#ifndef DUPLEX_NET_CLIENT_H_
#define DUPLEX_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "util/status.h"

namespace duplex::net {

// One decoded response frame: the echoed request id, the status prelude,
// and the body bytes that follow it (empty on non-OK status).
struct ClientResponse {
  uint8_t opcode = 0;
  uint64_t request_id = 0;
  Status status;
  std::string body;
};

// Blocking duplexd client over one TCP connection. The typed calls
// (Ping/Boolean/Vector/Submit/Stats) are strict request/response; the
// Send/Receive pair underneath is public so load generators can pipeline
// many requests before draining responses. A server BUSY answer surfaces
// as kResourceExhausted from any call — callers are expected to back off.
// Not thread-safe; use one Client per thread.
class Client {
 public:
  Client() = default;

  static Result<Client> Connect(const std::string& host, uint16_t port);

  bool connected() const { return sock_.valid(); }
  void Close() { sock_.Close(); }

  // --- Low-level (pipelining) ---
  // Writes one request frame; returns the request id assigned to it.
  Result<uint64_t> Send(Opcode opcode, std::string_view payload);
  // Reads one response frame (any opcode, including kGoAway) and decodes
  // its status prelude. I/O and framing errors are the returned status;
  // a handler-level error lives in ClientResponse::status.
  Result<ClientResponse> Receive();

  // --- Strict request/response ---
  Status Ping();
  Result<ir::QueryResult> Boolean(std::string_view query);
  Result<ir::VectorQueryResult> Vector(const ir::VectorQuery& query,
                                       size_t k);
  Result<SubmitDocumentsResponse> Submit(
      const std::vector<std::string>& documents);
  Result<std::string> StatsJson();

 private:
  explicit Client(Socket sock) : sock_(std::move(sock)) {}

  // Reads one raw frame (header + payload) off the socket.
  Result<Frame> ReceiveFrame();
  // Send + receive + match id; fails fast on an error prelude and
  // returns the full response payload (prelude included) on OK, which
  // the typed Decode*Response helpers consume.
  Result<std::string> Call(Opcode opcode, std::string_view payload);

  Socket sock_;
  uint64_t next_request_id_ = 0;
};

}  // namespace duplex::net

#endif  // DUPLEX_NET_CLIENT_H_

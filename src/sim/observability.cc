#include "sim/observability.h"

#include <filesystem>
#include <fstream>

namespace duplex::sim {

namespace {

Status WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path);
  out << contents;
  out.flush();
  if (!out) return Status::IoError("short write to " + path);
  return Status::OK();
}

}  // namespace

ObservabilityScope::ObservabilityScope(std::string dir)
    : dir_(std::move(dir)) {
  if (dir_.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  registry_ = std::make_unique<MetricsRegistry>();
  tracer_ = std::make_unique<Tracer>();
  previous_registry_ = SetGlobalMetrics(registry_.get());
  previous_tracer_ = SetGlobalTracer(tracer_.get());
}

ObservabilityScope::~ObservabilityScope() {
  if (!enabled()) return;
  // Best effort on the unwind path; call Export() directly to observe
  // failures. Restore the ambient recorders before the members die.
  (void)Export();
  SetGlobalMetrics(previous_registry_);
  SetGlobalTracer(previous_tracer_);
}

Status ObservabilityScope::Export() {
  if (!enabled()) return Status::OK();
  const std::string sep =
      dir_.empty() || dir_.back() == '/' ? "" : "/";
  DUPLEX_RETURN_IF_ERROR(
      WriteFile(dir_ + sep + "metrics.prom", registry_->ExportPrometheus()));
  DUPLEX_RETURN_IF_ERROR(
      WriteFile(dir_ + sep + "metrics.json", registry_->ExportJson()));
  DUPLEX_RETURN_IF_ERROR(
      WriteFile(dir_ + sep + "trace.json", tracer_->ExportChromeTrace()));
  return Status::OK();
}

}  // namespace duplex::sim

#ifndef DUPLEX_SIM_OBSERVABILITY_H_
#define DUPLEX_SIM_OBSERVABILITY_H_

#include <memory>
#include <string>

#include "util/metrics.h"
#include "util/status.h"
#include "util/tracer.h"

namespace duplex::sim {

// RAII observability capture for one run: installs a fresh MetricsRegistry
// and Tracer as the process-global recorders and, on destruction, writes
//
//   <dir>/metrics.prom   Prometheus text exposition
//   <dir>/metrics.json   the same snapshot as JSON
//   <dir>/trace.json     Chrome trace_event JSON (loads in Perfetto)
//
// then restores whatever recorders were installed before, so scopes nest.
// An empty dir constructs an inert scope: nothing installed, nothing
// written, and the ambient recorders (if any) keep collecting.
//
// Construct the scope BEFORE the components it should observe:
// instrumented objects cache their metric handles at construction, and a
// handle fetched from this registry must not outlive it — destroy those
// components before the scope ends.
class ObservabilityScope {
 public:
  explicit ObservabilityScope(std::string dir);
  ~ObservabilityScope();

  ObservabilityScope(const ObservabilityScope&) = delete;
  ObservabilityScope& operator=(const ObservabilityScope&) = delete;

  bool enabled() const { return registry_ != nullptr; }
  // Null when the scope is inert.
  MetricsRegistry* registry() { return registry_.get(); }
  Tracer* tracer() { return tracer_.get(); }

  // Writes the three files now (the destructor calls this too; each call
  // overwrites). No-op on an inert scope. Returns the first I/O failure.
  Status Export();

 private:
  std::string dir_;
  std::unique_ptr<MetricsRegistry> registry_;
  std::unique_ptr<Tracer> tracer_;
  MetricsRegistry* previous_registry_ = nullptr;
  Tracer* previous_tracer_ = nullptr;
};

}  // namespace duplex::sim

#endif  // DUPLEX_SIM_OBSERVABILITY_H_

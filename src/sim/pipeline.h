#ifndef DUPLEX_SIM_PIPELINE_H_
#define DUPLEX_SIM_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/inverted_index.h"
#include "core/long_list_store.h"
#include "core/policy.h"
#include "core/sharded_index.h"
#include "storage/io_trace.h"
#include "storage/trace_executor.h"
#include "text/batch.h"
#include "text/corpus_generator.h"

namespace duplex::sim {

// Base (non-policy) parameters of one experiment — the paper's Table 4.
// Several of the paper's exact values are illegible in the available scan;
// these defaults are calibrated so the qualitative milestones of the paper
// hold (see DESIGN.md).
struct SimConfig {
  uint32_t num_buckets = 8192;      // Buckets
  uint64_t bucket_capacity = 512;   // BucketSize (units)
  uint64_t block_postings = 128;    // BlockPosting
  uint64_t bucket_unit_bytes = 16;  // on-disk bytes per bucket unit
  uint32_t num_disks = 4;           // Disks
  uint64_t blocks_per_disk = 1 << 21;
  uint64_t block_size = 4096;       // BlockSize (bytes)
  uint64_t buffer_blocks = 128;     // BufferBlock (coalescing cap)

  // Buffer pool over the disk array (accounting-only in the count-only
  // pipeline). 0 frames disables it; long-list reads that hit become
  // `cached` trace events the executor skips.
  uint64_t cache_blocks = 0;
  storage::CacheMode cache_mode = storage::CacheMode::kWriteThrough;
  storage::CacheEviction cache_eviction = storage::CacheEviction::kClock;
  uint32_t cache_lock_shards = 8;

  // Fault injection + integrity (materialized runs only; the count-only
  // pipeline issues no physical device I/O to corrupt). Probabilities are
  // per physical op; 0 disables. See storage::FaultScheduleOptions.
  uint64_t fault_seed = 1;
  double fault_read_error_prob = 0.0;
  double fault_write_error_prob = 0.0;
  double fault_bit_flip_prob = 0.0;
  uint64_t fault_crash_at_op = 0;
  bool device_checksums = false;

  // Online long-list compaction, run after every batch flush when enabled
  // (core::CompactionOptions; the per-round I/O lands in that batch's
  // trace update so cumulative_io_ops charges it to the triggering batch).
  core::CompactionOptions compaction;

  // When non-empty, each RunPolicy/RunPolicySharded call installs a fresh
  // per-run MetricsRegistry + Tracer (sim::ObservabilityScope) and writes
  // metrics.prom, metrics.json, and trace.json into this directory before
  // returning. Empty (the default) records nothing and costs nothing.
  std::string observability_dir;

  // Optional per-update query-cost probe: after each batch apply, sample
  // `query_probe_queries` boolean-style term sets (each of
  // `query_probe_terms` terms) through an ir::QueryWorkloadGenerator over
  // the index's reader interface, and record the mean estimated read cost
  // into the run result. The probe issues no device I/O — it reads the
  // directory and buckets exactly as a real query planner would — so
  // traces and paper-figure series are bit-identical with it on or off.
  // 0 queries (the default) disables the probe entirely.
  uint32_t query_probe_queries = 0;
  uint32_t query_probe_terms = 4;
  uint64_t query_probe_seed = 7;

  core::IndexOptions ToIndexOptions(const core::Policy& policy) const;
  storage::ExecutorOptions ToExecutorOptions(
      const storage::DiskModelParams& disk =
          storage::DiskModelParams::Seagate1993()) const;
};

// Per-update statistics of the generated corpus, plus Table 1 aggregates.
struct CorpusStats {
  std::vector<uint64_t> docs_per_update;
  std::vector<uint64_t> postings_per_update;
  std::vector<uint64_t> distinct_words_per_update;
  uint64_t total_docs = 0;
  uint64_t total_postings = 0;
  uint64_t total_words = 0;       // distinct words over the whole corpus
  uint64_t raw_text_bytes = 0;    // estimated
  double avg_postings_per_word = 0.0;
  // Frequent = top `frequent_fraction` of words by posting count.
  double frequent_fraction = 0.02;
  uint64_t frequent_words = 0;
  uint64_t infrequent_words = 0;
  double frequent_posting_share = 0.0;  // fraction of postings
};

// The invert-index stage of paper Figure 3 run over the whole synthetic
// corpus once: daily batch updates (word-occurrence pairs) that every
// policy run then consumes. Word ids are dense in first-seen order.
struct BatchStream {
  std::vector<text::BatchUpdate> batches;
  CorpusStats stats;
};

// Generates all batches for `corpus` (count-only path).
BatchStream GenerateBatches(const text::CorpusOptions& corpus);

// Result of pushing one batch stream through the index under one policy
// (the compute-buckets + compute-disks stages fused, since our index
// performs both).
struct PolicyRunResult {
  core::Policy policy;
  // Series indexed by update ("index after update").
  std::vector<uint64_t> cumulative_io_ops;   // Figure 8
  std::vector<double> utilization;           // Figure 9
  std::vector<double> avg_reads_per_list;    // Figure 10
  std::vector<uint64_t> long_words;
  std::vector<core::UpdateCategories> categories;  // Figure 7
  core::IndexStats final_stats;
  core::LongListStore::Counters counters;
  // Accumulated compaction totals (all zero when compaction is off).
  core::CompactionStats compaction;
  storage::IoTrace trace;  // replayable by TraceExecutor (Figures 13/14)
  double harness_seconds = 0.0;
  // Query-cost probe series, one entry per update (empty when
  // SimConfig::query_probe_queries == 0): mean read ops per sampled query
  // after that update, and the cached fraction of those reads.
  std::vector<double> probe_read_ops;
  std::vector<double> probe_cached_fraction;
};

// Runs one policy over a pre-generated batch stream.
PolicyRunResult RunPolicy(const SimConfig& config,
                          const std::vector<text::BatchUpdate>& batches,
                          const core::Policy& policy);

// Result of the sharded pipeline mode: the same batch stream pushed
// through a word-partitioned core::ShardedIndex with parallel per-shard
// batch apply.
struct ShardedRunResult {
  core::Policy policy;
  uint32_t num_shards = 1;
  std::vector<uint64_t> cumulative_io_ops;  // merged across shards
  core::IndexStats final_stats;             // MergeStats over shards
  std::vector<core::IndexStats> shard_stats;
  std::vector<core::UpdateCategories> categories;  // summed across shards
  storage::IoTrace trace;  // deterministic merged trace (global disk ids)
  double harness_seconds = 0.0;
  // Query-cost probe series, as in PolicyRunResult (the same generator
  // runs over the ShardedIndex's reader interface, so single-shard probe
  // numbers match RunPolicy exactly).
  std::vector<double> probe_read_ops;
  std::vector<double> probe_cached_fraction;
};

// Runs one policy over the stream through `num_shards` shards. The total
// bucket space of `config` is divided across the shards
// (ShardedIndexOptions::Partition); `threads` == 0 uses one worker per
// shard. num_shards == 1 matches RunPolicy's series and trace exactly.
ShardedRunResult RunPolicySharded(const SimConfig& config,
                                  const std::vector<text::BatchUpdate>&
                                      batches,
                                  const core::Policy& policy,
                                  uint32_t num_shards,
                                  uint32_t threads = 0);

// Replays a run's trace through the disk model (the exercise-disks stage).
storage::ExecutionResult ExerciseDisks(
    const SimConfig& config, const storage::IoTrace& trace,
    const storage::DiskModelParams& disk =
        storage::DiskModelParams::Seagate1993());

// The rebuild-from-scratch baseline of traditional systems (paper
// Sections 1 and 6): after each batch the entire index is rebuilt, laying
// every list out sequentially and contiguously. Returns the I/O trace of
// the rebuild writes (reading the accumulated raw text is charged as
// sequential reads too).
storage::IoTrace RebuildBaselineTrace(const SimConfig& config,
                                      const std::vector<uint64_t>&
                                          cumulative_postings);

}  // namespace duplex::sim

#endif  // DUPLEX_SIM_PIPELINE_H_

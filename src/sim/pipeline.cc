#include "sim/pipeline.h"

#include <algorithm>
#include <unordered_map>

#include "ir/query_workload.h"
#include "sim/observability.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace duplex::sim {
namespace {

// One probe round: samples `queries` term sets from a fresh generator
// over `reader` (seeded per update so the sampled words track the growing
// vocabulary deterministically) and appends the mean read cost and cached
// fraction to the series.
void RunQueryProbe(const SimConfig& config, const core::IndexReader& reader,
                   uint64_t update, std::vector<double>* probe_read_ops,
                   std::vector<double>* probe_cached_fraction) {
  if (config.query_probe_queries == 0) return;
  ir::QueryWorkloadGenerator generator(
      reader, config.query_probe_seed + update);
  uint64_t read_ops = 0;
  uint64_t cached = 0;
  for (uint32_t q = 0; q < config.query_probe_queries; ++q) {
    const ir::QueryWorkloadGenerator::Cost cost = generator.EstimateCost(
        generator.SampleBooleanTerms(config.query_probe_terms));
    read_ops += cost.read_ops;
    cached += cost.cached_read_ops;
  }
  probe_read_ops->push_back(static_cast<double>(read_ops) /
                            static_cast<double>(config.query_probe_queries));
  probe_cached_fraction->push_back(
      read_ops == 0 ? 0.0
                    : static_cast<double>(cached) /
                          static_cast<double>(read_ops));
}

}  // namespace

core::IndexOptions SimConfig::ToIndexOptions(
    const core::Policy& policy) const {
  core::IndexOptions opts;
  opts.buckets.num_buckets = num_buckets;
  opts.buckets.bucket_capacity = bucket_capacity;
  opts.policy = policy;
  opts.block_postings = block_postings;
  opts.bucket_unit_bytes = bucket_unit_bytes;
  opts.disks.num_disks = num_disks;
  opts.disks.blocks_per_disk = blocks_per_disk;
  opts.disks.block_size_bytes = block_size;
  opts.materialize = false;
  opts.record_trace = true;
  opts.cache.capacity_blocks = cache_blocks;
  opts.cache.mode = cache_mode;
  opts.cache.eviction = cache_eviction;
  opts.cache.lock_shards = cache_lock_shards;
  opts.disks.fault.seed = fault_seed;
  opts.disks.fault.read_error_probability = fault_read_error_prob;
  opts.disks.fault.write_error_probability = fault_write_error_prob;
  opts.disks.fault.bit_flip_probability = fault_bit_flip_prob;
  opts.disks.fault.crash_at_op = fault_crash_at_op;
  opts.disks.checksums = device_checksums;
  opts.compaction = compaction;
  return opts;
}

storage::ExecutorOptions SimConfig::ToExecutorOptions(
    const storage::DiskModelParams& disk) const {
  storage::ExecutorOptions opts;
  opts.disk = disk;
  opts.disk.block_size_bytes = block_size;
  opts.num_disks = num_disks;
  opts.buffer_blocks = buffer_blocks;
  return opts;
}

BatchStream GenerateBatches(const text::CorpusOptions& corpus) {
  BatchStream stream;
  text::CorpusGenerator generator(corpus);
  text::KeyVocabulary vocabulary;
  std::unordered_map<WordId, uint64_t> word_postings;
  for (uint32_t u = 0; u < corpus.num_updates; ++u) {
    const std::vector<text::SyntheticDoc> docs = generator.GenerateUpdate(u);
    uint64_t postings = 0;
    uint64_t raw = 0;
    for (const auto& d : docs) {
      postings += d.size();
      raw += text::CorpusGenerator::EstimatedRawBytes(d);
    }
    text::BatchUpdate batch =
        text::CorpusGenerator::ToBatchUpdate(docs, &vocabulary);
    for (const auto& pair : batch.pairs) {
      word_postings[pair.word] += pair.count;
    }
    stream.stats.docs_per_update.push_back(docs.size());
    stream.stats.postings_per_update.push_back(postings);
    stream.stats.distinct_words_per_update.push_back(batch.pairs.size());
    stream.stats.total_docs += docs.size();
    stream.stats.total_postings += postings;
    stream.stats.raw_text_bytes += raw;
    stream.batches.push_back(std::move(batch));
  }
  stream.stats.total_words = vocabulary.size();
  if (stream.stats.total_words > 0) {
    stream.stats.avg_postings_per_word =
        static_cast<double>(stream.stats.total_postings) /
        static_cast<double>(stream.stats.total_words);
  }
  // Frequent-word concentration (paper Table 1): sort words by posting
  // count, take the top frequent_fraction.
  std::vector<uint64_t> counts;
  counts.reserve(word_postings.size());
  for (const auto& [word, count] : word_postings) counts.push_back(count);
  std::sort(counts.begin(), counts.end(), std::greater<>());
  const uint64_t frequent =
      static_cast<uint64_t>(stream.stats.frequent_fraction *
                            static_cast<double>(counts.size()));
  uint64_t frequent_postings = 0;
  for (uint64_t i = 0; i < frequent && i < counts.size(); ++i) {
    frequent_postings += counts[i];
  }
  stream.stats.frequent_words = frequent;
  stream.stats.infrequent_words = counts.size() - frequent;
  stream.stats.frequent_posting_share =
      stream.stats.total_postings == 0
          ? 0.0
          : static_cast<double>(frequent_postings) /
                static_cast<double>(stream.stats.total_postings);
  return stream;
}

PolicyRunResult RunPolicy(const SimConfig& config,
                          const std::vector<text::BatchUpdate>& batches,
                          const core::Policy& policy) {
  Stopwatch watch;
  PolicyRunResult result;
  result.policy = policy;
  // Before the index: instrumented components cache metric handles at
  // construction, and the scope's exporter runs after `index` dies.
  ObservabilityScope observability(config.observability_dir);
  core::InvertedIndex index(config.ToIndexOptions(policy));
  uint64_t update = 0;
  for (const text::BatchUpdate& batch : batches) {
    DUPLEX_CHECK_OK(index.ApplyBatchUpdate(batch));
    const core::IndexStats stats = index.Stats();
    result.cumulative_io_ops.push_back(stats.io_ops);
    result.utilization.push_back(stats.long_utilization);
    result.avg_reads_per_list.push_back(stats.avg_reads_per_list);
    result.long_words.push_back(stats.long_words);
    RunQueryProbe(config, index, update++, &result.probe_read_ops,
                  &result.probe_cached_fraction);
  }
  result.categories = index.update_categories();
  result.final_stats = index.Stats();
  result.counters = index.long_list_store().counters();
  result.compaction = index.compaction_totals();
  result.trace = index.trace();
  result.harness_seconds = watch.ElapsedSeconds();
  return result;
}

ShardedRunResult RunPolicySharded(const SimConfig& config,
                                  const std::vector<text::BatchUpdate>&
                                      batches,
                                  const core::Policy& policy,
                                  uint32_t num_shards, uint32_t threads) {
  Stopwatch watch;
  ShardedRunResult result;
  result.policy = policy;
  result.num_shards = num_shards;
  ObservabilityScope observability(config.observability_dir);
  core::ShardedIndex index(core::ShardedIndexOptions::Partition(
      config.ToIndexOptions(policy), num_shards, threads));
  uint64_t update = 0;
  for (const text::BatchUpdate& batch : batches) {
    DUPLEX_CHECK_OK(index.ApplyBatchUpdate(batch));
    result.cumulative_io_ops.push_back(index.Stats().io_ops);
    RunQueryProbe(config, index, update++, &result.probe_read_ops,
                  &result.probe_cached_fraction);
  }
  result.shard_stats = index.ShardStats();
  result.final_stats = core::MergeStats(result.shard_stats);
  result.categories = index.MergedCategories();
  result.trace = index.MergedTrace();
  result.harness_seconds = watch.ElapsedSeconds();
  return result;
}

storage::ExecutionResult ExerciseDisks(const SimConfig& config,
                                       const storage::IoTrace& trace,
                                       const storage::DiskModelParams& disk) {
  storage::TraceExecutor executor(config.ToExecutorOptions(disk));
  return executor.Execute(trace);
}

storage::IoTrace RebuildBaselineTrace(
    const SimConfig& config,
    const std::vector<uint64_t>& cumulative_postings) {
  storage::IoTrace trace;
  for (const uint64_t postings : cumulative_postings) {
    // Read the accumulated batch data (sequential, striped) and write the
    // full index contiguously across the disks. Lists are laid out with no
    // gaps, so this is pure sequential I/O in BufferBlock-sized requests.
    const uint64_t total_blocks =
        (postings + config.block_postings - 1) / config.block_postings;
    const uint64_t per_disk =
        (total_blocks + config.num_disks - 1) / config.num_disks;
    for (storage::DiskId d = 0; d < config.num_disks; ++d) {
      // Alternate between two shadow areas so reads and writes do not
      // overlap; block addresses only matter for sequentiality.
      trace.Add({storage::IoOp::kRead, storage::IoTag::kLongList, 0,
                 postings, d, 0, per_disk});
      trace.Add({storage::IoOp::kWrite, storage::IoTag::kLongList, 0,
                 postings, d, per_disk, per_disk});
    }
    trace.EndUpdate();
  }
  return trace;
}

}  // namespace duplex::sim

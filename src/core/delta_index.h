#ifndef DUPLEX_CORE_DELTA_INDEX_H_
#define DUPLEX_CORE_DELTA_INDEX_H_

#include <chrono>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/index_reader.h"
#include "core/memory_index.h"
#include "text/batch.h"
#include "util/types.h"

namespace duplex::core {

// The concurrent memtable of the immediate-visibility ingest tier: an
// in-memory inverted index (built on MemoryIndex) that accepts
// already-inverted live batches and serves the full IndexReader surface
// under a reader-writer lock, so N query threads overlap freely with the
// single live writer. Word ids are assigned by the on-disk index's shared
// vocabulary BEFORE insertion (ShardedIndex::BuildLiveBatch), which is
// what lets a drained batch replay from the WAL into the same id space;
// the delta keeps its own word-string map so string-keyed queries resolve
// without touching the disk index's locks.
//
// A DeltaIndex is one *epoch* of the live tier. LiveIndex swaps a full
// epoch out for a fresh one atomically (the epoch handoff) and drains the
// sealed epoch into the disk index; readers that pinned the sealed epoch
// keep a consistent view because nothing is ever removed from a
// DeltaIndex — it is insert-only until the whole object is dropped.
class DeltaIndex : public IndexReader {
 public:
  explicit DeltaIndex(uint64_t epoch) : epoch_(epoch) {}

  DeltaIndex(const DeltaIndex&) = delete;
  DeltaIndex& operator=(const DeltaIndex&) = delete;

  // Inserts one live batch: `batch.entries[i]` holds the ascending doc
  // ids for word `batch.entries[i].word`, whose string is `words[i]`.
  // The batch's `documents` doc ids start at `first_doc` and all exceed
  // every previously inserted id. When `logged` is true, `wal_batch_id`
  // is remembered so the drain can mark it applied after the postings
  // reach the disk index (id 0 is a valid first batch id, hence the
  // explicit flag rather than a sentinel).
  void Insert(const text::InvertedBatch& batch,
              const std::vector<std::string>& words, DocId first_doc,
              uint32_t documents, bool logged, uint64_t wal_batch_id);

  // Marks `doc` deleted in this tier only; GetPostings filters it.
  void MarkDeleted(DocId doc);

  // True when nothing needs draining: no documents were inserted AND no
  // WAL batch id is pending a commit record (a batch of zero-token
  // documents carries no postings but still owes the WAL its commit).
  bool empty() const;

  size_t document_count() const;
  uint64_t total_postings() const;
  uint64_t epoch() const { return epoch_; }
  // Steady-clock instant of the first insert; meaningful when !empty().
  std::chrono::steady_clock::time_point oldest_insert() const;

  // Consistent cut for the drain: every inserted posting (deletions
  // included — the disk index's own deletion filter covers them after
  // the drain, exactly as WAL replay would) as one word-sorted batch,
  // plus the WAL batch ids awaiting their commit records.
  struct DrainSnapshot {
    text::InvertedBatch batch;
    std::vector<uint64_t> wal_batch_ids;
    size_t documents = 0;
    uint64_t postings = 0;
  };
  DrainSnapshot Snapshot() const;

  // --- IndexReader (all shared-lock, safe against a racing Insert) --------

  ListLocation Locate(WordId word) const override;
  ListLocation Locate(std::string_view word) const override;
  Result<std::vector<DocId>> GetPostings(WordId word) const override;
  Result<std::vector<DocId>> GetPostings(std::string_view word) const override;
  DocId next_doc_id() const override;
  void ForEachWord(const std::function<void(WordId)>& fn) const override;

 private:
  bool empty_locked() const;  // requires mutex_
  Result<std::vector<DocId>> FilteredPostings(WordId word) const;

  const uint64_t epoch_;
  mutable std::shared_mutex mutex_;
  // Posting storage; tokenizer/vocabulary are never consulted (ids come
  // pre-assigned), so the word-id entry points below are the only ones
  // used.
  MemoryIndex mem_{nullptr, nullptr};
  // word string -> disk-vocabulary id, for string-keyed query terms.
  std::unordered_map<std::string, WordId> words_;
  std::unordered_set<DocId> deleted_;
  std::vector<uint64_t> wal_batch_ids_;
  std::chrono::steady_clock::time_point oldest_insert_{};
};

}  // namespace duplex::core

#endif  // DUPLEX_CORE_DELTA_INDEX_H_

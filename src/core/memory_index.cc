#include "core/memory_index.h"

#include <algorithm>

#include "util/logging.h"

namespace duplex::core {

void MemoryIndex::AddDocument(DocId doc, const std::string& text) {
  DUPLEX_CHECK(tokenizer_ != nullptr);
  DUPLEX_CHECK(vocabulary_ != nullptr);
  for (const std::string& word : tokenizer_->Tokenize(text)) {
    std::vector<DocId>& list = lists_[vocabulary_->GetOrAdd(word)];
    DUPLEX_CHECK(list.empty() || list.back() < doc)
        << "documents must be added in ascending doc-id order";
    list.push_back(doc);
    ++postings_;
  }
  ++documents_;
  next_doc_id_ = std::max(next_doc_id_, doc + 1);
}

void MemoryIndex::AddPostings(WordId word, const std::vector<DocId>& docs) {
  if (docs.empty()) return;
  std::vector<DocId>& list = lists_[word];
  DUPLEX_CHECK(list.empty() || list.back() < docs.front())
      << "postings must be appended in ascending doc-id order";
  list.insert(list.end(), docs.begin(), docs.end());
  postings_ += docs.size();
}

void MemoryIndex::NoteDocuments(size_t count, DocId next) {
  documents_ += count;
  next_doc_id_ = std::max(next_doc_id_, next);
}

const std::vector<DocId>* MemoryIndex::Find(WordId word) const {
  auto it = lists_.find(word);
  return it == lists_.end() ? nullptr : &it->second;
}

void MemoryIndex::Clear() {
  lists_.clear();
  documents_ = 0;
  postings_ = 0;
}

ListLocation MemoryIndex::Locate(WordId word) const {
  ListLocation loc;
  if (const std::vector<DocId>* list = Find(word)) {
    loc.exists = true;
    loc.postings = list->size();
    // Buffered lists live in memory: zero chunk reads, nothing cached.
  }
  return loc;
}

ListLocation MemoryIndex::Locate(std::string_view word) const {
  const WordId id = vocabulary_->Lookup(word);
  if (id == kInvalidWord) return ListLocation{};
  return Locate(id);
}

Result<std::vector<DocId>> MemoryIndex::GetPostings(WordId word) const {
  const std::vector<DocId>* list = Find(word);
  if (list == nullptr) return Status::NotFound("word has no inverted list");
  return *list;  // already ascending (AddDocument enforces doc order)
}

Result<std::vector<DocId>> MemoryIndex::GetPostings(
    std::string_view word) const {
  const WordId id = vocabulary_->Lookup(word);
  if (id == kInvalidWord) return Status::NotFound("unknown word");
  return GetPostings(id);
}

void MemoryIndex::ForEachWord(
    const std::function<void(WordId)>& fn) const {
  for (const auto& [word, list] : lists_) fn(word);
}

}  // namespace duplex::core

#include "core/memory_index.h"

#include "util/logging.h"

namespace duplex::core {

void MemoryIndex::AddDocument(DocId doc, const std::string& text) {
  DUPLEX_CHECK(tokenizer_ != nullptr);
  DUPLEX_CHECK(vocabulary_ != nullptr);
  for (const std::string& word : tokenizer_->Tokenize(text)) {
    std::vector<DocId>& list = lists_[vocabulary_->GetOrAdd(word)];
    DUPLEX_CHECK(list.empty() || list.back() < doc)
        << "documents must be added in ascending doc-id order";
    list.push_back(doc);
    ++postings_;
  }
  ++documents_;
}

const std::vector<DocId>* MemoryIndex::Find(WordId word) const {
  auto it = lists_.find(word);
  return it == lists_.end() ? nullptr : &it->second;
}

void MemoryIndex::Clear() {
  lists_.clear();
  documents_ = 0;
  postings_ = 0;
}

}  // namespace duplex::core

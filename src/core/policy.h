#ifndef DUPLEX_CORE_POLICY_H_
#define DUPLEX_CORE_POLICY_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace duplex::core {

// The three long-list styles of paper Table 2.
enum class Style : uint8_t {
  kNew,    // write each update as a new chunk (with reserved space)
  kFill,   // fill fixed-size extents of `extent_blocks` blocks
  kWhole,  // keep every long list one whole contiguous chunk
};

// Reserved-space strategy f(x) for WRITE_RESERVED (paper Table 2):
//   constant:     f(x) = x + k
//   block:        f(x) = k_blocks * ceil(x / k_blocks_postings) — the chunk
//                 is a constant multiple of k blocks
//   proportional: f(x) = k * x
//   exponential:  chunk n of a list is at least k^n blocks — the adaptive
//                 geometric-growth scheme of Faloutsos & Jagadish that the
//                 paper lists as "not studied here"; bounds a list's chunk
//                 count (and so its read cost) to O(log_k postings)
enum class AllocStrategy : uint8_t {
  kConstant,
  kBlock,
  kProportional,
  kExponential,
};

const char* StyleName(Style style);
const char* AllocStrategyName(AllocStrategy alloc);

// A complete long-list allocation policy. `Limit` from the paper is the
// boolean `in_place` here: Limit = 0 (never update in place) or Limit = z
// (update in place whenever the in-memory list fits the free tail space).
struct Policy {
  Style style = Style::kNew;
  bool in_place = false;          // paper's Limit: false = 0, true = z
  AllocStrategy alloc = AllocStrategy::kConstant;
  double k = 0.0;                 // constant: postings; block: blocks;
                                  // proportional: multiplier (>= 1)
  uint32_t extent_blocks = 4;     // e, used only by the fill style

  // --- Named policies used throughout the paper -------------------------

  // Update-optimized extreme: new style, Limit = 0.
  static Policy New0();
  // New style with in-place updates; k = 0 keeps only block-rounding slack.
  static Policy NewZ(AllocStrategy alloc = AllocStrategy::kConstant,
                     double k = 0.0);
  // Fill style without in-place updates (paper: unusable disk utilization).
  static Policy Fill0(uint32_t extent_blocks = 4);
  // The recommended fill policy: in-place updates, e = 4.
  static Policy FillZ(uint32_t extent_blocks = 4);
  // Query-optimized extreme: whole style, never in place, no reserve
  // (also models the naive WAIS copy-the-whole-list behaviour).
  static Policy Whole0();
  // Whole style with in-place updates.
  static Policy WholeZ(AllocStrategy alloc = AllocStrategy::kConstant,
                       double k = 0.0);

  // The paper's two bottom-line recommendations (Section 5.4).
  static Policy RecommendedUpdateOptimized();  // new, prop k=1.2, in-place
  static Policy RecommendedQueryOptimized();   // whole, prop k=1.2, in-place

  // Reserved-space target f(x) in postings for a list of x postings.
  // block_postings = postings per disk block (needed by the block and
  // exponential strategies, whose k is expressed in blocks).
  // `chunk_index` is how many chunks the list already has (used by the
  // exponential strategy; the others ignore it).
  uint64_t ReservedFor(uint64_t x, uint64_t block_postings,
                       uint64_t chunk_index = 0) const;

  // Validates parameter combinations (paper Section 3.1 rules: Limit = 0
  // forces Alloc = constant k = 0; fill ignores Alloc).
  Status Validate() const;

  // Short display name like "new z prop1.2" / "fill 0 e=4" / "whole 0".
  std::string Name() const;
};

}  // namespace duplex::core

#endif  // DUPLEX_CORE_POLICY_H_

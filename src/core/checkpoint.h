#ifndef DUPLEX_CORE_CHECKPOINT_H_
#define DUPLEX_CORE_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/batch_log.h"
#include "core/inverted_index.h"
#include "storage/fault_injection.h"
#include "storage/superblock.h"
#include "util/status.h"

namespace duplex::core {

class ShardedIndex;

// How Recover() reconstructed the index.
enum class RecoveryMode {
  // Nothing to recover: no checkpoint installed and an empty WAL.
  kEmpty,
  // Fast path: newest intact checkpoint restored, WAL tail replayed.
  kCheckpointTail,
  // Degraded path: no usable checkpoint (never installed, or every
  // candidate damaged) but the WAL still holds full history — the index
  // was rebuilt by replaying everything. Slower, never wrong.
  kFullRebuild,
};

struct RecoveryInfo {
  RecoveryMode mode = RecoveryMode::kEmpty;
  // WAL epoch of the checkpoint that was restored (kCheckpointTail only).
  uint64_t checkpoint_epoch = 0;
  // Batches replayed from the WAL after the restore (or the whole history
  // for kFullRebuild).
  uint64_t batches_replayed = 0;
  // Human-readable trail: which install was used, which candidates were
  // rejected and why. For operators' logs, not for parsing.
  std::string detail;
};

struct CheckpointOptions {
  // Path prefix for every checkpoint artifact: the superblock lives at
  // <prefix>.super, checkpoint payloads at <prefix>.ckpt-<seq> (plus
  // -shard<k> per shard for a sharded index) in the same directory.
  std::string prefix;
  // Truncate the WAL tail after a durable install, so the log only holds
  // batches the checkpoint does not cover. Disable to keep full history
  // (e.g. while validating the subsystem in production).
  bool truncate_wal = true;
  // Fault schedule armed on every physical step of the checkpoint
  // protocol — payload chunk writes and syncs, superblock slot halves,
  // WAL truncation writes and rename — numbering them under ONE op
  // counter so crash sweeps can stop the protocol at every boundary.
  std::shared_ptr<storage::FaultSchedule> fault;
};

// Result of one successful Checkpoint() call.
struct CheckpointInfo {
  uint64_t install_seq = 0;
  // First WAL batch id NOT covered by this checkpoint.
  uint64_t wal_epoch = 0;
  uint64_t payload_bytes = 0;
  // Full path of the installed payload (checkpoint image, or manifest for
  // a sharded index).
  std::string payload_path;
};

// The checkpoint subsystem: restart = load last durable snapshot + replay
// only the WAL tail, instead of replaying the entire history.
//
// Checkpoint() serializes the index's logical state (long-list directory
// postings, bucket lists, vocabulary, doc state, compaction totals) into
// an epoch-stamped image file, installs it through the dual-slot
// storage::Superblock, then truncates the WAL to the covered epoch. Every
// physical step happens BEFORE the one that makes it load-bearing:
//
//   write image -> sync -> install slot (2 half writes + sync) -> rewrite
//   WAL tail to tmp -> sync -> rename
//
// so a crash at any op leaves either the previous checkpoint (slot not
// yet flipped, old WAL intact) or the new one (slot flipped; old or new
// WAL both replay correctly from the new image). Restore is logical: the
// image holds posting lists and their home structure (long vs bucket),
// and RestoreWord re-derives chunk placement through the policy path —
// equivalence with the uncrashed index is list-for-list, not
// block-for-block.
//
// Recover() walks the superblock's intact records newest-first, fully
// validates a candidate (length, checksum, magic, geometry) before
// touching the index, replays the WAL tail from the image's epoch, and
// degrades to a full WAL rebuild with a typed RecoveryInfo when no
// candidate survives — never garbage: a damaged checkpoint plus a
// truncated WAL is a typed kCorruption error, not a silently partial
// index.
//
// Single-writer by contract, like the Superblock underneath: one
// Checkpointer per index at a time. For ShardedIndex the checkpoint runs
// under a quiesced view (doc mutex + every shard's shared lock), so it
// can run concurrently with queries but serializes against batch applies.
class Checkpointer {
 public:
  explicit Checkpointer(CheckpointOptions options);

  // Serializes `index` and installs it. `log` may be null (no WAL: epoch
  // 0, nothing truncated). With a log, every appended batch must already
  // be applied — FailedPrecondition otherwise, because a checkpoint can
  // only cover committed work.
  Result<CheckpointInfo> Checkpoint(const InvertedIndex& index,
                                    BatchLog* log);
  // Sharded variant: per-shard images under one manifest, captured from a
  // quiesced view so the set of shard images is one consistent cut.
  Result<CheckpointInfo> Checkpoint(const ShardedIndex& index,
                                    BatchLog* log);

  // Restores into a FRESHLY CONSTRUCTED index (same options as the
  // checkpointed one — geometry is validated, FailedPrecondition on
  // mismatch) and replays the WAL tail. `log` may be null: restore only.
  Result<RecoveryInfo> Recover(InvertedIndex* index, BatchLog* log);
  Result<RecoveryInfo> Recover(ShardedIndex* index, BatchLog* log);

  const CheckpointOptions& options() const { return options_; }
  std::string superblock_path() const { return options_.prefix + ".super"; }

 private:
  // Opens the superblock with the fault schedule armed.
  Result<std::unique_ptr<storage::Superblock>> OpenSuperblock();
  // Shared tail of both Checkpoint overloads: write `payload` to
  // <dir>/<name> (fault-aware), install the superblock record, truncate
  // the WAL to `epoch`, clean up unreferenced checkpoint files.
  Result<CheckpointInfo> FinishInstall(storage::Superblock* sb,
                                       const std::string& name,
                                       const std::string& payload,
                                       uint64_t epoch, BatchLog* log);
  // Shared degraded tail of both Recover overloads: no usable checkpoint
  // candidate; full WAL rebuild if the history is complete, typed error
  // if it was truncated. `replay` runs the actual full replay.
  Result<RecoveryInfo> RecoverWithoutCheckpoint(
      BatchLog* log, bool superblock_seen, std::string detail,
      const std::function<Status(uint64_t* replayed)>& replay);
  // Best-effort: removes <base>.ckpt-* files not referenced by any valid
  // superblock slot (a file is referenced if it IS a slot's payload or a
  // "-shard<k>" satellite of one). Never consults the fault schedule —
  // cleanup is not part of the durability protocol.
  void RemoveStaleCheckpoints(const storage::Superblock& sb);

  CheckpointOptions options_;
  std::string dir_;   // directory holding every artifact
  std::string base_;  // file-name part of the prefix
};

}  // namespace duplex::core

#endif  // DUPLEX_CORE_CHECKPOINT_H_

#ifndef DUPLEX_CORE_POSTING_CODEC_H_
#define DUPLEX_CORE_POSTING_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/types.h"

namespace duplex::core {

// Varint + delta ("d-gap") compression for on-disk posting lists, the
// standard inverted-file encoding (Zobel/Moffat/Sacks-Davis, cited as
// complementary by the paper). Doc ids are ascending; each posting stores
// the gap to its predecessor as a LEB128 varint.
//
// A sequence is encoded relative to `base`, the doc id preceding the
// sequence plus one convention: the first gap is doc[0] - base where base
// starts at 0 for a fresh chunk, so doc ids must be >= base and strictly
// ascending (gap 0 is allowed only for the first posting of a fresh chunk
// with doc id 0, encoded as varint 0).

// Appends one varint to out.
void PutVarint64(uint64_t value, std::string* out);

// Reads one varint at offset *pos; advances *pos. Fails on truncation or
// >10-byte runaway.
Result<uint64_t> GetVarint64(const std::string& bytes, size_t* pos);
Result<uint64_t> GetVarint64(const uint8_t* data, size_t len, size_t* pos);

// Encodes `docs` (strictly ascending, docs[0] >= base) as gaps from `base`.
void EncodePostings(const std::vector<DocId>& docs, DocId base,
                    std::string* out);

// Decodes exactly `count` postings from bytes[*pos...] relative to `base`,
// appending to *docs; advances *pos.
Status DecodePostings(const std::string& bytes, size_t* pos, uint64_t count,
                      DocId base, std::vector<DocId>* docs);

// Convenience: encode/decode a whole buffer.
std::string EncodePostingBlock(const std::vector<DocId>& docs, DocId base);
Result<std::vector<DocId>> DecodePostingBlock(const std::string& bytes,
                                              uint64_t count, DocId base);

// Upper bound on encoded size in bytes.
size_t MaxEncodedSize(size_t count);

}  // namespace duplex::core

#endif  // DUPLEX_CORE_POSTING_CODEC_H_

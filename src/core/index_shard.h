#ifndef DUPLEX_CORE_INDEX_SHARD_H_
#define DUPLEX_CORE_INDEX_SHARD_H_

#include <mutex>
#include <shared_mutex>
#include <utility>

#include "core/inverted_index.h"

namespace duplex::core {

// One shard of the sharded dual-structure index: an InvertedIndex (which
// already encapsulates exactly the per-shard state — bucket store,
// long-list store, directory, disk array, trace) paired with its own
// reader-writer lock. ShardedIndex composes N of these; ConcurrentIndex
// is the degenerate single-shard case. The lock lives here rather than in
// the facades so that "a batch applying on shard 2 never blocks queries
// hitting shard 0" is a structural property, not a locking convention.
class IndexShard {
 public:
  explicit IndexShard(const IndexOptions& options) : index_(options) {}

  IndexShard(const IndexShard&) = delete;
  IndexShard& operator=(const IndexShard&) = delete;

  // Runs `fn(const InvertedIndex&)` under this shard's shared lock.
  template <typename Fn>
  auto WithRead(Fn&& fn) const {
    std::shared_lock lock(mutex_);
    return std::forward<Fn>(fn)(
        static_cast<const InvertedIndex&>(index_));
  }

  // Runs `fn(InvertedIndex&)` under this shard's exclusive lock.
  template <typename Fn>
  auto WithWrite(Fn&& fn) {
    std::unique_lock lock(mutex_);
    return std::forward<Fn>(fn)(index_);
  }

  // The shard's lock, for callers that must hold several shards at once
  // (e.g. a consistent multi-shard snapshot); lock in ascending shard
  // order to stay deadlock-free.
  std::shared_mutex& mutex() const { return mutex_; }

  // Unlocked access; the caller must hold mutex() appropriately.
  const InvertedIndex& index_unlocked() const { return index_; }
  InvertedIndex& index_unlocked() { return index_; }

 private:
  mutable std::shared_mutex mutex_;
  InvertedIndex index_;
};

}  // namespace duplex::core

#endif  // DUPLEX_CORE_INDEX_SHARD_H_

#include "core/inverted_index.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace duplex::core {

InvertedIndex::InvertedIndex(const IndexOptions& options)
    : options_(options),
      buckets_(options.buckets) {
  storage::DiskArrayOptions disk_opts = options.disks;
  disk_opts.materialize_payloads = options.materialize;
  disk_opts.cache = options.cache;
  disks_ = std::make_unique<storage::DiskArray>(disk_opts);

  LongListStoreOptions ll_opts;
  ll_opts.policy = options.policy;
  ll_opts.block_postings = options.block_postings;
  ll_opts.materialize = options.materialize;
  ll_opts.codec = options.long_list_codec;
  ll_opts.chunk_format = options.chunk_format;
  long_lists_ = std::make_unique<LongListStore>(
      ll_opts, disks_.get(), options.record_trace ? &trace_ : nullptr);
  compactor_ =
      std::make_unique<Compactor>(options.compaction, long_lists_.get());

  m_apply_ns_ = GlobalLatency("duplex_core_batch_apply_ns",
                              "Wall-clock of one batch apply");
  m_flush_ns_ = GlobalLatency(
      "duplex_core_flush_meta_ns",
      "Wall-clock of the end-of-batch bucket/directory flush");
  m_long_appends_ = GlobalCounter("duplex_core_long_appends_total",
                                  "Posting lists appended to a long list");
  m_bucket_inserts_ = GlobalCounter("duplex_core_bucket_inserts_total",
                                    "Posting lists inserted into a bucket");
  m_promotions_ =
      GlobalCounter("duplex_core_bucket_promotions_total",
                    "Bucket overflow evictions promoted to long lists");
  m_occupancy_ = GlobalGauge("duplex_core_bucket_occupancy",
                             "Bucket space occupancy fraction after the "
                             "latest flush");
  m_compaction_round_ns_ =
      GlobalLatency("duplex_core_compaction_round_ns",
                    "Wall-clock of one long-list compaction round");
  m_compaction_rounds_ = GlobalCounter("duplex_core_compaction_rounds_total",
                                       "Long-list compaction rounds run");
  m_compaction_lists_ =
      GlobalCounter("duplex_core_compaction_lists_total",
                    "Long lists rewritten by the compactor");
  m_compaction_blocks_ =
      GlobalCounter("duplex_core_compaction_blocks_reclaimed_total",
                    "Disk blocks returned to free space by compaction");
}

void InvertedIndex::Categorize(WordId word, UpdateCategories* cats) const {
  if (long_lists_->Contains(word)) {
    ++cats->long_words;
  } else if (buckets_.Contains(word)) {
    ++cats->bucket_words;
  } else {
    ++cats->new_words;
  }
}

Status InvertedIndex::RouteList(WordId word, const PostingList& list,
                                RouteCounts* counts) {
  if (list.empty()) return Status::OK();
  // Paper Section 2: if w already has a long list, append to it;
  // otherwise insert into bucket h(w), promoting overflow evictions.
  if (long_lists_->Contains(word)) {
    ++counts->long_appends;
    return long_lists_->Append(word, list);
  }
  ++counts->bucket_inserts;
  for (auto& [evicted_word, evicted_list] : buckets_.Insert(word, list)) {
    ++counts->promotions;
    DUPLEX_RETURN_IF_ERROR(
        long_lists_->Append(evicted_word, evicted_list));
  }
  return Status::OK();
}

void InvertedIndex::FlushRouteCounts(const RouteCounts& counts) {
  if (m_long_appends_ != nullptr && counts.long_appends > 0) {
    m_long_appends_->Inc(counts.long_appends);
  }
  if (m_bucket_inserts_ != nullptr && counts.bucket_inserts > 0) {
    m_bucket_inserts_->Inc(counts.bucket_inserts);
  }
  if (m_promotions_ != nullptr && counts.promotions > 0) {
    m_promotions_->Inc(counts.promotions);
  }
}

Status InvertedIndex::ApplyBatchUpdate(const text::BatchUpdate& batch) {
  if (options_.materialize) {
    return Status::FailedPrecondition(
        "count-only batches cannot feed a materialized index; use "
        "ApplyInvertedBatch");
  }
  ScopedLatency timer(m_apply_ns_);
  Span span = TraceSpan("core.apply_batch");
  span.AddAttr("words", static_cast<uint64_t>(batch.pairs.size()));
  UpdateCategories cats;
  RouteCounts route_counts;
  for (const text::WordCount& pair : batch.pairs) {
    if (pair.count == 0) continue;
    Categorize(pair.word, &cats);
    DUPLEX_RETURN_IF_ERROR(
        RouteList(pair.word, PostingList::Counted(pair.count),
                  &route_counts));
    total_postings_ += pair.count;
  }
  FlushRouteCounts(route_counts);
  categories_.push_back(cats);
  ++updates_applied_;
  return FlushMeta();
}

Status InvertedIndex::ApplyInvertedBatch(const text::InvertedBatch& batch) {
  if (!options_.materialize) {
    return Status::FailedPrecondition(
        "materialized batches require materialize=true");
  }
  ScopedLatency timer(m_apply_ns_);
  Span span = TraceSpan("core.apply_batch");
  span.AddAttr("words", static_cast<uint64_t>(batch.entries.size()));
  UpdateCategories cats;
  RouteCounts route_counts;
  for (const text::InvertedBatch::Entry& entry : batch.entries) {
    if (entry.docs.empty()) continue;
    Categorize(entry.word, &cats);
    DUPLEX_RETURN_IF_ERROR(
        RouteList(entry.word, PostingList::Materialized(entry.docs),
                  &route_counts));
    total_postings_ += entry.docs.size();
    if (!entry.docs.empty()) {
      next_doc_id_ = std::max(next_doc_id_, entry.docs.back() + 1);
    }
  }
  FlushRouteCounts(route_counts);
  categories_.push_back(cats);
  ++updates_applied_;
  return FlushMeta();
}

DocId InvertedIndex::AddDocument(const std::string& text) {
  const DocId doc =
      next_doc_id_ + static_cast<DocId>(memory_index_.document_count());
  memory_index_.AddDocument(doc, text);
  return doc;
}

Status InvertedIndex::FlushDocuments() {
  if (memory_index_.empty()) return Status::OK();
  text::InvertedBatch batch;
  batch.entries.reserve(memory_index_.lists().size());
  for (const auto& [word, docs] : memory_index_.lists()) {
    batch.entries.push_back({word, docs});
  }
  std::sort(batch.entries.begin(), batch.entries.end(),
            [](const text::InvertedBatch::Entry& a,
               const text::InvertedBatch::Entry& b) {
              return a.word < b.word;
            });
  const DocId new_next =
      next_doc_id_ + static_cast<DocId>(memory_index_.document_count());
  DUPLEX_RETURN_IF_ERROR(ApplyInvertedBatch(batch));
  next_doc_id_ = std::max(next_doc_id_, new_next);
  memory_index_.Clear();
  return Status::OK();
}

Status InvertedIndex::GrowBuckets(uint32_t new_num_buckets,
                                  uint64_t new_bucket_capacity) {
  for (auto& [word, list] :
       buckets_.Resize(new_num_buckets, new_bucket_capacity)) {
    DUPLEX_RETURN_IF_ERROR(long_lists_->Append(word, list));
  }
  return Status::OK();
}

Status InvertedIndex::FlushMeta() {
  ScopedLatency timer(m_flush_ns_);
  Span span = TraceSpan("core.flush_meta");
  // Auto-grow the bucket space when it saturates (paper future work: "we
  // need to study how to dynamically grow the bucket space since ... the
  // performance of the index degrades").
  if (options_.bucket_grow_threshold > 0.0 &&
      buckets_.Occupancy() > options_.bucket_grow_threshold) {
    DUPLEX_RETURN_IF_ERROR(
        GrowBuckets(buckets_.options().num_buckets * 2,
                    buckets_.options().bucket_capacity));
  }
  const uint32_t n_disks = disks_->num_disks();
  // Buckets occupy a fixed region of BucketTotal units; the whole region
  // is rewritten (shadow-paged) and striped evenly across all disks, then
  // the previous copy's blocks are freed (paper Sections 2 and 4.4).
  const uint64_t bucket_blocks =
      (buckets_.TotalCapacityUnits() * options_.bucket_unit_bytes +
       disks_->block_size() - 1) /
      disks_->block_size();
  const uint64_t per_disk = (bucket_blocks + n_disks - 1) / n_disks;
  std::vector<storage::BlockRange> new_bucket_ranges;
  for (storage::DiskId d = 0; d < n_disks; ++d) {
    Result<storage::BlockRange> r = disks_->AllocateOn(d, per_disk);
    if (!r.ok()) return r.status();
    new_bucket_ranges.push_back(*r);
    if (options_.record_trace) {
      trace_.Add({storage::IoOp::kWrite, storage::IoTag::kBucket, 0, 0, d,
                  r->start, r->length});
    }
  }
  // Directory flush: size proportional to its entries.
  std::vector<storage::BlockRange> new_directory_ranges;
  const uint64_t dir_bytes = long_lists_->directory().EstimatedBytes();
  const uint64_t dir_blocks =
      (dir_bytes + disks_->block_size() - 1) / disks_->block_size();
  if (dir_blocks > 0) {
    Result<storage::BlockRange> r = disks_->Allocate(dir_blocks);
    if (!r.ok()) return r.status();
    new_directory_ranges.push_back(*r);
    if (options_.record_trace) {
      trace_.Add({storage::IoOp::kWrite, storage::IoTag::kDirectory, 0, 0,
                  r->disk, r->start, r->length});
    }
  }
  for (const auto& r : prev_bucket_ranges_) {
    DUPLEX_RETURN_IF_ERROR(disks_->Free(r));
  }
  for (const auto& r : prev_directory_ranges_) {
    DUPLEX_RETURN_IF_ERROR(disks_->Free(r));
  }
  prev_bucket_ranges_ = std::move(new_bucket_ranges);
  prev_directory_ranges_ = std::move(new_directory_ranges);
  // Whole-style moves freed their old chunks onto the RELEASE list; they
  // are returned to free space now, after the flush.
  DUPLEX_RETURN_IF_ERROR(long_lists_->FlushEpoch());
  // Auto compaction rides the tail of the batch, inside the same trace
  // update, so its I/O is charged to the batch that fragmented the store.
  if (options_.compaction.enabled) {
    Result<CompactionStats> round = RunCompactionRound();
    if (!round.ok()) return round.status();
  }
  if (options_.record_trace) trace_.EndUpdate();
  if (m_occupancy_ != nullptr) m_occupancy_->Set(buckets_.Occupancy());
  return Status::OK();
}

Result<CompactionStats> InvertedIndex::RunCompactionRound() {
  ScopedLatency timer(m_compaction_round_ns_);
  Span span = TraceSpan("core.compact_round");
  Result<CompactionStats> round = compactor_->RunRound();
  if (!round.ok()) return round.status();
  // The rewrites parked the merged-away chunks on the RELEASE list; free
  // them now so the round's reclaim is visible immediately.
  DUPLEX_RETURN_IF_ERROR(long_lists_->FlushEpoch());
  span.AddAttr("lists", round->lists_compacted);
  span.AddAttr("blocks_reclaimed", round->blocks_reclaimed());
  compaction_totals_.Merge(*round);
  if (m_compaction_rounds_ != nullptr) m_compaction_rounds_->Inc();
  if (m_compaction_lists_ != nullptr && round->lists_compacted > 0) {
    m_compaction_lists_->Inc(round->lists_compacted);
  }
  if (m_compaction_blocks_ != nullptr && round->blocks_reclaimed() > 0) {
    m_compaction_blocks_->Inc(round->blocks_reclaimed());
  }
  return round;
}

Result<CompactionStats> InvertedIndex::CompactOnce() {
  return RunCompactionRound();
}

Status InvertedIndex::RestoreWord(WordId word, const PostingList& list,
                                  bool was_long) {
  if (list.empty()) return Status::OK();
  if (Locate(word).exists) {
    return Status::AlreadyExists("word already present in index");
  }
  if (was_long) {
    DUPLEX_RETURN_IF_ERROR(long_lists_->Append(word, list));
  } else {
    for (auto& [evicted_word, evicted_list] : buckets_.Insert(word, list)) {
      DUPLEX_RETURN_IF_ERROR(
          long_lists_->Append(evicted_word, evicted_list));
    }
  }
  total_postings_ += list.size();
  return Status::OK();
}

void InvertedIndex::RestoreDocState(DocId next_doc_id,
                                    std::vector<DocId> deleted) {
  next_doc_id_ = std::max(next_doc_id_, next_doc_id);
  deleted_.insert(deleted.begin(), deleted.end());
}

InvertedIndex::ListLocation InvertedIndex::Locate(WordId word) const {
  ListLocation loc;
  if (const LongList* list = long_lists_->directory().Find(word)) {
    loc.exists = true;
    loc.is_long = true;
    loc.chunks = list->chunks.size();
    loc.postings = list->total_postings;
    if (disks_->cache_enabled()) {
      const uint64_t bs = disks_->block_size();
      for (const ChunkRef& c : list->chunks) {
        // Probe the blocks a read of this chunk would touch: the encoded
        // bytes when payloads exist, the posting-count blocks otherwise.
        // Reserved tail blocks are never read, so they don't gate
        // residency.
        const uint64_t data_blocks = std::max<uint64_t>(
            1, options_.materialize
                   ? (ChunkHeaderBytes(c.format) + c.byte_length + bs - 1) /
                         bs
                   : (c.postings + options_.block_postings - 1) /
                         options_.block_postings);
        if (disks_->CachePeek(c.range.disk, c.range.start, data_blocks) ==
            data_blocks) {
          ++loc.cached_chunks;
        }
      }
    }
  } else if (const PostingList* list = buckets_.Find(word)) {
    loc.exists = true;
    loc.is_long = false;
    loc.chunks = 1;  // one bucket read fetches the whole short list
    loc.postings = list->size();
  }
  // Buffered postings are visible too; they cost no disk reads.
  if (const std::vector<DocId>* buffered = memory_index_.Find(word)) {
    loc.exists = true;
    loc.postings += buffered->size();
  }
  return loc;
}

InvertedIndex::ListLocation InvertedIndex::Locate(
    std::string_view word) const {
  const WordId id = vocabulary_.Lookup(word);
  if (id == kInvalidWord) return ListLocation{};
  return Locate(id);
}

Result<std::vector<DocId>> InvertedIndex::GetPostings(WordId word) const {
  if (!options_.materialize) {
    return Status::FailedPrecondition("index is not materialized");
  }
  std::vector<DocId> docs;
  bool found = false;
  if (long_lists_->Contains(word)) {
    Result<std::vector<DocId>> r = long_lists_->ReadPostings(word);
    if (!r.ok()) return r.status();
    docs = std::move(*r);
    found = true;
  } else if (const PostingList* list = buckets_.Find(word)) {
    docs = list->docs();
    found = true;
  }
  // The unflushed in-memory batch is searched together with the on-disk
  // index (paper Section 1); its doc ids are strictly newer.
  if (const std::vector<DocId>* buffered = memory_index_.Find(word)) {
    DUPLEX_CHECK(docs.empty() || docs.back() < buffered->front());
    docs.insert(docs.end(), buffered->begin(), buffered->end());
    found = true;
  }
  if (!found) return Status::NotFound("word has no inverted list");
  if (!deleted_.empty()) {
    docs.erase(std::remove_if(docs.begin(), docs.end(),
                              [&](DocId d) { return deleted_.contains(d); }),
               docs.end());
  }
  return docs;
}

Result<std::vector<DocId>> InvertedIndex::GetPostings(
    std::string_view word) const {
  const WordId id = vocabulary_.Lookup(word);
  if (id == kInvalidWord) return Status::NotFound("unknown word");
  return GetPostings(id);
}

void InvertedIndex::ForEachWord(
    const std::function<void(WordId)>& fn) const {
  // A word lives in exactly one on-disk structure (directory or bucket),
  // so those two walks never repeat a word; buffered words are emitted
  // only when the word has no flushed list yet.
  for (const auto& [word, list] : long_lists_->directory().lists()) {
    fn(word);
  }
  for (uint32_t b = 0; b < buckets_.options().num_buckets; ++b) {
    for (const auto& [word, list] : buckets_.bucket(b).entries()) {
      fn(word);
    }
  }
  for (const auto& [word, list] : memory_index_.lists()) {
    if (!long_lists_->Contains(word) && buckets_.Find(word) == nullptr) {
      fn(word);
    }
  }
}

Status InvertedIndex::SweepDeletions() {
  if (!options_.materialize) {
    return Status::FailedPrecondition("sweep requires a materialized index");
  }
  if (deleted_.empty()) return Status::OK();
  // Long lists: rewrite each list without the deleted documents. The
  // paper describes this as a background process sweeping one list at a
  // time.
  std::vector<WordId> long_words;
  long_words.reserve(long_lists_->directory().word_count());
  for (const auto& [word, list] : long_lists_->directory().lists()) {
    long_words.push_back(word);
  }
  std::sort(long_words.begin(), long_words.end());
  uint64_t removed = 0;
  for (const WordId word : long_words) {
    Result<std::vector<DocId>> docs = long_lists_->ReadPostings(word);
    if (!docs.ok()) return docs.status();
    std::vector<DocId> kept;
    kept.reserve(docs->size());
    for (const DocId d : *docs) {
      if (!deleted_.contains(d)) kept.push_back(d);
    }
    if (kept.size() == docs->size()) continue;
    removed += docs->size() - kept.size();
    DUPLEX_RETURN_IF_ERROR(long_lists_->Drop(word));
    if (!kept.empty()) {
      DUPLEX_RETURN_IF_ERROR(long_lists_->Append(
          word, PostingList::Materialized(std::move(kept))));
    }
  }
  removed += buckets_.FilterPostings(
      [&](DocId d) { return deleted_.contains(d); });
  total_postings_ -= removed;
  // "After a sweep of the index, the list of deleted document identifiers
  // can be thrown away."
  deleted_.clear();
  return Status::OK();
}

Status InvertedIndex::RewriteLongList(WordId word, std::vector<DocId> docs) {
  if (!options_.materialize) {
    return Status::FailedPrecondition("rewrite requires a materialized index");
  }
  const LongList* list = long_lists_->directory().Find(word);
  if (list == nullptr) {
    return Status::NotFound("word has no long list to rewrite");
  }
  const uint64_t before = list->total_postings;
  DUPLEX_RETURN_IF_ERROR(long_lists_->Drop(word));
  total_postings_ -= before;
  if (!docs.empty()) {
    const uint64_t after = docs.size();
    DUPLEX_RETURN_IF_ERROR(long_lists_->Append(
        word, PostingList::Materialized(std::move(docs))));
    total_postings_ += after;
  }
  return Status::OK();
}

Status InvertedIndex::VerifyIntegrity() const {
  std::map<std::pair<storage::DiskId, storage::BlockId>, storage::BlockId>
      ranges;
  for (const auto& [word, list] : long_lists_->directory().lists()) {
    uint64_t postings = 0;
    for (const ChunkRef& c : list.chunks) {
      if (c.range.length == 0 || c.postings == 0) {
        return Status::Corruption("empty chunk for word " +
                                  std::to_string(word));
      }
      if (c.postings > c.range.length * options_.block_postings) {
        return Status::Corruption("overfull chunk for word " +
                                  std::to_string(word));
      }
      postings += c.postings;
      if (!ranges
               .emplace(std::make_pair(c.range.disk, c.range.start),
                        c.range.end())
               .second) {
        return Status::Corruption("duplicate chunk start for word " +
                                  std::to_string(word));
      }
    }
    if (postings != list.total_postings) {
      return Status::Corruption("chunk postings do not sum for word " +
                                std::to_string(word));
    }
  }
  storage::DiskId prev_disk = 0;
  storage::BlockId prev_end = 0;
  bool first = true;
  for (const auto& [key, end] : ranges) {
    if (!first && key.first == prev_disk && key.second < prev_end) {
      return Status::Corruption("overlapping chunks on disk " +
                                std::to_string(key.first));
    }
    prev_disk = key.first;
    prev_end = end;
    first = false;
  }
  // total_postings_ counts flushed postings only; the in-memory batch is
  // accounted separately until FlushDocuments().
  const IndexStats s = Stats();
  if (s.bucket_postings + s.long_postings != s.total_postings) {
    return Status::Corruption("posting totals inconsistent");
  }
  return Status::OK();
}

IndexStats InvertedIndex::Stats() const {
  IndexStats s;
  s.updates_applied = updates_applied_;
  s.total_postings = total_postings_;
  s.bucket_words = buckets_.TotalWords();
  s.bucket_postings = buckets_.TotalPostings();
  const Directory& dir = long_lists_->directory();
  s.long_words = dir.word_count();
  s.long_postings = dir.TotalPostings();
  s.long_chunks = dir.TotalChunks();
  s.long_blocks = dir.TotalBlocks();
  s.long_utilization = dir.Utilization(options_.block_postings);
  s.avg_reads_per_list = dir.AvgReadsPerList();
  s.bucket_occupancy = buckets_.Occupancy();
  s.io_ops = trace_.event_count();
  s.in_place_updates = long_lists_->counters().in_place_updates;
  s.append_opportunities = long_lists_->counters().appends_to_existing;
  const storage::CacheStats cache = disks_->cache_stats();
  s.cache_hits = cache.hits;
  s.cache_misses = cache.misses;
  s.cache_evictions = cache.evictions;
  s.cache_dirty_writebacks = cache.dirty_writebacks;
  s.cache_pinned_peak = cache.pinned_peak;
  s.cache_physical_reads = cache.physical_reads;
  s.cache_physical_writes = cache.physical_writes;
  return s;
}

Status InvertedIndex::FlushCaches() { return disks_->FlushCache(); }

}  // namespace duplex::core

#include "core/index_stats.h"

#include <algorithm>
#include <sstream>

namespace duplex::core {

void IndexStats::Merge(const IndexStats& other) {
  // Recombine ratio fields from their weighted numerators BEFORE the
  // weight fields (long_blocks, long_words, stats_sources) are summed —
  // this is what makes the fold associative.
  const double util_num =
      long_utilization * static_cast<double>(long_blocks) +
      other.long_utilization * static_cast<double>(other.long_blocks);
  const double util_weight =
      static_cast<double>(long_blocks) + static_cast<double>(other.long_blocks);
  const double reads_num =
      avg_reads_per_list * static_cast<double>(long_words) +
      other.avg_reads_per_list * static_cast<double>(other.long_words);
  const double reads_weight =
      static_cast<double>(long_words) + static_cast<double>(other.long_words);
  const double occ_num =
      bucket_occupancy * static_cast<double>(stats_sources) +
      other.bucket_occupancy * static_cast<double>(other.stats_sources);
  const double occ_weight = static_cast<double>(stats_sources) +
                            static_cast<double>(other.stats_sources);

  updates_applied = std::max(updates_applied, other.updates_applied);
  total_postings += other.total_postings;
  bucket_words += other.bucket_words;
  bucket_postings += other.bucket_postings;
  long_words += other.long_words;
  long_postings += other.long_postings;
  long_chunks += other.long_chunks;
  long_blocks += other.long_blocks;
  io_ops += other.io_ops;
  in_place_updates += other.in_place_updates;
  append_opportunities += other.append_opportunities;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_evictions += other.cache_evictions;
  cache_dirty_writebacks += other.cache_dirty_writebacks;
  cache_pinned_peak += other.cache_pinned_peak;
  cache_physical_reads += other.cache_physical_reads;
  cache_physical_writes += other.cache_physical_writes;
  stats_sources += other.stats_sources;

  long_utilization = util_weight > 0.0 ? util_num / util_weight : 1.0;
  avg_reads_per_list = reads_weight > 0.0 ? reads_num / reads_weight : 0.0;
  bucket_occupancy = occ_weight > 0.0 ? occ_num / occ_weight : 0.0;
}

std::string IndexStats::ToJson() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"updates_applied\": " << updates_applied << ",\n"
     << "  \"total_postings\": " << total_postings << ",\n"
     << "  \"bucket_words\": " << bucket_words << ",\n"
     << "  \"bucket_postings\": " << bucket_postings << ",\n"
     << "  \"long_words\": " << long_words << ",\n"
     << "  \"long_postings\": " << long_postings << ",\n"
     << "  \"long_chunks\": " << long_chunks << ",\n"
     << "  \"long_blocks\": " << long_blocks << ",\n"
     << "  \"long_utilization\": " << long_utilization << ",\n"
     << "  \"avg_reads_per_list\": " << avg_reads_per_list << ",\n"
     << "  \"bucket_occupancy\": " << bucket_occupancy << ",\n"
     << "  \"io_ops\": " << io_ops << ",\n"
     << "  \"in_place_updates\": " << in_place_updates << ",\n"
     << "  \"append_opportunities\": " << append_opportunities << ",\n"
     << "  \"cache_hits\": " << cache_hits << ",\n"
     << "  \"cache_misses\": " << cache_misses << ",\n"
     << "  \"cache_evictions\": " << cache_evictions << ",\n"
     << "  \"cache_dirty_writebacks\": " << cache_dirty_writebacks << ",\n"
     << "  \"cache_pinned_peak\": " << cache_pinned_peak << ",\n"
     << "  \"cache_physical_reads\": " << cache_physical_reads << ",\n"
     << "  \"cache_physical_writes\": " << cache_physical_writes << ",\n"
     << "  \"stats_sources\": " << stats_sources << "\n"
     << "}";
  return os.str();
}

IndexStats MergeStats(const std::vector<IndexStats>& shards) {
  if (shards.empty()) return IndexStats{};
  IndexStats merged = shards.front();
  for (size_t i = 1; i < shards.size(); ++i) merged.Merge(shards[i]);
  return merged;
}

std::vector<UpdateCategories> MergeCategories(
    const std::vector<std::vector<UpdateCategories>>& shards) {
  size_t length = 0;
  for (const auto& series : shards) length = std::max(length, series.size());
  std::vector<UpdateCategories> merged(length);
  for (const auto& series : shards) {
    for (size_t u = 0; u < series.size(); ++u) {
      merged[u].new_words += series[u].new_words;
      merged[u].bucket_words += series[u].bucket_words;
      merged[u].long_words += series[u].long_words;
    }
  }
  return merged;
}

}  // namespace duplex::core

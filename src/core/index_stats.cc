#include "core/index_stats.h"

#include <algorithm>

namespace duplex::core {

IndexStats MergeStats(const std::vector<IndexStats>& shards) {
  IndexStats merged;
  if (shards.empty()) return merged;
  merged.long_utilization = 0.0;
  double utilization_weight = 0.0;
  double reads_weight = 0.0;
  double occupancy_sum = 0.0;
  for (const IndexStats& s : shards) {
    merged.updates_applied = std::max(merged.updates_applied,
                                      s.updates_applied);
    merged.total_postings += s.total_postings;
    merged.bucket_words += s.bucket_words;
    merged.bucket_postings += s.bucket_postings;
    merged.long_words += s.long_words;
    merged.long_postings += s.long_postings;
    merged.long_chunks += s.long_chunks;
    merged.long_blocks += s.long_blocks;
    merged.long_utilization +=
        s.long_utilization * static_cast<double>(s.long_blocks);
    utilization_weight += static_cast<double>(s.long_blocks);
    merged.avg_reads_per_list +=
        s.avg_reads_per_list * static_cast<double>(s.long_words);
    reads_weight += static_cast<double>(s.long_words);
    occupancy_sum += s.bucket_occupancy;
    merged.io_ops += s.io_ops;
    merged.in_place_updates += s.in_place_updates;
    merged.append_opportunities += s.append_opportunities;
    merged.cache_hits += s.cache_hits;
    merged.cache_misses += s.cache_misses;
    merged.cache_evictions += s.cache_evictions;
    merged.cache_dirty_writebacks += s.cache_dirty_writebacks;
    merged.cache_pinned_peak += s.cache_pinned_peak;
    merged.cache_physical_reads += s.cache_physical_reads;
    merged.cache_physical_writes += s.cache_physical_writes;
  }
  merged.long_utilization = utilization_weight > 0.0
                                ? merged.long_utilization / utilization_weight
                                : 1.0;
  merged.avg_reads_per_list =
      reads_weight > 0.0 ? merged.avg_reads_per_list / reads_weight : 0.0;
  merged.bucket_occupancy =
      occupancy_sum / static_cast<double>(shards.size());
  return merged;
}

std::vector<UpdateCategories> MergeCategories(
    const std::vector<std::vector<UpdateCategories>>& shards) {
  size_t length = 0;
  for (const auto& series : shards) length = std::max(length, series.size());
  std::vector<UpdateCategories> merged(length);
  for (const auto& series : shards) {
    for (size_t u = 0; u < series.size(); ++u) {
      merged[u].new_words += series[u].new_words;
      merged[u].bucket_words += series[u].bucket_words;
      merged[u].long_words += series[u].long_words;
    }
  }
  return merged;
}

}  // namespace duplex::core

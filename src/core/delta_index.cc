#include "core/delta_index.h"

#include <algorithm>
#include <mutex>

#include "util/logging.h"

namespace duplex::core {

void DeltaIndex::Insert(const text::InvertedBatch& batch,
                        const std::vector<std::string>& words,
                        DocId first_doc, uint32_t documents, bool logged,
                        uint64_t wal_batch_id) {
  DUPLEX_CHECK(batch.entries.size() == words.size());
  std::unique_lock lock(mutex_);
  if (empty_locked()) oldest_insert_ = std::chrono::steady_clock::now();
  for (size_t i = 0; i < batch.entries.size(); ++i) {
    mem_.AddPostings(batch.entries[i].word, batch.entries[i].docs);
    words_.emplace(words[i], batch.entries[i].word);
  }
  mem_.NoteDocuments(documents, first_doc + documents);
  if (logged) wal_batch_ids_.push_back(wal_batch_id);
}

void DeltaIndex::MarkDeleted(DocId doc) {
  std::unique_lock lock(mutex_);
  deleted_.insert(doc);
}

bool DeltaIndex::empty_locked() const {
  return mem_.document_count() == 0 && wal_batch_ids_.empty();
}

bool DeltaIndex::empty() const {
  std::shared_lock lock(mutex_);
  return empty_locked();
}

size_t DeltaIndex::document_count() const {
  std::shared_lock lock(mutex_);
  return mem_.document_count();
}

uint64_t DeltaIndex::total_postings() const {
  std::shared_lock lock(mutex_);
  return mem_.total_postings();
}

std::chrono::steady_clock::time_point DeltaIndex::oldest_insert() const {
  std::shared_lock lock(mutex_);
  return oldest_insert_;
}

DeltaIndex::DrainSnapshot DeltaIndex::Snapshot() const {
  std::shared_lock lock(mutex_);
  DrainSnapshot snap;
  snap.batch.entries.reserve(mem_.lists().size());
  for (const auto& [word, docs] : mem_.lists()) {
    snap.batch.entries.push_back({word, docs});
  }
  std::sort(snap.batch.entries.begin(), snap.batch.entries.end(),
            [](const text::InvertedBatch::Entry& a,
               const text::InvertedBatch::Entry& b) {
              return a.word < b.word;
            });
  snap.wal_batch_ids = wal_batch_ids_;
  snap.documents = mem_.document_count();
  snap.postings = mem_.total_postings();
  return snap;
}

ListLocation DeltaIndex::Locate(WordId word) const {
  std::shared_lock lock(mutex_);
  return mem_.Locate(word);
}

ListLocation DeltaIndex::Locate(std::string_view word) const {
  std::shared_lock lock(mutex_);
  auto it = words_.find(std::string(word));
  if (it == words_.end()) return ListLocation{};
  return mem_.Locate(it->second);
}

Result<std::vector<DocId>> DeltaIndex::FilteredPostings(WordId word) const {
  Result<std::vector<DocId>> postings = mem_.GetPostings(word);
  if (!postings.ok()) return postings;
  if (!deleted_.empty()) {
    postings->erase(
        std::remove_if(postings->begin(), postings->end(),
                       [&](DocId d) { return deleted_.contains(d); }),
        postings->end());
  }
  return postings;
}

Result<std::vector<DocId>> DeltaIndex::GetPostings(WordId word) const {
  std::shared_lock lock(mutex_);
  return FilteredPostings(word);
}

Result<std::vector<DocId>> DeltaIndex::GetPostings(
    std::string_view word) const {
  std::shared_lock lock(mutex_);
  auto it = words_.find(std::string(word));
  if (it == words_.end()) return Status::NotFound("unknown word");
  return FilteredPostings(it->second);
}

DocId DeltaIndex::next_doc_id() const {
  std::shared_lock lock(mutex_);
  return mem_.next_doc_id();
}

void DeltaIndex::ForEachWord(const std::function<void(WordId)>& fn) const {
  std::shared_lock lock(mutex_);
  mem_.ForEachWord(fn);
}

}  // namespace duplex::core

#ifndef DUPLEX_CORE_LONG_LIST_STORE_H_
#define DUPLEX_CORE_LONG_LIST_STORE_H_

#include <cstdint>
#include <vector>

#include "core/chunk_format.h"
#include "core/codec_family.h"
#include "core/directory.h"
#include "core/policy.h"
#include "core/posting.h"
#include "storage/disk_array.h"
#include "storage/io_trace.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/types.h"

namespace duplex::core {

struct LongListStoreOptions {
  Policy policy;
  // Postings per disk block — the paper's BlockPosting parameter, which
  // "implicitly models the efficiency of the compression algorithm".
  uint64_t block_postings = 512;
  // When true, posting payloads are gap-encoded with `codec` and stored in
  // the disk array's block devices (required for queries). The array must
  // have materialize_payloads enabled.
  bool materialize = false;
  // Codec for materialized chunk payloads. Bitwise codecs (the Elias pair)
  // pad their final byte, so appended segments cannot be decoded as one
  // stream — in-place updates are automatically disabled for them and
  // every append rewrites through the whole/new/fill styles instead.
  CodecKind codec = CodecKind::kVByte;
  // On-device chunk framing (core/chunk_format.h): kChunkFormatV1 writes
  // the 16-byte versioned header ahead of each chunk payload;
  // kChunkFormatLegacy reproduces the pre-versioning headerless layout
  // (kept so indexes built before the header existed keep reading, and so
  // compatibility tests can write exact v0 bytes). Counted mode writes no
  // payloads, so the format only matters when `materialize` is set.
  uint8_t chunk_format = kChunkFormatV1;
};

// The long-list half of the dual-structure index. Implements the update
// algorithm of paper Figure 2 verbatim:
//
//   1  if y <= Limit then UPDATE(M)                   -- in-place append
//   3  else
//   4    if Style = whole then
//   5      b := READ(L)                               -- 1 read per chunk
//   6      WRITE_RESERVED(M and b)                    -- rewrite elsewhere
//   7    if Style = fill then
//   8      WHILE (M not empty)
//   9        WRITE(M, M)                              -- fill e-block extents
//  10    if Style = new then
//  11      WRITE_RESERVED(M)                          -- append a new chunk
//
// with Limit = 0 (never in-place) or z (free tail space of the last
// chunk). READ places freed chunks on the RELEASE list, which is returned
// to free space at the end of each batch (FlushEpoch), matching the
// paper's deferred deallocation.
//
// Error contract: a failed Append (e.g. disks full mid-move) may leave
// the affected word's list partially written; the store's structural
// invariants still hold, and recovery follows the paper's restartable-
// batch protocol — replay the batch from the write-ahead BatchLog
// against the last Snapshot (see core/batch_log.h).
class LongListStore {
 public:
  struct Counters {
    uint64_t appends_to_existing = 0;  // in-place opportunities (Tables 5/6)
    uint64_t in_place_updates = 0;
    uint64_t lists_created = 0;
    uint64_t read_ops = 0;
    uint64_t write_ops = 0;
    uint64_t postings_moved = 0;  // rewritten by whole-style moves
  };

  // `disks` must outlive the store. `trace` may be null (no trace
  // recording, e.g. for pure library use).
  LongListStore(const LongListStoreOptions& options,
                storage::DiskArray* disks, storage::IoTrace* trace);

  LongListStore(const LongListStore&) = delete;
  LongListStore& operator=(const LongListStore&) = delete;

  // Appends the in-memory list `m` to the long list of `word`, creating
  // the long list if this word has none (bucket-overflow promotion).
  Status Append(WordId word, const PostingList& m);

  // End-of-batch housekeeping: returns RELEASE-list chunks to free space.
  Status FlushEpoch();

  // Reads and decodes the full posting list (materialized mode only).
  // Does not record trace events; query-cost accounting is the query
  // layer's job.
  Result<std::vector<DocId>> ReadPostings(WordId word) const;

  // Drops the long list for `word`, freeing its chunks immediately.
  // Returns NotFound if absent. Used by the deletion sweep.
  Status Drop(WordId word);

  // Merges the word's chunks into one right-sized chunk (exactly the
  // blocks its postings need, no policy reserve), freeing the old chunks
  // onto the RELEASE list. Works in both counted and materialized modes —
  // compaction moves postings, it never interprets them. A list already
  // occupying one minimal chunk is left untouched. NotFound when the word
  // has no long list.
  Status Compact(WordId word);

  bool Contains(WordId word) const { return directory_.Contains(word); }
  const Directory& directory() const { return directory_; }
  const Counters& counters() const { return counters_; }
  const LongListStoreOptions& options() const { return options_; }

  // Free tail space z (in postings) of the last chunk of `word`'s list;
  // 0 when the word has no long list.
  uint64_t TailSpace(WordId word) const;

 private:
  uint64_t BlocksFor(uint64_t postings) const {
    return (postings + options_.block_postings - 1) / options_.block_postings;
  }
  uint64_t ChunkCapacity(const ChunkRef& c) const {
    return c.range.length * options_.block_postings;
  }

  void Record(storage::IoOp op, WordId word, uint64_t postings,
              const storage::BlockRange& range, uint64_t nblocks);

  // UPDATE(M): in-place append into the last chunk of `list`.
  Status UpdateInPlace(WordId word, LongList* list, const PostingList& m);

  // READ(L): reads all chunks, pushes them on the RELEASE list, clears the
  // entry, and returns the full list.
  Result<PostingList> ReadAndRelease(WordId word, LongList* list);

  // WRITE_RESERVED(a): writes `a` as one new chunk with f(x) reserved.
  Status WriteReserved(WordId word, LongList* list, const PostingList& a);

  // Writes `a` as one new chunk of exactly `alloc_blocks` blocks (the
  // shared tail of WRITE_RESERVED and the compactor's right-sized write).
  Status WriteChunk(WordId word, LongList* list, const PostingList& a,
                    uint64_t alloc_blocks);

  // WRITE(a, b): fill style; writes up to extent-size postings, returns
  // the remainder through `a`.
  Status WriteExtents(WordId word, LongList* list, PostingList m);

  // Encodes `docs` with the configured codec and writes (v1 header +)
  // payload at the front of `chunk`'s range; fills chunk->byte_length,
  // chunk->format, and chunk->codec.
  Status WriteChunkPayload(ChunkRef* chunk, const std::vector<DocId>& docs,
                           DocId base);

  // Reads one chunk back: fetches the (header +) payload bytes, validates
  // the v1 header against the ChunkRef — magic, version, flags, reserved
  // bytes, and codec must all agree with the directory's metadata; any
  // disagreement is kCorruption — then decodes `chunk.postings` doc ids.
  Result<std::vector<DocId>> DecodeChunk(const ChunkRef& chunk) const;

  // Whether the configured codec can decode appended segments as one
  // stream (byte-aligned varints can; bit-padded Elias codes cannot).
  bool CodecSupportsInPlaceAppend() const {
    return options_.codec == CodecKind::kVByte;
  }

  LongListStoreOptions options_;
  storage::DiskArray* disks_;
  storage::IoTrace* trace_;
  Directory directory_;
  std::vector<storage::BlockRange> release_;
  Counters counters_;

  // Registry mirrors of the decision counters (null = recording off).
  Counter* m_in_place_ = nullptr;
  Counter* m_new_chunks_ = nullptr;
  Counter* m_lists_created_ = nullptr;
  Counter* m_postings_moved_ = nullptr;
};

}  // namespace duplex::core

#endif  // DUPLEX_CORE_LONG_LIST_STORE_H_

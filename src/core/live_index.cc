#include "core/live_index.h"

#include <algorithm>

#include "util/logging.h"

namespace duplex::core {

LiveIndex::LiveIndex(ShardedIndex* index, BatchLog* wal, Options options)
    : index_(index),
      wal_(wal),
      options_(options),
      active_(std::make_shared<DeltaIndex>(1)) {
  DUPLEX_CHECK(index_ != nullptr);
  m_delta_docs_ = GlobalGauge("duplex_core_delta_docs",
                              "Documents in the live delta tiers");
  m_delta_postings_ = GlobalGauge("duplex_core_delta_postings",
                                  "Postings in the live delta tiers");
  m_live_submits_ = GlobalCounter("duplex_core_live_submits",
                                  "Accepted live submit batches");
  m_busy_ = GlobalCounter("duplex_core_live_busy",
                          "Live submits rejected by the delta cap");
  m_drain_rounds_ = GlobalCounter("duplex_core_delta_drain_rounds",
                                  "Completed delta drain rounds");
  m_drain_ns_ = GlobalLatency("duplex_core_delta_drain_ns",
                              "Delta drain round wall-clock");
  m_submit_ns_ = GlobalLatency("duplex_core_live_submit_ns",
                               "Live submit wall-clock (invert + WAL "
                               "append + delta insert)");
}

LiveIndex::~LiveIndex() { StopDrainer(); }

Result<LiveIndex::SubmitReceipt> LiveIndex::SubmitLive(
    const std::vector<std::string>& documents) {
  ScopedLatency timer(m_submit_ns_);
  std::lock_guard<std::mutex> submit(submit_mutex_);
  std::shared_ptr<DeltaIndex> tier, draining;
  uint64_t depth = 0;
  {
    std::shared_lock tiers(tiers_mutex_);
    tier = active_;
    draining = draining_;
  }
  depth = tier->document_count() +
          (draining ? draining->document_count() : 0);
  if (options_.delta_cap_docs > 0 &&
      depth + documents.size() > options_.delta_cap_docs) {
    {
      std::lock_guard<std::mutex> state(state_mutex_);
      ++busy_rejections_;
    }
    if (m_busy_ != nullptr) m_busy_->Inc();
    return Status::ResourceExhausted(
        "live delta full (" + std::to_string(depth) + " of " +
        std::to_string(options_.delta_cap_docs) +
        " docs undrained); back off and retry");
  }
  Result<ShardedIndex::LiveBatch> batch = index_->BuildLiveBatch(documents);
  if (!batch.ok()) return batch.status();
  uint64_t wal_batch_id = 0;
  if (wal_ != nullptr) {
    // The ack promise: durable before visible. On failure the documents
    // are never inserted (their doc ids are burned, nothing more); if
    // the record reached the kernel before the sync failed, recovery may
    // replay it — the standard ambiguous outcome of an unacked write.
    std::lock_guard<std::mutex> wal(wal_mutex_);
    Result<uint64_t> appended = wal_->AppendBatch(batch->batch, batch->words);
    if (!appended.ok()) return appended.status();
    wal_batch_id = *appended;
  }
  tier->Insert(batch->batch, batch->words, batch->first_doc,
               batch->documents, /*logged=*/wal_ != nullptr, wal_batch_id);
  if (m_live_submits_ != nullptr) m_live_submits_->Inc();
  if (m_delta_docs_ != nullptr) {
    m_delta_docs_->Set(static_cast<double>(depth + documents.size()));
  }
  if (m_delta_postings_ != nullptr) {
    m_delta_postings_->Set(static_cast<double>(
        tier->total_postings() +
        (draining ? draining->total_postings() : 0)));
  }
  SubmitReceipt receipt;
  receipt.first_doc = batch->first_doc;
  receipt.accepted = batch->documents;
  receipt.wal_batch_id = wal_batch_id;
  receipt.epoch = tier->epoch();
  receipt.delta_docs = depth + documents.size();
  return receipt;
}

Result<LiveIndex::SubmitReceipt> LiveIndex::SubmitBatch(
    const std::vector<std::string>& documents) {
  std::lock_guard<std::mutex> drain(drain_mutex_);
  std::lock_guard<std::mutex> submit(submit_mutex_);
  // Posting lists are append-only in doc-id order, and this path writes
  // to the disk index directly — so any younger doc ids still buffered
  // in the delta must land first. Quiesce the delta, then apply.
  DUPLEX_RETURN_IF_ERROR(DrainAllLocked(/*submit_held=*/true));
  SubmitReceipt receipt;
  receipt.first_doc = index_->AddDocument(documents.front());
  for (size_t i = 1; i < documents.size(); ++i) {
    index_->AddDocument(documents[i]);
  }
  receipt.accepted = static_cast<uint32_t>(documents.size());
  uint64_t batch_id = 0;
  {
    std::lock_guard<std::mutex> wal(wal_mutex_);
    DUPLEX_RETURN_IF_ERROR(index_->FlushDocumentsLogged(wal_, &batch_id));
  }
  receipt.wal_batch_id = batch_id;
  return receipt;
}

void LiveIndex::DeleteDocument(DocId doc) {
  // Disk first, then the tiers: a doc mid-drain is filtered wherever the
  // racing reader finds it.
  index_->DeleteDocument(doc);
  std::shared_ptr<DeltaIndex> active, draining;
  {
    std::shared_lock tiers(tiers_mutex_);
    active = active_;
    draining = draining_;
  }
  active->MarkDeleted(doc);
  if (draining) draining->MarkDeleted(doc);
}

LiveIndex::ReadView LiveIndex::AcquireView() const {
  ReadView view;
  {
    // Fast path: the tier pointers have not moved since the last view,
    // so the memoized MergingReader is still exactly right — share it.
    std::shared_lock tiers(tiers_mutex_);
    if (cached_merged_ != nullptr && cached_active_ == active_ &&
        cached_draining_ == draining_) {
      view.active_ = active_;
      view.draining_ = draining_;
      view.merged_ = cached_merged_;
      return view;
    }
  }
  // A submit or drain swapped a tier: rebuild under the exclusive lock
  // (rare — once per epoch handoff, not per query).
  std::unique_lock tiers(tiers_mutex_);
  view.active_ = active_;
  view.draining_ = draining_;
  std::vector<const IndexReader*> readers;
  readers.push_back(index_);
  if (view.draining_) readers.push_back(view.draining_.get());
  readers.push_back(view.active_.get());
  auto merged = std::make_shared<const MergingReader>(std::move(readers));
  cached_merged_ = merged;
  cached_active_ = view.active_;
  cached_draining_ = view.draining_;
  view.merged_ = std::move(merged);
  return view;
}

bool LiveIndex::DeltaEmpty() const {
  std::shared_lock tiers(tiers_mutex_);
  return active_->empty() && draining_ == nullptr;
}

Status LiveIndex::DrainOnce() {
  std::lock_guard<std::mutex> drain(drain_mutex_);
  return DrainLocked(/*submit_held=*/false);
}

Status LiveIndex::DrainAll() {
  std::lock_guard<std::mutex> drain(drain_mutex_);
  return DrainAllLocked(/*submit_held=*/false);
}

Status LiveIndex::DrainAllLocked(bool submit_held) {
  while (!DeltaEmpty()) {
    DUPLEX_RETURN_IF_ERROR(DrainLocked(submit_held));
  }
  return Status::OK();
}

Status LiveIndex::DrainLocked(bool submit_held) {
  {
    std::lock_guard<std::mutex> state(state_mutex_);
    if (!drain_error_.ok()) return drain_error_;
  }
  // Epoch handoff: one pointer swap under the submit + tier locks. A
  // submit serialized before us inserted into the tier we seal (its
  // documents drain now); one serialized after inserts into the fresh
  // tier. Readers pinning pointers before the swap see the sealed tier
  // as `active`, after it as `draining` — both contain every acked doc.
  std::shared_ptr<DeltaIndex> sealed;
  const auto seal = [&] {
    std::unique_lock tiers(tiers_mutex_);
    if (active_->empty()) return;
    sealed = active_;
    draining_ = sealed;
    active_ = std::make_shared<DeltaIndex>(++epoch_);
    cached_merged_.reset();
    cached_active_.reset();
    cached_draining_.reset();
  };
  if (submit_held) {
    seal();
  } else {
    std::lock_guard<std::mutex> submit(submit_mutex_);
    seal();
  }
  if (!sealed) return Status::OK();

  ScopedLatency timer(m_drain_ns_);
  const auto started = std::chrono::steady_clock::now();
  const DeltaIndex::DrainSnapshot snap = sealed->Snapshot();
  Status status = index_->ApplyInvertedBatch(snap.batch);
  if (status.ok()) status = index_->FlushCaches();
  if (status.ok() && wal_ != nullptr) {
    std::lock_guard<std::mutex> wal(wal_mutex_);
    for (const uint64_t id : snap.wal_batch_ids) {
      status = wal_->MarkApplied(id);
      if (!status.ok()) break;
    }
  }
  if (!status.ok()) {
    // A half-applied batch must never re-apply (postings would
    // duplicate), so the sealed tier stays pinned in draining_ — every
    // acked document remains visible — and the error latches. Restart
    // recovers: the WAL replays these batches into fresh structures.
    std::lock_guard<std::mutex> state(state_mutex_);
    if (drain_error_.ok()) drain_error_ = status;
    return status;
  }
  {
    std::unique_lock tiers(tiers_mutex_);
    draining_.reset();
    // Drop the memoized view too: it pins the sealed tier, whose
    // postings are now on disk.
    cached_merged_.reset();
    cached_active_.reset();
    cached_draining_.reset();
  }
  const uint64_t elapsed_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  {
    std::lock_guard<std::mutex> state(state_mutex_);
    ++drain_rounds_;
    last_drain_ns_ = elapsed_ns;
  }
  if (m_drain_rounds_ != nullptr) m_drain_rounds_->Inc();
  if (m_delta_docs_ != nullptr) {
    std::shared_lock tiers(tiers_mutex_);
    m_delta_docs_->Set(static_cast<double>(active_->document_count()));
    if (m_delta_postings_ != nullptr) {
      m_delta_postings_->Set(
          static_cast<double>(active_->total_postings()));
    }
  }
  return Status::OK();
}

void LiveIndex::StartDrainer() {
  std::lock_guard<std::mutex> state(state_mutex_);
  if (drainer_.joinable()) return;  // already running
  drainer_stop_ = false;
  drainer_ = std::thread([this] {
    while (true) {
      {
        std::unique_lock<std::mutex> state(state_mutex_);
        if (drainer_cv_.wait_for(state, options_.drain_interval,
                                 [this] { return drainer_stop_; })) {
          return;
        }
        // Sticky failure: stop ticking (every round would return the
        // same latched error); the status stays visible in
        // GetDeltaStatus and the sealed tier stays queryable.
        if (!drain_error_.ok()) return;
      }
      DrainOnce();
    }
  });
}

void LiveIndex::StopDrainer() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> state(state_mutex_);
    if (!drainer_.joinable()) return;
    drainer_stop_ = true;
    worker = std::move(drainer_);
  }
  drainer_cv_.notify_all();
  worker.join();
}

bool LiveIndex::drainer_running() const {
  std::lock_guard<std::mutex> state(state_mutex_);
  return drainer_.joinable();
}

Result<CheckpointInfo> LiveIndex::CheckpointNow(Checkpointer* checkpointer) {
  std::lock_guard<std::mutex> drain(drain_mutex_);
  std::lock_guard<std::mutex> submit(submit_mutex_);
  // A checkpoint covers only committed work (the Checkpointer refuses
  // unapplied WAL batches), so quiesce: no new submits, delta fully
  // drained, then cut the image with the WAL frozen.
  DUPLEX_RETURN_IF_ERROR(DrainAllLocked(/*submit_held=*/true));
  std::lock_guard<std::mutex> wal(wal_mutex_);
  return checkpointer->Checkpoint(*index_, wal_);
}

Status LiveIndex::Flush() {
  std::lock_guard<std::mutex> drain(drain_mutex_);
  std::lock_guard<std::mutex> submit(submit_mutex_);
  DUPLEX_RETURN_IF_ERROR(DrainAllLocked(/*submit_held=*/true));
  return index_->FlushCaches();
}

LiveIndex::WalStatus LiveIndex::GetWalStatus() const {
  std::lock_guard<std::mutex> submit(submit_mutex_);
  std::lock_guard<std::mutex> wal(wal_mutex_);
  WalStatus status;
  if (wal_ != nullptr) {
    status.attached = true;
    status.tail_batches = wal_->batches_logged();
    status.base_epoch = wal_->base_epoch();
    status.next_id = wal_->next_id();
    status.unapplied = wal_->UnappliedBatches().size();
  }
  return status;
}

LiveIndex::DeltaStatus LiveIndex::GetDeltaStatus() const {
  DeltaStatus status;
  std::shared_ptr<DeltaIndex> active, draining;
  {
    std::shared_lock tiers(tiers_mutex_);
    active = active_;
    draining = draining_;
    status.epoch = epoch_;
  }
  status.active_docs = active->document_count();
  status.postings = active->total_postings();
  auto oldest = std::chrono::steady_clock::time_point::max();
  if (!active->empty()) oldest = active->oldest_insert();
  if (draining) {
    status.draining_docs = draining->document_count();
    status.postings += draining->total_postings();
    if (!draining->empty()) {
      oldest = std::min(oldest, draining->oldest_insert());
    }
  }
  if (oldest != std::chrono::steady_clock::time_point::max()) {
    status.oldest_age_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - oldest)
            .count());
  }
  {
    std::lock_guard<std::mutex> state(state_mutex_);
    status.drain_rounds = drain_rounds_;
    status.last_drain_ns = last_drain_ns_;
    status.busy_rejections = busy_rejections_;
    status.drainer_running = drainer_.joinable();
    status.drain_status = drain_error_;
  }
  return status;
}

}  // namespace duplex::core

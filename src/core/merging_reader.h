#ifndef DUPLEX_CORE_MERGING_READER_H_
#define DUPLEX_CORE_MERGING_READER_H_

#include <vector>

#include "core/index_reader.h"

namespace duplex::core {

// Overlays N readers into one IndexReader view with doc-id dedup — the
// read-side shape of a delta + disk index pair: queries see the union of
// an in-memory MemoryIndex (documents that just arrived) and the on-disk
// InvertedIndex/ShardedIndex (everything flushed), without either side
// knowing about the other. Works over any reader combination; a doc id
// reported by several readers appears once.
//
// Cost semantics: Locate sums every reader's chunk/cached/posting
// counters — each underlying fetch really happens, so the overlay's cost
// is the sum even when doc ids collapse in the merge. `postings` can
// therefore exceed the deduplicated result size.
//
// Thread safety: MergingReader itself is immutable after construction;
// concurrent use is exactly as safe as the least-safe underlying reader
// (ShardedIndex locks internally, a bare MemoryIndex does not).
class MergingReader : public IndexReader {
 public:
  // `readers` must be non-empty; every pointer must outlive this object.
  explicit MergingReader(std::vector<const IndexReader*> readers);

  ListLocation Locate(WordId word) const override;
  ListLocation Locate(std::string_view word) const override;
  Result<std::vector<DocId>> GetPostings(WordId word) const override;
  Result<std::vector<DocId>> GetPostings(std::string_view word) const override;
  // The widest horizon of any underlying reader.
  DocId next_doc_id() const override;
  void ForEachWord(const std::function<void(WordId)>& fn) const override;

  size_t reader_count() const { return readers_.size(); }

 private:
  template <typename Key>
  ListLocation LocateImpl(Key key) const;
  template <typename Key>
  Result<std::vector<DocId>> GetPostingsImpl(Key key) const;

  std::vector<const IndexReader*> readers_;
};

// Merges ascending doc-id lists into one ascending, duplicate-free list
// (exposed for tests and future delta-drain code).
std::vector<DocId> MergeDocLists(
    const std::vector<std::vector<DocId>>& lists);

}  // namespace duplex::core

#endif  // DUPLEX_CORE_MERGING_READER_H_

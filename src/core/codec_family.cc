#include "core/codec_family.h"

#include <bit>

#include "core/posting_codec.h"
#include "util/logging.h"

namespace duplex::core {

void BitWriter::WriteBits(uint64_t value, int count) {
  DUPLEX_CHECK_GE(count, 0);
  DUPLEX_CHECK_LE(count, 64);
  for (int i = count - 1; i >= 0; --i) {
    pending_ = static_cast<uint8_t>((pending_ << 1) |
                                    ((value >> i) & 1));
    if (++pending_bits_ == 8) {
      out_->push_back(static_cast<char>(pending_));
      pending_ = 0;
      pending_bits_ = 0;
    }
  }
}

void BitWriter::WriteUnary(int n) {
  DUPLEX_CHECK_GE(n, 0);
  while (n >= 32) {
    WriteBits(0, 32);
    n -= 32;
  }
  WriteBits(1, n + 1);  // n zeros then a one
}

void BitWriter::Finish() {
  if (pending_bits_ > 0) {
    out_->push_back(
        static_cast<char>(pending_ << (8 - pending_bits_)));
    pending_ = 0;
    pending_bits_ = 0;
  }
}

Result<uint64_t> BitReader::ReadBits(int count) {
  DUPLEX_CHECK_GE(count, 0);
  DUPLEX_CHECK_LE(count, 64);
  if (pos_ + static_cast<size_t>(count) > bytes_.size() * 8) {
    return Status::Corruption("bit stream exhausted");
  }
  uint64_t value = 0;
  for (int i = 0; i < count; ++i) {
    const size_t byte = pos_ >> 3;
    const int bit = 7 - static_cast<int>(pos_ & 7);
    value = (value << 1) |
            ((static_cast<uint8_t>(bytes_[byte]) >> bit) & 1);
    ++pos_;
  }
  return value;
}

Result<int> BitReader::ReadUnary() {
  int zeros = 0;
  for (;;) {
    Result<uint64_t> bit = ReadBits(1);
    if (!bit.ok()) return bit.status();
    if (*bit == 1) return zeros;
    if (++zeros > 4096) {
      return Status::Corruption("runaway unary code");
    }
  }
}

namespace {

int BitWidth(uint64_t v) { return 64 - std::countl_zero(v); }

// --- VByte ----------------------------------------------------------------

class VByteCodec : public GapCodec {
 public:
  const char* name() const override { return "vbyte"; }

  void Encode(const std::vector<DocId>& docs, DocId base,
              std::string* out) const override {
    EncodePostings(docs, base, out);
  }

  Status Decode(const std::string& bytes, uint64_t count, DocId base,
                std::vector<DocId>* docs) const override {
    size_t pos = 0;
    return DecodePostings(bytes, &pos, count, base, docs);
  }
};

// --- Elias gamma ------------------------------------------------------------
// gamma(x) for x >= 1: unary(len-1) then the low len-1 bits of x.
// Gaps are >= 1 except a possible first gap of 0 (doc id 0 from base 0),
// so gaps are encoded as gap+1.

class EliasGammaCodec : public GapCodec {
 public:
  const char* name() const override { return "elias-gamma"; }

  void Encode(const std::vector<DocId>& docs, DocId base,
              std::string* out) const override {
    BitWriter writer(out);
    DocId prev = base;
    bool first = true;
    for (const DocId doc : docs) {
      if (first) {
        DUPLEX_CHECK_GE(doc, prev);
        first = false;
      } else {
        DUPLEX_CHECK_GT(doc, prev);
      }
      const uint64_t x = static_cast<uint64_t>(doc - prev) + 1;
      const int len = BitWidth(x);
      writer.WriteUnary(len - 1);
      writer.WriteBits(x & ((1ULL << (len - 1)) - 1), len - 1);
      prev = doc;
    }
    writer.Finish();
  }

  Status Decode(const std::string& bytes, uint64_t count, DocId base,
                std::vector<DocId>* docs) const override {
    BitReader reader(bytes);
    DocId prev = base;
    for (uint64_t i = 0; i < count; ++i) {
      Result<int> len_minus_1 = reader.ReadUnary();
      if (!len_minus_1.ok()) return len_minus_1.status();
      Result<uint64_t> low = reader.ReadBits(*len_minus_1);
      if (!low.ok()) return low.status();
      const uint64_t x = (1ULL << *len_minus_1) | *low;
      prev = static_cast<DocId>(prev + (x - 1));
      docs->push_back(prev);
    }
    return Status::OK();
  }
};

// --- Elias delta ------------------------------------------------------------
// delta(x): gamma(len(x)) then the low len(x)-1 bits of x.

class EliasDeltaCodec : public GapCodec {
 public:
  const char* name() const override { return "elias-delta"; }

  void Encode(const std::vector<DocId>& docs, DocId base,
              std::string* out) const override {
    BitWriter writer(out);
    DocId prev = base;
    bool first = true;
    for (const DocId doc : docs) {
      if (first) {
        DUPLEX_CHECK_GE(doc, prev);
        first = false;
      } else {
        DUPLEX_CHECK_GT(doc, prev);
      }
      const uint64_t x = static_cast<uint64_t>(doc - prev) + 1;
      const int len = BitWidth(x);
      const int len_len = BitWidth(static_cast<uint64_t>(len));
      writer.WriteUnary(len_len - 1);
      writer.WriteBits(static_cast<uint64_t>(len) &
                           ((1ULL << (len_len - 1)) - 1),
                       len_len - 1);
      writer.WriteBits(x & ((1ULL << (len - 1)) - 1), len - 1);
      prev = doc;
    }
    writer.Finish();
  }

  Status Decode(const std::string& bytes, uint64_t count, DocId base,
                std::vector<DocId>* docs) const override {
    BitReader reader(bytes);
    DocId prev = base;
    for (uint64_t i = 0; i < count; ++i) {
      Result<int> len_len_minus_1 = reader.ReadUnary();
      if (!len_len_minus_1.ok()) return len_len_minus_1.status();
      Result<uint64_t> len_low = reader.ReadBits(*len_len_minus_1);
      if (!len_low.ok()) return len_low.status();
      const int len = static_cast<int>((1ULL << *len_len_minus_1) |
                                       *len_low);
      if (len < 1 || len > 64) {
        return Status::Corruption("elias-delta: bad length code");
      }
      Result<uint64_t> low = reader.ReadBits(len - 1);
      if (!low.ok()) return low.status();
      const uint64_t x = (1ULL << (len - 1)) | *low;
      prev = static_cast<DocId>(prev + (x - 1));
      docs->push_back(prev);
    }
    return Status::OK();
  }
};

}  // namespace

const char* CodecKindName(CodecKind kind) {
  switch (kind) {
    case CodecKind::kVByte:
      return "vbyte";
    case CodecKind::kEliasGamma:
      return "elias-gamma";
    case CodecKind::kEliasDelta:
      return "elias-delta";
  }
  return "unknown";
}

const GapCodec& GetCodec(CodecKind kind) {
  static const VByteCodec* vbyte = new VByteCodec();
  static const EliasGammaCodec* gamma = new EliasGammaCodec();
  static const EliasDeltaCodec* delta = new EliasDeltaCodec();
  switch (kind) {
    case CodecKind::kVByte:
      return *vbyte;
    case CodecKind::kEliasGamma:
      return *gamma;
    case CodecKind::kEliasDelta:
      return *delta;
  }
  return *vbyte;
}

size_t EncodedSize(CodecKind kind, const std::vector<DocId>& docs,
                   DocId base) {
  std::string out;
  GetCodec(kind).Encode(docs, base, &out);
  return out.size();
}

}  // namespace duplex::core

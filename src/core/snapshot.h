#ifndef DUPLEX_CORE_SNAPSHOT_H_
#define DUPLEX_CORE_SNAPSHOT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/inverted_index.h"
#include "storage/btree.h"
#include "storage/file_block_device.h"
#include "util/status.h"
#include "util/types.h"

namespace duplex::core {

// Durable logical snapshots of an index — the restartability mechanism the
// paper assumes ("the algorithms and data structures are constructed so
// that the incremental update of the index can be restarted if it is
// aborted"). A snapshot is a pair of files:
//
//   <prefix>.postings   header + one record per word:
//                         varint word | flags (long/bucket, materialized)
//                         | varint count | [delta-varint doc ids]
//                       followed by a vocabulary section and doc state.
//   <prefix>.dict       a BPlusTree (on a FileBlockDevice) mapping word ->
//                       {byte offset into .postings, count, flags} so
//                       individual words can be read without restoring
//                       the whole index.
//
// Restoring rebuilds the index through the normal policy paths; the
// logical content (every word's postings, the short/long split, document
// state, vocabulary) round-trips exactly, while physical chunk addresses
// are re-derived.
class Snapshot {
 public:
  // Writes a snapshot of `index` to `<prefix>.postings` / `<prefix>.dict`,
  // replacing existing files.
  static Status Write(const InvertedIndex& index, const std::string& prefix);

  // Restores a snapshot into `index`, which must be freshly constructed
  // with a compatible `materialize` setting.
  static Status Load(const std::string& prefix, InvertedIndex* index);
};

// Random access into a snapshot without restoring it.
class SnapshotReader {
 public:
  static Result<std::unique_ptr<SnapshotReader>> Open(
      const std::string& prefix);

  // Word count recorded in the dictionary.
  uint64_t word_count() const;

  // Whether the word exists; cheap dictionary lookup.
  bool Contains(WordId word) const;

  // The word's posting count.
  Result<uint64_t> Count(WordId word) const;

  // The word's doc ids (materialized snapshots only).
  Result<std::vector<DocId>> Postings(WordId word) const;

  bool materialized() const { return materialized_; }

 private:
  SnapshotReader() = default;

  struct DictEntry {
    uint64_t offset = 0;
    uint64_t count = 0;
    uint32_t flags = 0;
  };
  Result<DictEntry> Lookup(WordId word) const;

  std::string postings_path_;
  std::string file_contents_;  // .postings loaded once (snapshots are
                               // compact varint streams)
  bool materialized_ = false;
  std::unique_ptr<storage::FileBlockDevice> dict_device_;
  std::unique_ptr<storage::BPlusTree> dict_;
};

}  // namespace duplex::core

#endif  // DUPLEX_CORE_SNAPSHOT_H_

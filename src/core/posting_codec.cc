#include "core/posting_codec.h"

#include "util/logging.h"

namespace duplex::core {

void PutVarint64(uint64_t value, std::string* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

Result<uint64_t> GetVarint64(const uint8_t* data, size_t len, size_t* pos) {
  uint64_t value = 0;
  int shift = 0;
  while (*pos < len && shift <= 63) {
    const uint8_t byte = data[*pos];
    ++*pos;
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  return Status::Corruption("truncated or overlong varint");
}

Result<uint64_t> GetVarint64(const std::string& bytes, size_t* pos) {
  return GetVarint64(reinterpret_cast<const uint8_t*>(bytes.data()),
                     bytes.size(), pos);
}

void EncodePostings(const std::vector<DocId>& docs, DocId base,
                    std::string* out) {
  DocId prev = base;
  bool first = true;
  for (const DocId doc : docs) {
    if (first) {
      DUPLEX_CHECK_GE(doc, prev);
      first = false;
    } else {
      DUPLEX_CHECK_GT(doc, prev);
    }
    PutVarint64(doc - prev, out);
    prev = doc;
  }
}

Status DecodePostings(const std::string& bytes, size_t* pos, uint64_t count,
                      DocId base, std::vector<DocId>* docs) {
  DocId prev = base;
  for (uint64_t i = 0; i < count; ++i) {
    Result<uint64_t> gap = GetVarint64(bytes, pos);
    if (!gap.ok()) return gap.status();
    prev = static_cast<DocId>(prev + *gap);
    docs->push_back(prev);
  }
  return Status::OK();
}

std::string EncodePostingBlock(const std::vector<DocId>& docs, DocId base) {
  std::string out;
  out.reserve(docs.size() * 2);
  EncodePostings(docs, base, &out);
  return out;
}

Result<std::vector<DocId>> DecodePostingBlock(const std::string& bytes,
                                              uint64_t count, DocId base) {
  std::vector<DocId> docs;
  docs.reserve(count);
  size_t pos = 0;
  DUPLEX_RETURN_IF_ERROR(DecodePostings(bytes, &pos, count, base, &docs));
  return docs;
}

size_t MaxEncodedSize(size_t count) { return count * 5; }

}  // namespace duplex::core

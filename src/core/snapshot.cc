#include "core/snapshot.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "core/posting_codec.h"
#include "util/logging.h"

namespace duplex::core {
namespace {

constexpr char kMagic[8] = {'D', 'U', 'P', 'X', 'S', 'N', 'P', '1'};
constexpr uint32_t kFlagMaterialized = 1;
constexpr uint32_t kFlagWasLong = 1;
constexpr uint32_t kDictValueSize = 20;  // offset(8) count(8) flags(4)

std::string PackDictEntry(uint64_t offset, uint64_t count, uint32_t flags) {
  std::string v(kDictValueSize, '\0');
  std::memcpy(v.data(), &offset, 8);
  std::memcpy(v.data() + 8, &count, 8);
  std::memcpy(v.data() + 16, &flags, 4);
  return v;
}

Status ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return Status::OK();
}

}  // namespace

Status Snapshot::Write(const InvertedIndex& index,
                       const std::string& prefix) {
  const bool materialized = index.options().materialize;

  // Gather every word with a list, with its home structure.
  struct WordRef {
    WordId word;
    bool was_long;
  };
  std::vector<WordRef> words;
  for (const auto& [word, list] :
       index.long_list_store().directory().lists()) {
    words.push_back({word, true});
  }
  const BucketStore& buckets = index.bucket_store();
  for (uint32_t b = 0; b < buckets.options().num_buckets; ++b) {
    for (const auto& [word, list] : buckets.bucket(b).entries()) {
      words.push_back({word, false});
    }
  }
  std::sort(words.begin(), words.end(),
            [](const WordRef& a, const WordRef& b) { return a.word < b.word; });

  std::string stream;
  stream.append(kMagic, sizeof(kMagic));
  PutVarint64(materialized ? kFlagMaterialized : 0, &stream);
  PutVarint64(words.size(), &stream);

  struct DictRecord {
    WordId word;
    uint64_t offset;
    uint64_t count;
    uint32_t flags;
  };
  std::vector<DictRecord> dict_records;
  dict_records.reserve(words.size());

  for (const WordRef& ref : words) {
    const uint64_t offset = stream.size();
    PutVarint64(ref.word, &stream);
    PutVarint64(ref.was_long ? kFlagWasLong : 0, &stream);
    uint64_t count = 0;
    if (ref.was_long) {
      const LongList* list =
          index.long_list_store().directory().Find(ref.word);
      DUPLEX_CHECK(list != nullptr);
      count = list->total_postings;
      PutVarint64(count, &stream);
      if (materialized) {
        Result<std::vector<DocId>> docs =
            index.long_list_store().ReadPostings(ref.word);
        if (!docs.ok()) return docs.status();
        EncodePostings(*docs, 0, &stream);
      }
    } else {
      const PostingList* list = buckets.Find(ref.word);
      DUPLEX_CHECK(list != nullptr);
      count = list->size();
      PutVarint64(count, &stream);
      if (materialized) {
        DUPLEX_CHECK(list->materialized());
        EncodePostings(list->docs(), 0, &stream);
      }
    }
    dict_records.push_back({ref.word, offset, count,
                            ref.was_long ? kFlagWasLong : 0u});
  }

  // Vocabulary section (string path only; the count-only pipeline has an
  // empty vocabulary).
  const text::Vocabulary& vocabulary = index.vocabulary();
  PutVarint64(vocabulary.size(), &stream);
  for (WordId id = 0; id < vocabulary.size(); ++id) {
    const std::string& word = vocabulary.WordFor(id);
    PutVarint64(word.size(), &stream);
    stream.append(word);
  }

  // Document state.
  PutVarint64(index.next_doc_id(), &stream);
  std::vector<DocId> deleted = index.deleted_docs();
  std::sort(deleted.begin(), deleted.end());
  PutVarint64(deleted.size(), &stream);
  EncodePostings(deleted, 0, &stream);

  {
    std::ofstream out(prefix + ".postings",
                      std::ios::binary | std::ios::trunc);
    if (!out) return Status::Internal("cannot write " + prefix +
                                      ".postings");
    out.write(stream.data(), static_cast<std::streamsize>(stream.size()));
    if (!out) return Status::Internal("short write to snapshot");
  }

  // Dictionary B+-tree on a file-backed device.
  const uint64_t dict_blocks =
      256 + 2 * (words.size() / 100 + 1);
  {
    std::ofstream truncate(prefix + ".dict",
                           std::ios::binary | std::ios::trunc);
  }
  Result<std::unique_ptr<storage::FileBlockDevice>> device =
      storage::FileBlockDevice::Open(prefix + ".dict", dict_blocks, 4096);
  if (!device.ok()) return device.status();
  Result<std::unique_ptr<storage::BPlusTree>> dict =
      storage::BPlusTree::Create(device->get(), kDictValueSize);
  if (!dict.ok()) return dict.status();
  for (const DictRecord& r : dict_records) {
    DUPLEX_RETURN_IF_ERROR((*dict)->Insert(
        r.word, PackDictEntry(r.offset, r.count, r.flags)));
  }
  return (*device)->Sync();
}

Status Snapshot::Load(const std::string& prefix, InvertedIndex* index) {
  DUPLEX_CHECK(index != nullptr);
  std::string stream;
  DUPLEX_RETURN_IF_ERROR(ReadFile(prefix + ".postings", &stream));
  if (stream.size() < sizeof(kMagic) ||
      std::memcmp(stream.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("snapshot: bad magic");
  }
  size_t pos = sizeof(kMagic);
  Result<uint64_t> flags = GetVarint64(stream, &pos);
  if (!flags.ok()) return flags.status();
  const bool materialized = (*flags & kFlagMaterialized) != 0;
  if (materialized != index->options().materialize) {
    return Status::FailedPrecondition(
        "snapshot materialization mode does not match index options");
  }
  Result<uint64_t> word_count = GetVarint64(stream, &pos);
  if (!word_count.ok()) return word_count.status();

  for (uint64_t i = 0; i < *word_count; ++i) {
    Result<uint64_t> word = GetVarint64(stream, &pos);
    if (!word.ok()) return word.status();
    Result<uint64_t> word_flags = GetVarint64(stream, &pos);
    if (!word_flags.ok()) return word_flags.status();
    Result<uint64_t> count = GetVarint64(stream, &pos);
    if (!count.ok()) return count.status();
    PostingList list;
    if (materialized) {
      std::vector<DocId> docs;
      docs.reserve(*count);
      DUPLEX_RETURN_IF_ERROR(
          DecodePostings(stream, &pos, *count, 0, &docs));
      list = PostingList::Materialized(std::move(docs));
    } else {
      list = PostingList::Counted(*count);
    }
    DUPLEX_RETURN_IF_ERROR(
        index->RestoreWord(static_cast<WordId>(*word), list,
                           (*word_flags & kFlagWasLong) != 0));
  }

  Result<uint64_t> vocab_size = GetVarint64(stream, &pos);
  if (!vocab_size.ok()) return vocab_size.status();
  for (uint64_t i = 0; i < *vocab_size; ++i) {
    Result<uint64_t> len = GetVarint64(stream, &pos);
    if (!len.ok()) return len.status();
    if (pos + *len > stream.size()) {
      return Status::Corruption("snapshot: truncated vocabulary");
    }
    const WordId id =
        index->vocabulary().GetOrAdd(stream.substr(pos, *len));
    if (id != i) {
      return Status::Corruption(
          "snapshot: vocabulary ids must restore densely in order");
    }
    pos += *len;
  }

  Result<uint64_t> next_doc = GetVarint64(stream, &pos);
  if (!next_doc.ok()) return next_doc.status();
  Result<uint64_t> n_deleted = GetVarint64(stream, &pos);
  if (!n_deleted.ok()) return n_deleted.status();
  std::vector<DocId> deleted;
  DUPLEX_RETURN_IF_ERROR(
      DecodePostings(stream, &pos, *n_deleted, 0, &deleted));
  index->RestoreDocState(static_cast<DocId>(*next_doc),
                         std::move(deleted));
  return Status::OK();
}

Result<std::unique_ptr<SnapshotReader>> SnapshotReader::Open(
    const std::string& prefix) {
  std::unique_ptr<SnapshotReader> reader(new SnapshotReader());
  reader->postings_path_ = prefix + ".postings";
  DUPLEX_RETURN_IF_ERROR(
      ReadFile(reader->postings_path_, &reader->file_contents_));
  if (reader->file_contents_.size() < sizeof(kMagic) ||
      std::memcmp(reader->file_contents_.data(), kMagic, sizeof(kMagic)) !=
          0) {
    return Status::Corruption("snapshot: bad magic");
  }
  size_t pos = sizeof(kMagic);
  Result<uint64_t> flags = GetVarint64(reader->file_contents_, &pos);
  if (!flags.ok()) return flags.status();
  reader->materialized_ = (*flags & kFlagMaterialized) != 0;

  // Reopen the dictionary with a generous capacity bound; the tree's own
  // meta page records its true extent.
  Result<std::unique_ptr<storage::FileBlockDevice>> device =
      storage::FileBlockDevice::Open(prefix + ".dict", 1 << 24, 4096);
  if (!device.ok()) return device.status();
  reader->dict_device_ = std::move(*device);
  Result<std::unique_ptr<storage::BPlusTree>> dict =
      storage::BPlusTree::Open(reader->dict_device_.get());
  if (!dict.ok()) return dict.status();
  reader->dict_ = std::move(*dict);
  return reader;
}

uint64_t SnapshotReader::word_count() const { return dict_->size(); }

Result<SnapshotReader::DictEntry> SnapshotReader::Lookup(
    WordId word) const {
  Result<std::string> value = dict_->Get(word);
  if (!value.ok()) return value.status();
  DictEntry entry;
  std::memcpy(&entry.offset, value->data(), 8);
  std::memcpy(&entry.count, value->data() + 8, 8);
  std::memcpy(&entry.flags, value->data() + 16, 4);
  return entry;
}

bool SnapshotReader::Contains(WordId word) const {
  return Lookup(word).ok();
}

Result<uint64_t> SnapshotReader::Count(WordId word) const {
  Result<DictEntry> entry = Lookup(word);
  if (!entry.ok()) return entry.status();
  return entry->count;
}

Result<std::vector<DocId>> SnapshotReader::Postings(WordId word) const {
  if (!materialized_) {
    return Status::FailedPrecondition(
        "count-only snapshot has no doc ids");
  }
  Result<DictEntry> entry = Lookup(word);
  if (!entry.ok()) return entry.status();
  size_t pos = entry->offset;
  // Skip the word id, flags, and count varints, then decode the doc ids.
  for (int i = 0; i < 3; ++i) {
    Result<uint64_t> skipped = GetVarint64(file_contents_, &pos);
    if (!skipped.ok()) return skipped.status();
  }
  std::vector<DocId> docs;
  docs.reserve(entry->count);
  DUPLEX_RETURN_IF_ERROR(
      DecodePostings(file_contents_, &pos, entry->count, 0, &docs));
  return docs;
}

}  // namespace duplex::core

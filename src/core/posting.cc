#include "core/posting.h"

#include <algorithm>

namespace duplex::core {

void PostingList::Append(const PostingList& other) {
  if (count_ == 0) {
    *this = other;
    return;
  }
  if (other.count_ == 0) return;
  if (materialized_ && other.materialized_) {
    DUPLEX_CHECK_LT(docs_.back(), other.docs_.front());
    docs_.insert(docs_.end(), other.docs_.begin(), other.docs_.end());
    count_ += other.count_;
    return;
  }
  // Mixing counted and materialized lists degrades to counted.
  materialized_ = false;
  docs_.clear();
  count_ += other.count_;
}

void PostingList::Add(DocId doc) {
  if (count_ == 0) materialized_ = true;
  if (materialized_) {
    if (!docs_.empty()) DUPLEX_CHECK_LT(docs_.back(), doc);
    docs_.push_back(doc);
  }
  ++count_;
}

PostingList PostingList::TakePrefix(uint64_t n) {
  DUPLEX_CHECK_LE(n, count_);
  PostingList prefix;
  prefix.count_ = n;
  prefix.materialized_ = materialized_;
  if (materialized_) {
    prefix.docs_.assign(docs_.begin(),
                        docs_.begin() + static_cast<ptrdiff_t>(n));
    docs_.erase(docs_.begin(), docs_.begin() + static_cast<ptrdiff_t>(n));
  }
  count_ -= n;
  return prefix;
}

}  // namespace duplex::core

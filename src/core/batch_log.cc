#include "core/batch_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "core/posting_codec.h"
#include "storage/superblock.h"
#include "util/hash.h"
#include "util/log.h"
#include "util/logging.h"

namespace duplex::core {
namespace {

constexpr char kBatchRecord = 'B';
constexpr char kAppliedRecord = 'A';
constexpr char kCompactionRecord = 'C';
// Base-epoch record: first record of a tail-truncated log, carrying the
// id of the oldest batch the log still holds. Everything below that id
// lives only in the checkpoint the truncation followed.
constexpr char kEpochRecord = 'E';
constexpr uint64_t kFlagMaterialized = 1;
// The record carries a trailing word-string section (one length-prefixed
// string per entry). Added after materialized records shipped without
// strings; decode treats its absence as "no strings recorded", so older
// logs stay readable.
constexpr uint64_t kFlagWords = 2;

// Frames one record exactly as AppendRecord writes it: type byte, varint
// payload length, payload, FNV-64 over (type, payload). TruncateTo uses
// this to rebuild the log image offline.
void AppendRecordBytes(char type, const std::string& payload,
                       std::string* out) {
  out->push_back(type);
  PutVarint64(payload.size(), out);
  *out += payload;
  const uint64_t checksum =
      Fnv1a64(payload.data(), payload.size(), Fnv1a64(&type, 1));
  out->append(reinterpret_cast<const char*>(&checksum), 8);
}

std::string EncodeBatchPayload(uint64_t id, bool materialized,
                               const text::BatchUpdate& counts,
                               const text::InvertedBatch& docs,
                               const std::vector<std::string>& words) {
  DUPLEX_CHECK(words.empty() || words.size() == docs.entries.size());
  const bool with_words = materialized && !words.empty();
  std::string payload;
  PutVarint64(id, &payload);
  PutVarint64((materialized ? kFlagMaterialized : 0) |
                  (with_words ? kFlagWords : 0),
              &payload);
  if (materialized) {
    PutVarint64(docs.entries.size(), &payload);
    for (const auto& entry : docs.entries) {
      PutVarint64(entry.word, &payload);
      PutVarint64(entry.docs.size(), &payload);
      EncodePostings(entry.docs, 0, &payload);
    }
    if (with_words) {
      for (const std::string& word : words) {
        PutVarint64(word.size(), &payload);
        payload += word;
      }
    }
  } else {
    PutVarint64(counts.pairs.size(), &payload);
    for (const auto& pair : counts.pairs) {
      PutVarint64(pair.word, &payload);
      PutVarint64(pair.count, &payload);
    }
  }
  return payload;
}

Status DecodeBatchPayload(const std::string& payload,
                          BatchLog::LoggedBatch* batch) {
  size_t pos = 0;
  Result<uint64_t> id = GetVarint64(payload, &pos);
  if (!id.ok()) return id.status();
  batch->id = *id;
  Result<uint64_t> flags = GetVarint64(payload, &pos);
  if (!flags.ok()) return flags.status();
  batch->materialized = (*flags & kFlagMaterialized) != 0;
  Result<uint64_t> entries = GetVarint64(payload, &pos);
  if (!entries.ok()) return entries.status();
  for (uint64_t i = 0; i < *entries; ++i) {
    Result<uint64_t> word = GetVarint64(payload, &pos);
    if (!word.ok()) return word.status();
    Result<uint64_t> count = GetVarint64(payload, &pos);
    if (!count.ok()) return count.status();
    batch->counts.pairs.push_back(
        {static_cast<WordId>(*word), static_cast<uint32_t>(*count)});
    if (batch->materialized) {
      std::vector<DocId> doc_ids;
      doc_ids.reserve(*count);
      DUPLEX_RETURN_IF_ERROR(
          DecodePostings(payload, &pos, *count, 0, &doc_ids));
      batch->docs.entries.push_back(
          {static_cast<WordId>(*word), std::move(doc_ids)});
    }
  }
  if ((*flags & kFlagWords) != 0) {
    if (!batch->materialized) {
      return Status::Corruption(
          "batch-log word strings on a count-only record");
    }
    batch->words.reserve(*entries);
    for (uint64_t i = 0; i < *entries; ++i) {
      Result<uint64_t> len = GetVarint64(payload, &pos);
      if (!len.ok()) return len.status();
      if (pos + *len > payload.size()) {
        return Status::Corruption("batch-log word string truncated");
      }
      batch->words.emplace_back(payload, pos, *len);
      pos += *len;
    }
  }
  if (pos != payload.size()) {
    return Status::Corruption("batch-log payload has trailing bytes");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<BatchLog>> BatchLog::Open(const std::string& path) {
  std::unique_ptr<BatchLog> log(new BatchLog(path));
  DUPLEX_RETURN_IF_ERROR(log->Scan());
  log->file_ = std::fopen(path.c_str(), "ab");
  if (log->file_ == nullptr) {
    return Status::Internal("cannot open batch log " + path);
  }
  return log;
}

BatchLog::~BatchLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Status BatchLog::Scan() {
  std::string contents;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      contents.assign(std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>());
    }
  }
  size_t pos = 0;
  size_t valid_end = 0;
  while (pos < contents.size()) {
    const size_t record_start = pos;
    const char type = contents[pos++];
    size_t len_pos = pos;
    Result<uint64_t> len = GetVarint64(contents, &len_pos);
    if (!len.ok()) break;  // torn tail
    pos = len_pos;
    if (pos + *len + 8 > contents.size()) break;  // torn tail
    const std::string payload = contents.substr(pos, *len);
    pos += *len;
    uint64_t stored_checksum = 0;
    std::memcpy(&stored_checksum, contents.data() + pos, 8);
    pos += 8;
    // Damage in the FINAL record is a torn tail by another name — the
    // crash hit mid-append, the record was never durable, and recovery's
    // contract is to drop it (with a warning) and carry on. Damage with
    // intact records after it means the file rotted in place: fatal.
    const bool is_final_record = pos == contents.size();
    const auto tail_or_fatal = [&](Status damage) {
      if (!is_final_record) return damage;
      if (GlobalLog() != nullptr) {
        LogWarn("core.wal.torn_tail")
            .Str("path", path_)
            .U64("offset", record_start)
            .Str("damage", damage.ToString());
      } else {
        std::cerr << "batch log " << path_ << ": dropping damaged final "
                  << "record at offset " << record_start << " ("
                  << damage.ToString() << ")\n";
      }
      return Status::OK();
    };
    const uint64_t checksum =
        Fnv1a64(payload.data(), payload.size(),
                Fnv1a64(&type, 1));
    if (checksum != stored_checksum) {
      DUPLEX_RETURN_IF_ERROR(tail_or_fatal(Status::Corruption(
          "batch log checksum mismatch at offset " +
          std::to_string(record_start))));
      break;
    }
    if (type == kBatchRecord) {
      LoggedBatch batch;
      Status decoded = DecodeBatchPayload(payload, &batch);
      if (decoded.ok() && batch.id != base_epoch_ + batches_.size()) {
        decoded = Status::Corruption("batch log ids out of sequence");
      }
      if (!decoded.ok()) {
        DUPLEX_RETURN_IF_ERROR(tail_or_fatal(std::move(decoded)));
        break;
      }
      batches_.push_back(std::move(batch));
      applied_.push_back(false);
    } else if (type == kAppliedRecord) {
      size_t id_pos = 0;
      Result<uint64_t> id = GetVarint64(payload, &id_pos);
      Status decoded = id.ok() ? Status::OK() : id.status();
      if (decoded.ok() &&
          (*id < base_epoch_ || *id - base_epoch_ >= applied_.size())) {
        decoded = Status::Corruption("applied record for unknown batch");
      }
      if (!decoded.ok()) {
        DUPLEX_RETURN_IF_ERROR(tail_or_fatal(std::move(decoded)));
        break;
      }
      if (!applied_[*id - base_epoch_]) {
        applied_[*id - base_epoch_] = true;
        ++applied_count_;
      }
    } else if (type == kEpochRecord) {
      size_t e_pos = 0;
      Result<uint64_t> base = GetVarint64(payload, &e_pos);
      Status decoded = base.ok() ? Status::OK() : base.status();
      if (decoded.ok() && e_pos != payload.size()) {
        decoded = Status::Corruption("epoch record has trailing bytes");
      }
      if (decoded.ok() && record_start != 0) {
        // TruncateTo writes the whole file in one rename; an epoch record
        // anywhere but the head means the file was stitched together.
        decoded = Status::Corruption("epoch record not at log head");
      }
      if (!decoded.ok()) {
        DUPLEX_RETURN_IF_ERROR(tail_or_fatal(std::move(decoded)));
        break;
      }
      base_epoch_ = *base;
    } else if (type == kCompactionRecord) {
      size_t c_pos = 0;
      LoggedCompaction compaction;
      Result<uint64_t> lists = GetVarint64(payload, &c_pos);
      Status decoded = lists.ok() ? Status::OK() : lists.status();
      if (decoded.ok()) {
        compaction.lists = *lists;
        Result<uint64_t> blocks = GetVarint64(payload, &c_pos);
        Result<uint64_t> postings =
            blocks.ok() ? GetVarint64(payload, &c_pos) : blocks;
        if (!postings.ok()) {
          decoded = postings.status();
        } else {
          compaction.blocks_reclaimed = *blocks;
          compaction.postings = *postings;
          if (c_pos != payload.size()) {
            decoded =
                Status::Corruption("compaction record has trailing bytes");
          }
        }
      }
      if (!decoded.ok()) {
        DUPLEX_RETURN_IF_ERROR(tail_or_fatal(std::move(decoded)));
        break;
      }
      compactions_.push_back(compaction);
    } else {
      DUPLEX_RETURN_IF_ERROR(tail_or_fatal(
          Status::Corruption("unknown batch-log record type")));
      break;
    }
    valid_end = pos;
  }
  next_id_ = base_epoch_ + batches_.size();
  if (valid_end < contents.size()) {
    // Drop the torn tail so the next append starts at a record boundary.
    if (::truncate(path_.c_str(),
                   static_cast<off_t>(valid_end)) != 0) {
      return Status::Internal("cannot truncate torn batch-log tail");
    }
  }
  return Status::OK();
}

Status BatchLog::AppendRecord(char type, const std::string& payload) {
  DUPLEX_CHECK(file_ != nullptr);
  ScopedLatency timer(m_append_ns_);
  std::string record(1, type);
  PutVarint64(payload.size(), &record);
  record += payload;
  const uint64_t checksum =
      Fnv1a64(payload.data(), payload.size(), Fnv1a64(&type, 1));
  record.append(reinterpret_cast<const char*>(&checksum), 8);
  if (std::fwrite(record.data(), 1, record.size(), file_) !=
      record.size()) {
    return Status::Internal("batch log write failed");
  }
  if (std::fflush(file_) != 0) {
    return Status::Internal("batch log flush failed");
  }
  if (fail_next_syncs_ > 0) {
    // Injected durability failure: the bytes reached the kernel (fflush
    // succeeded) but the platter sync "failed". The record may or may not
    // survive a crash — exactly the ambiguity real fsync failures leave.
    --fail_next_syncs_;
    return Status::IoError("injected fdatasync failure on batch log " +
                           path_);
  }
  if (fsync_enabled_) {
    // fflush only moved the bytes into the kernel; "durable before any
    // index I/O" needs them on the platter. fdatasync skips the inode
    // timestamp update — record boundaries are self-describing, so file
    // length metadata is not load-bearing.
    ScopedLatency sync_timer(m_fsync_ns_);
    if (::fdatasync(::fileno(file_)) != 0) {
      // Same ambiguity as the injected failure above: the bytes are in
      // the kernel, the platter promise failed. Typed IoError so callers
      // (and AppendBatchRecord) can distinguish this from a torn write.
      return Status::IoError("batch log fdatasync failed");
    }
    ++syncs_;
  }
  return Status::OK();
}

Result<uint64_t> BatchLog::AppendBatchRecord(const std::string& payload,
                                             LoggedBatch batch) {
  const Status appended = AppendRecord(kBatchRecord, payload);
  if (!appended.ok()) {
    if (appended.IsIoError()) {
      // The record bytes reached the kernel but the durability barrier
      // failed: whether they survive a crash is unknowable here. Keep
      // the batch as an unapplied entry — exactly what a reopen of this
      // file would reconstruct — so later appends continue the dense id
      // sequence instead of reusing this id and turning the next record
      // into out-of-sequence damage that recovery would drop.
      batches_.push_back(std::move(batch));
      applied_.push_back(false);
      ++next_id_;
    }
    return appended;
  }
  const uint64_t id = batch.id;
  batches_.push_back(std::move(batch));
  applied_.push_back(false);
  ++next_id_;
  return id;
}

Result<uint64_t> BatchLog::AppendBatch(const text::BatchUpdate& batch) {
  LoggedBatch logged;
  logged.id = next_id_;
  logged.materialized = false;
  logged.counts = batch;
  return AppendBatchRecord(
      EncodeBatchPayload(next_id_, false, batch, {}, {}), std::move(logged));
}

Result<uint64_t> BatchLog::AppendBatch(const text::InvertedBatch& batch) {
  return AppendBatch(batch, {});
}

Result<uint64_t> BatchLog::AppendBatch(const text::InvertedBatch& batch,
                                       std::vector<std::string> words) {
  LoggedBatch logged;
  logged.id = next_id_;
  logged.materialized = true;
  logged.counts = batch.ToBatchUpdate();
  logged.docs = batch;
  logged.words = std::move(words);
  // Sequenced before the call: the LoggedBatch argument is constructed by
  // move, and argument evaluation order is unspecified.
  std::string payload =
      EncodeBatchPayload(next_id_, true, logged.counts, batch, logged.words);
  return AppendBatchRecord(std::move(payload), std::move(logged));
}

Status BatchLog::MarkApplied(uint64_t batch_id) {
  if (batch_id < base_epoch_ ||
      batch_id - base_epoch_ >= batches_.size()) {
    return Status::InvalidArgument("unknown batch id");
  }
  const size_t idx = batch_id - base_epoch_;
  if (applied_[idx]) return Status::OK();
  std::string payload;
  PutVarint64(batch_id, &payload);
  DUPLEX_RETURN_IF_ERROR(AppendRecord(kAppliedRecord, payload));
  applied_[idx] = true;
  ++applied_count_;
  return Status::OK();
}

std::vector<const BatchLog::LoggedBatch*> BatchLog::UnappliedBatches()
    const {
  std::vector<const LoggedBatch*> result;
  for (size_t i = 0; i < batches_.size(); ++i) {
    if (!applied_[i]) result.push_back(&batches_[i]);
  }
  return result;
}

Status BatchLog::ApplyLogged(InvertedIndex* index,
                             const text::BatchUpdate& batch) {
  DUPLEX_CHECK(index != nullptr);
  Result<uint64_t> id = AppendBatch(batch);
  if (!id.ok()) return id.status();
  DUPLEX_RETURN_IF_ERROR(index->ApplyBatchUpdate(batch));
  // Write-back pools may still hold this batch's index writes as dirty
  // frames; they must reach the devices before the commit record, or a
  // crash after MarkApplied would lose writes the log says are applied.
  DUPLEX_RETURN_IF_ERROR(index->FlushCaches());
  return MarkApplied(*id);
}

Status BatchLog::ApplyLogged(InvertedIndex* index,
                             const text::InvertedBatch& batch) {
  DUPLEX_CHECK(index != nullptr);
  Result<uint64_t> id = AppendBatch(batch);
  if (!id.ok()) return id.status();
  DUPLEX_RETURN_IF_ERROR(index->ApplyInvertedBatch(batch));
  DUPLEX_RETURN_IF_ERROR(index->FlushCaches());
  return MarkApplied(*id);
}

Result<CompactionStats> BatchLog::CompactLogged(InvertedIndex* index) {
  DUPLEX_CHECK(index != nullptr);
  Result<CompactionStats> round = index->CompactOnce();
  if (!round.ok()) return round.status();
  if (round->lists_compacted == 0) return round;
  // The rewritten chunks may still sit in dirty write-back frames; push
  // them down before the log claims the round happened.
  DUPLEX_RETURN_IF_ERROR(index->FlushCaches());
  LoggedCompaction logged;
  logged.lists = round->lists_compacted;
  logged.blocks_reclaimed = round->blocks_reclaimed();
  logged.postings = round->postings_rewritten;
  std::string payload;
  PutVarint64(logged.lists, &payload);
  PutVarint64(logged.blocks_reclaimed, &payload);
  PutVarint64(logged.postings, &payload);
  DUPLEX_RETURN_IF_ERROR(AppendRecord(kCompactionRecord, payload));
  compactions_.push_back(logged);
  return round;
}

Status BatchLog::RecoverInto(InvertedIndex* index) {
  DUPLEX_CHECK(index != nullptr);
  ScopedLatency timer(m_replay_ns_);
  Span span = TraceSpan("core.wal_recover");
  for (const LoggedBatch* batch : UnappliedBatches()) {
    DUPLEX_RETURN_IF_ERROR(ApplyOne(index, *batch));
    DUPLEX_RETURN_IF_ERROR(MarkApplied(batch->id));
  }
  return Status::OK();
}

Status BatchLog::ReplayInto(InvertedIndex* index) {
  DUPLEX_CHECK(index != nullptr);
  if (base_epoch_ != 0) {
    return Status::FailedPrecondition(
        "batch log was tail-truncated at epoch " +
        std::to_string(base_epoch_) +
        "; full replay is impossible, recover from the checkpoint");
  }
  ScopedLatency timer(m_replay_ns_);
  Span span = TraceSpan("core.wal_replay");
  // Every batch, applied or not, in append order: the caller starts from a
  // freshly constructed (empty) index, so replaying the full history is
  // idempotent by construction — there is no partially-applied device
  // state to double-count, whatever the crashed instance managed to write.
  for (const LoggedBatch& batch : batches_) {
    DUPLEX_RETURN_IF_ERROR(ApplyOne(index, batch));
  }
  for (size_t i = 0; i < batches_.size(); ++i) {
    if (!applied_[i]) DUPLEX_RETURN_IF_ERROR(MarkApplied(batches_[i].id));
  }
  return Status::OK();
}

Status BatchLog::ReplayFrom(
    uint64_t epoch, const std::function<Status(const LoggedBatch&)>& apply) {
  if (epoch < base_epoch_) {
    return Status::FailedPrecondition(
        "replay epoch " + std::to_string(epoch) +
        " predates the log's base epoch " + std::to_string(base_epoch_) +
        "; the needed tail was truncated away");
  }
  ScopedLatency timer(m_replay_ns_);
  Span span = TraceSpan("core.wal_replay_tail");
  for (size_t i = 0; i < batches_.size(); ++i) {
    if (batches_[i].id < epoch) {
      if (!applied_[i]) {
        return Status::Corruption(
            "batch " + std::to_string(batches_[i].id) +
            " is unapplied but below replay epoch " +
            std::to_string(epoch) +
            "; the checkpoint claims coverage the log contradicts");
      }
      continue;
    }
    DUPLEX_RETURN_IF_ERROR(apply(batches_[i]));
  }
  for (size_t i = 0; i < batches_.size(); ++i) {
    if (batches_[i].id >= epoch && !applied_[i]) {
      DUPLEX_RETURN_IF_ERROR(MarkApplied(batches_[i].id));
    }
  }
  return Status::OK();
}

Status BatchLog::ReplayFrom(uint64_t epoch, InvertedIndex* index) {
  DUPLEX_CHECK(index != nullptr);
  return ReplayFrom(epoch, [index](const LoggedBatch& batch) {
    return ApplyOne(index, batch);
  });
}

Status BatchLog::ApplyOne(InvertedIndex* index, const LoggedBatch& batch) {
  if (index->options().materialize) {
    if (!batch.materialized) {
      return Status::FailedPrecondition(
          "count-only batch cannot be replayed into a materialized "
          "index");
    }
    DUPLEX_RETURN_IF_ERROR(index->ApplyInvertedBatch(batch.docs));
  } else {
    DUPLEX_RETURN_IF_ERROR(index->ApplyBatchUpdate(batch.counts));
  }
  // Same ordering as ApplyLogged: dirty frames down before the commit
  // record.
  return index->FlushCaches();
}

Status BatchLog::TruncateTo(uint64_t new_base) {
  if (new_base <= base_epoch_) return Status::OK();  // already truncated
  if (new_base > next_id_) {
    return Status::InvalidArgument(
        "truncation epoch " + std::to_string(new_base) +
        " is beyond the log's next id " + std::to_string(next_id_));
  }
  const size_t keep_from = new_base - base_epoch_;
  for (size_t i = 0; i < keep_from; ++i) {
    if (!applied_[i]) {
      return Status::FailedPrecondition(
          "batch " + std::to_string(base_epoch_ + i) +
          " is not applied; a checkpoint cannot cover uncommitted work");
    }
  }
  // Build the replacement log image: epoch base record, then the
  // surviving tail's batch records, then commit records for the applied
  // ones. Compaction records describe pre-checkpoint reclamation and are
  // dropped with the prefix.
  std::string image;
  {
    std::string payload;
    PutVarint64(new_base, &payload);
    AppendRecordBytes(kEpochRecord, payload, &image);
  }
  for (size_t i = keep_from; i < batches_.size(); ++i) {
    const LoggedBatch& b = batches_[i];
    AppendRecordBytes(
        kBatchRecord,
        EncodeBatchPayload(b.id, b.materialized, b.counts, b.docs, b.words),
        &image);
  }
  for (size_t i = keep_from; i < batches_.size(); ++i) {
    if (!applied_[i]) continue;
    std::string payload;
    PutVarint64(batches_[i].id, &payload);
    AppendRecordBytes(kAppliedRecord, payload, &image);
  }
  // Write the image to <path>.tmp (fault-aware, chunked), sync it, then
  // rename over the live log. The rename is the atomic flip: a crash
  // before it leaves the old log (checkpoint + old tail still recover);
  // after it, the new log is complete and synced.
  const std::string tmp = path_ + ".tmp";
  const int fd = ::open(tmp.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("open(" + tmp + "): " + std::strerror(errno));
  }
  Status s = Status::OK();
  constexpr size_t kChunk = 4096;
  for (size_t off = 0; s.ok() && off < image.size(); off += kChunk) {
    const size_t len = std::min(kChunk, image.size() - off);
    s = storage::FaultyPWrite(
        fd, tmp, off, reinterpret_cast<const uint8_t*>(image.data()) + off,
        len, fault_.get());
  }
  if (s.ok()) s = storage::FaultySync(fd, tmp, fault_.get());
  ::close(fd);
  if (s.ok() && fault_ != nullptr) {
    // The rename counts as one physical op too, so crash sweeps can stop
    // the protocol between "tail written" and "tail installed".
    const storage::FaultSchedule::Decision d =
        fault_->NextOp(/*is_write=*/true, 0);
    if (d.fault == storage::FaultSchedule::Fault::kCrash ||
        d.fault == storage::FaultSchedule::Fault::kTransientError) {
      s = Status::IoError("injected fault: rename frozen at op " +
                          std::to_string(d.op) + " (" + tmp + ")");
    }
  }
  if (!s.ok()) {
    ::unlink(tmp.c_str());
    return s;
  }
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    const Status rename_status = Status::IoError(
        "rename(" + tmp + ", " + path_ + "): " + std::strerror(errno));
    ::unlink(tmp.c_str());
    file_ = std::fopen(path_.c_str(), "ab");
    return rename_status;
  }
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal("cannot reopen batch log after truncation");
  }
  batches_.erase(batches_.begin(),
                 batches_.begin() + static_cast<ptrdiff_t>(keep_from));
  applied_.erase(applied_.begin(),
                 applied_.begin() + static_cast<ptrdiff_t>(keep_from));
  compactions_.clear();
  applied_count_ = 0;
  for (const bool a : applied_) applied_count_ += a ? 1 : 0;
  base_epoch_ = new_base;
  return Status::OK();
}

Status BatchLog::Truncate() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (::truncate(path_.c_str(), 0) != 0) {
    return Status::Internal("cannot truncate batch log");
  }
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal("cannot reopen batch log");
  }
  batches_.clear();
  applied_.clear();
  compactions_.clear();
  applied_count_ = 0;
  next_id_ = 0;
  base_epoch_ = 0;
  return Status::OK();
}

}  // namespace duplex::core

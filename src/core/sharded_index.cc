#include "core/sharded_index.h"

#include <algorithm>
#include <mutex>

#include "core/batch_log.h"
#include "util/logging.h"

namespace duplex::core {

ShardedIndexOptions ShardedIndexOptions::Partition(const IndexOptions& total,
                                                   uint32_t num_shards,
                                                   uint32_t threads) {
  DUPLEX_CHECK(num_shards > 0);
  ShardedIndexOptions opts;
  opts.shard = total;
  opts.shard.buckets.num_buckets =
      std::max<uint32_t>(1, total.buckets.num_buckets / num_shards);
  if (total.cache.enabled()) {
    // One pool per shard (a shared pool would re-serialize the shards on
    // its locks); divide the global frame budget so the sharded index
    // caches no more memory than the unsharded one.
    opts.shard.cache.capacity_blocks =
        std::max<uint64_t>(1, total.cache.capacity_blocks / num_shards);
  }
  opts.num_shards = num_shards;
  opts.threads = threads;
  return opts;
}

ShardedIndex::ShardedIndex(const ShardedIndexOptions& options)
    : options_(options),
      pool_(options.num_shards <= 1
                ? 0
                : (options.threads == 0 ? options.num_shards
                                        : options.threads)) {
  DUPLEX_CHECK(options.num_shards > 0);
  shards_.reserve(options.num_shards);
  for (uint32_t s = 0; s < options.num_shards; ++s) {
    if (options.customize_shard) {
      IndexOptions tweaked = options.shard;
      options.customize_shard(s, tweaked);
      shards_.push_back(std::make_unique<IndexShard>(tweaked));
    } else {
      shards_.push_back(std::make_unique<IndexShard>(options.shard));
    }
  }
  m_shard_apply_ns_.resize(options.num_shards, nullptr);
  for (uint32_t s = 0; s < options.num_shards; ++s) {
    m_shard_apply_ns_[s] =
        GlobalLatency("duplex_core_shard_apply_ns",
                      "Per-shard batch apply wall-clock (shard skew)",
                      "shard=\"" + std::to_string(s) + "\"");
  }
  m_partition_ns_ = GlobalLatency(
      "duplex_core_partition_ns",
      "Wall-clock of hash-partitioning a batch across shards");
}

ShardedIndex::~ShardedIndex() { StopBackgroundCompaction(); }

Status ShardedIndex::ParallelOverShards(
    const std::function<Status(uint32_t)>& fn) {
  std::vector<Status> statuses(num_shards());
  pool_.ParallelFor(num_shards(),
                    [&](uint32_t s) { statuses[s] = fn(s); });
  for (Status& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

Status ShardedIndex::ApplyBatchUpdate(const text::BatchUpdate& batch) {
  std::vector<text::BatchUpdate> parts;
  {
    ScopedLatency timer(m_partition_ns_);
    Span span = TraceSpan("core.partition_batch");
    parts = text::PartitionBatch(batch, num_shards());
  }
  return ParallelOverShards([&](uint32_t s) {
    ScopedLatency timer(m_shard_apply_ns_[s]);
    Span span = TraceSpan("core.shard_apply");
    span.AddAttr("shard", static_cast<uint64_t>(s));
    return shards_[s]->WithWrite([&](InvertedIndex& index) {
      return index.ApplyBatchUpdate(parts[s]);
    });
  });
}

Status ShardedIndex::ApplyInvertedBatch(const text::InvertedBatch& batch) {
  std::vector<text::InvertedBatch> parts;
  {
    ScopedLatency timer(m_partition_ns_);
    Span span = TraceSpan("core.partition_batch");
    parts = text::PartitionBatch(batch, num_shards());
  }
  DocId max_doc = 0;
  bool any = false;
  for (const text::InvertedBatch::Entry& entry : batch.entries) {
    if (!entry.docs.empty()) {
      max_doc = std::max(max_doc, entry.docs.back());
      any = true;
    }
  }
  DUPLEX_RETURN_IF_ERROR(ParallelOverShards([&](uint32_t s) {
    ScopedLatency timer(m_shard_apply_ns_[s]);
    Span span = TraceSpan("core.shard_apply");
    span.AddAttr("shard", static_cast<uint64_t>(s));
    return shards_[s]->WithWrite([&](InvertedIndex& index) {
      return index.ApplyInvertedBatch(parts[s]);
    });
  }));
  if (any) {
    std::unique_lock lock(doc_mutex_);
    next_doc_id_ = std::max(next_doc_id_, max_doc + 1);
  }
  return Status::OK();
}

DocId ShardedIndex::AddDocument(const std::string& text) {
  std::unique_lock lock(doc_mutex_);
  const DocId doc =
      next_doc_id_ + static_cast<DocId>(memory_index_.document_count());
  memory_index_.AddDocument(doc, text);
  return doc;
}

Status ShardedIndex::FlushDocuments() {
  return FlushDocumentsLogged(nullptr, nullptr);
}

Status ShardedIndex::FlushDocumentsLogged(BatchLog* log, uint64_t* batch_id) {
  if (batch_id != nullptr) *batch_id = 0;
  std::unique_lock lock(doc_mutex_);
  if (memory_index_.empty()) return Status::OK();
  text::InvertedBatch batch;
  batch.entries.reserve(memory_index_.lists().size());
  for (const auto& [word, docs] : memory_index_.lists()) {
    batch.entries.push_back({word, docs});
  }
  std::sort(batch.entries.begin(), batch.entries.end(),
            [](const text::InvertedBatch::Entry& a,
               const text::InvertedBatch::Entry& b) {
              return a.word < b.word;
            });
  const DocId new_next =
      next_doc_id_ + static_cast<DocId>(memory_index_.document_count());
  uint64_t logged_id = 0;
  if (log != nullptr) {
    // WAL protocol step 1: the batch is durable before any shard I/O.
    // The record carries each entry's word string so a log-only rebuild
    // can reinstate the vocabulary, not just the postings.
    std::vector<std::string> words;
    words.reserve(batch.entries.size());
    for (const text::InvertedBatch::Entry& entry : batch.entries) {
      words.push_back(vocabulary_.WordFor(entry.word));
    }
    Result<uint64_t> appended = log->AppendBatch(batch, std::move(words));
    if (!appended.ok()) return appended.status();
    logged_id = *appended;
  }
  std::vector<text::InvertedBatch> parts =
      text::PartitionBatch(batch, num_shards());
  DUPLEX_RETURN_IF_ERROR(ParallelOverShards([&](uint32_t s) {
    return shards_[s]->WithWrite([&](InvertedIndex& index) {
      return index.ApplyInvertedBatch(parts[s]);
    });
  }));
  next_doc_id_ = std::max(next_doc_id_, new_next);
  memory_index_.Clear();
  if (log != nullptr) {
    // Steps 2-3: dirty cache frames on the devices, then the commit
    // record — a crash in between replays the batch, never loses it.
    DUPLEX_RETURN_IF_ERROR(FlushCaches());
    DUPLEX_RETURN_IF_ERROR(log->MarkApplied(logged_id));
    if (batch_id != nullptr) *batch_id = logged_id;
  }
  return Status::OK();
}

Result<ShardedIndex::LiveBatch> ShardedIndex::BuildLiveBatch(
    const std::vector<std::string>& documents) {
  std::unique_lock lock(doc_mutex_);
  if (!memory_index_.empty()) {
    return Status::FailedPrecondition(
        "live batch over a non-empty document buffer: flush first");
  }
  LiveBatch out;
  out.first_doc = next_doc_id_;
  out.documents = static_cast<uint32_t>(documents.size());
  out.batch =
      text::BatchInverter(tokenizer_, &vocabulary_).Invert(documents,
                                                           &next_doc_id_);
  out.words.reserve(out.batch.entries.size());
  for (const text::InvertedBatch::Entry& entry : out.batch.entries) {
    out.words.push_back(vocabulary_.WordFor(entry.word));
  }
  return out;
}

size_t ShardedIndex::buffered_documents() const {
  std::shared_lock lock(doc_mutex_);
  return memory_index_.document_count();
}

ListLocation ShardedIndex::Locate(WordId word) const {
  std::shared_lock doc_lock(doc_mutex_);
  ListLocation loc = shards_[ShardFor(word)]->WithRead(
      [&](const InvertedIndex& index) { return index.Locate(word); });
  // The shard's own memory index is always empty (documents buffer at the
  // sharded level); merge our buffer exactly as InvertedIndex::Locate does.
  if (const std::vector<DocId>* buffered = memory_index_.Find(word)) {
    loc.exists = true;
    loc.postings += buffered->size();
  }
  return loc;
}

ListLocation ShardedIndex::Locate(std::string_view word) const {
  std::shared_lock doc_lock(doc_mutex_);
  const WordId id = vocabulary_.Lookup(word);
  if (id == kInvalidWord) return ListLocation{};
  ListLocation loc = shards_[ShardFor(id)]->WithRead(
      [&](const InvertedIndex& index) { return index.Locate(id); });
  if (const std::vector<DocId>* buffered = memory_index_.Find(id)) {
    loc.exists = true;
    loc.postings += buffered->size();
  }
  return loc;
}

Result<std::vector<DocId>> ShardedIndex::GetPostings(WordId word) const {
  std::shared_lock doc_lock(doc_mutex_);
  Result<std::vector<DocId>> flushed = shards_[ShardFor(word)]->WithRead(
      [&](const InvertedIndex& index) { return index.GetPostings(word); });
  if (!flushed.ok() && !flushed.status().IsNotFound()) {
    return flushed.status();
  }
  std::vector<DocId> docs =
      flushed.ok() ? std::move(*flushed) : std::vector<DocId>{};
  bool found = flushed.ok();
  // Buffered postings are strictly newer than anything flushed.
  if (const std::vector<DocId>* buffered = memory_index_.Find(word)) {
    DUPLEX_CHECK(docs.empty() || docs.back() < buffered->front());
    docs.insert(docs.end(), buffered->begin(), buffered->end());
    found = true;
  }
  if (!found) return Status::NotFound("word has no inverted list");
  if (!deleted_.empty()) {
    docs.erase(std::remove_if(docs.begin(), docs.end(),
                              [&](DocId d) { return deleted_.contains(d); }),
               docs.end());
  }
  return docs;
}

Result<std::vector<DocId>> ShardedIndex::GetPostings(
    std::string_view word) const {
  WordId id;
  {
    std::shared_lock doc_lock(doc_mutex_);
    id = vocabulary_.Lookup(word);
  }
  if (id == kInvalidWord) return Status::NotFound("unknown word");
  return GetPostings(id);
}

void ShardedIndex::ForEachWord(
    const std::function<void(WordId)>& fn) const {
  std::shared_lock doc_lock(doc_mutex_);
  // Shards partition the word space, so their enumerations are disjoint;
  // one shard's shared lock is held at a time (never two).
  for (const auto& shard : shards_) {
    shard->WithRead(
        [&](const InvertedIndex& index) { index.ForEachWord(fn); });
  }
  // The index-wide document buffer may hold words the shards also have;
  // emit only the ones the owning shard does not know yet.
  for (const auto& [word, list] : memory_index_.lists()) {
    const bool flushed = shards_[ShardFor(word)]->WithRead(
        [&](const InvertedIndex& index) { return index.Locate(word).exists; });
    if (!flushed) fn(word);
  }
}

void ShardedIndex::DeleteDocument(DocId doc) {
  {
    std::unique_lock lock(doc_mutex_);
    deleted_.insert(doc);
  }
  // The owning shard is unknown (any shard's lists may contain the doc);
  // every shard records the deletion and filters its own reads.
  for (auto& shard : shards_) {
    shard->WithWrite(
        [&](InvertedIndex& index) { index.DeleteDocument(doc); });
  }
}

bool ShardedIndex::IsDeleted(DocId doc) const {
  std::shared_lock lock(doc_mutex_);
  return deleted_.contains(doc);
}

size_t ShardedIndex::deleted_count() const {
  std::shared_lock lock(doc_mutex_);
  return deleted_.size();
}

Status ShardedIndex::SweepDeletions() {
  DUPLEX_RETURN_IF_ERROR(ParallelOverShards([&](uint32_t s) {
    return shards_[s]->WithWrite(
        [](InvertedIndex& index) { return index.SweepDeletions(); });
  }));
  std::unique_lock lock(doc_mutex_);
  deleted_.clear();
  return Status::OK();
}

Status ShardedIndex::GrowBuckets(uint32_t new_num_buckets_per_shard,
                                 uint64_t new_bucket_capacity) {
  return ParallelOverShards([&](uint32_t s) {
    return shards_[s]->WithWrite([&](InvertedIndex& index) {
      return index.GrowBuckets(new_num_buckets_per_shard,
                               new_bucket_capacity);
    });
  });
}

Status ShardedIndex::FlushCaches() {
  return ParallelOverShards([&](uint32_t s) {
    return shards_[s]->WithWrite(
        [](InvertedIndex& index) { return index.FlushCaches(); });
  });
}

Result<CompactionStats> ShardedIndex::CompactOnce() {
  std::vector<CompactionStats> per_shard(num_shards());
  DUPLEX_RETURN_IF_ERROR(ParallelOverShards([&](uint32_t s) {
    return shards_[s]->WithWrite([&](InvertedIndex& index) -> Status {
      Result<CompactionStats> round = index.CompactOnce();
      if (!round.ok()) return round.status();
      per_shard[s] = *round;
      return Status::OK();
    });
  }));
  CompactionStats merged;
  for (const CompactionStats& s : per_shard) merged.Merge(s);
  // N parallel rounds are one logical round over the whole word space.
  merged.rounds = 1;
  return merged;
}

void ShardedIndex::StartBackgroundCompaction(
    std::chrono::milliseconds interval) {
  // The thread handle is only touched under compaction_mutex_, so Start,
  // Stop and running() may race freely; the new thread blocks on the same
  // mutex until this call releases it.
  std::lock_guard<std::mutex> start_lock(compaction_mutex_);
  if (compaction_thread_.joinable()) return;  // already running
  compaction_stop_ = false;
  compaction_status_ = Status::OK();
  compaction_thread_ = std::thread([this, interval] {
    while (true) {
      {
        std::unique_lock<std::mutex> lock(compaction_mutex_);
        if (compaction_cv_.wait_for(lock, interval,
                                    [this] { return compaction_stop_; })) {
          return;
        }
      }
      // Round-robin over the shards, one write lock at a time, so a long
      // round never starves more than one shard's writers and no query
      // ever waits on more than one shard.
      for (uint32_t s = 0; s < num_shards(); ++s) {
        {
          std::lock_guard<std::mutex> lock(compaction_mutex_);
          if (compaction_stop_) return;
        }
        Status status = shards_[s]->WithWrite([](InvertedIndex& index) {
          Result<CompactionStats> round = index.CompactOnce();
          return round.ok() ? Status::OK() : round.status();
        });
        std::lock_guard<std::mutex> lock(compaction_mutex_);
        ++compaction_rounds_done_;
        if (!status.ok() && compaction_status_.ok()) {
          compaction_status_ = std::move(status);
        }
      }
    }
  });
}

void ShardedIndex::StopBackgroundCompaction() {
  // Claim the thread handle under the lock, join outside it (the worker
  // takes compaction_mutex_ on its way out). A second concurrent Stop
  // finds an empty handle and returns — idempotent, and a no-op without
  // a prior Start.
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(compaction_mutex_);
    if (!compaction_thread_.joinable()) return;
    compaction_stop_ = true;
    worker = std::move(compaction_thread_);
  }
  compaction_cv_.notify_all();
  worker.join();
}

bool ShardedIndex::background_compaction_running() const {
  std::lock_guard<std::mutex> lock(compaction_mutex_);
  return compaction_thread_.joinable();
}

uint64_t ShardedIndex::background_compaction_rounds() const {
  std::lock_guard<std::mutex> lock(compaction_mutex_);
  return compaction_rounds_done_;
}

Status ShardedIndex::background_compaction_status() const {
  std::lock_guard<std::mutex> lock(compaction_mutex_);
  return compaction_status_;
}

CompactionStats ShardedIndex::compaction_totals() const {
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    locks.emplace_back(shard->mutex());
  }
  CompactionStats merged;
  for (const auto& shard : shards_) {
    merged.Merge(shard->index_unlocked().compaction_totals());
  }
  return merged;
}

std::vector<IndexStats> ShardedIndex::ShardStats() const {
  // Hold every shard lock (ascending order) so the per-shard snapshots
  // are mutually consistent — a concurrent batch is either fully in or
  // fully out of the merged numbers.
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    locks.emplace_back(shard->mutex());
  }
  std::vector<IndexStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) {
    stats.push_back(shard->index_unlocked().Stats());
  }
  return stats;
}

IndexStats ShardedIndex::Stats() const { return MergeStats(ShardStats()); }

std::vector<UpdateCategories> ShardedIndex::MergedCategories() const {
  std::vector<std::vector<UpdateCategories>> per_shard;
  per_shard.reserve(shards_.size());
  for (const auto& shard : shards_) {
    per_shard.push_back(shard->WithRead(
        [](const InvertedIndex& index) {
          return index.update_categories();
        }));
  }
  return MergeCategories(per_shard);
}

Status ShardedIndex::VerifyIntegrity() const {
  uint64_t total = 0;
  uint64_t bucket = 0;
  uint64_t long_postings = 0;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    Status status = shards_[s]->WithRead([&](const InvertedIndex& index) {
      DUPLEX_RETURN_IF_ERROR(index.VerifyIntegrity());
      // Cross-shard ownership: every word this shard stores must hash
      // here; a violation means a batch was partitioned inconsistently.
      for (const auto& [word, list] :
           index.long_list_store().directory().lists()) {
        if (ShardFor(word) != s) {
          return Status::Corruption("word " + std::to_string(word) +
                                    " stored on shard " + std::to_string(s) +
                                    " but owned by shard " +
                                    std::to_string(ShardFor(word)));
        }
      }
      const IndexStats stats = index.Stats();
      total += stats.total_postings;
      bucket += stats.bucket_postings;
      long_postings += stats.long_postings;
      return Status::OK();
    });
    DUPLEX_RETURN_IF_ERROR(std::move(status));
  }
  if (bucket + long_postings != total) {
    return Status::Corruption("merged posting totals inconsistent");
  }
  return Status::OK();
}

storage::IoTrace ShardedIndex::MergedTrace() const {
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    locks.emplace_back(shard->mutex());
  }
  storage::IoTrace merged;
  size_t updates = 0;
  for (const auto& shard : shards_) {
    updates = std::max(updates,
                       shard->index_unlocked().trace().update_count());
  }
  for (size_t u = 0; u < updates; ++u) {
    for (uint32_t s = 0; s < num_shards(); ++s) {
      const storage::IoTrace& trace = shards_[s]->index_unlocked().trace();
      if (u >= trace.update_count()) continue;
      const auto [first, last] = trace.UpdateRange(u);
      for (size_t i = first; i < last; ++i) {
        storage::IoEvent event = trace.events()[i];
        event.disk = GlobalDiskId(s, event.disk);
        merged.Add(event);
      }
    }
    merged.EndUpdate();
  }
  return merged;
}

DocId ShardedIndex::next_doc_id() const {
  std::shared_lock lock(doc_mutex_);
  return next_doc_id_;
}

Status ShardedIndex::WithCheckpointView(
    const std::function<Status(const CheckpointView&)>& fn) const {
  // Document mutex before any shard lock (the fixed order every other
  // path uses), then every shard's shared lock ascending.
  std::shared_lock doc_lock(doc_mutex_);
  std::vector<std::shared_lock<std::shared_mutex>> shard_locks;
  shard_locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    shard_locks.emplace_back(shard->mutex());
  }
  CheckpointView view;
  view.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    view.shards.push_back(&shard->index_unlocked());
  }
  view.vocabulary = &vocabulary_;
  view.next_doc_id = next_doc_id_;
  view.deleted.assign(deleted_.begin(), deleted_.end());
  std::sort(view.deleted.begin(), view.deleted.end());
  return fn(view);
}

Status ShardedIndex::RestoreDocState(
    DocId next_doc_id, std::vector<DocId> deleted,
    const std::vector<std::string>& vocabulary_words) {
  std::unique_lock lock(doc_mutex_);
  for (size_t i = 0; i < vocabulary_words.size(); ++i) {
    if (vocabulary_.GetOrAdd(vocabulary_words[i]) != i) {
      return Status::Corruption(
          "checkpoint vocabulary must restore densely in order");
    }
  }
  next_doc_id_ = next_doc_id;
  deleted_.clear();
  deleted_.insert(deleted.begin(), deleted.end());
  return Status::OK();
}

Status ShardedIndex::RestoreBatchWords(
    const text::InvertedBatch& batch,
    const std::vector<std::string>& words) {
  if (words.empty()) return Status::OK();
  if (words.size() != batch.entries.size()) {
    return Status::Corruption(
        "batch word strings do not match the entry count");
  }
  std::unique_lock lock(doc_mutex_);
  for (size_t i = 0; i < words.size(); ++i) {
    DUPLEX_RETURN_IF_ERROR(
        vocabulary_.Restore(words[i], batch.entries[i].word));
  }
  return Status::OK();
}

}  // namespace duplex::core

#ifndef DUPLEX_CORE_BUCKET_STORE_H_
#define DUPLEX_CORE_BUCKET_STORE_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/bucket.h"
#include "core/posting.h"
#include "util/types.h"

namespace duplex::core {

struct BucketStoreOptions {
  uint32_t num_buckets = 4096;
  // Bucket capacity in units (1 per word + 1 per posting), the paper's
  // BucketSize.
  uint64_t bucket_capacity = 512;
};

// The short-list half of the dual-structure index: a fixed array of
// fixed-size buckets addressed by h(w) (the paper uses a modular-arithmetic
// hash, Section 4.3). Inserting may overflow a bucket, in which case the
// longest short list is evicted repeatedly until the bucket fits; evicted
// lists must be promoted to long lists by the caller.
class BucketStore {
 public:
  // Observes every change to a bucket (insert of a new word, append to an
  // existing word, or eviction) — used to reproduce the paper's Figure 1
  // bucket animation.
  using ChangeHook = std::function<void(
      uint32_t bucket, uint64_t words, uint64_t postings)>;

  explicit BucketStore(const BucketStoreOptions& options);

  uint32_t BucketFor(WordId word) const {
    return static_cast<uint32_t>(word % options_.num_buckets);
  }

  bool Contains(WordId word) const;
  const PostingList* Find(WordId word) const;

  // Inserts the in-memory list for `word` into bucket h(word) and returns
  // the (word, list) pairs evicted by overflow, in eviction order. The
  // evicted list carries all postings accumulated in the bucket for that
  // word, possibly including the ones just inserted.
  std::vector<std::pair<WordId, PostingList>> Insert(WordId word,
                                                     const PostingList& list);

  // Removes a word (used when a list is promoted through another path).
  bool Remove(WordId word);

  const BucketStoreOptions& options() const { return options_; }
  const Bucket& bucket(uint32_t i) const { return buckets_[i]; }

  uint64_t TotalWords() const;
  uint64_t TotalPostings() const;
  uint64_t TotalUsedUnits() const;
  uint64_t TotalCapacityUnits() const {
    return static_cast<uint64_t>(options_.num_buckets) *
           options_.bucket_capacity;
  }
  double Occupancy() const;

  uint64_t evictions() const { return evictions_; }

  // Applies the deletion sweep to every bucket (see Bucket::FilterPostings);
  // returns total postings removed.
  uint64_t FilterPostings(const std::function<bool(DocId)>& deleted);

  // Grows (or reshapes) the bucket space, rehashing every short list into
  // the new geometry — the paper's future-work mechanism for keeping the
  // short/long division balanced as the index grows ("periodically, as
  // the buckets are read, they can be expanded and written in a larger
  // region of disk"). Returns lists evicted by overflow in the new
  // geometry; the caller must promote them to long lists.
  std::vector<std::pair<WordId, PostingList>> Resize(
      uint32_t new_num_buckets, uint64_t new_bucket_capacity);

  uint64_t resizes() const { return resizes_; }

  void set_change_hook(ChangeHook hook) { hook_ = std::move(hook); }

 private:
  void NotifyChange(uint32_t bucket_id);

  BucketStoreOptions options_;
  std::vector<Bucket> buckets_;
  uint64_t evictions_ = 0;
  uint64_t resizes_ = 0;
  ChangeHook hook_;
};

}  // namespace duplex::core

#endif  // DUPLEX_CORE_BUCKET_STORE_H_

#ifndef DUPLEX_CORE_DIRECTORY_H_
#define DUPLEX_CORE_DIRECTORY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/block.h"
#include "util/status.h"
#include "util/types.h"

namespace duplex::core {

// One contiguous piece of a long list on disk. `range.length * BlockPosting`
// postings fit; `postings` of them are used. The difference is the free
// tail space the paper calls z (for the last chunk of a list).
struct ChunkRef {
  storage::BlockRange range;
  uint64_t postings = 0;   // postings stored in this chunk
  DocId base_doc = 0;      // doc id preceding this chunk's first posting
  uint64_t byte_length = 0;  // encoded payload bytes, header excluded
  // On-device framing of this chunk (values from core/chunk_format.h):
  // format 0 = legacy headerless, 1 = v1 16-byte header ahead of the
  // payload; codec is the CodecKindId of the payload encoding. Reads
  // dispatch on these fields — the v1 header on device is a cross-check,
  // never sniffed.
  uint8_t format = 0;
  uint8_t codec = 0;
};

// Directory entry for a word with a long list.
struct LongList {
  std::vector<ChunkRef> chunks;
  uint64_t total_postings = 0;
  DocId last_doc = 0;  // last doc id appended (materialized mode)

  uint64_t total_blocks() const {
    uint64_t n = 0;
    for (const auto& c : chunks) n += c.range.length;
    return n;
  }
};

// The in-memory directory mapping words to the disk locations of their
// long lists (paper Section 3, first issue: "the directory resides in
// memory at all times; periodically, the directory is written to disk").
class Directory {
 public:
  bool Contains(WordId word) const { return lists_.contains(word); }

  // Returns the entry for `word`, creating it if absent.
  LongList& GetOrCreate(WordId word);

  // Returns nullptr when the word has no long list.
  const LongList* Find(WordId word) const;
  LongList* FindMutable(WordId word);

  // Removes the entry for `word`; returns true if it was present.
  bool Erase(WordId word);

  size_t word_count() const { return lists_.size(); }

  // Aggregates for Figures 9/10 and Tables 5/6.
  uint64_t TotalChunks() const;
  uint64_t TotalBlocks() const;
  uint64_t TotalPostings() const;

  // Internal long-list utilization: stored postings / posting capacity of
  // all allocated long-list blocks (paper Figure 9). 1.0 when empty.
  double Utilization(uint64_t block_postings) const;

  // Average number of read operations to read one long list = total
  // chunks / long words (paper Figure 10). 0 when empty.
  double AvgReadsPerList() const;

  // Estimated on-disk size of the directory itself, for the periodic
  // directory flush (paper Figure 6's directory line).
  uint64_t EstimatedBytes() const;

  // Iteration support (stable order not guaranteed).
  const std::unordered_map<WordId, LongList>& lists() const { return lists_; }

 private:
  std::unordered_map<WordId, LongList> lists_;
};

}  // namespace duplex::core

#endif  // DUPLEX_CORE_DIRECTORY_H_

#ifndef DUPLEX_CORE_LIVE_INDEX_H_
#define DUPLEX_CORE_LIVE_INDEX_H_

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_log.h"
#include "core/checkpoint.h"
#include "core/delta_index.h"
#include "core/merging_reader.h"
#include "core/sharded_index.h"
#include "util/metrics.h"
#include "util/status.h"

namespace duplex::core {

// The immediate-visibility ingest coordinator: overlays an in-memory
// DeltaIndex on the on-disk ShardedIndex so a live-submitted document
// answers queries the moment its ack returns, and drains accumulated
// deltas into the disk index in the background through the WAL commit
// protocol FlushDocumentsLogged established (append durable -> apply ->
// flush caches -> commit record).
//
// Submit protocol (SubmitLive): under the submit lock, the documents are
// inverted against the disk index's vocabulary and assigned the next doc
// ids (ShardedIndex::BuildLiveBatch), the batch is appended to the WAL
// (durable — the ack promise), and only then inserted into the active
// delta tier. A document is therefore acked only after it is BOTH
// durable and visible; a crash before the ack may leave the batch in the
// WAL (replayed on recovery, standard ambiguous-outcome semantics), but
// an acked document always survives: either the delta still holds it
// (WAL tail replays it) or the drain already committed it.
//
// Drain protocol (epoch handoff): seal the active tier by swapping in a
// fresh DeltaIndex (one pointer swap under the submit + tier locks; the
// sealed tier becomes `draining_`), apply its postings to the disk index,
// flush dirty cache frames, then mark the covered WAL batches applied —
// and only then drop the sealed tier. Readers pin both tiers by
// shared_ptr, so a query racing the drain sees every acked document in
// the delta, on disk, or both (MergingReader dedups); never neither.
// That is the visibility invariant the stress test asserts per query.
//
// Drain failure is sticky: a half-applied batch must not be re-applied
// (postings would duplicate), so the sealed tier stays visible, the
// error is latched, and every later drain/flush/checkpoint returns it.
// Recovery is a restart — the WAL replays the sealed batches exactly
// once into fresh structures.
//
// Lock order: drain_mutex_ > submit_mutex_ > tiers_mutex_ > wal_mutex_
// (each may be taken alone; never in reverse). ShardedIndex's internal
// doc/shard locks nest strictly below all of these.
class LiveIndex {
 public:
  struct Options {
    // Reject SubmitLive with typed kResourceExhausted (the BUSY status
    // net::Client retries) when the delta tiers already hold this many
    // documents. 0 = unbounded.
    size_t delta_cap_docs = 0;
    // Background drainer period.
    std::chrono::milliseconds drain_interval{50};
  };

  // `index` is the drain target and vocabulary/doc-id authority; `wal`
  // may be null (no durability logging). Both borrowed, not owned.
  LiveIndex(ShardedIndex* index, BatchLog* wal, Options options);
  LiveIndex(ShardedIndex* index, BatchLog* wal)
      : LiveIndex(index, wal, Options()) {}
  ~LiveIndex();

  LiveIndex(const LiveIndex&) = delete;
  LiveIndex& operator=(const LiveIndex&) = delete;

  struct SubmitReceipt {
    DocId first_doc = 0;
    uint32_t accepted = 0;
    uint64_t wal_batch_id = 0;  // 0 when no WAL is attached
    uint64_t epoch = 0;         // delta epoch the documents landed in
    uint64_t delta_docs = 0;    // tier depth after the insert
  };

  // Immediate-visibility ingest: durable + queryable at return.
  // kResourceExhausted when the delta cap is hit (back off and retry).
  Result<SubmitReceipt> SubmitLive(const std::vector<std::string>& documents);

  // The classic batch path (kSubmitDocuments semantics: durable AND
  // applied to the disk index at return), serialized against live
  // submits so the two ingest disciplines never interleave doc ids.
  Result<SubmitReceipt> SubmitBatch(const std::vector<std::string>& documents);

  // Deletes everywhere: the disk index filters its lists, and both delta
  // tiers filter theirs until the drain hands the doc over.
  void DeleteDocument(DocId doc);

  // A pinned point-in-time read view: disk index + the delta tiers alive
  // at acquisition, merged with doc-id dedup. Cheap — three shared_ptr
  // copies; the MergingReader (immutable after construction) is cached
  // and shared across views, rebuilt only when a submit or drain swaps a
  // tier pointer. Hold it for one query.
  class ReadView {
   public:
    const IndexReader& reader() const { return *merged_; }

   private:
    friend class LiveIndex;
    std::shared_ptr<DeltaIndex> active_;
    std::shared_ptr<DeltaIndex> draining_;
    std::shared_ptr<const MergingReader> merged_;
  };
  ReadView AcquireView() const;

  // One drain round (no-op when the delta is empty). Serialized with the
  // background drainer.
  Status DrainOnce();
  // Drains until both tiers are empty. New submits may interleave
  // between rounds; each round's handoff is still atomic.
  Status DrainAll();

  // Background drainer thread (mirrors ShardedIndex's background
  // compaction): every `options.drain_interval` it runs one drain round.
  // Start/Stop are idempotent; Stop runs in the destructor.
  void StartDrainer();
  void StopDrainer();
  bool drainer_running() const;

  // Checkpoint with live ingest quiesced: submits are excluded, the
  // delta fully drains (a checkpoint covers only committed work — the
  // Checkpointer refuses unapplied WAL batches), then the image is cut.
  Result<CheckpointInfo> CheckpointNow(Checkpointer* checkpointer);

  // Shutdown hook: drain everything, then flush dirty cache frames.
  Status Flush();

  // Point-in-time WAL accounting (the only safe way to observe the
  // BatchLog while live submits race — it is unsynchronized).
  struct WalStatus {
    bool attached = false;
    uint64_t tail_batches = 0;
    uint64_t base_epoch = 0;
    uint64_t next_id = 0;
    uint64_t unapplied = 0;  // acked-but-undrained batches
  };
  WalStatus GetWalStatus() const;

  // Snapshot of the delta tier for /statusz and metrics.
  struct DeltaStatus {
    uint64_t epoch = 0;           // epoch of the active tier
    uint64_t active_docs = 0;
    uint64_t draining_docs = 0;
    uint64_t postings = 0;        // both tiers
    uint64_t drain_rounds = 0;
    uint64_t last_drain_ns = 0;
    uint64_t busy_rejections = 0;
    uint64_t oldest_age_ms = 0;   // age of the oldest undrained insert
    bool drainer_running = false;
    Status drain_status;          // sticky first drain error
  };
  DeltaStatus GetDeltaStatus() const;

  ShardedIndex* index() { return index_; }
  const Options& options() const { return options_; }

 private:
  // One round; requires drain_mutex_. When `submit_held`, the caller
  // already owns submit_mutex_ (checkpoint/flush quiesce) and the seal
  // must not re-lock it.
  Status DrainLocked(bool submit_held);
  // Requires drain_mutex_ (+ submit_mutex_ when `submit_held`): rounds
  // until empty.
  Status DrainAllLocked(bool submit_held);
  bool DeltaEmpty() const;

  ShardedIndex* index_;
  BatchLog* wal_;
  Options options_;

  // Serializes drain rounds (and checkpoint/flush, which are drains).
  std::mutex drain_mutex_;
  // Serializes submits; the drain's epoch handoff takes it so a submit's
  // insert can never land in a tier after that tier was snapshotted.
  mutable std::mutex submit_mutex_;
  // Guards the tier pointers + epoch for lock-free-ish reader pinning.
  mutable std::shared_mutex tiers_mutex_;
  std::shared_ptr<DeltaIndex> active_;
  std::shared_ptr<DeltaIndex> draining_;
  uint64_t epoch_ = 1;  // guarded by tiers_mutex_
  // Memoized merged reader for AcquireView, valid while the tier
  // pointers it was built over are still current (all under
  // tiers_mutex_). Readers share one MergingReader instead of
  // allocating per query.
  mutable std::shared_ptr<const MergingReader> cached_merged_;
  mutable std::shared_ptr<DeltaIndex> cached_active_;
  mutable std::shared_ptr<DeltaIndex> cached_draining_;

  // ALL BatchLog access goes through this (it is not thread-safe, and
  // SubmitLive's append races the drain's MarkApplied otherwise).
  mutable std::mutex wal_mutex_;

  // Drainer thread + drain statistics.
  mutable std::mutex state_mutex_;
  std::condition_variable drainer_cv_;
  std::thread drainer_;
  bool drainer_stop_ = false;       // guarded by state_mutex_
  uint64_t drain_rounds_ = 0;       // guarded by state_mutex_
  uint64_t last_drain_ns_ = 0;      // guarded by state_mutex_
  uint64_t busy_rejections_ = 0;    // guarded by state_mutex_
  Status drain_error_;              // guarded by state_mutex_; sticky

  Gauge* m_delta_docs_ = nullptr;
  Gauge* m_delta_postings_ = nullptr;
  Counter* m_live_submits_ = nullptr;
  Counter* m_busy_ = nullptr;
  Counter* m_drain_rounds_ = nullptr;
  LatencyHistogram* m_drain_ns_ = nullptr;
  LatencyHistogram* m_submit_ns_ = nullptr;
};

}  // namespace duplex::core

#endif  // DUPLEX_CORE_LIVE_INDEX_H_

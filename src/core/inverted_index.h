#ifndef DUPLEX_CORE_INVERTED_INDEX_H_
#define DUPLEX_CORE_INVERTED_INDEX_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "core/bucket_store.h"
#include "core/codec_family.h"
#include "core/compactor.h"
#include "core/index_reader.h"
#include "core/index_stats.h"
#include "core/long_list_store.h"
#include "core/memory_index.h"
#include "core/policy.h"
#include "storage/disk_array.h"
#include "storage/io_trace.h"
#include "text/batch.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/tracer.h"
#include "util/types.h"

namespace duplex::core {

// Top-level configuration of a dual-structure index.
struct IndexOptions {
  BucketStoreOptions buckets;
  Policy policy;
  uint64_t block_postings = 128;  // paper's BlockPosting
  // Bytes one bucket unit (word or posting) occupies in the on-disk bucket
  // region; sizes the periodic bucket flush. The paper's Figure 6 trace
  // implies ~16 bytes per unit.
  uint64_t bucket_unit_bytes = 16;
  storage::DiskArrayOptions disks;
  // Block cache over the disk array (see storage::BufferPool). Disabled by
  // default (capacity 0). Long-list reads and writes flow through it; the
  // shadow-paged bucket/directory regions bypass it by design — they
  // rewrite a region far larger than any sane cache every batch, and
  // their freed ranges are invalidated so stale frames cannot resurface.
  storage::BufferPoolOptions cache;
  // Store actual posting payloads (doc ids) so queries can run. The
  // count-only mode reproduces the paper's experiment pipeline.
  bool materialize = false;
  // Record every I/O into an internal trace (replayable by the
  // storage::TraceExecutor).
  bool record_trace = true;
  // Automatic bucket-space rebalancing (the paper's future-work item):
  // when bucket occupancy after a batch exceeds this threshold, the number
  // of buckets doubles and every short list is rehashed (overflow in the
  // new geometry is promoted). 0 disables auto-growth.
  double bucket_grow_threshold = 0.0;
  // Online long-list space reclamation (core::Compactor). With
  // compaction.enabled, every batch apply ends with one bounded round;
  // CompactOnce() runs rounds manually either way.
  CompactionOptions compaction;
  // On-disk chunk format for materialized long lists (see
  // core/chunk_format.h). kChunkFormatV1 prefixes every new chunk with a
  // versioned header carrying the codec id; kChunkFormatLegacy writes the
  // pre-versioning headerless layout (v0) for compatibility tests. Reads
  // handle both transparently.
  uint8_t chunk_format = 1;  // kChunkFormatV1
  // Posting-payload codec for materialized long-list chunks, recorded in
  // each chunk's header. Bitwise codecs (Elias gamma/delta) disable
  // in-place tail appends — their padded segments cannot concatenate.
  CodecKind long_list_codec = CodecKind::kVByte;
};

// UpdateCategories / IndexStats / ListLocation live in core/index_stats.h
// so the sharded index and ir layers can use them without this header.

// The dual-structure incremental inverted index (the paper's primary
// contribution). New documents accumulate in an in-memory index; each
// FlushBatch / ApplyBatchUpdate pushes one batch into the on-disk
// structures: short lists into hash-addressed fixed-size buckets, bucket
// overflows promoting the longest short lists into policy-managed long
// lists.
class InvertedIndex : public IndexReader {
 public:
  explicit InvertedIndex(const IndexOptions& options);

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;

  const IndexOptions& options() const { return options_; }

  // --- Count-only update path (the paper's evaluation pipeline) ---------

  // Applies one batch update of word-occurrence pairs (each word at most
  // once; any order). Appends this update's categories to
  // update_categories() and ends a trace update.
  Status ApplyBatchUpdate(const text::BatchUpdate& batch);

  // --- Materialized update path -----------------------------------------

  // Applies one inverted batch with real doc ids (requires materialize).
  Status ApplyInvertedBatch(const text::InvertedBatch& batch);

  // Buffers a raw document into the in-memory index; FlushDocuments()
  // pushes the accumulated batch to disk. Returns this document's id.
  // Buffered documents are immediately searchable: GetPostings merges the
  // in-memory batch with the on-disk structures, the paper's "searched
  // simultaneously with the larger index".
  DocId AddDocument(const std::string& text);
  Status FlushDocuments();
  size_t buffered_documents() const {
    return memory_index_.document_count();
  }
  const MemoryIndex& memory_index() const { return memory_index_; }

  // --- Query access (the IndexReader surface) ----------------------------

  // Where a word's list lives — input to the query cost model.
  using ListLocation = duplex::core::ListLocation;
  ListLocation Locate(WordId word) const override;
  ListLocation Locate(std::string_view word) const override;

  // Returns the word's full posting list (bucket or long list), with
  // deleted documents filtered out. Requires materialize. NotFound when
  // the word has no list.
  Result<std::vector<DocId>> GetPostings(WordId word) const override;
  Result<std::vector<DocId>> GetPostings(
      std::string_view word) const override;

  // Every word with a list anywhere in the index — long lists, buckets,
  // and the unflushed in-memory batch — each exactly once.
  void ForEachWord(const std::function<void(WordId)>& fn) const override;

  // --- Deletion (paper Section 3 end) -------------------------------------

  // Marks a document deleted; queries filter it immediately.
  void DeleteDocument(DocId doc) { deleted_.insert(doc); }
  bool IsDeleted(DocId doc) const { return deleted_.contains(doc); }
  size_t deleted_count() const { return deleted_.size(); }
  std::vector<DocId> deleted_docs() const {
    return {deleted_.begin(), deleted_.end()};
  }

  // Background sweep: rewrites every list dropping deleted documents, then
  // clears the deleted set. Requires materialize.
  Status SweepDeletions();

  // --- Repair (used by core::Scrub) ----------------------------------------

  // Replaces the long list of `word` wholesale with `docs` (ascending),
  // dropping its existing chunks and re-appending through the configured
  // policy. Posting accounting absorbs any size difference. Requires
  // materialize; NotFound when the word has no long list.
  Status RewriteLongList(WordId word, std::vector<DocId> docs);

  // --- Long-list compaction -------------------------------------------------

  // One bounded compaction round over the long-list store (see
  // core::Compactor): merges the most fragmented lists into right-sized
  // single chunks and returns the freed blocks to the allocator. Logical
  // postings are untouched, so callers running under a BatchLog need no
  // special crash handling — full replay recovers any mid-round crash.
  // Returns the round's stats; stats.more_pending says another round has
  // work left.
  Result<CompactionStats> CompactOnce();

  // Accumulated stats over every round this index ran (manual + auto).
  const CompactionStats& compaction_totals() const {
    return compaction_totals_;
  }

  // Checkpoint-restore hook: reinstates the accumulated compaction totals
  // the checkpointed instance had, so operator-visible reclamation history
  // survives a fast restart.
  void RestoreCompactionTotals(const CompactionStats& totals) {
    compaction_totals_ = totals;
  }

  // --- Bucket-space rebalancing ---------------------------------------------

  // Manually reshapes the bucket space (see BucketStore::Resize); lists
  // overflowing the new geometry are promoted to long lists through the
  // configured policy.
  Status GrowBuckets(uint32_t new_num_buckets,
                     uint64_t new_bucket_capacity);

  // --- Snapshot restore hooks (used by core::Snapshot) ---------------------

  // Reinstates one word's full posting list into the structure it lived in
  // when the snapshot was taken: long lists are recreated through the
  // policy path; bucket lists are inserted into h(w) (which may promote on
  // overflow if the bucket configuration shrank). No trace update is
  // recorded.
  Status RestoreWord(WordId word, const PostingList& list, bool was_long);

  // Reinstates document-id state after all RestoreWord calls.
  void RestoreDocState(DocId next_doc_id, std::vector<DocId> deleted);

  // --- Buffer pool ---------------------------------------------------------

  // Writes every dirty cache frame back to the disk devices. Must run
  // before a batch is marked applied in the WAL (see BatchLog) so
  // write-back mode cannot lose committed index writes. No-op without a
  // cache or in write-through mode.
  Status FlushCaches();
  storage::CacheStats cache_stats() const { return disks_->cache_stats(); }

  // --- Introspection -------------------------------------------------------

  IndexStats Stats() const;

  // Structural self-check: every chunk non-empty and within its capacity,
  // no two chunks overlapping on disk, per-word chunk postings summing to
  // the directory totals, and global posting accounting consistent.
  // Returns Corruption with a description on the first violation.
  Status VerifyIntegrity() const;
  const std::vector<UpdateCategories>& update_categories() const {
    return categories_;
  }
  const storage::IoTrace& trace() const { return trace_; }
  const BucketStore& bucket_store() const { return buckets_; }
  BucketStore& bucket_store() { return buckets_; }
  const LongListStore& long_list_store() const { return *long_lists_; }
  const storage::DiskArray& disks() const { return *disks_; }
  // Mutable array access for fault/scrub integration (fault schedules,
  // checksum verification below the cache).
  storage::DiskArray& disks() { return *disks_; }
  text::Vocabulary& vocabulary() { return vocabulary_; }
  const text::Vocabulary& vocabulary() const { return vocabulary_; }
  DocId next_doc_id() const override { return next_doc_id_; }

 private:
  // Per-batch accumulator for the routing counters. RouteList runs once
  // per word, so it bumps these plain fields; the batch-apply loop flushes
  // the totals into the registry counters with three Inc(n) calls instead
  // of one atomic add per word.
  struct RouteCounts {
    uint64_t long_appends = 0;
    uint64_t bucket_inserts = 0;
    uint64_t promotions = 0;
  };

  // Routes one in-memory list to the long-list store or the buckets,
  // promoting bucket evictions.
  Status RouteList(WordId word, const PostingList& list, RouteCounts* counts);

  // Adds a batch's accumulated routing counts to the registry counters.
  void FlushRouteCounts(const RouteCounts& counts);

  // End-of-batch flush of buckets + directory (shadow-paged: write new,
  // free old), then the long-list RELEASE list.
  Status FlushMeta();

  // Shared body of CompactOnce and the after-flush auto trigger: one
  // Compactor round, then the RELEASE list back to free space.
  Result<CompactionStats> RunCompactionRound();

  void Categorize(WordId word, UpdateCategories* cats) const;

  IndexOptions options_;
  std::unique_ptr<storage::DiskArray> disks_;
  storage::IoTrace trace_;
  BucketStore buckets_;
  std::unique_ptr<LongListStore> long_lists_;
  std::unique_ptr<Compactor> compactor_;
  CompactionStats compaction_totals_;
  text::Vocabulary vocabulary_;
  text::Tokenizer tokenizer_;
  MemoryIndex memory_index_{&tokenizer_, &vocabulary_};
  DocId next_doc_id_ = 0;
  uint64_t updates_applied_ = 0;
  uint64_t total_postings_ = 0;
  std::vector<UpdateCategories> categories_;
  std::unordered_set<DocId> deleted_;
  std::vector<storage::BlockRange> prev_bucket_ranges_;
  std::vector<storage::BlockRange> prev_directory_ranges_;

  // Registry handles, fetched at construction (null = recording off).
  LatencyHistogram* m_apply_ns_ = nullptr;
  LatencyHistogram* m_flush_ns_ = nullptr;
  Counter* m_long_appends_ = nullptr;
  Counter* m_bucket_inserts_ = nullptr;
  Counter* m_promotions_ = nullptr;
  Gauge* m_occupancy_ = nullptr;
  LatencyHistogram* m_compaction_round_ns_ = nullptr;
  Counter* m_compaction_rounds_ = nullptr;
  Counter* m_compaction_lists_ = nullptr;
  Counter* m_compaction_blocks_ = nullptr;
};

}  // namespace duplex::core

#endif  // DUPLEX_CORE_INVERTED_INDEX_H_

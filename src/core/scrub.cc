#include "core/scrub.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "core/directory.h"
#include "core/long_list_store.h"
#include "storage/checksum_device.h"
#include "storage/disk_array.h"

namespace duplex::core {
namespace {

// All postings the WAL has ever logged for each word, in append order.
// Only materialized batch records contribute; the result is the word's
// full flushed history when the log covers the index's lifetime.
std::unordered_map<WordId, std::vector<DocId>> AccumulateWalPostings(
    const BatchLog& wal) {
  std::unordered_map<WordId, std::vector<DocId>> postings;
  for (uint64_t i = 0; i < wal.batches_logged(); ++i) {
    const BatchLog::LoggedBatch& batch = wal.batch(i);
    if (!batch.materialized) continue;
    for (const auto& entry : batch.docs.entries) {
      auto& docs = postings[entry.word];
      docs.insert(docs.end(), entry.docs.begin(), entry.docs.end());
    }
  }
  return postings;
}

// Verifies every chunk of `list` below the cache; returns the number of
// bad blocks and counts scanned chunks/blocks into the report.
uint64_t VerifyList(storage::DiskArray& disks, const LongList& list,
                    ScrubReport* report) {
  uint64_t bad_blocks = 0;
  for (const ChunkRef& chunk : list.chunks) {
    ++report->chunks_scanned;
    report->blocks_scanned += chunk.range.length;
    storage::ChecksumBlockDevice* dev = disks.checksum_device(chunk.range.disk);
    std::vector<storage::BlockId> bad;
    // VerifyBlocks scans the whole chunk even past the first failure, so
    // one pass sees all damage; non-corruption read errors abort the scrub.
    DUPLEX_CHECK_OK(dev->VerifyBlocks(chunk.range.start, chunk.range.length,
                                      &bad));
    if (!bad.empty()) {
      ++report->corrupt_chunks;
      bad_blocks += bad.size();
    }
  }
  return bad_blocks;
}

}  // namespace

std::string ScrubReport::ToString() const {
  std::string out = "scrub: " + std::to_string(words_scanned) + " words, " +
                    std::to_string(chunks_scanned) + " chunks, " +
                    std::to_string(blocks_scanned) + " blocks; " +
                    std::to_string(corrupt_blocks) + " corrupt blocks in " +
                    std::to_string(corrupt_chunks) + " chunks";
  out += "; repaired " + std::to_string(repaired.size());
  out += ", quarantined " + std::to_string(quarantined.size());
  return out;
}

Result<ScrubReport> ScrubIndex(InvertedIndex* index, BatchLog* wal,
                               const ScrubOptions& options) {
  DUPLEX_CHECK(index != nullptr);
  if (!index->options().materialize) {
    return Status::FailedPrecondition("scrub requires a materialized index");
  }
  storage::DiskArray& disks = index->disks();
  for (storage::DiskId d = 0; d < disks.num_disks(); ++d) {
    if (disks.checksum_device(d) == nullptr) {
      return Status::FailedPrecondition(
          "scrub requires device checksums (IndexOptions::disks.checksums)");
    }
  }

  ScrubReport report;
  // Deterministic word order regardless of hash-map iteration.
  const auto& lists = index->long_list_store().directory().lists();
  std::vector<WordId> words;
  words.reserve(lists.size());
  for (const auto& [word, list] : lists) words.push_back(word);
  std::sort(words.begin(), words.end());

  std::vector<WordId> damaged;
  for (const WordId word : words) {
    ++report.words_scanned;
    const uint64_t bad = VerifyList(disks, lists.at(word), &report);
    if (bad > 0) {
      report.corrupt_blocks += bad;
      damaged.push_back(word);
    }
  }

  std::unordered_map<WordId, std::vector<DocId>> wal_postings;
  if (options.repair && wal != nullptr && !damaged.empty()) {
    wal_postings = AccumulateWalPostings(*wal);
  }
  std::vector<WordId> rewritten;
  for (const WordId word : damaged) {
    const LongList* list = index->long_list_store().directory().Find(word);
    const auto it = wal_postings.find(word);
    // Repair only when the WAL accounts for the word's entire list —
    // partial history would silently shrink the index.
    if (list == nullptr || it == wal_postings.end() ||
        it->second.size() != list->total_postings) {
      report.quarantined.push_back(word);
      continue;
    }
    DUPLEX_RETURN_IF_ERROR(index->RewriteLongList(word, it->second));
    rewritten.push_back(word);
  }
  if (!rewritten.empty()) {
    // Push the rewrites through any write-back pool so the below-cache
    // re-verification judges the device image, not a vacuously-clean set
    // of not-yet-written blocks.
    DUPLEX_RETURN_IF_ERROR(index->FlushCaches());
  }
  for (const WordId word : rewritten) {
    ScrubReport recheck;
    const LongList* list = index->long_list_store().directory().Find(word);
    if (list == nullptr || VerifyList(disks, *list, &recheck) > 0) {
      report.quarantined.push_back(word);
    } else {
      report.repaired.push_back(word);
    }
  }
  std::sort(report.quarantined.begin(), report.quarantined.end());
  return report;
}

}  // namespace duplex::core

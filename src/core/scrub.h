#ifndef DUPLEX_CORE_SCRUB_H_
#define DUPLEX_CORE_SCRUB_H_

#include <string>
#include <vector>

#include "core/batch_log.h"
#include "core/inverted_index.h"
#include "util/status.h"
#include "util/types.h"

namespace duplex::core {

// Offline integrity scrub: walks every long-list chunk in the directory
// and verifies its blocks against the ChecksumBlockDevice layer, reading
// BELOW the buffer pool so a clean cached copy cannot mask on-device rot
// (and so the scrub itself never "repairs" damage by flushing over it).
//
// Coverage map: in this reproduction only long-list payloads are ever
// physically written to the block devices — the bucket and directory
// regions are shadow-paged allocations whose writes are trace events, and
// their contents live in BucketStore/Directory memory, snapshot-protected.
// The long-list chunks therefore ARE the entire on-device checksum
// surface, and a scrub that walks the directory walks everything.
//
// Repair: a word whose chunks fail verification is quarantined. When a
// BatchLog with materialized history is supplied and its accumulated
// postings for the word account for exactly the directory's posting total,
// the list is rewritten from the WAL through the normal write path (fresh
// chunks, fresh checksums) and re-verified. Words the WAL cannot fully
// reconstruct stay quarantined for a snapshot-based restore.
struct ScrubOptions {
  // Attempt WAL-based repair of quarantined words (needs `wal`).
  bool repair = true;
};

struct ScrubReport {
  uint64_t words_scanned = 0;
  uint64_t chunks_scanned = 0;
  uint64_t blocks_scanned = 0;
  uint64_t corrupt_blocks = 0;
  uint64_t corrupt_chunks = 0;
  std::vector<WordId> repaired;     // rewritten from the WAL and re-verified
  std::vector<WordId> quarantined;  // still damaged after the scrub

  bool clean() const { return corrupt_blocks == 0; }
  std::string ToString() const;
};

// `wal` may be null (verification only). The index must be materialized
// and built with disks.checksums = true.
Result<ScrubReport> ScrubIndex(InvertedIndex* index, BatchLog* wal,
                               const ScrubOptions& options = {});

}  // namespace duplex::core

#endif  // DUPLEX_CORE_SCRUB_H_

#ifndef DUPLEX_CORE_SHARDED_INDEX_H_
#define DUPLEX_CORE_SHARDED_INDEX_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/index_reader.h"
#include "core/index_shard.h"
#include "core/index_stats.h"
#include "core/inverted_index.h"
#include "storage/io_trace.h"
#include "text/batch.h"
#include "text/shard_partition.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/types.h"

namespace duplex::core {

class BatchLog;

// Configuration of a word-partitioned index.
struct ShardedIndexOptions {
  // Per-shard index configuration; every shard is built from the same
  // options (so merged statistics stay meaningful) but owns independent
  // instances of everything inside.
  IndexOptions shard;
  uint32_t num_shards = 4;
  // Worker threads for parallel batch apply; 0 means one per shard.
  // `threads = 1` with `num_shards > 1` still shards the word space (and
  // the locks) but applies sub-batches sequentially.
  uint32_t threads = 0;

  // Optional per-shard tweak applied to a copy of `shard` before that
  // shard's index is built. Fault-isolation tests use it to arm a fault
  // schedule on exactly one shard's disks while the rest stay clean.
  std::function<void(uint32_t shard, IndexOptions&)> customize_shard;

  // Splits a single-index configuration across `num_shards` shards,
  // dividing the bucket space so the total bucket capacity matches the
  // unsharded index (disk geometry is kept per shard: each shard owns its
  // own disk array, mirroring the paper's "assign long lists across
  // multiple disks" scaled out).
  static ShardedIndexOptions Partition(const IndexOptions& total,
                                       uint32_t num_shards,
                                       uint32_t threads = 0);
};

// The word-partitioned dual-structure index: N independent IndexShards
// (each a full InvertedIndex — bucket store, long-list store, directory,
// disk array, I/O trace — behind its own reader-writer lock) with the
// word space hash-partitioned across them by text::ShardForWord.
//
// Concurrency model: a batch update is split into per-shard sub-batches
// and applied under per-shard exclusive locks, in parallel on a fixed
// worker pool; queries take only the owning shard's shared lock, so a
// batch applying on shard 2 never blocks a query whose words live on
// shard 0 — the paper's 24x7 motivation carried past a single global
// lock. Document buffering (AddDocument) and the shared vocabulary sit
// above the shards behind a separate reader-writer lock, acquired before
// any shard lock (fixed order, no deadlock).
//
// Determinism: shard assignment depends only on (word, num_shards), each
// shard's trace is recorded by exactly one worker per batch, and
// MergedTrace() interleaves the per-shard traces in shard order with
// global disk ids disk_global = shard * disks_per_shard + disk_local, so
// recorded traces are bit-identical across runs regardless of thread
// scheduling.
class ShardedIndex : public IndexReader {
 public:
  explicit ShardedIndex(const ShardedIndexOptions& options);
  ~ShardedIndex() override;

  ShardedIndex(const ShardedIndex&) = delete;
  ShardedIndex& operator=(const ShardedIndex&) = delete;

  const ShardedIndexOptions& options() const { return options_; }
  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  uint32_t ShardFor(WordId word) const {
    return text::ShardForWord(word, num_shards());
  }
  IndexShard& shard(uint32_t s) { return *shards_[s]; }
  const IndexShard& shard(uint32_t s) const { return *shards_[s]; }

  // --- Batch update paths (parallel across shards) -----------------------

  // Splits the batch by word hash and applies the sub-batches to their
  // shards concurrently. Every shard participates in every batch (empty
  // sub-batches included) so per-shard update counts and trace boundaries
  // stay aligned. On multi-shard failure the first shard's error (by
  // shard id) is returned.
  Status ApplyBatchUpdate(const text::BatchUpdate& batch);
  Status ApplyInvertedBatch(const text::InvertedBatch& batch);

  // --- Document path ------------------------------------------------------

  // Buffers a document in the index-wide memory index (shared vocabulary);
  // buffered documents are immediately searchable, exactly as in
  // InvertedIndex. FlushDocuments inverts the buffer once, partitions by
  // word, and applies per shard in parallel.
  DocId AddDocument(const std::string& text);
  Status FlushDocuments();
  // FlushDocuments under the WAL commit protocol: the inverted buffer is
  // appended to `log` (durable) before any shard applies it, dirty cache
  // frames are flushed after, and the commit record lands last — the
  // ordering BatchLog::ApplyLogged documents, lifted to the sharded
  // index. `log` may be null (plain flush); `batch_id` (optional)
  // receives the WAL batch id, 0 when nothing was logged.
  Status FlushDocumentsLogged(BatchLog* log, uint64_t* batch_id = nullptr);
  size_t buffered_documents() const;

  // --- Live-ingest path (used by core::LiveIndex) --------------------------

  // One live submit, inverted against the shared vocabulary with its doc
  // ids assigned — but NOT buffered here: the caller (the delta tier)
  // owns visibility until the batch drains back in via
  // ApplyInvertedBatch. `words[i]` is the string of
  // `batch.entries[i].word`, so the delta can resolve string-keyed query
  // terms without taking this index's locks.
  struct LiveBatch {
    text::InvertedBatch batch;        // sorted by word, vocabulary ids
    std::vector<std::string> words;   // parallel to batch.entries
    DocId first_doc = 0;
    uint32_t documents = 0;
  };

  // Tokenizes `documents`, assigns them the next doc ids, and returns the
  // inverted batch. FailedPrecondition while AddDocument-buffered
  // documents exist: the live and buffered ingest disciplines assign doc
  // ids differently and must not interleave — flush the buffer first.
  Result<LiveBatch> BuildLiveBatch(const std::vector<std::string>& documents);

  // --- Query access (the IndexReader surface; per-shard shared locks) -----

  ListLocation Locate(WordId word) const override;
  ListLocation Locate(std::string_view word) const override;
  Result<std::vector<DocId>> GetPostings(WordId word) const override;
  Result<std::vector<DocId>> GetPostings(
      std::string_view word) const override;

  // Every word with a list on any shard or in the index-wide document
  // buffer, each exactly once (shards partition the word space, so only
  // buffered words need a containment check).
  void ForEachWord(const std::function<void(WordId)>& fn) const override;

  // --- Deletion ------------------------------------------------------------

  void DeleteDocument(DocId doc);
  bool IsDeleted(DocId doc) const;
  size_t deleted_count() const;
  Status SweepDeletions();

  // --- Maintenance ---------------------------------------------------------

  // Grows every shard's bucket space (per-shard geometry values).
  Status GrowBuckets(uint32_t new_num_buckets_per_shard,
                     uint64_t new_bucket_capacity);

  // Writes every shard's dirty cache frames back to its devices
  // (write-back mode; no-op otherwise). Parallel across shards.
  Status FlushCaches();

  // --- Long-list compaction ------------------------------------------------

  // One bounded compaction round on every shard, in parallel on the
  // worker pool (per-shard exclusive locks, same as a batch apply).
  // Returns the merged round stats.
  Result<CompactionStats> CompactOnce();

  // Starts/stops the background compaction thread: every `interval` it
  // walks the shards round-robin, running one round per shard under that
  // shard's exclusive lock — queries on other shards proceed untouched,
  // mirroring how a batch apply shares the index. Start and Stop are
  // idempotent, safe without a prior Start, and safe to race against each
  // other (the thread handle only moves under compaction_mutex_). Stop
  // runs in the destructor.
  void StartBackgroundCompaction(
      std::chrono::milliseconds interval = std::chrono::milliseconds(50));
  void StopBackgroundCompaction();
  bool background_compaction_running() const;
  // Background rounds completed, and the first error one of them hit
  // (OK when none did).
  uint64_t background_compaction_rounds() const;
  Status background_compaction_status() const;

  // Accumulated per-shard compaction totals, merged (consistent snapshot
  // under all shard locks).
  CompactionStats compaction_totals() const;

  // --- Introspection -------------------------------------------------------

  // Merged statistics (MergeStats over a consistent per-shard snapshot:
  // all shard locks are held in ascending order while collecting).
  IndexStats Stats() const;
  std::vector<IndexStats> ShardStats() const;

  // Per-update categories summed across shards (paper Figure 7).
  std::vector<UpdateCategories> MergedCategories() const;

  // Every shard's VerifyIntegrity plus cross-shard accounting (each word
  // owned by its hash shard; merged posting totals consistent).
  Status VerifyIntegrity() const;

  // Deterministic merged trace: for each batch update, shard 0's events,
  // then shard 1's, ..., with disk ids remapped via GlobalDiskId.
  storage::IoTrace MergedTrace() const;
  storage::DiskId GlobalDiskId(uint32_t shard,
                               storage::DiskId local_disk) const {
    return static_cast<storage::DiskId>(
        shard * options_.shard.disks.num_disks + local_disk);
  }

  DocId next_doc_id() const override;
  const text::Vocabulary& vocabulary() const { return vocabulary_; }

  // --- Checkpoint hooks (used by core::Checkpointer) ------------------------

  // A fully quiesced read view: every shard's index plus the index-wide
  // document state, all captured under one consistent cut.
  struct CheckpointView {
    std::vector<const InvertedIndex*> shards;
    const text::Vocabulary* vocabulary = nullptr;
    DocId next_doc_id = 0;
    std::vector<DocId> deleted;  // sorted
  };

  // Runs `fn` holding the document mutex (shared) plus every shard's
  // shared lock, acquired in ascending shard order. Because
  // FlushDocumentsLogged holds the document mutex exclusively across its
  // whole WAL protocol (append -> apply -> flush -> commit), a view taken
  // here can never observe a batch that is appended but not yet applied —
  // which is exactly the consistency a checkpoint needs. Queries proceed
  // concurrently; batch applies wait.
  Status WithCheckpointView(
      const std::function<Status(const CheckpointView&)>& fn) const;

  // Checkpoint-restore hook: reinstates the index-wide document state
  // after the per-shard restores (vocabulary ids must rebuild densely in
  // order, or Corruption).
  Status RestoreDocState(DocId next_doc_id, std::vector<DocId> deleted,
                         const std::vector<std::string>& vocabulary_words);

  // WAL-replay hook: reinstates the word strings a materialized batch
  // record carried (`words[i]` names `batch.entries[i].word`) at their
  // recorded ids, so a rebuild from the log answers string-keyed queries
  // — a checkpoint image snapshots the whole vocabulary, but a
  // log-only recovery sees words solely through these records. No-op for
  // an empty `words` (older records carried none).
  Status RestoreBatchWords(const text::InvertedBatch& batch,
                           const std::vector<std::string>& words);

 private:
  // Applies `fn(shard_index)` to every shard on the worker pool and
  // returns the first non-OK status in shard order.
  Status ParallelOverShards(const std::function<Status(uint32_t)>& fn);

  ShardedIndexOptions options_;
  std::vector<std::unique_ptr<IndexShard>> shards_;
  mutable ThreadPool pool_;

  // Per-shard apply wall-clock, labeled shard="s" so skew between shards
  // is visible in one export. Null entries = recording off.
  std::vector<LatencyHistogram*> m_shard_apply_ns_;
  LatencyHistogram* m_partition_ns_ = nullptr;

  // Background compaction thread state. The thread takes only per-shard
  // write locks (never doc_mutex_, never two shard locks at once), so it
  // composes with every other lock order in this file.
  mutable std::mutex compaction_mutex_;
  std::condition_variable compaction_cv_;
  std::thread compaction_thread_;
  bool compaction_stop_ = false;          // guarded by compaction_mutex_
  uint64_t compaction_rounds_done_ = 0;   // guarded by compaction_mutex_
  Status compaction_status_;              // guarded by compaction_mutex_

  // Document-buffer state, locked before any shard lock.
  mutable std::shared_mutex doc_mutex_;
  text::Vocabulary vocabulary_;
  text::Tokenizer tokenizer_;
  MemoryIndex memory_index_{&tokenizer_, &vocabulary_};
  DocId next_doc_id_ = 0;
  std::unordered_set<DocId> deleted_;
};

}  // namespace duplex::core

#endif  // DUPLEX_CORE_SHARDED_INDEX_H_

#include "core/checkpoint.h"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>

#include "core/posting_codec.h"
#include "core/sharded_index.h"
#include "util/hash.h"
#include "util/logging.h"

namespace duplex::core {
namespace {

constexpr char kImageMagic[8] = {'D', 'P', 'X', 'C', 'K', 'P', 'T', '1'};
constexpr char kManifestMagic[8] = {'D', 'P', 'X', 'M', 'A', 'N', 'I', '1'};
constexpr uint64_t kFormatVersion = 1;
constexpr uint64_t kFlagMaterialized = 1;

void PutFixed64(uint64_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}

uint64_t GetFixed64(const std::string& bytes, size_t pos) {
  uint64_t v = 0;
  std::memcpy(&v, bytes.data() + pos, 8);
  return v;
}

Status ReadWholeFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return Status::OK();
}

// Writes `bytes` to `path` in 4 KiB fault-aware chunks plus one sync op,
// so a crash sweep can stop the payload write at any chunk boundary. A
// failed attempt removes the partial file (the name may be reused by the
// retry that follows the "crash").
Status WriteFileWithFaults(const std::string& path, const std::string& bytes,
                           storage::FaultSchedule* fault) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  Status s = Status::OK();
  constexpr size_t kChunk = 4096;
  for (size_t off = 0; s.ok() && off < bytes.size(); off += kChunk) {
    const size_t len = std::min(kChunk, bytes.size() - off);
    s = storage::FaultyPWrite(
        fd, path, off, reinterpret_cast<const uint8_t*>(bytes.data()) + off,
        len, fault);
  }
  if (s.ok()) s = storage::FaultySync(fd, path, fault);
  ::close(fd);
  if (!s.ok()) ::unlink(path.c_str());
  return s;
}

// Fully decoded checkpoint image, staged before any of it touches an
// index: a candidate must parse end-to-end (under its checksum) before
// restore begins, so a rejected candidate leaves the index untouched for
// the next one.
struct WordEntry {
  WordId word = 0;
  uint64_t count = 0;
  std::vector<DocId> docs;  // materialized images only
};

struct CheckpointImage {
  bool materialized = false;
  uint64_t wal_epoch = 0;
  uint64_t num_disks = 0;
  uint64_t blocks_per_disk = 0;
  uint64_t block_size_bytes = 0;
  uint64_t num_buckets = 0;
  uint64_t bucket_capacity = 0;
  std::vector<WordEntry> long_words;
  std::vector<WordEntry> bucket_words;
  std::vector<std::string> vocabulary;
  DocId next_doc_id = 0;
  std::vector<DocId> deleted;
  CompactionStats totals;
};

void EncodeWordSection(const std::vector<WordEntry>& words,
                       bool materialized, std::string* out) {
  PutVarint64(words.size(), out);
  for (const WordEntry& entry : words) {
    PutVarint64(entry.word, out);
    PutVarint64(entry.count, out);
    if (materialized) EncodePostings(entry.docs, 0, out);
  }
}

Status DecodeWordSection(const std::string& bytes, size_t* pos,
                         bool materialized, std::vector<WordEntry>* out) {
  Result<uint64_t> count = GetVarint64(bytes, pos);
  if (!count.ok()) return count.status();
  out->reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    WordEntry entry;
    Result<uint64_t> word = GetVarint64(bytes, pos);
    if (!word.ok()) return word.status();
    entry.word = static_cast<WordId>(*word);
    Result<uint64_t> postings = GetVarint64(bytes, pos);
    if (!postings.ok()) return postings.status();
    entry.count = *postings;
    if (materialized) {
      entry.docs.reserve(entry.count);
      DUPLEX_RETURN_IF_ERROR(
          DecodePostings(bytes, pos, entry.count, 0, &entry.docs));
    }
    out->push_back(std::move(entry));
  }
  return Status::OK();
}

void EncodeCompactionTotals(const CompactionStats& t, std::string* out) {
  PutVarint64(t.rounds, out);
  PutVarint64(t.lists_examined, out);
  PutVarint64(t.candidates, out);
  PutVarint64(t.lists_compacted, out);
  PutVarint64(t.chunks_before, out);
  PutVarint64(t.chunks_after, out);
  PutVarint64(t.blocks_before, out);
  PutVarint64(t.blocks_after, out);
  PutVarint64(t.postings_rewritten, out);
  PutVarint64(t.read_ops, out);
  PutVarint64(t.write_ops, out);
  PutVarint64(t.more_pending ? 1 : 0, out);
}

Status DecodeCompactionTotals(const std::string& bytes, size_t* pos,
                              CompactionStats* t) {
  uint64_t* fields[] = {&t->rounds,        &t->lists_examined,
                        &t->candidates,    &t->lists_compacted,
                        &t->chunks_before, &t->chunks_after,
                        &t->blocks_before, &t->blocks_after,
                        &t->postings_rewritten, &t->read_ops,
                        &t->write_ops};
  for (uint64_t* field : fields) {
    Result<uint64_t> v = GetVarint64(bytes, pos);
    if (!v.ok()) return v.status();
    *field = *v;
  }
  Result<uint64_t> pending = GetVarint64(bytes, pos);
  if (!pending.ok()) return pending.status();
  t->more_pending = *pending != 0;
  return Status::OK();
}

void EncodeVocabulary(const text::Vocabulary& vocabulary, std::string* out) {
  PutVarint64(vocabulary.size(), out);
  for (WordId id = 0; id < vocabulary.size(); ++id) {
    const std::string& word = vocabulary.WordFor(id);
    PutVarint64(word.size(), out);
    out->append(word);
  }
}

Status DecodeVocabulary(const std::string& bytes, size_t* pos,
                        std::vector<std::string>* out) {
  Result<uint64_t> size = GetVarint64(bytes, pos);
  if (!size.ok()) return size.status();
  out->reserve(*size);
  for (uint64_t i = 0; i < *size; ++i) {
    Result<uint64_t> len = GetVarint64(bytes, pos);
    if (!len.ok()) return len.status();
    if (*pos + *len > bytes.size()) {
      return Status::Corruption("checkpoint: truncated vocabulary");
    }
    out->push_back(bytes.substr(*pos, *len));
    *pos += *len;
  }
  return Status::OK();
}

void EncodeDocState(DocId next_doc_id, const std::vector<DocId>& deleted,
                    std::string* out) {
  PutVarint64(next_doc_id, out);
  PutVarint64(deleted.size(), out);
  EncodePostings(deleted, 0, out);
}

Status DecodeDocState(const std::string& bytes, size_t* pos,
                      DocId* next_doc_id, std::vector<DocId>* deleted) {
  Result<uint64_t> next_doc = GetVarint64(bytes, pos);
  if (!next_doc.ok()) return next_doc.status();
  *next_doc_id = static_cast<DocId>(*next_doc);
  Result<uint64_t> n_deleted = GetVarint64(bytes, pos);
  if (!n_deleted.ok()) return n_deleted.status();
  return DecodePostings(bytes, pos, *n_deleted, 0, deleted);
}

// Serializes the LOGICAL state of one index: every posting list with its
// home structure, vocabulary, doc state, compaction totals — but no block
// addresses. Restore re-derives physical placement through the ordinary
// policy path, so the image is geometry-checked but layout-free.
Result<std::string> EncodeImage(const InvertedIndex& index,
                                uint64_t wal_epoch) {
  const bool materialized = index.options().materialize;
  std::string stream;
  stream.append(kImageMagic, sizeof(kImageMagic));
  PutVarint64(kFormatVersion, &stream);
  PutVarint64(materialized ? kFlagMaterialized : 0, &stream);
  PutVarint64(wal_epoch, &stream);

  // Geometry, validated at restore: an image can only restore into an
  // index configured like the one it was taken from.
  const IndexOptions& options = index.options();
  PutVarint64(options.disks.num_disks, &stream);
  PutVarint64(options.disks.blocks_per_disk, &stream);
  PutVarint64(options.disks.block_size_bytes, &stream);
  PutVarint64(options.buckets.num_buckets, &stream);
  PutVarint64(options.buckets.bucket_capacity, &stream);

  std::vector<WordEntry> long_words;
  for (const auto& [word, list] :
       index.long_list_store().directory().lists()) {
    WordEntry entry;
    entry.word = word;
    entry.count = list.total_postings;
    if (materialized) {
      Result<std::vector<DocId>> docs =
          index.long_list_store().ReadPostings(word);
      if (!docs.ok()) return docs.status();
      entry.docs = std::move(*docs);
    }
    long_words.push_back(std::move(entry));
  }
  std::vector<WordEntry> bucket_words;
  const BucketStore& buckets = index.bucket_store();
  for (uint32_t b = 0; b < buckets.options().num_buckets; ++b) {
    for (const auto& [word, list] : buckets.bucket(b).entries()) {
      WordEntry entry;
      entry.word = word;
      entry.count = list.size();
      if (materialized) {
        DUPLEX_CHECK(list.materialized());
        entry.docs = list.docs();
      }
      bucket_words.push_back(std::move(entry));
    }
  }
  const auto by_word = [](const WordEntry& a, const WordEntry& b) {
    return a.word < b.word;
  };
  std::sort(long_words.begin(), long_words.end(), by_word);
  std::sort(bucket_words.begin(), bucket_words.end(), by_word);
  EncodeWordSection(long_words, materialized, &stream);
  EncodeWordSection(bucket_words, materialized, &stream);

  EncodeVocabulary(index.vocabulary(), &stream);
  std::vector<DocId> deleted = index.deleted_docs();
  std::sort(deleted.begin(), deleted.end());
  EncodeDocState(index.next_doc_id(), deleted, &stream);
  EncodeCompactionTotals(index.compaction_totals(), &stream);

  PutFixed64(Fnv1a64(stream.data(), stream.size()), &stream);
  return stream;
}

Result<CheckpointImage> ParseImage(const std::string& bytes) {
  if (bytes.size() < sizeof(kImageMagic) + 8) {
    return Status::Corruption("checkpoint image too short");
  }
  const uint64_t stored = GetFixed64(bytes, bytes.size() - 8);
  if (stored != Fnv1a64(bytes.data(), bytes.size() - 8)) {
    return Status::Corruption("checkpoint image checksum mismatch");
  }
  if (std::memcmp(bytes.data(), kImageMagic, sizeof(kImageMagic)) != 0) {
    return Status::Corruption("checkpoint image has bad magic");
  }
  size_t pos = sizeof(kImageMagic);
  CheckpointImage image;
  Result<uint64_t> version = GetVarint64(bytes, &pos);
  if (!version.ok()) return version.status();
  if (*version != kFormatVersion) {
    return Status::Corruption("checkpoint image has unknown version " +
                              std::to_string(*version));
  }
  Result<uint64_t> flags = GetVarint64(bytes, &pos);
  if (!flags.ok()) return flags.status();
  image.materialized = (*flags & kFlagMaterialized) != 0;
  Result<uint64_t> epoch = GetVarint64(bytes, &pos);
  if (!epoch.ok()) return epoch.status();
  image.wal_epoch = *epoch;
  uint64_t* geometry[] = {&image.num_disks, &image.blocks_per_disk,
                          &image.block_size_bytes, &image.num_buckets,
                          &image.bucket_capacity};
  for (uint64_t* field : geometry) {
    Result<uint64_t> v = GetVarint64(bytes, &pos);
    if (!v.ok()) return v.status();
    *field = *v;
  }
  DUPLEX_RETURN_IF_ERROR(DecodeWordSection(bytes, &pos, image.materialized,
                                           &image.long_words));
  DUPLEX_RETURN_IF_ERROR(DecodeWordSection(bytes, &pos, image.materialized,
                                           &image.bucket_words));
  DUPLEX_RETURN_IF_ERROR(DecodeVocabulary(bytes, &pos, &image.vocabulary));
  DUPLEX_RETURN_IF_ERROR(
      DecodeDocState(bytes, &pos, &image.next_doc_id, &image.deleted));
  DUPLEX_RETURN_IF_ERROR(DecodeCompactionTotals(bytes, &pos, &image.totals));
  if (pos != bytes.size() - 8) {
    return Status::Corruption("checkpoint image has trailing bytes");
  }
  return image;
}

Status ValidateGeometry(const CheckpointImage& image,
                        const IndexOptions& options) {
  const auto mismatch = [](const std::string& what, uint64_t image_v,
                           uint64_t index_v) {
    return Status::FailedPrecondition(
        "checkpoint geometry mismatch: " + what + " is " +
        std::to_string(image_v) + " in the image but " +
        std::to_string(index_v) + " in the index options");
  };
  if (image.materialized != options.materialize) {
    return Status::FailedPrecondition(
        "checkpoint materialization mode does not match index options");
  }
  if (image.num_disks != options.disks.num_disks) {
    return mismatch("num_disks", image.num_disks, options.disks.num_disks);
  }
  if (image.blocks_per_disk != options.disks.blocks_per_disk) {
    return mismatch("blocks_per_disk", image.blocks_per_disk,
                    options.disks.blocks_per_disk);
  }
  if (image.block_size_bytes != options.disks.block_size_bytes) {
    return mismatch("block_size_bytes", image.block_size_bytes,
                    options.disks.block_size_bytes);
  }
  if (image.num_buckets != options.buckets.num_buckets) {
    return mismatch("num_buckets", image.num_buckets,
                    options.buckets.num_buckets);
  }
  if (image.bucket_capacity != options.buckets.bucket_capacity) {
    return mismatch("bucket_capacity", image.bucket_capacity,
                    options.buckets.bucket_capacity);
  }
  return Status::OK();
}

// Applies a fully validated image to a freshly constructed index. Long
// lists first (policy path re-derives chunk placement), then bucket
// lists, then vocabulary/doc state/compaction totals, then a cache flush
// so the restored state is on the devices, not hostage in dirty frames.
Status RestoreImage(const CheckpointImage& image, InvertedIndex* index) {
  DUPLEX_RETURN_IF_ERROR(ValidateGeometry(image, index->options()));
  for (const WordEntry& entry : image.long_words) {
    const PostingList list =
        image.materialized
            ? PostingList::Materialized(entry.docs)
            : PostingList::Counted(entry.count);
    DUPLEX_RETURN_IF_ERROR(index->RestoreWord(entry.word, list, true));
  }
  for (const WordEntry& entry : image.bucket_words) {
    const PostingList list =
        image.materialized
            ? PostingList::Materialized(entry.docs)
            : PostingList::Counted(entry.count);
    DUPLEX_RETURN_IF_ERROR(index->RestoreWord(entry.word, list, false));
  }
  for (size_t i = 0; i < image.vocabulary.size(); ++i) {
    if (index->vocabulary().GetOrAdd(image.vocabulary[i]) != i) {
      return Status::Corruption(
          "checkpoint vocabulary must restore densely in order");
    }
  }
  index->RestoreDocState(image.next_doc_id, image.deleted);
  index->RestoreCompactionTotals(image.totals);
  return index->FlushCaches();
}

// Fully decoded sharded-checkpoint manifest.
struct ManifestShard {
  std::string name;  // bare file name, same directory as the manifest
  uint64_t bytes = 0;
  uint64_t checksum = 0;
};

struct Manifest {
  bool materialized = false;
  uint64_t wal_epoch = 0;
  std::vector<ManifestShard> shards;
  std::vector<std::string> vocabulary;
  DocId next_doc_id = 0;
  std::vector<DocId> deleted;
};

std::string EncodeManifest(const Manifest& manifest,
                           const text::Vocabulary& vocabulary) {
  std::string stream;
  stream.append(kManifestMagic, sizeof(kManifestMagic));
  PutVarint64(kFormatVersion, &stream);
  PutVarint64(manifest.materialized ? kFlagMaterialized : 0, &stream);
  PutVarint64(manifest.wal_epoch, &stream);
  PutVarint64(manifest.shards.size(), &stream);
  for (const ManifestShard& shard : manifest.shards) {
    PutVarint64(shard.name.size(), &stream);
    stream.append(shard.name);
    PutVarint64(shard.bytes, &stream);
    PutFixed64(shard.checksum, &stream);
  }
  EncodeVocabulary(vocabulary, &stream);
  EncodeDocState(manifest.next_doc_id, manifest.deleted, &stream);
  PutFixed64(Fnv1a64(stream.data(), stream.size()), &stream);
  return stream;
}

Result<Manifest> ParseManifest(const std::string& bytes) {
  if (bytes.size() < sizeof(kManifestMagic) + 8) {
    return Status::Corruption("checkpoint manifest too short");
  }
  const uint64_t stored = GetFixed64(bytes, bytes.size() - 8);
  if (stored != Fnv1a64(bytes.data(), bytes.size() - 8)) {
    return Status::Corruption("checkpoint manifest checksum mismatch");
  }
  if (std::memcmp(bytes.data(), kManifestMagic, sizeof(kManifestMagic)) !=
      0) {
    return Status::Corruption("checkpoint manifest has bad magic");
  }
  size_t pos = sizeof(kManifestMagic);
  Manifest manifest;
  Result<uint64_t> version = GetVarint64(bytes, &pos);
  if (!version.ok()) return version.status();
  if (*version != kFormatVersion) {
    return Status::Corruption("checkpoint manifest has unknown version " +
                              std::to_string(*version));
  }
  Result<uint64_t> flags = GetVarint64(bytes, &pos);
  if (!flags.ok()) return flags.status();
  manifest.materialized = (*flags & kFlagMaterialized) != 0;
  Result<uint64_t> epoch = GetVarint64(bytes, &pos);
  if (!epoch.ok()) return epoch.status();
  manifest.wal_epoch = *epoch;
  Result<uint64_t> num_shards = GetVarint64(bytes, &pos);
  if (!num_shards.ok()) return num_shards.status();
  for (uint64_t s = 0; s < *num_shards; ++s) {
    ManifestShard shard;
    Result<uint64_t> name_len = GetVarint64(bytes, &pos);
    if (!name_len.ok()) return name_len.status();
    if (pos + *name_len > bytes.size()) {
      return Status::Corruption("checkpoint manifest truncated");
    }
    shard.name = bytes.substr(pos, *name_len);
    pos += *name_len;
    Result<uint64_t> shard_bytes = GetVarint64(bytes, &pos);
    if (!shard_bytes.ok()) return shard_bytes.status();
    shard.bytes = *shard_bytes;
    if (pos + 8 > bytes.size()) {
      return Status::Corruption("checkpoint manifest truncated");
    }
    shard.checksum = GetFixed64(bytes, pos);
    pos += 8;
    manifest.shards.push_back(std::move(shard));
  }
  DUPLEX_RETURN_IF_ERROR(
      DecodeVocabulary(bytes, &pos, &manifest.vocabulary));
  DUPLEX_RETURN_IF_ERROR(
      DecodeDocState(bytes, &pos, &manifest.next_doc_id,
                     &manifest.deleted));
  if (pos != bytes.size() - 8) {
    return Status::Corruption("checkpoint manifest has trailing bytes");
  }
  return manifest;
}

// Reads <dir>/<name> and proves it matches the superblock/manifest
// record before anything parses it: exact length, then whole-file FNV.
Status ReadVerifiedPayload(const std::string& dir, const std::string& name,
                           uint64_t expect_bytes, uint64_t expect_checksum,
                           std::string* out) {
  DUPLEX_RETURN_IF_ERROR(ReadWholeFile(dir + "/" + name, out));
  if (out->size() != expect_bytes) {
    return Status::Corruption(
        name + ": payload is " + std::to_string(out->size()) +
        " bytes, record says " + std::to_string(expect_bytes));
  }
  if (Fnv1a64(out->data(), out->size()) != expect_checksum) {
    return Status::Corruption(name + ": payload checksum mismatch");
  }
  return Status::OK();
}

uint64_t NextSeq(const storage::Superblock& sb) {
  const std::vector<storage::SuperblockRecord> records = sb.ValidRecords();
  return records.empty() ? 1 : records.front().install_seq + 1;
}

}  // namespace

Checkpointer::Checkpointer(CheckpointOptions options)
    : options_(std::move(options)) {
  const size_t slash = options_.prefix.find_last_of('/');
  if (slash == std::string::npos) {
    dir_ = ".";
    base_ = options_.prefix;
  } else {
    dir_ = options_.prefix.substr(0, slash);
    base_ = options_.prefix.substr(slash + 1);
  }
}

Result<std::unique_ptr<storage::Superblock>> Checkpointer::OpenSuperblock() {
  Result<std::unique_ptr<storage::Superblock>> sb =
      storage::Superblock::Open(superblock_path());
  if (sb.ok()) (*sb)->set_fault_schedule(options_.fault);
  return sb;
}

Result<CheckpointInfo> Checkpointer::FinishInstall(storage::Superblock* sb,
                                                   const std::string& name,
                                                   const std::string& payload,
                                                   uint64_t epoch,
                                                   BatchLog* log) {
  DUPLEX_RETURN_IF_ERROR(
      WriteFileWithFaults(dir_ + "/" + name, payload, options_.fault.get()));
  storage::SuperblockRecord record;
  record.wal_epoch = epoch;
  record.payload_bytes = payload.size();
  record.payload_checksum = Fnv1a64(payload.data(), payload.size());
  record.payload_path = name;
  Result<storage::SuperblockRecord> installed = sb->Install(record);
  if (!installed.ok()) return installed.status();
  if (log != nullptr && options_.truncate_wal) {
    log->set_fault_schedule(options_.fault);
    DUPLEX_RETURN_IF_ERROR(log->TruncateTo(epoch));
  }
  RemoveStaleCheckpoints(*sb);
  CheckpointInfo info;
  info.install_seq = installed->install_seq;
  info.wal_epoch = epoch;
  info.payload_bytes = payload.size();
  info.payload_path = dir_ + "/" + name;
  return info;
}

Result<CheckpointInfo> Checkpointer::Checkpoint(const InvertedIndex& index,
                                                BatchLog* log) {
  uint64_t epoch = 0;
  if (log != nullptr) {
    if (!log->UnappliedBatches().empty()) {
      return Status::FailedPrecondition(
          "cannot checkpoint with unapplied WAL batches: a checkpoint "
          "covers only committed work");
    }
    epoch = log->next_id();
  }
  Result<std::unique_ptr<storage::Superblock>> sb = OpenSuperblock();
  if (!sb.ok()) return sb.status();
  Result<std::string> image = EncodeImage(index, epoch);
  if (!image.ok()) return image.status();
  const std::string name =
      base_ + ".ckpt-" + std::to_string(NextSeq(**sb));
  return FinishInstall(sb->get(), name, *image, epoch, log);
}

Result<CheckpointInfo> Checkpointer::Checkpoint(const ShardedIndex& index,
                                                BatchLog* log) {
  CheckpointInfo out;
  const Status s = index.WithCheckpointView(
      [&](const ShardedIndex::CheckpointView& view) -> Status {
        uint64_t epoch = 0;
        if (log != nullptr) {
          if (!log->UnappliedBatches().empty()) {
            return Status::FailedPrecondition(
                "cannot checkpoint with unapplied WAL batches: a "
                "checkpoint covers only committed work");
          }
          epoch = log->next_id();
        }
        Result<std::unique_ptr<storage::Superblock>> sb = OpenSuperblock();
        if (!sb.ok()) return sb.status();
        const uint64_t seq = NextSeq(**sb);
        const std::string manifest_name =
            base_ + ".ckpt-" + std::to_string(seq);
        Manifest manifest;
        manifest.materialized =
            view.shards.front()->options().materialize;
        manifest.wal_epoch = epoch;
        manifest.next_doc_id = view.next_doc_id;
        manifest.deleted = view.deleted;
        // Shard images land on disk before the manifest that references
        // them; the manifest lands before the slot flip that makes it
        // current. Same discipline at every level: referent first.
        for (size_t k = 0; k < view.shards.size(); ++k) {
          Result<std::string> image = EncodeImage(*view.shards[k], epoch);
          if (!image.ok()) return image.status();
          ManifestShard shard;
          shard.name = manifest_name + "-shard" + std::to_string(k);
          shard.bytes = image->size();
          shard.checksum = Fnv1a64(image->data(), image->size());
          DUPLEX_RETURN_IF_ERROR(WriteFileWithFaults(
              dir_ + "/" + shard.name, *image, options_.fault.get()));
          manifest.shards.push_back(std::move(shard));
        }
        Result<CheckpointInfo> installed = FinishInstall(
            sb->get(), manifest_name,
            EncodeManifest(manifest, *view.vocabulary), epoch, log);
        if (!installed.ok()) return installed.status();
        out = *installed;
        return Status::OK();
      });
  if (!s.ok()) return s;
  return out;
}

Result<RecoveryInfo> Checkpointer::RecoverWithoutCheckpoint(
    BatchLog* log, bool superblock_seen, std::string detail,
    const std::function<Status(uint64_t* replayed)>& replay) {
  RecoveryInfo info;
  info.detail = std::move(detail);
  if (log == nullptr ||
      (log->batches_logged() == 0 && log->base_epoch() == 0)) {
    info.mode = RecoveryMode::kEmpty;
    if (info.detail.empty()) info.detail = "nothing to recover";
    return info;
  }
  if (log->base_epoch() != 0) {
    // The WAL tail was truncated after some checkpoint installed, yet no
    // checkpoint is usable now: batches [0, base_epoch) exist nowhere.
    // Rebuilding would silently drop them — refuse with a typed status.
    return Status::Corruption(
        "no usable checkpoint and the WAL is tail-truncated at epoch " +
        std::to_string(log->base_epoch()) +
        "; full history is unrecoverable (" + info.detail + ")");
  }
  info.mode = RecoveryMode::kFullRebuild;
  DUPLEX_RETURN_IF_ERROR(replay(&info.batches_replayed));
  if (superblock_seen) {
    info.detail += (info.detail.empty() ? "" : "; ");
    info.detail += "fell back to full WAL rebuild";
  } else if (info.detail.empty()) {
    info.detail = "no checkpoint installed; full WAL rebuild";
  }
  return info;
}

Result<RecoveryInfo> Checkpointer::Recover(InvertedIndex* index,
                                           BatchLog* log) {
  DUPLEX_CHECK(index != nullptr);
  Result<std::unique_ptr<storage::Superblock>> sb = OpenSuperblock();
  if (!sb.ok()) return sb.status();
  const std::vector<storage::SuperblockRecord> records =
      (*sb)->ValidRecords();
  std::string detail;
  if ((*sb)->slot_damage() > 0) {
    detail = std::to_string((*sb)->slot_damage()) +
             " damaged superblock slot(s)";
  }
  for (const storage::SuperblockRecord& record : records) {
    const auto reject = [&](const Status& why) {
      if (!detail.empty()) detail += "; ";
      detail += "install " + std::to_string(record.install_seq) +
                " rejected: " + why.ToString();
    };
    std::string bytes;
    Status read = ReadVerifiedPayload(dir_, record.payload_path,
                                      record.payload_bytes,
                                      record.payload_checksum, &bytes);
    if (!read.ok()) {
      reject(read);
      continue;
    }
    Result<CheckpointImage> image = ParseImage(bytes);
    if (!image.ok()) {
      reject(image.status());
      continue;
    }
    // The candidate is intact. Geometry mismatch is a configuration
    // error, not rot — surface it instead of quietly rebuilding.
    DUPLEX_RETURN_IF_ERROR(ValidateGeometry(*image, index->options()));
    DUPLEX_RETURN_IF_ERROR(RestoreImage(*image, index));
    RecoveryInfo info;
    info.mode = RecoveryMode::kCheckpointTail;
    info.checkpoint_epoch = image->wal_epoch;
    if (log != nullptr) {
      DUPLEX_RETURN_IF_ERROR(log->ReplayFrom(image->wal_epoch, index));
      info.batches_replayed = log->next_id() - image->wal_epoch;
    }
    info.detail = "restored install " + std::to_string(record.install_seq) +
                  " (epoch " + std::to_string(image->wal_epoch) + ")";
    if (!detail.empty()) info.detail += "; " + detail;
    return info;
  }
  return RecoverWithoutCheckpoint(
      log, /*superblock_seen=*/!records.empty() || (*sb)->slot_damage() > 0,
      std::move(detail), [&](uint64_t* replayed) {
        DUPLEX_RETURN_IF_ERROR(log->ReplayInto(index));
        *replayed = log->batches_logged();
        return Status::OK();
      });
}

Result<RecoveryInfo> Checkpointer::Recover(ShardedIndex* index,
                                           BatchLog* log) {
  DUPLEX_CHECK(index != nullptr);
  Result<std::unique_ptr<storage::Superblock>> sb = OpenSuperblock();
  if (!sb.ok()) return sb.status();
  const std::vector<storage::SuperblockRecord> records =
      (*sb)->ValidRecords();
  std::string detail;
  if ((*sb)->slot_damage() > 0) {
    detail = std::to_string((*sb)->slot_damage()) +
             " damaged superblock slot(s)";
  }
  // Replays one logged batch through the sharded index with the same
  // per-batch discipline as ApplyLogged: apply, then flush dirty frames.
  // Word strings recorded with the batch are reinstated first — the
  // checkpoint image covers only the vocabulary as of its epoch, so words
  // first seen in the replayed tail exist nowhere else.
  const auto apply_batch = [index](const BatchLog::LoggedBatch& batch) {
    DUPLEX_RETURN_IF_ERROR(
        index->RestoreBatchWords(batch.docs, batch.words));
    Status applied =
        batch.materialized
            ? index->ApplyInvertedBatch(batch.docs)
            : index->ApplyBatchUpdate(batch.counts);
    if (!applied.ok()) return applied;
    return index->FlushCaches();
  };
  for (const storage::SuperblockRecord& record : records) {
    const auto reject = [&](const Status& why) {
      if (!detail.empty()) detail += "; ";
      detail += "install " + std::to_string(record.install_seq) +
                " rejected: " + why.ToString();
    };
    std::string bytes;
    Status read = ReadVerifiedPayload(dir_, record.payload_path,
                                      record.payload_bytes,
                                      record.payload_checksum, &bytes);
    if (!read.ok()) {
      reject(read);
      continue;
    }
    Result<Manifest> manifest = ParseManifest(bytes);
    if (!manifest.ok()) {
      reject(manifest.status());
      continue;
    }
    // Stage EVERY shard image (verified + parsed) before restoring any,
    // so a damaged shard file rejects the whole candidate with the index
    // still untouched.
    std::vector<CheckpointImage> images;
    Status staged = Status::OK();
    for (const ManifestShard& shard : manifest->shards) {
      std::string shard_bytes;
      staged = ReadVerifiedPayload(dir_, shard.name, shard.bytes,
                                   shard.checksum, &shard_bytes);
      if (!staged.ok()) break;
      Result<CheckpointImage> image = ParseImage(shard_bytes);
      if (!image.ok()) {
        staged = image.status();
        break;
      }
      images.push_back(std::move(*image));
    }
    if (!staged.ok()) {
      reject(staged);
      continue;
    }
    if (images.size() != index->num_shards()) {
      return Status::FailedPrecondition(
          "checkpoint has " + std::to_string(images.size()) +
          " shard(s), index is configured with " +
          std::to_string(index->num_shards()));
    }
    for (uint32_t k = 0; k < index->num_shards(); ++k) {
      DUPLEX_RETURN_IF_ERROR(index->shard(k).WithWrite(
          [&](InvertedIndex& shard_index) {
            return RestoreImage(images[k], &shard_index);
          }));
    }
    DUPLEX_RETURN_IF_ERROR(index->RestoreDocState(manifest->next_doc_id,
                                                  manifest->deleted,
                                                  manifest->vocabulary));
    RecoveryInfo info;
    info.mode = RecoveryMode::kCheckpointTail;
    info.checkpoint_epoch = manifest->wal_epoch;
    if (log != nullptr) {
      DUPLEX_RETURN_IF_ERROR(
          log->ReplayFrom(manifest->wal_epoch, apply_batch));
      info.batches_replayed = log->next_id() - manifest->wal_epoch;
    }
    info.detail = "restored install " + std::to_string(record.install_seq) +
                  " (epoch " + std::to_string(manifest->wal_epoch) + ", " +
                  std::to_string(images.size()) + " shards)";
    if (!detail.empty()) info.detail += "; " + detail;
    return info;
  }
  return RecoverWithoutCheckpoint(
      log, /*superblock_seen=*/!records.empty() || (*sb)->slot_damage() > 0,
      std::move(detail), [&](uint64_t* replayed) {
        uint64_t count = 0;
        DUPLEX_RETURN_IF_ERROR(
            log->ReplayFrom(0, [&](const BatchLog::LoggedBatch& batch) {
              ++count;
              return apply_batch(batch);
            }));
        *replayed = count;
        return Status::OK();
      });
}

void Checkpointer::RemoveStaleCheckpoints(const storage::Superblock& sb) {
  const std::vector<storage::SuperblockRecord> records = sb.ValidRecords();
  DIR* dir = ::opendir(dir_.c_str());
  if (dir == nullptr) return;
  const std::string prefix = base_ + ".ckpt-";
  std::vector<std::string> stale;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    bool referenced = false;
    for (const storage::SuperblockRecord& record : records) {
      // A slot references its payload file and, for a sharded manifest,
      // every "<payload>-shard<k>" satellite. BOTH slots' files must
      // survive: the older install is the fallback if the newer payload
      // turns out damaged.
      if (name == record.payload_path ||
          name.compare(0, record.payload_path.size() + 1,
                       record.payload_path + "-") == 0) {
        referenced = true;
        break;
      }
    }
    if (!referenced) stale.push_back(name);
  }
  ::closedir(dir);
  for (const std::string& name : stale) {
    ::unlink((dir_ + "/" + name).c_str());
  }
}

}  // namespace duplex::core

#ifndef DUPLEX_CORE_CONCURRENT_INDEX_H_
#define DUPLEX_CORE_CONCURRENT_INDEX_H_

#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/inverted_index.h"
#include "util/status.h"
#include "util/types.h"

namespace duplex::core {

// Thread-safe facade over InvertedIndex with reader-writer semantics: any
// number of concurrent queries, exclusive batch updates. This serves the
// paper's core motivation — "in today's world of 7 days a week, 24 hours a
// day continuous operation, degradation of service for prolonged periods
// is not acceptable" — the index stays queryable except for the short
// exclusive window in which a batch is applied (no index rebuild ever
// blocks readers for hours).
class ConcurrentIndex {
 public:
  explicit ConcurrentIndex(const IndexOptions& options)
      : index_(options) {}

  ConcurrentIndex(const ConcurrentIndex&) = delete;
  ConcurrentIndex& operator=(const ConcurrentIndex&) = delete;

  // --- Writers (exclusive) -------------------------------------------------

  DocId AddDocument(const std::string& text) {
    std::unique_lock lock(mutex_);
    return index_.AddDocument(text);
  }

  Status FlushDocuments() {
    std::unique_lock lock(mutex_);
    return index_.FlushDocuments();
  }

  Status ApplyBatchUpdate(const text::BatchUpdate& batch) {
    std::unique_lock lock(mutex_);
    return index_.ApplyBatchUpdate(batch);
  }

  Status ApplyInvertedBatch(const text::InvertedBatch& batch) {
    std::unique_lock lock(mutex_);
    return index_.ApplyInvertedBatch(batch);
  }

  void DeleteDocument(DocId doc) {
    std::unique_lock lock(mutex_);
    index_.DeleteDocument(doc);
  }

  Status SweepDeletions() {
    std::unique_lock lock(mutex_);
    return index_.SweepDeletions();
  }

  Status GrowBuckets(uint32_t new_num_buckets, uint64_t new_capacity) {
    std::unique_lock lock(mutex_);
    return index_.GrowBuckets(new_num_buckets, new_capacity);
  }

  // Runs `fn(InvertedIndex&)` under the exclusive lock (e.g. Snapshot
  // writes, custom maintenance).
  template <typename Fn>
  auto WithWriteLock(Fn&& fn) {
    std::unique_lock lock(mutex_);
    return fn(index_);
  }

  // --- Readers (shared) -----------------------------------------------------

  Result<std::vector<DocId>> GetPostings(std::string_view word) const {
    std::shared_lock lock(mutex_);
    return index_.GetPostings(word);
  }

  Result<std::vector<DocId>> GetPostings(WordId word) const {
    std::shared_lock lock(mutex_);
    return index_.GetPostings(word);
  }

  InvertedIndex::ListLocation Locate(std::string_view word) const {
    std::shared_lock lock(mutex_);
    return index_.Locate(word);
  }

  IndexStats Stats() const {
    std::shared_lock lock(mutex_);
    return index_.Stats();
  }

  // Runs `fn(const InvertedIndex&)` under the shared lock — the hook the
  // query layer uses to evaluate whole boolean/vector queries against a
  // consistent index state:
  //
  //   concurrent.WithReadLock([&](const core::InvertedIndex& idx) {
  //     return ir::EvaluateBoolean(idx, "cat AND dog");
  //   });
  template <typename Fn>
  auto WithReadLock(Fn&& fn) const {
    std::shared_lock lock(mutex_);
    return fn(static_cast<const InvertedIndex&>(index_));
  }

 private:
  mutable std::shared_mutex mutex_;
  InvertedIndex index_;
};

}  // namespace duplex::core

#endif  // DUPLEX_CORE_CONCURRENT_INDEX_H_

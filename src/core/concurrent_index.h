#ifndef DUPLEX_CORE_CONCURRENT_INDEX_H_
#define DUPLEX_CORE_CONCURRENT_INDEX_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/index_shard.h"
#include "core/inverted_index.h"
#include "util/status.h"
#include "util/types.h"

namespace duplex::core {

// Thread-safe facade over InvertedIndex with reader-writer semantics: any
// number of concurrent queries, exclusive batch updates. This serves the
// paper's core motivation — "in today's world of 7 days a week, 24 hours a
// day continuous operation, degradation of service for prolonged periods
// is not acceptable" — the index stays queryable except for the short
// exclusive window in which a batch is applied (no index rebuild ever
// blocks readers for hours).
//
// Implemented as the single-shard case of the sharded architecture: the
// lock lives in IndexShard, the same per-shard lock ShardedIndex takes N
// of. Use ShardedIndex when updates should not block unrelated queries at
// all; use this facade when callers need whole-index consistent reads
// (WithReadLock) over one InvertedIndex.
class ConcurrentIndex {
 public:
  explicit ConcurrentIndex(const IndexOptions& options)
      : shard_(options) {}

  ConcurrentIndex(const ConcurrentIndex&) = delete;
  ConcurrentIndex& operator=(const ConcurrentIndex&) = delete;

  // --- Writers (exclusive) -------------------------------------------------

  DocId AddDocument(const std::string& text) {
    return shard_.WithWrite(
        [&](InvertedIndex& index) { return index.AddDocument(text); });
  }

  Status FlushDocuments() {
    return shard_.WithWrite(
        [](InvertedIndex& index) { return index.FlushDocuments(); });
  }

  Status ApplyBatchUpdate(const text::BatchUpdate& batch) {
    return shard_.WithWrite(
        [&](InvertedIndex& index) { return index.ApplyBatchUpdate(batch); });
  }

  Status ApplyInvertedBatch(const text::InvertedBatch& batch) {
    return shard_.WithWrite([&](InvertedIndex& index) {
      return index.ApplyInvertedBatch(batch);
    });
  }

  void DeleteDocument(DocId doc) {
    shard_.WithWrite([&](InvertedIndex& index) { index.DeleteDocument(doc); });
  }

  Status SweepDeletions() {
    return shard_.WithWrite(
        [](InvertedIndex& index) { return index.SweepDeletions(); });
  }

  Status GrowBuckets(uint32_t new_num_buckets, uint64_t new_capacity) {
    return shard_.WithWrite([&](InvertedIndex& index) {
      return index.GrowBuckets(new_num_buckets, new_capacity);
    });
  }

  // Writes dirty cache frames back to the devices (write-back mode).
  Status FlushCaches() {
    return shard_.WithWrite(
        [](InvertedIndex& index) { return index.FlushCaches(); });
  }

  // Runs `fn(InvertedIndex&)` under the exclusive lock (e.g. Snapshot
  // writes, custom maintenance).
  template <typename Fn>
  auto WithWriteLock(Fn&& fn) {
    return shard_.WithWrite(std::forward<Fn>(fn));
  }

  // --- Readers (shared) -----------------------------------------------------

  Result<std::vector<DocId>> GetPostings(std::string_view word) const {
    return shard_.WithRead(
        [&](const InvertedIndex& index) { return index.GetPostings(word); });
  }

  Result<std::vector<DocId>> GetPostings(WordId word) const {
    return shard_.WithRead(
        [&](const InvertedIndex& index) { return index.GetPostings(word); });
  }

  InvertedIndex::ListLocation Locate(std::string_view word) const {
    return shard_.WithRead(
        [&](const InvertedIndex& index) { return index.Locate(word); });
  }

  InvertedIndex::ListLocation Locate(WordId word) const {
    return shard_.WithRead(
        [&](const InvertedIndex& index) { return index.Locate(word); });
  }

  bool IsDeleted(DocId doc) const {
    return shard_.WithRead(
        [&](const InvertedIndex& index) { return index.IsDeleted(doc); });
  }

  size_t deleted_count() const {
    return shard_.WithRead(
        [](const InvertedIndex& index) { return index.deleted_count(); });
  }

  size_t buffered_documents() const {
    return shard_.WithRead([](const InvertedIndex& index) {
      return index.buffered_documents();
    });
  }

  IndexStats Stats() const {
    return shard_.WithRead(
        [](const InvertedIndex& index) { return index.Stats(); });
  }

  Status VerifyIntegrity() const {
    return shard_.WithRead(
        [](const InvertedIndex& index) { return index.VerifyIntegrity(); });
  }

  // Runs `fn(const InvertedIndex&)` under the shared lock — the hook the
  // query layer uses to evaluate whole boolean/vector queries against a
  // consistent index state:
  //
  //   concurrent.WithReadLock([&](const core::InvertedIndex& idx) {
  //     return ir::EvaluateBoolean(idx, "cat AND dog");
  //   });
  template <typename Fn>
  auto WithReadLock(Fn&& fn) const {
    return shard_.WithRead(std::forward<Fn>(fn));
  }

 private:
  IndexShard shard_;
};

}  // namespace duplex::core

#endif  // DUPLEX_CORE_CONCURRENT_INDEX_H_

#ifndef DUPLEX_CORE_CHUNK_FORMAT_H_
#define DUPLEX_CORE_CHUNK_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "core/codec_family.h"
#include "util/status.h"

namespace duplex::core {

// On-device framing of one long-list chunk. Format v1 prefixes the encoded
// payload with a fixed 16-byte header; v0 ("legacy") is the headerless
// layout every index before the versioning change wrote — payload bytes
// start at byte 0 of the chunk's first block. Which format a chunk uses is
// also mirrored in its ChunkRef, so readers dispatch on metadata and use
// the header purely as an on-device cross-check (a mismatch is corruption,
// never a silent fallback).
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//   0       2     magic 0xD17C, little-endian
//   2       1     format version (1)
//   3       1     codec id (CodecKind: 0 vbyte, 1 elias-gamma, 2 elias-delta)
//   4       2     flags, little-endian — must be zero in v1
//   6       10    reserved, must be zero (earmarked for per-block max-score
//                 metadata so future ranked readers can skip blocks)
//
// The header is deliberately fixed-size and zero-padded: decode cost is a
// bounds check plus five field loads, and every spare byte is validated so
// a later version can assign meaning without ambiguity about old writers.

inline constexpr uint16_t kChunkMagic = 0xD17C;
inline constexpr uint8_t kChunkFormatLegacy = 0;  // headerless v0
inline constexpr uint8_t kChunkFormatV1 = 1;
inline constexpr uint64_t kChunkHeaderSize = 16;

// Stable on-device codec ids (CodecKind enumerator order is ABI here).
uint8_t CodecKindId(CodecKind kind);
Result<CodecKind> CodecKindFromId(uint8_t id);

struct ChunkHeader {
  uint8_t version = kChunkFormatV1;
  CodecKind codec = CodecKind::kVByte;
};

// Appends the 16-byte v1 header for `header` to *out.
void EncodeChunkHeader(const ChunkHeader& header, std::string* out);

// Validates and decodes a v1 header from the first kChunkHeaderSize bytes
// of `bytes`. Every failure — truncation, bad magic, unknown version or
// codec, nonzero flags or reserved bytes — is a typed kCorruption status;
// no partially-decoded header ever escapes.
Result<ChunkHeader> DecodeChunkHeader(std::string_view bytes);

// Bytes the header occupies ahead of the payload for a chunk of `format`:
// kChunkHeaderSize for v1, 0 for legacy.
inline uint64_t ChunkHeaderBytes(uint8_t format) {
  return format == kChunkFormatLegacy ? 0 : kChunkHeaderSize;
}

}  // namespace duplex::core

#endif  // DUPLEX_CORE_CHUNK_FORMAT_H_

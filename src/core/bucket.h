#ifndef DUPLEX_CORE_BUCKET_H_
#define DUPLEX_CORE_BUCKET_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>

#include "core/posting.h"
#include "util/types.h"

namespace duplex::core {

// One fixed-size bucket holding the short inverted lists of many words
// (paper Section 2). Size accounting follows the paper exactly: each
// posting is charged 1 unit and each word is charged 1 unit ("for each
// inverted list in the bucket, we need to store the word it represents
// plus all of its postings").
class Bucket {
 public:
  Bucket() = default;

  bool Contains(WordId word) const { return entries_.contains(word); }

  // Returns nullptr when the word has no short list here.
  const PostingList* Find(WordId word) const;

  // Inserts `list` for `word`, or appends it to the existing short list.
  void Upsert(WordId word, const PostingList& list);

  // Removes and returns the entry with the most postings (the paper picks
  // "the longest short list"; ties broken by smaller word id for
  // determinism). Requires word_count() > 0.
  std::pair<WordId, PostingList> EvictLongest();

  // Removes `word` if present; returns true if it was present.
  bool Remove(WordId word);

  // Drops postings matching `deleted` from every materialized short list
  // (the paper's background deletion sweep); returns postings removed.
  // Counted lists are left untouched. Words whose lists become empty are
  // removed.
  uint64_t FilterPostings(const std::function<bool(DocId)>& deleted);

  size_t word_count() const { return entries_.size(); }
  uint64_t posting_count() const { return postings_; }
  // Units used: words + postings.
  uint64_t used_units() const { return entries_.size() + postings_; }

  const std::unordered_map<WordId, PostingList>& entries() const {
    return entries_;
  }

 private:
  std::unordered_map<WordId, PostingList> entries_;
  uint64_t postings_ = 0;
};

}  // namespace duplex::core

#endif  // DUPLEX_CORE_BUCKET_H_

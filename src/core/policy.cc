#include "core/policy.h"

#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace duplex::core {

const char* StyleName(Style style) {
  switch (style) {
    case Style::kNew:
      return "new";
    case Style::kFill:
      return "fill";
    case Style::kWhole:
      return "whole";
  }
  return "unknown";
}

const char* AllocStrategyName(AllocStrategy alloc) {
  switch (alloc) {
    case AllocStrategy::kConstant:
      return "constant";
    case AllocStrategy::kBlock:
      return "block";
    case AllocStrategy::kProportional:
      return "proportional";
    case AllocStrategy::kExponential:
      return "exponential";
  }
  return "unknown";
}

Policy Policy::New0() {
  Policy p;
  p.style = Style::kNew;
  p.in_place = false;
  p.alloc = AllocStrategy::kConstant;
  p.k = 0.0;
  return p;
}

Policy Policy::NewZ(AllocStrategy alloc, double k) {
  Policy p;
  p.style = Style::kNew;
  p.in_place = true;
  p.alloc = alloc;
  p.k = k;
  return p;
}

Policy Policy::Fill0(uint32_t extent_blocks) {
  Policy p;
  p.style = Style::kFill;
  p.in_place = false;
  p.alloc = AllocStrategy::kConstant;
  p.k = 0.0;
  p.extent_blocks = extent_blocks;
  return p;
}

Policy Policy::FillZ(uint32_t extent_blocks) {
  Policy p = Fill0(extent_blocks);
  p.in_place = true;
  return p;
}

Policy Policy::Whole0() {
  Policy p;
  p.style = Style::kWhole;
  p.in_place = false;
  p.alloc = AllocStrategy::kConstant;
  p.k = 0.0;
  return p;
}

Policy Policy::WholeZ(AllocStrategy alloc, double k) {
  Policy p;
  p.style = Style::kWhole;
  p.in_place = true;
  p.alloc = alloc;
  p.k = k;
  return p;
}

Policy Policy::RecommendedUpdateOptimized() {
  return NewZ(AllocStrategy::kProportional, 1.2);
}

Policy Policy::RecommendedQueryOptimized() {
  return WholeZ(AllocStrategy::kProportional, 1.2);
}

uint64_t Policy::ReservedFor(uint64_t x, uint64_t block_postings,
                             uint64_t chunk_index) const {
  DUPLEX_CHECK_GT(block_postings, 0u);
  switch (alloc) {
    case AllocStrategy::kConstant:
      return x + static_cast<uint64_t>(k);
    case AllocStrategy::kBlock: {
      // k is in blocks: the chunk is rounded up to a multiple of k blocks.
      const uint64_t k_postings =
          static_cast<uint64_t>(k) * block_postings;
      DUPLEX_CHECK_GT(k_postings, 0u);
      const uint64_t multiples = (x + k_postings - 1) / k_postings;
      return (multiples == 0 ? 1 : multiples) * k_postings;
    }
    case AllocStrategy::kProportional:
      return static_cast<uint64_t>(std::ceil(k * static_cast<double>(x)));
    case AllocStrategy::kExponential: {
      // Chunk `chunk_index` is at least k^chunk_index blocks (capped so
      // the exponent cannot overflow); the data itself may need more.
      const double exponent = std::min<double>(
          static_cast<double>(chunk_index), 40.0);
      const uint64_t min_blocks = static_cast<uint64_t>(
          std::ceil(std::pow(k, exponent)));
      return std::max(x, min_blocks * block_postings);
    }
  }
  return x;
}

Status Policy::Validate() const {
  if (!in_place) {
    // Limit = 0: reserved space would never be used; the paper fixes
    // Alloc = constant with k = 0 in this case.
    if (alloc != AllocStrategy::kConstant || k != 0.0) {
      return Status::InvalidArgument(
          "Limit=0 requires Alloc=constant with k=0 (reserved space would "
          "never be used)");
    }
  }
  if (style == Style::kFill) {
    if (extent_blocks == 0) {
      return Status::InvalidArgument("fill style requires extent_blocks>0");
    }
    if (alloc != AllocStrategy::kConstant || k != 0.0) {
      return Status::InvalidArgument(
          "fill style has its own extent allocation; Alloc must be left at "
          "constant k=0");
    }
  }
  if (alloc == AllocStrategy::kProportional && in_place && k < 1.0) {
    return Status::InvalidArgument("proportional k must be >= 1");
  }
  if (alloc == AllocStrategy::kBlock && in_place && k < 1.0) {
    return Status::InvalidArgument("block k must be >= 1 block");
  }
  if (alloc == AllocStrategy::kExponential) {
    if (style != Style::kNew) {
      return Status::InvalidArgument(
          "exponential allocation only makes sense for the new style "
          "(whole keeps one chunk; fill has its own extents)");
    }
    if (k <= 1.0) {
      return Status::InvalidArgument("exponential k must be > 1");
    }
  }
  if (k < 0.0) return Status::InvalidArgument("k must be non-negative");
  return Status::OK();
}

std::string Policy::Name() const {
  std::ostringstream os;
  os << StyleName(style) << " " << (in_place ? "z" : "0");
  if (style == Style::kFill) {
    os << " e=" << extent_blocks;
  } else if (in_place &&
             !(alloc == AllocStrategy::kConstant && k == 0.0)) {
    switch (alloc) {
      case AllocStrategy::kConstant:
        os << " const" << static_cast<uint64_t>(k);
        break;
      case AllocStrategy::kBlock:
        os << " block" << static_cast<uint64_t>(k);
        break;
      case AllocStrategy::kProportional:
        os << " prop" << k;
        break;
      case AllocStrategy::kExponential:
        os << " exp" << k;
        break;
    }
  }
  return os.str();
}

}  // namespace duplex::core

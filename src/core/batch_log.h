#ifndef DUPLEX_CORE_BATCH_LOG_H_
#define DUPLEX_CORE_BATCH_LOG_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/inverted_index.h"
#include "storage/fault_injection.h"
#include "text/batch.h"
#include "util/status.h"

namespace duplex::core {

// Write-ahead log of batch updates, making incremental index maintenance
// restartable (the paper: "the algorithms and data structures are
// constructed so that the incremental update of the index can be restarted
// if it is aborted"). Protocol:
//
//   1. log.AppendBatch(batch)          -- durable before any index I/O
//   2. index.ApplyBatchUpdate(batch)   -- buckets/directory flushed after
//   3. log.MarkApplied(batch_id)       -- commit record
//
// After a crash, UnappliedBatches() returns the batches whose apply never
// committed; replaying them (plus a Snapshot of the pre-crash index, if
// any) reconstructs the index. Records carry an FNV-64 checksum; a torn
// tail (partial final record) is detected and ignored, matching the usual
// WAL recovery contract.
//
// Batch ids are GLOBAL and monotonic for the life of the index, even
// across tail truncation: after a durable checkpoint covering batches
// [0, epoch), TruncateTo(epoch) rewrites the log to an 'E' (epoch base)
// record followed by only the surviving tail, and ids keep counting from
// where they were. base_epoch() is the id of the oldest record still in
// the log; ReplayFrom(epoch, ...) is the checkpoint-tail recovery path.
class BatchLog {
 public:
  // One logged batch; `counts` is always populated, `docs` only when the
  // batch was materialized. `words` (parallel to `docs.entries`, possibly
  // empty — the caller may not track strings, and older records never
  // carried them) holds the word string of each entry so a replay into a
  // fresh index can reinstate the vocabulary at the recorded ids, not
  // just the postings.
  struct LoggedBatch {
    uint64_t id = 0;
    bool materialized = false;
    text::BatchUpdate counts;
    text::InvertedBatch docs;
    std::vector<std::string> words;
  };

  // One logged compaction round ('C' record). Informational: compaction
  // never changes logical postings, so replay ignores these — recovery of
  // a crash mid-round is the ordinary full rebuild. They exist so
  // operators (duplexctl) and tests can see reclamation history in the
  // log.
  struct LoggedCompaction {
    uint64_t lists = 0;
    uint64_t blocks_reclaimed = 0;
    uint64_t postings = 0;
  };

  // Opens (creating if necessary) the log at `path` and scans it. Returns
  // Corruption only for damage before the final record; a torn tail is
  // silently truncated on the next append.
  static Result<std::unique_ptr<BatchLog>> Open(const std::string& path);

  ~BatchLog();

  BatchLog(const BatchLog&) = delete;
  BatchLog& operator=(const BatchLog&) = delete;

  // Appends a batch record; returns the assigned batch id. Durable before
  // returning: the stream is flushed and, unless set_fsync(false), pushed
  // through fdatasync so the record survives an OS crash, not just a
  // process crash.
  Result<uint64_t> AppendBatch(const text::BatchUpdate& batch);
  Result<uint64_t> AppendBatch(const text::InvertedBatch& batch);
  // Materialized append that also records each entry's word string
  // (`words[i]` names `batch.entries[i].word`). Costs log bytes but makes
  // the record self-contained: a full rebuild restores string-keyed
  // queries, not only WordId-keyed postings.
  Result<uint64_t> AppendBatch(const text::InvertedBatch& batch,
                               std::vector<std::string> words);

  // Appends the commit record for `batch_id`.
  Status MarkApplied(uint64_t batch_id);

  // Full commit protocol for one batch: append (durable), apply to the
  // index, flush the index's dirty cache frames (write-back pools must
  // not hold committed index writes hostage in memory), then the commit
  // record. This is the ordering diagram in DESIGN.md § Buffer pool.
  Status ApplyLogged(InvertedIndex* index, const text::BatchUpdate& batch);
  Status ApplyLogged(InvertedIndex* index, const text::InvertedBatch& batch);

  // One logged compaction round: run index->CompactOnce(), flush dirty
  // cache frames (same discipline as ApplyLogged — the rewritten chunks
  // must be on the devices before the log mentions them), then append a
  // 'C' record when the round rewrote anything. A crash anywhere inside is
  // recovered by ReplayInto exactly like a crashed batch apply, because
  // compaction is logically a no-op.
  Result<CompactionStats> CompactLogged(InvertedIndex* index);

  // Test hook: disable the per-record fdatasync (appends still fflush).
  // Durability tests count syncs(); everything else can skip the disk
  // round-trips.
  void set_fsync(bool enabled) { fsync_enabled_ = enabled; }
  bool fsync_enabled() const { return fsync_enabled_; }
  uint64_t syncs() const { return syncs_; }

  // Test hook: the next `n` appends fail their durability sync (after the
  // bytes reached the kernel), modeling a disk that accepts writes but
  // cannot promise them. The append returns IoError, but the batch is
  // kept as an UNAPPLIED entry — the same state a reopen of the file
  // would reconstruct — so later appends keep the dense id sequence and
  // recovery errs toward replaying the possibly-durable record.
  void set_fail_next_syncs(uint64_t n) { fail_next_syncs_ = n; }

  // Batches appended but never marked applied, in append order.
  std::vector<const LoggedBatch*> UnappliedBatches() const;

  // Replays every unapplied batch into `index` and marks it applied.
  Status RecoverInto(InvertedIndex* index);

  // Replays ALL logged batches, applied or not, into a freshly
  // constructed empty `index`, then marks everything applied. This is the
  // full-rebuild recovery path for a crash that may have left device
  // state partially written: rebuilding from nothing sidesteps "was block
  // k's write durable?" entirely. FailedPrecondition once the log has
  // been tail-truncated (base_epoch() > 0): the full history is gone,
  // and only a checkpoint + ReplayFrom can reconstruct the index.
  Status ReplayInto(InvertedIndex* index);

  // Replays every batch with id >= epoch, in id order, through `apply`
  // (applied and unapplied alike — the caller restored a checkpoint
  // covering exactly [0, epoch) into fresh structures, so the tail is
  // idempotent by construction), then marks the replayed batches
  // applied. Typed failures, never silent gaps: FailedPrecondition when
  // epoch < base_epoch() (the tail needed is already truncated away) and
  // Corruption when an unapplied batch predates `epoch` (the checkpoint
  // claims coverage the log contradicts).
  Status ReplayFrom(uint64_t epoch,
                    const std::function<Status(const LoggedBatch&)>& apply);
  // Convenience overload applying into an InvertedIndex (same per-batch
  // path as ReplayInto: apply, then flush dirty cache frames).
  Status ReplayFrom(uint64_t epoch, InvertedIndex* index);

  // Drops every record for batches with id < new_base (all of which must
  // be applied — a checkpoint can only cover committed work) by
  // rewriting the file as an 'E' base record plus the surviving tail,
  // atomically: the rewrite goes to <path>.tmp, is synced, and renames
  // over the log, so a crash anywhere leaves either the old or the new
  // log, never a hybrid. Compaction 'C' records describe pre-checkpoint
  // history and are dropped. Ids keep counting from next_id().
  Status TruncateTo(uint64_t new_base);

  // Drops all records (e.g. after a Snapshot made them redundant).
  Status Truncate();

  // Arms fault injection on TruncateTo's physical steps (tmp-file chunk
  // writes, sync, rename), sharing the op counter with the checkpoint
  // pipeline's crash-point sweeps.
  void set_fault_schedule(
      std::shared_ptr<storage::FaultSchedule> schedule) {
    fault_ = std::move(schedule);
  }

  uint64_t batches_logged() const { return batches_.size(); }
  uint64_t batches_applied() const { return applied_count_; }
  // Id of the oldest batch still in the log (0 until a TruncateTo).
  uint64_t base_epoch() const { return base_epoch_; }
  // Id the next appended batch will get: base_epoch() + batches_logged().
  uint64_t next_id() const { return next_id_; }
  uint64_t compactions_logged() const { return compactions_.size(); }
  const LoggedCompaction& compaction(uint64_t i) const {
    return compactions_[i];
  }
  // Logged batch `i` of the RETAINED window, in append order
  // (i < batches_logged(); its id is base_epoch() + i). Scrub walks this
  // window to reconstruct a damaged list's postings.
  const LoggedBatch& batch(uint64_t i) const { return batches_[i]; }
  const std::string& path() const { return path_; }

 private:
  explicit BatchLog(std::string path) : path_(std::move(path)) {
    m_append_ns_ = GlobalLatency("duplex_core_wal_append_ns",
                                 "Batch-log record append latency "
                                 "(write + flush + sync)");
    m_fsync_ns_ = GlobalLatency("duplex_core_wal_fsync_ns",
                                "Batch-log fdatasync latency");
    m_replay_ns_ = GlobalLatency("duplex_core_wal_replay_ns",
                                 "Batch-log recovery/replay wall-clock");
  }

  Status Scan();
  Status AppendRecord(char type, const std::string& payload);
  Result<uint64_t> AppendBatchRecord(const std::string& payload,
                                     LoggedBatch batch);
  static Status ApplyOne(InvertedIndex* index, const LoggedBatch& batch);

  std::string path_;
  std::FILE* file_ = nullptr;
  bool fsync_enabled_ = true;
  uint64_t syncs_ = 0;
  uint64_t fail_next_syncs_ = 0;
  uint64_t base_epoch_ = 0;
  uint64_t next_id_ = 0;
  uint64_t applied_count_ = 0;
  std::shared_ptr<storage::FaultSchedule> fault_;
  std::vector<LoggedBatch> batches_;
  std::vector<bool> applied_;
  std::vector<LoggedCompaction> compactions_;
  LatencyHistogram* m_append_ns_ = nullptr;
  LatencyHistogram* m_fsync_ns_ = nullptr;
  LatencyHistogram* m_replay_ns_ = nullptr;
};

}  // namespace duplex::core

#endif  // DUPLEX_CORE_BATCH_LOG_H_

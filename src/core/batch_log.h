#ifndef DUPLEX_CORE_BATCH_LOG_H_
#define DUPLEX_CORE_BATCH_LOG_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/inverted_index.h"
#include "text/batch.h"
#include "util/status.h"

namespace duplex::core {

// Write-ahead log of batch updates, making incremental index maintenance
// restartable (the paper: "the algorithms and data structures are
// constructed so that the incremental update of the index can be restarted
// if it is aborted"). Protocol:
//
//   1. log.AppendBatch(batch)          -- durable before any index I/O
//   2. index.ApplyBatchUpdate(batch)   -- buckets/directory flushed after
//   3. log.MarkApplied(batch_id)       -- commit record
//
// After a crash, UnappliedBatches() returns the batches whose apply never
// committed; replaying them (plus a Snapshot of the pre-crash index, if
// any) reconstructs the index. Records carry an FNV-64 checksum; a torn
// tail (partial final record) is detected and ignored, matching the usual
// WAL recovery contract.
class BatchLog {
 public:
  // One logged batch; `counts` is always populated, `docs` only when the
  // batch was materialized.
  struct LoggedBatch {
    uint64_t id = 0;
    bool materialized = false;
    text::BatchUpdate counts;
    text::InvertedBatch docs;
  };

  // One logged compaction round ('C' record). Informational: compaction
  // never changes logical postings, so replay ignores these — recovery of
  // a crash mid-round is the ordinary full rebuild. They exist so
  // operators (duplexctl) and tests can see reclamation history in the
  // log.
  struct LoggedCompaction {
    uint64_t lists = 0;
    uint64_t blocks_reclaimed = 0;
    uint64_t postings = 0;
  };

  // Opens (creating if necessary) the log at `path` and scans it. Returns
  // Corruption only for damage before the final record; a torn tail is
  // silently truncated on the next append.
  static Result<std::unique_ptr<BatchLog>> Open(const std::string& path);

  ~BatchLog();

  BatchLog(const BatchLog&) = delete;
  BatchLog& operator=(const BatchLog&) = delete;

  // Appends a batch record; returns the assigned batch id. Durable before
  // returning: the stream is flushed and, unless set_fsync(false), pushed
  // through fdatasync so the record survives an OS crash, not just a
  // process crash.
  Result<uint64_t> AppendBatch(const text::BatchUpdate& batch);
  Result<uint64_t> AppendBatch(const text::InvertedBatch& batch);

  // Appends the commit record for `batch_id`.
  Status MarkApplied(uint64_t batch_id);

  // Full commit protocol for one batch: append (durable), apply to the
  // index, flush the index's dirty cache frames (write-back pools must
  // not hold committed index writes hostage in memory), then the commit
  // record. This is the ordering diagram in DESIGN.md § Buffer pool.
  Status ApplyLogged(InvertedIndex* index, const text::BatchUpdate& batch);
  Status ApplyLogged(InvertedIndex* index, const text::InvertedBatch& batch);

  // One logged compaction round: run index->CompactOnce(), flush dirty
  // cache frames (same discipline as ApplyLogged — the rewritten chunks
  // must be on the devices before the log mentions them), then append a
  // 'C' record when the round rewrote anything. A crash anywhere inside is
  // recovered by ReplayInto exactly like a crashed batch apply, because
  // compaction is logically a no-op.
  Result<CompactionStats> CompactLogged(InvertedIndex* index);

  // Test hook: disable the per-record fdatasync (appends still fflush).
  // Durability tests count syncs(); everything else can skip the disk
  // round-trips.
  void set_fsync(bool enabled) { fsync_enabled_ = enabled; }
  bool fsync_enabled() const { return fsync_enabled_; }
  uint64_t syncs() const { return syncs_; }

  // Test hook: the next `n` appends fail their durability sync (after the
  // bytes reached the kernel), modeling a disk that accepts writes but
  // cannot promise them. The failed append is NOT registered in memory;
  // on the next Open the record surfaces as an unapplied batch.
  void set_fail_next_syncs(uint64_t n) { fail_next_syncs_ = n; }

  // Batches appended but never marked applied, in append order.
  std::vector<const LoggedBatch*> UnappliedBatches() const;

  // Replays every unapplied batch into `index` and marks it applied.
  Status RecoverInto(InvertedIndex* index);

  // Replays ALL logged batches, applied or not, into a freshly
  // constructed empty `index`, then marks everything applied. This is the
  // full-rebuild recovery path for a crash that may have left device
  // state partially written: rebuilding from nothing sidesteps "was block
  // k's write durable?" entirely.
  Status ReplayInto(InvertedIndex* index);

  // Drops all records (e.g. after a Snapshot made them redundant).
  Status Truncate();

  uint64_t batches_logged() const { return batches_.size(); }
  uint64_t batches_applied() const { return applied_count_; }
  uint64_t compactions_logged() const { return compactions_.size(); }
  const LoggedCompaction& compaction(uint64_t i) const {
    return compactions_[i];
  }
  // Logged batch `i` in append order (i < batches_logged()). Scrub walks
  // the full history to reconstruct a damaged list's postings.
  const LoggedBatch& batch(uint64_t i) const { return batches_[i]; }
  const std::string& path() const { return path_; }

 private:
  explicit BatchLog(std::string path) : path_(std::move(path)) {
    m_append_ns_ = GlobalLatency("duplex_core_wal_append_ns",
                                 "Batch-log record append latency "
                                 "(write + flush + sync)");
    m_fsync_ns_ = GlobalLatency("duplex_core_wal_fsync_ns",
                                "Batch-log fdatasync latency");
    m_replay_ns_ = GlobalLatency("duplex_core_wal_replay_ns",
                                 "Batch-log recovery/replay wall-clock");
  }

  Status Scan();
  Status AppendRecord(char type, const std::string& payload);
  Result<uint64_t> AppendBatchRecord(const std::string& payload,
                                     LoggedBatch batch);
  static Status ApplyOne(InvertedIndex* index, const LoggedBatch& batch);

  std::string path_;
  std::FILE* file_ = nullptr;
  bool fsync_enabled_ = true;
  uint64_t syncs_ = 0;
  uint64_t fail_next_syncs_ = 0;
  uint64_t next_id_ = 0;
  uint64_t applied_count_ = 0;
  std::vector<LoggedBatch> batches_;
  std::vector<bool> applied_;
  std::vector<LoggedCompaction> compactions_;
  LatencyHistogram* m_append_ns_ = nullptr;
  LatencyHistogram* m_fsync_ns_ = nullptr;
  LatencyHistogram* m_replay_ns_ = nullptr;
};

}  // namespace duplex::core

#endif  // DUPLEX_CORE_BATCH_LOG_H_

#include "core/long_list_store.h"

#include <algorithm>

#include "util/logging.h"

namespace duplex::core {

LongListStore::LongListStore(const LongListStoreOptions& options,
                             storage::DiskArray* disks,
                             storage::IoTrace* trace)
    : options_(options), disks_(disks), trace_(trace) {
  DUPLEX_CHECK(disks != nullptr);
  DUPLEX_CHECK_GT(options.block_postings, 0u);
  DUPLEX_CHECK_OK(options.policy.Validate());
  DUPLEX_CHECK(options_.chunk_format == kChunkFormatLegacy ||
               options_.chunk_format == kChunkFormatV1);
  if (options_.materialize) {
    DUPLEX_CHECK(disks_->device(0) != nullptr)
        << "materialize requires a disk array with payload devices";
    // Varints use at most 5 bytes per doc-id posting; the byte capacity of
    // a chunk must cover its posting capacity plus the per-chunk header
    // (the header amortizes over the first block, so a per-block bound
    // suffices for chunks of any length).
    DUPLEX_CHECK_GE(disks_->block_size(),
                    5 * options_.block_postings +
                        ChunkHeaderBytes(options_.chunk_format));
  }
  m_in_place_ = GlobalCounter("duplex_core_long_in_place_updates_total",
                              "Long-list appends satisfied in place "
                              "(paper Figure 2 UPDATE)");
  m_new_chunks_ = GlobalCounter("duplex_core_long_new_chunks_total",
                                "New long-list chunks written");
  m_lists_created_ = GlobalCounter("duplex_core_long_lists_created_total",
                                   "Words promoted to their first long "
                                   "list chunk");
  m_postings_moved_ = GlobalCounter("duplex_core_long_postings_moved_total",
                                    "Postings rewritten by whole-style "
                                    "moves");
}

void LongListStore::Record(storage::IoOp op, WordId word, uint64_t postings,
                           const storage::BlockRange& range,
                           uint64_t nblocks) {
  const storage::BlockRange span{range.disk, range.start, nblocks};
  bool cached = false;
  if (op == storage::IoOp::kRead) {
    ++counters_.read_ops;
    // A read is cached only when every block it touches is resident —
    // otherwise the arm moves anyway and the op stays physical.
    cached =
        nblocks > 0 && disks_->CacheTouchRead(span, nblocks) == nblocks;
  } else {
    ++counters_.write_ops;
    disks_->CacheNoteWrite(span, nblocks);
  }
  if (trace_ != nullptr) {
    storage::IoEvent e;
    e.op = op;
    e.tag = storage::IoTag::kLongList;
    e.word = word;
    e.postings = postings;
    e.disk = range.disk;
    e.block = range.start;
    e.nblocks = nblocks;
    e.cached = cached;
    trace_->Add(e);
  }
}

uint64_t LongListStore::TailSpace(WordId word) const {
  const LongList* list = directory_.Find(word);
  if (list == nullptr || list->chunks.empty()) return 0;
  const ChunkRef& last = list->chunks.back();
  return ChunkCapacity(last) - last.postings;
}

Status LongListStore::WriteChunkPayload(ChunkRef* chunk,
                                        const std::vector<DocId>& docs,
                                        DocId base) {
  chunk->format = options_.chunk_format;
  chunk->codec = CodecKindId(options_.codec);
  std::string bytes;
  if (chunk->format != kChunkFormatLegacy) {
    ChunkHeader header;
    header.codec = options_.codec;
    EncodeChunkHeader(header, &bytes);
  }
  const size_t header_bytes = bytes.size();
  GetCodec(options_.codec).Encode(docs, base, &bytes);
  chunk->byte_length = bytes.size() - header_bytes;
  storage::BlockDevice* dev = disks_->device(chunk->range.disk);
  DUPLEX_CHECK(dev != nullptr);
  return dev->Write(chunk->range.start, 0,
                    reinterpret_cast<const uint8_t*>(bytes.data()),
                    bytes.size());
}

Result<std::vector<DocId>> LongListStore::DecodeChunk(
    const ChunkRef& c) const {
  const storage::BlockDevice* dev = disks_->device(c.range.disk);
  const uint64_t header_bytes = ChunkHeaderBytes(c.format);
  std::string bytes(header_bytes + c.byte_length, '\0');
  DUPLEX_RETURN_IF_ERROR(dev->Read(c.range.start, 0,
                                   reinterpret_cast<uint8_t*>(bytes.data()),
                                   bytes.size()));
  Result<CodecKind> codec = CodecKindFromId(c.codec);
  if (!codec.ok()) return codec.status();
  if (header_bytes > 0) {
    Result<ChunkHeader> header = DecodeChunkHeader(bytes);
    if (!header.ok()) return header.status();
    // A flipped codec byte can still form a well-shaped header; the
    // directory remembers what was written, so any disagreement is rot,
    // not a format change.
    if (header->codec != *codec) {
      return Status::Corruption(
          "chunk header: codec disagrees with directory metadata");
    }
  }
  std::vector<DocId> docs;
  docs.reserve(c.postings);
  DUPLEX_RETURN_IF_ERROR(GetCodec(*codec).Decode(
      bytes.substr(header_bytes), c.postings, c.base_doc, &docs));
  if (docs.size() != c.postings) {
    return Status::Corruption("chunk payload: short decode");
  }
  return docs;
}

Status LongListStore::UpdateInPlace(WordId word, LongList* list,
                                    const PostingList& m) {
  ChunkRef& c = list->chunks.back();
  DUPLEX_CHECK_GT(c.postings, 0u);
  const uint64_t y = m.size();
  // UPDATE(a) "reads the last block containing postings for word w,
  // appends a to it, and then writes the result back as an in-place
  // update". The write covers the old last block through the new last one.
  const storage::BlockId last_block =
      c.range.start + (c.postings - 1) / options_.block_postings;
  const storage::BlockId new_last_block =
      c.range.start + (c.postings + y - 1) / options_.block_postings;
  DUPLEX_CHECK_LT(new_last_block, c.range.end());
  storage::BlockRange read_at{c.range.disk, last_block, 1};
  Record(storage::IoOp::kRead, word, y, read_at, 1);
  Record(storage::IoOp::kWrite, word, y, read_at,
         new_last_block - last_block + 1);

  if (options_.materialize) {
    DUPLEX_CHECK(m.materialized());
    // Only byte-aligned codecs reach this path (Append gates the bitwise
    // ones out), so the appended segment continues the chunk's varint
    // stream seamlessly. The write lands after the chunk's own header —
    // dispatching on the chunk's recorded format, not the store's, so a
    // legacy chunk keeps its headerless layout.
    DUPLEX_CHECK(CodecSupportsInPlaceAppend());
    std::string bytes;
    GetCodec(options_.codec).Encode(m.docs(), list->last_doc, &bytes);
    storage::BlockDevice* dev = disks_->device(c.range.disk);
    DUPLEX_RETURN_IF_ERROR(
        dev->Write(c.range.start, ChunkHeaderBytes(c.format) + c.byte_length,
                   reinterpret_cast<const uint8_t*>(bytes.data()),
                   bytes.size()));
    c.byte_length += bytes.size();
    list->last_doc = m.last_doc();
  }
  c.postings += y;
  list->total_postings += y;
  ++counters_.in_place_updates;
  if (m_in_place_ != nullptr) m_in_place_->Inc();
  return Status::OK();
}

Result<PostingList> LongListStore::ReadAndRelease(WordId word,
                                                  LongList* list) {
  std::vector<DocId> docs;
  if (options_.materialize) docs.reserve(list->total_postings);
  for (const ChunkRef& c : list->chunks) {
    // Account before touching the device: the cached flag must reflect
    // residency before this very read warms the pool. The read covers the
    // blocks that hold postings — the reserved tail was never written, so
    // it is never read (mirrors the write side, which records data
    // blocks, not the allocation).
    Record(storage::IoOp::kRead, word, c.postings, c.range,
           std::max<uint64_t>(1, BlocksFor(c.postings)));
    if (options_.materialize) {
      Result<std::vector<DocId>> chunk_docs = DecodeChunk(c);
      if (!chunk_docs.ok()) return chunk_docs.status();
      docs.insert(docs.end(), chunk_docs->begin(), chunk_docs->end());
    }
    release_.push_back(c.range);
  }
  PostingList full = options_.materialize
                         ? PostingList::Materialized(std::move(docs))
                         : PostingList::Counted(list->total_postings);
  counters_.postings_moved += list->total_postings;
  if (m_postings_moved_ != nullptr) {
    m_postings_moved_->Inc(list->total_postings);
  }
  list->chunks.clear();
  list->total_postings = 0;
  return full;
}

Status LongListStore::WriteReserved(WordId word, LongList* list,
                                    const PostingList& a) {
  const uint64_t f = std::max(
      a.size(), options_.policy.ReservedFor(a.size(), options_.block_postings,
                                            list->chunks.size()));
  return WriteChunk(word, list, a, std::max<uint64_t>(1, BlocksFor(f)));
}

Status LongListStore::WriteChunk(WordId word, LongList* list,
                                 const PostingList& a,
                                 uint64_t alloc_blocks) {
  const uint64_t x = a.size();
  DUPLEX_CHECK_GT(x, 0u);
  DUPLEX_CHECK_GE(alloc_blocks, std::max<uint64_t>(1, BlocksFor(x)));
  Result<storage::BlockRange> range = disks_->Allocate(alloc_blocks);
  if (!range.ok()) return range.status();

  const uint64_t data_blocks = std::max<uint64_t>(1, BlocksFor(x));
  Record(storage::IoOp::kWrite, word, x, *range, data_blocks);

  ChunkRef chunk;
  chunk.range = *range;
  chunk.postings = x;
  chunk.base_doc = list->total_postings > 0 ? list->last_doc : 0;
  if (options_.materialize) {
    DUPLEX_CHECK(a.materialized());
    DUPLEX_RETURN_IF_ERROR(WriteChunkPayload(&chunk, a.docs(),
                                             chunk.base_doc));
    list->last_doc = a.last_doc();
  }
  list->chunks.push_back(chunk);
  list->total_postings += x;
  if (m_new_chunks_ != nullptr) m_new_chunks_->Inc();
  return Status::OK();
}

Status LongListStore::WriteExtents(WordId word, LongList* list,
                                   PostingList m) {
  const uint64_t extent_capacity =
      static_cast<uint64_t>(options_.policy.extent_blocks) *
      options_.block_postings;
  // Paper Figure 2 lines 8-9: WHILE (M not empty) WRITE(M, M).
  while (!m.empty()) {
    const uint64_t take = std::min(m.size(), extent_capacity);
    PostingList prefix = m.TakePrefix(take);
    Result<storage::BlockRange> range =
        disks_->Allocate(options_.policy.extent_blocks);
    if (!range.ok()) return range.status();
    const uint64_t data_blocks = std::max<uint64_t>(1, BlocksFor(take));
    Record(storage::IoOp::kWrite, word, take, *range, data_blocks);

    ChunkRef chunk;
    chunk.range = *range;
    chunk.postings = take;
    chunk.base_doc = list->total_postings > 0 ? list->last_doc : 0;
    if (options_.materialize) {
      DUPLEX_CHECK(prefix.materialized());
      DUPLEX_RETURN_IF_ERROR(
          WriteChunkPayload(&chunk, prefix.docs(), chunk.base_doc));
      list->last_doc = prefix.last_doc();
    }
    list->chunks.push_back(chunk);
    list->total_postings += take;
    if (m_new_chunks_ != nullptr) m_new_chunks_->Inc();
  }
  return Status::OK();
}

Status LongListStore::Append(WordId word, const PostingList& m) {
  if (m.empty()) return Status::OK();
  if (options_.materialize && !m.materialized()) {
    return Status::InvalidArgument(
        "materialized store requires materialized posting lists");
  }
  LongList* list = directory_.FindMutable(word);
  const bool is_new = list == nullptr;
  if (is_new) {
    list = &directory_.GetOrCreate(word);
    ++counters_.lists_created;
    if (m_lists_created_ != nullptr) m_lists_created_->Inc();
  } else {
    ++counters_.appends_to_existing;
  }

  const uint64_t y = m.size();
  // Figure 2 line 1: "if y <= Limit then UPDATE(M)". Limit is 0 or z; a
  // brand-new list has no chunk to extend so it always falls through.
  // Bitwise codecs force Limit to 0 in materialized mode: their padded
  // final byte means an appended segment cannot continue the stream.
  if (!is_new && options_.policy.in_place && !list->chunks.empty() &&
      (!options_.materialize || CodecSupportsInPlaceAppend()) &&
      y <= ChunkCapacity(list->chunks.back()) -
               list->chunks.back().postings) {
    return UpdateInPlace(word, list, m);
  }

  switch (options_.policy.style) {
    case Style::kWhole: {
      PostingList combined;
      if (!list->chunks.empty()) {
        Result<PostingList> b = ReadAndRelease(word, list);
        if (!b.ok()) return b.status();
        combined = std::move(*b);
      }
      combined.Append(m);
      return WriteReserved(word, list, combined);
    }
    case Style::kFill:
      return WriteExtents(word, list, m);
    case Style::kNew:
      return WriteReserved(word, list, m);
  }
  return Status::Internal("unreachable");
}

Status LongListStore::FlushEpoch() {
  for (const storage::BlockRange& r : release_) {
    DUPLEX_RETURN_IF_ERROR(disks_->Free(r));
  }
  release_.clear();
  return Status::OK();
}

Result<std::vector<DocId>> LongListStore::ReadPostings(WordId word) const {
  if (!options_.materialize) {
    return Status::FailedPrecondition("store is not materialized");
  }
  const LongList* list = directory_.Find(word);
  if (list == nullptr) return Status::NotFound("no long list for word");
  std::vector<DocId> docs;
  docs.reserve(list->total_postings);
  for (const ChunkRef& c : list->chunks) {
    Result<std::vector<DocId>> chunk_docs = DecodeChunk(c);
    if (!chunk_docs.ok()) return chunk_docs.status();
    docs.insert(docs.end(), chunk_docs->begin(), chunk_docs->end());
  }
  return docs;
}

Status LongListStore::Drop(WordId word) {
  LongList* list = directory_.FindMutable(word);
  if (list == nullptr) return Status::NotFound("no long list for word");
  for (const ChunkRef& c : list->chunks) {
    DUPLEX_RETURN_IF_ERROR(disks_->Free(c.range));
  }
  directory_.Erase(word);
  return Status::OK();
}

Status LongListStore::Compact(WordId word) {
  LongList* list = directory_.FindMutable(word);
  if (list == nullptr) return Status::NotFound("no long list for word");
  if (list->chunks.empty()) return Status::OK();
  const uint64_t minimal =
      std::max<uint64_t>(1, BlocksFor(list->total_postings));
  if (list->chunks.size() == 1 && list->chunks[0].range.length <= minimal) {
    return Status::OK();  // already one right-sized chunk
  }
  // READ(L) frees the old chunks onto the RELEASE list (deferred to
  // FlushEpoch, so a crash mid-rewrite never sees reused blocks), then the
  // merged list goes back as one chunk with no reserve — compaction trades
  // future in-place headroom for utilization and read locality.
  Result<PostingList> full = ReadAndRelease(word, list);
  if (!full.ok()) return full.status();
  return WriteChunk(word, list, *full, minimal);
}

}  // namespace duplex::core

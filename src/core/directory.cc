#include "core/directory.h"

namespace duplex::core {

LongList& Directory::GetOrCreate(WordId word) { return lists_[word]; }

const LongList* Directory::Find(WordId word) const {
  auto it = lists_.find(word);
  return it == lists_.end() ? nullptr : &it->second;
}

LongList* Directory::FindMutable(WordId word) {
  auto it = lists_.find(word);
  return it == lists_.end() ? nullptr : &it->second;
}

bool Directory::Erase(WordId word) { return lists_.erase(word) > 0; }

uint64_t Directory::TotalChunks() const {
  uint64_t n = 0;
  for (const auto& [word, list] : lists_) n += list.chunks.size();
  return n;
}

uint64_t Directory::TotalBlocks() const {
  uint64_t n = 0;
  for (const auto& [word, list] : lists_) n += list.total_blocks();
  return n;
}

uint64_t Directory::TotalPostings() const {
  uint64_t n = 0;
  for (const auto& [word, list] : lists_) n += list.total_postings;
  return n;
}

double Directory::Utilization(uint64_t block_postings) const {
  const uint64_t capacity = TotalBlocks() * block_postings;
  if (capacity == 0) return 1.0;
  return static_cast<double>(TotalPostings()) /
         static_cast<double>(capacity);
}

double Directory::AvgReadsPerList() const {
  if (lists_.empty()) return 0.0;
  return static_cast<double>(TotalChunks()) /
         static_cast<double>(lists_.size());
}

uint64_t Directory::EstimatedBytes() const {
  // 8 bytes per word entry + 24 bytes per chunk pointer, the ballpark an
  // implementation would need.
  return 8 * lists_.size() + 24 * TotalChunks();
}

}  // namespace duplex::core

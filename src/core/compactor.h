#ifndef DUPLEX_CORE_COMPACTOR_H_
#define DUPLEX_CORE_COMPACTOR_H_

#include <cstdint>
#include <vector>

#include "core/directory.h"
#include "util/status.h"
#include "util/types.h"

namespace duplex::core {

class LongListStore;

// Trigger policy for the online space-reclamation subsystem. The paper's
// long-list quality metrics — internal utilization (Figure 9) and average
// read operations per long list (Figure 10) — degrade monotonically under
// Style=new with generous Alloc reservations; the compactor wins both
// back by merging a fragmented list's chunks into one right-sized chunk.
struct CompactionOptions {
  // When true, every batch apply ends with one bounded compaction round
  // (after the bucket/directory flush, before the trace update closes).
  bool enabled = false;
  // A list qualifies when it spans at least this many chunks...
  uint64_t min_chunks = 2;
  // ...or its own utilization (postings / allocated posting capacity)
  // falls below this, i.e. the reserved tail it will never revisit is
  // dead space worth reclaiming.
  double min_utilization = 0.9;
  // At most this many lists are rewritten per round; the rest stay for
  // the next round (stats report more_pending). 0 means unlimited.
  uint64_t max_lists_per_round = 64;
  // Upper bound on the estimated physical ops (chunk reads + the merged
  // write) one round may spend. 0 means unlimited. At least one list is
  // compacted per round if any qualifies, so progress is guaranteed even
  // under a budget smaller than the cheapest candidate.
  uint64_t io_budget = 0;
};

// What one compaction round (or an accumulation of rounds) did.
struct CompactionStats {
  uint64_t rounds = 0;
  uint64_t lists_examined = 0;   // directory entries scored
  uint64_t candidates = 0;       // entries that qualified
  uint64_t lists_compacted = 0;  // entries actually rewritten
  uint64_t chunks_before = 0;    // chunks of the rewritten lists
  uint64_t chunks_after = 0;
  uint64_t blocks_before = 0;    // blocks of the rewritten lists
  uint64_t blocks_after = 0;
  uint64_t postings_rewritten = 0;
  uint64_t read_ops = 0;   // physical ops spent compacting
  uint64_t write_ops = 0;
  // Qualified lists were left for the next round (budget or cap hit).
  bool more_pending = false;

  uint64_t blocks_reclaimed() const {
    return blocks_before > blocks_after ? blocks_before - blocks_after : 0;
  }
  void Merge(const CompactionStats& other);
};

// Per-word fragmentation scoring plus the bounded round driver. Works on
// LongListStore chunk metadata only, so it runs identically in the
// count-only simulation pipeline and the materialized query path.
//
// Crash safety: a rewrite frees old chunks onto the store's RELEASE list
// (deferred to FlushEpoch) and changes only the physical layout — logical
// postings are untouched. A crash mid-round is therefore recovered by the
// ordinary full-rebuild WAL replay (BatchLog::ReplayInto); no compaction
// state needs logging for correctness, and the BatchLog 'C' record the
// index layer appends after a round is purely informational.
class Compactor {
 public:
  struct Candidate {
    WordId word = 0;
    uint64_t score = 0;    // higher = more worth compacting
    uint64_t est_ops = 0;  // chunk reads + one merged write
  };

  // `store` must outlive the compactor.
  Compactor(const CompactionOptions& options, LongListStore* store);

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  const CompactionOptions& options() const { return options_; }

  // Scores every directory entry and returns the qualifying lists, most
  // fragmented first (deterministic: ties break on ascending word id).
  // `examined` (optional) receives the number of entries scored.
  std::vector<Candidate> SelectCandidates(uint64_t* examined) const;

  // One bounded round: select, rewrite up to the caps, account. Freed
  // chunks land on the store's RELEASE list; the caller decides when to
  // FlushEpoch (the index layer does it right after the round).
  Result<CompactionStats> RunRound();

 private:
  // Fragmentation score of one list; 0 = not a candidate.
  uint64_t Score(const LongList& list) const;

  CompactionOptions options_;
  LongListStore* store_;
};

}  // namespace duplex::core

#endif  // DUPLEX_CORE_COMPACTOR_H_

#include "core/compactor.h"

#include <algorithm>

#include "core/long_list_store.h"
#include "util/logging.h"

namespace duplex::core {

void CompactionStats::Merge(const CompactionStats& other) {
  rounds += other.rounds;
  lists_examined += other.lists_examined;
  candidates += other.candidates;
  lists_compacted += other.lists_compacted;
  chunks_before += other.chunks_before;
  chunks_after += other.chunks_after;
  blocks_before += other.blocks_before;
  blocks_after += other.blocks_after;
  postings_rewritten += other.postings_rewritten;
  read_ops += other.read_ops;
  write_ops += other.write_ops;
  more_pending = more_pending || other.more_pending;
}

Compactor::Compactor(const CompactionOptions& options, LongListStore* store)
    : options_(options), store_(store) {
  DUPLEX_CHECK(store != nullptr);
  DUPLEX_CHECK_GE(options.min_chunks, 1u);
}

uint64_t Compactor::Score(const LongList& list) const {
  if (list.chunks.empty() || list.total_postings == 0) return 0;
  const uint64_t bp = store_->options().block_postings;
  const uint64_t blocks = list.total_blocks();
  const uint64_t minimal = (list.total_postings + bp - 1) / bp;
  // One right-sized chunk already: nothing to reclaim.
  if (list.chunks.size() == 1 && blocks <= minimal) return 0;
  const uint64_t capacity = blocks * bp;
  const double utilization =
      static_cast<double>(list.total_postings) /
      static_cast<double>(capacity);
  const bool fragmented = list.chunks.size() >= options_.min_chunks;
  const bool underfull =
      blocks > minimal && utilization < options_.min_utilization;
  if (!fragmented && !underfull) return 0;
  // Reads saved on every future scan of this list, in posting units, plus
  // the dead reserved space the merge hands back to the allocator.
  const uint64_t extra_reads = (list.chunks.size() - 1) * bp;
  const uint64_t dead_space = capacity - list.total_postings;
  return extra_reads + dead_space;
}

std::vector<Compactor::Candidate> Compactor::SelectCandidates(
    uint64_t* examined) const {
  std::vector<Candidate> candidates;
  uint64_t scanned = 0;
  for (const auto& [word, list] : store_->directory().lists()) {
    ++scanned;
    const uint64_t score = Score(list);
    if (score == 0) continue;
    Candidate c;
    c.word = word;
    c.score = score;
    c.est_ops = list.chunks.size() + 1;
    candidates.push_back(c);
  }
  // The directory map iterates in hash order; sort so rounds are
  // deterministic and the most fragmented lists go first.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.word < b.word;
            });
  if (examined != nullptr) *examined = scanned;
  return candidates;
}

Result<CompactionStats> Compactor::RunRound() {
  CompactionStats stats;
  stats.rounds = 1;
  const std::vector<Candidate> candidates =
      SelectCandidates(&stats.lists_examined);
  stats.candidates = candidates.size();
  uint64_t est_spent = 0;
  size_t taken = 0;
  for (const Candidate& c : candidates) {
    if (options_.max_lists_per_round > 0 &&
        stats.lists_compacted >= options_.max_lists_per_round) {
      break;
    }
    // The budget always admits the first list so a qualified round makes
    // progress; after that it is a hard cap.
    if (options_.io_budget > 0 && taken > 0 &&
        est_spent + c.est_ops > options_.io_budget) {
      break;
    }
    const LongList* before = store_->directory().Find(c.word);
    DUPLEX_CHECK(before != nullptr);
    const uint64_t chunks_before = before->chunks.size();
    const uint64_t blocks_before = before->total_blocks();
    const uint64_t postings = before->total_postings;
    const LongListStore::Counters ops_before = store_->counters();
    DUPLEX_RETURN_IF_ERROR(store_->Compact(c.word));
    const LongListStore::Counters ops_after = store_->counters();
    const LongList* after = store_->directory().Find(c.word);
    DUPLEX_CHECK(after != nullptr);
    ++taken;
    ++stats.lists_compacted;
    stats.chunks_before += chunks_before;
    stats.chunks_after += after->chunks.size();
    stats.blocks_before += blocks_before;
    stats.blocks_after += after->total_blocks();
    stats.postings_rewritten += postings;
    stats.read_ops += ops_after.read_ops - ops_before.read_ops;
    stats.write_ops += ops_after.write_ops - ops_before.write_ops;
    est_spent += c.est_ops;
  }
  stats.more_pending = taken < candidates.size();
  return stats;
}

}  // namespace duplex::core

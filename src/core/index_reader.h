#ifndef DUPLEX_CORE_INDEX_READER_H_
#define DUPLEX_CORE_INDEX_READER_H_

#include <functional>
#include <string_view>
#include <vector>

#include "core/index_stats.h"
#include "util/status.h"
#include "util/types.h"

namespace duplex::core {

// The one read-path seam every query evaluator targets. An IndexReader is
// anything that can resolve a term to a posting list and price that
// fetch: the unsharded InvertedIndex, the word-partitioned ShardedIndex,
// the in-memory MemoryIndex (the delta tier of an immediate-visibility
// ingest path), and MergingReader, which overlays N readers into one
// view. ir::QueryExecutor is written against this interface only, so a
// new backend (a network-attached index, a snapshot reader, a future
// delta+disk pair) plugs into every evaluator by implementing five
// methods.
//
// Contracts shared by all implementations:
//  - Snapshot semantics are per-call: each Locate/GetPostings sees some
//    consistent state of the reader; implementations with internal
//    locking (ShardedIndex) guarantee per-term atomicity, exactly the
//    granularity the previous per-index evaluators provided.
//  - GetPostings returns doc ids strictly ascending with deleted
//    documents already filtered, or NotFound when the term has no list.
//  - Locate never fails; a missing term yields `exists == false`. Its
//    ListLocation carries the cost counters (chunk reads, buffer-pool
//    resident chunks, postings) that feed ir::CostAccumulator.
class IndexReader {
 public:
  virtual ~IndexReader() = default;

  // --- Term lookup -------------------------------------------------------

  // Where the word's list lives and what fetching it costs.
  virtual ListLocation Locate(WordId word) const = 0;
  virtual ListLocation Locate(std::string_view word) const = 0;

  // --- Postings access ---------------------------------------------------

  // The word's full posting list (ascending, deletions filtered).
  // NotFound when the word has no list; FailedPrecondition when the
  // backend stores no payloads (count-only mode).
  virtual Result<std::vector<DocId>> GetPostings(WordId word) const = 0;
  virtual Result<std::vector<DocId>> GetPostings(
      std::string_view word) const = 0;

  // --- Snapshot extent ---------------------------------------------------

  // One more than the largest doc id this reader can return — the idf
  // calibration for vector scoring and the doc-id horizon a delta/disk
  // merge must agree on.
  virtual DocId next_doc_id() const = 0;

  // --- Enumeration -------------------------------------------------------

  // Calls `fn` once per word that currently has a list (any order, each
  // word exactly once). Workload generators build their sampling
  // distributions from this instead of reaching into backend internals.
  virtual void ForEachWord(const std::function<void(WordId)>& fn) const = 0;
};

}  // namespace duplex::core

#endif  // DUPLEX_CORE_INDEX_READER_H_

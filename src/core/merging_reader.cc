#include "core/merging_reader.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace duplex::core {

MergingReader::MergingReader(std::vector<const IndexReader*> readers)
    : readers_(std::move(readers)) {
  DUPLEX_CHECK(!readers_.empty());
  for (const IndexReader* reader : readers_) {
    DUPLEX_CHECK(reader != nullptr);
  }
}

template <typename Key>
ListLocation MergingReader::LocateImpl(Key key) const {
  ListLocation merged;
  for (const IndexReader* reader : readers_) {
    const ListLocation loc = reader->Locate(key);
    if (!loc.exists) continue;
    merged.exists = true;
    merged.is_long = merged.is_long || loc.is_long;
    merged.chunks += loc.chunks;
    merged.cached_chunks += loc.cached_chunks;
    merged.postings += loc.postings;
  }
  return merged;
}

ListLocation MergingReader::Locate(WordId word) const {
  return LocateImpl(word);
}

ListLocation MergingReader::Locate(std::string_view word) const {
  return LocateImpl(word);
}

std::vector<DocId> MergeDocLists(
    const std::vector<std::vector<DocId>>& lists) {
  // Two-at-a-time set_union keeps the merge simple and the common case
  // (two readers: delta + disk) a single pass; duplicates collapse
  // because set_union emits an element common to both inputs once.
  std::vector<DocId> merged;
  for (const std::vector<DocId>& list : lists) {
    if (list.empty()) continue;
    if (merged.empty()) {
      merged = list;
      continue;
    }
    std::vector<DocId> next;
    next.reserve(merged.size() + list.size());
    std::set_union(merged.begin(), merged.end(), list.begin(), list.end(),
                   std::back_inserter(next));
    merged = std::move(next);
  }
  return merged;
}

template <typename Key>
Result<std::vector<DocId>> MergingReader::GetPostingsImpl(Key key) const {
  std::vector<std::vector<DocId>> lists;
  bool found = false;
  for (const IndexReader* reader : readers_) {
    Result<std::vector<DocId>> docs = reader->GetPostings(key);
    if (!docs.ok()) {
      // A reader without the word contributes nothing; any other failure
      // (corruption, not materialized) is the overlay's failure too.
      if (docs.status().IsNotFound()) continue;
      return docs.status();
    }
    found = true;
    lists.push_back(std::move(*docs));
  }
  if (!found) return Status::NotFound("word has no inverted list");
  return MergeDocLists(lists);
}

Result<std::vector<DocId>> MergingReader::GetPostings(WordId word) const {
  return GetPostingsImpl(word);
}

Result<std::vector<DocId>> MergingReader::GetPostings(
    std::string_view word) const {
  return GetPostingsImpl(word);
}

DocId MergingReader::next_doc_id() const {
  DocId next = 0;
  for (const IndexReader* reader : readers_) {
    next = std::max(next, reader->next_doc_id());
  }
  return next;
}

void MergingReader::ForEachWord(
    const std::function<void(WordId)>& fn) const {
  std::unordered_set<WordId> seen;
  for (const IndexReader* reader : readers_) {
    reader->ForEachWord([&](WordId word) {
      if (seen.insert(word).second) fn(word);
    });
  }
}

}  // namespace duplex::core

#include "core/chunk_format.h"

#include "util/logging.h"

namespace duplex::core {

uint8_t CodecKindId(CodecKind kind) {
  switch (kind) {
    case CodecKind::kVByte:
      return 0;
    case CodecKind::kEliasGamma:
      return 1;
    case CodecKind::kEliasDelta:
      return 2;
  }
  DUPLEX_CHECK(false) << "unknown CodecKind";
  return 0;
}

Result<CodecKind> CodecKindFromId(uint8_t id) {
  switch (id) {
    case 0:
      return CodecKind::kVByte;
    case 1:
      return CodecKind::kEliasGamma;
    case 2:
      return CodecKind::kEliasDelta;
    default:
      return Status::Corruption("chunk header: unknown codec id " +
                                std::to_string(id));
  }
}

void EncodeChunkHeader(const ChunkHeader& header, std::string* out) {
  DUPLEX_CHECK_EQ(header.version, kChunkFormatV1);
  const size_t start = out->size();
  out->resize(start + kChunkHeaderSize, '\0');
  uint8_t* p = reinterpret_cast<uint8_t*>(out->data() + start);
  p[0] = static_cast<uint8_t>(kChunkMagic & 0xFF);
  p[1] = static_cast<uint8_t>(kChunkMagic >> 8);
  p[2] = header.version;
  p[3] = CodecKindId(header.codec);
  // flags [4..5] and reserved [6..15] stay zero.
}

Result<ChunkHeader> DecodeChunkHeader(std::string_view bytes) {
  if (bytes.size() < kChunkHeaderSize) {
    return Status::Corruption(
        "chunk header: truncated (" + std::to_string(bytes.size()) +
        " bytes, need " + std::to_string(kChunkHeaderSize) + ")");
  }
  const uint8_t* p = reinterpret_cast<const uint8_t*>(bytes.data());
  const uint16_t magic =
      static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
  if (magic != kChunkMagic) {
    return Status::Corruption("chunk header: bad magic");
  }
  if (p[2] != kChunkFormatV1) {
    return Status::Corruption("chunk header: unknown format version " +
                              std::to_string(p[2]));
  }
  Result<CodecKind> codec = CodecKindFromId(p[3]);
  if (!codec.ok()) return codec.status();
  const uint16_t flags =
      static_cast<uint16_t>(p[4]) | static_cast<uint16_t>(p[5]) << 8;
  if (flags != 0) {
    return Status::Corruption("chunk header: unsupported flags " +
                              std::to_string(flags));
  }
  for (size_t i = 6; i < kChunkHeaderSize; ++i) {
    if (p[i] != 0) {
      return Status::Corruption("chunk header: nonzero reserved byte at " +
                                std::to_string(i));
    }
  }
  ChunkHeader header;
  header.version = p[2];
  header.codec = *codec;
  return header;
}

}  // namespace duplex::core

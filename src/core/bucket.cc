#include "core/bucket.h"

#include "util/logging.h"

namespace duplex::core {

const PostingList* Bucket::Find(WordId word) const {
  auto it = entries_.find(word);
  return it == entries_.end() ? nullptr : &it->second;
}

void Bucket::Upsert(WordId word, const PostingList& list) {
  postings_ += list.size();
  auto [it, inserted] = entries_.try_emplace(word, list);
  if (!inserted) it->second.Append(list);
}

std::pair<WordId, PostingList> Bucket::EvictLongest() {
  DUPLEX_CHECK(!entries_.empty());
  auto longest = entries_.begin();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.size() > longest->second.size() ||
        (it->second.size() == longest->second.size() &&
         it->first < longest->first)) {
      longest = it;
    }
  }
  std::pair<WordId, PostingList> result{longest->first,
                                        std::move(longest->second)};
  postings_ -= result.second.size();
  entries_.erase(longest);
  return result;
}

uint64_t Bucket::FilterPostings(
    const std::function<bool(DocId)>& deleted) {
  uint64_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (!it->second.materialized()) {
      ++it;
      continue;
    }
    std::vector<DocId> kept;
    kept.reserve(it->second.docs().size());
    for (const DocId d : it->second.docs()) {
      if (!deleted(d)) kept.push_back(d);
    }
    const uint64_t dropped = it->second.size() - kept.size();
    if (dropped == 0) {
      ++it;
      continue;
    }
    removed += dropped;
    postings_ -= dropped;
    if (kept.empty()) {
      it = entries_.erase(it);
    } else {
      it->second = PostingList::Materialized(std::move(kept));
      ++it;
    }
  }
  return removed;
}

bool Bucket::Remove(WordId word) {
  auto it = entries_.find(word);
  if (it == entries_.end()) return false;
  postings_ -= it->second.size();
  entries_.erase(it);
  return true;
}

}  // namespace duplex::core

#ifndef DUPLEX_CORE_CODEC_FAMILY_H_
#define DUPLEX_CORE_CODEC_FAMILY_H_

#include <memory>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/types.h"

namespace duplex::core {

// Pluggable posting-list compression (the paper points to Zobel, Moffat &
// Sacks-Davis' compressed inverted files as complementary; BlockPosting
// "implicitly models the efficiency of the compression algorithm", and
// this family makes that knob concrete). All codecs encode strictly
// ascending doc ids as gaps relative to `base`, like posting_codec.h.
class GapCodec {
 public:
  virtual ~GapCodec() = default;

  virtual const char* name() const = 0;

  // Appends the encoding of `docs` (ascending, docs[0] >= base) to *out.
  virtual void Encode(const std::vector<DocId>& docs, DocId base,
                      std::string* out) const = 0;

  // Decodes exactly `count` postings starting at bit/byte position *pos.
  // For byte-aligned codecs `pos` counts bytes; for bitwise codecs it
  // counts bits. Fresh decodes should start at *pos = 0 on a buffer that
  // contains exactly one encoded sequence.
  virtual Status Decode(const std::string& bytes, uint64_t count,
                        DocId base, std::vector<DocId>* docs) const = 0;
};

enum class CodecKind {
  kVByte,       // LEB128 varint (the default on-disk codec)
  kEliasGamma,  // unary length + binary remainder; best for tiny gaps
  kEliasDelta,  // gamma-coded length + remainder; best all-round bitwise
};

const char* CodecKindName(CodecKind kind);

// Returns a stateless singleton codec; never fails.
const GapCodec& GetCodec(CodecKind kind);

// Encoded size in bytes for `docs` under `kind` (convenience for the
// compression-ratio bench).
size_t EncodedSize(CodecKind kind, const std::vector<DocId>& docs,
                   DocId base);

// Bit-granular writer/reader used by the Elias codecs; exposed for tests.
class BitWriter {
 public:
  explicit BitWriter(std::string* out) : out_(out) {}

  // Appends `count` bits of `value`, most-significant first.
  void WriteBits(uint64_t value, int count);
  // Appends `n` zero bits followed by a one bit (unary code of n).
  void WriteUnary(int n);
  // Pads the final partial byte with zeros.
  void Finish();

 private:
  std::string* out_;
  uint8_t pending_ = 0;
  int pending_bits_ = 0;
};

class BitReader {
 public:
  explicit BitReader(const std::string& bytes) : bytes_(bytes) {}

  // Reads `count` bits, most-significant first.
  Result<uint64_t> ReadBits(int count);
  // Reads a unary code: the number of zero bits before the next one bit.
  Result<int> ReadUnary();

  size_t bit_position() const { return pos_; }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;  // in bits
};

}  // namespace duplex::core

#endif  // DUPLEX_CORE_CODEC_FAMILY_H_

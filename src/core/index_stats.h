#ifndef DUPLEX_CORE_INDEX_STATS_H_
#define DUPLEX_CORE_INDEX_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace duplex::core {

// Per-batch word categorization (paper Figure 7): of the words appearing
// in a batch update, how many were previously unseen, how many already sat
// in a bucket, and how many had long lists.
struct UpdateCategories {
  uint64_t new_words = 0;
  uint64_t bucket_words = 0;
  uint64_t long_words = 0;

  uint64_t total() const { return new_words + bucket_words + long_words; }
};

// Snapshot of index-wide statistics after an update. Produced per
// InvertedIndex; a ShardedIndex produces one per shard and reduces them
// with MergeStats().
struct IndexStats {
  uint64_t updates_applied = 0;
  uint64_t total_postings = 0;
  uint64_t bucket_words = 0;
  uint64_t bucket_postings = 0;
  uint64_t long_words = 0;
  uint64_t long_postings = 0;
  uint64_t long_chunks = 0;
  uint64_t long_blocks = 0;
  double long_utilization = 1.0;    // paper Figure 9
  double avg_reads_per_list = 0.0;  // paper Figure 10
  double bucket_occupancy = 0.0;
  uint64_t io_ops = 0;  // cumulative trace events (paper Figure 8)
  uint64_t in_place_updates = 0;
  uint64_t append_opportunities = 0;
  // Buffer-pool accounting (zero when no cache is configured). Plain
  // counters, so merging is a field-wise sum; `cache_pinned_peak` sums
  // too (each shard pool pins independently, so the sum is the
  // worst-case simultaneous footprint).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_dirty_writebacks = 0;
  uint64_t cache_pinned_peak = 0;
  uint64_t cache_physical_reads = 0;
  uint64_t cache_physical_writes = 0;
  // How many per-index snapshots this value aggregates (1 for a single
  // InvertedIndex). Carried so pairwise Merge() can recombine
  // `bucket_occupancy` (a per-snapshot mean) associatively.
  uint64_t stats_sources = 1;

  // Folds `other` into this snapshot. Counters sum; `updates_applied`
  // takes the max (every shard sees every batch, so they agree in a
  // healthy index); ratio metrics are recombined from their underlying
  // numerators/denominators: `long_utilization` weighted by long_blocks,
  // `avg_reads_per_list` by long_words, `bucket_occupancy` by
  // stats_sources (shards share one bucket geometry, so capacities are
  // equal). Associative: folding N snapshots in any grouping yields the
  // same result as MergeStats() over all N.
  void Merge(const IndexStats& other);

  // Pretty-printed JSON object covering every field.
  std::string ToJson() const;
};

// Where a word's list lives — input to the query cost model. Historically
// nested in InvertedIndex (still aliased there); hoisted so the sharded
// index and the ir layer can speak it without the full index type.
struct ListLocation {
  bool exists = false;
  bool is_long = false;
  uint64_t chunks = 0;  // read ops to fetch the list (1 for a bucket)
  uint64_t postings = 0;
  // Of `chunks`, how many are fully buffer-pool resident right now (their
  // reads would be logical-only). 0 when no cache is configured.
  uint64_t cached_chunks = 0;
};

// Reduces per-shard statistics into index-wide totals: a fold over
// IndexStats::Merge (the one canonical merge path — see its contract).
// Empty input yields a default IndexStats.
IndexStats MergeStats(const std::vector<IndexStats>& shards);

// Element-wise sum of per-shard category series. Shorter shard series are
// treated as zero-padded; the result has the length of the longest input.
std::vector<UpdateCategories> MergeCategories(
    const std::vector<std::vector<UpdateCategories>>& shards);

}  // namespace duplex::core

#endif  // DUPLEX_CORE_INDEX_STATS_H_

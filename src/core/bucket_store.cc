#include "core/bucket_store.h"

#include "util/logging.h"

namespace duplex::core {

BucketStore::BucketStore(const BucketStoreOptions& options)
    : options_(options), buckets_(options.num_buckets) {
  DUPLEX_CHECK_GT(options.num_buckets, 0u);
  DUPLEX_CHECK_GT(options.bucket_capacity, 0u);
}

bool BucketStore::Contains(WordId word) const {
  return buckets_[BucketFor(word)].Contains(word);
}

const PostingList* BucketStore::Find(WordId word) const {
  return buckets_[BucketFor(word)].Find(word);
}

std::vector<std::pair<WordId, PostingList>> BucketStore::Insert(
    WordId word, const PostingList& list) {
  const uint32_t b = BucketFor(word);
  Bucket& bucket = buckets_[b];
  bucket.Upsert(word, list);
  NotifyChange(b);
  std::vector<std::pair<WordId, PostingList>> evicted;
  // Paper Section 2: "If the bucket overflows, we then pick the longest
  // short list, remove it, and make it a long list." A single insertion
  // larger than the remaining space can require several evictions (and may
  // evict the inserted list itself).
  while (bucket.used_units() > options_.bucket_capacity) {
    evicted.push_back(bucket.EvictLongest());
    ++evictions_;
    NotifyChange(b);
  }
  return evicted;
}

bool BucketStore::Remove(WordId word) {
  const uint32_t b = BucketFor(word);
  const bool removed = buckets_[b].Remove(word);
  if (removed) NotifyChange(b);
  return removed;
}

uint64_t BucketStore::TotalWords() const {
  uint64_t n = 0;
  for (const auto& b : buckets_) n += b.word_count();
  return n;
}

uint64_t BucketStore::TotalPostings() const {
  uint64_t n = 0;
  for (const auto& b : buckets_) n += b.posting_count();
  return n;
}

uint64_t BucketStore::TotalUsedUnits() const {
  uint64_t n = 0;
  for (const auto& b : buckets_) n += b.used_units();
  return n;
}

double BucketStore::Occupancy() const {
  return static_cast<double>(TotalUsedUnits()) /
         static_cast<double>(TotalCapacityUnits());
}

std::vector<std::pair<WordId, PostingList>> BucketStore::Resize(
    uint32_t new_num_buckets, uint64_t new_bucket_capacity) {
  DUPLEX_CHECK_GT(new_num_buckets, 0u);
  DUPLEX_CHECK_GT(new_bucket_capacity, 0u);
  std::vector<Bucket> old_buckets = std::move(buckets_);
  buckets_.assign(new_num_buckets, Bucket());
  options_.num_buckets = new_num_buckets;
  options_.bucket_capacity = new_bucket_capacity;
  ++resizes_;
  std::vector<std::pair<WordId, PostingList>> promoted;
  for (Bucket& old_bucket : old_buckets) {
    for (const auto& [word, list] : old_bucket.entries()) {
      for (auto& evicted : Insert(word, list)) {
        promoted.push_back(std::move(evicted));
      }
    }
  }
  return promoted;
}

uint64_t BucketStore::FilterPostings(
    const std::function<bool(DocId)>& deleted) {
  uint64_t removed = 0;
  for (uint32_t i = 0; i < buckets_.size(); ++i) {
    const uint64_t r = buckets_[i].FilterPostings(deleted);
    if (r > 0) {
      removed += r;
      NotifyChange(i);
    }
  }
  return removed;
}

void BucketStore::NotifyChange(uint32_t bucket_id) {
  if (hook_) {
    const Bucket& b = buckets_[bucket_id];
    hook_(bucket_id, b.word_count(), b.posting_count());
  }
}

}  // namespace duplex::core

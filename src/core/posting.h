#ifndef DUPLEX_CORE_POSTING_H_
#define DUPLEX_CORE_POSTING_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"
#include "util/types.h"

namespace duplex::core {

// An in-memory inverted list. Two modes:
//  - materialized: holds the ascending doc ids (what the real index stores
//    and queries read);
//  - counted: holds only the number of postings. The paper's experiment
//    pipeline runs entirely on counts ("for our performance evaluation we
//    do not need to know the contents of each inverted list, only its
//    size", Section 4.2), and the policy code below works identically on
//    both modes.
class PostingList {
 public:
  PostingList() = default;

  // Counted-mode list of `count` postings.
  static PostingList Counted(uint64_t count) {
    PostingList list;
    list.count_ = count;
    return list;
  }

  // Materialized list; `docs` must be strictly ascending.
  static PostingList Materialized(std::vector<DocId> docs) {
    PostingList list;
    list.count_ = docs.size();
    list.docs_ = std::move(docs);
    list.materialized_ = true;
    return list;
  }

  bool materialized() const { return materialized_; }
  uint64_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  // Requires materialized().
  const std::vector<DocId>& docs() const {
    DUPLEX_CHECK(materialized_);
    return docs_;
  }

  DocId last_doc() const {
    DUPLEX_CHECK(materialized_);
    DUPLEX_CHECK(!docs_.empty());
    return docs_.back();
  }

  // Appends `other` (doc ids must continue ascending when materialized).
  void Append(const PostingList& other);

  // Adds one posting.
  void Add(DocId doc);

  // Splits off the first `n` postings (n <= size()); *this keeps the rest.
  PostingList TakePrefix(uint64_t n);

 private:
  uint64_t count_ = 0;
  bool materialized_ = false;
  std::vector<DocId> docs_;
};

}  // namespace duplex::core

#endif  // DUPLEX_CORE_POSTING_H_

#ifndef DUPLEX_CORE_MEMORY_INDEX_H_
#define DUPLEX_CORE_MEMORY_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/index_reader.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"
#include "util/types.h"

namespace duplex::core {

// The in-memory inverted index over documents that have arrived but not
// yet been flushed to disk. The paper's introduction requires exactly
// this: updates are batched, and "to maintain access to the batch, it can
// be searched simultaneously with the larger index". InvertedIndex merges
// these postings into query results until FlushDocuments() drains them.
//
// MemoryIndex is also a full IndexReader: standing alone it is the delta
// tier of an immediate-visibility ingest path, and under a MergingReader
// it overlays an on-disk index so unflushed documents answer queries —
// the merge shape of Asadi & Lin's in-memory incremental indexing.
// Buffered lists cost no disk reads, so Locate reports zero chunks.
class MemoryIndex : public IndexReader {
 public:
  MemoryIndex(const text::Tokenizer* tokenizer,
              text::Vocabulary* vocabulary)
      : tokenizer_(tokenizer), vocabulary_(vocabulary) {}

  MemoryIndex(const MemoryIndex&) = delete;
  MemoryIndex& operator=(const MemoryIndex&) = delete;

  // Tokenizes `text` and adds its words under `doc`. Doc ids must arrive
  // in ascending order.
  void AddDocument(DocId doc, const std::string& text);

  // Posting-level ingest for the delta tier: appends already-inverted,
  // ascending `docs` under `word` (ids assigned by an external
  // vocabulary, so a nullptr tokenizer/vocabulary index can be fed this
  // way). Every doc id must exceed the list's current tail.
  void AddPostings(WordId word, const std::vector<DocId>& docs);
  // Accounts `count` documents whose postings arrived via AddPostings and
  // advances the doc-id horizon to at least `next`.
  void NoteDocuments(size_t count, DocId next);

  // Postings buffered for `word`; nullptr when none.
  const std::vector<DocId>* Find(WordId word) const;

  size_t document_count() const { return documents_; }
  size_t distinct_words() const { return lists_.size(); }
  uint64_t total_postings() const { return postings_; }
  bool empty() const { return documents_ == 0; }

  void Clear();

  const std::unordered_map<WordId, std::vector<DocId>>& lists() const {
    return lists_;
  }

  // --- IndexReader ---------------------------------------------------------

  ListLocation Locate(WordId word) const override;
  ListLocation Locate(std::string_view word) const override;
  Result<std::vector<DocId>> GetPostings(WordId word) const override;
  Result<std::vector<DocId>> GetPostings(std::string_view word) const override;
  // One past the largest doc id ever buffered. Monotonic across Clear():
  // doc ids keep ascending globally, so the horizon survives a flush.
  DocId next_doc_id() const override { return next_doc_id_; }
  void ForEachWord(const std::function<void(WordId)>& fn) const override;

 private:
  const text::Tokenizer* tokenizer_;
  text::Vocabulary* vocabulary_;
  std::unordered_map<WordId, std::vector<DocId>> lists_;
  size_t documents_ = 0;
  uint64_t postings_ = 0;
  DocId next_doc_id_ = 0;
};

}  // namespace duplex::core

#endif  // DUPLEX_CORE_MEMORY_INDEX_H_

#ifndef DUPLEX_CORE_MEMORY_INDEX_H_
#define DUPLEX_CORE_MEMORY_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "text/tokenizer.h"
#include "text/vocabulary.h"
#include "util/types.h"

namespace duplex::core {

// The in-memory inverted index over documents that have arrived but not
// yet been flushed to disk. The paper's introduction requires exactly
// this: updates are batched, and "to maintain access to the batch, it can
// be searched simultaneously with the larger index". InvertedIndex merges
// these postings into query results until FlushDocuments() drains them.
class MemoryIndex {
 public:
  MemoryIndex(const text::Tokenizer* tokenizer,
              text::Vocabulary* vocabulary)
      : tokenizer_(tokenizer), vocabulary_(vocabulary) {}

  MemoryIndex(const MemoryIndex&) = delete;
  MemoryIndex& operator=(const MemoryIndex&) = delete;

  // Tokenizes `text` and adds its words under `doc`. Doc ids must arrive
  // in ascending order.
  void AddDocument(DocId doc, const std::string& text);

  // Postings buffered for `word`; nullptr when none.
  const std::vector<DocId>* Find(WordId word) const;

  size_t document_count() const { return documents_; }
  size_t distinct_words() const { return lists_.size(); }
  uint64_t total_postings() const { return postings_; }
  bool empty() const { return documents_ == 0; }

  void Clear();

  const std::unordered_map<WordId, std::vector<DocId>>& lists() const {
    return lists_;
  }

 private:
  const text::Tokenizer* tokenizer_;
  text::Vocabulary* vocabulary_;
  std::unordered_map<WordId, std::vector<DocId>> lists_;
  size_t documents_ = 0;
  uint64_t postings_ = 0;
};

}  // namespace duplex::core

#endif  // DUPLEX_CORE_MEMORY_INDEX_H_

// duplexctl — command-line front end for the duplex index: build an index
// from text files, persist it as a snapshot, and query it later.
//
//   duplexctl build <prefix> <file-or-dir>...   index documents, snapshot
//   duplexctl query <prefix> "<boolean query>"  query a snapshot
//   duplexctl stats <prefix>                    snapshot statistics
//   duplexctl scrub <prefix>                    verify checksums, repair
//   duplexctl scrub-demo                        seeded corruption + scrub
//   duplexctl compact <prefix>                  defragment long lists
//   duplexctl compact-demo                      fragmentation + compaction
//   duplexctl checkpoint <prefix>               snapshot -> durable checkpoint
//   duplexctl recover-demo                      crash + fast-restart drill
//   duplexctl metrics [out-dir]                 observed workload -> Prometheus
//   duplexctl trace [out-dir]                   observed workload -> Chrome JSON
//   duplexctl serve <prefix> <port>             serve a snapshot over TCP
//   duplexctl net-ping <host> <port>            round-trip one ping frame
//   duplexctl net-query <host> <port> "<q>"     boolean query over TCP
//   duplexctl net-stats <host> <port>           server stats + metrics JSON
//   duplexctl net-submit <host> <port> <file>.. submit documents over TCP
//   duplexctl demo                              self-contained demo (default)
//
// Global flags (before the command): --cache-blocks <n> puts a buffer
// pool of n frames in front of the index's disks; --cache-mode
// write-through|write-back picks when dirty frames reach them;
// --fault-seed <n> seeds the deterministic fault schedule used by
// scrub-demo (and enables device checksums for build/query/scrub).
//
// Each regular file becomes one document.
#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_log.h"
#include "core/checkpoint.h"
#include "core/concurrent_index.h"
#include "core/directory.h"
#include "core/inverted_index.h"
#include "core/long_list_store.h"
#include "core/scrub.h"
#include "core/snapshot.h"
#include "ir/query_executor.h"
#include "ir/query_workload.h"
#include "net/admin_server.h"
#include "net/client.h"
#include "net/server.h"
#include "net/service.h"
#include "sim/observability.h"
#include "storage/buffer_pool.h"
#include "text/batch.h"
#include "util/metrics.h"
#include "util/random.h"

namespace {

namespace fs = std::filesystem;
using namespace duplex;

storage::BufferPoolOptions g_cache;
uint64_t g_fault_seed = 1;

core::IndexOptions DefaultOptions() {
  core::IndexOptions options;
  options.buckets.num_buckets = 1024;
  options.buckets.bucket_capacity = 512;
  options.policy = core::Policy::RecommendedUpdateOptimized();
  options.block_postings = 128;
  options.disks.num_disks = 2;
  options.disks.blocks_per_disk = 1 << 20;
  // Always carry per-block checksums so `scrub` has a claim to verify and
  // a read of a rotten block fails typed instead of returning garbage.
  options.disks.checksums = true;
  options.materialize = true;
  options.bucket_grow_threshold = 0.85;
  options.cache = g_cache;
  return options;
}

int Build(const std::string& prefix,
          const std::vector<std::string>& inputs) {
  std::vector<fs::path> files;
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(input)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else if (fs::is_regular_file(input, ec)) {
      files.emplace_back(input);
    } else {
      std::cerr << "skipping " << input << " (not a file or directory)\n";
    }
  }
  if (files.empty()) {
    std::cerr << "no input files\n";
    return 1;
  }
  std::sort(files.begin(), files.end());

  core::InvertedIndex index(DefaultOptions());
  size_t indexed = 0;
  for (const fs::path& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "cannot read " << file << ", skipping\n";
      continue;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const DocId doc = index.AddDocument(text.str());
    std::cout << "doc " << doc << " <- " << file.string() << "\n";
    ++indexed;
    // Batch every 64 documents, like the paper batches daily updates.
    if (index.buffered_documents() >= 64) {
      if (Status s = index.FlushDocuments(); !s.ok()) {
        std::cerr << "flush failed: " << s << "\n";
        return 1;
      }
    }
  }
  if (Status s = index.FlushDocuments(); !s.ok()) {
    std::cerr << "flush failed: " << s << "\n";
    return 1;
  }
  if (Status s = core::Snapshot::Write(index, prefix); !s.ok()) {
    std::cerr << "snapshot failed: " << s << "\n";
    return 1;
  }
  const core::IndexStats stats = index.Stats();
  std::cout << "indexed " << indexed << " documents, "
            << stats.total_postings << " postings ("
            << stats.bucket_words << " bucket words, " << stats.long_words
            << " long words) -> " << prefix << ".postings/.dict\n";
  return 0;
}

duplex::Result<std::unique_ptr<core::InvertedIndex>> LoadIndex(
    const std::string& prefix) {
  auto index = std::make_unique<core::InvertedIndex>(DefaultOptions());
  DUPLEX_RETURN_IF_ERROR(core::Snapshot::Load(prefix, index.get()));
  return index;
}

int Query(const std::string& prefix, const std::string& query) {
  Result<std::unique_ptr<core::InvertedIndex>> index = LoadIndex(prefix);
  if (!index.ok()) {
    std::cerr << "cannot load snapshot: " << index.status() << "\n";
    return 1;
  }
  Result<ir::QueryResult> result =
      ir::QueryExecutor(**index).EvaluateBoolean(query);
  if (!result.ok()) {
    std::cerr << "query error: " << result.status() << "\n";
    return 1;
  }
  std::cout << result->docs.size() << " matching documents ("
            << result->read_ops << " list reads";
  if (g_cache.enabled()) {
    std::cout << ", " << result->cached_read_ops << " cache-resident";
  }
  std::cout << "):";
  for (const DocId d : result->docs) std::cout << " " << d;
  std::cout << "\n";
  return 0;
}

int Stats(const std::string& prefix) {
  Result<std::unique_ptr<core::SnapshotReader>> reader =
      core::SnapshotReader::Open(prefix);
  if (!reader.ok()) {
    std::cerr << "cannot open snapshot: " << reader.status() << "\n";
    return 1;
  }
  std::cout << "snapshot " << prefix << ": " << (*reader)->word_count()
            << " words, "
            << ((*reader)->materialized() ? "materialized"
                                          : "count-only")
            << "\n";
  Result<std::unique_ptr<core::InvertedIndex>> index = LoadIndex(prefix);
  if (index.ok()) {
    const core::IndexStats s = (*index)->Stats();
    std::cout << "  postings " << s.total_postings << ", bucket words "
              << s.bucket_words << ", long words " << s.long_words
              << ", long-list utilization " << s.long_utilization << "\n";
  }
  return 0;
}

int Scrub(const std::string& prefix) {
  Result<std::unique_ptr<core::InvertedIndex>> index = LoadIndex(prefix);
  if (!index.ok()) {
    std::cerr << "cannot load snapshot: " << index.status() << "\n";
    return 1;
  }
  std::unique_ptr<core::BatchLog> wal;
  if (fs::exists(prefix + ".wal")) {
    Result<std::unique_ptr<core::BatchLog>> opened =
        core::BatchLog::Open(prefix + ".wal");
    if (!opened.ok()) {
      std::cerr << "cannot open WAL: " << opened.status() << "\n";
      return 1;
    }
    wal = std::move(*opened);
  }
  Result<core::ScrubReport> report =
      core::ScrubIndex(index->get(), wal.get());
  if (!report.ok()) {
    std::cerr << "scrub failed: " << report.status() << "\n";
    return 1;
  }
  std::cout << report->ToString() << "\n";
  if (Status s = (*index)->VerifyIntegrity(); !s.ok()) {
    std::cerr << "structural check failed: " << s << "\n";
    return 1;
  }
  std::cout << "structural check OK\n";
  return report->quarantined.empty() ? 0 : 1;
}

// Long-list fragmentation summary printed by `compact`/`compact-demo`.
struct FragReport {
  uint64_t long_lists = 0;
  uint64_t chunks = 0;
  uint64_t blocks = 0;
  uint64_t postings = 0;
  double utilization = 0.0;
};

FragReport Fragmentation(const core::InvertedIndex& index) {
  FragReport r;
  const uint64_t bp = index.options().block_postings;
  for (const auto& [word, list] : index.long_list_store().directory().lists()) {
    ++r.long_lists;
    r.chunks += list.chunks.size();
    r.postings += list.total_postings;
    for (const core::ChunkRef& chunk : list.chunks) {
      r.blocks += chunk.range.length;
    }
  }
  if (r.blocks > 0) {
    r.utilization = static_cast<double>(r.postings) /
                    static_cast<double>(r.blocks * bp);
  }
  return r;
}

void PrintFragReport(const char* label, const FragReport& r) {
  std::cout << label << ": " << r.long_lists << " long lists, " << r.chunks
            << " chunks, " << r.blocks << " blocks, utilization "
            << r.utilization << "\n";
}

// `duplexctl compact <prefix>`: load the snapshot, run compaction rounds
// until no candidate remains, and write the defragmented index back.
int Compact(const std::string& prefix) {
  Result<std::unique_ptr<core::InvertedIndex>> index = LoadIndex(prefix);
  if (!index.ok()) {
    std::cerr << "cannot load snapshot: " << index.status() << "\n";
    return 1;
  }
  PrintFragReport("before", Fragmentation(**index));
  core::CompactionStats total;
  while (true) {
    Result<core::CompactionStats> round = (*index)->CompactOnce();
    if (!round.ok()) {
      std::cerr << "compaction failed: " << round.status() << "\n";
      return 1;
    }
    total.Merge(*round);
    if (!round->more_pending || round->lists_compacted == 0) break;
  }
  PrintFragReport("after", Fragmentation(**index));
  std::cout << "compacted " << total.lists_compacted << " lists in "
            << total.rounds << " rounds: " << total.chunks_before << " -> "
            << total.chunks_after << " chunks, reclaimed "
            << total.blocks_reclaimed() << " blocks ("
            << total.read_ops << " reads, " << total.write_ops
            << " writes)\n";
  if (Status s = (*index)->VerifyIntegrity(); !s.ok()) {
    std::cerr << "post-compaction integrity check failed: " << s << "\n";
    return 1;
  }
  if (Status s = core::Snapshot::Write(**index, prefix); !s.ok()) {
    std::cerr << "snapshot failed: " << s << "\n";
    return 1;
  }
  std::cout << "snapshot rewritten -> " << prefix << ".postings/.dict\n";
  return 0;
}

// Self-contained fragmentation drill: grow long lists chunk by chunk over
// many small batches (Style=new + proportional over-allocation, the
// worst-case fragmenter), compact, and prove postings are untouched.
int CompactDemo() {
  core::IndexOptions options = DefaultOptions();
  options.buckets.num_buckets = 64;
  options.buckets.bucket_capacity = 64;
  // New-style chunks with 2x proportional reserve: lists accrete a chunk
  // whenever the in-place tail fills, and every chunk carries dead
  // reserve — both fragmentation axes at once.
  options.policy = core::Policy::NewZ(core::AllocStrategy::kProportional, 2);
  options.block_postings = 16;
  options.disks.blocks_per_disk = 1 << 18;
  options.disks.block_size_bytes = 128;

  core::InvertedIndex index(options);
  core::InvertedIndex reference(options);
  constexpr int kWords = 48;
  Rng gen(11);
  DocId next_doc = 0;
  for (int b = 0; b < 24; ++b) {
    text::InvertedBatch batch;
    std::vector<std::vector<DocId>> lists(kWords);
    for (int d = 0; d < 30; ++d) {
      const DocId doc = next_doc++;
      for (int w = 0; w < kWords; ++w) {
        if (gen.Uniform(1 + static_cast<uint64_t>(w) / 6) == 0) {
          lists[w].push_back(doc);
        }
      }
    }
    for (int w = 0; w < kWords; ++w) {
      if (!lists[w].empty()) {
        batch.entries.push_back({static_cast<WordId>(w), lists[w]});
      }
    }
    if (Status s = index.ApplyInvertedBatch(batch); !s.ok()) {
      std::cerr << "apply failed: " << s << "\n";
      return 1;
    }
    if (Status s = reference.ApplyInvertedBatch(batch); !s.ok()) {
      std::cerr << "reference apply failed: " << s << "\n";
      return 1;
    }
  }

  const FragReport before = Fragmentation(index);
  PrintFragReport("before", before);
  core::CompactionStats total;
  while (true) {
    Result<core::CompactionStats> round = index.CompactOnce();
    if (!round.ok()) {
      std::cerr << "compaction failed: " << round.status() << "\n";
      return 1;
    }
    total.Merge(*round);
    if (!round->more_pending || round->lists_compacted == 0) break;
  }
  const FragReport after = Fragmentation(index);
  PrintFragReport("after", after);
  std::cout << "compacted " << total.lists_compacted << " lists, reclaimed "
            << total.blocks_reclaimed() << " blocks\n";
  if (after.utilization <= before.utilization) {
    std::cerr << "compaction did not improve utilization\n";
    return 1;
  }
  if (Status s = index.VerifyIntegrity(); !s.ok()) {
    std::cerr << "integrity check failed: " << s << "\n";
    return 1;
  }
  for (WordId w = 0; w < kWords; ++w) {
    const Result<std::vector<DocId>> expect = reference.GetPostings(w);
    const Result<std::vector<DocId>> got = index.GetPostings(w);
    if (expect.ok() != got.ok() || (expect.ok() && *expect != *got)) {
      std::cerr << "postings mismatch after compaction (word " << w << ")\n";
      return 1;
    }
  }
  std::cout << "verified: all postings identical to the uncompacted "
               "reference\n";
  return 0;
}

// Seeded end-to-end corruption drill: build a small materialized index
// through the WAL commit protocol, flip bits in live long-list blocks
// below the checksum layer (what a rotting platter does), then prove the
// checksum layer detects every flip, queries fail typed instead of
// returning garbage, and a WAL-repair scrub restores the exact index.
int ScrubDemo() {
  core::IndexOptions options = DefaultOptions();
  options.buckets.num_buckets = 32;
  options.buckets.bucket_capacity = 128;
  options.policy = core::Policy::WholeZ();
  options.block_postings = 16;
  options.disks.blocks_per_disk = 1 << 18;
  options.disks.block_size_bytes = 128;

  const std::string wal_path =
      (fs::temp_directory_path() / "duplexctl_scrub_demo.wal").string();
  std::remove(wal_path.c_str());
  Result<std::unique_ptr<core::BatchLog>> log =
      core::BatchLog::Open(wal_path);
  if (!log.ok()) {
    std::cerr << "cannot open WAL: " << log.status() << "\n";
    return 1;
  }
  (*log)->set_fsync(false);

  // Deterministic multi-batch workload, same shape as the recovery tests.
  core::InvertedIndex index(options);
  core::InvertedIndex reference(options);
  constexpr int kWords = 60;
  Rng gen(7);
  DocId next_doc = 0;
  for (int b = 0; b < 6; ++b) {
    text::InvertedBatch batch;
    std::vector<std::vector<DocId>> lists(kWords);
    for (int d = 0; d < 40; ++d) {
      const DocId doc = next_doc++;
      for (int w = 0; w < kWords; ++w) {
        if (gen.Uniform(1 + static_cast<uint64_t>(w) / 4) == 0) {
          lists[w].push_back(doc);
        }
      }
    }
    for (int w = 0; w < kWords; ++w) {
      if (!lists[w].empty()) {
        batch.entries.push_back({static_cast<WordId>(w), lists[w]});
      }
    }
    if (Status s = (*log)->ApplyLogged(&index, batch); !s.ok()) {
      std::cerr << "apply failed: " << s << "\n";
      return 1;
    }
    if (Status s = reference.ApplyInvertedBatch(batch); !s.ok()) {
      std::cerr << "reference apply failed: " << s << "\n";
      return 1;
    }
  }

  // Inject seeded bit flips below the checksum layer, one per chosen
  // chunk, across distinct live blocks.
  Rng rot(g_fault_seed);
  struct Flip {
    storage::DiskId disk;
    storage::BlockId block;
  };
  std::vector<Flip> flips;
  const auto& lists = index.long_list_store().directory().lists();
  std::vector<WordId> long_words;
  for (const auto& [word, list] : lists) long_words.push_back(word);
  std::sort(long_words.begin(), long_words.end());
  for (const WordId word : long_words) {
    if (flips.size() >= 6) break;
    const core::LongList& list = lists.at(word);
    for (const core::ChunkRef& chunk : list.chunks) {
      if (chunk.byte_length == 0) continue;
      const storage::BlockId block =
          chunk.range.start +
          rot.Uniform(1 + (chunk.byte_length - 1) /
                              options.disks.block_size_bytes);
      flips.push_back({chunk.range.disk, block});
      break;
    }
  }
  for (const Flip& f : flips) {
    storage::MemBlockDevice* dev = index.disks().base_device(f.disk);
    uint8_t byte = 0;
    const uint64_t offset =
        rot.Uniform(options.disks.block_size_bytes);
    (void)dev->Read(f.block, offset, &byte, 1);
    byte ^= uint8_t{1} << rot.Uniform(8);
    (void)dev->Write(f.block, offset, &byte, 1);
  }
  std::cout << "injected " << flips.size()
            << " bit flips (seed " << g_fault_seed << ")\n";

  // Every corrupted word must now fail typed — never return garbage.
  uint64_t typed_failures = 0;
  for (const WordId word : long_words) {
    Result<std::vector<DocId>> got = index.GetPostings(word);
    if (!got.ok()) {
      if (!got.status().IsCorruption()) {
        std::cerr << "expected Corruption, got: " << got.status() << "\n";
        return 1;
      }
      ++typed_failures;
    }
  }
  std::cout << "queries on damaged lists -> kCorruption (" << typed_failures
            << " words)\n";

  core::ScrubOptions scrub_options;
  Result<core::ScrubReport> report =
      core::ScrubIndex(&index, log->get(), scrub_options);
  if (!report.ok()) {
    std::cerr << "scrub failed: " << report.status() << "\n";
    return 1;
  }
  std::cout << report->ToString() << "\n";
  if (report->corrupt_blocks < flips.size()) {
    std::cerr << "scrub missed corruptions: found "
              << report->corrupt_blocks << " of " << flips.size() << "\n";
    return 1;
  }
  if (!report->quarantined.empty()) {
    std::cerr << "scrub could not repair every word from the WAL\n";
    return 1;
  }

  // After repair: clean scrub, identical postings to the reference.
  Result<core::ScrubReport> recheck = core::ScrubIndex(&index, log->get());
  if (!recheck.ok() || !recheck->clean()) {
    std::cerr << "post-repair scrub still dirty\n";
    return 1;
  }
  for (WordId w = 0; w < kWords; ++w) {
    const Result<std::vector<DocId>> expect = reference.GetPostings(w);
    const Result<std::vector<DocId>> got = index.GetPostings(w);
    if (expect.ok() != got.ok() || (expect.ok() && *expect != *got)) {
      std::cerr << "postings mismatch after repair (word " << w << ")\n";
      return 1;
    }
  }
  std::remove(wal_path.c_str());
  std::cout << "repair verified: all postings match the uncorrupted "
               "reference\n";
  return 0;
}

const char* RecoveryModeName(core::RecoveryMode mode) {
  switch (mode) {
    case core::RecoveryMode::kEmpty:
      return "empty";
    case core::RecoveryMode::kCheckpointTail:
      return "checkpoint+tail";
    case core::RecoveryMode::kFullRebuild:
      return "full-rebuild";
  }
  return "unknown";
}

// Serialize a snapshot-built index into a durable checkpoint at the same
// prefix: <prefix>.super (dual-slot superblock) + <prefix>.ckpt-<seq>
// (image). duplexd --checkpoint <prefix> then restarts from it without
// replaying any WAL history.
int CheckpointCmd(const std::string& prefix) {
  Result<std::unique_ptr<core::InvertedIndex>> index = LoadIndex(prefix);
  if (!index.ok()) {
    std::cerr << "cannot load snapshot: " << index.status() << "\n";
    return 1;
  }
  core::CheckpointOptions options;
  options.prefix = prefix;
  core::Checkpointer checkpointer(options);
  Result<core::CheckpointInfo> info =
      checkpointer.Checkpoint(**index, /*log=*/nullptr);
  if (!info.ok()) {
    std::cerr << "checkpoint failed: " << info.status() << "\n";
    return 1;
  }
  std::cout << "checkpoint " << info->install_seq << " installed: "
            << info->payload_path << " (" << info->payload_bytes
            << " bytes, WAL epoch " << info->wal_epoch << ")\n"
            << "superblock: " << checkpointer.superblock_path() << "\n";
  return 0;
}

// Self-contained crash + fast-restart drill: commit batches through the
// WAL, checkpoint mid-history (which truncates the covered prefix), commit
// more batches, then "crash" — drop every in-memory object — and recover a
// fresh index from the superblock. The recovered index must match an
// uncrashed reference list-for-list, and the replay must cover only the
// WAL tail past the checkpoint, not the whole history.
int RecoverDemo() {
  core::IndexOptions options = DefaultOptions();
  options.buckets.num_buckets = 64;
  options.buckets.bucket_capacity = 64;
  options.block_postings = 16;
  options.disks.blocks_per_disk = 1 << 18;
  options.disks.block_size_bytes = 128;

  const std::string dir =
      (fs::temp_directory_path() / "duplexctl_recover_demo").string();
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  if (ec) {
    std::cerr << "cannot create " << dir << ": " << ec.message() << "\n";
    return 1;
  }
  const std::string wal_path = dir + "/demo.wal";
  const std::string ckpt_prefix = dir + "/demo";

  core::InvertedIndex reference(options);
  constexpr int kWords = 48;
  constexpr int kBatches = 12;
  constexpr int kCheckpointAfter = 8;
  Rng gen(29);
  DocId next_doc = 0;
  core::RecoveryInfo recovered;
  {
    Result<std::unique_ptr<core::BatchLog>> log =
        core::BatchLog::Open(wal_path);
    if (!log.ok()) {
      std::cerr << "cannot open WAL: " << log.status() << "\n";
      return 1;
    }
    (*log)->set_fsync(false);
    core::InvertedIndex index(options);
    core::CheckpointOptions ckpt_options;
    ckpt_options.prefix = ckpt_prefix;
    core::Checkpointer checkpointer(ckpt_options);
    for (int b = 0; b < kBatches; ++b) {
      text::InvertedBatch batch;
      std::vector<std::vector<DocId>> lists(kWords);
      for (int d = 0; d < 30; ++d) {
        const DocId doc = next_doc++;
        for (int w = 0; w < kWords; ++w) {
          if (gen.Uniform(1 + static_cast<uint64_t>(w) / 6) == 0) {
            lists[w].push_back(doc);
          }
        }
      }
      for (int w = 0; w < kWords; ++w) {
        if (!lists[w].empty()) {
          batch.entries.push_back({static_cast<WordId>(w), lists[w]});
        }
      }
      if (Status s = (*log)->ApplyLogged(&index, batch); !s.ok()) {
        std::cerr << "apply failed: " << s << "\n";
        return 1;
      }
      if (Status s = reference.ApplyInvertedBatch(batch); !s.ok()) {
        std::cerr << "reference apply failed: " << s << "\n";
        return 1;
      }
      if (b + 1 == kCheckpointAfter) {
        Result<core::CheckpointInfo> info =
            checkpointer.Checkpoint(index, log->get());
        if (!info.ok()) {
          std::cerr << "checkpoint failed: " << info.status() << "\n";
          return 1;
        }
        std::cout << "checkpoint " << info->install_seq << " at WAL epoch "
                  << info->wal_epoch << " (" << info->payload_bytes
                  << " bytes); WAL truncated to the tail\n";
      }
    }
    // "Crash": everything in memory is dropped; only the WAL file, the
    // superblock, and the checkpoint image survive.
  }

  Result<std::unique_ptr<core::BatchLog>> log =
      core::BatchLog::Open(wal_path);
  if (!log.ok()) {
    std::cerr << "cannot reopen WAL: " << log.status() << "\n";
    return 1;
  }
  core::InvertedIndex index(options);
  core::CheckpointOptions ckpt_options;
  ckpt_options.prefix = ckpt_prefix;
  core::Checkpointer checkpointer(ckpt_options);
  Result<core::RecoveryInfo> info =
      checkpointer.Recover(&index, log->get());
  if (!info.ok()) {
    std::cerr << "recovery failed: " << info.status() << "\n";
    return 1;
  }
  recovered = *info;
  std::cout << "recovered (" << RecoveryModeName(recovered.mode) << "): "
            << recovered.batches_replayed << " WAL batches replayed"
            << " (checkpoint epoch " << recovered.checkpoint_epoch << ")\n";
  if (recovered.mode != core::RecoveryMode::kCheckpointTail) {
    std::cerr << "expected the checkpoint+tail fast path\n";
    return 1;
  }
  if (recovered.batches_replayed != kBatches - kCheckpointAfter) {
    std::cerr << "expected " << (kBatches - kCheckpointAfter)
              << " tail batches, replayed " << recovered.batches_replayed
              << "\n";
    return 1;
  }
  if (Status s = index.VerifyIntegrity(); !s.ok()) {
    std::cerr << "integrity check failed: " << s << "\n";
    return 1;
  }
  for (WordId w = 0; w < kWords; ++w) {
    const Result<std::vector<DocId>> expect = reference.GetPostings(w);
    const Result<std::vector<DocId>> got = index.GetPostings(w);
    if (expect.ok() != got.ok() || (expect.ok() && *expect != *got)) {
      std::cerr << "postings mismatch after recovery (word " << w << ")\n";
      return 1;
    }
  }
  fs::remove_all(dir, ec);
  std::cout << "verified: recovered index identical to the uncrashed "
               "reference\n";
  return 0;
}

// Deterministic built-in workload touching every instrumented layer, run
// under an ObservabilityScope by the `metrics` and `trace` subcommands.
// Phase 1 drives text documents into a materialized, cached, checksummed
// index sized so frequent words promote to long lists, then evaluates
// boolean queries twice (the second pass hits the buffer pool) and a
// cost-estimate sweep. Phase 2 commits WordId batches through the WAL and
// replays the log into a fresh index, covering the recovery path.
int RunObservedWorkload() {
  core::IndexOptions options = DefaultOptions();
  options.buckets.num_buckets = 128;
  options.buckets.bucket_capacity = 64;
  options.block_postings = 16;
  if (options.cache.capacity_blocks == 0) options.cache.capacity_blocks = 64;
  core::InvertedIndex index(options);

  static constexpr const char* kPool[] = {
      "alpha", "beta",  "gamma", "delta", "epsilon", "zeta",  "eta",
      "theta", "iota",  "kappa", "lambda", "mu",     "nu",    "xi",
      "omicron", "pi",  "rho",   "sigma", "tau",     "upsilon", "phi",
      "chi",   "psi",   "omega"};
  Rng rng(42);
  for (int d = 0; d < 96; ++d) {
    std::string text;
    for (int w = 0; w < 24; ++w) {
      text += kPool[rng.Uniform(std::size(kPool))];
      text += ' ';
    }
    index.AddDocument(text);
    if (index.buffered_documents() >= 32) {
      if (Status s = index.FlushDocuments(); !s.ok()) {
        std::cerr << "flush failed: " << s << "\n";
        return 1;
      }
    }
  }
  if (Status s = index.FlushDocuments(); !s.ok()) {
    std::cerr << "flush failed: " << s << "\n";
    return 1;
  }

  const std::vector<std::string> queries = {
      "alpha AND beta",          "gamma OR delta", "alpha AND NOT omega",
      "(pi OR rho) AND sigma",   "tau upsilon",    "kappa AND NOT lambda"};
  ir::QueryExecutor executor(index);
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::string& q : queries) {
      Result<ir::QueryResult> result = executor.EvaluateBoolean(q);
      if (!result.ok()) {
        std::cerr << "query error: " << result.status() << "\n";
        return 1;
      }
    }
  }
  ir::QueryWorkloadGenerator generator(index, 7);
  for (int i = 0; i < 16; ++i) {
    (void)generator.EstimateCost(generator.SampleBooleanTerms(4));
  }

  const std::string wal_path =
      (fs::temp_directory_path() / "duplexctl_observe.wal").string();
  std::remove(wal_path.c_str());
  Result<std::unique_ptr<core::BatchLog>> log =
      core::BatchLog::Open(wal_path);
  if (!log.ok()) {
    std::cerr << "cannot open WAL: " << log.status() << "\n";
    return 1;
  }
  core::IndexOptions wal_options = DefaultOptions();
  wal_options.buckets.num_buckets = 64;
  wal_options.buckets.bucket_capacity = 64;
  wal_options.block_postings = 16;
  core::InvertedIndex wal_index(wal_options);
  constexpr int kWords = 30;
  Rng gen(9);
  DocId next_doc = 0;
  for (int b = 0; b < 4; ++b) {
    text::InvertedBatch batch;
    std::vector<std::vector<DocId>> lists(kWords);
    for (int d = 0; d < 24; ++d) {
      const DocId doc = next_doc++;
      for (int w = 0; w < kWords; ++w) {
        if (gen.Uniform(1 + static_cast<uint64_t>(w) / 4) == 0) {
          lists[w].push_back(doc);
        }
      }
    }
    for (int w = 0; w < kWords; ++w) {
      if (!lists[w].empty()) {
        batch.entries.push_back({static_cast<WordId>(w), lists[w]});
      }
    }
    if (Status s = (*log)->ApplyLogged(&wal_index, batch); !s.ok()) {
      std::cerr << "logged apply failed: " << s << "\n";
      return 1;
    }
  }
  core::InvertedIndex replay_index(wal_options);
  if (Status s = (*log)->ReplayInto(&replay_index); !s.ok()) {
    std::cerr << "replay failed: " << s << "\n";
    return 1;
  }
  std::remove(wal_path.c_str());
  return 0;
}

// `duplexctl metrics` / `duplexctl trace`: run the built-in workload with
// a fresh registry + tracer installed and print the requested exposition
// on stdout (stdout carries nothing else, so it pipes straight into
// promtool / Perfetto). The three export files land in out-dir, default
// a fixed path under the system temp directory.
int Observe(bool want_trace, std::string out_dir) {
  if (out_dir.empty()) {
    out_dir = (fs::temp_directory_path() / "duplexctl_observe").string();
  }
  sim::ObservabilityScope scope(out_dir);
  if (int rc = RunObservedWorkload(); rc != 0) return rc;
  const std::string exposition = want_trace
                                     ? scope.tracer()->ExportChromeTrace()
                                     : scope.registry()->ExportPrometheus();
  std::cout << exposition;
  if (exposition.empty() || exposition.back() != '\n') std::cout << "\n";
  if (Status s = scope.Export(); !s.ok()) {
    std::cerr << "export failed: " << s << "\n";
    return 1;
  }
  std::cerr << "wrote metrics.prom, metrics.json, trace.json to " << out_dir
            << "\n";
  return 0;
}

// --- TCP service ------------------------------------------------------------

std::atomic<bool> g_shutdown{false};

void HandleShutdownSignal(int) { g_shutdown.store(true); }

// `duplexctl serve <prefix> <port>`: load the snapshot behind the
// reader-writer facade and serve it until SIGINT/SIGTERM. Shutdown is
// graceful: the server drains admitted requests, then Flush() folds any
// submitted documents back into the snapshot files.
int Serve(const std::string& prefix, uint16_t port) {
  MetricsRegistry registry;
  MetricsRegistry* previous = SetGlobalMetrics(&registry);

  core::ConcurrentIndex index(DefaultOptions());
  const Status loaded = index.WithWriteLock([&](core::InvertedIndex& idx) {
    return core::Snapshot::Load(prefix, &idx);
  });
  if (!loaded.ok()) {
    std::cerr << "cannot load snapshot: " << loaded << "\n";
    SetGlobalMetrics(previous);
    return 1;
  }

  net::ConcurrentIndexService service(&index, prefix);
  net::ServerOptions options;
  options.port = port;
  net::Server server(&service, options);
  if (Status s = server.Start(); !s.ok()) {
    std::cerr << "cannot start server: " << s << "\n";
    SetGlobalMetrics(previous);
    return 1;
  }
  // The smoke test parses this line for the ephemeral port; keep the
  // format stable and flush before blocking.
  std::cout << "duplexctl serving " << prefix << " on port " << server.port()
            << std::endl;

  g_shutdown.store(false);
  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGTERM, HandleShutdownSignal);
  while (!g_shutdown.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  std::cout << "shutting down: draining requests\n";
  server.Stop();
  if (Status s = service.Flush(); !s.ok()) {
    std::cerr << "flush on shutdown failed: " << s << "\n";
    SetGlobalMetrics(previous);
    return 1;
  }
  std::cout << "served " << server.requests_handled() << " requests ("
            << server.requests_rejected() << " rejected), snapshot "
            << "rewritten -> " << prefix << ".postings/.dict\n";
  SetGlobalMetrics(previous);
  return 0;
}

int NetPing(const std::string& host, uint16_t port) {
  Result<net::Client> client = net::Client::Connect(host, port);
  if (!client.ok()) {
    std::cerr << "cannot connect: " << client.status() << "\n";
    return 1;
  }
  if (Status s = client->Ping(); !s.ok()) {
    std::cerr << "ping failed: " << s << "\n";
    return 1;
  }
  std::cout << "pong from " << host << ":" << port << "\n";
  return 0;
}

int NetQuery(const std::string& host, uint16_t port,
             const std::string& query) {
  Result<net::Client> client = net::Client::Connect(host, port);
  if (!client.ok()) {
    std::cerr << "cannot connect: " << client.status() << "\n";
    return 1;
  }
  Result<ir::QueryResult> result = client->Boolean(query);
  if (!result.ok()) {
    std::cerr << "query error: " << result.status() << "\n";
    return 1;
  }
  std::cout << result->docs.size() << " matching documents ("
            << result->read_ops << " list reads):";
  for (const DocId d : result->docs) std::cout << " " << d;
  std::cout << "\n";
  return 0;
}

int NetStats(const std::string& host, uint16_t port) {
  Result<net::Client> client = net::Client::Connect(host, port);
  if (!client.ok()) {
    std::cerr << "cannot connect: " << client.status() << "\n";
    return 1;
  }
  Result<std::string> stats = client->StatsJson();
  if (!stats.ok()) {
    std::cerr << "stats failed: " << stats.status() << "\n";
    return 1;
  }
  std::cout << *stats << "\n";
  return 0;
}

// Admin-plane fetch: GETs one endpoint from a running duplexd
// --admin-port and prints the body. Non-200 still prints (the /readyz
// 503 body IS the answer) but exits nonzero so scripts can branch.
int AdminGet(const std::string& host, uint16_t port,
             const std::string& path) {
  Result<net::HttpResponse> resp = net::HttpGet(host, port, path);
  if (!resp.ok()) {
    std::cerr << "cannot fetch " << path << ": " << resp.status() << "\n";
    return 1;
  }
  std::cout << resp->body;
  if (!resp->body.empty() && resp->body.back() != '\n') std::cout << "\n";
  return resp->status_code == 200 ? 0 : 1;
}

int NetSubmit(const std::string& host, uint16_t port,
              const std::vector<std::string>& inputs) {
  std::vector<std::string> documents;
  for (const std::string& input : inputs) {
    std::ifstream in(input);
    if (!in) {
      std::cerr << "cannot read " << input << ", skipping\n";
      continue;
    }
    std::ostringstream text;
    text << in.rdbuf();
    documents.push_back(text.str());
  }
  if (documents.empty()) {
    std::cerr << "no readable input files\n";
    return 1;
  }
  Result<net::Client> client = net::Client::Connect(host, port);
  if (!client.ok()) {
    std::cerr << "cannot connect: " << client.status() << "\n";
    return 1;
  }
  Result<net::SubmitDocumentsResponse> resp = client->Submit(documents);
  if (!resp.ok()) {
    std::cerr << "submit failed: " << resp.status() << "\n";
    return 1;
  }
  std::cout << "accepted " << resp->accepted << " documents starting at doc "
            << resp->first_doc;
  if (resp->wal_batch_id != 0) {
    std::cout << " (WAL batch " << resp->wal_batch_id << ")";
  }
  std::cout << "\n";
  return 0;
}

int NetSubmitLive(const std::string& host, uint16_t port,
                  const std::vector<std::string>& inputs) {
  // Inputs are files, except a literal "--text" prefix switches the rest
  // of the arguments to inline document bodies (handy for quickstarts:
  // no temp files needed to watch a document become searchable).
  std::vector<std::string> documents;
  bool inline_text = false;
  for (const std::string& input : inputs) {
    if (!inline_text && input == "--text") {
      inline_text = true;
      continue;
    }
    if (inline_text) {
      documents.push_back(input);
      continue;
    }
    std::ifstream in(input);
    if (!in) {
      std::cerr << "cannot read " << input << ", skipping\n";
      continue;
    }
    std::ostringstream text;
    text << in.rdbuf();
    documents.push_back(text.str());
  }
  if (documents.empty()) {
    std::cerr << "no readable input documents\n";
    return 1;
  }
  Result<net::Client> client = net::Client::Connect(host, port);
  if (!client.ok()) {
    std::cerr << "cannot connect: " << client.status() << "\n";
    return 1;
  }
  Result<net::SubmitLiveResponse> resp = client->SubmitLive(documents);
  if (!resp.ok()) {
    std::cerr << "submit-live failed: " << resp.status() << "\n";
    return 1;
  }
  std::cout << "accepted " << resp->accepted
            << " documents starting at doc " << resp->first_doc
            << ", visible now (delta epoch " << resp->epoch << ", "
            << resp->delta_docs << " docs awaiting drain)";
  if (resp->wal_batch_id != 0) {
    std::cout << " (WAL batch " << resp->wal_batch_id << ")";
  }
  std::cout << "\n";
  return 0;
}

int Demo() {
  const std::string dir = fs::temp_directory_path() / "duplexctl_demo";
  fs::create_directories(dir);
  const std::vector<std::pair<std::string, std::string>> docs = {
      {"a.txt", "the quick brown fox jumps over the lazy dog"},
      {"b.txt", "inverted lists map words to documents"},
      {"c.txt", "the dog reads the inverted index"},
  };
  for (const auto& [name, text] : docs) {
    std::ofstream(dir + "/" + name) << text;
  }
  // Keep the snapshot outside the indexed directory so re-running the
  // demo does not index the snapshot files themselves.
  const std::string prefix = dir + "_snapshot";
  std::cout << "== demo: build ==\n";
  if (int rc = Build(prefix, {dir}); rc != 0) return rc;
  std::cout << "\n== demo: query 'dog AND NOT fox' ==\n";
  if (int rc = Query(prefix, "dog AND NOT fox"); rc != 0) return rc;
  std::cout << "\n== demo: stats ==\n";
  return Stats(prefix);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  // Peel global flags off the front, in any order.
  while (args.size() >= 2 && (args[0].rfind("--cache-", 0) == 0 ||
                              args[0] == "--fault-seed")) {
    if (args[0] == "--cache-blocks") {
      g_cache.capacity_blocks = std::strtoull(args[1].c_str(), nullptr, 10);
    } else if (args[0] == "--fault-seed") {
      g_fault_seed = std::strtoull(args[1].c_str(), nullptr, 10);
    } else if (args[0] == "--cache-mode") {
      duplex::Result<storage::CacheMode> mode =
          storage::ParseCacheMode(args[1]);
      if (!mode.ok()) {
        std::cerr << "unknown cache mode '" << args[1]
                  << "' (write-through|write-back)\n";
        return 2;
      }
      g_cache.mode = *mode;
    } else {
      std::cerr << "unknown flag " << args[0] << "\n";
      return 2;
    }
    args.erase(args.begin(), args.begin() + 2);
  }
  if (args.empty() || args[0] == "demo") return Demo();
  if (args[0] == "build" && args.size() >= 3) {
    return Build(args[1], {args.begin() + 2, args.end()});
  }
  if (args[0] == "query" && args.size() == 3) {
    return Query(args[1], args[2]);
  }
  if (args[0] == "stats" && args.size() == 2) return Stats(args[1]);
  if (args[0] == "scrub" && args.size() == 2) return Scrub(args[1]);
  if (args[0] == "scrub-demo" && args.size() == 1) return ScrubDemo();
  if (args[0] == "compact" && args.size() == 2) return Compact(args[1]);
  if (args[0] == "compact-demo" && args.size() == 1) return CompactDemo();
  if (args[0] == "checkpoint" && args.size() == 2) {
    return CheckpointCmd(args[1]);
  }
  if (args[0] == "recover-demo" && args.size() == 1) return RecoverDemo();
  if (args[0] == "serve" && args.size() == 3) {
    return Serve(args[1],
                 static_cast<uint16_t>(std::strtoul(args[2].c_str(),
                                                    nullptr, 10)));
  }
  if (args[0] == "net-ping" && args.size() == 3) {
    return NetPing(args[1], static_cast<uint16_t>(
                                std::strtoul(args[2].c_str(), nullptr, 10)));
  }
  if (args[0] == "net-query" && args.size() == 4) {
    return NetQuery(args[1],
                    static_cast<uint16_t>(
                        std::strtoul(args[2].c_str(), nullptr, 10)),
                    args[3]);
  }
  if (args[0] == "net-stats" && args.size() == 3) {
    return NetStats(args[1], static_cast<uint16_t>(
                                 std::strtoul(args[2].c_str(), nullptr, 10)));
  }
  if (args[0] == "net-submit" && args.size() >= 4) {
    return NetSubmit(args[1],
                     static_cast<uint16_t>(
                         std::strtoul(args[2].c_str(), nullptr, 10)),
                     {args.begin() + 3, args.end()});
  }
  if (args[0] == "net-submit-live" && args.size() >= 4) {
    return NetSubmitLive(args[1],
                         static_cast<uint16_t>(
                             std::strtoul(args[2].c_str(), nullptr, 10)),
                         {args.begin() + 3, args.end()});
  }
  if (args[0] == "net-metrics" && args.size() == 3) {
    return AdminGet(args[1],
                    static_cast<uint16_t>(
                        std::strtoul(args[2].c_str(), nullptr, 10)),
                    "/metrics");
  }
  if (args[0] == "net-status" && args.size() == 3) {
    return AdminGet(args[1],
                    static_cast<uint16_t>(
                        std::strtoul(args[2].c_str(), nullptr, 10)),
                    "/statusz");
  }
  if (args[0] == "net-ready" && args.size() == 3) {
    return AdminGet(args[1],
                    static_cast<uint16_t>(
                        std::strtoul(args[2].c_str(), nullptr, 10)),
                    "/readyz");
  }
  if (args[0] == "net-health" && args.size() == 3) {
    return AdminGet(args[1],
                    static_cast<uint16_t>(
                        std::strtoul(args[2].c_str(), nullptr, 10)),
                    "/healthz");
  }
  if (args[0] == "net-slow" && args.size() == 3) {
    return AdminGet(args[1],
                    static_cast<uint16_t>(
                        std::strtoul(args[2].c_str(), nullptr, 10)),
                    "/slowz");
  }
  if (args[0] == "metrics" && args.size() <= 2) {
    return Observe(/*want_trace=*/false, args.size() == 2 ? args[1] : "");
  }
  if (args[0] == "trace" && args.size() <= 2) {
    return Observe(/*want_trace=*/true, args.size() == 2 ? args[1] : "");
  }
  std::cerr << "usage: duplexctl [--cache-blocks <n>] [--cache-mode "
               "write-through|write-back] [--fault-seed <n>]\n"
               "                 build <prefix> <file-or-dir>...\n"
               "       duplexctl query <prefix> \"<boolean query>\"\n"
               "       duplexctl stats <prefix>\n"
               "       duplexctl scrub <prefix>\n"
               "       duplexctl scrub-demo\n"
               "       duplexctl compact <prefix>\n"
               "       duplexctl compact-demo\n"
               "       duplexctl checkpoint <prefix>\n"
               "       duplexctl recover-demo\n"
               "       duplexctl metrics [out-dir]\n"
               "       duplexctl trace [out-dir]\n"
               "       duplexctl serve <prefix> <port>\n"
               "       duplexctl net-ping <host> <port>\n"
               "       duplexctl net-query <host> <port> \"<boolean query>\"\n"
               "       duplexctl net-stats <host> <port>\n"
               "       duplexctl net-submit <host> <port> <file>...\n"
               "       duplexctl net-submit-live <host> <port> "
               "<file>... | --text <doc>...\n"
               "       duplexctl net-metrics <host> <admin-port>\n"
               "       duplexctl net-status <host> <admin-port>\n"
               "       duplexctl net-ready <host> <admin-port>\n"
               "       duplexctl net-health <host> <admin-port>\n"
               "       duplexctl net-slow <host> <admin-port>\n"
               "       duplexctl demo\n";
  return 2;
}

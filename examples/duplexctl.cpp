// duplexctl — command-line front end for the duplex index: build an index
// from text files, persist it as a snapshot, and query it later.
//
//   duplexctl build <prefix> <file-or-dir>...   index documents, snapshot
//   duplexctl query <prefix> "<boolean query>"  query a snapshot
//   duplexctl stats <prefix>                    snapshot statistics
//   duplexctl demo                              self-contained demo (default)
//
// Global flags (before the command): --cache-blocks <n> puts a buffer
// pool of n frames in front of the index's disks; --cache-mode
// write-through|write-back picks when dirty frames reach them.
//
// Each regular file becomes one document.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/inverted_index.h"
#include "core/snapshot.h"
#include "ir/query_eval.h"
#include "storage/buffer_pool.h"

namespace {

namespace fs = std::filesystem;
using namespace duplex;

storage::BufferPoolOptions g_cache;

core::IndexOptions DefaultOptions() {
  core::IndexOptions options;
  options.buckets.num_buckets = 1024;
  options.buckets.bucket_capacity = 512;
  options.policy = core::Policy::RecommendedUpdateOptimized();
  options.block_postings = 128;
  options.disks.num_disks = 2;
  options.disks.blocks_per_disk = 1 << 20;
  options.materialize = true;
  options.bucket_grow_threshold = 0.85;
  options.cache = g_cache;
  return options;
}

int Build(const std::string& prefix,
          const std::vector<std::string>& inputs) {
  std::vector<fs::path> files;
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(input)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else if (fs::is_regular_file(input, ec)) {
      files.emplace_back(input);
    } else {
      std::cerr << "skipping " << input << " (not a file or directory)\n";
    }
  }
  if (files.empty()) {
    std::cerr << "no input files\n";
    return 1;
  }
  std::sort(files.begin(), files.end());

  core::InvertedIndex index(DefaultOptions());
  size_t indexed = 0;
  for (const fs::path& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "cannot read " << file << ", skipping\n";
      continue;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const DocId doc = index.AddDocument(text.str());
    std::cout << "doc " << doc << " <- " << file.string() << "\n";
    ++indexed;
    // Batch every 64 documents, like the paper batches daily updates.
    if (index.buffered_documents() >= 64) {
      if (Status s = index.FlushDocuments(); !s.ok()) {
        std::cerr << "flush failed: " << s << "\n";
        return 1;
      }
    }
  }
  if (Status s = index.FlushDocuments(); !s.ok()) {
    std::cerr << "flush failed: " << s << "\n";
    return 1;
  }
  if (Status s = core::Snapshot::Write(index, prefix); !s.ok()) {
    std::cerr << "snapshot failed: " << s << "\n";
    return 1;
  }
  const core::IndexStats stats = index.Stats();
  std::cout << "indexed " << indexed << " documents, "
            << stats.total_postings << " postings ("
            << stats.bucket_words << " bucket words, " << stats.long_words
            << " long words) -> " << prefix << ".postings/.dict\n";
  return 0;
}

duplex::Result<std::unique_ptr<core::InvertedIndex>> LoadIndex(
    const std::string& prefix) {
  auto index = std::make_unique<core::InvertedIndex>(DefaultOptions());
  DUPLEX_RETURN_IF_ERROR(core::Snapshot::Load(prefix, index.get()));
  return index;
}

int Query(const std::string& prefix, const std::string& query) {
  Result<std::unique_ptr<core::InvertedIndex>> index = LoadIndex(prefix);
  if (!index.ok()) {
    std::cerr << "cannot load snapshot: " << index.status() << "\n";
    return 1;
  }
  Result<ir::QueryResult> result = ir::EvaluateBoolean(**index, query);
  if (!result.ok()) {
    std::cerr << "query error: " << result.status() << "\n";
    return 1;
  }
  std::cout << result->docs.size() << " matching documents ("
            << result->read_ops << " list reads";
  if (g_cache.enabled()) {
    std::cout << ", " << result->cached_read_ops << " cache-resident";
  }
  std::cout << "):";
  for (const DocId d : result->docs) std::cout << " " << d;
  std::cout << "\n";
  return 0;
}

int Stats(const std::string& prefix) {
  Result<std::unique_ptr<core::SnapshotReader>> reader =
      core::SnapshotReader::Open(prefix);
  if (!reader.ok()) {
    std::cerr << "cannot open snapshot: " << reader.status() << "\n";
    return 1;
  }
  std::cout << "snapshot " << prefix << ": " << (*reader)->word_count()
            << " words, "
            << ((*reader)->materialized() ? "materialized"
                                          : "count-only")
            << "\n";
  Result<std::unique_ptr<core::InvertedIndex>> index = LoadIndex(prefix);
  if (index.ok()) {
    const core::IndexStats s = (*index)->Stats();
    std::cout << "  postings " << s.total_postings << ", bucket words "
              << s.bucket_words << ", long words " << s.long_words
              << ", long-list utilization " << s.long_utilization << "\n";
  }
  return 0;
}

int Demo() {
  const std::string dir = fs::temp_directory_path() / "duplexctl_demo";
  fs::create_directories(dir);
  const std::vector<std::pair<std::string, std::string>> docs = {
      {"a.txt", "the quick brown fox jumps over the lazy dog"},
      {"b.txt", "inverted lists map words to documents"},
      {"c.txt", "the dog reads the inverted index"},
  };
  for (const auto& [name, text] : docs) {
    std::ofstream(dir + "/" + name) << text;
  }
  // Keep the snapshot outside the indexed directory so re-running the
  // demo does not index the snapshot files themselves.
  const std::string prefix = dir + "_snapshot";
  std::cout << "== demo: build ==\n";
  if (int rc = Build(prefix, {dir}); rc != 0) return rc;
  std::cout << "\n== demo: query 'dog AND NOT fox' ==\n";
  if (int rc = Query(prefix, "dog AND NOT fox"); rc != 0) return rc;
  std::cout << "\n== demo: stats ==\n";
  return Stats(prefix);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  // Peel global cache flags off the front, in any order.
  while (args.size() >= 2 && args[0].rfind("--cache-", 0) == 0) {
    if (args[0] == "--cache-blocks") {
      g_cache.capacity_blocks = std::strtoull(args[1].c_str(), nullptr, 10);
    } else if (args[0] == "--cache-mode") {
      duplex::Result<storage::CacheMode> mode =
          storage::ParseCacheMode(args[1]);
      if (!mode.ok()) {
        std::cerr << "unknown cache mode '" << args[1]
                  << "' (write-through|write-back)\n";
        return 2;
      }
      g_cache.mode = *mode;
    } else {
      std::cerr << "unknown flag " << args[0] << "\n";
      return 2;
    }
    args.erase(args.begin(), args.begin() + 2);
  }
  if (args.empty() || args[0] == "demo") return Demo();
  if (args[0] == "build" && args.size() >= 3) {
    return Build(args[1], {args.begin() + 2, args.end()});
  }
  if (args[0] == "query" && args.size() == 3) {
    return Query(args[1], args[2]);
  }
  if (args[0] == "stats" && args.size() == 2) return Stats(args[1]);
  std::cerr << "usage: duplexctl [--cache-blocks <n>] [--cache-mode "
               "write-through|write-back]\n"
               "                 build <prefix> <file-or-dir>...\n"
               "       duplexctl query <prefix> \"<boolean query>\"\n"
               "       duplexctl stats <prefix>\n"
               "       duplexctl demo\n";
  return 2;
}

// Quickstart: build a small dual-structure inverted index over raw text
// documents, query it (boolean and vector-space), and delete a document.
//
//   $ ./quickstart
#include <iostream>

#include "core/inverted_index.h"
#include "ir/query_executor.h"

int main() {
  using namespace duplex;

  // 1. Configure the index. `materialize = true` stores real posting
  //    payloads so queries work; the policy controls how long lists are
  //    laid out on disk (here: the paper's recommended update-optimized
  //    policy, new style + proportional reservation 1.2).
  core::IndexOptions options;
  options.buckets.num_buckets = 64;
  options.buckets.bucket_capacity = 256;
  options.policy = core::Policy::RecommendedUpdateOptimized();
  options.block_postings = 64;
  options.disks.num_disks = 2;
  options.disks.blocks_per_disk = 1 << 16;
  options.materialize = true;
  core::InvertedIndex index(options);

  // 2. Add documents. Documents buffer in memory; FlushDocuments() pushes
  //    one batch into the on-disk structures (the paper's batch update).
  index.AddDocument("the quick brown fox jumps over the lazy dog");
  index.AddDocument("a quick survey of text document retrieval");
  index.AddDocument("inverted lists map each word to its documents");
  index.AddDocument("the dog chased the cat around the document archive");
  if (Status s = index.FlushDocuments(); !s.ok()) {
    std::cerr << "flush failed: " << s << "\n";
    return 1;
  }

  // A second batch arrives later — this is an *incremental* update, no
  // index rebuild happens.
  index.AddDocument("quick cats write quick documents");
  index.AddDocument("the fox reads inverted lists");
  if (Status s = index.FlushDocuments(); !s.ok()) {
    std::cerr << "flush failed: " << s << "\n";
    return 1;
  }

  // 3. Queries go through one ir::QueryExecutor, which works over any
  //    core::IndexReader (InvertedIndex here; ShardedIndex or a
  //    MergingReader overlay work identically).
  ir::QueryExecutor executor(index);

  //    Boolean queries, e.g. the paper's "(cat and dog) or mouse" form.
  for (const char* q : {"quick AND dog", "(fox OR cat) AND NOT lazy",
                        "inverted lists"}) {
    Result<ir::QueryResult> r = executor.EvaluateBoolean(q);
    if (!r.ok()) {
      std::cerr << "query failed: " << r.status() << "\n";
      return 1;
    }
    std::cout << "query " << q << " -> docs [";
    for (size_t i = 0; i < r->docs.size(); ++i) {
      std::cout << (i ? ", " : "") << r->docs[i];
    }
    std::cout << "]  (" << r->read_ops << " list reads)\n";
  }

  // 4. Vector-space query: weighted terms, top-k scored documents.
  ir::VectorQuery vq;
  vq.terms = {{"quick", 2.0}, {"document", 1.0}, {"fox", 1.0}};
  Result<ir::VectorQueryResult> vr =
      executor.EvaluateVector(vq, 3, index.next_doc_id());
  if (!vr.ok()) {
    std::cerr << "vector query failed: " << vr.status() << "\n";
    return 1;
  }
  std::cout << "vector query top docs:";
  for (const ir::ScoredDoc& d : vr->top) {
    std::cout << " doc" << d.doc << "(score " << d.score << ")";
  }
  std::cout << "\n";

  // 5. Delete a document: immediate filtering, then a background sweep
  //    reclaims the space.
  index.DeleteDocument(0);
  Result<ir::QueryResult> after = executor.EvaluateBoolean("lazy");
  std::cout << "after deleting doc 0, 'lazy' matches " << after->docs.size()
            << " docs\n";
  if (Status s = index.SweepDeletions(); !s.ok()) {
    std::cerr << "sweep failed: " << s << "\n";
    return 1;
  }

  // 6. Index statistics.
  const core::IndexStats stats = index.Stats();
  std::cout << "index: " << stats.total_postings << " postings, "
            << stats.bucket_words << " bucket words, " << stats.long_words
            << " long words, utilization " << stats.long_utilization
            << ", " << stats.io_ops << " I/O events recorded\n";
  return 0;
}

// The paper's motivating scenario: a NetNews-like document stream indexed
// incrementally, one daily batch at a time, with simulated disk timing per
// update. Uses the count-only experiment pipeline (exactly what the
// paper's evaluation measures) and reports the dynamics of the
// dual-structure index along the way.
//
//   $ ./news_indexing [days] [docs_per_day]
#include <cstdlib>
#include <iostream>

#include "core/inverted_index.h"
#include "sim/pipeline.h"
#include "storage/trace_executor.h"
#include "util/table_writer.h"

int main(int argc, char** argv) {
  using namespace duplex;

  text::CorpusOptions corpus;
  corpus.num_updates = argc > 1 ? static_cast<uint32_t>(atoi(argv[1])) : 21;
  corpus.docs_per_update =
      argc > 2 ? static_cast<uint32_t>(atoi(argv[2])) : 800;
  if (corpus.interrupted_update >=
      static_cast<int32_t>(corpus.num_updates)) {
    corpus.interrupted_update = -1;
  }

  sim::SimConfig config;
  config.num_buckets = 2048;
  config.bucket_capacity = 512;

  std::cout << "Indexing " << corpus.num_updates << " days of news, ~"
            << corpus.docs_per_update << " docs/day, policy: "
            << core::Policy::RecommendedUpdateOptimized().Name() << "\n\n";

  text::CorpusGenerator generator(corpus);
  text::KeyVocabulary vocabulary;
  core::InvertedIndex index(config.ToIndexOptions(
      core::Policy::RecommendedUpdateOptimized()));

  TableWriter table({"day", "docs", "postings", "new%", "bucket%", "long%",
                     "long words", "util", "est. update (s)"});
  size_t replayed_updates = 0;
  for (uint32_t day = 0; day < corpus.num_updates; ++day) {
    const std::vector<text::SyntheticDoc> docs =
        generator.GenerateUpdate(day);
    const text::BatchUpdate batch =
        text::CorpusGenerator::ToBatchUpdate(docs, &vocabulary);
    if (Status s = index.ApplyBatchUpdate(batch); !s.ok()) {
      std::cerr << "update " << day << " failed: " << s << "\n";
      return 1;
    }
    const core::IndexStats stats = index.Stats();
    const core::UpdateCategories& cats = index.update_categories().back();
    const double total = static_cast<double>(cats.total());
    // Replay the whole trace so far; report just the newest update's time.
    const storage::ExecutionResult exec =
        storage::TraceExecutor(config.ToExecutorOptions())
            .Execute(index.trace());
    replayed_updates = exec.update_seconds.size();
    table.Row()
        .Cell(static_cast<uint64_t>(day))
        .Cell(static_cast<uint64_t>(docs.size()))
        .Cell(batch.TotalPostings())
        .Cell(100.0 * cats.new_words / total, 1)
        .Cell(100.0 * cats.bucket_words / total, 1)
        .Cell(100.0 * cats.long_words / total, 1)
        .Cell(stats.long_words)
        .Cell(stats.long_utilization, 3)
        .Cell(exec.update_seconds.back(), 2);
  }
  table.PrintAscii(std::cout, "Daily incremental updates");

  const core::IndexStats stats = index.Stats();
  std::cout << "\nFinal index: " << stats.total_postings << " postings ("
            << stats.bucket_postings << " in buckets across "
            << stats.bucket_words << " words, " << stats.long_postings
            << " in " << stats.long_words
            << " long lists), avg reads/long list "
            << stats.avg_reads_per_list << ", " << replayed_updates
            << " updates executed\n";
  return 0;
}

// Interactive-ish policy exploration: run any long-list allocation policy
// over a synthetic workload and compare the three axes the paper trades
// off (build time, query cost, disk utilization).
//
//   $ ./policy_explorer                 # compare the standard policies
//   $ ./policy_explorer new z prop 1.5  # evaluate one custom policy
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sim/pipeline.h"
#include "util/table_writer.h"

namespace {

using duplex::core::AllocStrategy;
using duplex::core::Policy;
using duplex::core::Style;

// Parses "new|fill|whole 0|z [const K|block K|prop K|e K]".
duplex::Result<Policy> ParsePolicy(const std::vector<std::string>& args) {
  Policy p;
  if (args.size() < 2) {
    return duplex::Status::InvalidArgument(
        "usage: <new|fill|whole> <0|z> [const K|block K|prop K|e K]");
  }
  if (args[0] == "new") {
    p.style = Style::kNew;
  } else if (args[0] == "fill") {
    p.style = Style::kFill;
  } else if (args[0] == "whole") {
    p.style = Style::kWhole;
  } else {
    return duplex::Status::InvalidArgument("unknown style " + args[0]);
  }
  p.in_place = args[1] == "z";
  if (args.size() >= 4) {
    const double k = atof(args[3].c_str());
    if (args[2] == "const") {
      p.alloc = AllocStrategy::kConstant;
      p.k = k;
    } else if (args[2] == "block") {
      p.alloc = AllocStrategy::kBlock;
      p.k = k;
    } else if (args[2] == "prop") {
      p.alloc = AllocStrategy::kProportional;
      p.k = k;
    } else if (args[2] == "e") {
      p.extent_blocks = static_cast<uint32_t>(k);
    } else {
      return duplex::Status::InvalidArgument("unknown alloc " + args[2]);
    }
  }
  DUPLEX_RETURN_IF_ERROR(p.Validate());
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace duplex;

  std::vector<std::pair<std::string, core::Policy>> policies;
  if (argc > 1) {
    std::vector<std::string> args(argv + 1, argv + argc);
    Result<Policy> p = ParsePolicy(args);
    if (!p.ok()) {
      std::cerr << p.status() << "\n";
      return 1;
    }
    policies.emplace_back(p->Name(), *p);
  } else {
    policies = {
        {"new 0", Policy::New0()},
        {"new z prop 1.2", Policy::RecommendedUpdateOptimized()},
        {"fill z e=4", Policy::FillZ(4)},
        {"whole z prop 1.2", Policy::RecommendedQueryOptimized()},
        {"whole 0", Policy::Whole0()},
    };
  }

  text::CorpusOptions corpus;
  corpus.num_updates = 16;
  corpus.docs_per_update = 600;
  sim::SimConfig config;
  config.num_buckets = 2048;
  config.bucket_capacity = 512;

  std::cout << "Generating workload (" << corpus.num_updates
            << " updates)...\n";
  const sim::BatchStream stream = sim::GenerateBatches(corpus);

  TableWriter table({"policy", "build (s)", "io ops", "reads/list", "util",
                     "long words", "in-place"});
  for (const auto& [label, policy] : policies) {
    const sim::PolicyRunResult run =
        sim::RunPolicy(config, stream.batches, policy);
    const storage::ExecutionResult exec =
        sim::ExerciseDisks(config, run.trace);
    table.Row()
        .Cell(label)
        .Cell(exec.total_seconds(), 1)
        .Cell(run.final_stats.io_ops)
        .Cell(run.final_stats.avg_reads_per_list, 2)
        .Cell(run.final_stats.long_utilization, 3)
        .Cell(run.final_stats.long_words)
        .Cell(run.counters.in_place_updates);
  }
  table.PrintAscii(std::cout, "Policy comparison");
  std::cout << "\nTrade-off summary (paper Section 5.4): choose new+prop "
               "1.2 when update speed\nmatters, whole+prop 1.2 when query "
               "speed matters, fill for bounded extents\n(disk arrays).\n";
  return 0;
}

// Sharded indexing: the dual-structure index word-partitioned across four
// shards. Each shard owns its own bucket store, long-list store, directory
// and disk array behind its own reader-writer lock; batch updates split by
// word hash and apply to the shards in parallel, while queries fan out to
// the owning shard only — so an update on one shard never blocks a query
// whose words live elsewhere (the paper's 24x7 motivation, scaled out).
//
//   $ ./sharded_indexing
#include <iostream>
#include <thread>

#include "core/sharded_index.h"
#include "ir/query_executor.h"
#include "text/corpus_generator.h"

int main() {
  using namespace duplex;

  // 1. Configure one index worth of resources, partitioned across four
  //    shards (the bucket space divides; each shard owns its own disks).
  core::IndexOptions total;
  total.buckets.num_buckets = 64;
  total.buckets.bucket_capacity = 256;
  total.policy = core::Policy::RecommendedUpdateOptimized();
  total.block_postings = 64;
  total.disks.num_disks = 2;
  total.disks.blocks_per_disk = 1 << 16;
  total.materialize = true;
  core::ShardedIndex index(core::ShardedIndexOptions::Partition(total, 4));

  // 2. Documents buffer above the shards and stay searchable; each flush
  //    partitions the batch by word hash and applies shard-parallel.
  index.AddDocument("the quick brown fox jumps over the lazy dog");
  index.AddDocument("a quick survey of text document retrieval");
  index.AddDocument("inverted lists map each word to its documents");
  index.AddDocument("the dog chased the cat around the document archive");
  if (Status s = index.FlushDocuments(); !s.ok()) {
    std::cerr << "flush failed: " << s << "\n";
    return 1;
  }
  index.AddDocument("quick cats write quick documents");
  index.AddDocument("the fox reads inverted lists");
  if (Status s = index.FlushDocuments(); !s.ok()) {
    std::cerr << "flush failed: " << s << "\n";
    return 1;
  }

  // 3. Queries go through the same ir::QueryExecutor as the unsharded
  //    index — each term fans out to the owning shard and merges; results
  //    are bit-identical to the unsharded index.
  ir::QueryExecutor executor(index);
  for (const char* q : {"quick AND dog", "(fox OR cat) AND NOT lazy"}) {
    Result<ir::QueryResult> r = executor.EvaluateBoolean(q);
    if (!r.ok()) {
      std::cerr << "query failed: " << r.status() << "\n";
      return 1;
    }
    std::cout << "query " << q << " -> docs [";
    for (size_t i = 0; i < r->docs.size(); ++i) {
      std::cout << (i ? ", " : "") << r->docs[i];
    }
    std::cout << "]\n";
  }
  ir::VectorQuery vq;
  vq.terms = {{"quick", 2.0}, {"document", 1.0}};
  Result<ir::VectorQueryResult> vr =
      executor.EvaluateVector(vq, 3, index.next_doc_id());
  if (!vr.ok()) {
    std::cerr << "vector query failed: " << vr.status() << "\n";
    return 1;
  }
  std::cout << "vector query top docs:";
  for (const ir::ScoredDoc& d : vr->top) {
    std::cout << " doc" << d.doc << "(score " << d.score << ")";
  }
  std::cout << "\n";

  // 4. Per-shard and merged statistics; every shard verifies.
  const std::vector<core::IndexStats> per_shard = index.ShardStats();
  for (uint32_t s = 0; s < index.num_shards(); ++s) {
    std::cout << "shard " << s << ": " << per_shard[s].total_postings
              << " postings, " << per_shard[s].bucket_words
              << " bucket words, " << per_shard[s].long_words
              << " long words\n";
  }
  const core::IndexStats merged = core::MergeStats(per_shard);
  std::cout << "merged: " << merged.total_postings << " postings across "
            << index.num_shards() << " shards ("
            << std::thread::hardware_concurrency()
            << " hardware threads for parallel apply)\n";
  if (Status s = index.VerifyIntegrity(); !s.ok()) {
    std::cerr << "integrity check failed: " << s << "\n";
    return 1;
  }
  std::cout << "integrity ok; merged trace: "
            << index.MergedTrace().event_count() << " I/O events\n";
  return 0;
}

// Walks the paper's Figure 3 experiment pipeline stage by stage, printing
// a sample of each intermediate representation:
//   news -> invert index -> batch updates (Figure 5 format)
//        -> compute buckets + compute disks -> I/O trace (Figure 6 format)
//        -> exercise disks -> per-update times.
//
//   $ ./trace_pipeline
#include <iostream>
#include <sstream>

#include "core/inverted_index.h"
#include "sim/pipeline.h"
#include "text/corpus_generator.h"

int main() {
  using namespace duplex;

  // Stage 1: News. A small synthetic stream (see DESIGN.md for why this
  // substitutes faithfully for the 1993 NetNews collection).
  text::CorpusOptions corpus;
  corpus.num_updates = 6;
  corpus.docs_per_update = 300;
  corpus.interrupted_update = -1;
  text::CorpusGenerator generator(corpus);
  std::cout << "=== Stage 1: News ===\n";
  const std::vector<text::SyntheticDoc> day0 = generator.GenerateUpdate(0);
  std::cout << "day 0 has " << day0.size() << " documents; doc 0 renders "
            << "as:\n  "
            << text::CorpusGenerator::RenderDocumentText(day0[0]).substr(
                   0, 72)
            << "...\n\n";

  // Stage 2: Invert Index -> batch updates (word-occurrence pairs).
  text::KeyVocabulary vocabulary;
  std::vector<text::BatchUpdate> batches;
  for (uint32_t u = 0; u < corpus.num_updates; ++u) {
    batches.push_back(text::CorpusGenerator::ToBatchUpdate(
        generator.GenerateUpdate(u), &vocabulary));
  }
  std::cout << "=== Stage 2: batch update (paper Figure 5 format) ===\n";
  {
    std::ostringstream os;
    batches[1].Print(os);
    std::istringstream is(os.str());
    std::string line;
    for (int i = 0; i < 6 && std::getline(is, line); ++i) {
      std::cout << "  " << line << "\n";
    }
    std::cout << "  ... (" << batches[1].pairs.size() << " pairs, "
              << batches[1].TotalPostings() << " postings)\n\n";
  }

  // Stage 3+4: compute buckets + compute disks. The index performs both,
  // emitting the I/O trace.
  sim::SimConfig config;
  config.num_buckets = 512;
  config.bucket_capacity = 512;
  core::InvertedIndex index(
      config.ToIndexOptions(core::Policy::FillZ(4)));
  for (const text::BatchUpdate& batch : batches) {
    if (Status s = index.ApplyBatchUpdate(batch); !s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }
  std::cout << "=== Stage 3/4: I/O trace (paper Figure 6 format) ===\n";
  {
    std::istringstream is(index.trace().ToText());
    std::string line;
    for (int i = 0; i < 10 && std::getline(is, line); ++i) {
      std::cout << "  " << line << "\n";
    }
    std::cout << "  ... (" << index.trace().event_count()
              << " events over " << index.trace().update_count()
              << " updates)\n\n";
  }

  // The trace round-trips through its text form — an implementation could
  // pipe it between processes exactly like the paper's design.
  Result<storage::IoTrace> reparsed =
      storage::IoTrace::Parse(index.trace().ToText());
  if (!reparsed.ok()) {
    std::cerr << "trace round-trip failed: " << reparsed.status() << "\n";
    return 1;
  }

  // Stage 5: exercise disks.
  std::cout << "=== Stage 5: exercise disks ===\n";
  const storage::ExecutionResult exec =
      sim::ExerciseDisks(config, *reparsed);
  for (size_t u = 0; u < exec.update_seconds.size(); ++u) {
    std::cout << "  update " << u << ": " << exec.update_seconds[u]
              << " s\n";
  }
  std::cout << "  total " << exec.total_seconds() << " s, "
            << exec.trace_events << " events coalesced into "
            << exec.issued_requests << " requests\n";
  return 0;
}

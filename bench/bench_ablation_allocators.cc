// Ablation of the design choices the paper fixes without exploring
// (Section 3): the free-space strategy (first-fit vs best-fit vs the
// buddy system of Cutting & Pedersen) and the disk-choice strategy
// (round-robin vs most-free). Reported: build time, fragmentation, and
// utilization under the recommended update policy.
#include <iostream>

#include "bench/bench_common.h"
#include "util/table_writer.h"

int main() {
  using namespace duplex;
  using storage::FreeSpaceStrategy;

  TableWriter table({"free space", "disk choice", "build (s)", "io ops",
                     "fragments/disk", "util"});
  const std::vector<FreeSpaceStrategy> strategies = {
      FreeSpaceStrategy::kFirstFit, FreeSpaceStrategy::kBestFit,
      FreeSpaceStrategy::kBuddy};
  const std::vector<storage::DiskChoice> choices = {
      storage::DiskChoice::kRoundRobin, storage::DiskChoice::kMostFree};
  for (const FreeSpaceStrategy fs : strategies) {
    for (const storage::DiskChoice dc : choices) {
      sim::SimConfig config = bench::BenchConfig();
      core::IndexOptions options =
          config.ToIndexOptions(core::Policy::RecommendedUpdateOptimized());
      options.disks.free_space = fs;
      options.disks.disk_choice = dc;
      core::InvertedIndex index(options);
      bool ok = true;
      for (const text::BatchUpdate& batch : bench::SharedStream().batches) {
        if (!index.ApplyBatchUpdate(batch).ok()) {
          ok = false;
          break;
        }
      }
      if (!ok) {
        table.Row()
            .Cell(storage::FreeSpaceStrategyName(fs))
            .Cell(storage::DiskChoiceName(dc))
            .Cell("FAILED")
            .Cell("-")
            .Cell("-")
            .Cell("-");
        continue;
      }
      const storage::ExecutionResult exec =
          sim::ExerciseDisks(config, index.trace());
      uint64_t fragments = 0;
      for (storage::DiskId d = 0; d < index.disks().num_disks(); ++d) {
        fragments += index.disks().fragment_count(d);
      }
      const core::IndexStats stats = index.Stats();
      table.Row()
          .Cell(storage::FreeSpaceStrategyName(fs))
          .Cell(storage::DiskChoiceName(dc))
          .Cell(exec.total_seconds(), 1)
          .Cell(stats.io_ops)
          .Cell(fragments / index.disks().num_disks())
          .Cell(stats.long_utilization, 3);
      std::cerr << "[bench] " << storage::FreeSpaceStrategyName(fs) << " + "
                << storage::DiskChoiceName(dc) << " done\n";
    }
  }
  table.PrintAscii(std::cout,
                   "Ablation: free-space and disk-choice strategies "
                   "(new z prop 1.2)");
  return 0;
}

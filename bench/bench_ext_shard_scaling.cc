// Extension: word-partitioned sharding (core::ShardedIndex). Scales the
// paper's single dual-structure index across N shards — each with its own
// bucket store, long-list store, directory, and disk array — applying
// per-shard sub-batches in parallel while queries take only the owning
// shard's shared lock. Measures, for shards in {1, 2, 4, 8}:
//   - batch-apply wall clock over the full NetNews-like batch stream
//     (the total bucket space is divided across shards, so every
//     configuration indexes the identical corpus into the same total
//     resources), and
//   - query throughput sustained by reader threads *while* the batch
//     stream applies — the paper's 24x7 motivation quantified.
// Parallel speedup requires a multi-core host; per-shard work is fully
// independent, so apply wall clock is expected to scale until shards
// exceed cores.
#include <algorithm>
#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/sharded_index.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/table_writer.h"

int main() {
  using namespace duplex;

  const sim::BatchStream& stream = bench::SharedStream();
  const uint32_t readers = static_cast<uint32_t>(
      bench::EnvOr("DUPLEX_BENCH_READERS", 4));
  const uint64_t words = std::max<uint64_t>(1, stream.stats.total_words);

  TableWriter table({"shards", "apply wall (s)", "speedup", "io ops",
                     "postings", "query kops/s during apply"});
  double baseline_seconds = 0.0;
  for (const uint32_t shards : {1u, 2u, 4u, 8u}) {
    // Timed apply (no concurrent readers) for the clean speedup number.
    const sim::ShardedRunResult run = sim::RunPolicySharded(
        bench::BenchConfig(), stream.batches, core::Policy::NewZ(), shards);
    if (shards == 1) baseline_seconds = run.harness_seconds;
    std::cerr << "[bench] shards=" << shards << " applied in "
              << run.harness_seconds << "s\n";

    // Second pass: the same apply with reader threads hammering Locate on
    // random words the whole time; throughput = reads completed / apply
    // wall clock. Per-shard locks let readers proceed on every shard not
    // currently applying its sub-batch.
    core::ShardedIndex index(core::ShardedIndexOptions::Partition(
        bench::BenchConfig().ToIndexOptions(core::Policy::NewZ()), shards));
    std::atomic<bool> done{false};
    std::atomic<uint64_t> reads{0};
    std::vector<std::thread> threads;
    threads.reserve(readers);
    for (uint32_t r = 0; r < readers; ++r) {
      threads.emplace_back([&, r] {
        Rng rng(r);
        uint64_t local = 0;
        while (!done.load(std::memory_order_relaxed)) {
          const WordId w = static_cast<WordId>(rng.Uniform(words));
          (void)index.Locate(w);
          ++local;
        }
        reads += local;
      });
    }
    Stopwatch watch;
    for (const text::BatchUpdate& batch : stream.batches) {
      DUPLEX_CHECK_OK(index.ApplyBatchUpdate(batch));
    }
    const double apply_seconds = watch.ElapsedSeconds();
    done = true;
    for (std::thread& t : threads) t.join();

    table.Row()
        .Cell(static_cast<uint64_t>(shards))
        .Cell(run.harness_seconds, 2)
        .Cell(baseline_seconds / run.harness_seconds, 2)
        .Cell(run.final_stats.io_ops)
        .Cell(run.final_stats.total_postings)
        .Cell(static_cast<double>(reads.load()) / apply_seconds / 1e3, 1);
  }
  table.PrintAscii(std::cout,
                   "Extension: shard scaling (new z policy, " +
                       std::to_string(readers) + " readers)");
  std::cout << "\nhardware threads: " << std::thread::hardware_concurrency()
            << "\n";
  return 0;
}

// Extension: online long-list compaction under the update-optimized new
// style with proportional over-allocation — the policy corner whose fast
// appends pay for themselves in fragmentation (every update appends a
// reserved chunk, so long lists accrete chunks and dead space). Runs the
// standard multi-batch workload twice, compaction off vs. on (a bounded
// round after every flush, utilization target 0.9), and reports the
// fragmentation-recovery numbers: final long-list utilization, average
// read ops per long list, the compaction I/O surcharge, and the reclaimed
// blocks. Machine-readable output goes to BENCH_compaction.json.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "util/table_writer.h"

namespace {

struct RunPoint {
  const char* label = "";
  double utilization = 0.0;
  double avg_reads_per_list = 0.0;
  uint64_t long_words = 0;
  uint64_t long_chunks = 0;
  uint64_t long_blocks = 0;
  uint64_t io_ops = 0;
  duplex::core::CompactionStats compaction;
};

RunPoint Summarize(const char* label,
                   const duplex::sim::PolicyRunResult& run) {
  RunPoint p;
  p.label = label;
  p.utilization = run.final_stats.long_utilization;
  p.avg_reads_per_list = run.final_stats.avg_reads_per_list;
  p.long_words = run.final_stats.long_words;
  p.long_chunks = run.final_stats.long_chunks;
  p.long_blocks = run.final_stats.long_blocks;
  p.io_ops = run.cumulative_io_ops.empty() ? 0 : run.cumulative_io_ops.back();
  p.compaction = run.compaction;
  return p;
}

}  // namespace

int main() {
  using namespace duplex;

  // Style = new, Alloc = proportional: the fragmentation worst case the
  // compactor exists for.
  const core::Policy policy =
      core::Policy::NewZ(core::AllocStrategy::kProportional, 2.0);
  const sim::BatchStream& stream = bench::SharedStream();
  if (stream.batches.size() < 40) {
    std::cerr << "[bench] note: " << stream.batches.size()
              << " updates (< 40); the fragmentation-recovery numbers are "
                 "calibrated for the full-scale workload\n";
  }

  Stopwatch off_watch;
  const sim::PolicyRunResult off =
      sim::RunPolicy(bench::BenchConfig(), stream.batches, policy);
  std::cerr << "[bench] compaction off: " << off_watch.ElapsedSeconds()
            << "s\n";

  sim::SimConfig on_config = bench::BenchConfig();
  on_config.compaction.enabled = true;
  on_config.compaction.min_chunks = 2;
  on_config.compaction.min_utilization = 0.9;
  on_config.compaction.max_lists_per_round = 0;  // drain every flush
  Stopwatch on_watch;
  const sim::PolicyRunResult on =
      sim::RunPolicy(on_config, stream.batches, policy);
  std::cerr << "[bench] compaction on: " << on_watch.ElapsedSeconds()
            << "s\n";

  const RunPoint points[] = {Summarize("off", off), Summarize("on", on)};
  TableWriter table({"compaction", "utilization", "avg reads/list",
                     "long words", "long chunks", "long blocks",
                     "cumulative io", "lists compacted", "blocks reclaimed"});
  for (const RunPoint& p : points) {
    table.Row()
        .Cell(p.label)
        .Cell(p.utilization, 3)
        .Cell(p.avg_reads_per_list, 3)
        .Cell(p.long_words)
        .Cell(p.long_chunks)
        .Cell(p.long_blocks)
        .Cell(p.io_ops)
        .Cell(p.compaction.lists_compacted)
        .Cell(p.compaction.blocks_reclaimed());
  }
  table.PrintAscii(std::cout,
                   "Extension: online compaction, new z + proportional 2.0 "
                   "(fragmentation recovery)");

  const double read_cut =
      points[0].avg_reads_per_list > 0
          ? 1.0 - points[1].avg_reads_per_list / points[0].avg_reads_per_list
          : 0.0;
  const double io_surcharge =
      points[0].io_ops > 0
          ? static_cast<double>(points[1].io_ops) /
                    static_cast<double>(points[0].io_ops) -
                1.0
          : 0.0;
  std::cout << "\nCompaction lifts final utilization "
            << points[0].utilization << " -> " << points[1].utilization
            << " and cuts avg read ops per long list by "
            << static_cast<int>(read_cut * 100 + 0.5) << "% for a "
            << static_cast<int>(io_surcharge * 100 + 0.5)
            << "% cumulative-I/O surcharge (" << points[1].io_ops -
                   points[0].io_ops
            << " extra ops, all off the query path).\n";
  std::cout << "Targets: utilization >= 0.9 "
            << (points[1].utilization >= 0.9 ? "MET" : "MISSED")
            << ", read-op cut >= 30% " << (read_cut >= 0.3 ? "MET" : "MISSED")
            << "\n";

  std::FILE* json = std::fopen("BENCH_compaction.json", "w");
  if (json == nullptr) {
    std::cerr << "[bench] cannot write BENCH_compaction.json\n";
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"ext_compaction\",\n");
  std::fprintf(json, "  \"policy\": \"%s\",\n", policy.Name().c_str());
  std::fprintf(json,
               "  \"workload\": {\"updates\": %zu, \"total_postings\": "
               "%llu},\n",
               stream.batches.size(),
               static_cast<unsigned long long>(stream.stats.total_postings));
  std::fprintf(json, "  \"runs\": [\n");
  for (size_t i = 0; i < 2; ++i) {
    const RunPoint& p = points[i];
    const sim::PolicyRunResult& run = i == 0 ? off : on;
    std::fprintf(
        json,
        "    {\"compaction\": \"%s\", \"utilization\": %.4f, "
        "\"avg_reads_per_list\": %.4f, \"long_words\": %llu, "
        "\"long_chunks\": %llu, \"long_blocks\": %llu, "
        "\"cumulative_io_ops\": %llu, \"rounds\": %llu, "
        "\"lists_compacted\": %llu, \"postings_rewritten\": %llu, "
        "\"blocks_reclaimed\": %llu,\n     \"utilization_series\": [",
        p.label, p.utilization, p.avg_reads_per_list,
        static_cast<unsigned long long>(p.long_words),
        static_cast<unsigned long long>(p.long_chunks),
        static_cast<unsigned long long>(p.long_blocks),
        static_cast<unsigned long long>(p.io_ops),
        static_cast<unsigned long long>(p.compaction.rounds),
        static_cast<unsigned long long>(p.compaction.lists_compacted),
        static_cast<unsigned long long>(p.compaction.postings_rewritten),
        static_cast<unsigned long long>(p.compaction.blocks_reclaimed()));
    for (size_t u = 0; u < run.utilization.size(); ++u) {
      std::fprintf(json, "%s%.4f", u == 0 ? "" : ", ", run.utilization[u]);
    }
    std::fprintf(json, "],\n     \"avg_reads_series\": [");
    for (size_t u = 0; u < run.avg_reads_per_list.size(); ++u) {
      std::fprintf(json, "%s%.4f", u == 0 ? "" : ", ",
                   run.avg_reads_per_list[u]);
    }
    std::fprintf(json, "]}%s\n", i == 0 ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"summary\": {\"read_op_cut\": %.4f, "
               "\"io_surcharge\": %.4f, \"utilization_target_met\": %s, "
               "\"read_cut_target_met\": %s}\n}\n",
               read_cut, io_surcharge,
               points[1].utilization >= 0.9 ? "true" : "false",
               read_cut >= 0.3 ? "true" : "false");
  std::fclose(json);
  std::cerr << "[bench] wrote BENCH_compaction.json\n";
  return 0;
}

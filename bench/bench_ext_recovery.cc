// Extension: fast restart with checkpoints. Builds the same WAL history
// at several lengths and times a cold restart two ways: full WAL replay
// (no checkpoint — every batch since day one) vs checkpoint + tail
// (restore the newest durable image, replay only the batches after its
// epoch). The paper's restartability story stops at "replay the log";
// this measures what that costs as history accumulates. The WAL-dependent
// part of a checkpointed restart is the tail replay, which stays flat at
// the checkpoint interval no matter how long the history grows, while the
// replay-only restart re-runs every batch ever applied. (The image-load
// part tracks live index size — unavoidable for any snapshot scheme — so
// the speedup over full replay keeps widening with history.) Output:
// ASCII table + BENCH_recovery.json.
//
// Scale knobs: DUPLEX_BENCH_RECOVERY_MAX (longest history, default 48
// batches), DUPLEX_BENCH_RECOVERY_DOCS (docs per batch, default 240).
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/batch_log.h"
#include "core/checkpoint.h"
#include "core/inverted_index.h"
#include "text/batch.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/table_writer.h"

namespace {

namespace fs = std::filesystem;
using namespace duplex;

constexpr int kWords = 400;
constexpr uint64_t kCheckpointEvery = 8;  // batches between checkpoints

core::IndexOptions Options() {
  core::IndexOptions options;
  options.buckets.num_buckets = 256;
  options.buckets.bucket_capacity = 64;
  options.policy = core::Policy::RecommendedUpdateOptimized();
  options.block_postings = 32;
  options.disks.num_disks = 2;
  options.disks.blocks_per_disk = 1 << 18;
  options.disks.block_size_bytes = 512;
  options.disks.checksums = true;
  options.materialize = true;
  return options;
}

std::vector<text::InvertedBatch> MakeBatches(uint64_t count,
                                             uint64_t docs_per_batch) {
  std::vector<text::InvertedBatch> batches;
  Rng rng(1994);
  DocId next_doc = 0;
  for (uint64_t b = 0; b < count; ++b) {
    std::vector<std::vector<DocId>> lists(kWords);
    for (uint64_t d = 0; d < docs_per_batch; ++d) {
      const DocId doc = next_doc++;
      // Zipf-flavored membership: low word ids appear in almost every
      // document, the tail rarely — the paper's short/long split.
      for (int w = 0; w < kWords; ++w) {
        if (rng.Uniform(1 + static_cast<uint64_t>(w) / 8) == 0) {
          lists[w].push_back(doc);
        }
      }
    }
    text::InvertedBatch batch;
    for (int w = 0; w < kWords; ++w) {
      if (!lists[w].empty()) {
        batch.entries.push_back({static_cast<WordId>(w), lists[w]});
      }
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

struct RestartPoint {
  uint64_t history = 0;           // total batches in the WAL's lifetime
  double wal_only_ms = 0.0;       // full replay restart
  double checkpointed_ms = 0.0;   // restore + tail replay restart
  uint64_t tail_batches = 0;      // batches replayed on the fast path
  uint64_t checkpoint_bytes = 0;  // installed image size
};

// Builds an N-batch logged history under `dir` and times both restarts.
RestartPoint MeasureRestart(const std::string& dir,
                            const std::vector<text::InvertedBatch>& batches,
                            uint64_t history, bool with_checkpoints) {
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);
  const std::string wal_path = dir + "/idx.wal";
  const std::string prefix = dir + "/idx";

  RestartPoint point;
  point.history = history;
  {
    Result<std::unique_ptr<core::BatchLog>> log =
        core::BatchLog::Open(wal_path);
    if (!log.ok()) {
      std::cerr << "[bench] WAL open failed: " << log.status() << "\n";
      std::exit(1);
    }
    (*log)->set_fsync(false);
    core::InvertedIndex index(Options());
    core::CheckpointOptions ckpt_options;
    ckpt_options.prefix = prefix;
    core::Checkpointer checkpointer(ckpt_options);
    for (uint64_t b = 0; b < history; ++b) {
      if (Status s = (*log)->ApplyLogged(&index, batches[b]); !s.ok()) {
        std::cerr << "[bench] apply failed: " << s << "\n";
        std::exit(1);
      }
      // Off-phase cadence (batches 4, 12, 20, ...) so every measured
      // history ends mid-interval with the same half-interval tail —
      // the steady-state restart, not the checkpoint-just-finished one.
      if (with_checkpoints &&
          (b + 1) % kCheckpointEvery == kCheckpointEvery / 2) {
        Result<core::CheckpointInfo> info =
            checkpointer.Checkpoint(index, log->get());
        if (!info.ok()) {
          std::cerr << "[bench] checkpoint failed: " << info.status() << "\n";
          std::exit(1);
        }
        point.checkpoint_bytes = info->payload_bytes;
      }
    }
  }

  // Cold restart: everything in memory is gone; reopen and recover.
  Stopwatch watch;
  Result<std::unique_ptr<core::BatchLog>> log = core::BatchLog::Open(wal_path);
  if (!log.ok()) {
    std::cerr << "[bench] WAL reopen failed: " << log.status() << "\n";
    std::exit(1);
  }
  (*log)->set_fsync(false);
  core::InvertedIndex index(Options());
  core::CheckpointOptions ckpt_options;
  ckpt_options.prefix = prefix;
  core::Checkpointer checkpointer(ckpt_options);
  Result<core::RecoveryInfo> rec = checkpointer.Recover(&index, log->get());
  if (!rec.ok()) {
    std::cerr << "[bench] recovery failed: " << rec.status() << "\n";
    std::exit(1);
  }
  const double ms = watch.ElapsedSeconds() * 1000.0;
  if (with_checkpoints) {
    point.checkpointed_ms = ms;
    point.tail_batches = rec->batches_replayed;
    if (history >= kCheckpointEvery &&
        rec->mode != core::RecoveryMode::kCheckpointTail) {
      std::cerr << "[bench] expected the checkpoint fast path\n";
      std::exit(1);
    }
  } else {
    point.wal_only_ms = ms;
    if (history > 0 && rec->mode != core::RecoveryMode::kFullRebuild) {
      std::cerr << "[bench] expected a full rebuild\n";
      std::exit(1);
    }
  }
  fs::remove_all(dir, ec);
  return point;
}

}  // namespace

int main() {
  const uint64_t max_history = bench::EnvOr("DUPLEX_BENCH_RECOVERY_MAX", 48);
  const uint64_t docs_per_batch =
      bench::EnvOr("DUPLEX_BENCH_RECOVERY_DOCS", 240);
  const std::string root =
      (fs::temp_directory_path() / "duplex_bench_recovery").string();

  std::vector<uint64_t> histories;
  for (uint64_t h = kCheckpointEvery; h <= max_history; h *= 2) {
    histories.push_back(h);
  }
  if (histories.empty() || histories.back() != max_history) {
    histories.push_back(max_history);
  }

  Stopwatch gen_watch;
  const std::vector<text::InvertedBatch> batches =
      MakeBatches(max_history, docs_per_batch);
  uint64_t total_postings = 0;
  for (const auto& b : batches) {
    for (const auto& e : b.entries) total_postings += e.docs.size();
  }
  std::cerr << "[bench] generated " << batches.size() << " batches, "
            << total_postings << " postings in " << gen_watch.ElapsedSeconds()
            << "s\n";

  std::vector<RestartPoint> points;
  for (const uint64_t history : histories) {
    RestartPoint wal_only =
        MeasureRestart(root, batches, history, /*with_checkpoints=*/false);
    RestartPoint ckpt =
        MeasureRestart(root, batches, history, /*with_checkpoints=*/true);
    wal_only.checkpointed_ms = ckpt.checkpointed_ms;
    wal_only.tail_batches = ckpt.tail_batches;
    wal_only.checkpoint_bytes = ckpt.checkpoint_bytes;
    points.push_back(wal_only);
    std::cerr << "[bench] history " << history << ": replay "
              << wal_only.wal_only_ms << "ms vs checkpoint+tail "
              << wal_only.checkpointed_ms << "ms\n";
  }

  TableWriter table({"wal batches", "full replay ms", "checkpoint+tail ms",
                     "tail batches", "speedup", "image KiB"});
  for (const RestartPoint& p : points) {
    const double speedup =
        p.checkpointed_ms > 0 ? p.wal_only_ms / p.checkpointed_ms : 0.0;
    table.Row()
        .Cell(p.history)
        .Cell(p.wal_only_ms, 1)
        .Cell(p.checkpointed_ms, 1)
        .Cell(p.tail_batches)
        .Cell(speedup, 2)
        .Cell(p.checkpoint_bytes / 1024);
  }
  table.PrintAscii(std::cout,
                   "Extension: restart latency, full WAL replay vs "
                   "checkpoint + tail (checkpoint every " +
                       std::to_string(kCheckpointEvery) + " batches)");

  // The headline: replay-only restart re-runs the whole history; the
  // checkpointed restart replays a constant tail (bounded by the
  // checkpoint interval) regardless of history length.
  const RestartPoint& first = points.front();
  const RestartPoint& last = points.back();
  const double replay_growth =
      first.wal_only_ms > 0 ? last.wal_only_ms / first.wal_only_ms : 0.0;
  const double ckpt_growth = first.checkpointed_ms > 0
                                 ? last.checkpointed_ms / first.checkpointed_ms
                                 : 0.0;
  const double first_speedup = first.checkpointed_ms > 0
                                   ? first.wal_only_ms / first.checkpointed_ms
                                   : 0.0;
  const double last_speedup = last.checkpointed_ms > 0
                                  ? last.wal_only_ms / last.checkpointed_ms
                                  : 0.0;
  bool tail_flat = true;
  for (const RestartPoint& p : points) {
    tail_flat = tail_flat && p.tail_batches == first.tail_batches;
  }
  std::cout << "\nHistory grew " << last.history / first.history
            << "x: full replay restart grew " << replay_growth
            << "x, checkpointed restart " << ckpt_growth
            << "x (image load tracks live index size).\n";
  std::cout << "Target: WAL replay work at restart flat with checkpoints ("
            << first.tail_batches << "-batch tail at every history) "
            << (tail_flat ? "MET" : "MISSED") << "\n";
  std::cout << "Target: checkpointed restart faster at every point, speedup "
               "widening with history ("
            << first_speedup << "x -> " << last_speedup << "x) "
            << (first_speedup > 1.0 && last_speedup > first_speedup ? "MET"
                                                                    : "MISSED")
            << "\n";

  std::FILE* json = std::fopen("BENCH_recovery.json", "w");
  if (json == nullptr) {
    std::cerr << "[bench] cannot write BENCH_recovery.json\n";
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"ext_recovery\",\n");
  std::fprintf(json,
               "  \"workload\": {\"max_history\": %llu, \"docs_per_batch\": "
               "%llu, \"total_postings\": %llu},\n",
               static_cast<unsigned long long>(max_history),
               static_cast<unsigned long long>(docs_per_batch),
               static_cast<unsigned long long>(total_postings));
  std::fprintf(json, "  \"checkpoint_every\": %llu,\n",
               static_cast<unsigned long long>(kCheckpointEvery));
  std::fprintf(json, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const RestartPoint& p = points[i];
    std::fprintf(json,
                 "    {\"history\": %llu, \"full_replay_ms\": %.3f, "
                 "\"checkpoint_tail_ms\": %.3f, \"tail_batches\": %llu, "
                 "\"checkpoint_bytes\": %llu}%s\n",
                 static_cast<unsigned long long>(p.history), p.wal_only_ms,
                 p.checkpointed_ms,
                 static_cast<unsigned long long>(p.tail_batches),
                 static_cast<unsigned long long>(p.checkpoint_bytes),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json, "  \"replay_growth\": %.3f,\n", replay_growth);
  std::fprintf(json, "  \"checkpointed_growth\": %.3f,\n", ckpt_growth);
  std::fprintf(json, "  \"tail_flat\": %s,\n", tail_flat ? "true" : "false");
  std::fprintf(json, "  \"speedup_first\": %.3f,\n", first_speedup);
  std::fprintf(json, "  \"speedup_last\": %.3f\n", last_speedup);
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::cerr << "[bench] wrote BENCH_recovery.json\n";
  return 0;
}

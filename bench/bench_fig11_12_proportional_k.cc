// Reproduces paper Figures 11 and 12: the impact of the proportional
// allocation constant k on (11) long-list utilization and (12) cumulative
// in-place updates, for the new and whole styles, with fill (extent e=4)
// as the flat reference. Expected: utilization falls as k rises; new has a
// cusp near k=2 (reserving space for exactly one more same-sized update);
// most in-place gains arrive by k <= 2.
#include <iostream>

#include "bench/bench_common.h"
#include "util/table_writer.h"

int main() {
  using namespace duplex;
  using core::AllocStrategy;
  using core::Policy;

  const std::vector<double> ks = {1.0, 1.2, 1.5, 2.0, 2.5, 3.0, 4.0};
  const sim::PolicyRunResult fill = bench::Run(Policy::FillZ(4));

  TableWriter table({"k", "util new", "util whole", "util fill",
                     "inplace new", "inplace whole", "inplace fill"});
  for (const double k : ks) {
    // k = 1.0 proportional reserves nothing beyond block rounding, i.e.
    // it degenerates to constant 0.
    const Policy new_p = k == 1.0
                             ? Policy::NewZ()
                             : Policy::NewZ(AllocStrategy::kProportional, k);
    const Policy whole_p =
        k == 1.0 ? Policy::WholeZ()
                 : Policy::WholeZ(AllocStrategy::kProportional, k);
    const sim::PolicyRunResult rn = bench::Run(new_p);
    const sim::PolicyRunResult rw = bench::Run(whole_p);
    table.Row()
        .Cell(k, 2)
        .Cell(rn.final_stats.long_utilization, 3)
        .Cell(rw.final_stats.long_utilization, 3)
        .Cell(fill.final_stats.long_utilization, 3)
        .Cell(rn.counters.in_place_updates)
        .Cell(rw.counters.in_place_updates)
        .Cell(fill.counters.in_place_updates);
  }
  table.PrintAscii(std::cout,
                   "Figures 11+12: proportional constant k vs utilization "
                   "and cumulative in-place updates");
  return 0;
}

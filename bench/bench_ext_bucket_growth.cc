// Extension (paper's future work, Section 7): dynamic bucket-space
// growth. With fixed buckets, the index degrades as documents accumulate:
// the buckets saturate and medium-frequency words spill into a flood of
// tiny long lists. Auto-growing the bucket space on saturation keeps the
// short/long division balanced. This bench contrasts the two on the same
// stream, starting from a deliberately undersized bucket region.
#include <iostream>

#include "bench/bench_common.h"
#include "core/inverted_index.h"
#include "util/table_writer.h"

namespace {

struct RunOutcome {
  std::vector<uint64_t> long_words;
  std::vector<double> occupancy;
  uint64_t resizes = 0;
  duplex::core::IndexStats final_stats;
};

RunOutcome RunWithThreshold(double threshold) {
  using namespace duplex;
  sim::SimConfig config = bench::BenchConfig();
  config.num_buckets /= 8;  // start undersized
  core::IndexOptions options =
      config.ToIndexOptions(core::Policy::RecommendedUpdateOptimized());
  options.bucket_grow_threshold = threshold;
  core::InvertedIndex index(options);
  RunOutcome out;
  for (const text::BatchUpdate& batch : bench::SharedStream().batches) {
    if (!index.ApplyBatchUpdate(batch).ok()) break;
    out.long_words.push_back(index.Stats().long_words);
    out.occupancy.push_back(index.bucket_store().Occupancy());
  }
  out.resizes = index.bucket_store().resizes();
  out.final_stats = index.Stats();
  return out;
}

}  // namespace

int main() {
  using namespace duplex;
  const RunOutcome fixed = RunWithThreshold(0.0);
  const RunOutcome growing = RunWithThreshold(0.8);

  TableWriter table({"update", "long words (fixed)", "long words (grow)",
                     "occupancy (fixed)", "occupancy (grow)"});
  for (size_t u = 0; u < fixed.long_words.size(); ++u) {
    table.Row()
        .Cell(static_cast<uint64_t>(u))
        .Cell(fixed.long_words[u])
        .Cell(growing.long_words[u])
        .Cell(fixed.occupancy[u], 3)
        .Cell(growing.occupancy[u], 3);
  }
  table.PrintAscii(std::cout,
                   "Extension: fixed vs auto-growing bucket space "
                   "(starting 8x undersized)");
  std::cout << "\nAuto-grow resized " << growing.resizes
            << " times; final long words " << growing.final_stats.long_words
            << " vs " << fixed.final_stats.long_words
            << " fixed; bucket words " << growing.final_stats.bucket_words
            << " vs " << fixed.final_stats.bucket_words << ".\n";
  return 0;
}

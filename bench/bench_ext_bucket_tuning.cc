// Extension ([10] / Section 5.1 and the Cutting-Pedersen comparison in
// Section 6): tuning the bucket geometry. The same total bucket space is
// divided into different numbers of buckets — from few huge buckets to
// the Cutting-Pedersen extreme of (almost) one tiny bucket per word, which
// the paper argues is worse than fewer, larger buckets.
#include <iostream>

#include "bench/bench_common.h"
#include "core/inverted_index.h"
#include "util/table_writer.h"

int main() {
  using namespace duplex;

  const sim::SimConfig base = bench::BenchConfig();
  const uint64_t total_units =
      static_cast<uint64_t>(base.num_buckets) * base.bucket_capacity;

  TableWriter table({"buckets", "bucket size", "long words",
                     "bucket words", "evictions", "long utilization",
                     "reads/long list"});
  // From 512 huge buckets to ~1M tiny ones (Cutting-Pedersen-like).
  for (const uint32_t buckets :
       {512u, 2048u, 8192u, 32768u, 262144u, 1048576u}) {
    sim::SimConfig config = base;
    config.num_buckets = buckets;
    config.bucket_capacity =
        std::max<uint64_t>(4, total_units / buckets);
    const sim::PolicyRunResult run =
        sim::RunPolicy(config, bench::SharedStream().batches,
                       core::Policy::RecommendedUpdateOptimized());
    table.Row()
        .Cell(static_cast<uint64_t>(buckets))
        .Cell(config.bucket_capacity)
        .Cell(run.final_stats.long_words)
        .Cell(run.final_stats.bucket_words)
        .Cell(run.final_stats.long_words == 0
                  ? 0
                  : run.counters.lists_created)
        .Cell(run.final_stats.long_utilization, 3)
        .Cell(run.final_stats.avg_reads_per_list, 2);
    std::cerr << "[bench] buckets=" << buckets << " done\n";
  }
  table.PrintAscii(std::cout,
                   "Extension: bucket geometry at constant total bucket "
                   "space");
  std::cout << "\nTiny per-word buckets (the Cutting-Pedersen B-tree "
               "extreme) promote far more\nwords to long lists, inflating "
               "long-list count and update I/O — the paper's\nargument for "
               "fewer, larger buckets.\n";
  return 0;
}

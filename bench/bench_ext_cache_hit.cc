// Extension: buffer-pool effectiveness on the NetNews-style workload.
// Sweeps the pool size from disabled to 64 MiB under the whole z policy
// (the Figure 8 workload whose whole-list re-reads dominate read traffic)
// and reports, per size, the cumulative physical I/O of the update stream
// and the read cost of a sampled query workload split into physical and
// pool-resident ops. Machine-readable output goes to BENCH_cache.json so
// the sweep is trackable across revisions.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/inverted_index.h"
#include "ir/query_workload.h"
#include "util/table_writer.h"

namespace {

struct SweepPoint {
  uint64_t cache_mib = 0;
  uint64_t cache_blocks = 0;
  uint64_t io_ops = 0;             // logical trace events
  uint64_t physical_ops = 0;       // events that reach a disk
  uint64_t cached_ops = 0;         // reads served by the pool
  uint64_t physical_reads = 0;     // physical read events only
  double hit_rate = 0.0;           // pool block-probe hit rate
  uint64_t query_read_ops = 0;     // sampled workload, all list reads
  uint64_t query_cached_ops = 0;   // of those, pool-resident
};

}  // namespace

int main() {
  using namespace duplex;

  const core::Policy policy = core::Policy::WholeZ();
  const sim::BatchStream& stream = bench::SharedStream();
  constexpr int kBooleanQueries = 200;
  constexpr int kVectorQueries = 100;

  std::vector<SweepPoint> sweep;
  for (const uint64_t mib : {0ull, 1ull, 4ull, 16ull, 64ull}) {
    sim::SimConfig config = bench::BenchConfig();
    config.cache_blocks = mib * ((1024 * 1024) / config.block_size);

    Stopwatch watch;
    core::InvertedIndex index(config.ToIndexOptions(policy));
    for (const text::BatchUpdate& batch : stream.batches) {
      if (!index.ApplyBatchUpdate(batch).ok()) return 1;
    }

    SweepPoint point;
    point.cache_mib = mib;
    point.cache_blocks = config.cache_blocks;
    point.io_ops = index.trace().CountOps();
    point.physical_ops = index.trace().CountPhysicalOps();
    point.cached_ops = index.trace().CountCachedOps();
    point.physical_reads =
        index.trace().CountPhysicalOps(storage::IoOp::kRead);
    point.hit_rate = index.cache_stats().hit_rate();

    // Query side: the same sampled workload per size (fixed seed), costed
    // against the final layout and the pool's end-of-run residency.
    ir::QueryWorkloadGenerator generator(index, 4242);
    for (int q = 0; q < kBooleanQueries; ++q) {
      const auto cost =
          generator.EstimateCost(generator.SampleBooleanTerms(6));
      point.query_read_ops += cost.read_ops;
      point.query_cached_ops += cost.cached_read_ops;
    }
    for (int q = 0; q < kVectorQueries; ++q) {
      const auto cost =
          generator.EstimateCost(generator.SampleVectorTerms(120));
      point.query_read_ops += cost.read_ops;
      point.query_cached_ops += cost.cached_read_ops;
    }
    sweep.push_back(point);
    std::cerr << "[bench] cache " << mib << " MiB done in "
              << watch.ElapsedSeconds() << "s\n";
  }

  TableWriter table({"cache MiB", "io ops", "physical ops", "cached ops",
                     "physical reads", "hit rate", "query reads",
                     "query cached"});
  for (const SweepPoint& p : sweep) {
    table.Row()
        .Cell(p.cache_mib)
        .Cell(p.io_ops)
        .Cell(p.physical_ops)
        .Cell(p.cached_ops)
        .Cell(p.physical_reads)
        .Cell(p.hit_rate, 3)
        .Cell(p.query_read_ops)
        .Cell(p.query_cached_ops);
  }
  table.PrintAscii(std::cout,
                   "Extension: buffer-pool sweep, whole z policy "
                   "(cumulative update I/O + sampled query reads)");
  std::cout << "\nLogical io ops are size-invariant (the pool never "
               "changes what the index\nreads); physical ops fall as the "
               "whole-list re-read working set becomes\nresident.\n";

  std::FILE* json = std::fopen("BENCH_cache.json", "w");
  if (json == nullptr) {
    std::cerr << "[bench] cannot write BENCH_cache.json\n";
    return 1;
  }
  std::fprintf(json, "{\n  \"bench\": \"ext_cache_hit\",\n");
  std::fprintf(json, "  \"policy\": \"%s\",\n", policy.Name().c_str());
  std::fprintf(json,
               "  \"workload\": {\"updates\": %zu, \"total_postings\": "
               "%llu},\n",
               stream.batches.size(),
               static_cast<unsigned long long>(
                   stream.stats.total_postings));
  std::fprintf(json, "  \"block_size\": %llu,\n",
               static_cast<unsigned long long>(
                   bench::BenchConfig().block_size));
  std::fprintf(json, "  \"sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::fprintf(
        json,
        "    {\"cache_mib\": %llu, \"cache_blocks\": %llu, "
        "\"io_ops\": %llu, \"physical_ops\": %llu, \"cached_ops\": %llu, "
        "\"physical_reads\": %llu, \"hit_rate\": %.4f, "
        "\"query_read_ops\": %llu, \"query_cached_read_ops\": %llu}%s\n",
        static_cast<unsigned long long>(p.cache_mib),
        static_cast<unsigned long long>(p.cache_blocks),
        static_cast<unsigned long long>(p.io_ops),
        static_cast<unsigned long long>(p.physical_ops),
        static_cast<unsigned long long>(p.cached_ops),
        static_cast<unsigned long long>(p.physical_reads), p.hit_rate,
        static_cast<unsigned long long>(p.query_read_ops),
        static_cast<unsigned long long>(p.query_cached_ops),
        i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::cerr << "[bench] wrote BENCH_cache.json\n";
  return 0;
}

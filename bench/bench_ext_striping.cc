// Extension: the paper's striping question ("can we stripe large lists
// across multiple disks to improve performance?"). The fill style stripes
// long lists across disks in extent-sized pieces that can be read in
// parallel; whole keeps each list one contiguous single-disk chunk. This
// bench measures estimated read latency of the longest lists in the final
// index under each policy.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "core/inverted_index.h"
#include "ir/read_latency.h"
#include "util/table_writer.h"

int main() {
  using namespace duplex;
  using core::Policy;

  const std::vector<std::pair<std::string, Policy>> policies = {
      {"whole z prop1.2 (contiguous)", Policy::RecommendedQueryOptimized()},
      {"fill z e=4 (striped extents)", Policy::FillZ(4)},
      {"fill z e=16 (striped extents)", Policy::FillZ(16)},
      {"new z prop1.2", Policy::RecommendedUpdateOptimized()},
  };
  const storage::DiskModelParams disk =
      storage::DiskModelParams::Seagate1993();

  TableWriter table({"policy", "top-100 parallel ms", "top-100 serial ms",
                     "speedup", "avg disks/list", "avg chunks/list"});
  for (const auto& [label, policy] : policies) {
    sim::SimConfig config = bench::BenchConfig();
    core::InvertedIndex index(config.ToIndexOptions(policy));
    for (const text::BatchUpdate& batch : bench::SharedStream().batches) {
      if (!index.ApplyBatchUpdate(batch).ok()) return 1;
    }
    // Top 100 longest lists: the ones vector queries actually fetch.
    const std::vector<ir::ListReadEstimate> estimates =
        ir::EstimateLongestListReads(index, 100, disk);
    double parallel_ms = 0;
    double serial_ms = 0;
    double disks = 0;
    double chunks = 0;
    for (const ir::ListReadEstimate& e : estimates) {
      parallel_ms += e.ms;
      serial_ms += e.serial_ms;
      disks += e.disks_used;
      chunks += static_cast<double>(e.read_ops);
    }
    const double n = static_cast<double>(estimates.size());
    table.Row()
        .Cell(label)
        .Cell(parallel_ms / n, 2)
        .Cell(serial_ms / n, 2)
        .Cell(serial_ms / parallel_ms, 2)
        .Cell(disks / n, 2)
        .Cell(chunks / n, 1);
    std::cerr << "[bench] striping for '" << label << "' done\n";
  }
  table.PrintAscii(std::cout,
                   "Extension: read latency of the 100 longest lists "
                   "(parallel multi-disk vs serial)");
  std::cout << "\nFill-style extents stripe big lists across all disks: "
               "parallel latency\napproaches serial/Disks for "
               "transfer-dominated lists, the advantage the paper\n"
               "attributes to the fill style for disk arrays.\n";
  return 0;
}

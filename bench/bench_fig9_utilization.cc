// Reproduces paper Figure 9: internal utilization of long lists after
// each update, per policy. Expected: new/fill without in-place updates
// collapse (massive waste from block-rounded tiny chunks); adding in-place
// updates recovers most of it; whole stays near 1.0 regardless.
#include <iostream>

#include "bench/bench_common.h"
#include "util/table_writer.h"

int main() {
  using namespace duplex;
  std::vector<std::string> columns = {"update"};
  std::vector<sim::PolicyRunResult> runs;
  for (const auto& [label, policy] : bench::FigurePolicies()) {
    columns.push_back(label);
    runs.push_back(bench::Run(policy));
  }

  TableWriter table(columns);
  const size_t updates = runs[0].utilization.size();
  for (size_t u = 0; u < updates; ++u) {
    table.Row().Cell(static_cast<uint64_t>(u));
    for (const auto& run : runs) table.Cell(run.utilization[u], 4);
  }
  table.PrintAscii(std::cout,
                   "Figure 9: long-list internal disk utilization");
  return 0;
}

#ifndef DUPLEX_BENCH_BENCH_COMMON_H_
#define DUPLEX_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/policy.h"
#include "sim/pipeline.h"
#include "text/corpus_generator.h"
#include "util/stopwatch.h"

namespace duplex::bench {

// Scale knobs: DUPLEX_BENCH_UPDATES / DUPLEX_BENCH_DOCS shrink the corpus
// for quick iteration; defaults reproduce the calibrated full-scale
// experiment (66 daily updates, ~11M postings, see DESIGN.md).
inline uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::strtoull(v, nullptr, 10);
}

inline text::CorpusOptions BenchCorpus() {
  text::CorpusOptions corpus;
  corpus.num_updates =
      static_cast<uint32_t>(EnvOr("DUPLEX_BENCH_UPDATES", 66));
  corpus.docs_per_update =
      static_cast<uint32_t>(EnvOr("DUPLEX_BENCH_DOCS", 2000));
  if (corpus.interrupted_update >=
      static_cast<int32_t>(corpus.num_updates)) {
    corpus.interrupted_update = -1;
  }
  return corpus;
}

inline sim::SimConfig BenchConfig() { return sim::SimConfig{}; }

// Generates the batch stream once per process, reporting progress.
inline const sim::BatchStream& SharedStream() {
  static const sim::BatchStream* stream = [] {
    Stopwatch watch;
    std::cerr << "[bench] generating corpus ("
              << BenchCorpus().num_updates << " updates x "
              << BenchCorpus().docs_per_update << " docs)...\n";
    auto* s = new sim::BatchStream(sim::GenerateBatches(BenchCorpus()));
    std::cerr << "[bench] corpus ready: " << s->stats.total_postings
              << " postings, " << s->stats.total_words << " words ("
              << watch.ElapsedSeconds() << "s)\n";
    return s;
  }();
  return *stream;
}

// The five policy curves of paper Figures 8/9/10/13/14.
inline std::vector<std::pair<std::string, core::Policy>> FigurePolicies() {
  return {
      {"new 0", core::Policy::New0()},
      {"new z", core::Policy::NewZ()},
      {"fill 0", core::Policy::Fill0(4)},
      {"fill z", core::Policy::FillZ(4)},
      {"whole 0", core::Policy::Whole0()},
      {"whole z", core::Policy::WholeZ()},
  };
}

inline sim::PolicyRunResult Run(const core::Policy& policy) {
  Stopwatch watch;
  sim::PolicyRunResult run =
      sim::RunPolicy(BenchConfig(), SharedStream().batches, policy);
  std::cerr << "[bench] ran policy '" << policy.Name() << "' in "
            << watch.ElapsedSeconds() << "s\n";
  return run;
}

}  // namespace duplex::bench

#endif  // DUPLEX_BENCH_BENCH_COMMON_H_

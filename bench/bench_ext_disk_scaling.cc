// Reproduces the technical-note extensions the paper summarizes in its
// conclusion: the impact of (a) the number of disks, (b) disk speed, and
// (c) an optical disk on incremental update time. Each disk count is a
// separate full run (allocation spreads differently), while disk models
// replay the same trace.
#include <iostream>

#include "bench/bench_common.h"
#include "util/table_writer.h"

int main() {
  using namespace duplex;
  using core::Policy;

  // (a) Number of disks.
  TableWriter disks_table({"disks", "new z build (s)", "whole z build (s)"});
  for (const uint32_t n : {1u, 2u, 4u, 8u}) {
    sim::SimConfig config = bench::BenchConfig();
    config.num_disks = n;
    const sim::PolicyRunResult rn =
        sim::RunPolicy(config, bench::SharedStream().batches,
                       Policy::NewZ());
    const sim::PolicyRunResult rw =
        sim::RunPolicy(config, bench::SharedStream().batches,
                       Policy::WholeZ());
    disks_table.Row()
        .Cell(static_cast<uint64_t>(n))
        .Cell(sim::ExerciseDisks(config, rn.trace).total_seconds(), 1)
        .Cell(sim::ExerciseDisks(config, rw.trace).total_seconds(), 1);
    std::cerr << "[bench] disks=" << n << " done\n";
  }
  disks_table.PrintAscii(std::cout,
                         "Extension: build time vs number of disks");

  // (b, c) Disk speed and optical media on the 4-disk trace.
  const sim::PolicyRunResult run = bench::Run(Policy::NewZ());
  TableWriter model_table({"disk model", "build (s)"});
  const std::vector<std::pair<const char*, storage::DiskModelParams>>
      models = {{"Seagate ST31200N (1993)",
                 storage::DiskModelParams::Seagate1993()},
                {"fast magnetic disk", storage::DiskModelParams::FastDisk()},
                {"optical disk", storage::DiskModelParams::OpticalDisk()}};
  for (const auto& [label, model] : models) {
    model_table.Row().Cell(label).Cell(
        sim::ExerciseDisks(bench::BenchConfig(), run.trace, model)
            .total_seconds(),
        1);
  }
  std::cout << "\n";
  model_table.PrintAscii(std::cout,
                         "Extension: build time vs disk model (new z)");
  return 0;
}

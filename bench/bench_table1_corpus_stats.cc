// Reproduces paper Table 1: statistics of the News abstracts text
// database. Our corpus is the calibrated synthetic NetNews stream (see
// DESIGN.md); "frequent" words are the top 2% by posting count.
#include <iostream>

#include "bench/bench_common.h"
#include "util/table_writer.h"

int main() {
  using namespace duplex;
  const sim::CorpusStats& s = bench::SharedStream().stats;

  TableWriter table({"Statistic", "Value"});
  table.Row().Cell("Total Raw Text (MB)").Cell(
      static_cast<double>(s.raw_text_bytes) / 1e6, 1);
  table.Row().Cell("Total Words").Cell(s.total_words);
  table.Row().Cell("Total Postings").Cell(s.total_postings);
  table.Row().Cell("Documents").Cell(s.total_docs);
  table.Row().Cell("Average Postings per Word")
      .Cell(s.avg_postings_per_word, 1);
  table.Row().Cell("Frequent Words (top 2%)").Cell(s.frequent_words);
  table.Row().Cell("Infrequent Words").Cell(s.infrequent_words);
  table.Row()
      .Cell("Postings for Frequent Words (%)")
      .Cell(100.0 * s.frequent_posting_share, 1);
  table.Row()
      .Cell("Postings for Infrequent Words (%)")
      .Cell(100.0 * (1.0 - s.frequent_posting_share), 1);
  table.PrintAscii(std::cout,
                   "Table 1: Statistics for the synthetic News database");

  TableWriter per_update({"update", "docs", "postings", "distinct_words"});
  for (size_t u = 0; u < s.docs_per_update.size(); ++u) {
    per_update.Row()
        .Cell(static_cast<uint64_t>(u))
        .Cell(s.docs_per_update[u])
        .Cell(s.postings_per_update[u])
        .Cell(s.distinct_words_per_update[u]);
  }
  std::cout << "\n";
  per_update.PrintAscii(std::cout, "Per-update corpus profile");
  return 0;
}

// Extension: overhead of the observability layer on the two hot paths it
// instruments — batch apply (core + storage handles cached in component
// constructors) and boolean query evaluation (per-query registry lookups
// + a span). Each phase runs three ways: no registry installed (every
// instrumentation site reduces to one null test), metrics only, and
// metrics + tracing. Acceptance: enabled recording costs < 3% wall-clock;
// the null path is indistinguishable from noise.
#include <algorithm>
#include <array>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/inverted_index.h"
#include "ir/query_eval.h"
#include "sim/pipeline.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/table_writer.h"
#include "util/tracer.h"

namespace {

using namespace duplex;

enum class Mode { kOff, kMetrics, kMetricsAndTrace };

// Runs `body` with the mode's recorders installed; returns wall seconds.
template <typename Fn>
double TimedWithMode(Mode mode, Fn&& body) {
  MetricsRegistry registry;
  Tracer tracer(1 << 16);
  MetricsRegistry* prev_registry = nullptr;
  Tracer* prev_tracer = nullptr;
  if (mode != Mode::kOff) prev_registry = SetGlobalMetrics(&registry);
  if (mode == Mode::kMetricsAndTrace) prev_tracer = SetGlobalTracer(&tracer);
  Stopwatch watch;
  body();
  const double seconds = watch.ElapsedSeconds();
  if (mode != Mode::kOff) SetGlobalMetrics(prev_registry);
  if (mode == Mode::kMetricsAndTrace) SetGlobalTracer(prev_tracer);
  return seconds;
}

// Minimum wall time per mode, with modes interleaved round-robin inside
// each rep so frequency/cache drift lands on every mode equally instead
// of biasing whichever mode happens to run last. One untimed warm-up
// precedes the measured reps.
template <typename Fn>
std::array<double, 3> MinPerMode(int reps, Fn&& body) {
  std::array<double, 3> best;
  best.fill(1e100);
  body();  // warm-up: faults, allocator growth, branch history
  for (int r = 0; r < reps; ++r) {
    for (const Mode mode :
         {Mode::kOff, Mode::kMetrics, Mode::kMetricsAndTrace}) {
      const int m = static_cast<int>(mode);
      best[m] = std::min(best[m], TimedWithMode(mode, body));
    }
  }
  return best;
}

double OverheadPercent(double base, double with) {
  return base <= 0.0 ? 0.0 : 100.0 * (with - base) / base;
}

}  // namespace

int main() {
  // Modes differ by tens of microseconds over ~20-80 ms phases, so the
  // noise floor of a shared machine swamps single runs; many interleaved
  // reps let the per-mode minimum converge.
  constexpr int kApplyReps = 25;
  constexpr int kQueryReps = 15;

  // Phase A: the full incremental batch-apply path (buckets, long lists,
  // allocation) on a count-only index with the accounting cache on, so
  // the core and storage instrumentation sites all fire.
  sim::SimConfig config = bench::BenchConfig();
  config.cache_blocks = 64;
  text::CorpusOptions corpus;
  corpus.num_updates = 16;
  corpus.docs_per_update = 1200;
  corpus.word_universe = 30000;
  corpus.seed = 17;
  const sim::BatchStream stream = sim::GenerateBatches(corpus);
  const core::Policy policy = core::Policy::RecommendedUpdateOptimized();
  auto apply_all = [&config, &stream, &policy] {
    core::InvertedIndex index(config.ToIndexOptions(policy));
    for (const text::BatchUpdate& batch : stream.batches) {
      if (!index.ApplyBatchUpdate(batch).ok()) std::abort();
    }
  };

  // Phase B: boolean query evaluation against a materialized index built
  // from text (string vocabulary), the hottest instrumented path — each
  // query pays two registry lookups, three counter increments, one
  // histogram record, and a span when tracing.
  core::IndexOptions query_options;
  query_options.buckets.num_buckets = 256;
  query_options.buckets.bucket_capacity = 128;
  query_options.policy = policy;
  query_options.block_postings = 32;
  query_options.disks.num_disks = 2;
  query_options.disks.blocks_per_disk = 1 << 18;
  query_options.materialize = true;
  core::InvertedIndex query_index(query_options);
  {
    static constexpr const char* kPool[] = {
        "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta",
        "theta", "iota", "kappa", "lambda", "mu", "nu", "xi"};
    Rng rng(3);
    for (int d = 0; d < 600; ++d) {
      std::string text;
      for (int w = 0; w < 20; ++w) {
        text += kPool[rng.Uniform(std::size(kPool))];
        text += ' ';
      }
      query_index.AddDocument(text);
      if (query_index.buffered_documents() >= 64 &&
          !query_index.FlushDocuments().ok()) {
        return 1;
      }
    }
    if (!query_index.FlushDocuments().ok()) return 1;
  }
  std::vector<std::unique_ptr<ir::BooleanQuery>> queries;
  for (const char* text :
       {"alpha AND beta", "gamma OR delta", "epsilon AND NOT zeta",
        "(eta OR theta) AND iota", "kappa lambda", "mu AND NOT nu"}) {
    Result<std::unique_ptr<ir::BooleanQuery>> parsed =
        ir::ParseBooleanQuery(text);
    if (!parsed.ok()) return 1;
    queries.push_back(std::move(*parsed));
  }
  constexpr int kQueryRounds = 3000;
  auto run_queries = [&query_index, &queries] {
    for (int round = 0; round < kQueryRounds; ++round) {
      for (const auto& q : queries) {
        Result<ir::QueryResult> r = ir::EvaluateBoolean(query_index, *q);
        if (!r.ok()) std::abort();
      }
    }
  };

  struct Phase {
    const char* name;
    std::array<double, 3> seconds{};
  };
  Phase phases[2] = {{"batch apply", {}}, {"boolean queries", {}}};
  phases[0].seconds = MinPerMode(kApplyReps, apply_all);
  std::cerr << "[bench] " << phases[0].name << " done\n";
  phases[1].seconds = MinPerMode(kQueryReps, run_queries);
  std::cerr << "[bench] " << phases[1].name << " done\n";

  TableWriter table({"phase", "off s", "metrics s", "metrics ovh%",
                     "+trace s", "+trace ovh%"});
  bool within_budget = true;
  for (const Phase& p : phases) {
    const double ovh_metrics = OverheadPercent(p.seconds[0], p.seconds[1]);
    const double ovh_trace = OverheadPercent(p.seconds[0], p.seconds[2]);
    within_budget = within_budget && ovh_trace < 3.0;
    table.Row()
        .Cell(p.name)
        .Cell(p.seconds[0], 4)
        .Cell(p.seconds[1], 4)
        .Cell(ovh_metrics, 2)
        .Cell(p.seconds[2], 4)
        .Cell(ovh_trace, 2);
  }
  table.PrintAscii(std::cout,
                   "Extension: observability overhead (min over "
                   "mode-interleaved reps; off = no registry installed)");
  std::cout << "\nBudget: < 3% with metrics + tracing enabled -> "
            << (within_budget ? "within budget" : "EXCEEDED") << "\n";
  return 0;
}

// Extension: overhead of the observability layer on the two hot paths it
// instruments — batch apply (core + storage handles cached in component
// constructors) and boolean query evaluation (per-query registry lookups
// + a span). Each phase runs three ways: no registry installed (every
// instrumentation site reduces to one null test), metrics only, and
// metrics + tracing. Acceptance: enabled recording costs < 3% wall-clock;
// the null path is indistinguishable from noise.
//
// The served-mode phase measures the telemetry plane end-to-end: mixed
// boolean/submit traffic over a loopback net::Server, once bare and once
// with the full plane on (registry + tracer + JSON logger + slow-query
// log + an AdminServer being scraped at 1 Hz). Same < 3% budget — the
// admin plane must be free on the request path. Machine-readable output
// goes to BENCH_observability.json.
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/inverted_index.h"
#include "core/sharded_index.h"
#include "ir/query_eval.h"
#include "net/admin_server.h"
#include "net/client.h"
#include "net/server.h"
#include "net/service.h"
#include "sim/pipeline.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/table_writer.h"
#include "util/tracer.h"

namespace {

using namespace duplex;

enum class Mode { kOff, kMetrics, kMetricsAndTrace };

// Runs `body` with the mode's recorders installed; returns wall seconds.
template <typename Fn>
double TimedWithMode(Mode mode, Fn&& body) {
  MetricsRegistry registry;
  Tracer tracer(1 << 16);
  MetricsRegistry* prev_registry = nullptr;
  Tracer* prev_tracer = nullptr;
  if (mode != Mode::kOff) prev_registry = SetGlobalMetrics(&registry);
  if (mode == Mode::kMetricsAndTrace) prev_tracer = SetGlobalTracer(&tracer);
  Stopwatch watch;
  body();
  const double seconds = watch.ElapsedSeconds();
  if (mode != Mode::kOff) SetGlobalMetrics(prev_registry);
  if (mode == Mode::kMetricsAndTrace) SetGlobalTracer(prev_tracer);
  return seconds;
}

// Per-mode wall time with modes interleaved round-robin inside each rep
// so frequency/cache drift lands on every mode equally. The off time is
// the min across reps; the instrumented modes are estimated as
// off_min x median(mode_r / off_r) over the per-rep ratios. The three
// legs of a rep run back-to-back, so a background load burst inflates
// them together and cancels in the ratio, and the median rejects reps
// where a burst straddled only one leg — a plain cross-rep min would
// happily compare a quiet off window against a busy instrumented one.
// One untimed warm-up precedes the measured reps.
template <typename Fn>
std::array<double, 3> MinPerMode(int reps, Fn&& body) {
  std::array<double, 3> best;
  best.fill(1e100);
  std::array<std::vector<double>, 3> ratios;
  body();  // warm-up: faults, allocator growth, branch history
  for (int r = 0; r < reps; ++r) {
    std::array<double, 3> rep;
    for (const Mode mode :
         {Mode::kOff, Mode::kMetrics, Mode::kMetricsAndTrace}) {
      const int m = static_cast<int>(mode);
      rep[m] = TimedWithMode(mode, body);
      best[m] = std::min(best[m], rep[m]);
    }
    if (rep[0] > 0.0) {
      ratios[1].push_back(rep[1] / rep[0]);
      ratios[2].push_back(rep[2] / rep[0]);
    }
  }
  std::array<double, 3> out;
  out[0] = best[0];
  for (int m = 1; m < 3; ++m) {
    std::sort(ratios[m].begin(), ratios[m].end());
    out[m] = best[0] * ratios[m][ratios[m].size() / 2];
  }
  return out;
}

double OverheadPercent(double base, double with) {
  return base <= 0.0 ? 0.0 : 100.0 * (with - base) / base;
}

// --- served mode ------------------------------------------------------------

std::string ServedWord(Rng& rng) {
  return "word" + std::to_string(rng.Uniform(48));
}

std::string ServedDocument(Rng& rng) {
  std::string text;
  for (int w = 0; w < 12; ++w) {
    text += ServedWord(rng);
    text += ' ';
  }
  return text;
}

// One timed run of the served workload: 4 client threads push a 90/10
// boolean/submit mix through a fresh loopback server (index build and
// teardown untimed). With `telemetry`, the full plane is live: registry,
// tracer, async JSON logger, 1 ms slow-query threshold, and an
// AdminServer scraped at 1 Hz while the traffic runs.
double RunServedOnce(bool telemetry) {
  core::IndexOptions total;
  total.buckets.num_buckets = 256;
  total.buckets.bucket_capacity = 128;
  total.policy = core::Policy::RecommendedUpdateOptimized();
  total.block_postings = 32;
  total.disks.num_disks = 2;
  total.disks.blocks_per_disk = 1 << 18;
  total.disks.checksums = true;
  total.materialize = true;
  core::ShardedIndex index(core::ShardedIndexOptions::Partition(total, 2));
  {
    // Enough seed docs that each of the 48 words carries ~1000 postings —
    // queries then do real list work, as served traffic would. The
    // telemetry cost per request is constant (cached metric handles,
    // sampled spans), so a toy corpus would divide that constant by
    // unrealistically little work and overstate the overhead.
    Rng rng(11);
    for (int d = 0; d < 4000; ++d) index.AddDocument(ServedDocument(rng));
    if (!index.FlushDocumentsLogged(nullptr).ok()) std::abort();
  }
  net::ShardedIndexService service(&index, nullptr);

  MetricsRegistry registry;
  Tracer tracer(1 << 16);
  // Declared before the logger so the sink outlives it (the logger's
  // destructor drains into the stream).
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> log_sink(
      std::fopen("/dev/null", "w"), &std::fclose);
  LogOptions log_options;
  log_options.sink = log_sink.get();
  Logger logger(log_options);
  MetricsRegistry* prev_registry = nullptr;
  Tracer* prev_tracer = nullptr;
  Logger* prev_logger = nullptr;
  if (telemetry) {
    prev_registry = SetGlobalMetrics(&registry);
    prev_tracer = SetGlobalTracer(&tracer);
    prev_logger = SetGlobalLog(&logger);
  }

  net::ServerOptions server_options;
  server_options.num_workers = 4;
  // Slow-query logging is rare-event machinery: the threshold must sit
  // above ordinary scheduling jitter or every hiccup takes the full slow
  // path (unsampled spans + ring entry + warn log) and the bench measures
  // that instead of the serving plane. 20 ms keeps the path live but rare,
  // matching how the daemon is run (--slow-query-ms 50 in the README).
  server_options.slow_query_threshold =
      std::chrono::milliseconds(telemetry ? 20 : 0);
  net::Server server(&service, server_options);
  if (!server.Start().ok()) std::abort();

  std::unique_ptr<net::AdminServer> admin;
  std::atomic<bool> scrape_stop{false};
  std::thread scraper;
  if (telemetry) {
    net::AdminServerOptions admin_options;
    admin_options.slow_log = &server.slow_queries();
    admin_options.statusz = [&server] {
      return "{\"depth\": " + std::to_string(server.queue_depth()) + "}\n";
    };
    admin = std::make_unique<net::AdminServer>(admin_options);
    if (!admin->Start().ok()) std::abort();
    // A monitoring scrape is /metrics once a second; /statusz and /slowz
    // are human endpoints hit far less often, modeled here at 1-in-5.
    scraper = std::thread([&admin, &scrape_stop] {
      for (int tick = 0; !scrape_stop.load(); ++tick) {
        (void)net::HttpGet("127.0.0.1", admin->port(), "/metrics");
        if (tick % 5 == 4) {
          (void)net::HttpGet("127.0.0.1", admin->port(), "/statusz");
          (void)net::HttpGet("127.0.0.1", admin->port(), "/slowz");
        }
        for (int i = 0; i < 100 && !scrape_stop.load(); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      }
    });
  }

  // Enough requests that the timed window is a few hundred ms — comparable
  // to the scraper's 1 s period, so the one scrape burst that lands inside
  // the window represents roughly the claimed 1 Hz cadence instead of
  // being charged against a few tens of milliseconds of traffic.
  constexpr int kClientThreads = 4;
  constexpr int kRequestsPerThread = 2500;
  static constexpr const char* kQueries[] = {
      "word1 AND word2",  "word3 OR word4",        "word5 AND NOT word6",
      "word7 AND word11", "(word8 OR word9) AND word10"};
  Stopwatch watch;
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([t, port = server.port()] {
      Result<net::Client> client = net::Client::Connect("127.0.0.1", port);
      if (!client.ok()) std::abort();
      Rng rng(100 + t);
      for (int i = 0; i < kRequestsPerThread; ++i) {
        if (rng.Uniform(10) == 0) {
          if (!client->Submit({ServedDocument(rng)}).ok()) std::abort();
        } else {
          if (!client->Boolean(kQueries[rng.Uniform(std::size(kQueries))])
                   .ok()) {
            std::abort();
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds = watch.ElapsedSeconds();

  scrape_stop.store(true);
  if (scraper.joinable()) scraper.join();
  if (admin != nullptr) admin->Stop();
  server.Stop();
  if (telemetry) {
    SetGlobalMetrics(prev_registry);
    SetGlobalTracer(prev_tracer);
    SetGlobalLog(prev_logger);
  }
  return seconds;
}

}  // namespace

int main() {
  // Modes differ by tens of microseconds over ~20-80 ms phases, so the
  // noise floor of a shared machine swamps single runs; many interleaved
  // reps let the per-mode minimum converge.
  constexpr int kApplyReps = 25;
  constexpr int kQueryReps = 15;

  // Phase A: the full incremental batch-apply path (buckets, long lists,
  // allocation) on a count-only index with the accounting cache on, so
  // the core and storage instrumentation sites all fire.
  sim::SimConfig config = bench::BenchConfig();
  config.cache_blocks = 64;
  text::CorpusOptions corpus;
  corpus.num_updates = 16;
  corpus.docs_per_update = 1200;
  corpus.word_universe = 30000;
  corpus.seed = 17;
  const sim::BatchStream stream = sim::GenerateBatches(corpus);
  const core::Policy policy = core::Policy::RecommendedUpdateOptimized();
  auto apply_all = [&config, &stream, &policy] {
    core::InvertedIndex index(config.ToIndexOptions(policy));
    for (const text::BatchUpdate& batch : stream.batches) {
      if (!index.ApplyBatchUpdate(batch).ok()) std::abort();
    }
  };

  // Phase B: boolean query evaluation against a materialized index built
  // from text (string vocabulary), the hottest instrumented path — each
  // query pays two registry lookups, three counter increments, one
  // histogram record, and a span when tracing.
  core::IndexOptions query_options;
  query_options.buckets.num_buckets = 256;
  query_options.buckets.bucket_capacity = 128;
  query_options.policy = policy;
  query_options.block_postings = 32;
  query_options.disks.num_disks = 2;
  query_options.disks.blocks_per_disk = 1 << 18;
  query_options.materialize = true;
  core::InvertedIndex query_index(query_options);
  {
    static constexpr const char* kPool[] = {
        "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta",
        "theta", "iota", "kappa", "lambda", "mu", "nu", "xi"};
    Rng rng(3);
    for (int d = 0; d < 600; ++d) {
      std::string text;
      for (int w = 0; w < 20; ++w) {
        text += kPool[rng.Uniform(std::size(kPool))];
        text += ' ';
      }
      query_index.AddDocument(text);
      if (query_index.buffered_documents() >= 64 &&
          !query_index.FlushDocuments().ok()) {
        return 1;
      }
    }
    if (!query_index.FlushDocuments().ok()) return 1;
  }
  std::vector<std::unique_ptr<ir::BooleanQuery>> queries;
  for (const char* text :
       {"alpha AND beta", "gamma OR delta", "epsilon AND NOT zeta",
        "(eta OR theta) AND iota", "kappa lambda", "mu AND NOT nu"}) {
    Result<std::unique_ptr<ir::BooleanQuery>> parsed =
        ir::ParseBooleanQuery(text);
    if (!parsed.ok()) return 1;
    queries.push_back(std::move(*parsed));
  }
  constexpr int kQueryRounds = 3000;
  auto run_queries = [&query_index, &queries] {
    for (int round = 0; round < kQueryRounds; ++round) {
      for (const auto& q : queries) {
        Result<ir::QueryResult> r = ir::EvaluateBoolean(query_index, *q);
        if (!r.ok()) std::abort();
      }
    }
  };

  struct Phase {
    const char* name;
    std::array<double, 3> seconds{};
  };
  Phase phases[2] = {{"batch apply", {}}, {"boolean queries", {}}};
  phases[0].seconds = MinPerMode(kApplyReps, apply_all);
  std::cerr << "[bench] " << phases[0].name << " done\n";
  phases[1].seconds = MinPerMode(kQueryReps, run_queries);
  std::cerr << "[bench] " << phases[1].name << " done\n";

  // Phase C: served traffic through a real loopback server — the whole
  // telemetry plane at once (phase spans, slow-query log, JSON logger,
  // admin scrapes at 1 Hz) against the same traffic with nothing
  // installed. Interleaved min, same as the micro phases.
  // The served runs are long enough (~0.3 s each) that background load
  // bursts outlive a rep, so a min over independent off/on samples can
  // compare a quiet off window against a busy on window (or vice versa).
  // Instead each on rep runs back-to-back with its off partner — a burst
  // inflates both legs and cancels in the per-pair ratio — and the median
  // ratio rejects the pairs where a burst straddled only one leg.
  constexpr int kServedReps = 8;
  double served_off = 1e100;
  std::vector<double> served_ratios;
  served_ratios.reserve(kServedReps);
  (void)RunServedOnce(false);  // warm-up
  for (int r = 0; r < kServedReps; ++r) {
    const double off = RunServedOnce(false);
    const double on = RunServedOnce(true);
    served_off = std::min(served_off, off);
    if (off > 0.0) served_ratios.push_back(on / off);
  }
  std::cerr << "[bench] served traffic done\n";
  std::sort(served_ratios.begin(), served_ratios.end());
  const double served_ratio = served_ratios[served_ratios.size() / 2];
  const double served_on = served_off * served_ratio;
  const double served_ovh = (served_ratio - 1.0) * 100.0;

  TableWriter table({"phase", "off s", "metrics s", "metrics ovh%",
                     "+trace s", "+trace ovh%"});
  bool within_budget = true;
  for (const Phase& p : phases) {
    const double ovh_metrics = OverheadPercent(p.seconds[0], p.seconds[1]);
    const double ovh_trace = OverheadPercent(p.seconds[0], p.seconds[2]);
    within_budget = within_budget && ovh_trace < 3.0;
    table.Row()
        .Cell(p.name)
        .Cell(p.seconds[0], 4)
        .Cell(p.seconds[1], 4)
        .Cell(ovh_metrics, 2)
        .Cell(p.seconds[2], 4)
        .Cell(ovh_trace, 2);
  }
  // Served mode has no metrics-only middle column: it measures the whole
  // plane (metrics + tracing + logging + scrapes) against nothing.
  within_budget = within_budget && served_ovh < 3.0;
  table.Row()
      .Cell("served traffic")
      .Cell(served_off, 4)
      .Cell("-")
      .Cell("-")
      .Cell(served_on, 4)
      .Cell(served_ovh, 2);
  table.PrintAscii(std::cout,
                   "Extension: observability overhead (min over "
                   "mode-interleaved reps; off = no registry installed)");
  std::cout << "\nBudget: < 3% with metrics + tracing enabled -> "
            << (within_budget ? "within budget" : "EXCEEDED") << "\n";

  std::FILE* json = std::fopen("BENCH_observability.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"bench\": \"ext_observability\",\n");
    std::fprintf(json, "  \"budget_percent\": 3.0,\n");
    std::fprintf(json, "  \"within_budget\": %s,\n",
                 within_budget ? "true" : "false");
    std::fprintf(json, "  \"phases\": [\n");
    for (const Phase& p : phases) {
      std::fprintf(json,
                   "    {\"phase\": \"%s\", \"off_s\": %.6f, "
                   "\"metrics_s\": %.6f, \"metrics_overhead_pct\": %.3f, "
                   "\"trace_s\": %.6f, \"trace_overhead_pct\": %.3f},\n",
                   p.name, p.seconds[0], p.seconds[1],
                   OverheadPercent(p.seconds[0], p.seconds[1]), p.seconds[2],
                   OverheadPercent(p.seconds[0], p.seconds[2]));
    }
    std::fprintf(json,
                 "    {\"phase\": \"served traffic\", \"off_s\": %.6f, "
                 "\"telemetry_s\": %.6f, \"telemetry_overhead_pct\": %.3f}\n",
                 served_off, served_on, served_ovh);
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::cout << "Wrote BENCH_observability.json\n";
  }
  return 0;
}

// Reproduces the paper's Section 5.4 "Bottom Line" comparison: the two
// recommended policies (new + proportional 1.2 for update speed, whole +
// proportional 1.2 for query speed) against the update-optimized extreme,
// across all three axes: build time, query cost, and disk utilization.
#include <iostream>

#include "bench/bench_common.h"
#include "util/table_writer.h"

int main() {
  using namespace duplex;
  using core::Policy;

  struct Candidate {
    const char* label;
    Policy policy;
  };
  const std::vector<Candidate> candidates = {
      {"new 0 (update extreme)", Policy::New0()},
      {"new z prop 1.2 (recommended, update)",
       Policy::RecommendedUpdateOptimized()},
      {"fill z e=4", Policy::FillZ(4)},
      {"whole z prop 1.2 (recommended, query)",
       Policy::RecommendedQueryOptimized()},
      {"whole 0 (query extreme, WAIS-like)", Policy::Whole0()},
  };

  TableWriter table({"Policy", "Build (s)", "Reads/list", "Util",
                     "In-place frac", "I/O ops"});
  for (const Candidate& c : candidates) {
    const sim::PolicyRunResult run = bench::Run(c.policy);
    const storage::ExecutionResult exec =
        sim::ExerciseDisks(bench::BenchConfig(), run.trace);
    const double possible =
        static_cast<double>(run.counters.appends_to_existing);
    table.Row()
        .Cell(c.label)
        .Cell(exec.total_seconds(), 1)
        .Cell(run.final_stats.avg_reads_per_list, 2)
        .Cell(run.final_stats.long_utilization, 2)
        .Cell(possible == 0 ? 0.0
                            : run.counters.in_place_updates / possible,
              2)
        .Cell(run.final_stats.io_ops);
  }
  table.PrintAscii(std::cout,
                   "Section 5.4: bottom-line policy comparison");
  std::cout << "\nPaper expectation: the recommended update policy builds "
               "within ~2x of the extreme\nwhile keeping reads/list within "
               "a small factor of whole's 1.0; the recommended query\n"
               "policy pays ~2x build time for reads/list = 1.0 at high "
               "utilization.\n";
  return 0;
}
